// Revocation state (§4.1 of the paper): "revocation can be done by
// notifying the server about bad keys or credentials. If the credentials
// are relatively short-lived, the server need only remember such
// information for a short period of time."
//
// Entries therefore carry expiry times and are garbage-collected; the
// expected usage is that the revocation horizon matches the maximum
// credential lifetime.
#ifndef DISCFS_SRC_DISCFS_REVOCATION_H_
#define DISCFS_SRC_DISCFS_REVOCATION_H_

#include <cstdint>
#include <map>
#include <string>

namespace discfs {

class RevocationList {
 public:
  // horizon_seconds: how long entries are remembered (0 = forever).
  explicit RevocationList(int64_t horizon_seconds)
      : horizon_seconds_(horizon_seconds) {}

  void RevokeKey(const std::string& key_id, int64_t now);
  void RevokeCredential(const std::string& credential_id, int64_t now);

  bool IsKeyRevoked(const std::string& key_id, int64_t now) const;
  bool IsCredentialRevoked(const std::string& credential_id,
                           int64_t now) const;

  // Drops expired entries; called opportunistically by the server.
  void Expire(int64_t now);

  size_t size() const { return keys_.size() + credentials_.size(); }

 private:
  bool Contains(const std::map<std::string, int64_t>& set,
                const std::string& id, int64_t now) const;

  int64_t horizon_seconds_;
  std::map<std::string, int64_t> keys_;         // id -> revoked_at
  std::map<std::string, int64_t> credentials_;  // id -> revoked_at
};

}  // namespace discfs

#endif  // DISCFS_SRC_DISCFS_REVOCATION_H_
