#include "src/keynote/lexer.h"

#include <cctype>

#include "src/util/strings.h"

namespace discfs::keynote {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd:
      return "end-of-input";
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kString:
      return "string";
    case TokenKind::kKOf:
      return "k-of";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kSemi:
      return "';'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kArrow:
      return "'->'";
    case TokenKind::kAndAnd:
      return "'&&'";
    case TokenKind::kOrOr:
      return "'||'";
    case TokenKind::kNot:
      return "'!'";
    case TokenKind::kEq:
      return "'=='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kRegex:
      return "'~='";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kPercent:
      return "'%'";
    case TokenKind::kCaret:
      return "'^'";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kDollar:
      return "'$'";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  auto peek = [&](size_t k) -> char {
    return i + k < n ? input[i + k] : '\0';
  };

  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;

    if (c == '"') {
      // String literal with backslash escapes.
      std::string value;
      ++i;
      bool closed = false;
      while (i < n) {
        char d = input[i];
        if (d == '\\' && i + 1 < n) {
          char e = input[i + 1];
          switch (e) {
            case 'n':
              value.push_back('\n');
              break;
            case 't':
              value.push_back('\t');
              break;
            default:
              value.push_back(e);  // \" \\ and anything else: literal
          }
          i += 2;
          continue;
        }
        if (d == '"') {
          ++i;
          closed = true;
          break;
        }
        value.push_back(d);
        ++i;
      }
      if (!closed) {
        return InvalidArgumentError(
            StrPrintf("unterminated string literal at offset %zu", start));
      }
      tokens.push_back({TokenKind::kString, std::move(value), start});
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       input[j] == '.')) {
        ++j;
      }
      // "<k>-of(" threshold form (Licensees field).
      if (j + 2 < n && input[j] == '-' && input[j + 1] == 'o' &&
          input[j + 2] == 'f') {
        size_t after = j + 3;
        while (after < n &&
               std::isspace(static_cast<unsigned char>(input[after]))) {
          ++after;
        }
        if (after < n && input[after] == '(') {
          tokens.push_back(
              {TokenKind::kKOf, std::string(input.substr(i, j - i)), start});
          i = j + 3;
          continue;
        }
      }
      tokens.push_back(
          {TokenKind::kNumber, std::string(input.substr(i, j - i)), start});
      i = j;
      continue;
    }

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      tokens.push_back(
          {TokenKind::kIdent, std::string(input.substr(i, j - i)), start});
      i = j;
      continue;
    }

    auto two = [&](char a, char b) { return c == a && peek(1) == b; };
    if (two('-', '>')) {
      tokens.push_back({TokenKind::kArrow, "->", start});
      i += 2;
      continue;
    }
    if (two('&', '&')) {
      tokens.push_back({TokenKind::kAndAnd, "&&", start});
      i += 2;
      continue;
    }
    if (two('|', '|')) {
      tokens.push_back({TokenKind::kOrOr, "||", start});
      i += 2;
      continue;
    }
    if (two('=', '=')) {
      tokens.push_back({TokenKind::kEq, "==", start});
      i += 2;
      continue;
    }
    if (two('!', '=')) {
      tokens.push_back({TokenKind::kNe, "!=", start});
      i += 2;
      continue;
    }
    if (two('<', '=')) {
      tokens.push_back({TokenKind::kLe, "<=", start});
      i += 2;
      continue;
    }
    if (two('>', '=')) {
      tokens.push_back({TokenKind::kGe, ">=", start});
      i += 2;
      continue;
    }
    if (two('~', '=')) {
      tokens.push_back({TokenKind::kRegex, "~=", start});
      i += 2;
      continue;
    }

    TokenKind kind;
    switch (c) {
      case '(':
        kind = TokenKind::kLParen;
        break;
      case ')':
        kind = TokenKind::kRParen;
        break;
      case '{':
        kind = TokenKind::kLBrace;
        break;
      case '}':
        kind = TokenKind::kRBrace;
        break;
      case ';':
        kind = TokenKind::kSemi;
        break;
      case ',':
        kind = TokenKind::kComma;
        break;
      case '!':
        kind = TokenKind::kNot;
        break;
      case '<':
        kind = TokenKind::kLt;
        break;
      case '>':
        kind = TokenKind::kGt;
        break;
      case '+':
        kind = TokenKind::kPlus;
        break;
      case '-':
        kind = TokenKind::kMinus;
        break;
      case '*':
        kind = TokenKind::kStar;
        break;
      case '/':
        kind = TokenKind::kSlash;
        break;
      case '%':
        kind = TokenKind::kPercent;
        break;
      case '^':
        kind = TokenKind::kCaret;
        break;
      case '.':
        kind = TokenKind::kDot;
        break;
      case '$':
        kind = TokenKind::kDollar;
        break;
      default:
        return InvalidArgumentError(
            StrPrintf("unexpected character '%c' at offset %zu", c, start));
    }
    tokens.push_back({kind, std::string(1, c), start});
    ++i;
  }
  tokens.push_back({TokenKind::kEnd, "", n});
  return tokens;
}

}  // namespace discfs::keynote
