#include "src/discfs/host.h"

namespace discfs {
namespace internal {

void ConnectionSet::Spawn(std::function<void()> serve) {
  std::lock_guard<std::mutex> lock(mu_);
  ReapFinishedLocked();
  auto done = std::make_shared<std::atomic<bool>>(false);
  Conn conn;
  conn.done = done;
  conn.thread = std::thread([serve = std::move(serve), done] {
    serve();
    done->store(true, std::memory_order_release);
  });
  conns_.push_back(std::move(conn));
}

void ConnectionSet::ReapFinishedLocked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->done->load(std::memory_order_acquire)) {
      it->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void ConnectionSet::JoinAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Conn& conn : conns_) {
    if (conn.thread.joinable()) {
      conn.thread.join();
    }
  }
  conns_.clear();
}

size_t ConnectionSet::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const Conn& conn : conns_) {
    if (!conn.done->load(std::memory_order_acquire)) {
      ++n;
    }
  }
  return n;
}

}  // namespace internal

namespace {

size_t ResolveWorkerThreads(size_t requested) {
  if (requested > 0) {
    return requested;
  }
  // NFS handlers block on storage, so workers overlap I/O rather than
  // compete for cores: keep a floor well above the core count of small
  // machines and a ceiling to bound memory on big ones.
  size_t hw = std::thread::hardware_concurrency();
  if (hw < 8) {
    hw = 8;
  }
  return hw < 16 ? hw : 16;
}

}  // namespace

Result<std::unique_ptr<DiscfsHost>> DiscfsHost::Start(
    std::shared_ptr<Vfs> vfs, DiscfsServerConfig config, uint16_t port,
    DiscfsHostOptions options) {
  auto host = std::unique_ptr<DiscfsHost>(new DiscfsHost());
  ASSIGN_OR_RETURN(host->server_,
                   DiscfsServer::Create(std::move(vfs), std::move(config)));
  host->pool_ = std::make_unique<WorkerPool>(
      ResolveWorkerThreads(options.worker_threads));
  host->serve_options_.pool = host->pool_.get();
  host->serve_options_.max_inflight_per_conn = options.max_inflight_per_conn;
  ASSIGN_OR_RETURN(host->listener_,
                   TcpListener::Listen(port, options.bind_addr));
  host->accept_thread_ = std::thread([h = host.get()] { h->AcceptLoop(); });
  return host;
}

void DiscfsHost::AcceptLoop() {
  while (true) {
    auto conn = listener_->Accept();
    if (!conn.ok()) {
      return;  // listener closed
    }
    // shared_ptr wrapper because std::function requires a copyable closure.
    auto transport = std::make_shared<std::unique_ptr<TcpTransport>>(
        std::move(conn).value());
    connections_.Spawn([this, transport] {
      (void)server_->ServeConnection(std::move(*transport), serve_options_);
    });
  }
}

DiscfsHost::~DiscfsHost() {
  // Shutdown (not Close) so the accept thread's blocked accept(2) unblocks
  // without racing descriptor teardown; the fd closes with the listener.
  listener_->Shutdown();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  connections_.JoinAll();
  pool_->Shutdown();
}

Result<std::unique_ptr<CfsNeHost>> CfsNeHost::Start(std::shared_ptr<Vfs> vfs,
                                                    uint16_t port,
                                                    DiscfsHostOptions options) {
  auto host = std::unique_ptr<CfsNeHost>(new CfsNeHost());
  host->server_ = std::make_unique<NfsServer>(std::move(vfs));
  host->server_->RegisterAll(host->dispatcher_);
  host->pool_ = std::make_unique<WorkerPool>(
      ResolveWorkerThreads(options.worker_threads));
  host->serve_options_.pool = host->pool_.get();
  host->serve_options_.max_inflight_per_conn = options.max_inflight_per_conn;
  ASSIGN_OR_RETURN(host->listener_,
                   TcpListener::Listen(port, options.bind_addr));
  host->accept_thread_ = std::thread([h = host.get()] { h->AcceptLoop(); });
  return host;
}

void CfsNeHost::AcceptLoop() {
  while (true) {
    auto conn = listener_->Accept();
    if (!conn.ok()) {
      return;
    }
    auto transport =
        std::shared_ptr<TcpTransport>(std::move(conn).value().release());
    connections_.Spawn([this, transport] {
      RpcContext ctx;  // unauthenticated
      dispatcher_.ServeConnection(*transport, ctx, serve_options_);
    });
  }
}

CfsNeHost::~CfsNeHost() {
  listener_->Shutdown();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  connections_.JoinAll();
  pool_->Shutdown();
}

Result<std::unique_ptr<NfsClient>> ConnectCfsNe(const std::string& host,
                                                uint16_t port) {
  ASSIGN_OR_RETURN(std::unique_ptr<TcpTransport> transport,
                   TcpTransport::Connect(host, port));
  return ConnectCfsNeOver(std::move(transport));
}

Result<std::unique_ptr<NfsClient>> ConnectCfsNeOver(
    std::unique_ptr<MsgStream> stream) {
  auto rpc = std::make_shared<RpcClient>(std::move(stream));
  return std::make_unique<NfsClient>(std::move(rpc));
}

}  // namespace discfs
