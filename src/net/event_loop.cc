#include "src/net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "src/util/strings.h"

namespace discfs {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wakeup_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ >= 0 && wakeup_fd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wakeup_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &ev);
  }
  poller_ = std::thread([this] { PollLoop(); });
}

EventLoop::~EventLoop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  uint64_t one = 1;
  ssize_t ignored = ::write(wakeup_fd_, &one, sizeof(one));
  (void)ignored;
  if (poller_.joinable()) {
    poller_.join();
  }
  {
    // Drop (destroy) tasks and timers that never ran; their captures
    // release here.
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.clear();
    timers_.clear();
    handlers_.clear();
  }
  if (wakeup_fd_ >= 0) {
    ::close(wakeup_fd_);
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
  }
}

uint32_t EventLoop::EpollMask(bool want_read, bool want_write) const {
  uint32_t mask = 0;
  if (want_read) {
    mask |= EPOLLIN | EPOLLRDHUP;
  }
  if (want_write) {
    mask |= EPOLLOUT;
  }
  return mask;
}

Status EventLoop::Register(int fd, bool want_read, bool want_write,
                           Callback cb) {
  if (fd < 0) {
    return InvalidArgumentError("cannot register negative fd");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return FailedPreconditionError("event loop is stopping");
    }
    if (handlers_.count(fd) != 0) {
      return AlreadyExistsError(StrPrintf("fd %d already registered", fd));
    }
    handlers_[fd] = std::make_shared<Callback>(std::move(cb));
  }
  epoll_event ev{};
  ev.events = EpollMask(want_read, want_write);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    std::lock_guard<std::mutex> lock(mu_);
    handlers_.erase(fd);
    return UnavailableError(
        StrPrintf("epoll_ctl(ADD, %d) failed: %s", fd, strerror(errno)));
  }
  return OkStatus();
}

Status EventLoop::ModifyInterest(int fd, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = EpollMask(want_read, want_write);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return UnavailableError(
        StrPrintf("epoll_ctl(MOD, %d) failed: %s", fd, strerror(errno)));
  }
  return OkStatus();
}

void EventLoop::Unregister(int fd) {
  epoll_event ev{};  // ignored for DEL, but pre-2.6.9 kernels want non-null
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &ev);
  std::unique_lock<std::mutex> lock(mu_);
  handlers_.erase(fd);
  if (!InLoopThread()) {
    // An event for `fd` may already be mid-dispatch; wait it out so the
    // caller can safely destroy whatever the callback touches. From the
    // poller thread itself this cannot happen (we ARE the dispatcher).
    cv_.wait(lock, [&] { return dispatching_fd_ != fd; });
  }
}

void EventLoop::RunAfter(uint64_t delay_ms, Task task) {
  auto when = std::chrono::steady_clock::now() +
              std::chrono::milliseconds(delay_ms);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return;  // dropped; the loop is going away
    }
    timers_.emplace(when, std::move(task));
  }
  // Wake the poller so it recomputes its wait timeout against the new
  // earliest deadline.
  uint64_t one = 1;
  ssize_t ignored = ::write(wakeup_fd_, &one, sizeof(one));
  (void)ignored;
}

size_t EventLoop::timers_armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return timers_.size();
}

void EventLoop::Post(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return;  // dropped; the loop is going away
    }
    tasks_.push_back(std::move(task));
  }
  uint64_t one = 1;
  ssize_t ignored = ::write(wakeup_fd_, &one, sizeof(one));
  (void)ignored;
}

bool EventLoop::InLoopThread() const {
  return std::this_thread::get_id() == poller_.get_id();
}

size_t EventLoop::registered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return handlers_.size();
}

void EventLoop::RunPostedTasks() {
  std::deque<Task> tasks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks.swap(tasks_);
  }
  for (Task& task : tasks) {
    task();
  }
}

int EventLoop::TimerWaitMs() {
  std::lock_guard<std::mutex> lock(mu_);
  if (timers_.empty()) {
    return -1;  // block until an fd event or a wakeup
  }
  auto now = std::chrono::steady_clock::now();
  auto first = timers_.begin()->first;
  if (first <= now) {
    return 0;
  }
  // Round up so the wait never wakes a hair before the deadline and spins.
  auto delta = std::chrono::duration_cast<std::chrono::milliseconds>(
                   first - now + std::chrono::milliseconds(1))
                   .count();
  constexpr int64_t kMaxWaitMs = 60'000;
  return static_cast<int>(delta < kMaxWaitMs ? delta : kMaxWaitMs);
}

void EventLoop::RunDueTimers() {
  std::vector<Task> due;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto now = std::chrono::steady_clock::now();
    while (!timers_.empty() && timers_.begin()->first <= now) {
      due.push_back(std::move(timers_.begin()->second));
      timers_.erase(timers_.begin());
    }
  }
  for (Task& task : due) {
    task();
  }
}

void EventLoop::PollLoop() {
  std::vector<epoll_event> events(64);
  while (true) {
    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), TimerWaitMs());
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // epoll fd gone; loop is being torn down
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        return;
      }
    }
    RunDueTimers();
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[i];
      if (ev.data.fd == wakeup_fd_) {
        uint64_t drained;
        while (::read(wakeup_fd_, &drained, sizeof(drained)) > 0) {
        }
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (stopping_) {
            return;
          }
        }
        RunPostedTasks();
        continue;
      }
      uint32_t mask = 0;
      if (ev.events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
        mask |= kReadable;
      }
      if (ev.events & EPOLLOUT) {
        mask |= kWritable;
      }
      if (ev.events & (EPOLLHUP | EPOLLERR)) {
        mask |= kError;
      }
      std::shared_ptr<Callback> cb;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = handlers_.find(ev.data.fd);
        if (it == handlers_.end()) {
          continue;  // unregistered between epoll_wait and dispatch
        }
        cb = it->second;
        dispatching_fd_ = ev.data.fd;
      }
      dispatched_.fetch_add(1, std::memory_order_relaxed);
      (*cb)(mask);
      {
        std::lock_guard<std::mutex> lock(mu_);
        dispatching_fd_ = -1;
      }
      cv_.notify_all();
    }
  }
}

}  // namespace discfs
