// Content-addressed chunk store over the NFS/FFS stack.
//
// Chunks are immutable blobs named by the SHA-256 of their content (64
// lowercase hex chars) and stored as regular files in the backing Ffs via
// NfsServer's direct entry points — never raw Vfs calls, because Ffs's
// concurrency contract requires the NfsServer ns_mu_/stripe serialization.
//
// On-disk layout (Ffs caps names at 58 bytes, shorter than a full hex id,
// so the id is split and also embedded verbatim in the chunk header):
//
//   /.lockbox/chunks/<hex[0:2]>/<hex[2:58]>
//     "CNK1" | u32 refcount (BE) | 32-byte raw id | chunk data
//
// Get() re-verifies the embedded id against the requested one, so a name
// collision in the truncated file name (or on-disk corruption) is detected
// rather than served.
//
// Put() of bytes that already exist bumps the refcount instead of storing
// a second copy — that is the dedup: identical public plaintext chunks
// from different users converge on one stored chunk. Release() decrements
// and garbage-collects the file at zero.
//
// Thread safety: refcount read-modify-write is serialized by per-chunk
// mutex shards (keyed by the id's first byte); the NfsServer calls inside
// take their own namespace/stripe locks, acquired strictly after the shard
// lock, so lock order is shard -> ns -> stripe.
#ifndef DISCFS_SRC_LOCKBOX_CHUNKSTORE_H_
#define DISCFS_SRC_LOCKBOX_CHUNKSTORE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/nfs/nfs_server.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace discfs {

class ChunkStore {
 public:
  // Computed over chunk content; also the store's addressing key.
  static std::string ChunkId(const Bytes& data);

  explicit ChunkStore(NfsServer* nfs) : nfs_(nfs) {}

  // Stores `data` (or bumps the refcount of the identical existing chunk)
  // and returns its id.
  Result<std::string> Put(const Bytes& data);

  // Returns the chunk's content. NotFound if no live chunk has this id.
  Result<Bytes> Get(const std::string& id);

  // Drops one reference; deletes the chunk file when the count hits zero.
  Status Release(const std::string& id);

  // Current reference count (0 if the chunk does not exist).
  Result<uint32_t> RefCount(const std::string& id);

  struct Stats {
    uint64_t puts = 0;        // total Put() calls
    uint64_t dedup_hits = 0;  // Puts satisfied by an existing chunk
    uint64_t stored = 0;      // chunks written (unique content)
    uint64_t removed = 0;     // chunks garbage-collected at refcount zero
  };
  Stats stats() const {
    return {puts_.load(), dedup_hits_.load(), stored_.load(), removed_.load()};
  }

  // --- integrity audit (PR 10) ---
  // Mark-and-sweep consistency check between the stored chunks and the
  // live lockbox records. Mark: decode every /.lockbox/box sidecar and
  // count the references each chunk id receives. Sweep: walk every stored
  // chunk file, read its header, and compare the persisted refcount with
  // the live count. Advisory: run it while lockbox mutation is quiesced
  // (a concurrent Put/Release legitimately shows as a transient skew).
  struct AuditReport {
    uint64_t live_records = 0;     // sidecars decoded
    uint64_t chunks_scanned = 0;   // stored chunk files walked
    uint64_t live_references = 0;  // record -> chunk edges counted
    // Stored but referenced by no record: leaked space, never data loss.
    std::vector<std::string> orphaned;
    // Header refcount above the live count: Release can never reach zero,
    // so the chunk would leak even after every referencing record dies.
    std::vector<std::string> over_referenced;
    // Header refcount below the live count: the dangerous direction — a
    // future Release could garbage-collect data a live record still needs.
    std::vector<std::string> under_referenced;
    // Referenced by a record but not stored: data loss already happened.
    std::vector<std::string> missing;
    // Unreadable header, bad magic, or embedded id disagreeing with the
    // file's location.
    std::vector<std::string> corrupt;
    bool clean() const {
      return orphaned.empty() && over_referenced.empty() &&
             under_referenced.empty() && missing.empty() && corrupt.empty();
    }
  };
  Result<AuditReport> Audit();

 private:
  static constexpr size_t kShards = 16;
  static constexpr size_t kHeaderSize = 4 + 4 + 32;  // magic, refcount, id
  static constexpr size_t kRefCountOffset = 4;

  // Resolves (creating on demand) /.lockbox/chunks/<prefix>.
  Result<NfsFh> PrefixDir(const std::string& prefix, bool create);
  // Lookup of the chunk file plus header validation against `id`.
  Result<NfsFh> FindChunk(const std::string& id);
  Result<uint32_t> ReadRefCount(const NfsFh& fh);
  Status WriteRefCount(const NfsFh& fh, uint32_t count);

  std::mutex& ShardFor(const std::string& id) {
    return shards_[static_cast<size_t>(id.empty() ? 0 : id[0]) % kShards];
  }

  NfsServer* nfs_;
  std::mutex init_mu_;  // guards lazy creation of the directory spine
  std::array<std::mutex, kShards> shards_;
  std::atomic<uint64_t> puts_{0};
  std::atomic<uint64_t> dedup_hits_{0};
  std::atomic<uint64_t> stored_{0};
  std::atomic<uint64_t> removed_{0};
};

}  // namespace discfs

#endif  // DISCFS_SRC_LOCKBOX_CHUNKSTORE_H_
