// Figure 10: Bonnie Sequential Input (Char) — FFS vs CFS-NE vs DisCFS.
#include "bench/bonnie_main.h"

int main() {
  return discfs::bench::RunBonnieFigure(
      "Figure 10", discfs::bench::BonniePhase::kSeqInputChar);
}
