// Shared fixed-size worker pool for the RPC runtime.
//
// The dispatcher hands every decoded request to one pool instead of
// spawning threads, so total server-side execution concurrency is bounded
// by the pool size no matter how many connections are open. Tasks are
// plain closures; completion ordering is whatever the scheduler produces
// (the RPC layer matches replies to calls by xid, not by order).
#ifndef DISCFS_SRC_UTIL_WORKER_POOL_H_
#define DISCFS_SRC_UTIL_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace discfs {

class WorkerPool {
 public:
  // Spawns `num_threads` workers (clamped to at least 1).
  explicit WorkerPool(size_t num_threads);

  // Drains remaining tasks and joins the workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Enqueues `task`. Never drops work: after Shutdown the task runs inline
  // in the caller's thread, so producers that block on task side effects
  // (e.g. a connection draining its in-flight replies) cannot deadlock
  // against pool teardown.
  void Submit(std::function<void()> task);

  // Stops accepting queued execution, runs everything already queued, and
  // joins the workers. Idempotent; also called by the destructor.
  void Shutdown();

  size_t size() const { return workers_.size(); }

  // Tasks queued but not yet picked up by a worker.
  size_t queue_depth() const;

  // Tasks currently executing on a worker.
  size_t in_flight() const;

  // Tasks ever submitted (observability gauge; includes run-inline tasks
  // accepted after Shutdown).
  uint64_t submitted() const {
    return submitted_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t in_flight_ = 0;
  bool stopping_ = false;
  std::atomic<uint64_t> submitted_{0};
};

}  // namespace discfs

#endif  // DISCFS_SRC_UTIL_WORKER_POOL_H_
