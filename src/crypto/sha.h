// SHA-1, SHA-256 and SHA-512 (FIPS 180-4), streaming and one-shot.
//
// SHA-1 exists because the paper's KeyNote credentials are signed with
// "sig-dsa-sha1-hex" (RFC 2704); DSA's 160-bit q matches SHA-1 output.
// SHA-256/512 serve HMAC/HKDF in the secure channel and the modern
// signature variant.
#ifndef DISCFS_SRC_CRYPTO_SHA_H_
#define DISCFS_SRC_CRYPTO_SHA_H_

#include <cstdint>
#include <string_view>

#include "src/util/bytes.h"

namespace discfs {

class Sha1 {
 public:
  static constexpr size_t kDigestSize = 20;
  static constexpr size_t kBlockSize = 64;

  Sha1();
  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  void Update(std::string_view data) {
    Update(reinterpret_cast<const uint8_t*>(data.data()), data.size());
  }
  Bytes Finish();

  static Bytes Hash(const Bytes& data);
  static Bytes Hash(std::string_view data);

 private:
  void Compress(const uint8_t block[64]);

  uint32_t h_[5];
  uint8_t buffer_[64];
  size_t buffered_ = 0;
  uint64_t total_len_ = 0;
};

class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256();
  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  void Update(std::string_view data) {
    Update(reinterpret_cast<const uint8_t*>(data.data()), data.size());
  }
  Bytes Finish();

  static Bytes Hash(const Bytes& data);
  static Bytes Hash(std::string_view data);

 private:
  void Compress(const uint8_t block[64]);

  uint32_t h_[8];
  uint8_t buffer_[64];
  size_t buffered_ = 0;
  uint64_t total_len_ = 0;
};

class Sha512 {
 public:
  static constexpr size_t kDigestSize = 64;
  static constexpr size_t kBlockSize = 128;

  Sha512();
  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  void Update(std::string_view data) {
    Update(reinterpret_cast<const uint8_t*>(data.data()), data.size());
  }
  Bytes Finish();

  static Bytes Hash(const Bytes& data);
  static Bytes Hash(std::string_view data);

 private:
  void Compress(const uint8_t block[128]);

  uint64_t h_[8];
  uint8_t buffer_[128];
  size_t buffered_ = 0;
  uint64_t total_len_ = 0;  // bytes; (2^64 byte inputs are out of scope)
};

}  // namespace discfs

#endif  // DISCFS_SRC_CRYPTO_SHA_H_
