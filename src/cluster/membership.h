// Seed-based membership and peer liveness for the coherence fabric
// (PR 6). Nodes are configured with any subset of the fleet ("seeds");
// every Hello and kClusterStatus heartbeat carries the sender's advertised
// listen address plus its current member view, and receivers add senders
// for any address they have not seen — so a node that joins by contacting
// one seed is learned by everyone within a heartbeat round, with no
// reconfiguration.
//
// Membership spreads *addresses* only. Authorization never widens: a
// learned peer still has to present a channel key in the receiver's
// static cluster trust set before any of its pushes are honored, and
// outbound links to learned addresses rely on that same receiver-side
// check (addresses are routing hints, not identity).
//
// Liveness: each PeerSender stamps the time of its last successful RPC
// (Hello, Push, Status, or RevocationSync — the heartbeat fires whenever
// the link has been idle); a peer is healthy when its link is connected
// and that stamp is within the configured heartbeat deadline.
#ifndef DISCFS_SRC_CLUSTER_MEMBERSHIP_H_
#define DISCFS_SRC_CLUSTER_MEMBERSHIP_H_

#include <cstdint>
#include <string>
#include <vector>

namespace discfs::cluster {

struct PeerHealth {
  std::string address;  // "host:port"
  bool connected = false;
  // Connected and heard from within the heartbeat deadline.
  bool healthy = false;
  int64_t millis_since_contact = -1;  // -1 = never heard from
  uint64_t acked_seq = 0;
  uint64_t connects = 0;
  uint64_t connect_failures = 0;
};

struct ClusterHealth {
  std::string self_address;   // advertised listen address ("" standalone)
  uint64_t incarnation = 0;
  uint64_t head_seq = 0;
  std::vector<PeerHealth> peers;

  size_t healthy_peers() const {
    size_t n = 0;
    for (const PeerHealth& peer : peers) {
      if (peer.healthy) {
        ++n;
      }
    }
    return n;
  }
};

// Splits "host:port"; false on a malformed address or port.
bool ParseHostPort(const std::string& address, std::string* host,
                   uint16_t* port);

}  // namespace discfs::cluster

#endif  // DISCFS_SRC_CLUSTER_MEMBERSHIP_H_
