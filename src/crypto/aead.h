// ChaCha20-Poly1305 AEAD (RFC 8439 §2.8). This is the per-record transform
// of the secure channel, standing in for the paper's IPsec ESP.
#ifndef DISCFS_SRC_CRYPTO_AEAD_H_
#define DISCFS_SRC_CRYPTO_AEAD_H_

#include "src/util/bytes.h"
#include "src/util/status.h"

namespace discfs {

class Aead {
 public:
  static constexpr size_t kKeySize = 32;
  static constexpr size_t kNonceSize = 12;
  static constexpr size_t kTagSize = 16;

  explicit Aead(Bytes key);

  // Returns ciphertext || 16-byte tag.
  Bytes Seal(const Bytes& nonce, const Bytes& aad,
             const Bytes& plaintext) const;

  // Verifies the tag and decrypts. Fails with UNAUTHENTICATED on any
  // tampering of ciphertext, tag, nonce, or aad.
  Result<Bytes> Open(const Bytes& nonce, const Bytes& aad,
                     const Bytes& ciphertext_and_tag) const;

 private:
  Bytes MacData(const Bytes& aad, const Bytes& ciphertext) const;

  Bytes key_;
};

}  // namespace discfs

#endif  // DISCFS_SRC_CRYPTO_AEAD_H_
