#include "src/discfs/revocation.h"

namespace discfs {

void RevocationList::RevokeKey(const std::string& key_id, int64_t now) {
  keys_[key_id] = now;
}

void RevocationList::RevokeCredential(const std::string& credential_id,
                                      int64_t now) {
  credentials_[credential_id] = now;
}

bool RevocationList::Contains(const std::map<std::string, int64_t>& set,
                              const std::string& id, int64_t now) const {
  auto it = set.find(id);
  if (it == set.end()) {
    return false;
  }
  if (horizon_seconds_ > 0 && now - it->second > horizon_seconds_) {
    return false;  // expired entry; Expire() will reclaim it
  }
  return true;
}

bool RevocationList::IsKeyRevoked(const std::string& key_id,
                                  int64_t now) const {
  return Contains(keys_, key_id, now);
}

bool RevocationList::IsCredentialRevoked(const std::string& credential_id,
                                         int64_t now) const {
  return Contains(credentials_, credential_id, now);
}

void RevocationList::Expire(int64_t now) {
  if (horizon_seconds_ <= 0) {
    return;
  }
  for (auto* set : {&keys_, &credentials_}) {
    for (auto it = set->begin(); it != set->end();) {
      if (now - it->second > horizon_seconds_) {
        it = set->erase(it);
      } else {
        ++it;
      }
    }
  }
}

}  // namespace discfs
