#include "src/net/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>

#include "src/util/strings.h"

namespace discfs {
namespace {

// Gathered send of the whole iovec, restarting on EINTR and resuming after
// partial writes. sendmsg (not writev) so MSG_NOSIGNAL suppresses SIGPIPE
// when the peer has already gone away.
Status SendAllVec(int fd, struct iovec* iov, int iovcnt) {
  while (iovcnt > 0) {
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = iovcnt;
    ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return UnavailableError(StrPrintf("send failed: %s", strerror(errno)));
    }
    size_t left = static_cast<size_t>(n);
    while (iovcnt > 0 && left >= iov[0].iov_len) {
      left -= iov[0].iov_len;
      ++iov;
      --iovcnt;
    }
    if (iovcnt > 0) {
      iov[0].iov_base = static_cast<uint8_t*>(iov[0].iov_base) + left;
      iov[0].iov_len -= left;
    }
  }
  return OkStatus();
}

constexpr size_t kMaxFrame = 1 << 26;  // 64 MiB sanity limit
constexpr size_t kRecvChunk = 64 * 1024;

}  // namespace

// -------------------------------------------------------------------- TCP

TcpTransport::~TcpTransport() { Close(); }

Result<std::unique_ptr<TcpTransport>> TcpTransport::Connect(
    const std::string& host, uint16_t port, int timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return UnavailableError("socket() failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgumentError("bad address: " + host);
  }
  auto fail = [&](const char* what) {
    Status status = UnavailableError(StrPrintf(
        "%s %s:%u failed: %s", what, host.c_str(), port, strerror(errno)));
    ::close(fd);
    return status;
  };
  if (timeout_ms < 0) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return fail("connect to");
    }
  } else {
    // Bounded connect: non-blocking connect + poll, then restore the
    // blocking flags the rest of the transport expects.
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
      return fail("fcntl for connect to");
    }
    int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      return fail("connect to");
    }
    if (rc != 0) {
      // Same EINTR-retry convention as Send/Recv, against the remaining
      // budget so a signal storm cannot extend the bound.
      auto deadline = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(timeout_ms);
      while (true) {
        auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now());
        int wait_ms = left.count() > 0 ? static_cast<int>(left.count()) : 0;
        pollfd pfd{fd, POLLOUT, 0};
        int ready = ::poll(&pfd, 1, wait_ms);
        if (ready < 0 && errno == EINTR) {
          continue;
        }
        if (ready <= 0) {
          errno = ready == 0 ? ETIMEDOUT : errno;
          return fail("connect to");
        }
        break;
      }
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        errno = err;
        return fail("connect to");
      }
    }
    if (::fcntl(fd, F_SETFL, flags) != 0) {
      return fail("fcntl for connect to");
    }
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<TcpTransport>(fd);
}

Status TcpTransport::Send(const Bytes& message) {
  int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) {
    return UnavailableError("transport closed");
  }
  if (message.size() > kMaxFrame) {
    return InvalidArgumentError("frame too large");
  }
  uint8_t hdr[4];
  uint32_t len = static_cast<uint32_t>(message.size());
  hdr[0] = static_cast<uint8_t>(len >> 24);
  hdr[1] = static_cast<uint8_t>(len >> 16);
  hdr[2] = static_cast<uint8_t>(len >> 8);
  hdr[3] = static_cast<uint8_t>(len);
  // Header and payload go out in one gathered syscall: fewer syscalls per
  // frame and no header-only segment when Nagle is off.
  struct iovec iov[2];
  iov[0].iov_base = hdr;
  iov[0].iov_len = sizeof(hdr);
  iov[1].iov_base = const_cast<uint8_t*>(message.data());
  iov[1].iov_len = message.size();
  return SendAllVec(fd, iov, message.empty() ? 1 : 2);
}

Result<bool> TcpTransport::FillRecvBuffer(int fd, bool nonblocking) {
  // Compact once the consumed prefix dominates, so the buffer does not
  // creep upward across long-lived connections.
  if (rpos_ > 0 && (rpos_ == rbuf_.size() || rpos_ >= kRecvChunk)) {
    rbuf_.erase(rbuf_.begin(), rbuf_.begin() + rpos_);
    rpos_ = 0;
  }
  // Read into scratch and append only what arrived: growing rbuf_ first
  // would zero-initialize the whole chunk on every call (including EAGAIN
  // probes), which dominates small-message receive cost.
  uint8_t scratch[kRecvChunk];
  while (true) {
    ssize_t n = ::recv(fd, scratch, sizeof(scratch),
                       nonblocking ? MSG_DONTWAIT : 0);
    if (n > 0) {
      rbuf_.insert(rbuf_.end(), scratch, scratch + n);
      return true;
    }
    if (n == 0) {
      return UnavailableError("peer closed connection");
    }
    if (errno == EINTR) {
      continue;
    }
    if (nonblocking && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return false;
    }
    return UnavailableError(StrPrintf("recv failed: %s", strerror(errno)));
  }
}

Result<bool> TcpTransport::ExtractFrame(Bytes* out) {
  size_t avail = rbuf_.size() - rpos_;
  if (avail < 4) {
    return false;
  }
  const uint8_t* hdr = rbuf_.data() + rpos_;
  uint32_t len = (static_cast<uint32_t>(hdr[0]) << 24) |
                 (static_cast<uint32_t>(hdr[1]) << 16) |
                 (static_cast<uint32_t>(hdr[2]) << 8) |
                 static_cast<uint32_t>(hdr[3]);
  if (len > kMaxFrame) {
    return DataLossError("oversized frame");
  }
  if (avail < 4 + static_cast<size_t>(len)) {
    return false;
  }
  out->assign(rbuf_.begin() + rpos_ + 4, rbuf_.begin() + rpos_ + 4 + len);
  rpos_ += 4 + len;
  return true;
}

Result<Bytes> TcpTransport::Recv() {
  while (true) {
    int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0) {
      return UnavailableError("transport closed");
    }
    Bytes out;
    ASSIGN_OR_RETURN(bool have, ExtractFrame(&out));
    if (have) {
      return out;
    }
    ASSIGN_OR_RETURN(bool appended, FillRecvBuffer(fd, /*nonblocking=*/false));
    (void)appended;  // blocking fill always appends or errors
  }
}

Result<std::optional<Bytes>> TcpTransport::TryRecv() {
  while (true) {
    int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0) {
      return UnavailableError("transport closed");
    }
    Bytes out;
    ASSIGN_OR_RETURN(bool have, ExtractFrame(&out));
    if (have) {
      return std::optional<Bytes>(std::move(out));
    }
    ASSIGN_OR_RETURN(bool progressed, FillRecvBuffer(fd, /*nonblocking=*/true));
    if (!progressed) {
      return std::optional<Bytes>();  // socket drained; poll and retry
    }
  }
}

Result<bool> TcpTransport::SendNonBlocking(const Bytes& message) {
  int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) {
    return UnavailableError("transport closed");
  }
  if (message.size() > kMaxFrame) {
    return InvalidArgumentError("frame too large");
  }
  uint8_t hdr[4];
  uint32_t len = static_cast<uint32_t>(message.size());
  hdr[0] = static_cast<uint8_t>(len >> 24);
  hdr[1] = static_cast<uint8_t>(len >> 16);
  hdr[2] = static_cast<uint8_t>(len >> 8);
  hdr[3] = static_cast<uint8_t>(len);
  if (opos_ == obuf_.size()) {
    // Fast path: nothing buffered — try one gathered non-blocking sendmsg
    // and only buffer the remainder the kernel did not take.
    obuf_.clear();
    opos_ = 0;
    struct iovec iov[2];
    iov[0].iov_base = hdr;
    iov[0].iov_len = sizeof(hdr);
    iov[1].iov_base = const_cast<uint8_t*>(message.data());
    iov[1].iov_len = message.size();
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = message.empty() ? 1 : 2;
    ssize_t n;
    do {
      n = ::sendmsg(fd, &msg, MSG_NOSIGNAL | MSG_DONTWAIT);
    } while (n < 0 && errno == EINTR);
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
      return UnavailableError(StrPrintf("send failed: %s", strerror(errno)));
    }
    size_t sent = n > 0 ? static_cast<size_t>(n) : 0;
    size_t total = sizeof(hdr) + message.size();
    if (sent == total) {
      return true;
    }
    if (sent < sizeof(hdr)) {
      obuf_.insert(obuf_.end(), hdr + sent, hdr + sizeof(hdr));
      obuf_.insert(obuf_.end(), message.begin(), message.end());
    } else {
      obuf_.insert(obuf_.end(), message.begin() + (sent - sizeof(hdr)),
                   message.end());
    }
    return false;
  }
  // Output already pending: preserve frame order by appending behind it.
  obuf_.insert(obuf_.end(), hdr, hdr + sizeof(hdr));
  obuf_.insert(obuf_.end(), message.begin(), message.end());
  return FlushSend();
}

Result<bool> TcpTransport::FlushSend() {
  int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) {
    return UnavailableError("transport closed");
  }
  while (opos_ < obuf_.size()) {
    ssize_t n = ::send(fd, obuf_.data() + opos_, obuf_.size() - opos_,
                       MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return false;
      }
      return UnavailableError(StrPrintf("send failed: %s", strerror(errno)));
    }
    opos_ += static_cast<size_t>(n);
  }
  obuf_.clear();
  opos_ = 0;
  return true;
}

void TcpTransport::Shutdown() {
  int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
  }
}

void TcpTransport::Close() {
  int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

TcpListener::~TcpListener() { Close(); }

Result<std::unique_ptr<TcpListener>> TcpListener::Listen(
    uint16_t port, const std::string& bind_addr) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return UnavailableError("socket() failed");
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (bind_addr.empty()) {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgumentError("bad bind address: " + bind_addr);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return UnavailableError(StrPrintf("bind failed: %s", strerror(errno)));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return UnavailableError("listen failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return UnavailableError("getsockname failed");
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(addr.sin_port)));
}

Result<std::unique_ptr<TcpTransport>> TcpListener::Accept() {
  int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) {
    return UnavailableError("listener closed");
  }
  int client;
  do {
    client = ::accept(fd, nullptr, nullptr);
  } while (client < 0 && errno == EINTR);
  if (client < 0) {
    return UnavailableError(StrPrintf("accept failed: %s", strerror(errno)));
  }
  int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<TcpTransport>(client);
}

void TcpListener::Shutdown() {
  int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
  }
}

void TcpListener::Close() {
  int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

// ----------------------------------------------------------------- in-proc

struct InProcTransport::Queue {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Bytes> messages;
  bool closed = false;
};

InProcTransport::Pair InProcTransport::CreatePair() {
  auto q1 = std::make_shared<Queue>();
  auto q2 = std::make_shared<Queue>();
  Pair pair;
  pair.a = std::unique_ptr<InProcTransport>(new InProcTransport(q1, q2));
  pair.b = std::unique_ptr<InProcTransport>(new InProcTransport(q2, q1));
  return pair;
}

InProcTransport::~InProcTransport() { Close(); }

Status InProcTransport::Send(const Bytes& message) {
  std::lock_guard<std::mutex> lock(tx_->mu);
  if (tx_->closed) {
    return UnavailableError("transport closed");
  }
  tx_->messages.push_back(message);
  tx_->cv.notify_one();
  return OkStatus();
}

Result<Bytes> InProcTransport::Recv() {
  std::unique_lock<std::mutex> lock(rx_->mu);
  rx_->cv.wait(lock, [this] { return !rx_->messages.empty() || rx_->closed; });
  if (rx_->messages.empty()) {
    return UnavailableError("peer closed");
  }
  Bytes out = std::move(rx_->messages.front());
  rx_->messages.pop_front();
  return out;
}

void InProcTransport::Close() {
  for (const auto& q : {tx_, rx_}) {
    if (q != nullptr) {
      std::lock_guard<std::mutex> lock(q->mu);
      q->closed = true;
      q->cv.notify_all();
    }
  }
}

}  // namespace discfs
