#!/usr/bin/env bash
# Builds the Release tree and runs the policy + RPC + coherence +
# admission + storage + lockbox + observability + overload benchmarks,
# leaving BENCH_policy.json, BENCH_rpc.json, BENCH_coherence.json,
# BENCH_admission.json, BENCH_storage.json, BENCH_lockbox.json,
# BENCH_obs.json, and BENCH_overload.json at the repo root (schemas:
# docs/BENCH_SCHEMAS.md, enforced by tools/check_bench_schema.py).
#
# Usage: tools/run_bench.sh [max_credentials]
#   max_credentials  cap the policy_scaling and admission_scaling sweeps
#                    (default 10000)
set -euo pipefail

die() {
  echo "run_bench.sh: error: $*" >&2
  exit 1
}

command -v cmake >/dev/null 2>&1 || die "cmake not found in PATH"
command -v c++ >/dev/null 2>&1 || command -v g++ >/dev/null 2>&1 ||
  command -v clang++ >/dev/null 2>&1 || die "no C++ compiler found in PATH"

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build-release"
max_credentials="${1:-10000}"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j "$(nproc)" \
  --target policy_scaling ablation_cache rpc_pipeline \
  coherence_propagation admission_scaling storage_scaling \
  lockbox_sharing obs_overhead overload_harness micro_ops

echo "--- policy_scaling (writes BENCH_policy.json) ---"
"$build_dir/policy_scaling" "$repo_root/BENCH_policy.json" "$max_credentials"

echo "--- ablation_cache ---"
"$build_dir/ablation_cache"

echo "--- rpc_pipeline (writes BENCH_rpc.json; fails below 3x pipelining"
echo "    speedup or when 64->256 connections grows the thread count) ---"
"$build_dir/rpc_pipeline" "$repo_root/BENCH_rpc.json"

echo "--- coherence_propagation (writes BENCH_coherence.json; fails when"
echo "    remote invalidation stops being scoped: survivors < 0.9) ---"
"$build_dir/coherence_propagation" "$repo_root/BENCH_coherence.json"

echo "--- admission_scaling (writes BENCH_admission.json; fails below 2x"
echo "    verify speedup or, on >= 4 cores, below 2x admit scaling) ---"
"$build_dir/admission_scaling" "$repo_root/BENCH_admission.json" \
  "$max_credentials"

echo "--- storage_scaling (writes BENCH_storage.json; fails below 3x warm"
echo "    cached read speedup, below 90% rewrite hit rate, or a dirty"
echo "    fsck; one tier runs with the device latency model enabled) ---"
"$build_dir/storage_scaling" "$repo_root/BENCH_storage.json"

echo "--- lockbox_sharing (writes BENCH_lockbox.json; fails below 0.9"
echo "    public dedup ratio, on any sealed-chunk dedup hit, or when a"
echo "    revoked device's lockbox fetch is not denied cluster-wide) ---"
"$build_dir/lockbox_sharing" "$repo_root/BENCH_lockbox.json"

echo "--- obs_overhead (writes BENCH_obs.json; fails when the enabled"
echo "    metrics registry costs > 5% on pipelined RPC or warm admission,"
echo "    or when a live kServerStats scrape comes back incomplete) ---"
"$build_dir/obs_overhead" "$repo_root/BENCH_obs.json"

echo "--- overload_harness (writes BENCH_overload.json; fails on any"
echo "    control-plane shed under data-plane overload, any expired"
echo "    request executed past its deadline, or when a handshake flood"
echo "    reaches the worker pool or locks out a legitimate client) ---"
"$build_dir/overload_harness" "$repo_root/BENCH_overload.json" \
  "$max_credentials"

echo "--- micro_ops (self-timed core-primitive microbenchmarks) ---"
"$build_dir/micro_ops"

if command -v python3 >/dev/null 2>&1; then
  echo "--- schema validation ---"
  python3 "$repo_root/tools/check_bench_schema.py" \
    "$repo_root/BENCH_policy.json" "$repo_root/BENCH_rpc.json" \
    "$repo_root/BENCH_coherence.json" "$repo_root/BENCH_admission.json" \
    "$repo_root/BENCH_storage.json" "$repo_root/BENCH_lockbox.json" \
    "$repo_root/BENCH_obs.json" "$repo_root/BENCH_overload.json"
else
  echo "warning: python3 not found; skipping bench schema validation" >&2
fi

echo "done: $repo_root/BENCH_policy.json $repo_root/BENCH_rpc.json" \
  "$repo_root/BENCH_coherence.json $repo_root/BENCH_admission.json" \
  "$repo_root/BENCH_storage.json $repo_root/BENCH_lockbox.json" \
  "$repo_root/BENCH_obs.json $repo_root/BENCH_overload.json"
