// dsagen: generates the DSA/DH domain parameters embedded in
// src/crypto/groups.cc. Output is KEY=hexvalue lines consumed by
// tools/embed_params.py (or pasted by hand).
//
// Usage: dsagen [seed]
//   With a seed argument the generation is deterministic (useful for
//   reproducing the checked-in constants); otherwise /dev/urandom is used.
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>

#include "src/crypto/groups.h"
#include "src/crypto/sysrand.h"
#include "src/util/prng.h"

namespace {

void EmitGroup(const char* tag, const discfs::DsaParams& params) {
  std::printf("P%s=%s\n", tag, params.p.ToHex().c_str());
  std::printf("Q%s=%s\n", tag, params.q.ToHex().c_str());
  std::printf("G%s=%s\n", tag, params.g.ToHex().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::function<discfs::Bytes(size_t)> rand_bytes;
  std::unique_ptr<discfs::Prng> prng;
  if (argc > 1) {
    prng = std::make_unique<discfs::Prng>(std::strtoull(argv[1], nullptr, 10));
    rand_bytes = [&prng](size_t n) { return prng->NextBytes(n); };
  } else {
    rand_bytes = [](size_t n) { return discfs::SysRandomBytes(n); };
  }

  std::fprintf(stderr, "generating 512/160 group...\n");
  discfs::DsaParams small = discfs::GenerateDsaParams(512, 160, rand_bytes);
  auto st = discfs::ValidateDsaParams(small, rand_bytes);
  if (!st.ok()) {
    std::fprintf(stderr, "512 group failed validation: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  EmitGroup("512", small);

  std::fprintf(stderr, "generating 1024/160 group (may take a minute)...\n");
  discfs::DsaParams big = discfs::GenerateDsaParams(1024, 160, rand_bytes);
  st = discfs::ValidateDsaParams(big, rand_bytes);
  if (!st.ok()) {
    std::fprintf(stderr, "1024 group failed validation: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  EmitGroup("1024", big);
  return 0;
}
