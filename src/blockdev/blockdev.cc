#include "src/blockdev/blockdev.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "src/util/strings.h"

namespace discfs {

MemBlockDevice::MemBlockDevice(uint32_t block_size, uint64_t block_count,
                               LatencyModel latency)
    : block_size_(block_size),
      block_count_(block_count),
      latency_(latency),
      data_(static_cast<size_t>(block_size) * block_count, 0) {}

void MemBlockDevice::ApplyLatency(uint64_t block) {
  if (latency_.seek_ns == 0 && latency_.transfer_ns == 0) {
    return;
  }
  uint64_t ns = latency_.transfer_ns;
  uint64_t last = last_block_.exchange(block, std::memory_order_relaxed);
  if (last != ~0ULL && block != last + 1) {
    ns += latency_.seek_ns;
  }
  if (ns > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
  }
}

Status MemBlockDevice::Read(uint64_t block, uint8_t* buf) {
  if (block >= block_count_) {
    return OutOfRangeError(StrPrintf("read past device end: block %llu",
                                     static_cast<unsigned long long>(block)));
  }
  ApplyLatency(block);
  std::memcpy(buf, data_.data() + block * block_size_, block_size_);
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  return OkStatus();
}

Status MemBlockDevice::Write(uint64_t block, const uint8_t* buf) {
  if (block >= block_count_) {
    return OutOfRangeError(StrPrintf("write past device end: block %llu",
                                     static_cast<unsigned long long>(block)));
  }
  ApplyLatency(block);
  std::memcpy(data_.data() + block * block_size_, buf, block_size_);
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  return OkStatus();
}

}  // namespace discfs
