// FFS — an inode-based local filesystem over a BlockDevice, standing in for
// OpenBSD's Fast File System in the paper's stack. It serves two roles:
//   1. the storage substrate under the NFS/DisCFS servers, and
//   2. the "FFS" baseline measured in the paper's Figures 7-12.
//
// On-disk layout (block size fixed at format time, default 4096):
//   block 0:                superblock
//   blocks [ibm, ibm+n):    inode bitmap
//   blocks [dbm, dbm+m):    data bitmap (covers the data region)
//   blocks [itab, itab+k):  inode table (128-byte inodes)
//   blocks [data, end):     data blocks
//
// Files use 10 direct block pointers, one single-indirect and one
// double-indirect block (ext2-style). Directories are arrays of fixed
// 64-byte entries. Every inode carries a generation number, bumped on
// reuse, so NFS file handles (inode, generation) never resurrect — the
// handle scheme §5 of the paper borrows from 4.4BSD.
#ifndef DISCFS_SRC_FFS_FFS_H_
#define DISCFS_SRC_FFS_FFS_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/blockdev/blockdev.h"
#include "src/util/status.h"

namespace discfs {

using InodeNum = uint32_t;

enum class FileType : uint8_t {
  kFree = 0,
  kRegular = 1,
  kDirectory = 2,
  kSymlink = 3,
};

struct InodeAttr {
  InodeNum inode = 0;
  uint32_t generation = 0;
  FileType type = FileType::kFree;
  uint32_t mode = 0;  // unix permission bits (low 12 bits)
  uint32_t uid = 0;
  uint32_t gid = 0;
  uint32_t nlink = 0;
  uint64_t size = 0;
  int64_t atime = 0;
  int64_t mtime = 0;
  int64_t ctime = 0;
};

struct DirEntry {
  std::string name;
  InodeNum inode;
  FileType type;
};

struct SetAttrRequest {
  std::optional<uint32_t> mode;
  std::optional<uint32_t> uid;
  std::optional<uint32_t> gid;
  std::optional<uint64_t> size;  // truncate/extend
  std::optional<int64_t> atime;
  std::optional<int64_t> mtime;
};

struct StatFsInfo {
  uint32_t block_size = 0;
  uint64_t total_blocks = 0;
  uint64_t free_blocks = 0;
  uint32_t total_inodes = 0;
  uint32_t free_inodes = 0;
};

struct FfsFormatOptions {
  uint32_t inode_count = 4096;
};

// fsck-style consistency report; `errors` empty means the volume is clean.
struct FsckReport {
  std::vector<std::string> errors;
  uint64_t files = 0;
  uint64_t directories = 0;
  uint64_t used_blocks = 0;
  bool clean() const { return errors.empty(); }
};

class Ffs {
 public:
  static constexpr char kMaxNameLen = 58;

  ~Ffs();  // out-of-line: Superblock is an incomplete type here

  // Formats the device and mounts the fresh volume.
  static Result<std::unique_ptr<Ffs>> Format(
      std::shared_ptr<BlockDevice> device, const FfsFormatOptions& options);

  // Mounts an existing volume (validates the superblock).
  static Result<std::unique_ptr<Ffs>> Mount(
      std::shared_ptr<BlockDevice> device);

  InodeNum root() const { return root_inode_; }

  Result<InodeAttr> GetAttr(InodeNum inode);
  Status SetAttr(InodeNum inode, const SetAttrRequest& request);

  Result<InodeAttr> Lookup(InodeNum dir, const std::string& name);

  Result<InodeAttr> Create(InodeNum dir, const std::string& name,
                           uint32_t mode);
  Result<InodeAttr> Mkdir(InodeNum dir, const std::string& name,
                          uint32_t mode);
  Result<InodeAttr> Symlink(InodeNum dir, const std::string& name,
                            const std::string& target);
  Result<std::string> ReadLink(InodeNum inode);
  Status Link(InodeNum dir, const std::string& name, InodeNum target);

  Status Remove(InodeNum dir, const std::string& name);  // files & symlinks
  Status Rmdir(InodeNum dir, const std::string& name);   // empty dirs only
  Status Rename(InodeNum from_dir, const std::string& from_name,
                InodeNum to_dir, const std::string& to_name);

  Result<size_t> Read(InodeNum inode, uint64_t offset, size_t len,
                      uint8_t* out);
  // Extends the file as needed; returns bytes written (== len on success).
  Result<size_t> Write(InodeNum inode, uint64_t offset, const uint8_t* data,
                       size_t len);

  Result<std::vector<DirEntry>> ReadDir(InodeNum dir);

  Result<StatFsInfo> StatFs();

  // Full-volume consistency check (reachability, bitmaps, link counts).
  Result<FsckReport> Check();

  // Current time source for inode timestamps (seconds); tests may override.
  void SetTimeSource(std::function<int64_t()> now) { now_ = std::move(now); }

 private:
  struct Superblock;
  struct DiskInode;

  explicit Ffs(std::shared_ptr<BlockDevice> device);

  Status LoadSuperblock();
  Status WriteSuperblock();

  Result<DiskInode> ReadInode(InodeNum inode);
  Status WriteInode(InodeNum inode, const DiskInode& node);

  Result<InodeNum> AllocInode(FileType type, uint32_t mode);
  Status FreeInode(InodeNum inode);
  Result<uint64_t> AllocBlock();
  Status FreeBlock(uint64_t block);

  // Maps a file block index to a device block, optionally allocating the
  // path (direct / indirect / double-indirect).
  Result<uint64_t> BMap(DiskInode& node, uint64_t file_block, bool allocate,
                        bool& dirty);

  Status FreeAllBlocks(DiskInode& node);
  Status TruncateTo(InodeNum inode, DiskInode& node, uint64_t new_size);

  Result<std::optional<std::pair<uint32_t, DirEntry>>> FindEntry(
      const DiskInode& dir_node, const std::string& name);
  Status AddEntry(InodeNum dir, DiskInode& dir_node, const std::string& name,
                  InodeNum target, FileType type);
  Status RemoveEntrySlot(DiskInode& dir_node, uint32_t slot);
  Result<bool> DirIsEmpty(const DiskInode& dir_node);

  Result<size_t> ReadInternal(DiskInode& node, uint64_t offset, size_t len,
                              uint8_t* out);
  Result<size_t> WriteInternal(InodeNum inode, DiskInode& node,
                               uint64_t offset, const uint8_t* data,
                               size_t len);

  InodeAttr ToAttr(InodeNum inode, const DiskInode& node) const;

  // Bitmap helpers: `bitmap_start` in blocks, index into the bitmap.
  Result<bool> BitmapGet(uint64_t bitmap_start, uint64_t index);
  Status BitmapSet(uint64_t bitmap_start, uint64_t index, bool value);
  Result<std::optional<uint64_t>> BitmapFindFree(uint64_t bitmap_start,
                                                 uint64_t count);

  std::shared_ptr<BlockDevice> dev_;
  std::function<int64_t()> now_;
  std::unique_ptr<Superblock> sb_;
  InodeNum root_inode_ = 1;
};

}  // namespace discfs

#endif  // DISCFS_SRC_FFS_FFS_H_
