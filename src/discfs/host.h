// Hosting helpers: run a DisCFS server (secure channel) or a CFS-NE
// baseline server (plain NFS, no credentials) on a TCP listener. Each
// connection gets a thread for handshake + request decode, but request
// *execution* is shared: the host owns one WorkerPool and every
// connection's requests are pipelined through it, so server-side
// concurrency is bounded by the pool size rather than the connection
// count. Finished connection threads are reaped as new connections arrive
// instead of accumulating until destruction.
#ifndef DISCFS_SRC_DISCFS_HOST_H_
#define DISCFS_SRC_DISCFS_HOST_H_

#include <atomic>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/discfs/server.h"
#include "src/nfs/nfs_client.h"
#include "src/nfs/nfs_server.h"
#include "src/util/worker_pool.h"

namespace discfs {

struct DiscfsHostOptions {
  // Execution threads shared by all connections. 0 = derive from the
  // hardware: clamp(hardware_concurrency, 8, 16) — handlers block on
  // storage, so the floor keeps I/O overlapping even on small machines.
  size_t worker_threads = 0;
  // Per-connection pipelining bound passed to the RPC dispatcher.
  size_t max_inflight_per_conn = 64;
  // Listener bind address ("0.0.0.0" to serve remote peers).
  std::string bind_addr = "127.0.0.1";
};

namespace internal {

// Connection bookkeeping shared by both hosts: spawn-with-done-flag plus
// join-on-accept reaping.
class ConnectionSet {
 public:
  // Runs `serve` on a new tracked thread, joining finished threads first
  // so the set tracks live connections, not the all-time accept count.
  void Spawn(std::function<void()> serve);
  // Joins everything (host shutdown).
  void JoinAll();
  // Connections whose serve function has not yet returned.
  size_t active() const;

 private:
  void ReapFinishedLocked();

  struct Conn {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  mutable std::mutex mu_;
  std::list<Conn> conns_;
};

}  // namespace internal

// DisCFS over TCP + secure channel.
class DiscfsHost {
 public:
  static Result<std::unique_ptr<DiscfsHost>> Start(
      std::shared_ptr<Vfs> vfs, DiscfsServerConfig config, uint16_t port = 0,
      DiscfsHostOptions options = {});
  ~DiscfsHost();

  uint16_t port() const { return listener_->port(); }
  DiscfsServer& server() { return *server_; }

  // --- load introspection ---
  // Requests currently executing on the shared pool.
  size_t inflight() const { return pool_->in_flight(); }
  // Requests decoded but not yet picked up by a worker.
  size_t queue_depth() const { return pool_->queue_depth(); }
  // Connections whose serve loop is still running.
  size_t active_connections() const { return connections_.active(); }
  size_t worker_threads() const { return pool_->size(); }

 private:
  DiscfsHost() = default;
  void AcceptLoop();

  std::unique_ptr<DiscfsServer> server_;
  std::unique_ptr<WorkerPool> pool_;
  ServeOptions serve_options_;
  std::unique_ptr<TcpListener> listener_;
  std::thread accept_thread_;
  internal::ConnectionSet connections_;
};

// CFS-NE baseline: the same NFS server over plain TCP, every operation
// allowed ("CFS with encryption turned off and modified to run remotely").
class CfsNeHost {
 public:
  static Result<std::unique_ptr<CfsNeHost>> Start(
      std::shared_ptr<Vfs> vfs, uint16_t port = 0,
      DiscfsHostOptions options = {});
  ~CfsNeHost();

  uint16_t port() const { return listener_->port(); }
  NfsServer& server() { return *server_; }
  size_t active_connections() const { return connections_.active(); }

 private:
  CfsNeHost() = default;
  void AcceptLoop();

  std::unique_ptr<NfsServer> server_;
  RpcDispatcher dispatcher_;
  std::unique_ptr<WorkerPool> pool_;
  ServeOptions serve_options_;
  std::unique_ptr<TcpListener> listener_;
  std::thread accept_thread_;
  internal::ConnectionSet connections_;
};

// Connects an NfsClient to a CfsNeHost.
Result<std::unique_ptr<NfsClient>> ConnectCfsNe(const std::string& host,
                                                uint16_t port);

// Same, over a caller-supplied stream (in-proc transports, shaped links).
Result<std::unique_ptr<NfsClient>> ConnectCfsNeOver(
    std::unique_ptr<MsgStream> stream);

}  // namespace discfs

#endif  // DISCFS_SRC_DISCFS_HOST_H_
