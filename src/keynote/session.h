// KeyNoteSession: the long-lived container the DisCFS server keeps per
// store. Policies are installed by the local administrator (unsigned,
// Authorizer "POLICY"); credentials arrive over the network, must carry a
// valid signature, and can be removed again (revocation).
#ifndef DISCFS_SRC_KEYNOTE_SESSION_H_
#define DISCFS_SRC_KEYNOTE_SESSION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/keynote/assertion.h"
#include "src/keynote/compliance.h"
#include "src/keynote/lattice.h"

namespace discfs::keynote {

class KeyNoteSession {
 public:
  explicit KeyNoteSession(const ComplianceLattice& lattice)
      : lattice_(lattice) {}

  // Installs a local policy assertion. Must have Authorizer "POLICY" and no
  // signature requirement.
  Status AddPolicyAssertion(std::string text);

  // Admits a credential: parses it, verifies its signature against its
  // Authorizer key, and stores it. Returns the credential id (also obtainable
  // as Assertion::Id()), which is the handle used for revocation. Admitting
  // the same credential twice is idempotent.
  Result<std::string> AddCredential(std::string text);

  // The two halves of AddCredential, split so a server can run the
  // expensive half (parse + DSA verify, optionally through a
  // verified-signature cache) with no lock held and only the install under
  // its exclusive credential lock.
  static Result<Assertion> ParseAndVerifyCredential(
      std::string text, VerifiedSignatureCache* cache = nullptr);
  // Installs an assertion whose signature ParseAndVerifyCredential already
  // checked. Idempotent like AddCredential.
  Result<std::string> AddVerifiedCredential(Assertion assertion);

  // Removes a credential by id. Returns NOT_FOUND if absent.
  Status RemoveCredential(const std::string& id);

  bool HasCredential(const std::string& id) const;
  size_t credential_count() const { return credentials_.size(); }
  size_t policy_count() const { return policies_.size(); }

  // Ids of all credentials whose Authorizer is `principal` (used when a key
  // is revoked: its delegations must stop contributing). Served from the
  // by-authorizer posting list, not a scan.
  std::vector<std::string> CredentialIdsByAuthorizer(
      const std::string& principal) const;

  // Looks up a credential by id (nullptr if absent).
  const Assertion* FindCredential(const std::string& id) const;

  // Runs the compliance checker over the assertions backward-reachable from
  // the query's action authorizers (the delegation-graph index slice);
  // equals QueryFullScan on every input.
  ComplianceLattice::Value Query(const ComplianceQuery& query) const;

  // Reference implementation: the compliance checker over every installed
  // assertion. Kept for equivalence tests and benchmarks.
  ComplianceLattice::Value QueryFullScan(const ComplianceQuery& query) const;

  // Principals whose Query results may change when credential `id` is added
  // or removed (scoped cache invalidation). The credential must currently
  // be installed; returns an empty vector for unknown ids.
  std::vector<std::string> AffectedRequesters(const std::string& id) const;

  const ComplianceLattice& lattice() const { return lattice_; }

 private:
  const ComplianceLattice& lattice_;
  std::vector<std::unique_ptr<Assertion>> policies_;
  std::map<std::string, std::unique_ptr<Assertion>> credentials_;  // by id
  DelegationIndex index_;  // postings over policies_ + credentials_
};

}  // namespace discfs::keynote

#endif  // DISCFS_SRC_KEYNOTE_SESSION_H_
