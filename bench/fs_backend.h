// Benchmark backends: the three systems compared throughout the paper's
// evaluation (§6), behind one interface.
//
//   FFS     — direct calls into the local filesystem (the paper's local
//             baseline; "local file system experiments were performed on
//             Alice").
//   CFS-NE  — the same NFS server reached over plain TCP, no credentials
//             ("basically CFS with encryption turned off and modified to
//             run remotely").
//   DisCFS  — NFS over the secure channel with KeyNote checks + policy
//             cache (the prototype under test).
#ifndef DISCFS_BENCH_FS_BACKEND_H_
#define DISCFS_BENCH_FS_BACKEND_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/discfs/client.h"
#include "src/discfs/host.h"
#include "src/util/status.h"
#include "src/vfs/vfs.h"

namespace discfs::bench {

struct BenchFile {
  NfsFh fh;  // FFS backend uses .inode only
};

struct BackendOptions {
  // Device sizing.
  uint64_t device_mib = 256;
  uint32_t inode_count = 65536;
  // DisCFS knobs.
  size_t policy_cache_size = 128;  // paper's Figure 12 setting
  int64_t policy_cache_ttl_s = 3600;
  // Storage data-plane knobs: block-cache capacity (0 = uncached seed
  // path), readahead window, and an optional device latency model so the
  // cache's I/O elision is visible in wall-clock time.
  size_t cache_blocks = 4096;
  size_t readahead_blocks = 8;
  LatencyModel latency;
};

class FsBackend {
 public:
  virtual ~FsBackend() = default;

  virtual std::string name() const = 0;

  virtual Result<BenchFile> CreateFile(const std::string& name) = 0;
  virtual Result<BenchFile> OpenFile(const std::string& name) = 0;
  virtual Status WriteAt(const BenchFile& f, uint64_t offset,
                         const uint8_t* data, size_t len) = 0;
  virtual Result<size_t> ReadAt(const BenchFile& f, uint64_t offset,
                                uint8_t* buf, size_t len) = 0;
  virtual Status RemoveFile(const std::string& name) = 0;

  // Tree operations for the search benchmark (absolute paths, '/'-separated,
  // relative to the store root).
  virtual Status MakeDirPath(const std::string& path) = 0;
  virtual Status WriteWholeFile(const std::string& path,
                                const std::string& contents) = 0;
  virtual Result<std::string> ReadWholeFile(const std::string& path) = 0;
  // Lists (name, is_dir) pairs.
  virtual Result<std::vector<std::pair<std::string, bool>>> ListDir(
      const std::string& path) = 0;
};

// Factories. Each owns everything it needs (volume, hosts, clients).
Result<std::unique_ptr<FsBackend>> MakeFfsBackend(const BackendOptions& opts);
Result<std::unique_ptr<FsBackend>> MakeCfsNeBackend(
    const BackendOptions& opts);
Result<std::unique_ptr<FsBackend>> MakeDiscfsBackend(
    const BackendOptions& opts);

// All three, in the paper's presentation order.
Result<std::vector<std::unique_ptr<FsBackend>>> MakeAllBackends(
    const BackendOptions& opts);

// DisCFS-only introspection for cache studies; null for other backends.
DiscfsServer* BackendDiscfsServer(FsBackend& backend);

// FFS-backend introspection (block-cache stats, Sync, Check); null for the
// remote backends, whose volume lives behind the host.
Ffs* BackendFfs(FsBackend& backend);

}  // namespace discfs::bench

#endif  // DISCFS_BENCH_FS_BACKEND_H_
