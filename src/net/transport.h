// Message-oriented reliable byte transports.
//
// MsgStream is the interface the RPC layer speaks: whole-message send and
// blocking receive. Transports (TCP, in-process pipe) implement it directly;
// SecureChannel wraps any transport and also implements it, so swapping
// "plain NFS" (CFS-NE baseline) for "NFS over IPsec" (DisCFS) is a one-line
// change in the stack — matching the paper's layering.
//
// Threading contract: one thread may sit in Recv while another thread calls
// Send — the RPC demux loop depends on that split. Shutdown may be called
// from any thread and reliably unblocks a Recv in progress; Close
// additionally releases resources and must not race a blocked Recv (callers
// Shutdown first, join the receiver, then Close/destroy).
//
// Event-loop integration: streams backed by a kernel fd also expose a
// non-blocking face — PollFd() for epoll registration, TryRecv() to drain
// whatever is already available, and SendNonBlocking()/FlushSend() so a
// single writer (the loop) can push output without ever parking in
// sendmsg(2). The blocking and non-blocking receive paths share one
// reassembly buffer, so a connection may handshake with blocking Recv and
// then hand the same stream to an event loop. At most one thread may use
// the receive side at a time, and at most one the non-blocking send side.
#ifndef DISCFS_SRC_NET_TRANSPORT_H_
#define DISCFS_SRC_NET_TRANSPORT_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>

#include "src/util/bytes.h"
#include "src/util/status.h"

namespace discfs {

class MsgStream {
 public:
  virtual ~MsgStream() = default;

  virtual Status Send(const Bytes& message) = 0;
  // Blocks until a message arrives. Returns UNAVAILABLE once the peer has
  // closed and all buffered messages are drained.
  virtual Result<Bytes> Recv() = 0;
  virtual void Close() = 0;
  // Tears down the stream's data flow without releasing resources: any
  // blocked Recv (and subsequent calls) fail with UNAVAILABLE. Safe to call
  // concurrently with Send/Recv; defaults to Close for transports whose
  // Close already has that property.
  virtual void Shutdown() { Close(); }

  // --- non-blocking face (event-loop integration) ---
  // Kernel fd to poll for readiness, or -1 when the stream has none
  // (in-process transports); callers fall back to blocking threads then.
  virtual int PollFd() const { return -1; }
  // Never blocks. Returns a complete message when one can be assembled
  // from buffered + immediately-available bytes, std::nullopt when the
  // stream is merely drained (poll for readability and retry), and an
  // error once the stream is broken or the peer is gone.
  virtual Result<std::optional<Bytes>> TryRecv() {
    return UnimplementedError("TryRecv unsupported on this stream");
  }
  // Attempts to send without blocking. Returns true when the message (and
  // any previously buffered output) fully reached the kernel, false when
  // output remains buffered — poll for writability and call FlushSend().
  // The message is accepted (owned by the stream) in both non-error cases.
  // Default: blocking Send, which trivially satisfies the contract.
  virtual Result<bool> SendNonBlocking(const Bytes& message) {
    RETURN_IF_ERROR(Send(message));
    return true;
  }
  // Pushes previously buffered output toward the kernel without blocking;
  // true once nothing remains buffered.
  virtual Result<bool> FlushSend() { return true; }
};

// TCP transport with u32 length-prefixed framing.
class TcpTransport : public MsgStream {
 public:
  ~TcpTransport() override;

  // timeout_ms < 0 blocks until the kernel gives up (the classic
  // behavior); >= 0 bounds the connect itself, so callers with their own
  // retry loops (the coherence fabric's peer senders) stay responsive to
  // shutdown even when a peer is blackholed rather than refusing.
  static Result<std::unique_ptr<TcpTransport>> Connect(
      const std::string& host, uint16_t port, int timeout_ms = -1);

  Status Send(const Bytes& message) override;
  Result<Bytes> Recv() override;
  void Close() override;
  // shutdown(2) both directions but keeps the descriptor open, so a Recv
  // blocked in recv(2) returns instead of racing a close(2)/fd-reuse.
  void Shutdown() override;

  int PollFd() const override { return fd_.load(std::memory_order_acquire); }
  Result<std::optional<Bytes>> TryRecv() override;
  Result<bool> SendNonBlocking(const Bytes& message) override;
  Result<bool> FlushSend() override;

  // Takes ownership of a connected socket (used by the listener).
  explicit TcpTransport(int fd) : fd_(fd) {}

 private:
  // Appends available bytes to rbuf_; MSG_DONTWAIT when `nonblocking`.
  // Returns false on EAGAIN (nonblocking only), UNAVAILABLE on EOF/error.
  Result<bool> FillRecvBuffer(int fd, bool nonblocking);
  // Extracts one complete length-prefixed frame from rbuf_ if present.
  Result<bool> ExtractFrame(Bytes* out);

  std::atomic<int> fd_{-1};
  // Receive reassembly buffer (single receiving thread at a time).
  Bytes rbuf_;
  size_t rpos_ = 0;  // consumed prefix of rbuf_
  // Output not yet accepted by the kernel (single non-blocking sender).
  Bytes obuf_;
  size_t opos_ = 0;  // consumed prefix of obuf_
};

class TcpListener {
 public:
  ~TcpListener();

  // Binds to bind_addr:port; port 0 picks a free port (see port()). The
  // default bind address stays loopback for tests and local benches; pass
  // "0.0.0.0" (or a specific interface address) to serve remote peers.
  static Result<std::unique_ptr<TcpListener>> Listen(
      uint16_t port, const std::string& bind_addr = "127.0.0.1");

  Result<std::unique_ptr<TcpTransport>> Accept();
  uint16_t port() const { return port_; }
  // Unblocks a blocked Accept (which then returns an error) while keeping
  // the descriptor alive; any-thread-safe, like TcpTransport::Shutdown.
  void Shutdown();
  void Close();

 private:
  TcpListener(int fd, uint16_t port) : fd_(fd), port_(port) {}
  std::atomic<int> fd_{-1};
  uint16_t port_ = 0;
};

// In-process transport pair (lock-step queues). Used in unit tests and
// single-process benchmarks where socket latency is not under study.
class InProcTransport : public MsgStream {
 public:
  struct Pair {
    std::unique_ptr<InProcTransport> a;
    std::unique_ptr<InProcTransport> b;
  };
  static Pair CreatePair();

  ~InProcTransport() override;

  Status Send(const Bytes& message) override;
  Result<Bytes> Recv() override;
  void Close() override;

 private:
  struct Queue;
  InProcTransport(std::shared_ptr<Queue> tx, std::shared_ptr<Queue> rx)
      : tx_(std::move(tx)), rx_(std::move(rx)) {}

  std::shared_ptr<Queue> tx_;
  std::shared_ptr<Queue> rx_;
};

}  // namespace discfs

#endif  // DISCFS_SRC_NET_TRANSPORT_H_
