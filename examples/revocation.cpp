// Revocation (§4.1): "revocation ... can be done by notifying the server
// about bad keys or credentials." Shows issuer-side withdrawal of one
// delegation, administrator-side key revocation cascading through the
// delegation graph, and self-revocation after a key compromise.
#include "examples/example_util.h"

using namespace discfs;
using namespace discfs::examples;

int main() {
  Headline("Revocation: bad credentials and bad keys");

  TestBed bed = TestBed::Start();
  DsaPrivateKey bob = NewKey();
  DsaPrivateKey alice = NewKey();
  DsaPrivateKey eve = NewKey();

  Check(WriteFileAt(*bed.vfs, "/ledger.txt", "balance: 42"), "seed");
  InodeAttr ledger = CheckedValue(ResolvePath(*bed.vfs, "/ledger.txt"),
                                  "resolve");
  NfsFh fh{ledger.inode, ledger.generation};

  CredentialOptions rw;
  rw.permissions = "RW";
  std::string admin_to_bob = CheckedValue(
      IssueCredential(bed.admin, bob.public_key(), HandleString(ledger.inode),
                      rw),
      "admin->bob");
  CredentialOptions ro;
  ro.permissions = "R";
  std::string bob_to_alice = CheckedValue(
      IssueCredential(bob, alice.public_key(), HandleString(ledger.inode),
                      ro),
      "bob->alice");
  std::string bob_to_eve = CheckedValue(
      IssueCredential(bob, eve.public_key(), HandleString(ledger.inode), ro),
      "bob->eve");

  auto bob_c = bed.Connect(bob);
  auto alice_c = bed.Connect(alice);
  auto eve_c = bed.Connect(eve);
  CheckedValue(bob_c->SubmitCredential(admin_to_bob), "submit");
  CheckedValue(alice_c->SubmitCredential(bob_to_alice), "submit");
  std::string eve_cred_id =
      CheckedValue(eve_c->SubmitCredential(bob_to_eve), "submit");

  Step("Bob, Alice and Eve can all read the ledger");
  Check(bob_c->nfs().Read(fh, 0, 64).status(), "bob read");
  Check(alice_c->nfs().Read(fh, 0, 64).status(), "alice read");
  Check(eve_c->nfs().Read(fh, 0, 64).status(), "eve read");

  Headline("1. Issuer withdraws one delegation");
  Step("Bob learns Eve is leaking data and removes HER credential only");
  Check(bob_c->RemoveCredential(eve_cred_id), "bob removes eve's credential");
  ExpectDenied(eve_c->nfs().Read(fh, 0, 64), "Eve reading after withdrawal");
  Check(alice_c->nfs().Read(fh, 0, 64).status(),
        "alice still reads (her delegation is intact)");
  Step("Alice is unaffected");

  Headline("2. Administrator revokes a key: the cascade");
  Step("the admin revokes Bob's key at the server (local operation)");
  bed.host->server().RevokeKey(bob.public_key().ToKeyNoteString());
  ExpectDenied(bob_c->nfs().Read(fh, 0, 64), "Bob after key revocation");
  ExpectDenied(alice_c->nfs().Read(fh, 0, 64),
               "Alice after her issuer's key was revoked");

  Headline("3. Self-revocation on key compromise");
  DsaPrivateKey carol = NewKey();
  std::string admin_to_carol = CheckedValue(
      IssueCredential(bed.admin, carol.public_key(),
                      HandleString(ledger.inode), ro),
      "admin->carol");
  auto carol_c = bed.Connect(carol);
  CheckedValue(carol_c->SubmitCredential(admin_to_carol), "submit");
  Check(carol_c->nfs().Read(fh, 0, 64).status(), "carol reads");
  Step("Carol's laptop is stolen; she revokes her own key");
  Check(carol_c->RevokeOwnKey(), "self-revocation");
  ExpectDenied(carol_c->nfs().Read(fh, 0, 64),
               "the stolen key being used afterwards");

  bob_c->Close();
  alice_c->Close();
  eve_c->Close();
  carol_c->Close();
  std::printf("\nrevocation example complete.\n");
  return 0;
}
