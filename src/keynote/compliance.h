// The KeyNote compliance checker (RFC 2704 §5): given local policy
// assertions, a set of credentials, an action attribute set, and the
// principal(s) requesting the action, compute the compliance value.
//
// Semantics: a monotone fixpoint over the delegation graph. Requesting
// principals start at the lattice top; each assertion contributes
// meet(conditions-value, licensees-value) to its authorizer; an authorizer
// accumulates with join. The result is the value reached by "POLICY".
// Because delegation composes with meet, a chain can only *restrict* what
// the requester ends up with — the property DisCFS relies on.
#ifndef DISCFS_SRC_KEYNOTE_COMPLIANCE_H_
#define DISCFS_SRC_KEYNOTE_COMPLIANCE_H_

#include <string>
#include <vector>

#include "src/keynote/assertion.h"
#include "src/keynote/lattice.h"

namespace discfs::keynote {

struct ComplianceQuery {
  // The action attribute set (app_domain, HANDLE, operation, ...).
  AttributeMap attributes;
  // Principals that directly requested the action (signers of the request).
  std::vector<std::string> action_authorizers;
};

// Computes the compliance value of `query` under `assertions` (policies and
// verified credentials together; the caller is responsible for signature
// checking — see KeyNoteSession). Implicit attributes _MIN_TRUST,
// _MAX_TRUST, _VALUES, and ACTION_AUTHORIZERS are provided automatically.
ComplianceLattice::Value CheckCompliance(
    const std::vector<const Assertion*>& assertions,
    const ComplianceQuery& query, const ComplianceLattice& lattice);

}  // namespace discfs::keynote

#endif  // DISCFS_SRC_KEYNOTE_COMPLIANCE_H_
