#include "src/discfs/action_env.h"

#include "src/keynote/lattice.h"
#include "src/util/strings.h"

namespace discfs {

std::string HandleString(uint32_t inode) {
  return StrPrintf("%u", inode);
}

const char* NfsProcName(NfsProc proc) {
  switch (proc) {
    case NfsProc::kNull:
      return "null";
    case NfsProc::kGetAttr:
      return "getattr";
    case NfsProc::kSetAttr:
      return "setattr";
    case NfsProc::kLookup:
      return "lookup";
    case NfsProc::kReadLink:
      return "readlink";
    case NfsProc::kRead:
      return "read";
    case NfsProc::kWrite:
      return "write";
    case NfsProc::kCreate:
      return "create";
    case NfsProc::kRemove:
      return "remove";
    case NfsProc::kRename:
      return "rename";
    case NfsProc::kLink:
      return "link";
    case NfsProc::kSymlink:
      return "symlink";
    case NfsProc::kMkdir:
      return "mkdir";
    case NfsProc::kRmdir:
      return "rmdir";
    case NfsProc::kReadDir:
      return "readdir";
    case NfsProc::kStatFs:
      return "statfs";
    case NfsProc::kGetRoot:
      return "getroot";
  }
  return "unknown";
}

keynote::AttributeMap BuildActionEnv(NfsProc proc, uint32_t inode,
                                     uint32_t needed_mask,
                                     const Clock& clock) {
  keynote::AttributeMap env;
  env["app_domain"] = kAppDomain;
  env["HANDLE"] = HandleString(inode);
  env["operation"] = NfsProcName(proc);
  env["perm_needed"] = keynote::PermissionLattice::Get().Name(needed_mask);

  CivilTime t = CivilFromUnix(clock.NowUnix());
  env["time_of_day"] = StrPrintf("%02d%02d", t.hour, t.minute);
  env["date"] = StrPrintf("%04d%02d%02d", t.year, t.month, t.day);
  env["timestamp"] = KeyNoteTimestamp(t);
  env["weekday"] = StrPrintf("%d", t.weekday);
  return env;
}

}  // namespace discfs
