#include "src/obs/recorder.h"

#include "src/util/strings.h"

namespace discfs::obs {
namespace {

uint64_t Span(uint64_t from, uint64_t to) { return to > from ? to - from : 0; }

}  // namespace

RpcRecorder::RpcRecorder(MetricsRegistry* registry)
    : registry_(registry),
      calls_total_(registry->GetCounter("discfs_rpc_calls_total",
                                        "RPC calls completed")),
      slow_counter_(registry->GetCounter(
          "discfs_rpc_slow_ops_total",
          "RPC calls whose total span exceeded the slow threshold")),
      shed_counter_(registry->GetCounter(
          "discfs_rpc_shed_total",
          "RPC calls busy-rejected by admission control or a shed "
          "watermark")),
      expired_counter_(registry->GetCounter(
          "discfs_rpc_expired_total",
          "RPC calls dropped at dequeue with an already-expired deadline")),
      send_queue_depth_(registry->GetHistogram(
          "discfs_rpc_send_queue_depth", "",
          "Per-connection reply queue depth at reply enqueue")),
      pool_queue_depth_(registry->GetHistogram(
          "discfs_rpc_pool_queue_depth", "",
          "Shared worker pool backlog at request submit")) {}

void RpcRecorder::RecordShed(uint32_t prog, uint32_t proc,
                             size_t priority_class) {
  if (priority_class >= kPriorityClasses) {
    priority_class = kPriorityClasses - 1;
  }
  shed_by_class_[priority_class].fetch_add(1, std::memory_order_relaxed);
  shed_counter_->Add(1);
  std::lock_guard<std::mutex> lock(overload_mu_);
  ++shed_by_proc_[(static_cast<uint64_t>(prog) << 32) | proc];
}

void RpcRecorder::RecordExpired(uint32_t prog, uint32_t proc) {
  expired_total_.fetch_add(1, std::memory_order_relaxed);
  expired_counter_->Add(1);
  std::lock_guard<std::mutex> lock(overload_mu_);
  ++expired_by_proc_[(static_cast<uint64_t>(prog) << 32) | proc];
}

uint64_t RpcRecorder::shed_total() const {
  uint64_t total = 0;
  for (const auto& c : shed_by_class_) {
    total += c.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t RpcRecorder::shed_total(size_t priority_class) const {
  if (priority_class >= kPriorityClasses) {
    return 0;
  }
  return shed_by_class_[priority_class].load(std::memory_order_relaxed);
}

uint64_t RpcRecorder::expired_total() const {
  return expired_total_.load(std::memory_order_relaxed);
}

std::unordered_map<uint64_t, uint64_t> RpcRecorder::shed_by_proc() const {
  std::lock_guard<std::mutex> lock(overload_mu_);
  return shed_by_proc_;
}

std::unordered_map<uint64_t, uint64_t> RpcRecorder::expired_by_proc() const {
  std::lock_guard<std::mutex> lock(overload_mu_);
  return expired_by_proc_;
}

RpcRecorder::PerProc* RpcRecorder::GetPerProc(uint32_t prog, uint32_t proc) {
  uint64_t key = (static_cast<uint64_t>(prog) << 32) | proc;
  {
    std::shared_lock<std::shared_mutex> lock(map_mu_);
    auto it = per_proc_.find(key);
    if (it != per_proc_.end()) {
      return it->second.get();
    }
  }
  std::lock_guard<std::shared_mutex> lock(map_mu_);
  auto it = per_proc_.find(key);
  if (it != per_proc_.end()) {
    return it->second.get();
  }
  std::string base = StrPrintf("prog=\"%u\",proc=\"%u\"", prog, proc);
  auto per = std::make_unique<PerProc>();
  per->decode = registry_->GetHistogram(
      "discfs_rpc_span_ns", base + ",span=\"decode\"",
      "RPC span timings per (prog, proc) in nanoseconds");
  per->queue_wait =
      registry_->GetHistogram("discfs_rpc_span_ns", base + ",span=\"queue_wait\"");
  per->execute =
      registry_->GetHistogram("discfs_rpc_span_ns", base + ",span=\"execute\"");
  per->reply =
      registry_->GetHistogram("discfs_rpc_span_ns", base + ",span=\"reply\"");
  per->total =
      registry_->GetHistogram("discfs_rpc_span_ns", base + ",span=\"total\"");
  return per_proc_.emplace(key, std::move(per)).first->second.get();
}

void RpcRecorder::RecordCall(uint32_t prog, uint32_t proc,
                             const CallTimestamps& ts,
                             size_t send_queue_depth, size_t pool_queue_depth,
                             uint64_t trace_id) {
  PerProc* per = GetPerProc(prog, proc);
  uint64_t decode = Span(ts.received_ns, ts.decoded_ns);
  uint64_t queue_wait = Span(ts.decoded_ns, ts.exec_start_ns);
  uint64_t execute = Span(ts.exec_start_ns, ts.exec_end_ns);
  uint64_t reply = Span(ts.exec_end_ns, ts.replied_ns);
  uint64_t total = Span(ts.received_ns, ts.replied_ns);
  per->decode->Record(decode);
  per->queue_wait->Record(queue_wait);
  per->execute->Record(execute);
  per->reply->Record(reply);
  per->total->Record(total);
  send_queue_depth_->Record(send_queue_depth);
  pool_queue_depth_->Record(pool_queue_depth);
  calls_total_->Add(1);
  if (total >= slow_threshold_ns_.load(std::memory_order_relaxed)) {
    slow_counter_->Add(1);
    SlowOp op{prog, proc, trace_id, total, decode, queue_wait, execute, reply};
    std::lock_guard<std::mutex> lock(slow_mu_);
    slow_ring_.push_back(op);
    if (slow_ring_.size() > kSlowRingCapacity) {
      slow_ring_.pop_front();
    }
  }
}

std::vector<SlowOp> RpcRecorder::slow_ops() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return std::vector<SlowOp>(slow_ring_.begin(), slow_ring_.end());
}

uint64_t RpcRecorder::slow_ops_total() const { return slow_counter_->Value(); }

}  // namespace discfs::obs
