// Tests for the benchmark harness itself: the three backends must be
// behaviourally identical (same files, same bytes, same wc counts), the
// workload generators deterministic, and the shaper sane — otherwise the
// figures compare different workloads instead of different systems.
#include <gtest/gtest.h>

#include <chrono>

#include "bench/bonnie.h"
#include "bench/search.h"
#include "src/net/shaper.h"

namespace discfs::bench {
namespace {

BackendOptions SmallOpts() {
  BackendOptions opts;
  opts.device_mib = 64;
  opts.inode_count = 2048;
  return opts;
}

// Factory-parameterized suite: every FsBackend implementation must pass.
using Factory = Result<std::unique_ptr<FsBackend>> (*)(const BackendOptions&);

class BackendContract : public ::testing::TestWithParam<Factory> {
 protected:
  void SetUp() override {
    // Disable shaping for functional tests.
    setenv("DISCFS_LINK_MBPS", "0", 1);
    setenv("DISCFS_LINK_LATENCY_US", "0", 1);
    auto backend = GetParam()(SmallOpts());
    ASSERT_TRUE(backend.ok()) << backend.status();
    backend_ = std::move(backend).value();
  }
  std::unique_ptr<FsBackend> backend_;
};

TEST_P(BackendContract, CreateWriteReadFile) {
  auto file = backend_->CreateFile("t.bin");
  ASSERT_TRUE(file.ok()) << file.status();
  Bytes data = ToBytes("backend contract data");
  ASSERT_TRUE(backend_->WriteAt(*file, 0, data.data(), data.size()).ok());
  Bytes buf(64);
  auto n = backend_->ReadAt(*file, 0, buf.data(), buf.size());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, data.size());
  EXPECT_EQ(Bytes(buf.begin(), buf.begin() + *n), data);
}

TEST_P(BackendContract, CreateTruncatesExisting) {
  auto f1 = backend_->CreateFile("t.bin");
  ASSERT_TRUE(f1.ok());
  Bytes big(10000, 'x');
  ASSERT_TRUE(backend_->WriteAt(*f1, 0, big.data(), big.size()).ok());
  auto f2 = backend_->CreateFile("t.bin");
  ASSERT_TRUE(f2.ok());
  Bytes buf(16);
  auto n = backend_->ReadAt(*f2, 0, buf.data(), buf.size());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);  // truncated
}

TEST_P(BackendContract, TreeOps) {
  ASSERT_TRUE(backend_->MakeDirPath("/a/b").ok());
  ASSERT_TRUE(backend_->WriteWholeFile("/a/b/one.c", "int main;\n").ok());
  ASSERT_TRUE(backend_->WriteWholeFile("/a/b/two.h", "#pragma once\n").ok());
  auto listing = backend_->ListDir("/a/b");
  ASSERT_TRUE(listing.ok()) << listing.status();
  EXPECT_EQ(listing->size(), 2u);
  auto content = backend_->ReadWholeFile("/a/b/one.c");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "int main;\n");
}

TEST_P(BackendContract, BonnieSmokeAllPhases) {
  for (BonniePhase phase :
       {BonniePhase::kSeqOutputChar, BonniePhase::kSeqOutputBlock,
        BonniePhase::kSeqRewrite, BonniePhase::kSeqInputChar,
        BonniePhase::kSeqInputBlock}) {
    auto result = RunBonniePhaseFresh(*backend_, phase, /*file_mb=*/1);
    ASSERT_TRUE(result.ok()) << BonniePhaseName(phase) << ": "
                             << result.status();
    EXPECT_EQ(result->bytes, 1024u * 1024u) << BonniePhaseName(phase);
    EXPECT_GT(result->kb_per_sec, 0) << BonniePhaseName(phase);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendContract,
                         ::testing::Values(&MakeFfsBackend, &MakeCfsNeBackend,
                                           &MakeDiscfsBackend),
                         [](const auto& info) {
                           switch (info.index) {
                             case 0:
                               return "Ffs";
                             case 1:
                               return "CfsNe";
                             default:
                               return "Discfs";
                           }
                         });

TEST(SearchWorkload, DeterministicAcrossBackends) {
  setenv("DISCFS_LINK_MBPS", "0", 1);
  setenv("DISCFS_LINK_LATENCY_US", "0", 1);
  SourceTreeSpec spec;
  spec.directories = 3;
  spec.files_per_dir = 5;
  spec.mean_file_bytes = 4096;

  std::optional<SearchResult> reference;
  for (auto factory : {&MakeFfsBackend, &MakeCfsNeBackend,
                       &MakeDiscfsBackend}) {
    auto backend = factory(SmallOpts());
    ASSERT_TRUE(backend.ok());
    auto info = BuildSourceTree(**backend, spec);
    ASSERT_TRUE(info.ok()) << info.status();
    EXPECT_EQ(info->total_files, spec.directories * spec.files_per_dir);
    auto result = RunSearch(**backend, spec);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->files_scanned, info->c_and_h_files);
    if (!reference.has_value()) {
      reference = *result;
    } else {
      // All three systems must report the same logical counts.
      EXPECT_EQ(result->lines, reference->lines);
      EXPECT_EQ(result->words, reference->words);
      EXPECT_EQ(result->bytes, reference->bytes);
      EXPECT_EQ(result->files_scanned, reference->files_scanned);
    }
  }
}

TEST(SearchWorkload, GeneratorDeterministicInSeed) {
  SourceTreeSpec spec;
  spec.directories = 2;
  spec.files_per_dir = 4;
  auto b1 = MakeFfsBackend(SmallOpts());
  auto b2 = MakeFfsBackend(SmallOpts());
  ASSERT_TRUE(b1.ok());
  ASSERT_TRUE(b2.ok());
  auto i1 = BuildSourceTree(**b1, spec);
  auto i2 = BuildSourceTree(**b2, spec);
  ASSERT_TRUE(i1.ok());
  ASSERT_TRUE(i2.ok());
  EXPECT_EQ(i1->total_bytes, i2->total_bytes);
  EXPECT_EQ(i1->c_and_h_files, i2->c_and_h_files);
}

// ----- shaper -----

TEST(Shaper, PassThroughWhenDisabled) {
  auto pair = InProcTransport::CreatePair();
  ShapedStream shaped(std::move(pair.a), LinkModel{0, 0});
  ASSERT_TRUE(shaped.Send(ToBytes("x")).ok());
  auto got = pair.b->Recv();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(*got), "x");
}

TEST(Shaper, DelaysProportionalToSize) {
  auto pair = InProcTransport::CreatePair();
  // 8 Mbps -> 1 byte per microsecond: a 20 KB frame takes >= 20 ms.
  ShapedStream shaped(std::move(pair.a), LinkModel{8, 0});
  auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(shaped.Send(Bytes(20000, 1)).ok());
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  EXPECT_GE(elapsed, 0.018);
  auto got = pair.b->Recv();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 20000u);
}

TEST(Shaper, FixedLatencyApplied) {
  auto pair = InProcTransport::CreatePair();
  ShapedStream shaped(std::move(pair.a), LinkModel{0, 5000});  // 5 ms
  auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(shaped.Send(ToBytes("tiny")).ok());
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  EXPECT_GE(elapsed, 0.004);
}

TEST(Shaper, EnvParsing) {
  setenv("DISCFS_LINK_MBPS", "42.5", 1);
  setenv("DISCFS_LINK_LATENCY_US", "77", 1);
  LinkModel model = LinkModelFromEnv();
  EXPECT_DOUBLE_EQ(model.mbps, 42.5);
  EXPECT_EQ(model.latency_us, 77u);
  unsetenv("DISCFS_LINK_MBPS");
  unsetenv("DISCFS_LINK_LATENCY_US");
  model = LinkModelFromEnv();
  EXPECT_DOUBLE_EQ(model.mbps, 100);  // paper default
}

}  // namespace
}  // namespace discfs::bench
