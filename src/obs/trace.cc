#include "src/obs/trace.h"

#include <atomic>
#include <random>

#include "src/obs/metrics.h"

namespace discfs::obs {
namespace {

thread_local uint64_t g_current_trace = 0;

// SplitMix64 over a random-device-seeded counter: ids are unique within a
// process and collide across processes with probability ~2^-64 per pair —
// plenty for correlating one operation across a mesh.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t MintTraceId() {
  static std::atomic<uint64_t> counter = [] {
    std::random_device rd;
    return (static_cast<uint64_t>(rd()) << 32) ^ rd();
  }();
  uint64_t id = 0;
  while (id == 0) {
    id = Mix(counter.fetch_add(1, std::memory_order_relaxed));
  }
  return id;
}

uint64_t CurrentTraceId() { return g_current_trace; }

TraceScope::TraceScope(uint64_t trace_id) : previous_(g_current_trace) {
  if (trace_id != 0) {
    g_current_trace = trace_id;
  }
}

TraceScope::~TraceScope() { g_current_trace = previous_; }

void TraceLog::Record(uint64_t trace_id, const std::string& stage,
                      std::string detail) {
  if (trace_id == 0) {
    return;
  }
  Observation obs;
  obs.trace_id = trace_id;
  obs.stage = stage;
  obs.detail = std::move(detail);
  obs.at_ns = MonotonicNanos();
  std::lock_guard<std::mutex> lock(mu_);
  ++recorded_total_;
  ring_.push_back(std::move(obs));
  if (ring_.size() > capacity_) {
    ring_.pop_front();
  }
}

bool TraceLog::Contains(uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Observation& obs : ring_) {
    if (obs.trace_id == trace_id) {
      return true;
    }
  }
  return false;
}

bool TraceLog::Contains(uint64_t trace_id, const std::string& stage) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Observation& obs : ring_) {
    if (obs.trace_id == trace_id && obs.stage == stage) {
      return true;
    }
  }
  return false;
}

std::vector<TraceLog::Observation> TraceLog::ForTrace(
    uint64_t trace_id) const {
  std::vector<Observation> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const Observation& obs : ring_) {
    if (obs.trace_id == trace_id) {
      out.push_back(obs);
    }
  }
  return out;
}

std::vector<TraceLog::Observation> TraceLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Observation>(ring_.begin(), ring_.end());
}

uint64_t TraceLog::recorded_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_total_;
}

}  // namespace discfs::obs
