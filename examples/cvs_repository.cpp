// The paper's own war story (§4.2): while writing the paper, the authors
// had no common unix group for the CVS repository and had to make it
// world-writable. With DisCFS "the owner of the repository would simply
// need to issue read-write certificates to all the other authors."
#include "examples/example_util.h"

using namespace discfs;
using namespace discfs::examples;

int main() {
  Headline("CVS repository shared by five authors without a unix group");

  TestBed bed = TestBed::Start();

  // Stefan owns the repository.
  DsaPrivateKey stefan = NewKey();
  auto root = CheckedValue(bed.vfs->GetAttr(bed.vfs->root()), "root");
  CredentialOptions rwx;
  rwx.permissions = "RWX";
  std::string stefan_grant = CheckedValue(
      IssueCredential(bed.admin, stefan.public_key(),
                      HandleString(root.inode), rwx),
      "stefan grant");
  auto stefan_client = bed.Connect(stefan);
  CheckedValue(stefan_client->SubmitCredential(stefan_grant), "submit");
  NfsFattr r = CheckedValue(stefan_client->Attach(), "attach");
  CreateResult repo = CheckedValue(
      stefan_client->MkdirWithCredential(r.fh, "discfs-paper", 0755),
      "mkdir repo");
  Step("Stefan created the repository 'discfs-paper' (handle " +
       std::to_string(repo.attr.fh.inode) + ")");

  struct Author {
    const char* name;
    DsaPrivateKey key;
  };
  std::vector<Author> authors;
  for (const char* name : {"vassilis", "sotiris", "angelos", "jonathan"}) {
    authors.push_back({name, NewKey()});
  }

  // Stefan issues read-write certificates to every co-author. No group
  // file was edited; no administrator was paged.
  std::vector<std::string> certs;
  for (const Author& author : authors) {
    CredentialOptions rw;
    rw.permissions = "RW";
    rw.comment = std::string("discfs-paper commit access for ") + author.name;
    certs.push_back(CheckedValue(
        IssueCredential(stefan, author.key.public_key(),
                        HandleString(repo.attr.fh.inode), rw),
        "author certificate"));
    Step(std::string("issued RW certificate to ") + author.name);
  }

  // Each author connects, submits the two-link chain, and "commits" by
  // writing a section file inside the repository. Writing inside the
  // repository needs W on the repository directory (for CREATE); the
  // augmented CREATE then returns per-file credentials.
  for (size_t i = 0; i < authors.size(); ++i) {
    auto client = bed.Connect(authors[i].key);
    CheckedValue(client->SubmitCredential(certs[i]), "author cert");
    CheckedValue(client->SubmitCredential(stefan_grant), "chain link");
    std::string file = std::string("section-") + authors[i].name + ".tex";
    CreateResult created = CheckedValue(
        client->CreateWithCredential(repo.attr.fh, file, 0644), "commit");
    Check(client->nfs()
              .Write(created.attr.fh, 0,
                     ToBytes(std::string("% section by ") + authors[i].name))
              .status(),
          "write section");
    Step(std::string(authors[i].name) + " committed " + file);
    client->Close();
  }

  // Stefan lists the repository: all four sections are there.
  auto listing = CheckedValue(stefan_client->nfs().ReadDir(repo.attr.fh),
                              "readdir repo");
  Step("repository now contains:");
  for (const NfsDirEntry& e : listing) {
    std::printf("     %s\n", e.name.c_str());
  }

  // And the repository never became world-writable: an outsider with no
  // certificate gets nothing.
  DsaPrivateKey outsider = NewKey();
  auto outsider_client = bed.Connect(outsider);
  ExpectDenied(outsider_client->nfs().ReadDir(repo.attr.fh),
               "outsider listing the repository");
  outsider_client->Close();

  stefan_client->Close();
  std::printf("\nCVS repository example complete.\n");
  return 0;
}
