// Link shaping: models the paper's testbed network (100 Mbps Ethernet
// between Alice and Bob) on top of any MsgStream. Localhost TCP is orders
// of magnitude faster than the 2001 testbed, which would make per-record
// crypto look artificially expensive relative to the wire; pacing frames at
// the era's line rate restores the paper's operating point. Disabled (rate
// 0) the wrapper is a pass-through.
#ifndef DISCFS_SRC_NET_SHAPER_H_
#define DISCFS_SRC_NET_SHAPER_H_

#include <memory>

#include "src/net/transport.h"

namespace discfs {

struct LinkModel {
  double mbps = 0;             // 0 = unshaped
  uint64_t latency_us = 0;     // fixed per-frame latency (propagation/switch)
};

class ShapedStream : public MsgStream {
 public:
  ShapedStream(std::unique_ptr<MsgStream> inner, LinkModel model)
      : inner_(std::move(inner)), model_(model) {}

  Status Send(const Bytes& message) override;
  Result<Bytes> Recv() override;
  void Close() override { inner_->Close(); }

 private:
  void Delay(size_t bytes) const;

  std::unique_ptr<MsgStream> inner_;
  LinkModel model_;
};

// Reads DISCFS_LINK_MBPS / DISCFS_LINK_LATENCY_US; defaults to the paper's
// 100 Mbps with 100 us frame latency when unset.
LinkModel LinkModelFromEnv();

// Wraps only when the model is active.
std::unique_ptr<MsgStream> MaybeShape(std::unique_ptr<MsgStream> inner,
                                      const LinkModel& model);

}  // namespace discfs

#endif  // DISCFS_SRC_NET_SHAPER_H_
