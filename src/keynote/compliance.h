// The KeyNote compliance checker (RFC 2704 §5): given local policy
// assertions, a set of credentials, an action attribute set, and the
// principal(s) requesting the action, compute the compliance value.
//
// Semantics: a monotone fixpoint over the delegation graph. Requesting
// principals start at the lattice top; each assertion contributes
// meet(conditions-value, licensees-value) to its authorizer; an authorizer
// accumulates with join. The result is the value reached by "POLICY".
// Because delegation composes with meet, a chain can only *restrict* what
// the requester ends up with — the property DisCFS relies on.
#ifndef DISCFS_SRC_KEYNOTE_COMPLIANCE_H_
#define DISCFS_SRC_KEYNOTE_COMPLIANCE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/keynote/assertion.h"
#include "src/keynote/lattice.h"

namespace discfs::keynote {

struct ComplianceQuery {
  // The action attribute set (app_domain, HANDLE, operation, ...).
  AttributeMap attributes;
  // Principals that directly requested the action (signers of the request).
  std::vector<std::string> action_authorizers;
};

// Computes the compliance value of `query` under `assertions` (policies and
// verified credentials together; the caller is responsible for signature
// checking — see KeyNoteSession). Implicit attributes _MIN_TRUST,
// _MAX_TRUST, _VALUES, and ACTION_AUTHORIZERS are provided automatically.
ComplianceLattice::Value CheckCompliance(
    const std::vector<const Assertion*>& assertions,
    const ComplianceQuery& query, const ComplianceLattice& lattice);

// Principal → assertion postings over the delegation graph. Value in the
// compliance fixpoint flows along the edge (licensee → authorizer): an
// assertion raises its authorizer based on its licensees' values, and a
// principal starts above bottom only if it is an action authorizer. The
// index therefore answers the two closures the hot path needs:
//
//  * RelevantSlice — the assertions backward-reachable from the requesting
//    principals toward POLICY. Every assertion outside the slice evaluates
//    its licensees to bottom in the full fixpoint and contributes nothing,
//    so CheckCompliance over the slice equals the full scan.
//  * AffectedRequesters — when an assertion is added or removed, the
//    principals whose query results may change: everything that can reach
//    one of its licensee principals. Used for scoped cache invalidation.
class DelegationIndex {
 public:
  // `assertion` must outlive the index (the session owns both).
  void Add(const Assertion* assertion);
  void Remove(const Assertion* assertion);

  std::vector<const Assertion*> RelevantSlice(
      const std::vector<std::string>& requesters) const;

  // Includes the assertion's licensee principals themselves (a requester is
  // trivially affected by a change to an assertion naming it directly).
  // Call while the assertion is still indexed.
  std::vector<std::string> AffectedRequesters(const Assertion& assertion) const;

  // Assertions whose Authorizer is `principal` (empty vector if none).
  const std::vector<const Assertion*>& AuthoredBy(
      const std::string& principal) const;

  size_t assertion_count() const { return assertion_count_; }

 private:
  using Postings =
      std::unordered_map<std::string, std::vector<const Assertion*>>;

  static void EraseFrom(Postings& postings, const std::string& principal,
                        const Assertion* assertion);

  Postings by_authorizer_;
  Postings by_licensee_;  // one posting per distinct licensee principal
  size_t assertion_count_ = 0;
};

}  // namespace discfs::keynote

#endif  // DISCFS_SRC_KEYNOTE_COMPLIANCE_H_
