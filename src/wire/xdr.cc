#include "src/wire/xdr.h"

namespace discfs {
namespace {
size_t PadTo4(size_t n) { return (4 - (n % 4)) % 4; }
}  // namespace

void XdrWriter::PutU32(uint32_t v) {
  out_.push_back(static_cast<uint8_t>(v >> 24));
  out_.push_back(static_cast<uint8_t>(v >> 16));
  out_.push_back(static_cast<uint8_t>(v >> 8));
  out_.push_back(static_cast<uint8_t>(v));
}

void XdrWriter::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v >> 32));
  PutU32(static_cast<uint32_t>(v));
}

void XdrWriter::PutFixed(const Bytes& data) {
  Append(out_, data);
  out_.insert(out_.end(), PadTo4(data.size()), 0);
}

void XdrWriter::PutOpaque(const Bytes& data) {
  PutU32(static_cast<uint32_t>(data.size()));
  PutFixed(data);
}

void XdrWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  Append(out_, s);
  out_.insert(out_.end(), PadTo4(s.size()), 0);
}

Status XdrReader::Need(size_t n) {
  if (pos_ + n > data_.size()) {
    return DataLossError("XDR buffer underrun");
  }
  return OkStatus();
}

Result<uint32_t> XdrReader::GetU32() {
  RETURN_IF_ERROR(Need(4));
  uint32_t v = (static_cast<uint32_t>(data_[pos_]) << 24) |
               (static_cast<uint32_t>(data_[pos_ + 1]) << 16) |
               (static_cast<uint32_t>(data_[pos_ + 2]) << 8) |
               static_cast<uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

Result<uint64_t> XdrReader::GetU64() {
  ASSIGN_OR_RETURN(uint32_t hi, GetU32());
  ASSIGN_OR_RETURN(uint32_t lo, GetU32());
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

Result<int64_t> XdrReader::GetI64() {
  ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<bool> XdrReader::GetBool() {
  ASSIGN_OR_RETURN(uint32_t v, GetU32());
  if (v > 1) {
    return DataLossError("XDR bool out of range");
  }
  return v == 1;
}

Result<Bytes> XdrReader::GetFixed(size_t len) {
  size_t padded = len + PadTo4(len);
  RETURN_IF_ERROR(Need(padded));
  Bytes out(data_.begin() + static_cast<ptrdiff_t>(pos_),
            data_.begin() + static_cast<ptrdiff_t>(pos_ + len));
  pos_ += padded;
  return out;
}

Result<Bytes> XdrReader::GetOpaque(size_t max_len) {
  ASSIGN_OR_RETURN(uint32_t len, GetU32());
  if (len > max_len) {
    return DataLossError("XDR opaque exceeds limit");
  }
  return GetFixed(len);
}

Result<std::string> XdrReader::GetString(size_t max_len) {
  ASSIGN_OR_RETURN(Bytes raw, GetOpaque(max_len));
  return std::string(raw.begin(), raw.end());
}

}  // namespace discfs
