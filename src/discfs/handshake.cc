#include "src/discfs/handshake.h"

#include <utility>
#include <vector>

namespace discfs {

// One half-open handshake. Lifetime: created by Begin, removed from the
// map by exactly one retire/complete path; shared_ptr copies held by
// in-flight worker steps keep the transport alive until they finish.
struct HandshakeReactor::Entry {
  explicit Entry(const ChannelIdentity& identity) : machine(identity) {}

  uint64_t id = 0;  // disambiguates a reused fd number
  int fd = -1;
  std::unique_ptr<MsgStream> transport;
  ServerHandshakeMachine machine;
  std::chrono::steady_clock::time_point started;

  // All guarded by Core::mu. `busy` means a pool worker owns the
  // transport and machine; the poller leaves both alone until it clears.
  bool busy = false;
  // A response is parked in the transport's send buffer awaiting
  // writability; reads stay muted until it drains.
  bool flushing = false;
  // Condemned (timeout, eviction, shutdown, error). Non-busy dead entries
  // are retired immediately; busy ones by their worker when the step ends.
  bool dead = false;
};

struct HandshakeReactor::Core {
  mutable std::mutex mu;
  Options opts;
  EstablishedFn on_established;
  std::unordered_map<int, std::shared_ptr<Entry>> entries;
  Stats counters;  // half_open unused; derived from entries.size()
  uint64_t next_id = 0;
  bool shutdown = false;
};

HandshakeReactor::HandshakeReactor(Options options,
                                   EstablishedFn on_established)
    : core_(std::make_shared<Core>()) {
  core_->opts = std::move(options);
  core_->on_established = std::move(on_established);
}

HandshakeReactor::~HandshakeReactor() { Shutdown(); }

void HandshakeReactor::Begin(std::unique_ptr<MsgStream> transport) {
  std::shared_ptr<Core> core = core_;
  const int fd = transport->PollFd();
  if (fd < 0) {
    // No pollable fd (in-process transports, tests): run the blocking
    // handshake on a worker, the pre-reactor way. The TCP host never
    // takes this path.
    auto shared = std::make_shared<std::unique_ptr<MsgStream>>(
        std::move(transport));
    {
      std::lock_guard<std::mutex> lock(core->mu);
      if (core->shutdown) {
        return;
      }
      core->counters.started++;
    }
    core->opts.pool->Submit([core, shared] {
      auto channel = SecureChannel::ServerHandshake(std::move(*shared),
                                                    core->opts.identity);
      {
        std::lock_guard<std::mutex> lock(core->mu);
        if (!channel.ok()) {
          core->counters.failed++;
          return;
        }
        if (core->shutdown) {
          return;  // drop; the host is going away
        }
        core->counters.completed++;
      }
      core->on_established(std::move(*channel));
    });
    return;
  }

  std::shared_ptr<Entry> evicted;
  uint64_t id = 0;
  {
    std::unique_lock<std::mutex> lock(core->mu);
    if (core->shutdown) {
      return;  // transport destroyed; socket closes
    }
    if (core->entries.size() >= core->opts.max_half_open &&
        !core->entries.empty()) {
      // Newest wins: a flood of stale half-open sockets must not lock out
      // fresh arrivals, so the oldest in-flight handshake is displaced.
      auto oldest = core->entries.begin();
      for (auto it = core->entries.begin(); it != core->entries.end(); ++it) {
        if (it->second->started < oldest->second->started) {
          oldest = it;
        }
      }
      core->counters.evicted++;
      oldest->second->dead = true;
      if (!oldest->second->busy) {
        evicted = oldest->second;
        core->entries.erase(oldest);
      }
      // A busy victim is retired by its worker when the step completes.
    }
    id = ++core->next_id;
    auto entry = std::make_shared<Entry>(core->opts.identity);
    entry->id = id;
    entry->fd = fd;
    entry->transport = std::move(transport);
    entry->started = std::chrono::steady_clock::now();
    core->entries.emplace(fd, std::move(entry));
    core->counters.started++;
  }
  if (evicted != nullptr) {
    core->opts.loop->Unregister(evicted->fd);
    evicted.reset();  // closes the evicted socket
  }
  Status registered = core->opts.loop->Register(
      fd, /*want_read=*/true, /*want_write=*/false,
      [core, fd](uint32_t events) { OnEvent(core, fd, events); });
  if (!registered.ok()) {
    std::unique_lock<std::mutex> lock(core->mu);
    auto it = core->entries.find(fd);
    if (it != core->entries.end() && it->second->id == id) {
      core->counters.failed++;
      core->entries.erase(it);
    }
    return;
  }
  core->opts.loop->RunAfter(core->opts.timeout_ms, [core, fd, id] {
    OnTimeout(core, fd, id);
  });
}

void HandshakeReactor::OnTimeout(const std::shared_ptr<Core>& core, int fd,
                                 uint64_t id) {
  std::unique_lock<std::mutex> lock(core->mu);
  auto it = core->entries.find(fd);
  if (it == core->entries.end() || it->second->id != id) {
    return;  // completed, retired, or the fd was reused
  }
  std::shared_ptr<Entry> entry = it->second;
  core->counters.timed_out++;
  entry->dead = true;
  if (entry->busy) {
    return;  // the worker retires it when the step completes
  }
  Retire(core, entry, std::move(lock));
}

// Runs on the poller with the Core lock held; may release it. The entry
// at `fd` must be idle (not busy, not dead, not flushing) — callers check.
void HandshakeReactor::PumpLocked(const std::shared_ptr<Core>& core, int fd,
                                  std::unique_lock<std::mutex>& lock) {
  auto it = core->entries.find(fd);
  if (it == core->entries.end()) {
    return;
  }
  std::shared_ptr<Entry> entry = it->second;
  if (entry->busy || entry->dead || entry->flushing) {
    return;
  }
  Result<std::optional<Bytes>> message = entry->transport->TryRecv();
  if (!message.ok()) {
    core->counters.failed++;
    entry->dead = true;
    Retire(core, entry, std::move(lock));
    return;
  }
  if (!message->has_value()) {
    return;  // no complete frame yet; stay armed for readability
  }
  // Hand the frame to a worker and mute reads until the step completes —
  // the reactor never buffers more than one frame per handshake, so a
  // firehosing client cannot grow server-side state.
  entry->busy = true;
  core->opts.loop->ModifyInterest(fd, /*want_read=*/false,
                                  /*want_write=*/false);
  Bytes frame = std::move(**message);
  lock.unlock();
  core->opts.pool->Submit(
      [core, entry, frame = std::move(frame)]() mutable {
        RunStep(core, entry, std::move(frame));
      });
}

void HandshakeReactor::OnEvent(const std::shared_ptr<Core>& core, int fd,
                               uint32_t events) {
  std::unique_lock<std::mutex> lock(core->mu);
  auto it = core->entries.find(fd);
  if (it == core->entries.end()) {
    return;  // stale dispatch for a retired entry
  }
  std::shared_ptr<Entry> entry = it->second;
  if (entry->busy || entry->dead) {
    return;
  }
  if (entry->flushing &&
      (events & (EventLoop::kWritable | EventLoop::kError)) != 0) {
    Result<bool> flushed = entry->transport->FlushSend();
    if (!flushed.ok()) {
      core->counters.failed++;
      entry->dead = true;
      Retire(core, entry, std::move(lock));
      return;
    }
    if (*flushed) {
      entry->flushing = false;
      core->opts.loop->ModifyInterest(fd, /*want_read=*/true,
                                      /*want_write=*/false);
    }
  }
  if (entry->flushing) {
    return;  // reads stay muted until the response drains
  }
  if ((events & EventLoop::kReadable) != 0) {
    PumpLocked(core, fd, lock);
  }
}

// Pool worker: advances the machine one message. `busy` is set, so the
// transport and machine are exclusively ours until we clear it under the
// lock. No Core lock is held across the CPU work or the transport send.
void HandshakeReactor::RunStep(const std::shared_ptr<Core>& core,
                               const std::shared_ptr<Entry>& entry,
                               Bytes message) {
  Result<ServerHandshakeMachine::Step> step =
      entry->machine.OnMessage(message);
  bool send_failed = false;
  bool sent_fully = true;
  if (step.ok() && !step->response.empty()) {
    Result<bool> sent = entry->transport->SendNonBlocking(step->response);
    if (!sent.ok()) {
      send_failed = true;
    } else {
      sent_fully = *sent;
    }
  }

  std::unique_lock<std::mutex> lock(core->mu);
  if (entry->dead || core->shutdown) {
    // Condemned mid-step (timeout, eviction, shutdown); whoever marked it
    // dead already counted it.
    Retire(core, entry, std::move(lock));
    return;
  }
  if (!step.ok() || send_failed) {
    core->counters.failed++;
    entry->dead = true;
    Retire(core, entry, std::move(lock));
    return;
  }
  if (step->done) {
    core->counters.completed++;
    auto it = core->entries.find(entry->fd);
    if (it != core->entries.end() && it->second == entry) {
      core->entries.erase(it);
    }
    lock.unlock();
    // Unregister before handing the fd-bearing channel out: the host will
    // register the same fd for RPC serving.
    core->opts.loop->Unregister(entry->fd);
    Result<std::unique_ptr<SecureChannel>> channel =
        entry->machine.Finish(std::move(entry->transport));
    if (channel.ok()) {
      core->on_established(std::move(*channel));
    }
    return;
  }

  // Awaiting the peer's next message.
  entry->busy = false;
  if (!sent_fully) {
    entry->flushing = true;
    lock.unlock();
    core->opts.loop->ModifyInterest(entry->fd, /*want_read=*/false,
                                    /*want_write=*/true);
    return;
  }
  const int fd = entry->fd;
  const uint64_t id = entry->id;
  lock.unlock();
  // Re-arm reads on the poller and drain any frame the transport already
  // buffered while we were muted (epoll will not re-fire for those bytes).
  core->opts.loop->Post([core, fd, id] {
    std::unique_lock<std::mutex> relock(core->mu);
    auto it = core->entries.find(fd);
    if (it == core->entries.end() || it->second->id != id) {
      return;
    }
    std::shared_ptr<Entry> e = it->second;
    if (e->busy || e->dead || e->flushing) {
      return;
    }
    core->opts.loop->ModifyInterest(fd, /*want_read=*/true,
                                    /*want_write=*/false);
    PumpLocked(core, fd, relock);
  });
}

// Removes `entry` from the map (if still present) and unregisters its fd
// outside the lock — Unregister waits out in-flight dispatch, and dispatch
// callbacks take this same lock. Requires entry->dead.
void HandshakeReactor::Retire(const std::shared_ptr<Core>& core,
                              const std::shared_ptr<Entry>& entry,
                              std::unique_lock<std::mutex> lock) {
  auto it = core->entries.find(entry->fd);
  if (it != core->entries.end() && it->second == entry) {
    core->entries.erase(it);
  }
  entry->busy = false;
  lock.unlock();
  core->opts.loop->Unregister(entry->fd);
  // The caller's shared_ptr copies drop shortly after; the transport (and
  // socket) die with the last one.
}

void HandshakeReactor::Shutdown() {
  std::shared_ptr<Core> core = core_;
  std::vector<std::shared_ptr<Entry>> drop;
  {
    std::lock_guard<std::mutex> lock(core->mu);
    core->shutdown = true;
    for (auto it = core->entries.begin(); it != core->entries.end();) {
      it->second->dead = true;
      if (it->second->busy) {
        ++it;  // its worker retires it; the pool drains before the loop dies
        continue;
      }
      drop.push_back(it->second);
      it = core->entries.erase(it);
    }
  }
  for (const std::shared_ptr<Entry>& entry : drop) {
    core->opts.loop->Unregister(entry->fd);
  }
}

HandshakeReactor::Stats HandshakeReactor::stats() const {
  std::lock_guard<std::mutex> lock(core_->mu);
  Stats stats = core_->counters;
  stats.half_open = core_->entries.size();
  return stats;
}

size_t HandshakeReactor::half_open() const {
  std::lock_guard<std::mutex> lock(core_->mu);
  return core_->entries.size();
}

}  // namespace discfs
