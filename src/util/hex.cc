#include "src/util/hex.h"

namespace discfs {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

}  // namespace

std::string HexEncode(const uint8_t* data, size_t len) {
  std::string out;
  out.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0xf]);
  }
  return out;
}

std::string HexEncode(const Bytes& data) {
  return HexEncode(data.data(), data.size());
}

Result<Bytes> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return InvalidArgumentError("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return InvalidArgumentError("invalid hex character");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

}  // namespace discfs
