// The KeyNote Licensees field: principals composed with '&&' (all must
// authorize), '||' (any may authorize), and "<k>-of(...)" thresholds.
#ifndef DISCFS_SRC_KEYNOTE_LICENSEES_H_
#define DISCFS_SRC_KEYNOTE_LICENSEES_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/keynote/expr.h"
#include "src/keynote/lattice.h"
#include "src/util/status.h"

namespace discfs::keynote {

struct LicenseesNode {
  enum class Kind { kPrincipal, kAnd, kOr, kThreshold };

  Kind kind;
  std::string principal;  // for kPrincipal
  size_t k = 0;           // for kThreshold
  std::vector<std::unique_ptr<LicenseesNode>> children;
};

// Parses a Licensees field. Principals are quoted strings ("dsa-hex:...") or
// identifiers; identifiers are resolved through Local-Constants.
Result<std::unique_ptr<LicenseesNode>> ParseLicensees(
    std::string_view text, const ConstantMap& constants);

// Parses an Authorizer field: exactly one principal.
Result<std::string> ParseAuthorizer(std::string_view text,
                                    const ConstantMap& constants);

// All principals mentioned in the expression (with duplicates removed).
std::vector<std::string> CollectPrincipals(const LicenseesNode& node);

// Evaluates the expression over current principal values: '&&' is meet,
// '||' is join, and k-of is the join over all k-subsets of the meet of each
// subset. Principals missing from `values` count as lattice bottom.
ComplianceLattice::Value EvalLicensees(
    const LicenseesNode& node,
    const std::map<std::string, ComplianceLattice::Value>& values,
    const ComplianceLattice& lattice);

}  // namespace discfs::keynote

#endif  // DISCFS_SRC_KEYNOTE_LICENSEES_H_
