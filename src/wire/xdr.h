// XDR-style serialization (RFC 4506 conventions: big-endian, 4-byte
// alignment) used by the RPC layer and the NFS protocol codecs.
#ifndef DISCFS_SRC_WIRE_XDR_H_
#define DISCFS_SRC_WIRE_XDR_H_

#include <cstdint>
#include <string>

#include "src/util/bytes.h"
#include "src/util/status.h"

namespace discfs {

class XdrWriter {
 public:
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutBool(bool v) { PutU32(v ? 1 : 0); }
  // Fixed-length opaque: no length prefix, padded to a 4-byte boundary.
  void PutFixed(const Bytes& data);
  // Variable-length opaque: u32 length + data + padding.
  void PutOpaque(const Bytes& data);
  void PutString(const std::string& s);

  const Bytes& data() const { return out_; }
  Bytes Take() { return std::move(out_); }

 private:
  Bytes out_;
};

class XdrReader {
 public:
  explicit XdrReader(const Bytes& data) : data_(data) {}

  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<bool> GetBool();
  Result<Bytes> GetFixed(size_t len);
  Result<Bytes> GetOpaque(size_t max_len = 1 << 26);
  Result<std::string> GetString(size_t max_len = 1 << 20);

  // All bytes consumed?
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  Status Need(size_t n);

  const Bytes& data_;
  size_t pos_ = 0;
};

}  // namespace discfs

#endif  // DISCFS_SRC_WIRE_XDR_H_
