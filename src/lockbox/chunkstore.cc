#include "src/lockbox/chunkstore.h"

#include <algorithm>
#include <unordered_map>

#include "src/crypto/sha.h"
#include "src/util/hex.h"
#include "src/wire/lockbox.h"

namespace discfs {
namespace {

const Bytes kMagic = ToBytes("CNK1");

// Ffs caps directory-entry names at 58 bytes; the 64-char hex id is split
// into a 2-char fan-out directory and a 56-char file name.
constexpr size_t kIdHexLen = 2 * Sha256::kDigestSize;
constexpr size_t kPrefixLen = 2;
// 56 of the remaining 62 hex chars fit under kMaxNameLen; the dropped
// tail is covered by the full id embedded in the chunk header.
constexpr size_t kNameLen = 56;

std::string ChunkFileName(const std::string& id) {
  return id.substr(kPrefixLen, kNameLen);
}

void AppendU32Be(Bytes& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v >> 24));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v));
}

uint32_t LoadU32Be(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

bool IsChunkId(const std::string& id) {
  if (id.size() != kIdHexLen) {
    return false;
  }
  for (char c : id) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string ChunkStore::ChunkId(const Bytes& data) {
  return HexEncode(Sha256::Hash(data));
}

Result<NfsFh> ChunkStore::PrefixDir(const std::string& prefix, bool create) {
  // Serialized so two threads creating the spine for different chunks
  // don't race Lookup-then-Mkdir on the same directory.
  std::lock_guard<std::mutex> lock(init_mu_);
  ASSIGN_OR_RETURN(NfsFattr root, nfs_->GetRoot());
  NfsFh dir = root.fh;
  for (const std::string& name :
       {std::string(".lockbox"), std::string("chunks"), prefix}) {
    Result<NfsFattr> found = nfs_->Lookup(dir, name);
    if (found.ok()) {
      dir = found->fh;
      continue;
    }
    if (found.status().code() != StatusCode::kNotFound || !create) {
      return found.status();
    }
    ASSIGN_OR_RETURN(NfsFattr made, nfs_->Mkdir(dir, name, 0755));
    dir = made.fh;
  }
  return dir;
}

Result<NfsFh> ChunkStore::FindChunk(const std::string& id) {
  if (!IsChunkId(id)) {
    return InvalidArgumentError("malformed chunk id: " + id);
  }
  ASSIGN_OR_RETURN(NfsFh dir, PrefixDir(id.substr(0, kPrefixLen), false));
  ASSIGN_OR_RETURN(NfsFattr attr, nfs_->Lookup(dir, ChunkFileName(id)));
  ASSIGN_OR_RETURN(Bytes header, nfs_->Read(attr.fh, 0, kHeaderSize));
  if (header.size() != kHeaderSize ||
      !std::equal(kMagic.begin(), kMagic.end(), header.begin())) {
    return DataLossError("chunk " + id + " has a corrupt header");
  }
  // The file name only carries 56 of the 64 hex chars; the header carries
  // the full id, so a truncated-name collision or corruption is caught
  // here instead of being served as the wrong chunk.
  ASSIGN_OR_RETURN(Bytes want, HexDecode(id));
  if (!std::equal(want.begin(), want.end(),
                  header.begin() + kRefCountOffset + 4)) {
    return DataLossError("chunk " + id + " header id mismatch");
  }
  return attr.fh;
}

Result<uint32_t> ChunkStore::ReadRefCount(const NfsFh& fh) {
  ASSIGN_OR_RETURN(Bytes raw, nfs_->Read(fh, kRefCountOffset, 4));
  if (raw.size() != 4) {
    return DataLossError("short refcount read");
  }
  return LoadU32Be(raw.data());
}

Status ChunkStore::WriteRefCount(const NfsFh& fh, uint32_t count) {
  Bytes raw;
  AppendU32Be(raw, count);
  return nfs_->Write(fh, kRefCountOffset, raw).status();
}

Result<std::string> ChunkStore::Put(const Bytes& data) {
  std::string id = ChunkId(data);
  std::lock_guard<std::mutex> lock(ShardFor(id));
  puts_.fetch_add(1);
  Result<NfsFh> existing = FindChunk(id);
  if (existing.ok()) {
    ASSIGN_OR_RETURN(uint32_t count, ReadRefCount(*existing));
    if (count == UINT32_MAX) {
      return ResourceExhaustedError("chunk " + id + " refcount overflow");
    }
    RETURN_IF_ERROR(WriteRefCount(*existing, count + 1));
    dedup_hits_.fetch_add(1);
    return id;
  }
  if (existing.status().code() != StatusCode::kNotFound) {
    return existing.status();
  }
  ASSIGN_OR_RETURN(NfsFh dir, PrefixDir(id.substr(0, kPrefixLen), true));
  ASSIGN_OR_RETURN(NfsFattr created,
                   nfs_->Create(dir, ChunkFileName(id), 0644));
  Bytes file = kMagic;
  AppendU32Be(file, 1);
  ASSIGN_OR_RETURN(Bytes raw_id, HexDecode(id));
  Append(file, raw_id);
  Append(file, data);
  RETURN_IF_ERROR(nfs_->Write(created.fh, 0, file).status());
  stored_.fetch_add(1);
  return id;
}

Result<Bytes> ChunkStore::Get(const std::string& id) {
  std::lock_guard<std::mutex> lock(ShardFor(id));
  ASSIGN_OR_RETURN(NfsFh fh, FindChunk(id));
  ASSIGN_OR_RETURN(NfsFattr attr, nfs_->GetAttr(fh));
  if (attr.size < kHeaderSize) {
    return DataLossError("chunk " + id + " shorter than its header");
  }
  uint64_t len = attr.size - kHeaderSize;
  ASSIGN_OR_RETURN(
      Bytes data, nfs_->Read(fh, kHeaderSize, static_cast<uint32_t>(len)));
  if (data.size() != len) {
    return DataLossError("short chunk read for " + id);
  }
  return data;
}

Status ChunkStore::Release(const std::string& id) {
  std::lock_guard<std::mutex> lock(ShardFor(id));
  ASSIGN_OR_RETURN(NfsFh fh, FindChunk(id));
  ASSIGN_OR_RETURN(uint32_t count, ReadRefCount(fh));
  if (count > 1) {
    return WriteRefCount(fh, count - 1);
  }
  ASSIGN_OR_RETURN(NfsFh dir, PrefixDir(id.substr(0, kPrefixLen), false));
  RETURN_IF_ERROR(nfs_->Remove(dir, ChunkFileName(id)));
  removed_.fetch_add(1);
  return OkStatus();
}

Result<ChunkStore::AuditReport> ChunkStore::Audit() {
  AuditReport report;
  ASSIGN_OR_RETURN(NfsFattr root, nfs_->GetRoot());
  Result<NfsFattr> lockbox_dir = nfs_->Lookup(root.fh, ".lockbox");
  if (!lockbox_dir.ok()) {
    if (lockbox_dir.status().code() == StatusCode::kNotFound) {
      return report;  // nothing stored yet: vacuously clean
    }
    return lockbox_dir.status();
  }

  // Mark: how many live lockbox records reference each chunk id. Dedup
  // means one stored chunk can legitimately carry many references.
  std::unordered_map<std::string, uint32_t> live;
  Result<NfsFattr> box_dir = nfs_->Lookup(lockbox_dir->fh, "box");
  if (box_dir.ok()) {
    ASSIGN_OR_RETURN(std::vector<NfsDirEntry> sidecars,
                     nfs_->ReadDir(box_dir->fh));
    for (const NfsDirEntry& sidecar : sidecars) {
      if (sidecar.type == FileType::kDirectory) {
        continue;
      }
      ASSIGN_OR_RETURN(NfsFattr attr, nfs_->GetAttr(sidecar.fh));
      ASSIGN_OR_RETURN(
          Bytes raw,
          nfs_->Read(sidecar.fh, 0, static_cast<uint32_t>(attr.size)));
      Result<wire::LockboxRecord> record = wire::DecodeLockboxRecord(raw);
      if (!record.ok()) {
        report.corrupt.push_back("box/" + sidecar.name);
        continue;
      }
      report.live_records++;
      for (const std::string& id : record->chunks) {
        ++live[id];
        report.live_references++;
      }
    }
  } else if (box_dir.status().code() != StatusCode::kNotFound) {
    return box_dir.status();
  }

  // Sweep: every stored chunk's header refcount against its live count.
  std::unordered_map<std::string, uint32_t> stored;
  Result<NfsFattr> chunks_dir = nfs_->Lookup(lockbox_dir->fh, "chunks");
  if (chunks_dir.ok()) {
    ASSIGN_OR_RETURN(std::vector<NfsDirEntry> prefixes,
                     nfs_->ReadDir(chunks_dir->fh));
    for (const NfsDirEntry& prefix : prefixes) {
      if (prefix.type != FileType::kDirectory) {
        continue;
      }
      ASSIGN_OR_RETURN(std::vector<NfsDirEntry> files,
                       nfs_->ReadDir(prefix.fh));
      for (const NfsDirEntry& file : files) {
        if (file.type == FileType::kDirectory) {
          continue;
        }
        report.chunks_scanned++;
        const std::string where = prefix.name + "/" + file.name;
        Result<Bytes> header = nfs_->Read(file.fh, 0, kHeaderSize);
        if (!header.ok() || header->size() != kHeaderSize ||
            !std::equal(kMagic.begin(), kMagic.end(), header->begin())) {
          report.corrupt.push_back(where);
          continue;
        }
        const uint32_t refcount = LoadU32Be(header->data() + kRefCountOffset);
        // The file name only carries 58 of the 64 hex chars; the header
        // embeds the full id. The two must agree on their overlap.
        const std::string id = HexEncode(
            header->data() + kRefCountOffset + 4, Sha256::kDigestSize);
        if (id.substr(0, kPrefixLen) != prefix.name ||
            id.substr(kPrefixLen, kNameLen) != file.name) {
          report.corrupt.push_back(where);
          continue;
        }
        stored[id] = refcount;
        auto it = live.find(id);
        const uint32_t want = it == live.end() ? 0 : it->second;
        if (want == 0) {
          report.orphaned.push_back(id);
        } else if (refcount > want) {
          report.over_referenced.push_back(id);
        } else if (refcount < want) {
          report.under_referenced.push_back(id);
        }
      }
    }
  } else if (chunks_dir.status().code() != StatusCode::kNotFound) {
    return chunks_dir.status();
  }

  for (const auto& [id, count] : live) {
    if (stored.find(id) == stored.end()) {
      report.missing.push_back(id);
    }
  }
  // Deterministic output for tests and the bench report.
  std::sort(report.orphaned.begin(), report.orphaned.end());
  std::sort(report.over_referenced.begin(), report.over_referenced.end());
  std::sort(report.under_referenced.begin(), report.under_referenced.end());
  std::sort(report.missing.begin(), report.missing.end());
  std::sort(report.corrupt.begin(), report.corrupt.end());
  return report;
}

Result<uint32_t> ChunkStore::RefCount(const std::string& id) {
  std::lock_guard<std::mutex> lock(ShardFor(id));
  Result<NfsFh> fh = FindChunk(id);
  if (!fh.ok()) {
    if (fh.status().code() == StatusCode::kNotFound) {
      return 0u;
    }
    return fh.status();
  }
  return ReadRefCount(*fh);
}

}  // namespace discfs
