#include <gtest/gtest.h>

#include "src/util/clock.h"
#include "src/util/hex.h"
#include "src/util/prng.h"
#include "src/util/status.h"
#include "src/util/strings.h"

namespace discfs {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("no such inode 17");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such inode 17");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = InvalidArgumentError("bad");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) {
    return OutOfRangeError("not positive");
  }
  return x;
}

Result<int> Doubled(int x) {
  ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(Result, AssignOrReturnPropagates) {
  auto good = Doubled(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  auto bad = Doubled(-1);
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

TEST(Hex, EncodeDecodeRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff};
  std::string hex = HexEncode(data);
  EXPECT_EQ(hex, "0001abff");
  auto back = HexDecode(hex);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), data);
}

TEST(Hex, DecodeAcceptsUppercase) {
  auto r = HexDecode("ABCDEF");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(HexEncode(r.value()), "abcdef");
}

TEST(Hex, DecodeRejectsOddLength) {
  EXPECT_FALSE(HexDecode("abc").ok());
}

TEST(Hex, DecodeRejectsNonHex) {
  EXPECT_FALSE(HexDecode("zz").ok());
}

TEST(Bytes, ConstantTimeEqual) {
  EXPECT_TRUE(ConstantTimeEqual({1, 2, 3}, {1, 2, 3}));
  EXPECT_FALSE(ConstantTimeEqual({1, 2, 3}, {1, 2, 4}));
  EXPECT_FALSE(ConstantTimeEqual({1, 2}, {1, 2, 3}));
  EXPECT_TRUE(ConstantTimeEqual({}, {}));
}

TEST(Clock, CivilFromUnixEpoch) {
  CivilTime t = CivilFromUnix(0);
  EXPECT_EQ(t.year, 1970);
  EXPECT_EQ(t.month, 1);
  EXPECT_EQ(t.day, 1);
  EXPECT_EQ(t.hour, 0);
  EXPECT_EQ(t.weekday, 4);  // Thursday
}

TEST(Clock, CivilKnownDate) {
  // 2001-05-23 12:34:56 UTC = 990621296 (paper-era date).
  CivilTime t = CivilFromUnix(990621296);
  EXPECT_EQ(t.year, 2001);
  EXPECT_EQ(t.month, 5);
  EXPECT_EQ(t.day, 23);
  EXPECT_EQ(t.hour, 12);
  EXPECT_EQ(t.minute, 34);
  EXPECT_EQ(t.second, 56);
}

TEST(Clock, CivilLeapYear) {
  // 2000-02-29 00:00:00 UTC = 951782400.
  CivilTime t = CivilFromUnix(951782400);
  EXPECT_EQ(t.year, 2000);
  EXPECT_EQ(t.month, 2);
  EXPECT_EQ(t.day, 29);
}

TEST(Clock, KeyNoteTimestampFormat) {
  CivilTime t = CivilFromUnix(990621296);
  EXPECT_EQ(KeyNoteTimestamp(t), "20010523123456");
}

TEST(Clock, KeyNoteTimestampOrdersLexicographically) {
  // Lexicographic comparison of timestamps == chronological comparison;
  // this property is what KeyNote date conditions rely on.
  int64_t times[] = {0, 86400, 990621296, 1000000000, 1700000000};
  for (size_t i = 0; i + 1 < std::size(times); ++i) {
    EXPECT_LT(KeyNoteTimestamp(CivilFromUnix(times[i])),
              KeyNoteTimestamp(CivilFromUnix(times[i + 1])));
  }
}

TEST(Clock, FakeClockAdvances) {
  FakeClock clock(100);
  EXPECT_EQ(clock.NowUnix(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.NowUnix(), 150);
  clock.Set(7);
  EXPECT_EQ(clock.NowUnix(), 7);
}

TEST(Prng, Deterministic) {
  Prng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Prng, DifferentSeedsDiverge) {
  Prng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(Prng, NextBelowRespectsBound) {
  Prng p(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(p.NextBelow(17), 17u);
  }
}

TEST(Prng, NextBytesLength) {
  Prng p(6);
  for (size_t n : {0u, 1u, 7u, 8u, 9u, 100u}) {
    EXPECT_EQ(p.NextBytes(n).size(), n);
  }
}

TEST(Strings, Split) {
  auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(Strings, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Authorizer", "authorizer"));
  EXPECT_TRUE(EqualsIgnoreCase("LICENSEES", "licensees"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

TEST(Strings, StrPrintf) {
  EXPECT_EQ(StrPrintf("inode %d gen %u", 42, 7u), "inode 42 gen 7");
}

}  // namespace
}  // namespace discfs
