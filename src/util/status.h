// Status / Result<T> error model used across all DisCFS modules.
//
// API boundaries in this codebase do not throw; fallible operations return
// Status (no payload) or Result<T> (payload or error), in the style of
// absl::Status / std::expected.
#ifndef DISCFS_SRC_UTIL_STATUS_H_
#define DISCFS_SRC_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace discfs {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kUnauthenticated,
  kFailedPrecondition,
  kOutOfRange,
  kResourceExhausted,
  kUnavailable,
  kDeadlineExceeded,
  kDataLoss,
  kIoError,
  kUnimplemented,
  kInternal,
};

// Human-readable name of a status code ("OK", "NOT_FOUND", ...).
const char* StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on success (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "NOT_FOUND: no such inode 17" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Convenience constructors mirroring absl.
Status OkStatus();
Status InvalidArgumentError(std::string msg);
Status NotFoundError(std::string msg);
Status AlreadyExistsError(std::string msg);
Status PermissionDeniedError(std::string msg);
Status UnauthenticatedError(std::string msg);
Status FailedPreconditionError(std::string msg);
Status OutOfRangeError(std::string msg);
Status ResourceExhaustedError(std::string msg);
Status UnavailableError(std::string msg);
Status DeadlineExceededError(std::string msg);
Status DataLossError(std::string msg);
Status IoError(std::string msg);
Status UnimplementedError(std::string msg);
Status InternalError(std::string msg);

// Result<T>: either a value of type T or a non-OK Status.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return SomeError(...);`
  // both work inside functions returning Result<T>.
  Result(T value) : var_(std::move(value)) {}              // NOLINT
  Result(Status status) : var_(std::move(status)) {        // NOLINT
    assert(!std::get<Status>(var_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) {
      return kOk;
    }
    return std::get<Status>(var_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(var_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(var_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // value() if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(var_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> var_;
};

// Propagation macros. RETURN_IF_ERROR works in functions returning Status or
// Result<T>; ASSIGN_OR_RETURN unwraps a Result<T> into a local variable.
#define DISCFS_CONCAT_INNER_(x, y) x##y
#define DISCFS_CONCAT_(x, y) DISCFS_CONCAT_INNER_(x, y)

#define RETURN_IF_ERROR(expr)                                \
  do {                                                       \
    if (auto discfs_status_ = (expr); !discfs_status_.ok()) { \
      return discfs_status_;                                 \
    }                                                        \
  } while (0)

#define ASSIGN_OR_RETURN(lhs, rexpr)                                    \
  auto DISCFS_CONCAT_(result_, __LINE__) = (rexpr);                     \
  if (!DISCFS_CONCAT_(result_, __LINE__).ok()) {                        \
    return DISCFS_CONCAT_(result_, __LINE__).status();                  \
  }                                                                     \
  lhs = std::move(DISCFS_CONCAT_(result_, __LINE__)).value()

}  // namespace discfs

#endif  // DISCFS_SRC_UTIL_STATUS_H_
