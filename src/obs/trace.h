// Cross-node trace propagation (PR 9).
//
// A trace id is a random nonzero 64-bit token minted where an operation
// enters the system (a DisCFS client about to revoke, a harness driving
// churn). It rides three carriers:
//   1. an optional, versioned trailer on the RPC call frame (old peers
//      parse the frame unchanged and ignore the trailer — see
//      src/rpc/README.md),
//   2. the CoherenceEvent a traced mutation publishes into the cluster
//      fabric, and
//   3. revocation-list entries exchanged by anti-entropy, so a revocation
//      that propagates around a partition is still attributable.
// Each server records the ids it sees in a TraceLog ring buffer, which is
// how the fault harness proves one revocation's trace id was observed at
// every node of an 8-way mesh.
//
// Propagation inside a process is a thread-local scope: the RPC runtime
// installs the decoded trace id around handler execution, so deep call
// paths (credential install -> churn publish) pick it up without
// threading a parameter through every signature.
#ifndef DISCFS_SRC_OBS_TRACE_H_
#define DISCFS_SRC_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace discfs::obs {

// Random nonzero 64-bit trace id.
uint64_t MintTraceId();

// The calling thread's active trace id (0 = untraced).
uint64_t CurrentTraceId();

// RAII scope installing `trace_id` as the thread's active trace; restores
// the previous id (scopes nest) on destruction.
class TraceScope {
 public:
  explicit TraceScope(uint64_t trace_id);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  uint64_t previous_;
};

// Per-server ring buffer of trace observations. Small and mutex-guarded:
// only traced operations (revocations, explicitly traced calls) land here,
// never the bulk request stream.
class TraceLog {
 public:
  struct Observation {
    uint64_t trace_id = 0;
    std::string stage;   // "rpc", "publish", "apply", "anti-entropy"
    std::string detail;  // stage-specific (e.g. the origin node)
    uint64_t at_ns = 0;  // MonotonicNanos at observation
  };

  explicit TraceLog(size_t capacity = 1024) : capacity_(capacity) {}
  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  // No-op when trace_id is 0, so call sites need no untraced fast-path
  // branch of their own.
  void Record(uint64_t trace_id, const std::string& stage,
              std::string detail = "");

  bool Contains(uint64_t trace_id) const;
  bool Contains(uint64_t trace_id, const std::string& stage) const;
  std::vector<Observation> ForTrace(uint64_t trace_id) const;
  std::vector<Observation> Snapshot() const;
  // Total observations ever recorded (survives ring eviction).
  uint64_t recorded_total() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<Observation> ring_;
  uint64_t recorded_total_ = 0;
};

}  // namespace discfs::obs

#endif  // DISCFS_SRC_OBS_TRACE_H_
