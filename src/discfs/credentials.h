// Helpers for minting DisCFS credentials — the Figure 5 shape:
//
//   Authorizer: "dsa-hex:..."          (issuer)
//   Licensees:  "dsa-hex:..."          (subject)
//   Conditions: (app_domain == "DisCFS") && (HANDLE == "<inode>") -> "RWX";
//   Comment:    <file name>
//   Signature:  "sig-dsa-sha1-hex:..."
//
// Options add expiration (timestamp comparison) and time-of-day windows,
// both expressible in plain KeyNote; these helpers just compose the strings.
#ifndef DISCFS_SRC_DISCFS_CREDENTIALS_H_
#define DISCFS_SRC_DISCFS_CREDENTIALS_H_

#include <optional>
#include <string>

#include "src/crypto/dsa.h"
#include "src/keynote/assertion.h"
#include "src/util/status.h"

namespace discfs {

struct CredentialOptions {
  // Permissions granted, as a lattice value name: "R", "RW", "RWX", ...
  std::string permissions = "RWX";
  // Free-form comment (conventionally the file name).
  std::string comment;
  // Absolute expiry, compared against the `timestamp` attribute
  // ("YYYYMMDDhhmmss"); unset = no expiry.
  std::optional<std::string> expires_at;
  // Only valid outside [office_start, office_end) — the paper's
  // "leisure-related files unavailable during office hours" example. Format
  // "HHMM".
  std::optional<std::pair<std::string, std::string>> outside_hours;
};

// Builds the Conditions string for `handle` under `options`. An empty
// handle omits the HANDLE clause entirely, producing a blanket credential
// over the whole app domain (how an administrator grants a user an entire
// store rather than one file; per-handle policy checks still run and are
// cached per handle).
std::string BuildConditions(const std::string& handle,
                            const CredentialOptions& options);

// Issues (signs) a credential: issuer grants `subject` access to `handle`.
Result<std::string> IssueCredential(const DsaPrivateKey& issuer,
                                    const DsaPublicKey& subject,
                                    const std::string& handle,
                                    const CredentialOptions& options);

}  // namespace discfs

#endif  // DISCFS_SRC_DISCFS_CREDENTIALS_H_
