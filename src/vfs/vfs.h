// VFS: the narrow filesystem interface the NFS server (and the FFS baseline
// harness) sit on, plus path-resolution helpers. FfsVfs adapts the concrete
// FFS volume; tests can substitute other implementations.
#ifndef DISCFS_SRC_VFS_VFS_H_
#define DISCFS_SRC_VFS_VFS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ffs/ffs.h"
#include "src/util/status.h"

namespace discfs {

class Vfs {
 public:
  virtual ~Vfs() = default;

  virtual InodeNum root() const = 0;
  virtual Result<InodeAttr> GetAttr(InodeNum inode) = 0;
  virtual Status SetAttr(InodeNum inode, const SetAttrRequest& request) = 0;
  virtual Result<InodeAttr> Lookup(InodeNum dir, const std::string& name) = 0;
  virtual Result<InodeAttr> Create(InodeNum dir, const std::string& name,
                                   uint32_t mode) = 0;
  virtual Result<InodeAttr> Mkdir(InodeNum dir, const std::string& name,
                                  uint32_t mode) = 0;
  virtual Result<InodeAttr> Symlink(InodeNum dir, const std::string& name,
                                    const std::string& target) = 0;
  virtual Result<std::string> ReadLink(InodeNum inode) = 0;
  virtual Status Link(InodeNum dir, const std::string& name,
                      InodeNum target) = 0;
  virtual Status Remove(InodeNum dir, const std::string& name) = 0;
  virtual Status Rmdir(InodeNum dir, const std::string& name) = 0;
  virtual Status Rename(InodeNum from_dir, const std::string& from_name,
                        InodeNum to_dir, const std::string& to_name) = 0;
  virtual Result<size_t> Read(InodeNum inode, uint64_t offset, size_t len,
                              uint8_t* out) = 0;
  virtual Result<size_t> Write(InodeNum inode, uint64_t offset,
                               const uint8_t* data, size_t len) = 0;
  virtual Result<std::vector<DirEntry>> ReadDir(InodeNum dir) = 0;
  virtual Result<StatFsInfo> StatFs() = 0;
};

class FfsVfs : public Vfs {
 public:
  explicit FfsVfs(std::shared_ptr<Ffs> fs) : fs_(std::move(fs)) {}

  InodeNum root() const override { return fs_->root(); }
  Result<InodeAttr> GetAttr(InodeNum inode) override {
    return fs_->GetAttr(inode);
  }
  Status SetAttr(InodeNum inode, const SetAttrRequest& request) override {
    return fs_->SetAttr(inode, request);
  }
  Result<InodeAttr> Lookup(InodeNum dir, const std::string& name) override {
    return fs_->Lookup(dir, name);
  }
  Result<InodeAttr> Create(InodeNum dir, const std::string& name,
                           uint32_t mode) override {
    return fs_->Create(dir, name, mode);
  }
  Result<InodeAttr> Mkdir(InodeNum dir, const std::string& name,
                          uint32_t mode) override {
    return fs_->Mkdir(dir, name, mode);
  }
  Result<InodeAttr> Symlink(InodeNum dir, const std::string& name,
                            const std::string& target) override {
    return fs_->Symlink(dir, name, target);
  }
  Result<std::string> ReadLink(InodeNum inode) override {
    return fs_->ReadLink(inode);
  }
  Status Link(InodeNum dir, const std::string& name,
              InodeNum target) override {
    return fs_->Link(dir, name, target);
  }
  Status Remove(InodeNum dir, const std::string& name) override {
    return fs_->Remove(dir, name);
  }
  Status Rmdir(InodeNum dir, const std::string& name) override {
    return fs_->Rmdir(dir, name);
  }
  Status Rename(InodeNum from_dir, const std::string& from_name,
                InodeNum to_dir, const std::string& to_name) override {
    return fs_->Rename(from_dir, from_name, to_dir, to_name);
  }
  Result<size_t> Read(InodeNum inode, uint64_t offset, size_t len,
                      uint8_t* out) override {
    return fs_->Read(inode, offset, len, out);
  }
  Result<size_t> Write(InodeNum inode, uint64_t offset, const uint8_t* data,
                       size_t len) override {
    return fs_->Write(inode, offset, data, len);
  }
  Result<std::vector<DirEntry>> ReadDir(InodeNum dir) override {
    return fs_->ReadDir(dir);
  }
  Result<StatFsInfo> StatFs() override { return fs_->StatFs(); }

  Ffs* ffs() { return fs_.get(); }

 private:
  std::shared_ptr<Ffs> fs_;
};

// Path helpers ("/a/b/c" with '/' separators; no "." / "..").
Result<InodeAttr> ResolvePath(Vfs& vfs, const std::string& path);
// Creates missing intermediate directories (like mkdir -p) and returns the
// final directory.
Result<InodeAttr> MkdirAll(Vfs& vfs, const std::string& path, uint32_t mode);
// Splits "/a/b/c" into the resolved parent directory of "c" and the leaf
// name "c".
Result<std::pair<InodeAttr, std::string>> ResolveParent(
    Vfs& vfs, const std::string& path);

Result<std::string> ReadFileAt(Vfs& vfs, const std::string& path);
Status WriteFileAt(Vfs& vfs, const std::string& path,
                   const std::string& contents, uint32_t mode = 0644);

}  // namespace discfs

#endif  // DISCFS_SRC_VFS_VFS_H_
