// User-level NFS server over a Vfs, in the mold of the paper's modified CFS
// daemon. Access control is pluggable: the plain server (the CFS-NE
// baseline) installs no hook and allows everything; the DisCFS server
// installs a hook that consults KeyNote — the paper's separation of
// mechanism (here) from policy (src/discfs).
#ifndef DISCFS_SRC_NFS_NFS_SERVER_H_
#define DISCFS_SRC_NFS_NFS_SERVER_H_

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <shared_mutex>

#include "src/keynote/lattice.h"
#include "src/nfs/protocol.h"
#include "src/rpc/rpc.h"
#include "src/vfs/vfs.h"

namespace discfs {

// Permission bits requested by an operation, in the paper's RWX lattice
// encoding (R=4, W=2, X=1).
struct NfsAccessRequest {
  NfsProc proc;
  NfsFh fh;             // object the permission applies to
  uint32_t needed = 0;  // RWX mask
  const RpcContext* ctx = nullptr;
};

class NfsServer {
 public:
  using AccessHook = std::function<Status(const NfsAccessRequest&)>;

  explicit NfsServer(std::shared_ptr<Vfs> vfs) : vfs_(std::move(vfs)) {}

  // Install the policy hook (DisCFS). Without one, all operations are
  // permitted (CFS-NE / plain NFS semantics).
  void set_access_hook(AccessHook hook) { access_hook_ = std::move(hook); }

  // Registers all NFS procedures under kNfsProgram.
  void RegisterAll(RpcDispatcher& dispatcher);

  // Direct entry points (used by the DisCFS server's augmented procedures
  // and by tests). These do NOT run the access hook; RPC handlers do.
  Result<NfsFattr> GetRoot();
  Result<NfsFattr> GetAttr(const NfsFh& fh);
  Result<NfsFattr> SetAttr(const NfsFh& fh, const SetAttrRequest& req);
  Result<NfsFattr> Lookup(const NfsFh& dir, const std::string& name);
  Result<Bytes> Read(const NfsFh& fh, uint64_t offset, uint32_t count);
  Result<NfsFattr> Write(const NfsFh& fh, uint64_t offset, const Bytes& data);
  Result<NfsFattr> Create(const NfsFh& dir, const std::string& name,
                          uint32_t mode);
  Result<NfsFattr> Mkdir(const NfsFh& dir, const std::string& name,
                         uint32_t mode);
  Status Remove(const NfsFh& dir, const std::string& name);
  Status Rmdir(const NfsFh& dir, const std::string& name);
  Status Rename(const NfsFh& from_dir, const std::string& from_name,
                const NfsFh& to_dir, const std::string& to_name);
  Status Link(const NfsFh& dir, const std::string& name, const NfsFh& target);
  Result<NfsFattr> Symlink(const NfsFh& dir, const std::string& name,
                           const std::string& target);
  Result<std::string> ReadLink(const NfsFh& fh);
  Result<std::vector<NfsDirEntry>> ReadDir(const NfsFh& dir);
  Result<NfsStatFs> StatFs();

  // Number of RPC-dispatched operations served (benchmark telemetry).
  uint64_t ops_served() const { return ops_served_; }

 private:
  // Validates that the handle references a live inode with a matching
  // generation; the NFS "stale file handle" condition otherwise.
  Result<InodeAttr> CheckFh(const NfsFh& fh);

  Status RunHook(NfsProc proc, const NfsFh& fh, uint32_t needed,
                 const RpcContext& ctx);

  std::shared_ptr<Vfs> vfs_;
  AccessHook access_hook_;

  // Two-level locking, replacing the old single mutex so independent
  // files proceed in parallel on the worker pool:
  //   1. ns_mu_ — shared for data-plane ops (GetAttr/Read/Write/SetAttr/
  //      Lookup/ReadDir/ReadLink/StatFs), exclusive for namespace
  //      mutations (Create/Mkdir/Symlink/Link/Remove/Rmdir/Rename).
  //   2. per-inode stripes — shared for reads of an inode, exclusive for
  //      Write/SetAttr. Namespace ops skip the stripes: exclusive ns_mu_
  //      already excludes everything.
  // Lock order is always ns_mu_ then one stripe, so no deadlocks.
  static constexpr size_t kInodeStripes = 64;
  std::shared_mutex& StripeFor(InodeNum inode) {
    return inode_stripes_[inode % kInodeStripes];
  }
  std::shared_mutex ns_mu_;
  std::array<std::shared_mutex, kInodeStripes> inode_stripes_;

  std::atomic<uint64_t> ops_served_{0};
};

}  // namespace discfs

#endif  // DISCFS_SRC_NFS_NFS_SERVER_H_
