// Closed-loop pipelined RPC throughput across the full wire stack:
// TcpTransport -> SecureChannel -> RpcClient (xid demux) on the client,
// TcpListener -> ServerHandshake -> RpcDispatcher + shared WorkerPool on
// the server. One handler (echo after a fixed simulated-I/O delay, the
// shape of a blocking NFS read) is measured at every {connections,
// in-flight} tier; with 1 in-flight the runtime degenerates to the old
// serial call loop, so the speedup column is pipelining's contribution
// alone.
//
// Output: human-readable table on stdout plus BENCH_rpc.json (path from
// argv[1], default ./BENCH_rpc.json). Schema documented in ROADMAP.md.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <thread>
#include <vector>

#include "src/crypto/groups.h"
#include "src/net/transport.h"
#include "src/rpc/rpc.h"
#include "src/securechannel/channel.h"
#include "src/util/prng.h"
#include "src/util/worker_pool.h"

namespace discfs {
namespace {

constexpr uint32_t kProg = 7;
constexpr uint32_t kProcEcho = 1;
// Long enough that the blocking-I/O phase dominates the per-op CPU cost
// (crypto + syscalls), which is what pipelining can overlap; the CPU
// phase serializes on small machines regardless of in-flight depth.
constexpr auto kSimulatedIo = std::chrono::microseconds(400);

std::function<Bytes(size_t)> BenchRand(uint64_t seed) {
  auto prng = std::make_shared<Prng>(seed);
  return [prng](size_t n) { return prng->NextBytes(n); };
}

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct LatencySummary {
  double p50_us = 0;
  double p99_us = 0;
};

LatencySummary Summarize(std::vector<double> samples_us) {
  LatencySummary s;
  if (samples_us.empty()) {
    return s;
  }
  std::sort(samples_us.begin(), samples_us.end());
  s.p50_us = samples_us[samples_us.size() / 2];
  s.p99_us = samples_us[std::min(samples_us.size() - 1,
                                 samples_us.size() * 99 / 100)];
  return s;
}

// Server: accepts until the listener closes; every connection's requests
// run on one shared pool, like DiscfsHost.
class BenchServer {
 public:
  explicit BenchServer(size_t workers, size_t max_inflight)
      : key_(DsaPrivateKey::Generate(Dsa512(), BenchRand(1))),
        pool_(workers) {
    dispatcher_.Register(kProg, kProcEcho,
                         [](const Bytes& args, const RpcContext&) {
                           std::this_thread::sleep_for(kSimulatedIo);
                           return Result<Bytes>(args);
                         });
    options_.pool = &pool_;
    options_.max_inflight_per_conn = max_inflight;
    auto listener = TcpListener::Listen(0);
    if (!listener.ok()) {
      std::fprintf(stderr, "listen failed: %s\n",
                   listener.status().ToString().c_str());
      std::abort();
    }
    listener_ = std::move(listener).value();
    accept_thread_ = std::thread([this] { AcceptLoop(); });
  }

  ~BenchServer() {
    listener_->Shutdown();
    accept_thread_.join();
    for (std::thread& t : conn_threads_) {
      t.join();
    }
    pool_.Shutdown();
  }

  uint16_t port() const { return listener_->port(); }
  const DsaPublicKey& public_key() const { return key_.public_key(); }

 private:
  void AcceptLoop() {
    uint64_t seed = 100;
    while (true) {
      auto conn = listener_->Accept();
      if (!conn.ok()) {
        return;
      }
      auto transport = std::make_shared<std::unique_ptr<TcpTransport>>(
          std::move(conn).value());
      std::lock_guard<std::mutex> lock(mu_);
      conn_threads_.emplace_back([this, transport, seed] {
        ChannelIdentity identity{key_, BenchRand(seed)};
        auto channel = SecureChannel::ServerHandshake(std::move(*transport),
                                                      identity);
        if (!channel.ok()) {
          return;
        }
        RpcContext ctx;
        ctx.peer_key = (*channel)->peer_key();
        dispatcher_.ServeConnection(**channel, ctx, options_);
      });
      ++seed;
    }
  }

  DsaPrivateKey key_;
  RpcDispatcher dispatcher_;
  WorkerPool pool_;
  ServeOptions options_;
  std::unique_ptr<TcpListener> listener_;
  std::thread accept_thread_;
  std::mutex mu_;
  std::vector<std::thread> conn_threads_;
};

struct TierResult {
  size_t connections = 0;
  size_t inflight = 0;
  size_t ops = 0;
  double ops_per_s = 0;
  LatencySummary latency;
};

// One connection's closed loop: keep `inflight` CallAsyncs outstanding by
// issuing a new call as the oldest completes. Latency is issue -> resolve
// of the oldest call, which upper-bounds per-op service time.
void RunConnection(RpcClient& client, size_t inflight, size_t ops,
                   std::vector<double>& latencies_us,
                   std::atomic<bool>& failed) {
  struct Pending {
    std::future<Result<Bytes>> future;
    double issued_at;
  };
  std::deque<Pending> window;
  Bytes payload(64, 0xa5);
  size_t issued = 0, completed = 0;
  latencies_us.reserve(ops);
  while (completed < ops) {
    while (issued < ops && window.size() < inflight) {
      window.push_back({client.CallAsync(kProg, kProcEcho, payload), NowSec()});
      ++issued;
    }
    Pending oldest = std::move(window.front());
    window.pop_front();
    Result<Bytes> result = oldest.future.get();
    latencies_us.push_back((NowSec() - oldest.issued_at) * 1e6);
    if (!result.ok() || *result != payload) {
      failed.store(true);
      return;
    }
    ++completed;
  }
}

TierResult RunTier(BenchServer& server, size_t connections, size_t inflight) {
  TierResult tier;
  tier.connections = connections;
  tier.inflight = inflight;
  // Scale work with concurrency so every tier runs long enough to measure
  // without the serial tiers dominating wall-clock.
  const size_t ops_per_conn =
      std::min<size_t>(2000, std::max<size_t>(400, 100 * inflight));
  tier.ops = ops_per_conn * connections;

  std::vector<std::unique_ptr<RpcClient>> clients;
  for (size_t c = 0; c < connections; ++c) {
    auto transport = TcpTransport::Connect("127.0.0.1", server.port());
    if (!transport.ok()) {
      std::fprintf(stderr, "connect failed: %s\n",
                   transport.status().ToString().c_str());
      std::abort();
    }
    DsaPrivateKey client_key =
        DsaPrivateKey::Generate(Dsa512(), BenchRand(200 + c));
    ChannelIdentity identity{client_key, BenchRand(300 + c)};
    auto channel = SecureChannel::ClientHandshake(
        std::move(transport).value(), identity, server.public_key());
    if (!channel.ok()) {
      std::fprintf(stderr, "handshake failed: %s\n",
                   channel.status().ToString().c_str());
      std::abort();
    }
    clients.push_back(
        std::make_unique<RpcClient>(std::move(channel).value()));
  }

  std::vector<std::vector<double>> latencies(connections);
  std::atomic<bool> failed{false};
  double t0 = NowSec();
  std::vector<std::thread> drivers;
  for (size_t c = 0; c < connections; ++c) {
    drivers.emplace_back([&, c] {
      RunConnection(*clients[c], inflight, ops_per_conn, latencies[c],
                    failed);
    });
  }
  for (std::thread& t : drivers) {
    t.join();
  }
  double elapsed = NowSec() - t0;
  if (failed.load()) {
    std::fprintf(stderr, "tier conns=%zu inflight=%zu: call failed\n",
                 connections, inflight);
    std::abort();
  }
  for (auto& client : clients) {
    client->Close();
  }

  std::vector<double> all;
  for (const auto& per_conn : latencies) {
    all.insert(all.end(), per_conn.begin(), per_conn.end());
  }
  tier.ops_per_s = tier.ops / elapsed;
  tier.latency = Summarize(std::move(all));
  return tier;
}

void WriteJson(std::FILE* f, const std::vector<TierResult>& results,
               double speedup_1conn) {
  std::fprintf(f, "{\n  \"bench\": \"rpc_pipeline\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"handler_simulated_io_us\": %lld,\n",
               static_cast<long long>(kSimulatedIo.count()));
  std::fprintf(f, "  \"pipeline_speedup_1conn\": %.2f,\n", speedup_1conn);
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const TierResult& r = results[i];
    std::fprintf(f,
                 "    {\"connections\": %zu, \"inflight\": %zu, "
                 "\"ops\": %zu, \"ops_per_s\": %.0f, "
                 "\"p50_us\": %.1f, \"p99_us\": %.1f}%s\n",
                 r.connections, r.inflight, r.ops, r.ops_per_s,
                 r.latency.p50_us, r.latency.p99_us,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

int Run(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_rpc.json";

  // Workers spend most of each request blocked in (simulated) I/O, so the
  // pool is sized for overlap, not for cores — same reasoning as any
  // blocking-file-server thread pool.
  const size_t workers = 16;
  BenchServer server(workers, /*max_inflight=*/64);

  std::printf("== RPC pipelining: closed-loop throughput (handler = echo "
              "after %lldus simulated I/O, %zu workers) ==\n",
              static_cast<long long>(kSimulatedIo.count()), workers);
  std::printf("%-6s %-9s %10s %12s %10s %10s\n", "conns", "inflight", "ops",
              "ops/s", "p50 us", "p99 us");

  std::vector<TierResult> results;
  double serial_1conn = 0, pipelined_1conn = 0;
  for (size_t connections : {1u, 4u, 16u}) {
    for (size_t inflight : {1u, 8u, 64u}) {
      TierResult tier = RunTier(server, connections, inflight);
      std::printf("%-6zu %-9zu %10zu %12.0f %10.1f %10.1f\n",
                  tier.connections, tier.inflight, tier.ops, tier.ops_per_s,
                  tier.latency.p50_us, tier.latency.p99_us);
      std::fflush(stdout);
      if (connections == 1 && inflight == 1) {
        serial_1conn = tier.ops_per_s;
      }
      if (connections == 1 && inflight == 64) {
        pipelined_1conn = tier.ops_per_s;
      }
      results.push_back(tier);
    }
  }

  double speedup = serial_1conn > 0 ? pipelined_1conn / serial_1conn : 0;
  std::printf("pipelining speedup (1 conn, 64 in-flight vs 1): %.1fx\n",
              speedup);

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  WriteJson(f, results, speedup);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return speedup >= 3.0 ? 0 : 1;
}

}  // namespace
}  // namespace discfs

int main(int argc, char** argv) { return discfs::Run(argc, argv); }
