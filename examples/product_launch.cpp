// The paper's §2 motivating scenario: Bob, a salesman, wants designated
// clients to see advance product literature. No accounts, no group
// changes, no administrator on the critical path: the administrator gave
// Bob one credential for his directory long ago; Bob himself issues
// (time-limited!) credentials to each client.
#include "examples/example_util.h"

using namespace discfs;
using namespace discfs::examples;

int main() {
  Headline("Product launch: external clients, zero admin involvement");

  TestBed bed = TestBed::Start();
  DsaPrivateKey bob = NewKey();

  // One-time setup (months ago): admin hands Bob a credential for the
  // whole store root so he can organize his material.
  auto root = CheckedValue(bed.vfs->GetAttr(bed.vfs->root()), "root");
  CredentialOptions rwx;
  rwx.permissions = "RWX";
  std::string bob_grant = CheckedValue(
      IssueCredential(bed.admin, bob.public_key(), HandleString(root.inode),
                      rwx),
      "bob grant");

  auto bob_client = bed.Connect(bob);
  CheckedValue(bob_client->SubmitCredential(bob_grant), "submit bob grant");
  NfsFattr bob_root = CheckedValue(bob_client->Attach(), "attach");

  // Bob uploads the restricted literature; the augmented MKDIR/CREATE hand
  // him credentials for each new object.
  CreateResult dir = CheckedValue(
      bob_client->MkdirWithCredential(bob_root.fh, "launch-2001", 0755),
      "mkdir launch-2001");
  CreateResult brochure = CheckedValue(
      bob_client->CreateWithCredential(dir.attr.fh, "brochure.txt", 0644),
      "create brochure");
  Check(bob_client->nfs()
            .Write(brochure.attr.fh, 0,
                   ToBytes("OctoWidget 3000: launching June 2001"))
            .status(),
        "upload brochure");
  Step("Bob uploaded launch-2001/brochure.txt (handle " +
       std::to_string(brochure.attr.fh.inode) + ")");

  // Three clients from three different organizations. Bob emails each a
  // read-only credential that expires at the end of the quarter.
  for (const char* org : {"acme", "globex", "initech"}) {
    DsaPrivateKey client_key = NewKey();
    CredentialOptions read_only;
    read_only.permissions = "R";
    read_only.comment = std::string("advance brochure for ") + org;
    // Time-limited grant (this example runs on the real clock, so pick a
    // far-future end of quarter; see time_lock.cpp for expiry in action).
    read_only.expires_at = "20990701000000";
    std::string cred = CheckedValue(
        IssueCredential(bob, client_key.public_key(),
                        HandleString(brochure.attr.fh.inode), read_only),
        "client credential");

    auto client = bed.Connect(client_key);
    CheckedValue(client->SubmitCredential(cred), "client submits own cred");
    // The chain link for the brochure is the credential the augmented
    // CREATE minted for Bob (server -> Bob on this very handle).
    CheckedValue(client->SubmitCredential(brochure.credential),
                 "client submits Bob's chain link");
    // The client finds the file by the handle named in the credential.
    NfsFattr resolved = CheckedValue(
        client->ResolveHandle(brochure.attr.fh.inode), "resolve handle");
    Bytes content =
        CheckedValue(client->nfs().Read(resolved.fh, 0, 100), "read");
    Step(std::string(org) + " reads: \"" + ToString(content) + "\"");
    ExpectDenied(client->nfs().Write(resolved.fh, 0, ToBytes("vandalism")),
                 std::string(org) + " attempting to write");
    client->Close();
  }

  // A competitor who got hold of the ciphertext but no credential.
  DsaPrivateKey lurker = NewKey();
  auto lurker_client = bed.Connect(lurker);
  ExpectDenied(lurker_client->ResolveHandle(brochure.attr.fh.inode),
               "competitor resolving the handle without credentials");
  lurker_client->Close();

  bob_client->Close();
  std::printf("\nproduct launch example complete — the administrator was "
              "never involved.\n");
  return 0;
}
