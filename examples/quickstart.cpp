// Quickstart: the minimal DisCFS session.
//
//   1. start a DisCFS server (FFS volume, KeyNote policy trusting the
//      administrator key),
//   2. attach as a user over the secure channel (the server learns the
//      user's public key, nothing else),
//   3. observe that nothing is accessible — then submit a credential and
//      work with files,
//   4. create a file with the augmented CREATE and get back a credential
//      for it.
#include "examples/example_util.h"

using namespace discfs;
using namespace discfs::examples;

int main() {
  Headline("DisCFS quickstart");

  TestBed bed = TestBed::Start();
  Step("server up on 127.0.0.1:" + std::to_string(bed.host->port()) +
       " (admin key id " + bed.admin.public_key().KeyId() + ")");

  DsaPrivateKey user = NewKey();
  auto client = bed.Connect(user);
  Step("user " + user.public_key().KeyId() +
       " attached over the secure channel");

  NfsFattr root = CheckedValue(client->Attach(), "attach");
  Step("root handle = (inode " + std::to_string(root.fh.inode) +
       ", generation " + std::to_string(root.fh.generation) + ")");

  ExpectDenied(client->nfs().ReadDir(root.fh),
               "readdir before any credential");

  // The administrator mails the user a credential (here: issued in
  // process and submitted over RPC, as with the paper's email scenario).
  CredentialOptions options;
  options.permissions = "RWX";
  options.comment = "user home grant";
  std::string credential = CheckedValue(
      IssueCredential(bed.admin, user.public_key(),
                      HandleString(root.fh.inode), options),
      "issue credential");
  std::printf("\n--- credential issued by the administrator ---\n%s---\n\n",
              credential.c_str());
  CheckedValue(client->SubmitCredential(credential), "submit credential");
  Step("credential accepted by the server's KeyNote session");

  Step("readdir now succeeds; creating 'hello.txt'");
  CheckedValue(client->nfs().ReadDir(root.fh), "readdir");

  CreateResult created = CheckedValue(
      client->CreateWithCredential(root.fh, "hello.txt", 0644),
      "create with credential");
  Step("server returned a fresh credential for the new file (handle " +
       std::to_string(created.attr.fh.inode) + ")");

  Check(client->nfs()
            .Write(created.attr.fh, 0, ToBytes("hello, global file sharing"))
            .status(),
        "write");
  Bytes back = CheckedValue(client->nfs().Read(created.attr.fh, 0, 100),
                            "read");
  Step("read back: \"" + ToString(back) + "\"");

  client->Close();
  std::printf("\nquickstart complete.\n");
  return 0;
}
