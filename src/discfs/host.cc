#include "src/discfs/host.h"

namespace discfs {

Result<std::unique_ptr<DiscfsHost>> DiscfsHost::Start(
    std::shared_ptr<Vfs> vfs, DiscfsServerConfig config, uint16_t port) {
  auto host = std::unique_ptr<DiscfsHost>(new DiscfsHost());
  ASSIGN_OR_RETURN(host->server_,
                   DiscfsServer::Create(std::move(vfs), std::move(config)));
  ASSIGN_OR_RETURN(host->listener_, TcpListener::Listen(port));
  host->accept_thread_ = std::thread([h = host.get()] { h->AcceptLoop(); });
  return host;
}

void DiscfsHost::AcceptLoop() {
  while (true) {
    auto conn = listener_->Accept();
    if (!conn.ok()) {
      return;  // listener closed
    }
    std::lock_guard<std::mutex> lock(mu_);
    connection_threads_.emplace_back(
        [this, transport = std::move(conn).value()]() mutable {
          (void)server_->ServeConnection(std::move(transport));
        });
  }
}

DiscfsHost::~DiscfsHost() {
  listener_->Close();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (std::thread& t : connection_threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

Result<std::unique_ptr<CfsNeHost>> CfsNeHost::Start(std::shared_ptr<Vfs> vfs,
                                                    uint16_t port) {
  auto host = std::unique_ptr<CfsNeHost>(new CfsNeHost());
  host->server_ = std::make_unique<NfsServer>(std::move(vfs));
  host->server_->RegisterAll(host->dispatcher_);
  ASSIGN_OR_RETURN(host->listener_, TcpListener::Listen(port));
  host->accept_thread_ = std::thread([h = host.get()] { h->AcceptLoop(); });
  return host;
}

void CfsNeHost::AcceptLoop() {
  while (true) {
    auto conn = listener_->Accept();
    if (!conn.ok()) {
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    connection_threads_.emplace_back(
        [this, transport = std::move(conn).value()]() mutable {
          RpcContext ctx;  // unauthenticated
          dispatcher_.ServeConnection(*transport, ctx);
        });
  }
}

CfsNeHost::~CfsNeHost() {
  listener_->Close();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (std::thread& t : connection_threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

Result<std::unique_ptr<NfsClient>> ConnectCfsNe(const std::string& host,
                                                uint16_t port) {
  ASSIGN_OR_RETURN(std::unique_ptr<TcpTransport> transport,
                   TcpTransport::Connect(host, port));
  return ConnectCfsNeOver(std::move(transport));
}

Result<std::unique_ptr<NfsClient>> ConnectCfsNeOver(
    std::unique_ptr<MsgStream> stream) {
  auto rpc = std::make_shared<RpcClient>(std::move(stream));
  return std::make_unique<NfsClient>(std::move(rpc));
}

}  // namespace discfs
