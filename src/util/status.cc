#include "src/util/status.h"

namespace discfs {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kUnauthenticated:
      return "UNAUTHENTICATED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status OkStatus() { return Status(); }

Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status NotFoundError(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status AlreadyExistsError(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status PermissionDeniedError(std::string msg) {
  return Status(StatusCode::kPermissionDenied, std::move(msg));
}
Status UnauthenticatedError(std::string msg) {
  return Status(StatusCode::kUnauthenticated, std::move(msg));
}
Status FailedPreconditionError(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
Status OutOfRangeError(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
Status ResourceExhaustedError(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
Status UnavailableError(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
Status DeadlineExceededError(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
Status DataLossError(std::string msg) {
  return Status(StatusCode::kDataLoss, std::move(msg));
}
Status IoError(std::string msg) {
  return Status(StatusCode::kIoError, std::move(msg));
}
Status UnimplementedError(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
Status InternalError(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

}  // namespace discfs
