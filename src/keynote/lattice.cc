#include "src/keynote/lattice.h"

#include <cassert>

namespace discfs::keynote {

TotalOrderLattice::TotalOrderLattice(std::vector<std::string> names)
    : names_(std::move(names)) {
  assert(!names_.empty());
}

std::optional<ComplianceLattice::Value> TotalOrderLattice::FromName(
    std::string_view name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      return static_cast<Value>(i);
    }
  }
  return std::nullopt;
}

std::string TotalOrderLattice::Name(Value v) const {
  assert(v < names_.size());
  return names_[v];
}

namespace {
// Index = bitmask value (octal).
const char* const kPermissionNames[8] = {"false", "X",  "W",  "WX",
                                         "R",     "RX", "RW", "RWX"};
}  // namespace

std::optional<ComplianceLattice::Value> PermissionLattice::FromName(
    std::string_view name) const {
  for (Value v = 0; v < 8; ++v) {
    if (kPermissionNames[v] == name) {
      return v;
    }
  }
  // "true" is accepted as an alias for full access so that generic KeyNote
  // policies (Conditions: ... -> "true") work unchanged against DisCFS.
  if (name == "true") {
    return Top();
  }
  return std::nullopt;
}

std::string PermissionLattice::Name(Value v) const {
  assert(v < 8);
  return kPermissionNames[v];
}

std::vector<std::string> PermissionLattice::ValueNames() const {
  return std::vector<std::string>(kPermissionNames, kPermissionNames + 8);
}

const PermissionLattice& PermissionLattice::Get() {
  static const PermissionLattice lattice;
  return lattice;
}

}  // namespace discfs::keynote
