#include "src/crypto/dsa.h"

#include <cassert>
#include <mutex>
#include <unordered_map>

#include "src/crypto/hmac.h"
#include "src/crypto/sha.h"
#include "src/util/hex.h"
#include "src/util/strings.h"

namespace discfs {
namespace {

constexpr char kKeyNotePrefix[] = "dsa-hex:";

void AppendLengthPrefixed(Bytes& out, const BigNum& n) {
  Bytes b = n.ToBytes();
  uint32_t len = static_cast<uint32_t>(b.size());
  out.push_back(static_cast<uint8_t>(len >> 24));
  out.push_back(static_cast<uint8_t>(len >> 16));
  out.push_back(static_cast<uint8_t>(len >> 8));
  out.push_back(static_cast<uint8_t>(len));
  Append(out, b);
}

Result<BigNum> ReadLengthPrefixed(const Bytes& data, size_t& off) {
  if (off + 4 > data.size()) {
    return InvalidArgumentError("truncated key encoding (length)");
  }
  uint32_t len = (static_cast<uint32_t>(data[off]) << 24) |
                 (static_cast<uint32_t>(data[off + 1]) << 16) |
                 (static_cast<uint32_t>(data[off + 2]) << 8) |
                 static_cast<uint32_t>(data[off + 3]);
  off += 4;
  if (off + len > data.size()) {
    return InvalidArgumentError("truncated key encoding (body)");
  }
  Bytes b(data.begin() + static_cast<ptrdiff_t>(off),
          data.begin() + static_cast<ptrdiff_t>(off + len));
  off += len;
  return BigNum::FromBytes(b);
}

// Reduces a digest to an integer of at most |q| bits (FIPS 186 leftmost-bits
// truncation).
BigNum DigestToBigNum(const Bytes& digest, const BigNum& q) {
  BigNum z = BigNum::FromBytes(digest);
  size_t qbits = q.BitLength();
  size_t zbits = digest.size() * 8;
  if (zbits > qbits) {
    z = BigNum::ShiftRight(z, zbits - qbits);
  }
  return z;
}

// Computes (u1, u2) from the digest and signature, rejecting malformed
// signatures. Shared by the fast (precomputed-table) and generic paths.
bool ComputeVerifyExponents(const Bytes& digest, const DsaSignature& sig,
                            const BigNum& q, BigNum* u1, BigNum* u2) {
  if (sig.r.IsZero() || sig.s.IsZero() || sig.r >= q || sig.s >= q) {
    return false;
  }
  auto w_or = BigNum::ModInverse(sig.s, q);
  if (!w_or.ok()) {
    return false;
  }
  const BigNum& w = w_or.value();
  BigNum z = DigestToBigNum(digest, q);
  *u1 = BigNum::ModMul(z, w, q);
  *u2 = BigNum::ModMul(sig.r, w, q);
  return true;
}

}  // namespace

DsaVerifyContext::DsaVerifyContext(DsaParams params, MontgomeryCtx mont_p)
    : params_(std::move(params)), mont_p_(std::move(mont_p)) {}

Result<DsaVerifyContext> DsaVerifyContext::Create(const DsaPublicKey& key) {
  ASSIGN_OR_RETURN(MontgomeryCtx mont_p, MontgomeryCtx::Create(key.params().p));
  DsaVerifyContext ctx(key.params(), std::move(mont_p));
  ctx.g_table_ = ctx.mont_p_.Precompute(ctx.params_.g);
  ctx.y_table_ = ctx.mont_p_.Precompute(key.y());
  return ctx;
}

bool DsaVerifyContext::Verify(const Bytes& digest,
                              const DsaSignature& sig) const {
  BigNum u1, u2;
  if (!ComputeVerifyExponents(digest, sig, params_.q, &u1, &u2)) {
    return false;
  }
  BigNum v =
      BigNum::Mod(mont_p_.ModExpDouble(g_table_, u1, y_table_, u2), params_.q);
  return BigNum::Compare(v, sig.r) == 0;
}

namespace {

// Sharded context cache. Keys are long-lived (server key, authorizers),
// so a small per-shard bound with wholesale eviction on overflow is
// enough: rebuilding a context costs two 16-entry table fills, and the
// bound only exists so a flood of throwaway keys cannot grow the map
// without limit.
class VerifyContextCache {
 public:
  static VerifyContextCache& Get() {
    static VerifyContextCache* cache = new VerifyContextCache();
    return *cache;
  }

  std::shared_ptr<const DsaVerifyContext> Lookup(const DsaPublicKey& key) {
    Bytes id = Sha256::Hash(key.Serialize());
    std::string map_key(id.begin(), id.end());
    Shard& shard = shards_[static_cast<size_t>(
        static_cast<uint8_t>(map_key[0])) % kShards];
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.entries.find(map_key);
      if (it != shard.entries.end()) {
        return it->second;
      }
    }
    // Build outside the lock; concurrent builders for the same key both
    // produce correct contexts and one insert wins.
    auto built = DsaVerifyContext::Create(key);
    if (!built.ok()) {
      return nullptr;
    }
    auto ctx = std::make_shared<const DsaVerifyContext>(std::move(*built));
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.entries.size() >= kPerShardCap) {
      shard.entries.clear();
    }
    return shard.entries.emplace(std::move(map_key), std::move(ctx))
        .first->second;
  }

 private:
  static constexpr size_t kShards = 8;
  static constexpr size_t kPerShardCap = 64;
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string,
                       std::shared_ptr<const DsaVerifyContext>>
        entries;
  };
  Shard shards_[kShards];
};

}  // namespace

std::shared_ptr<const DsaVerifyContext> GetVerifyContext(
    const DsaPublicKey& key) {
  return VerifyContextCache::Get().Lookup(key);
}

bool DsaPublicKey::Verify(const Bytes& digest, const DsaSignature& sig) const {
  if (std::shared_ptr<const DsaVerifyContext> ctx = GetVerifyContext(*this)) {
    return ctx->Verify(digest, sig);
  }
  // Degenerate parameters (even p): generic double-exponentiation, which
  // itself falls back to the reference ModExp for even moduli.
  BigNum u1, u2;
  if (!ComputeVerifyExponents(digest, sig, params_.q, &u1, &u2)) {
    return false;
  }
  BigNum v = BigNum::Mod(
      BigNum::ModExpDouble(params_.g, u1, y_, u2, params_.p), params_.q);
  return BigNum::Compare(v, sig.r) == 0;
}

Bytes DsaPublicKey::Serialize() const {
  Bytes out;
  AppendLengthPrefixed(out, params_.p);
  AppendLengthPrefixed(out, params_.q);
  AppendLengthPrefixed(out, params_.g);
  AppendLengthPrefixed(out, y_);
  return out;
}

Result<DsaPublicKey> DsaPublicKey::Deserialize(const Bytes& data) {
  size_t off = 0;
  ASSIGN_OR_RETURN(BigNum p, ReadLengthPrefixed(data, off));
  ASSIGN_OR_RETURN(BigNum q, ReadLengthPrefixed(data, off));
  ASSIGN_OR_RETURN(BigNum g, ReadLengthPrefixed(data, off));
  ASSIGN_OR_RETURN(BigNum y, ReadLengthPrefixed(data, off));
  if (off != data.size()) {
    return InvalidArgumentError("trailing bytes in key encoding");
  }
  if (p.IsZero() || q.IsZero() || g.IsZero()) {
    return InvalidArgumentError("degenerate key parameters");
  }
  return DsaPublicKey(DsaParams{std::move(p), std::move(q), std::move(g)},
                      std::move(y));
}

std::string DsaPublicKey::ToKeyNoteString() const {
  return kKeyNotePrefix + HexEncode(Serialize());
}

Result<DsaPublicKey> DsaPublicKey::FromKeyNoteString(std::string_view s) {
  if (!StartsWith(s, kKeyNotePrefix)) {
    return InvalidArgumentError("principal is not a dsa-hex key");
  }
  ASSIGN_OR_RETURN(Bytes raw, HexDecode(s.substr(sizeof(kKeyNotePrefix) - 1)));
  return Deserialize(raw);
}

std::string DsaPublicKey::KeyId() const {
  return HexEncode(Sha256::Hash(Serialize())).substr(0, 16);
}

DsaPrivateKey::DsaPrivateKey(DsaParams params, BigNum x)
    : params_(params), x_(std::move(x)) {
  BigNum y = BigNum::ModExp(params_.g, x_, params_.p);
  public_key_ = DsaPublicKey(std::move(params), std::move(y));
}

DsaPrivateKey DsaPrivateKey::Generate(
    const DsaParams& params, const std::function<Bytes(size_t)>& rand_bytes) {
  // x uniform in [1, q-1].
  BigNum q_minus_1 = BigNum::Sub(params.q, BigNum(1));
  BigNum x = BigNum::Add(BigNum::RandomBelow(q_minus_1, rand_bytes), BigNum(1));
  return DsaPrivateKey(params, std::move(x));
}

Bytes DsaPrivateKey::Serialize() const {
  Bytes out;
  AppendLengthPrefixed(out, params_.p);
  AppendLengthPrefixed(out, params_.q);
  AppendLengthPrefixed(out, params_.g);
  AppendLengthPrefixed(out, x_);
  return out;
}

Result<DsaPrivateKey> DsaPrivateKey::Deserialize(const Bytes& data) {
  size_t off = 0;
  ASSIGN_OR_RETURN(BigNum p, ReadLengthPrefixed(data, off));
  ASSIGN_OR_RETURN(BigNum q, ReadLengthPrefixed(data, off));
  ASSIGN_OR_RETURN(BigNum g, ReadLengthPrefixed(data, off));
  ASSIGN_OR_RETURN(BigNum x, ReadLengthPrefixed(data, off));
  if (off != data.size()) {
    return InvalidArgumentError("trailing bytes in private key encoding");
  }
  if (x.IsZero() || BigNum::Compare(x, q) >= 0) {
    return InvalidArgumentError("private exponent out of range");
  }
  return DsaPrivateKey(DsaParams{std::move(p), std::move(q), std::move(g)},
                       std::move(x));
}

DsaSignature DsaPrivateKey::Sign(const Bytes& digest) const {
  const BigNum& p = params_.p;
  const BigNum& q = params_.q;
  const BigNum& g = params_.g;
  BigNum z = DigestToBigNum(digest, q);
  Bytes x_bytes = x_.ToBytes(q.ToBytes().size());

  for (uint8_t attempt = 0;; ++attempt) {
    // Deterministic nonce: k = HMAC-SHA256(x, digest || attempt) mod q.
    // Like RFC 6979, k depends only on the key and message, so no RNG
    // failure can leak x through nonce reuse.
    Bytes seed = digest;
    seed.push_back(attempt);
    Bytes k_material = HmacSha256(x_bytes, seed);
    Append(k_material, HmacSha256(x_bytes, k_material));
    BigNum k = BigNum::Mod(BigNum::FromBytes(k_material), q);
    if (k.IsZero()) {
      continue;
    }
    BigNum r = BigNum::Mod(BigNum::ModExp(g, k, p), q);
    if (r.IsZero()) {
      continue;
    }
    auto k_inv = BigNum::ModInverse(k, q);
    if (!k_inv.ok()) {
      continue;
    }
    BigNum s = BigNum::ModMul(
        k_inv.value(), BigNum::Mod(BigNum::Add(z, BigNum::Mul(x_, r)), q), q);
    if (s.IsZero()) {
      continue;
    }
    return DsaSignature{std::move(r), std::move(s)};
  }
}

Bytes SerializeDsaSignature(const DsaSignature& sig, const DsaParams& params) {
  size_t width = params.q.ToBytes().size();
  Bytes out = sig.r.ToBytes(width);
  Bytes s = sig.s.ToBytes(width);
  Append(out, s);
  return out;
}

Result<DsaSignature> DeserializeDsaSignature(const Bytes& data,
                                             const DsaParams& params) {
  size_t width = params.q.ToBytes().size();
  if (data.size() != 2 * width) {
    return InvalidArgumentError("bad DSA signature length");
  }
  Bytes r_bytes(data.begin(), data.begin() + static_cast<ptrdiff_t>(width));
  Bytes s_bytes(data.begin() + static_cast<ptrdiff_t>(width), data.end());
  return DsaSignature{BigNum::FromBytes(r_bytes), BigNum::FromBytes(s_bytes)};
}

}  // namespace discfs
