// Lockbox record wire/on-disk format (XDR, RFC 4506 conventions like the
// rest of src/wire). The same encoding serves both roles: it is the
// sidecar object the server persists beside a file in the FFS backend
// ("/.lockbox/box/<inode>") and the body of the PutLockbox/GetLockbox RPC
// procedures.
//
// A lockbox seals one file's random symmetric content key to each
// recipient: the payload is encrypted once under the content key, and the
// content key is wrapped (src/crypto/keywrap.h) once per recipient public
// key. The server never sees the content key — it stores and polices
// opaque entries.
//
//   LBX1 | version | handle | owner | sealed | chunk_size | payload_size
//        | chunk ids... | entries (recipient principal -> wrapped key)...
//
// `sealed` distinguishes the two storage modes:
//   - sealed (private): payload bytes are ciphertext (nonce || AEAD box)
//     under the per-file content key. Chunks of ciphertext are unique per
//     file by construction, so they never dedup across users — that is the
//     point (Bifrost-style: dedup must not leak equality of private data).
//   - public: payload bytes are plaintext; identical content produces
//     identical SHA-256 chunk ids, so the chunk store dedups them across
//     files and users. Entries may still be present (integrity sharing).
#ifndef DISCFS_SRC_WIRE_LOCKBOX_H_
#define DISCFS_SRC_WIRE_LOCKBOX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/status.h"
#include "src/wire/xdr.h"

namespace discfs::wire {

// One recipient's sealed copy of the content key.
struct LockboxEntry {
  std::string recipient;  // KeyNote principal ("dsa-hex:...")
  Bytes wrapped_key;      // src/crypto/keywrap.h blob; opaque to the server
};

struct LockboxRecord {
  static constexpr uint32_t kVersion = 1;
  // Bounds enforced on decode (and by the server procs): a record is
  // metadata, not bulk data.
  static constexpr uint32_t kMaxChunks = 1 << 16;
  static constexpr uint32_t kMaxEntries = 1 << 12;

  uint32_t handle = 0;       // inode the lockbox belongs to
  std::string owner;         // principal that put the lockbox
  bool sealed = false;       // true = payload is content-key ciphertext
  uint32_t chunk_size = 0;   // chunking unit of the stored payload
  uint64_t payload_size = 0; // stored payload bytes (ciphertext if sealed)
  std::vector<std::string> chunks;  // hex SHA-256 ids, in payload order
  std::vector<LockboxEntry> entries;

  // Index into `entries` for `recipient`, or -1.
  int FindEntry(const std::string& recipient) const;
};

// Codec for the record above (magic "LBX1" + version are part of the
// encoding; Decode rejects unknown magics/versions and enforces the
// bounds).
Bytes EncodeLockboxRecord(const LockboxRecord& record);
Result<LockboxRecord> DecodeLockboxRecord(const Bytes& data);

}  // namespace discfs::wire

#endif  // DISCFS_SRC_WIRE_LOCKBOX_H_
