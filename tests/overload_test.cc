// Graceful overload (PR 10): policy-aware shedding (data sheds first,
// control last), deadline propagation (client reaper + server-side drop of
// expired work at dequeue), and handshake hardening (a slowloris flood of
// half-open connections cannot pin workers and is reaped by timeout).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/blockdev/blockdev.h"
#include "src/crypto/groups.h"
#include "src/discfs/client.h"
#include "src/discfs/host.h"
#include "src/ffs/ffs.h"
#include "src/net/event_loop.h"
#include "src/net/transport.h"
#include "src/rpc/rpc.h"
#include "src/util/prng.h"
#include "src/util/worker_pool.h"
#include "src/vfs/vfs.h"

namespace discfs {
namespace {

using namespace std::chrono_literals;

std::function<Bytes(size_t)> TestRand(uint64_t seed) {
  auto prng = std::make_shared<Prng>(seed);
  return [prng](size_t n) { return prng->NextBytes(n); };
}

bool WaitFor(const std::function<bool()>& cond,
             std::chrono::milliseconds limit = 10s) {
  auto deadline = std::chrono::steady_clock::now() + limit;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) {
      return true;
    }
    std::this_thread::sleep_for(2ms);
  }
  return cond();
}

// One connection with all three priority tiers registered on the same
// blocking handler, so the test controls pool depth exactly.
struct TieredServer {
  static constexpr uint32_t kData = 1;
  static constexpr uint32_t kNamespace = 2;
  static constexpr uint32_t kControl = 3;

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};

  RpcDispatcher dispatcher;
  WorkerPool pool{1};  // one worker: a single blocked handler saturates it
  EventLoop loop;

  TieredServer() {
    auto handler = [this](const Bytes& args, const RpcContext&)
        -> Result<Bytes> {
      entered.fetch_add(1);
      std::unique_lock<std::mutex> lock(mu);
      cv.wait_for(lock, 10s, [this] { return release; });
      return args;
    };
    dispatcher.Register(1, kData, handler);
    dispatcher.Register(1, kNamespace, handler);
    dispatcher.Register(1, kControl, handler);
    dispatcher.SetPriority(1, kData, RpcPriority::kData);
    dispatcher.SetPriority(1, kControl, RpcPriority::kControl);
    // kNamespace stays at the default middle tier.
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
  }
};

// Under pressure the tiers shed in strict order: data bounces at its
// watermark while namespace and control are still admitted; namespace
// bounces at its watermark while control rides to the hard limit; control
// is only rejected at admission_queue_limit itself.
TEST(Overload, WatermarksShedDataFirstControlLast) {
  TieredServer server;
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  auto transport = TcpTransport::Connect("127.0.0.1", (*listener)->port());
  ASSERT_TRUE(transport.ok());
  auto accepted = (*listener)->Accept();
  ASSERT_TRUE(accepted.ok());

  RpcConnection::Options options;
  options.loop = &server.loop;
  options.pool = &server.pool;
  options.max_inflight = 64;
  options.shed_data_watermark = 1;
  options.shed_namespace_watermark = 2;
  options.admission_queue_limit = 4;
  auto served = RpcConnection::Start(&server.dispatcher,
                                     std::move(accepted).value(), RpcContext{},
                                     options);
  ASSERT_TRUE(served.ok()) << served.status();

  RpcClient client(std::move(transport).value());

  // Occupy the single worker, then build pool depth one request at a time.
  auto running = client.CallAsync(1, TieredServer::kControl, Bytes{0});
  ASSERT_TRUE(WaitFor([&] { return server.entered.load() == 1; }));

  auto data_ok = client.CallAsync(1, TieredServer::kData, Bytes{1});
  ASSERT_TRUE(WaitFor([&] { return server.pool.queue_depth() == 1; }));

  // Depth 1 = the data watermark: data sheds, namespace still admitted.
  auto data_shed = client.CallAsync(1, TieredServer::kData, Bytes{2});
  ASSERT_EQ(data_shed.wait_for(10s), std::future_status::ready);
  EXPECT_EQ(data_shed.get().status().code(), StatusCode::kResourceExhausted);

  auto ns_ok = client.CallAsync(1, TieredServer::kNamespace, Bytes{3});
  ASSERT_TRUE(WaitFor([&] { return server.pool.queue_depth() == 2; }));

  // Depth 2 = the namespace watermark: namespace sheds, control admitted.
  auto ns_shed = client.CallAsync(1, TieredServer::kNamespace, Bytes{4});
  ASSERT_EQ(ns_shed.wait_for(10s), std::future_status::ready);
  EXPECT_EQ(ns_shed.get().status().code(), StatusCode::kResourceExhausted);

  auto control_ok1 = client.CallAsync(1, TieredServer::kControl, Bytes{5});
  ASSERT_TRUE(WaitFor([&] { return server.pool.queue_depth() == 3; }));
  auto control_ok2 = client.CallAsync(1, TieredServer::kControl, Bytes{6});
  ASSERT_TRUE(WaitFor([&] { return server.pool.queue_depth() == 4; }));

  // Depth 4 = the hard admission limit: even control is rejected now.
  auto control_shed = client.CallAsync(1, TieredServer::kControl, Bytes{7});
  ASSERT_EQ(control_shed.wait_for(10s), std::future_status::ready);
  EXPECT_EQ(control_shed.get().status().code(),
            StatusCode::kResourceExhausted);

  EXPECT_EQ((*served)->shed_by_priority(RpcPriority::kData), 1u);
  EXPECT_EQ((*served)->shed_by_priority(RpcPriority::kNamespace), 1u);
  EXPECT_EQ((*served)->shed_by_priority(RpcPriority::kControl), 1u);
  EXPECT_EQ((*served)->busy_rejected(), 3u);

  // Every admitted request completes once the worker frees up.
  server.Release();
  for (auto* future : {&running, &data_ok, &ns_ok, &control_ok1,
                       &control_ok2}) {
    ASSERT_EQ(future->wait_for(10s), std::future_status::ready);
    EXPECT_TRUE(future->get().ok());
  }
  EXPECT_EQ(server.entered.load(), 5);  // the three sheds never executed

  client.Close();
  ASSERT_TRUE(WaitFor([&] { return (*served)->closed(); }));
}

// A request whose deadline passes while it waits in the pool queue is
// answered DEADLINE_EXCEEDED at dequeue without executing the handler —
// the caller already gave up, so burning a worker would only add load
// exactly when the server has none to spare.
TEST(Overload, ExpiredRequestsDropAtDequeueWithoutExecuting) {
  TieredServer server;
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  auto transport = TcpTransport::Connect("127.0.0.1", (*listener)->port());
  ASSERT_TRUE(transport.ok());
  auto accepted = (*listener)->Accept();
  ASSERT_TRUE(accepted.ok());

  RpcConnection::Options options;
  options.loop = &server.loop;
  options.pool = &server.pool;
  auto served = RpcConnection::Start(&server.dispatcher,
                                     std::move(accepted).value(), RpcContext{},
                                     options);
  ASSERT_TRUE(served.ok()) << served.status();

  RpcClient client(std::move(transport).value());

  // Pin the worker, then queue a call with a budget that expires while it
  // waits behind the blocked handler.
  auto running = client.CallAsync(1, TieredServer::kNamespace, Bytes{1});
  ASSERT_TRUE(WaitFor([&] { return server.entered.load() == 1; }));
  auto doomed =
      client.CallAsyncWithDeadline(1, TieredServer::kNamespace, Bytes{2}, 100);
  ASSERT_TRUE(WaitFor([&] { return server.pool.queue_depth() == 1; }));
  std::this_thread::sleep_for(250ms);  // the queued budget expires

  server.Release();
  ASSERT_EQ(doomed.wait_for(10s), std::future_status::ready);
  EXPECT_EQ(doomed.get().status().code(), StatusCode::kDeadlineExceeded);
  ASSERT_EQ(running.wait_for(10s), std::future_status::ready);
  EXPECT_TRUE(running.get().ok());

  // The drop happened server-side, at dequeue, without dispatch.
  ASSERT_TRUE(WaitFor([&] { return (*served)->expired_dropped() == 1; }));
  EXPECT_EQ(server.entered.load(), 1);

  client.Close();
  ASSERT_TRUE(WaitFor([&] { return (*served)->closed(); }));
}

// CallWithDeadline against a stalled server resolves promptly with
// DEADLINE_EXCEEDED instead of blocking forever, and the per-client
// default deadline applies the same budget to plain Calls.
TEST(Overload, CallWithDeadlineFailsFastOnStalledServer) {
  TieredServer server;
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  auto transport = TcpTransport::Connect("127.0.0.1", (*listener)->port());
  ASSERT_TRUE(transport.ok());
  auto accepted = (*listener)->Accept();
  ASSERT_TRUE(accepted.ok());

  RpcConnection::Options options;
  options.loop = &server.loop;
  options.pool = &server.pool;
  auto served = RpcConnection::Start(&server.dispatcher,
                                     std::move(accepted).value(), RpcContext{},
                                     options);
  ASSERT_TRUE(served.ok()) << served.status();

  RpcClient client(std::move(transport).value());

  // The handler parks on the cv: without a deadline this call would block
  // until the 10s handler guard, with one it resolves at ~150ms.
  auto start = std::chrono::steady_clock::now();
  auto stalled = client.CallWithDeadline(1, TieredServer::kNamespace,
                                         Bytes{1}, 150);
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(stalled.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(elapsed, 5s) << "deadline did not cut the stalled call short";

  // Same budget via the client-wide default, through the plain Call path.
  client.set_default_deadline_ms(150);
  auto defaulted = client.Call(1, TieredServer::kNamespace, Bytes{2});
  EXPECT_EQ(defaulted.status().code(), StatusCode::kDeadlineExceeded);

  // The connection itself is still healthy: clear the default, release
  // the handler, and a fresh call completes normally.
  client.set_default_deadline_ms(0);
  server.Release();
  EXPECT_TRUE(client.Call(1, TieredServer::kNamespace, Bytes{3}).ok());

  client.Close();
  ASSERT_TRUE(WaitFor([&] { return (*served)->closed(); }));
}

std::shared_ptr<FfsVfs> MakeVfs() {
  auto dev = std::make_shared<MemBlockDevice>(4096, 4096);
  auto fs = Ffs::Format(dev, FfsFormatOptions{512});
  EXPECT_TRUE(fs.ok()) << fs.status();
  return std::make_shared<FfsVfs>(std::move(fs).value());
}

// The slowloris scenario: a flood of connections that never speak leaves
// every half-open handshake parked on the event loop — the worker pool
// stays idle, a legitimate client still completes its handshake, and the
// per-connection timeout reaps the flood.
TEST(Overload, SlowlorisFloodCannotPinWorkersAndIsReaped) {
  constexpr int kFlood = 64;
  DsaPrivateKey server_key = DsaPrivateKey::Generate(Dsa512(), TestRand(1));
  DsaPrivateKey user_key = DsaPrivateKey::Generate(Dsa512(), TestRand(2));

  DiscfsServerConfig config;
  config.server_key = server_key;
  config.rand_bytes = TestRand(3);
  DiscfsHostOptions host_options;
  host_options.worker_threads = 2;
  host_options.handshake_timeout_ms = 400;
  auto host = DiscfsHost::Start(MakeVfs(), std::move(config), 0,
                                host_options);
  ASSERT_TRUE(host.ok()) << host.status();

  // Open the flood and keep the sockets alive, sending nothing.
  std::vector<std::unique_ptr<TcpTransport>> flood;
  for (int i = 0; i < kFlood; ++i) {
    auto conn = TcpTransport::Connect("127.0.0.1", (*host)->port());
    ASSERT_TRUE(conn.ok()) << i << ": " << conn.status();
    flood.push_back(std::move(conn).value());
  }
  ASSERT_TRUE(WaitFor([&] {
    return (*host)->handshake_stats().half_open == kFlood;
  })) << "flood connections never reached the handshake reactor";

  // Every flooded connection is half-open on the loop; no worker is
  // executing or queued on its behalf.
  EXPECT_EQ((*host)->inflight(), 0u);
  EXPECT_EQ((*host)->queue_depth(), 0u);
  EXPECT_EQ((*host)->active_connections(), 0u);

  // A legitimate client handshakes through the standing flood.
  ChannelIdentity user_id{user_key, TestRand(4)};
  auto client = DiscfsClient::Connect("127.0.0.1", (*host)->port(), user_id,
                                      server_key.public_key());
  ASSERT_TRUE(client.ok()) << client.status();
  EXPECT_TRUE((*client)->ServerInfo().ok());
  (*client)->Close();

  // The timeout reaps the whole flood; none of them ever completed.
  ASSERT_TRUE(WaitFor([&] {
    return (*host)->handshake_stats().half_open == 0;
  })) << "half-open handshakes were never reaped";
  HandshakeReactor::Stats stats = (*host)->handshake_stats();
  EXPECT_EQ(stats.timed_out, static_cast<uint64_t>(kFlood));
  EXPECT_EQ(stats.completed, 1u);  // the legitimate client only

  // The host still serves fresh clients after the purge.
  auto again = DiscfsClient::Connect("127.0.0.1", (*host)->port(), user_id,
                                     server_key.public_key());
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_TRUE((*again)->ServerInfo().ok());
  (*again)->Close();
}

// At the half-open cap the oldest handshake is evicted in favor of the new
// arrival, so a flood larger than the table still cannot lock out a fresh
// legitimate client — newest wins.
TEST(Overload, HalfOpenCapEvictsOldestNotNewest) {
  constexpr size_t kCap = 4;
  constexpr int kFlood = 8;
  DsaPrivateKey server_key = DsaPrivateKey::Generate(Dsa512(), TestRand(1));
  DsaPrivateKey user_key = DsaPrivateKey::Generate(Dsa512(), TestRand(2));

  DiscfsServerConfig config;
  config.server_key = server_key;
  config.rand_bytes = TestRand(3);
  DiscfsHostOptions host_options;
  host_options.worker_threads = 2;
  host_options.handshake_timeout_ms = 30'000;  // reaping plays no part here
  host_options.max_half_open_handshakes = kCap;
  auto host = DiscfsHost::Start(MakeVfs(), std::move(config), 0,
                                host_options);
  ASSERT_TRUE(host.ok()) << host.status();

  std::vector<std::unique_ptr<TcpTransport>> flood;
  for (int i = 0; i < kFlood; ++i) {
    auto conn = TcpTransport::Connect("127.0.0.1", (*host)->port());
    ASSERT_TRUE(conn.ok());
    flood.push_back(std::move(conn).value());
  }
  ASSERT_TRUE(WaitFor([&] {
    return (*host)->handshake_stats().evicted >= kFlood - kCap;
  })) << "cap never evicted the oldest half-open handshakes";
  EXPECT_LE((*host)->handshake_stats().half_open, kCap);

  // The newest arrival — the real client — evicts a squatter and lands.
  ChannelIdentity user_id{user_key, TestRand(4)};
  auto client = DiscfsClient::Connect("127.0.0.1", (*host)->port(), user_id,
                                      server_key.public_key());
  ASSERT_TRUE(client.ok()) << client.status();
  EXPECT_TRUE((*client)->ServerInfo().ok());
  (*client)->Close();
  EXPECT_EQ((*host)->handshake_stats().completed, 1u);
}

}  // namespace
}  // namespace discfs
