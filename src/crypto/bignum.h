// Arbitrary-precision unsigned integers for the DSA/DH substrate.
//
// Representation: little-endian vector of 32-bit limbs, normalized so the
// most-significant limb is non-zero (zero is the empty vector). All values
// are non-negative; subtraction requires a >= b. Division is Knuth vol.2
// Algorithm D. This is deliberately a small, auditable bignum — enough for
// 1024-bit DSA/DH at benchmark-friendly speed, not a general math library.
#ifndef DISCFS_SRC_CRYPTO_BIGNUM_H_
#define DISCFS_SRC_CRYPTO_BIGNUM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/status.h"

namespace discfs {

class BigNum {
 public:
  BigNum() = default;
  explicit BigNum(uint64_t v);

  // Big-endian byte import/export (the network/KeyNote encoding).
  static BigNum FromBytes(const Bytes& be);
  // Fixed-width big-endian export, zero-padded on the left. If the value
  // needs more than `width` bytes the result is truncated from the left
  // (callers size width from the modulus, so this does not happen in
  // correct use).
  Bytes ToBytes(size_t width = 0) const;

  static Result<BigNum> FromHex(std::string_view hex);
  std::string ToHex() const;  // lowercase, no leading zeros, "0" for zero

  static Result<BigNum> FromDecimal(std::string_view dec);
  std::string ToDecimal() const;

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  // Number of significant bits; 0 for zero.
  size_t BitLength() const;
  bool Bit(size_t i) const;
  uint64_t ToUint64() const;  // low 64 bits

  // -1 / 0 / +1 as a < b, a == b, a > b.
  static int Compare(const BigNum& a, const BigNum& b);

  static BigNum Add(const BigNum& a, const BigNum& b);
  // Requires a >= b.
  static BigNum Sub(const BigNum& a, const BigNum& b);
  static BigNum Mul(const BigNum& a, const BigNum& b);
  // Requires !divisor.IsZero(). Returns {quotient, remainder}.
  static std::pair<BigNum, BigNum> DivMod(const BigNum& a, const BigNum& b);
  static BigNum Mod(const BigNum& a, const BigNum& m);

  static BigNum ShiftLeft(const BigNum& a, size_t bits);
  static BigNum ShiftRight(const BigNum& a, size_t bits);

  // (a * b) mod m, (a ^ e) mod m. Require !m.IsZero().
  static BigNum ModMul(const BigNum& a, const BigNum& b, const BigNum& m);
  static BigNum ModExp(const BigNum& base, const BigNum& exp, const BigNum& m);
  // Modular inverse; error if gcd(a, m) != 1.
  static Result<BigNum> ModInverse(const BigNum& a, const BigNum& m);

  static BigNum Gcd(const BigNum& a, const BigNum& b);

  // Miller-Rabin with `rounds` random bases supplied by `rand_below`
  // (callback returning a uniform value in [2, n-2]).
  static bool IsProbablePrime(
      const BigNum& n, int rounds,
      const std::function<BigNum(const BigNum& excl_hi)>& rand_below);

  // Uniform value in [0, bound) from a source of random bytes.
  static BigNum RandomBelow(const BigNum& bound,
                            const std::function<Bytes(size_t)>& rand_bytes);

  bool operator==(const BigNum& o) const { return limbs_ == o.limbs_; }
  bool operator!=(const BigNum& o) const { return limbs_ != o.limbs_; }
  bool operator<(const BigNum& o) const { return Compare(*this, o) < 0; }
  bool operator<=(const BigNum& o) const { return Compare(*this, o) <= 0; }
  bool operator>(const BigNum& o) const { return Compare(*this, o) > 0; }
  bool operator>=(const BigNum& o) const { return Compare(*this, o) >= 0; }

 private:
  void Normalize();

  std::vector<uint32_t> limbs_;  // little-endian, no trailing zero limbs
};

inline BigNum operator+(const BigNum& a, const BigNum& b) {
  return BigNum::Add(a, b);
}
inline BigNum operator-(const BigNum& a, const BigNum& b) {
  return BigNum::Sub(a, b);
}
inline BigNum operator*(const BigNum& a, const BigNum& b) {
  return BigNum::Mul(a, b);
}
inline BigNum operator/(const BigNum& a, const BigNum& b) {
  return BigNum::DivMod(a, b).first;
}
inline BigNum operator%(const BigNum& a, const BigNum& b) {
  return BigNum::Mod(a, b);
}

}  // namespace discfs

#endif  // DISCFS_SRC_CRYPTO_BIGNUM_H_
