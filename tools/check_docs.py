#!/usr/bin/env python3
"""Documentation gate (CI: docs job).

Three checks, stdlib only:

1. README coverage — every src/<subsystem> that defines a wire or
   on-disk format (any file includes src/wire/xdr.h or mentions
   "on-disk") must carry a README.md describing it.
2. Link integrity — every relative markdown link in ARCHITECTURE.md,
   ROADMAP.md, docs/*.md, and the subsystem READMEs must resolve to a
   real file.
3. Schema-doc drift — docs/BENCH_SCHEMAS.md must mention every bench
   kind registered in tools/check_bench_schema.py's CHECKERS dict and
   every required key in its *_KEYS sets, so the checker cannot gain
   a requirement the documentation doesn't describe.

Exit non-zero with a per-finding list on any violation.

Usage: check_docs.py [repo_root]
"""

import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FORMAT_MARKERS = (re.compile(r'#include\s+"src/wire/xdr\.h"'),
                  re.compile(r"on-disk", re.IGNORECASE))


def find_format_bearing_subsystems(repo):
    """src/<dir> entries whose sources serialize wire or on-disk bytes."""
    bearing = set()
    src = os.path.join(repo, "src")
    for subsys in sorted(os.listdir(src)):
        subsys_dir = os.path.join(src, subsys)
        if not os.path.isdir(subsys_dir):
            continue
        for name in os.listdir(subsys_dir):
            if not name.endswith((".h", ".cc")):
                continue
            with open(os.path.join(subsys_dir, name), encoding="utf-8") as f:
                text = f.read()
            if any(marker.search(text) for marker in FORMAT_MARKERS):
                bearing.add(subsys)
                break
    return bearing


def check_readme_coverage(repo, errors):
    for subsys in sorted(find_format_bearing_subsystems(repo)):
        readme = os.path.join(repo, "src", subsys, "README.md")
        if not os.path.isfile(readme):
            errors.append(
                f"src/{subsys}/ defines a wire/on-disk format but has no "
                "README.md documenting it"
            )


def doc_files(repo):
    docs = []
    for name in ("ARCHITECTURE.md", "ROADMAP.md", "README.md"):
        path = os.path.join(repo, name)
        if os.path.isfile(path):
            docs.append(path)
    docs_dir = os.path.join(repo, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                docs.append(os.path.join(docs_dir, name))
    src = os.path.join(repo, "src")
    for subsys in sorted(os.listdir(src)):
        path = os.path.join(src, subsys, "README.md")
        if os.path.isfile(path):
            docs.append(path)
    return docs


def check_links(repo, errors):
    for doc in doc_files(repo):
        rel_doc = os.path.relpath(doc, repo)
        with open(doc, encoding="utf-8") as f:
            text = f.read()
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(doc), target))
            if not os.path.exists(resolved):
                errors.append(f"{rel_doc}: broken link -> {match.group(1)}")


def check_schema_doc_drift(repo, errors):
    sys.path.insert(0, os.path.join(repo, "tools"))
    try:
        import check_bench_schema
    finally:
        sys.path.pop(0)
    doc_path = os.path.join(repo, "docs", "BENCH_SCHEMAS.md")
    if not os.path.isfile(doc_path):
        errors.append("docs/BENCH_SCHEMAS.md is missing")
        return
    with open(doc_path, encoding="utf-8") as f:
        doc = f.read()
    for kind in check_bench_schema.CHECKERS:
        if kind not in doc:
            errors.append(
                f"docs/BENCH_SCHEMAS.md does not mention bench kind "
                f"{kind!r}"
            )
    for attr in dir(check_bench_schema):
        if not attr.endswith("_KEYS"):
            continue
        keys = getattr(check_bench_schema, attr)
        if not isinstance(keys, (set, frozenset)):
            continue
        for key in sorted(keys):
            if key not in doc:
                errors.append(
                    f"docs/BENCH_SCHEMAS.md does not mention required key "
                    f"{key!r} (from check_bench_schema.{attr})"
                )


def main(argv):
    repo = os.path.abspath(argv[1]) if len(argv) > 1 else os.path.abspath(
        os.path.join(os.path.dirname(__file__), ".."))
    errors = []
    check_readme_coverage(repo, errors)
    check_links(repo, errors)
    check_schema_doc_drift(repo, errors)
    if errors:
        print("check_docs.py: FAIL")
        for error in errors:
            print(f"  - {error}")
        return 1
    print("check_docs.py: ok (readme coverage, links, schema docs)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
