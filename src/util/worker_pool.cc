#include "src/util/worker_pool.h"

namespace discfs {

WorkerPool::WorkerPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() { Shutdown(); }

void WorkerPool::Submit(std::function<void()> task) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_) {
      queue_.push_back(std::move(task));
      cv_.notify_one();
      return;
    }
  }
  task();  // pool is shut down: run inline so the work is never dropped
}

void WorkerPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return;
    }
    stopping_ = true;
    cv_.notify_all();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

size_t WorkerPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t WorkerPool::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

void WorkerPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [this] { return !queue_.empty() || stopping_; });
    if (queue_.empty()) {
      return;  // stopping and fully drained
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    lock.unlock();
    task();
    lock.lock();
    --in_flight_;
  }
}

}  // namespace discfs
