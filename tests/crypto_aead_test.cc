#include <gtest/gtest.h>

#include "src/crypto/aead.h"
#include "src/crypto/chacha20.h"
#include "src/crypto/poly1305.h"
#include "src/util/hex.h"
#include "src/util/prng.h"

namespace discfs {
namespace {

Bytes FromHexOrDie(std::string_view h) {
  auto r = HexDecode(h);
  EXPECT_TRUE(r.ok());
  return r.value();
}

// RFC 8439 §2.1.1 quarter-round test vector.
TEST(ChaCha20, QuarterRoundVector) {
  uint32_t a = 0x11111111, b = 0x01020304, c = 0x9b8d6f43, d = 0x01234567;
  ChaCha20::QuarterRound(a, b, c, d);
  EXPECT_EQ(a, 0xea2a92f4u);
  EXPECT_EQ(b, 0xcb1cf8ceu);
  EXPECT_EQ(c, 0x4581472eu);
  EXPECT_EQ(d, 0x5881c4bbu);
}

TEST(ChaCha20, EncryptDecryptRoundTrip) {
  Bytes key(32, 0x42);
  Bytes nonce(12, 0x24);
  Bytes msg = ToBytes("attack at dawn, bring credentials");
  ChaCha20 enc(key, nonce, 1);
  Bytes ct = enc.Crypt(msg);
  EXPECT_NE(ct, msg);
  ChaCha20 dec(key, nonce, 1);
  EXPECT_EQ(dec.Crypt(ct), msg);
}

TEST(ChaCha20, KeystreamBlocksDiffer) {
  Bytes key(32, 1);
  Bytes nonce(12, 2);
  ChaCha20 c(key, nonce, 0);
  uint8_t b0[64], b1[64];
  c.KeystreamBlock(0, b0);
  c.KeystreamBlock(1, b1);
  EXPECT_NE(Bytes(b0, b0 + 64), Bytes(b1, b1 + 64));
}

TEST(ChaCha20, CounterContinuityAcrossCalls) {
  // Encrypting in two chunks of arbitrary sizes must equal one shot when the
  // chunk boundary is block-aligned.
  Bytes key(32, 7);
  Bytes nonce(12, 9);
  Bytes msg(256, 0xaa);
  ChaCha20 one(key, nonce, 1);
  Bytes full = one.Crypt(msg);
  ChaCha20 two(key, nonce, 1);
  Bytes part1(msg.begin(), msg.begin() + 64);
  Bytes part2(msg.begin() + 64, msg.end());
  Bytes ct1 = two.Crypt(part1);
  Bytes ct2 = two.Crypt(part2);
  Append(ct1, ct2);
  EXPECT_EQ(ct1, full);
}

// RFC 8439 §2.5.2 Poly1305 test vector.
TEST(Poly1305, Rfc8439Vector) {
  Bytes key = FromHexOrDie(
      "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  Bytes msg = ToBytes("Cryptographic Forum Research Group");
  EXPECT_EQ(HexEncode(Poly1305Tag(key, msg)),
            "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(Poly1305, EmptyMessage) {
  Bytes key(32, 0x55);
  EXPECT_EQ(Poly1305Tag(key, Bytes()).size(), 16u);
}

TEST(Poly1305, BlockBoundaryLengths) {
  Bytes key = FromHexOrDie(
      "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  // Tags must differ across lengths straddling the 16-byte block boundary.
  std::vector<Bytes> tags;
  for (size_t len : {15u, 16u, 17u, 31u, 32u, 33u}) {
    tags.push_back(Poly1305Tag(key, Bytes(len, 0x61)));
  }
  for (size_t i = 0; i < tags.size(); ++i) {
    for (size_t j = i + 1; j < tags.size(); ++j) {
      EXPECT_NE(tags[i], tags[j]);
    }
  }
}

class AeadTest : public ::testing::Test {
 protected:
  AeadTest() : aead_(Bytes(32, 0x11)) {}
  Bytes Nonce(uint64_t n) {
    Bytes nonce(12, 0);
    for (int i = 0; i < 8; ++i) {
      nonce[4 + i] = static_cast<uint8_t>(n >> (8 * i));
    }
    return nonce;
  }
  Aead aead_;
};

TEST_F(AeadTest, SealOpenRoundTrip) {
  Bytes msg = ToBytes("NFS READ fhandle=42 offset=0 count=8192");
  Bytes aad = ToBytes("seq=7");
  Bytes sealed = aead_.Seal(Nonce(7), aad, msg);
  EXPECT_EQ(sealed.size(), msg.size() + Aead::kTagSize);
  auto opened = aead_.Open(Nonce(7), aad, sealed);
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_EQ(opened.value(), msg);
}

TEST_F(AeadTest, EmptyPlaintext) {
  Bytes sealed = aead_.Seal(Nonce(1), Bytes(), Bytes());
  EXPECT_EQ(sealed.size(), Aead::kTagSize);
  auto opened = aead_.Open(Nonce(1), Bytes(), sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(opened->empty());
}

TEST_F(AeadTest, TamperedCiphertextRejected) {
  Bytes sealed = aead_.Seal(Nonce(2), Bytes(), ToBytes("hello"));
  sealed[0] ^= 1;
  EXPECT_FALSE(aead_.Open(Nonce(2), Bytes(), sealed).ok());
}

TEST_F(AeadTest, TamperedTagRejected) {
  Bytes sealed = aead_.Seal(Nonce(2), Bytes(), ToBytes("hello"));
  sealed.back() ^= 1;
  EXPECT_FALSE(aead_.Open(Nonce(2), Bytes(), sealed).ok());
}

TEST_F(AeadTest, WrongNonceRejected) {
  Bytes sealed = aead_.Seal(Nonce(3), Bytes(), ToBytes("hello"));
  EXPECT_FALSE(aead_.Open(Nonce(4), Bytes(), sealed).ok());
}

TEST_F(AeadTest, WrongAadRejected) {
  Bytes sealed = aead_.Seal(Nonce(5), ToBytes("aad-a"), ToBytes("hello"));
  EXPECT_FALSE(aead_.Open(Nonce(5), ToBytes("aad-b"), sealed).ok());
}

TEST_F(AeadTest, WrongKeyRejected) {
  Bytes sealed = aead_.Seal(Nonce(6), Bytes(), ToBytes("hello"));
  Aead other(Bytes(32, 0x22));
  EXPECT_FALSE(other.Open(Nonce(6), Bytes(), sealed).ok());
}

TEST_F(AeadTest, TruncatedRecordRejected) {
  EXPECT_FALSE(aead_.Open(Nonce(1), Bytes(), Bytes(10, 0)).ok());
}

TEST_F(AeadTest, RandomizedRoundTrips) {
  Prng prng(99);
  for (int i = 0; i < 50; ++i) {
    Bytes msg = prng.NextBytes(prng.NextBelow(2000));
    Bytes aad = prng.NextBytes(prng.NextBelow(64));
    Bytes nonce = Nonce(prng.Next());
    Bytes sealed = aead_.Seal(nonce, aad, msg);
    auto opened = aead_.Open(nonce, aad, sealed);
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(opened.value(), msg);
  }
}

}  // namespace
}  // namespace discfs
