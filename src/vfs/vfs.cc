#include "src/vfs/vfs.h"

#include "src/util/strings.h"

namespace discfs {
namespace {

Result<std::vector<std::string>> SplitPath(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return InvalidArgumentError("path must be absolute: " + path);
  }
  std::vector<std::string> parts;
  for (const std::string& part : StrSplit(path, '/')) {
    if (part.empty()) {
      continue;
    }
    if (part == "." || part == "..") {
      return InvalidArgumentError("'.'/'..' not supported in paths");
    }
    parts.push_back(part);
  }
  return parts;
}

}  // namespace

Result<InodeAttr> ResolvePath(Vfs& vfs, const std::string& path) {
  ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  ASSIGN_OR_RETURN(InodeAttr current, vfs.GetAttr(vfs.root()));
  for (const std::string& part : parts) {
    ASSIGN_OR_RETURN(current, vfs.Lookup(current.inode, part));
  }
  return current;
}

Result<InodeAttr> MkdirAll(Vfs& vfs, const std::string& path, uint32_t mode) {
  ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  ASSIGN_OR_RETURN(InodeAttr current, vfs.GetAttr(vfs.root()));
  for (const std::string& part : parts) {
    auto next = vfs.Lookup(current.inode, part);
    if (next.ok()) {
      if (next->type != FileType::kDirectory) {
        return FailedPreconditionError(part + " exists and is not a directory");
      }
      current = *next;
      continue;
    }
    if (next.status().code() != StatusCode::kNotFound) {
      return next.status();
    }
    ASSIGN_OR_RETURN(current, vfs.Mkdir(current.inode, part, mode));
  }
  return current;
}

Result<std::pair<InodeAttr, std::string>> ResolveParent(
    Vfs& vfs, const std::string& path) {
  ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) {
    return InvalidArgumentError("path has no leaf component");
  }
  std::string leaf = parts.back();
  parts.pop_back();
  ASSIGN_OR_RETURN(InodeAttr current, vfs.GetAttr(vfs.root()));
  for (const std::string& part : parts) {
    ASSIGN_OR_RETURN(current, vfs.Lookup(current.inode, part));
  }
  if (current.type != FileType::kDirectory) {
    return InvalidArgumentError("parent is not a directory");
  }
  return std::make_pair(current, leaf);
}

Result<std::string> ReadFileAt(Vfs& vfs, const std::string& path) {
  ASSIGN_OR_RETURN(InodeAttr attr, ResolvePath(vfs, path));
  if (attr.type != FileType::kRegular) {
    return InvalidArgumentError(path + " is not a regular file");
  }
  std::string out(attr.size, '\0');
  ASSIGN_OR_RETURN(size_t n,
                   vfs.Read(attr.inode, 0, attr.size,
                            reinterpret_cast<uint8_t*>(out.data())));
  out.resize(n);
  return out;
}

Status WriteFileAt(Vfs& vfs, const std::string& path,
                   const std::string& contents, uint32_t mode) {
  ASSIGN_OR_RETURN(auto parent_leaf, ResolveParent(vfs, path));
  const auto& [parent, leaf] = parent_leaf;
  InodeAttr file;
  auto existing = vfs.Lookup(parent.inode, leaf);
  if (existing.ok()) {
    file = *existing;
    SetAttrRequest truncate;
    truncate.size = 0;
    RETURN_IF_ERROR(vfs.SetAttr(file.inode, truncate));
  } else if (existing.status().code() == StatusCode::kNotFound) {
    ASSIGN_OR_RETURN(file, vfs.Create(parent.inode, leaf, mode));
  } else {
    return existing.status();
  }
  ASSIGN_OR_RETURN(
      size_t n,
      vfs.Write(file.inode, 0,
                reinterpret_cast<const uint8_t*>(contents.data()),
                contents.size()));
  if (n != contents.size()) {
    return IoError("short write to " + path);
  }
  return OkStatus();
}

}  // namespace discfs
