// Builds the KeyNote action attribute set for an NFS operation — the
// policy-visible description of "who is doing what to which file when".
//
// Attributes provided to every query:
//   app_domain   "DisCFS"                         (paper Figure 5)
//   HANDLE       decimal inode number             (paper Figure 5)
//   operation    NFS procedure name ("read", "write", ...)
//   perm_needed  the RWX mask name the operation requires ("R", "W", ...)
//   time_of_day  "HHMM"   — enables the paper's office-hours example
//   date         "YYYYMMDD"
//   timestamp    "YYYYMMDDhhmmss"
//   weekday      "0".."6" (Sunday = 0)
#ifndef DISCFS_SRC_DISCFS_ACTION_ENV_H_
#define DISCFS_SRC_DISCFS_ACTION_ENV_H_

#include <string>

#include "src/keynote/expr.h"
#include "src/nfs/protocol.h"
#include "src/util/clock.h"

namespace discfs {

inline constexpr char kAppDomain[] = "DisCFS";

// Decimal HANDLE string for a file (the paper uses the bare inode number).
std::string HandleString(uint32_t inode);

const char* NfsProcName(NfsProc proc);

keynote::AttributeMap BuildActionEnv(NfsProc proc, uint32_t inode,
                                     uint32_t needed_mask, const Clock& clock);

}  // namespace discfs

#endif  // DISCFS_SRC_DISCFS_ACTION_ENV_H_
