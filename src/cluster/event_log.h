// Bounded, monotonically sequence-numbered log of churn events — the
// replication source the coherence fabric's peer senders read from.
//
// Appends assign dense sequence numbers starting at 1. The log retains at
// most `capacity` events; older entries are compacted away (dropped from
// the front). A reader whose cursor has been compacted past cannot replay
// the missing prefix — ReadAfter reports that as a gap and the sender
// falls back to shipping a full invalidation that stands in for everything
// lost, followed by the retained suffix (see CoherenceFabric).
#ifndef DISCFS_SRC_CLUSTER_EVENT_LOG_H_
#define DISCFS_SRC_CLUSTER_EVENT_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "src/cluster/event.h"

namespace discfs::cluster {

class CoherenceEventLog {
 public:
  // capacity 0 is clamped to 1 (a log that retains nothing could never
  // replay, only full-invalidate).
  explicit CoherenceEventLog(size_t capacity);

  // Appends and returns the assigned sequence number.
  uint64_t Append(CoherenceEvent event);

  // Reinstates recovered state: head becomes `head` and the retained
  // suffix becomes `tail` (entries with seq <= head, ascending; trimmed
  // to capacity). Only valid before the first Append — recovery runs
  // before the fabric goes live.
  void Restore(uint64_t head, std::vector<SequencedEvent> tail);

  // Copies events with seq > cursor, oldest first, at most `max`.
  // *compacted is set when cursor+1 is no longer retained — the caller
  // must cover the lost prefix with a full invalidation (the returned
  // events are the retained suffix, still worth replaying afterwards).
  std::vector<SequencedEvent> ReadAfter(uint64_t cursor, size_t max,
                                        bool* compacted) const;

  // Latest assigned sequence number (0 when nothing was ever appended).
  uint64_t head_seq() const;
  // Oldest retained sequence number; head_seq()+1 when the log is empty.
  uint64_t first_seq() const;
  size_t size() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  uint64_t head_ = 0;                  // guarded by mu_
  std::deque<SequencedEvent> events_;  // guarded by mu_
};

}  // namespace discfs::cluster

#endif  // DISCFS_SRC_CLUSTER_EVENT_LOG_H_
