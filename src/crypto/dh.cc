#include "src/crypto/dh.h"

namespace discfs {

DhKeyPair DhKeyPair::Generate(const DsaParams& params,
                              const std::function<Bytes(size_t)>& rand_bytes) {
  BigNum q_minus_1 = BigNum::Sub(params.q, BigNum(1));
  BigNum x = BigNum::Add(BigNum::RandomBelow(q_minus_1, rand_bytes), BigNum(1));
  return DhKeyPair(params, std::move(x));
}

Bytes DhKeyPair::PublicValue() const {
  size_t width = params_.p.ToBytes().size();
  return BigNum::ModExp(params_.g, x_, params_.p).ToBytes(width);
}

Result<Bytes> DhKeyPair::SharedSecret(const Bytes& peer_public) const {
  BigNum y = BigNum::FromBytes(peer_public);
  BigNum p_minus_1 = BigNum::Sub(params_.p, BigNum(1));
  if (BigNum::Compare(y, BigNum(1)) <= 0 ||
      BigNum::Compare(y, p_minus_1) >= 0) {
    return InvalidArgumentError("DH peer value out of range");
  }
  // Subgroup membership: y^q == 1 (mod p).
  if (BigNum::Compare(BigNum::ModExp(y, params_.q, params_.p), BigNum(1)) !=
      0) {
    return InvalidArgumentError("DH peer value not in order-q subgroup");
  }
  size_t width = params_.p.ToBytes().size();
  return BigNum::ModExp(y, x_, params_.p).ToBytes(width);
}

}  // namespace discfs
