// The paper's distributed requirement (§2, §4.3): "The access mechanism
// should work for both centralized servers and in a distributed environment
// where the files are stored in multiple servers. ... Since the servers do
// not need to share information about users, there is no synchronization
// overhead."
//
// This test runs TWO independent DisCFS servers (separate volumes, separate
// KeyNote sessions) whose policies trust the same administrator key, and
// shows a user working against both with credentials — with no
// server-to-server communication of any kind. The PR 4 tests below then
// opt the same topology into the coherence fabric and show the one thing
// isolated servers cannot do: a revocation accepted on one server denying
// access on every other, scoped to the affected principal.
#include <gtest/gtest.h>

#include <chrono>

#include "src/crypto/groups.h"
#include "src/discfs/action_env.h"
#include "src/discfs/client.h"
#include "src/discfs/credentials.h"
#include "src/discfs/host.h"
#include "src/util/prng.h"

namespace discfs {
namespace {

// Locked: cluster peer handshakes overlap client handshakes on the pool.
std::function<Bytes(size_t)> TestRand(uint64_t seed) {
  return LockedPrngBytes(seed);
}

struct Node {
  std::shared_ptr<FfsVfs> vfs;
  std::unique_ptr<DiscfsHost> host;
};

Node StartNode(const DsaPrivateKey& server_key, const DsaPublicKey& admin_key,
               uint64_t seed,
               std::vector<DsaPublicKey> cluster_trusted_keys = {}) {
  Node node;
  auto dev = std::make_shared<MemBlockDevice>(4096, 4096);
  auto fs = Ffs::Format(dev, FfsFormatOptions{512});
  EXPECT_TRUE(fs.ok());
  node.vfs = std::make_shared<FfsVfs>(std::move(fs).value());

  DiscfsServerConfig config;
  config.server_key = server_key;
  config.rand_bytes = TestRand(seed);
  config.cluster_trusted_keys = std::move(cluster_trusted_keys);
  // Each node's local policy trusts the ADMINISTRATOR key, not the node's
  // own channel key: one administrative root spans the fleet.
  config.policy_assertions.push_back(
      "Authorizer: \"POLICY\"\n"
      "Licensees: \"" + admin_key.ToKeyNoteString() + "\"\n"
      "Conditions: app_domain == \"DisCFS\" -> \"RWX\";\n");
  auto host = DiscfsHost::Start(node.vfs, std::move(config));
  EXPECT_TRUE(host.ok()) << host.status();
  node.host = std::move(host).value();
  return node;
}

TEST(DiscfsMultiServer, OneAdminKeyManyServersNoSync) {
  DsaPrivateKey admin = DsaPrivateKey::Generate(Dsa512(), TestRand(1));
  DsaPrivateKey server_a = DsaPrivateKey::Generate(Dsa512(), TestRand(2));
  DsaPrivateKey server_b = DsaPrivateKey::Generate(Dsa512(), TestRand(3));
  DsaPrivateKey bob = DsaPrivateKey::Generate(Dsa512(), TestRand(4));

  Node node_a = StartNode(server_a, admin.public_key(), 10);
  Node node_b = StartNode(server_b, admin.public_key(), 11);

  // Seed different files on each repository. The dummy file on B offsets
  // its inode numbering so handles do NOT collide across volumes (the
  // cross-server check below relies on distinct handles).
  ASSERT_TRUE(WriteFileAt(*node_a.vfs, "/east-coast.txt", "data at A").ok());
  ASSERT_TRUE(WriteFileAt(*node_b.vfs, "/dummy.txt", "filler").ok());
  ASSERT_TRUE(WriteFileAt(*node_b.vfs, "/west-coast.txt", "data at B").ok());
  InodeAttr file_a =
      ResolvePath(*node_a.vfs, "/east-coast.txt").value();
  InodeAttr file_b =
      ResolvePath(*node_b.vfs, "/west-coast.txt").value();

  // The admin issues Bob one credential per file; nothing is installed on
  // the servers ahead of time.
  CredentialOptions read_only;
  read_only.permissions = "R";
  std::string cred_a =
      IssueCredential(admin, bob.public_key(), HandleString(file_a.inode),
                      read_only)
          .value();
  std::string cred_b =
      IssueCredential(admin, bob.public_key(), HandleString(file_b.inode),
                      read_only)
          .value();

  // Bob attaches to both servers (each authenticates with its own key).
  ChannelIdentity bob_id{bob, TestRand(20)};
  auto client_a = DiscfsClient::Connect("127.0.0.1", node_a.host->port(),
                                        bob_id, server_a.public_key());
  ASSERT_TRUE(client_a.ok()) << client_a.status();
  auto client_b = DiscfsClient::Connect("127.0.0.1", node_b.host->port(),
                                        bob_id, server_b.public_key());
  ASSERT_TRUE(client_b.ok()) << client_b.status();

  // Each server only ever sees the credentials submitted to it.
  ASSERT_TRUE((*client_a)->SubmitCredential(cred_a).ok());
  ASSERT_TRUE((*client_b)->SubmitCredential(cred_b).ok());

  NfsFh fh_a{file_a.inode, file_a.generation};
  NfsFh fh_b{file_b.inode, file_b.generation};
  auto data_a = (*client_a)->nfs().Read(fh_a, 0, 100);
  ASSERT_TRUE(data_a.ok()) << data_a.status();
  EXPECT_EQ(ToString(*data_a), "data at A");
  auto data_b = (*client_b)->nfs().Read(fh_b, 0, 100);
  ASSERT_TRUE(data_b.ok()) << data_b.status();
  EXPECT_EQ(ToString(*data_b), "data at B");

  // Authorization state is strictly local: server B never learned about
  // cred_a, so the matching handle on B (same inode number!) stays closed.
  auto cross = (*client_b)->nfs().Read(fh_a, 0, 100);
  EXPECT_EQ(cross.status().code(), StatusCode::kPermissionDenied);

  EXPECT_EQ(node_a.host->server().credential_count(), 1u);
  EXPECT_EQ(node_b.host->server().credential_count(), 1u);

  (*client_a)->Close();
  (*client_b)->Close();
}

TEST(DiscfsMultiServer, DelegationWorksAcrossServers) {
  // Bob delegates to Alice once; the same pair of credentials opens the
  // same file handle on any server that trusts the admin root — the
  // "global file sharing" of the title.
  DsaPrivateKey admin = DsaPrivateKey::Generate(Dsa512(), TestRand(1));
  DsaPrivateKey server_a = DsaPrivateKey::Generate(Dsa512(), TestRand(2));
  DsaPrivateKey server_b = DsaPrivateKey::Generate(Dsa512(), TestRand(3));
  DsaPrivateKey bob = DsaPrivateKey::Generate(Dsa512(), TestRand(4));
  DsaPrivateKey alice = DsaPrivateKey::Generate(Dsa512(), TestRand(5));

  Node node_a = StartNode(server_a, admin.public_key(), 10);
  Node node_b = StartNode(server_b, admin.public_key(), 11);

  // The same report is replicated on both servers; because both volumes
  // are freshly formatted the same way, the file lands on the same inode.
  ASSERT_TRUE(WriteFileAt(*node_a.vfs, "/report.txt", "Q3 numbers").ok());
  ASSERT_TRUE(WriteFileAt(*node_b.vfs, "/report.txt", "Q3 numbers").ok());
  InodeAttr fa = ResolvePath(*node_a.vfs, "/report.txt").value();
  InodeAttr fb = ResolvePath(*node_b.vfs, "/report.txt").value();
  ASSERT_EQ(fa.inode, fb.inode);  // same handle on both replicas

  CredentialOptions rw;
  rw.permissions = "RW";
  std::string admin_to_bob =
      IssueCredential(admin, bob.public_key(), HandleString(fa.inode), rw)
          .value();
  CredentialOptions ro;
  ro.permissions = "R";
  std::string bob_to_alice =
      IssueCredential(bob, alice.public_key(), HandleString(fa.inode), ro)
          .value();

  ChannelIdentity alice_id{alice, TestRand(30)};
  for (Node* node : {&node_a, &node_b}) {
    auto client = DiscfsClient::Connect("127.0.0.1", node->host->port(),
                                        alice_id, std::nullopt);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE((*client)->SubmitCredential(admin_to_bob).ok());
    ASSERT_TRUE((*client)->SubmitCredential(bob_to_alice).ok());
    auto attr = (*client)->ResolveHandle(fa.inode);
    ASSERT_TRUE(attr.ok()) << attr.status();
    auto data = (*client)->nfs().Read(attr->fh, 0, 100);
    ASSERT_TRUE(data.ok()) << data.status();
    EXPECT_EQ(ToString(*data), "Q3 numbers");
    (*client)->Close();
  }
}

TEST(DiscfsMultiServer, RevocationOnOneServerDeniesOnPeersScoped) {
  // PR 4: the same fleet, now joined by the coherence fabric. A credential
  // withdrawn on server A must stop working on server B — including B's
  // *cached* grant — while an unrelated principal's cached grant on B
  // survives untouched (scoped invalidation, not a flush).
  DsaPrivateKey admin = DsaPrivateKey::Generate(Dsa512(), TestRand(1));
  DsaPrivateKey server_a = DsaPrivateKey::Generate(Dsa512(), TestRand(2));
  DsaPrivateKey server_b = DsaPrivateKey::Generate(Dsa512(), TestRand(3));
  DsaPrivateKey bob = DsaPrivateKey::Generate(Dsa512(), TestRand(4));
  DsaPrivateKey carol = DsaPrivateKey::Generate(Dsa512(), TestRand(5));

  Node node_a =
      StartNode(server_a, admin.public_key(), 10, {server_b.public_key()});
  Node node_b =
      StartNode(server_b, admin.public_key(), 11, {server_a.public_key()});
  ASSERT_TRUE(node_a.host
                  ->AddClusterPeer({"127.0.0.1", node_b.host->port(),
                                    server_b.public_key()})
                  .ok());
  ASSERT_TRUE(node_b.host
                  ->AddClusterPeer({"127.0.0.1", node_a.host->port(),
                                    server_a.public_key()})
                  .ok());

  // The report is replicated on both volumes (same handle, as in
  // DelegationWorksAcrossServers).
  ASSERT_TRUE(WriteFileAt(*node_a.vfs, "/report.txt", "Q3 numbers").ok());
  ASSERT_TRUE(WriteFileAt(*node_b.vfs, "/report.txt", "Q3 numbers").ok());
  InodeAttr fa = ResolvePath(*node_a.vfs, "/report.txt").value();
  InodeAttr fb = ResolvePath(*node_b.vfs, "/report.txt").value();
  ASSERT_EQ(fa.inode, fb.inode);
  NfsFh fh{fb.inode, fb.generation};

  CredentialOptions ro;
  ro.permissions = "R";
  std::string bob_cred =
      IssueCredential(admin, bob.public_key(), HandleString(fa.inode), ro)
          .value();
  std::string carol_cred =
      IssueCredential(admin, carol.public_key(), HandleString(fa.inode), ro)
          .value();

  // A holds bob's credential too (it will accept the revocation). Wait
  // for the submit event to land on B before warming B's cache, so the
  // entries below stay warm until the revocation arrives.
  auto bob_cred_id = node_a.host->server().SubmitCredential(bob_cred);
  ASSERT_TRUE(bob_cred_id.ok()) << bob_cred_id.status();
  ASSERT_TRUE(node_a.host->fabric()->WaitForAck(
      1, std::chrono::milliseconds(10000)));

  // Bob and carol both work against B; their reads warm B's policy cache.
  ChannelIdentity bob_id{bob, TestRand(20)};
  ChannelIdentity carol_id{carol, TestRand(21)};
  auto bob_client = DiscfsClient::Connect("127.0.0.1", node_b.host->port(),
                                          bob_id, server_b.public_key());
  ASSERT_TRUE(bob_client.ok()) << bob_client.status();
  auto carol_client = DiscfsClient::Connect("127.0.0.1", node_b.host->port(),
                                            carol_id, server_b.public_key());
  ASSERT_TRUE(carol_client.ok()) << carol_client.status();
  ASSERT_TRUE((*bob_client)->SubmitCredential(bob_cred).ok());
  ASSERT_TRUE((*carol_client)->SubmitCredential(carol_cred).ok());
  ASSERT_TRUE((*bob_client)->nfs().Read(fh, 0, 100).ok());
  ASSERT_TRUE((*carol_client)->nfs().Read(fh, 0, 100).ok());

  // Both grants are now served from B's cache.
  node_b.host->server().ResetTelemetry();
  ASSERT_TRUE((*bob_client)->nfs().Read(fh, 0, 100).ok());
  ASSERT_TRUE((*carol_client)->nfs().Read(fh, 0, 100).ok());
  EXPECT_EQ(node_b.host->server().counters().keynote_queries.load(), 0u);

  // The issuer withdraws bob's credential ON A; B never hears about it
  // directly — only through the fabric.
  ASSERT_TRUE(node_a.host->server().RemoveCredential(*bob_cred_id).ok());
  ASSERT_TRUE(node_a.host->fabric()->WaitForAck(
      2, std::chrono::milliseconds(10000)));
  // The bump reached B through the remote path (checked before
  // ResetTelemetry zeroes the coherence counters).
  EXPECT_GE(node_b.host->server().stats_snapshot().coherence.remote_bumps, 1u);

  node_b.host->server().ResetTelemetry();
  // Carol first: her entry must still be warm (survivor check — the
  // invalidation was scoped to bob).
  auto carol_read = (*carol_client)->nfs().Read(fh, 0, 100);
  ASSERT_TRUE(carol_read.ok()) << carol_read.status();
  EXPECT_EQ(node_b.host->server().counters().keynote_queries.load(), 0u)
      << "carol's cached grant should have survived bob's revocation";
  // Bob's previously warm cached grant on B is now denied.
  auto bob_read = (*bob_client)->nfs().Read(fh, 0, 100);
  EXPECT_EQ(bob_read.status().code(), StatusCode::kPermissionDenied)
      << bob_read.status();

  // B expelled the revoked credential from its own session.
  EXPECT_EQ(node_b.host->server().credential_count(), 1u);  // carol's only

  // A revocation minted on a server that never even held the credential
  // must still propagate: A knows carol's credential only by id, yet
  // removing it there revokes her grant on B (B recomputes its own
  // closure on receipt).
  std::string carol_cred_id =
      (*carol_client)->SubmitCredential(carol_cred).value();  // idempotent
  EXPECT_EQ(node_a.host->server()
                .RemoveCredential(carol_cred_id)
                .code(),
            StatusCode::kNotFound);  // not installed on A — still published
  ASSERT_TRUE(node_a.host->fabric()->WaitForAck(
      3, std::chrono::milliseconds(10000)));
  auto carol_after = (*carol_client)->nfs().Read(fh, 0, 100);
  EXPECT_EQ(carol_after.status().code(), StatusCode::kPermissionDenied)
      << carol_after.status();
  EXPECT_EQ(node_b.host->server().credential_count(), 0u);

  (*bob_client)->Close();
  (*carol_client)->Close();
}

}  // namespace
}  // namespace discfs
