// Byte-buffer helpers shared by crypto, wire, and transport code.
#ifndef DISCFS_SRC_UTIL_BYTES_H_
#define DISCFS_SRC_UTIL_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace discfs {

using Bytes = std::vector<uint8_t>;

inline Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string ToString(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

inline void Append(Bytes& out, const Bytes& in) {
  out.insert(out.end(), in.begin(), in.end());
}

inline void Append(Bytes& out, std::string_view in) {
  out.insert(out.end(), in.begin(), in.end());
}

inline void Append(Bytes& out, const uint8_t* data, size_t len) {
  out.insert(out.end(), data, data + len);
}

// Timing-independent equality; required when comparing MACs/signatures.
inline bool ConstantTimeEqual(const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) {
    return false;
  }
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return acc == 0;
}

}  // namespace discfs

#endif  // DISCFS_SRC_UTIL_BYTES_H_
