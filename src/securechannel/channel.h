// SecureChannel — the repository's stand-in for the paper's IPsec tunnel.
//
// The paper (§4.3, §5) uses IPsec/IKE for exactly two properties:
//   (a) NFS traffic between client and server is confidential and
//       integrity-protected;
//   (b) the DisCFS server learns the client's *public key* during IKE key
//       establishment and associates every subsequent NFS request with it.
//
// This module provides both with a signed ephemeral Diffie-Hellman handshake
// (the IKE stand-in) and a ChaCha20-Poly1305 record layer with ESP-style
// sequence numbers and an anti-replay window (the ESP stand-in).
//
// Handshake (3 messages over an established transport):
//   C -> S : ClientHello  { client_identity_key, dh_c, nonce_c }
//   S -> C : ServerHello  { server_identity_key, dh_s, nonce_s,
//                           SIG_server(transcript_1) }
//   C -> S : ClientAuth   { SIG_client(transcript_2) }
// where transcript_1 = ClientHello || ServerHello-body and transcript_2 =
// transcript_1 || ServerHello-signature. Traffic keys come from
// HKDF(salt = nonce_c || nonce_s, ikm = DH secret). Each direction has its
// own key; record nonces encode the direction and a monotone sequence
// number, which is also authenticated as AAD.
#ifndef DISCFS_SRC_SECURECHANNEL_CHANNEL_H_
#define DISCFS_SRC_SECURECHANNEL_CHANNEL_H_

#include <functional>
#include <memory>
#include <mutex>
#include <optional>

#include "src/crypto/aead.h"
#include "src/crypto/dsa.h"
#include "src/net/transport.h"
#include "src/securechannel/replay_window.h"
#include "src/util/status.h"

namespace discfs {

struct ChannelIdentity {
  DsaPrivateKey key;
  std::function<Bytes(size_t)> rand_bytes;
};

class SecureChannel : public MsgStream {
 public:
  // Client side. If `expected_server` is set, the handshake fails unless the
  // server proves possession of exactly that key (the SFS-style
  // "self-certifying" check: the expected key typically comes from the
  // mount/attach specification).
  static Result<std::unique_ptr<SecureChannel>> ClientHandshake(
      std::unique_ptr<MsgStream> transport, const ChannelIdentity& identity,
      const std::optional<DsaPublicKey>& expected_server);

  // Server side: accepts any client key (DisCFS authorizes by credentials,
  // not identity lists) and exposes it via peer_key().
  static Result<std::unique_ptr<SecureChannel>> ServerHandshake(
      std::unique_ptr<MsgStream> transport, const ChannelIdentity& identity);

  // MsgStream: AEAD-sealed records over the inner transport. Send and Recv
  // each serialize internally but never against each other: the send state
  // (sequence counter) and receive state (replay window) are disjoint and
  // carry their own locks, so the RPC demux loop can sit in Recv while
  // worker threads stream replies through Send.
  Status Send(const Bytes& message) override;
  Result<Bytes> Recv() override;
  void Close() override;
  void Shutdown() override;

  // Non-blocking face for event-loop serving: readiness comes from the
  // inner transport's fd; TryRecv opens a record only when a whole sealed
  // frame is already available, and SendNonBlocking seals under the send
  // lock (sequence order preserved) before handing the wire bytes to the
  // transport's buffered non-blocking sender.
  int PollFd() const override { return transport_->PollFd(); }
  Result<std::optional<Bytes>> TryRecv() override;
  Result<bool> SendNonBlocking(const Bytes& message) override;
  Result<bool> FlushSend() override;

  // The authenticated identity of the other endpoint. For the server this
  // is the client key that DisCFS binds NFS requests to.
  const DsaPublicKey& peer_key() const { return peer_key_; }

 private:
  friend class ServerHandshakeMachine;

  SecureChannel(std::unique_ptr<MsgStream> transport, Bytes send_key,
                Bytes recv_key, DsaPublicKey peer_key);

  static Bytes BuildNonce(uint64_t seq);
  // Authenticates + replay-checks one wire record (recv_mu_ held).
  Result<Bytes> OpenRecord(const Bytes& frame);
  // Seals `message` into a wire record (send_mu_ held).
  Bytes SealRecord(const Bytes& message);

  std::unique_ptr<MsgStream> transport_;
  Aead send_aead_;
  Aead recv_aead_;
  DsaPublicKey peer_key_;
  // Send direction: sequence allocation and the transport write happen
  // under send_mu_ so records hit the wire in sequence order.
  std::mutex send_mu_;
  uint64_t send_seq_ = 0;  // guarded by send_mu_
  // Receive direction: the blocking transport read and the replay-window
  // update happen under recv_mu_ (never held by a sender).
  std::mutex recv_mu_;
  ReplayWindow recv_window_;  // guarded by recv_mu_
};

// Sans-io server side of the same 3-message handshake: one machine per
// in-flight connection, driven a message at a time, so an event loop can
// interleave hundreds of half-open handshakes without parking a thread
// per connection (ServerHandshake blocks its caller twice; a slow or
// malicious client would pin a pool worker for the whole exchange).
//
// Usage: feed each inbound handshake frame to OnMessage; write any
// returned response back to the peer; once done(), call Finish with the
// transport to obtain the established SecureChannel. The machine does no
// I/O — readiness, timeouts and framing stay with the caller.
class ServerHandshakeMachine {
 public:
  explicit ServerHandshakeMachine(const ChannelIdentity& identity);

  struct Step {
    Bytes response;    // when non-empty, send to the peer
    bool done = false; // when true, call Finish
  };

  // Advances the handshake with one peer message. CPU-heavy (DH exchange
  // plus a DSA sign or verify) — run on a worker, not the poller thread.
  // Any error is terminal for this machine.
  Result<Step> OnMessage(const Bytes& message);

  bool done() const { return state_ == State::kDone; }

  // Binds the derived traffic keys to `transport`. Valid exactly once,
  // after done(); the machine is consumed.
  Result<std::unique_ptr<SecureChannel>> Finish(
      std::unique_ptr<MsgStream> transport);

  // The client identity authenticated by the handshake (set once done()).
  const std::optional<DsaPublicKey>& client_key() const { return client_key_; }

 private:
  enum class State { kAwaitClientHello, kAwaitClientAuth, kDone, kFailed };

  ChannelIdentity identity_;
  State state_ = State::kAwaitClientHello;
  Bytes transcript1_;
  Bytes server_sig_;
  Bytes send_key_;  // server -> client
  Bytes recv_key_;  // client -> server
  std::optional<DsaPublicKey> client_key_;
};

}  // namespace discfs

#endif  // DISCFS_SRC_SECURECHANNEL_CHANNEL_H_
