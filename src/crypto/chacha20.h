// ChaCha20 stream cipher (RFC 8439).
#ifndef DISCFS_SRC_CRYPTO_CHACHA20_H_
#define DISCFS_SRC_CRYPTO_CHACHA20_H_

#include <cstdint>

#include "src/util/bytes.h"

namespace discfs {

class ChaCha20 {
 public:
  static constexpr size_t kKeySize = 32;
  static constexpr size_t kNonceSize = 12;
  static constexpr size_t kBlockSize = 64;

  // key must be 32 bytes, nonce 12 bytes.
  ChaCha20(const Bytes& key, const Bytes& nonce, uint32_t counter);

  // Produces the 64-byte keystream block for `counter` into out.
  void KeystreamBlock(uint32_t counter, uint8_t out[kBlockSize]) const;

  // XORs the keystream (starting at the construction-time counter) into
  // data in place.
  void Crypt(uint8_t* data, size_t len);
  Bytes Crypt(const Bytes& data);

  // The RFC 8439 quarter round, exposed for unit testing against the
  // published test vector.
  static void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d);

 private:
  uint32_t state_[16];
  uint32_t counter_;
};

}  // namespace discfs

#endif  // DISCFS_SRC_CRYPTO_CHACHA20_H_
