#include "src/crypto/aead.h"

#include <cassert>

#include "src/crypto/chacha20.h"
#include "src/crypto/poly1305.h"

namespace discfs {
namespace {

void AppendLE64(Bytes& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PadTo16(Bytes& out, size_t len) {
  size_t rem = len % 16;
  if (rem != 0) {
    out.insert(out.end(), 16 - rem, 0);
  }
}

}  // namespace

Aead::Aead(Bytes key) : key_(std::move(key)) {
  assert(key_.size() == kKeySize);
}

Bytes Aead::MacData(const Bytes& aad, const Bytes& ciphertext) const {
  Bytes mac_data;
  mac_data.reserve(aad.size() + ciphertext.size() + 48);
  Append(mac_data, aad);
  PadTo16(mac_data, aad.size());
  Append(mac_data, ciphertext);
  PadTo16(mac_data, ciphertext.size());
  AppendLE64(mac_data, aad.size());
  AppendLE64(mac_data, ciphertext.size());
  return mac_data;
}

Bytes Aead::Seal(const Bytes& nonce, const Bytes& aad,
                 const Bytes& plaintext) const {
  assert(nonce.size() == kNonceSize);
  // Poly1305 one-time key = first 32 bytes of block 0 keystream.
  ChaCha20 block0(key_, nonce, 0);
  uint8_t ks[ChaCha20::kBlockSize];
  block0.KeystreamBlock(0, ks);
  Bytes poly_key(ks, ks + 32);

  ChaCha20 cipher(key_, nonce, 1);
  Bytes ciphertext = cipher.Crypt(plaintext);

  Bytes tag = Poly1305Tag(poly_key, MacData(aad, ciphertext));
  Append(ciphertext, tag);
  return ciphertext;
}

Result<Bytes> Aead::Open(const Bytes& nonce, const Bytes& aad,
                         const Bytes& ciphertext_and_tag) const {
  assert(nonce.size() == kNonceSize);
  if (ciphertext_and_tag.size() < kTagSize) {
    return UnauthenticatedError("AEAD record too short");
  }
  Bytes ciphertext(ciphertext_and_tag.begin(),
                   ciphertext_and_tag.end() - kTagSize);
  Bytes tag(ciphertext_and_tag.end() - kTagSize, ciphertext_and_tag.end());

  ChaCha20 block0(key_, nonce, 0);
  uint8_t ks[ChaCha20::kBlockSize];
  block0.KeystreamBlock(0, ks);
  Bytes poly_key(ks, ks + 32);

  Bytes expected = Poly1305Tag(poly_key, MacData(aad, ciphertext));
  if (!ConstantTimeEqual(expected, tag)) {
    return UnauthenticatedError("AEAD tag mismatch");
  }
  ChaCha20 cipher(key_, nonce, 1);
  return cipher.Crypt(ciphertext);
}

}  // namespace discfs
