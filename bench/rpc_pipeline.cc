// Closed-loop pipelined RPC throughput across the full wire stack:
// TcpTransport -> SecureChannel -> RpcClient on the client, TcpListener ->
// ServerHandshake (on the worker pool) -> RpcConnection on a shared epoll
// EventLoop on the server. Both sides run the PR 3 event-driven runtime:
// one poller thread per side demuxes every connection, so the total thread
// count is O(workers + pollers + drivers) no matter how many connections a
// tier opens — which the connections sweep (64 and 256) proves by sampling
// /proc/self/status during each tier and gating on the delta.
//
// One handler (echo after a fixed simulated-I/O delay, the shape of a
// blocking NFS read) is measured at every {connections, in-flight} tier;
// with 1 in-flight the runtime degenerates to the old serial call loop, so
// the speedup column is pipelining's contribution alone.
//
// Output: human-readable table on stdout plus BENCH_rpc.json (path from
// argv[1], default ./BENCH_rpc.json). Schema documented in ROADMAP.md and
// enforced by tools/check_bench_schema.py.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/crypto/groups.h"
#include "src/net/event_loop.h"
#include "src/net/transport.h"
#include "src/rpc/rpc.h"
#include "src/securechannel/channel.h"
#include "src/util/prng.h"
#include "src/util/worker_pool.h"

namespace discfs {
namespace {

constexpr uint32_t kProg = 7;
constexpr uint32_t kProcEcho = 1;
// Long enough that the blocking-I/O phase dominates the per-op CPU cost
// (crypto + syscalls), which is what pipelining can overlap; the CPU
// phase serializes on small machines regardless of in-flight depth.
constexpr auto kSimulatedIo = std::chrono::microseconds(400);

std::function<Bytes(size_t)> BenchRand(uint64_t seed) {
  auto prng = std::make_shared<Prng>(seed);
  return [prng](size_t n) { return prng->NextBytes(n); };
}

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Threads currently in this process (the whole bench runs in one process,
// so this covers server poller + workers + client poller + drivers).
size_t CurrentThreadCount() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return static_cast<size_t>(std::atoll(line.c_str() + 8));
    }
  }
  return 0;
}

struct LatencySummary {
  double p50_us = 0;
  double p99_us = 0;
};

LatencySummary Summarize(std::vector<double> samples_us) {
  LatencySummary s;
  if (samples_us.empty()) {
    return s;
  }
  std::sort(samples_us.begin(), samples_us.end());
  s.p50_us = samples_us[samples_us.size() / 2];
  s.p99_us = samples_us[std::min(samples_us.size() - 1,
                                 samples_us.size() * 99 / 100)];
  return s;
}

// Server: accepts until the listener closes; every connection handshakes
// on the shared pool and is then served from one EventLoop, like
// DiscfsHost.
class BenchServer {
 public:
  explicit BenchServer(size_t workers, size_t max_inflight)
      : key_(DsaPrivateKey::Generate(Dsa512(), BenchRand(1))),
        pool_(workers) {
    dispatcher_.Register(kProg, kProcEcho,
                         [](const Bytes& args, const RpcContext&) {
                           std::this_thread::sleep_for(kSimulatedIo);
                           return Result<Bytes>(args);
                         });
    options_.loop = &loop_;
    options_.pool = &pool_;
    options_.max_inflight = max_inflight;
    auto listener = TcpListener::Listen(0);
    if (!listener.ok()) {
      std::fprintf(stderr, "listen failed: %s\n",
                   listener.status().ToString().c_str());
      std::abort();
    }
    listener_ = std::move(listener).value();
    accept_thread_ = std::thread([this] { AcceptLoop(); });
  }

  ~BenchServer() {
    listener_->Shutdown();
    accept_thread_.join();
    std::vector<std::shared_ptr<RpcConnection>> conns;
    {
      std::lock_guard<std::mutex> lock(mu_);
      conns.swap(conns_);
    }
    for (auto& conn : conns) {
      conn->Abort();
    }
    pool_.Shutdown();
  }

  uint16_t port() const { return listener_->port(); }
  const DsaPublicKey& public_key() const { return key_.public_key(); }

 private:
  void AcceptLoop() {
    uint64_t seed = 100;
    while (true) {
      auto conn = listener_->Accept();
      if (!conn.ok()) {
        return;
      }
      auto transport = std::make_shared<std::unique_ptr<TcpTransport>>(
          std::move(conn).value());
      pool_.Submit([this, transport, seed] {
        ChannelIdentity identity{key_, BenchRand(seed)};
        auto channel = SecureChannel::ServerHandshake(std::move(*transport),
                                                      identity);
        if (!channel.ok()) {
          return;
        }
        RpcContext ctx;
        ctx.peer_key = (*channel)->peer_key();
        auto served = RpcConnection::Start(
            &dispatcher_, std::move(channel).value(), std::move(ctx),
            options_);
        if (served.ok()) {
          std::lock_guard<std::mutex> lock(mu_);
          conns_.push_back(std::move(served).value());
        }
      });
      ++seed;
    }
  }

  DsaPrivateKey key_;
  RpcDispatcher dispatcher_;
  EventLoop loop_;
  WorkerPool pool_;
  RpcConnection::Options options_;
  std::unique_ptr<TcpListener> listener_;
  std::thread accept_thread_;
  std::mutex mu_;
  std::vector<std::shared_ptr<RpcConnection>> conns_;
};

struct TierResult {
  size_t connections = 0;
  size_t inflight = 0;
  size_t ops = 0;
  double ops_per_s = 0;
  size_t threads = 0;  // peak process thread count observed mid-tier
  LatencySummary latency;
};

// One connection's closed loop: keep `inflight` CallAsyncs outstanding by
// issuing a new call as the oldest completes. Latency is issue -> resolve
// of the oldest call, which upper-bounds per-op service time.
void RunConnection(RpcClient& client, size_t inflight, size_t ops,
                   std::vector<double>& latencies_us,
                   std::atomic<bool>& failed) {
  struct Pending {
    std::future<Result<Bytes>> future;
    double issued_at;
  };
  std::deque<Pending> window;
  Bytes payload(64, 0xa5);
  size_t issued = 0, completed = 0;
  latencies_us.reserve(ops);
  while (completed < ops) {
    while (issued < ops && window.size() < inflight) {
      window.push_back({client.CallAsync(kProg, kProcEcho, payload), NowSec()});
      ++issued;
    }
    Pending oldest = std::move(window.front());
    window.pop_front();
    Result<Bytes> result = oldest.future.get();
    latencies_us.push_back((NowSec() - oldest.issued_at) * 1e6);
    if (!result.ok() || *result != payload) {
      failed.store(true);
      return;
    }
    ++completed;
  }
}

// Batch closed loop over a group of connections: one driver keeps
// `inflight` calls outstanding on each of its clients, collecting a full
// window per client per round. Used by the connections sweep so the driver
// count stays fixed (8) while connections scale — keeping the bench's own
// thread usage flat, so the /proc sample measures the runtime, not the
// harness.
void RunConnectionGroup(const std::vector<RpcClient*>& clients,
                        size_t inflight, size_t rounds,
                        std::vector<double>& latencies_us,
                        std::atomic<bool>& failed) {
  struct Pending {
    std::future<Result<Bytes>> future;
    double issued_at;
  };
  Bytes payload(64, 0xa5);
  latencies_us.reserve(clients.size() * inflight * rounds);
  std::vector<Pending> window;
  window.reserve(clients.size() * inflight);
  for (size_t round = 0; round < rounds; ++round) {
    window.clear();
    for (RpcClient* client : clients) {
      for (size_t i = 0; i < inflight; ++i) {
        window.push_back(
            {client->CallAsync(kProg, kProcEcho, payload), NowSec()});
      }
    }
    for (Pending& pending : window) {
      Result<Bytes> result = pending.future.get();
      latencies_us.push_back((NowSec() - pending.issued_at) * 1e6);
      if (!result.ok() || *result != payload) {
        failed.store(true);
        return;
      }
    }
  }
}

TierResult RunTier(BenchServer& server, const DsaPrivateKey& client_key,
                   size_t connections, size_t inflight) {
  TierResult tier;
  tier.connections = connections;
  tier.inflight = inflight;
  // Scale work with concurrency so every tier runs long enough to measure
  // without the serial tiers dominating wall-clock.
  const bool sweep = connections > 16;
  const size_t rounds = sweep ? (connections >= 256 ? 5 : 6) : 0;
  const size_t ops_per_conn =
      sweep ? rounds * inflight
            : std::min<size_t>(2000, std::max<size_t>(400, 100 * inflight));
  tier.ops = ops_per_conn * connections;

  // All clients demux on one shared poller — the client-side half of the
  // flat-thread story.
  EventLoop client_loop;
  std::vector<std::unique_ptr<RpcClient>> clients;
  for (size_t c = 0; c < connections; ++c) {
    auto transport = TcpTransport::Connect("127.0.0.1", server.port());
    if (!transport.ok()) {
      std::fprintf(stderr, "connect failed: %s\n",
                   transport.status().ToString().c_str());
      std::abort();
    }
    ChannelIdentity identity{client_key, BenchRand(300 + c)};
    auto channel = SecureChannel::ClientHandshake(
        std::move(transport).value(), identity, server.public_key());
    if (!channel.ok()) {
      std::fprintf(stderr, "handshake failed: %s\n",
                   channel.status().ToString().c_str());
      std::abort();
    }
    clients.push_back(std::make_unique<RpcClient>(std::move(channel).value(),
                                                  &client_loop));
  }

  const size_t drivers = sweep ? 8 : connections;
  std::vector<std::vector<double>> latencies(drivers);
  std::atomic<bool> failed{false};
  std::atomic<bool> tier_done{false};
  double t0 = NowSec();
  std::vector<std::thread> driver_threads;
  for (size_t d = 0; d < drivers; ++d) {
    driver_threads.emplace_back([&, d] {
      if (!sweep) {
        RunConnection(*clients[d], inflight, ops_per_conn, latencies[d],
                      failed);
        return;
      }
      std::vector<RpcClient*> group;
      for (size_t c = d; c < connections; c += drivers) {
        group.push_back(clients[c].get());
      }
      RunConnectionGroup(group, inflight, rounds, latencies[d], failed);
    });
  }
  // Sample the process thread count mid-tier (a few times, keep the max)
  // from a helper so the sampling cadence never pads the measured wall
  // time of short tiers: this is the number the connections sweep gates
  // on.
  std::atomic<size_t> peak_threads{0};
  std::thread sampler([&] {
    do {
      size_t now = CurrentThreadCount();
      size_t prev = peak_threads.load();
      while (now > prev && !peak_threads.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    } while (!tier_done.load());
  });
  for (std::thread& t : driver_threads) {
    t.join();
  }
  double elapsed = NowSec() - t0;
  tier_done.store(true);
  sampler.join();
  tier.threads = peak_threads.load();
  if (failed.load()) {
    std::fprintf(stderr, "tier conns=%zu inflight=%zu: call failed\n",
                 connections, inflight);
    std::abort();
  }
  for (auto& client : clients) {
    client->Close();
  }
  clients.clear();  // unregister from client_loop before it dies

  std::vector<double> all;
  for (const auto& per_driver : latencies) {
    all.insert(all.end(), per_driver.begin(), per_driver.end());
  }
  tier.ops_per_s = tier.ops / elapsed;
  tier.latency = Summarize(std::move(all));
  return tier;
}

void WriteJson(std::FILE* f, const std::vector<TierResult>& results,
               double speedup_1conn, long thread_delta) {
  std::fprintf(f, "{\n  \"bench\": \"rpc_pipeline\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"handler_simulated_io_us\": %lld,\n",
               static_cast<long long>(kSimulatedIo.count()));
  std::fprintf(f, "  \"pipeline_speedup_1conn\": %.2f,\n", speedup_1conn);
  std::fprintf(f, "  \"thread_delta_64_to_256\": %ld,\n", thread_delta);
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const TierResult& r = results[i];
    std::fprintf(f,
                 "    {\"connections\": %zu, \"inflight\": %zu, "
                 "\"ops\": %zu, \"ops_per_s\": %.0f, "
                 "\"p50_us\": %.1f, \"p99_us\": %.1f, \"threads\": %zu}%s\n",
                 r.connections, r.inflight, r.ops, r.ops_per_s,
                 r.latency.p50_us, r.latency.p99_us, r.threads,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

int Run(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_rpc.json";

  // Workers spend most of each request blocked in (simulated) I/O, so the
  // pool is sized for overlap, not for cores — same reasoning as any
  // blocking-file-server thread pool.
  const size_t workers = 16;
  BenchServer server(workers, /*max_inflight=*/64);
  // One client identity shared by every connection: the sweep measures the
  // runtime, not 256 key generations.
  DsaPrivateKey client_key = DsaPrivateKey::Generate(Dsa512(), BenchRand(200));

  std::printf("== RPC pipelining: closed-loop throughput (handler = echo "
              "after %lldus simulated I/O, %zu workers, event-loop "
              "runtime) ==\n",
              static_cast<long long>(kSimulatedIo.count()), workers);
  std::printf("%-6s %-9s %10s %12s %10s %10s %8s\n", "conns", "inflight",
              "ops", "ops/s", "p50 us", "p99 us", "threads");

  struct TierSpec {
    size_t connections;
    size_t inflight;
  };
  // The {1,4,16} x {1,8,64} grid matches PR 2 for comparability; the 64-
  // and 256-connection tiers are the PR 3 sweep proving thread flatness.
  const std::vector<TierSpec> specs = {
      {1, 1},  {1, 8},  {1, 64},  {4, 1},  {4, 8},  {4, 64},
      {16, 1}, {16, 8}, {16, 64}, {64, 16}, {256, 8},
  };

  std::vector<TierResult> results;
  double serial_1conn = 0, pipelined_1conn = 0;
  size_t threads_64 = 0, threads_256 = 0;
  for (const TierSpec& spec : specs) {
    TierResult tier = RunTier(server, client_key, spec.connections,
                              spec.inflight);
    std::printf("%-6zu %-9zu %10zu %12.0f %10.1f %10.1f %8zu\n",
                tier.connections, tier.inflight, tier.ops, tier.ops_per_s,
                tier.latency.p50_us, tier.latency.p99_us, tier.threads);
    std::fflush(stdout);
    if (spec.connections == 1 && spec.inflight == 1) {
      serial_1conn = tier.ops_per_s;
    }
    if (spec.connections == 1 && spec.inflight == 64) {
      pipelined_1conn = tier.ops_per_s;
    }
    if (spec.connections == 64) {
      threads_64 = tier.threads;
    }
    if (spec.connections == 256) {
      threads_256 = tier.threads;
    }
    results.push_back(tier);
  }

  double speedup = serial_1conn > 0 ? pipelined_1conn / serial_1conn : 0;
  long thread_delta = static_cast<long>(threads_256) -
                      static_cast<long>(threads_64);
  std::printf("pipelining speedup (1 conn, 64 in-flight vs 1): %.1fx\n",
              speedup);
  std::printf("threads at 64 conns: %zu, at 256 conns: %zu (delta %ld; "
              "192 extra connections, both sides)\n",
              threads_64, threads_256, thread_delta);

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  WriteJson(f, results, speedup, thread_delta);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  // Self-gates: pipelining must pull its weight, and 192 additional
  // connections must not add threads (a handful of slack covers transient
  // reap/spawn noise) — the event-loop runtime's core promise.
  if (speedup < 3.0) {
    std::fprintf(stderr, "FAIL: pipeline speedup %.2f < 3x\n", speedup);
    return 1;
  }
  if (thread_delta > 8) {
    std::fprintf(stderr,
                 "FAIL: thread count grew by %ld from 64 to 256 conns "
                 "(not O(workers + poller))\n",
                 thread_delta);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace discfs

int main(int argc, char** argv) { return discfs::Run(argc, argv); }
