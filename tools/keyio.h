// Key-file helpers shared by the CLI tools: hex-encoded DSA keys, one per
// file. <name>.key holds the private key, <name>.pub the KeyNote principal
// string ("dsa-hex:...").
#ifndef DISCFS_TOOLS_KEYIO_H_
#define DISCFS_TOOLS_KEYIO_H_

#include <string>

#include "src/crypto/dsa.h"
#include "src/util/status.h"

namespace discfs::tools {

Status WriteTextFile(const std::string& path, const std::string& contents);
Result<std::string> ReadTextFile(const std::string& path);

Status SavePrivateKey(const std::string& path, const DsaPrivateKey& key);
Result<DsaPrivateKey> LoadPrivateKey(const std::string& path);

Status SavePublicKey(const std::string& path, const DsaPublicKey& key);
Result<DsaPublicKey> LoadPublicKey(const std::string& path);

}  // namespace discfs::tools

#endif  // DISCFS_TOOLS_KEYIO_H_
