#include "src/crypto/keywrap.h"

#include "src/crypto/aead.h"
#include "src/crypto/dh.h"
#include "src/crypto/hmac.h"
#include "src/wire/xdr.h"

namespace discfs {
namespace {

constexpr char kKdfInfo[] = "discfs-keywrap-v1";

Bytes DeriveWrapKey(const Bytes& shared, const Bytes& ephemeral_public) {
  Bytes info = ToBytes(kKdfInfo);
  Append(info, ephemeral_public);
  return HkdfSha256(/*salt=*/Bytes(), shared, info, Aead::kKeySize);
}

}  // namespace

Result<Bytes> WrapKey(const DsaPublicKey& recipient, const Bytes& key,
                      const std::function<Bytes(size_t)>& rand_bytes) {
  const DsaParams& params = recipient.params();
  DhKeyPair ephemeral = DhKeyPair::Generate(params, rand_bytes);
  Bytes ephemeral_public = ephemeral.PublicValue();
  size_t width = params.p.ToBytes().size();
  // SharedSecret validates the peer value; y = g^x is always in the
  // subgroup for an honestly generated key, so a failure here means the
  // recipient key itself is malformed.
  ASSIGN_OR_RETURN(Bytes shared,
                   ephemeral.SharedSecret(recipient.y().ToBytes(width)));
  Aead aead(DeriveWrapKey(shared, ephemeral_public));
  Bytes nonce = rand_bytes(Aead::kNonceSize);
  XdrWriter w;
  w.PutOpaque(ephemeral_public);
  w.PutOpaque(nonce);
  w.PutOpaque(aead.Seal(nonce, /*aad=*/Bytes(), key));
  return w.Take();
}

Result<Bytes> UnwrapKey(const DsaPrivateKey& recipient, const Bytes& wrapped) {
  XdrReader r(wrapped);
  ASSIGN_OR_RETURN(Bytes ephemeral_public, r.GetOpaque(1 << 12));
  ASSIGN_OR_RETURN(Bytes nonce, r.GetOpaque(1 << 8));
  ASSIGN_OR_RETURN(Bytes box, r.GetOpaque(1 << 12));
  if (!r.AtEnd()) {
    return InvalidArgumentError("trailing bytes after wrapped key");
  }
  const DsaParams& params = recipient.public_key().params();
  DhKeyPair self = DhKeyPair::FromSecret(params, recipient.x());
  // SharedSecret rejects ephemeral values outside the order-q subgroup
  // (small-subgroup confinement of the recipient's long-term secret).
  ASSIGN_OR_RETURN(Bytes shared, self.SharedSecret(ephemeral_public));
  Aead aead(DeriveWrapKey(shared, ephemeral_public));
  return aead.Open(nonce, /*aad=*/Bytes(), box);
}

}  // namespace discfs
