// Pipelined RPC runtime (PR 2): xid demux, out-of-order replies, worker
// pool dispatch, fail-fast teardown, and the transport plumbing that makes
// it safe (Shutdown unblocking Recv, configurable bind address).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "src/crypto/groups.h"
#include "src/discfs/client.h"
#include "src/discfs/host.h"
#include "src/net/transport.h"
#include "src/rpc/rpc.h"
#include "src/securechannel/channel.h"
#include "src/util/prng.h"
#include "src/util/worker_pool.h"

namespace discfs {
namespace {

using namespace std::chrono_literals;

std::function<Bytes(size_t)> TestRand(uint64_t seed) {
  auto prng = std::make_shared<Prng>(seed);
  return [prng](size_t n) { return prng->NextBytes(n); };
}

// ----- worker pool -----

TEST(WorkerPool, RunsAllTasks) {
  std::atomic<int> count{0};
  {
    WorkerPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Shutdown();  // drains the queue before joining
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(WorkerPool, CountersSettleToZero) {
  WorkerPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&] {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    });
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.Shutdown();
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.in_flight(), 0u);
}

TEST(WorkerPool, SubmitAfterShutdownRunsInline) {
  WorkerPool pool(2);
  pool.Shutdown();
  bool ran = false;
  pool.Submit([&ran] { ran = true; });
  EXPECT_TRUE(ran);  // executed synchronously, never dropped
}

// ----- transport teardown + bind address -----

TEST(Tcp, ShutdownUnblocksBlockedRecv) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = (*listener)->Accept();
    ASSERT_TRUE(conn.ok());
    (void)(*conn)->Recv();  // blocks until the client hangs up
  });
  auto client = TcpTransport::Connect("127.0.0.1", (*listener)->port());
  ASSERT_TRUE(client.ok());

  std::promise<Status> recv_result;
  std::thread receiver([&] {
    recv_result.set_value((*client)->Recv().status());
  });
  std::this_thread::sleep_for(50ms);  // let the receiver block in recv(2)
  (*client)->Shutdown();

  auto future = recv_result.get_future();
  ASSERT_EQ(future.wait_for(5s), std::future_status::ready)
      << "Shutdown did not unblock Recv";
  EXPECT_FALSE(future.get().ok());
  receiver.join();
  (*client)->Close();
  server.join();
}

TEST(Tcp, ListenerHonorsBindAddress) {
  // INADDR_ANY accepts loopback connections too.
  auto any = TcpListener::Listen(0, "0.0.0.0");
  ASSERT_TRUE(any.ok()) << any.status();
  std::thread server([&] {
    auto conn = (*any)->Accept();
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE((*conn)->Send(ToBytes("hi")).ok());
  });
  auto client = TcpTransport::Connect("127.0.0.1", (*any)->port());
  ASSERT_TRUE(client.ok()) << client.status();
  EXPECT_EQ(ToString((*client)->Recv().value()), "hi");
  server.join();

  auto bad = TcpListener::Listen(0, "not-an-address");
  EXPECT_FALSE(bad.ok());
}

// ----- pipelined RPC over one secure channel -----

struct SecurePair {
  std::unique_ptr<SecureChannel> client;
  std::unique_ptr<SecureChannel> server;
};

SecurePair MakeSecurePair() {
  DsaPrivateKey server_key = DsaPrivateKey::Generate(Dsa512(), TestRand(1));
  DsaPrivateKey client_key = DsaPrivateKey::Generate(Dsa512(), TestRand(2));
  auto transports = InProcTransport::CreatePair();
  ChannelIdentity client_id{client_key, TestRand(10)};
  ChannelIdentity server_id{server_key, TestRand(11)};
  Result<std::unique_ptr<SecureChannel>> server_result =
      UnavailableError("not run");
  std::thread server_thread([&] {
    server_result =
        SecureChannel::ServerHandshake(std::move(transports.b), server_id);
  });
  auto client_result = SecureChannel::ClientHandshake(
      std::move(transports.a), client_id, std::nullopt);
  server_thread.join();
  SecurePair pair;
  EXPECT_TRUE(client_result.ok());
  EXPECT_TRUE(server_result.ok());
  pair.client = std::move(client_result).value();
  pair.server = std::move(server_result).value();
  return pair;
}

// N concurrent CallAsyncs on one channel; handlers rendezvous (so a serial
// server would time out, proving requests really overlap) and then finish
// in REVERSE request order, so replies hit the wire out of order and only
// xid demux can match them back up.
TEST(RpcPipeline, CallAsyncDemuxesOutOfOrderReplies) {
  constexpr int kCalls = 8;
  SecurePair pair = MakeSecurePair();

  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  int turn = kCalls - 1;  // released highest-id first

  RpcDispatcher dispatcher;
  dispatcher.Register(1, 1, [&](const Bytes& args, const RpcContext&)
                                -> Result<Bytes> {
    int id = args.empty() ? -1 : args[0];
    std::unique_lock<std::mutex> lock(mu);
    ++arrived;
    cv.notify_all();
    if (!cv.wait_for(lock, 10s, [&] { return arrived == kCalls; })) {
      return DeadlineExceededError(
          "pipelining stalled: requests never overlapped");
    }
    if (!cv.wait_for(lock, 10s, [&] { return turn == id; })) {
      return DeadlineExceededError("release order stalled");
    }
    --turn;
    cv.notify_all();
    return Bytes{static_cast<uint8_t>(id), static_cast<uint8_t>(id * 2 + 1)};
  });

  WorkerPool pool(kCalls);
  ServeOptions options;
  options.pool = &pool;
  options.max_inflight_per_conn = kCalls;
  std::thread server([&] {
    RpcContext ctx;
    dispatcher.ServeConnection(*pair.server, ctx, options);
  });

  RpcClient client(std::move(pair.client));
  std::vector<std::future<Result<Bytes>>> futures;
  for (int i = 0; i < kCalls; ++i) {
    futures.push_back(client.CallAsync(1, 1, Bytes{static_cast<uint8_t>(i)}));
  }
  for (int i = 0; i < kCalls; ++i) {
    ASSERT_EQ(futures[i].wait_for(30s), std::future_status::ready) << i;
    Result<Bytes> result = futures[i].get();
    ASSERT_TRUE(result.ok()) << i << ": " << result.status();
    // Each future resolved with ITS reply, not just any reply.
    ASSERT_EQ(result->size(), 2u);
    EXPECT_EQ((*result)[0], i);
    EXPECT_EQ((*result)[1], i * 2 + 1);
  }
  EXPECT_EQ(client.inflight(), 0u);
  client.Close();
  server.join();
}

// Concurrent blocking Calls share one connection and pipeline through it.
TEST(RpcPipeline, ConcurrentBlockingCallsShareOneConnection) {
  auto transports = InProcTransport::CreatePair();
  RpcDispatcher dispatcher;
  dispatcher.Register(1, 7, [](const Bytes& args, const RpcContext&) {
    Bytes out = args;
    std::reverse(out.begin(), out.end());
    return Result<Bytes>(out);
  });
  WorkerPool pool(4);
  ServeOptions options;
  options.pool = &pool;
  std::thread server([&] {
    RpcContext ctx;
    dispatcher.ServeConnection(*transports.b, ctx, options);
  });

  RpcClient client(std::move(transports.a));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> callers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    callers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Bytes payload{static_cast<uint8_t>(t), static_cast<uint8_t>(i)};
        auto result = client.Call(1, 7, payload);
        std::reverse(payload.begin(), payload.end());
        if (!result.ok() || *result != payload) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : callers) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  client.Close();
  server.join();
}

// Close during an in-flight call resolves the call promptly with an error
// instead of hanging until the handler finishes.
TEST(RpcPipeline, CloseDuringInflightCallFailsFast) {
  auto transports = InProcTransport::CreatePair();

  std::mutex mu;
  std::condition_variable cv;
  bool handler_entered = false;
  bool release_handler = false;

  RpcDispatcher dispatcher;
  dispatcher.Register(1, 1, [&](const Bytes&, const RpcContext&)
                                -> Result<Bytes> {
    std::unique_lock<std::mutex> lock(mu);
    handler_entered = true;
    cv.notify_all();
    cv.wait_for(lock, 10s, [&] { return release_handler; });
    return Bytes();
  });
  WorkerPool pool(2);
  ServeOptions options;
  options.pool = &pool;
  std::thread server([&] {
    RpcContext ctx;
    dispatcher.ServeConnection(*transports.b, ctx, options);
  });

  RpcClient client(std::move(transports.a));
  std::future<Result<Bytes>> future = client.CallAsync(1, 1, Bytes());
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, 10s, [&] { return handler_entered; }));
  }
  client.Close();
  ASSERT_EQ(future.wait_for(5s), std::future_status::ready)
      << "Close left the in-flight call hanging";
  EXPECT_FALSE(future.get().ok());
  // Calls after Close fail immediately too.
  EXPECT_FALSE(client.Call(1, 1, Bytes()).ok());

  {
    std::lock_guard<std::mutex> lock(mu);
    release_handler = true;
  }
  cv.notify_all();
  server.join();
}

// ----- host: shared pool + connection-thread reaping -----

TEST(RpcPipeline, HostReapsConnectionsAndServesPipelined) {
  DsaPrivateKey server_key = DsaPrivateKey::Generate(Dsa512(), TestRand(1));
  DsaPrivateKey user_key = DsaPrivateKey::Generate(Dsa512(), TestRand(2));

  auto dev = std::make_shared<MemBlockDevice>(4096, 4096);
  auto fs = Ffs::Format(dev, FfsFormatOptions{512});
  ASSERT_TRUE(fs.ok());
  auto vfs = std::make_shared<FfsVfs>(std::move(fs).value());

  DiscfsServerConfig config;
  config.server_key = server_key;
  config.rand_bytes = TestRand(3);
  DiscfsHostOptions host_options;
  host_options.worker_threads = 4;
  host_options.max_inflight_per_conn = 16;
  auto host = DiscfsHost::Start(vfs, std::move(config), 0, host_options);
  ASSERT_TRUE(host.ok()) << host.status();
  EXPECT_EQ((*host)->worker_threads(), 4u);

  ChannelIdentity user_id{user_key, TestRand(4)};
  for (int round = 0; round < 3; ++round) {
    auto client = DiscfsClient::Connect("127.0.0.1", (*host)->port(), user_id,
                                        server_key.public_key());
    ASSERT_TRUE(client.ok()) << client.status();
    auto info = (*client)->ServerInfo();
    ASSERT_TRUE(info.ok()) << info.status();
    (*client)->Close();
  }

  // Served connections wind down: the loop unregisters each one when its
  // peer closes, and the pool idles at zero. A connection can finish a
  // hair before its worker task's epilogue returns to the pool, so wait
  // for all three gauges together.
  auto deadline = std::chrono::steady_clock::now() + 10s;
  while (((*host)->active_connections() != 0 || (*host)->inflight() != 0 ||
          (*host)->queue_depth() != 0) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ((*host)->active_connections(), 0u);
  EXPECT_EQ((*host)->inflight(), 0u);
  EXPECT_EQ((*host)->queue_depth(), 0u);

  // The host still accepts fresh connections after reaping.
  auto again = DiscfsClient::Connect("127.0.0.1", (*host)->port(), user_id,
                                     server_key.public_key());
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_TRUE((*again)->ServerInfo().ok());
  (*again)->Close();
}

}  // namespace
}  // namespace discfs
