#include <gtest/gtest.h>

#include "src/crypto/groups.h"
#include "src/discfs/client.h"
#include "src/discfs/action_env.h"
#include "src/discfs/credentials.h"
#include "src/discfs/host.h"
#include "src/util/prng.h"

namespace discfs {
namespace {

std::function<Bytes(size_t)> TestRand(uint64_t seed) {
  auto prng = std::make_shared<Prng>(seed);
  return [prng](size_t n) { return prng->NextBytes(n); };
}

// End-to-end fixture: FFS volume + DisCFS server on a real TCP port, with
// the paper's cast. The server key doubles as the administrator key (the
// POLICY root), as in the prototype.
class DiscfsE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    admin_ = std::make_unique<DsaPrivateKey>(
        DsaPrivateKey::Generate(Dsa512(), TestRand(1)));
    bob_ = std::make_unique<DsaPrivateKey>(
        DsaPrivateKey::Generate(Dsa512(), TestRand(2)));
    alice_ = std::make_unique<DsaPrivateKey>(
        DsaPrivateKey::Generate(Dsa512(), TestRand(3)));

    auto dev = std::make_shared<MemBlockDevice>(4096, 8192);
    auto fs = Ffs::Format(dev, FfsFormatOptions{1024});
    ASSERT_TRUE(fs.ok()) << fs.status();
    ffs_ = std::move(fs).value();
    vfs_ = std::make_shared<FfsVfs>(std::move(ffs_));

    clock_.Set(990621296);  // 2001-05-23 12:34:56 UTC — paper era

    DiscfsServerConfig config;
    config.server_key = *admin_;
    config.clock = &clock_;
    config.rand_bytes = TestRand(99);
    auto host = DiscfsHost::Start(vfs_, std::move(config));
    ASSERT_TRUE(host.ok()) << host.status();
    host_ = std::move(host).value();
  }

  void TearDown() override {
    for (auto& c : clients_) {
      c->Close();
    }
    clients_.clear();
    host_.reset();
  }

  DiscfsClient& ClientFor(const DsaPrivateKey& key, uint64_t seed) {
    ChannelIdentity identity{key, TestRand(seed)};
    auto client = DiscfsClient::Connect("127.0.0.1", host_->port(), identity,
                                        admin_->public_key());
    EXPECT_TRUE(client.ok()) << client.status();
    clients_.push_back(std::move(client).value());
    return *clients_.back();
  }

  // Admin issues subject a credential on `handle`.
  std::string Issue(const DsaPrivateKey& issuer, const DsaPublicKey& subject,
                    uint32_t inode, const std::string& perms,
                    CredentialOptions extra = {}) {
    extra.permissions = perms;
    auto cred = IssueCredential(issuer, subject, HandleString(inode), extra);
    EXPECT_TRUE(cred.ok()) << cred.status();
    return *cred;
  }

  std::unique_ptr<DsaPrivateKey> admin_, bob_, alice_;
  std::shared_ptr<Ffs> ffs_;
  std::shared_ptr<FfsVfs> vfs_;
  FakeClock clock_;
  std::unique_ptr<DiscfsHost> host_;
  std::vector<std::unique_ptr<DiscfsClient>> clients_;
};

TEST_F(DiscfsE2E, AttachWorksButDataAccessDeniedWithoutCredentials) {
  DiscfsClient& bob = ClientFor(*bob_, 10);
  auto root = bob.Attach();
  ASSERT_TRUE(root.ok()) << root.status();  // getattr-class: allowed
  EXPECT_EQ(root->type, FileType::kDirectory);

  // The paper: "the file permissions of the attached directory are set to
  // 000" — data operations are denied until credentials arrive.
  auto listing = bob.nfs().ReadDir(root->fh);
  EXPECT_EQ(listing.status().code(), StatusCode::kPermissionDenied);
  auto created = bob.nfs().Create(root->fh, "f", 0644);
  EXPECT_EQ(created.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(DiscfsE2E, CredentialGrantsAccess) {
  DiscfsClient& bob = ClientFor(*bob_, 10);
  auto root = bob.Attach();
  ASSERT_TRUE(root.ok());

  auto id = bob.SubmitCredential(
      Issue(*admin_, bob_->public_key(), root->fh.inode, "RWX"));
  ASSERT_TRUE(id.ok()) << id.status();

  EXPECT_TRUE(bob.nfs().ReadDir(root->fh).ok());
  auto created = bob.nfs().Create(root->fh, "hello.txt", 0644);
  ASSERT_TRUE(created.ok()) << created.status();
}

TEST_F(DiscfsE2E, PermissionGranularityEnforced) {
  // Prepare a file as admin-side setup, directly on the volume.
  auto file = vfs_->Create(vfs_->root(), "doc.txt", 0644);
  ASSERT_TRUE(file.ok());
  Bytes content = ToBytes("product literature");
  ASSERT_TRUE(vfs_->Write(file->inode, 0, content.data(), content.size()).ok());

  DiscfsClient& bob = ClientFor(*bob_, 10);
  ASSERT_TRUE(bob.SubmitCredential(
                     Issue(*admin_, bob_->public_key(), file->inode, "R"))
                  .ok());

  NfsFh fh{file->inode, file->generation};
  auto data = bob.nfs().Read(fh, 0, 100);
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(ToString(*data), "product literature");

  // R does not include W.
  auto write = bob.nfs().Write(fh, 0, ToBytes("overwrite"));
  EXPECT_EQ(write.status().code(), StatusCode::kPermissionDenied);
}

// The paper's Figure 1 flow, end to end: admin -> Bob -> Alice. Alice's
// request is honored only when BOTH credentials accompany it.
TEST_F(DiscfsE2E, DelegationChainEndToEnd) {
  auto file = vfs_->Create(vfs_->root(), "paper.tex", 0644);
  ASSERT_TRUE(file.ok());
  Bytes content = ToBytes("\\section{DisCFS}");
  ASSERT_TRUE(vfs_->Write(file->inode, 0, content.data(), content.size()).ok());
  NfsFh fh{file->inode, file->generation};

  std::string admin_to_bob =
      Issue(*admin_, bob_->public_key(), file->inode, "RW");
  std::string bob_to_alice =
      Issue(*bob_, alice_->public_key(), file->inode, "R");

  DiscfsClient& alice = ClientFor(*alice_, 20);
  // Only the second link: chain to POLICY is broken.
  ASSERT_TRUE(alice.SubmitCredential(bob_to_alice).ok());
  EXPECT_EQ(alice.nfs().Read(fh, 0, 100).status().code(),
            StatusCode::kPermissionDenied);

  // Supplying Bob's own credential completes the chain.
  ASSERT_TRUE(alice.SubmitCredential(admin_to_bob).ok());
  auto data = alice.nfs().Read(fh, 0, 100);
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(ToString(*data), "\\section{DisCFS}");

  // Alice got R only — the meet of RW and R.
  EXPECT_EQ(alice.nfs().Write(fh, 0, ToBytes("x")).status().code(),
            StatusCode::kPermissionDenied);

  // Bob himself (same credentials already in the session) holds RW.
  DiscfsClient& bob = ClientFor(*bob_, 21);
  EXPECT_TRUE(bob.nfs().Write(fh, 0, ToBytes("rev2")).ok());
}

TEST_F(DiscfsE2E, CredentialForOtherKeyDoesNotHelp) {
  auto file = vfs_->Create(vfs_->root(), "secret", 0644);
  ASSERT_TRUE(file.ok());
  NfsFh fh{file->inode, file->generation};

  // Alice submits a credential naming BOB's key. Submission is fine (the
  // credential is genuine) but her own requests must still be denied.
  DiscfsClient& alice = ClientFor(*alice_, 20);
  ASSERT_TRUE(alice.SubmitCredential(
                     Issue(*admin_, bob_->public_key(), file->inode, "RWX"))
                  .ok());
  EXPECT_EQ(alice.nfs().Read(fh, 0, 10).status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(DiscfsE2E, ForgedCredentialRejected) {
  auto file = vfs_->Create(vfs_->root(), "secret", 0644);
  ASSERT_TRUE(file.ok());
  DiscfsClient& alice = ClientFor(*alice_, 20);

  std::string cred = Issue(*admin_, alice_->public_key(), file->inode, "R");
  size_t pos = cred.find("\"R\"");
  ASSERT_NE(pos, std::string::npos);
  cred.replace(pos, 3, "\"RWX\"");
  auto id = alice.SubmitCredential(cred);
  EXPECT_FALSE(id.ok());
}

TEST_F(DiscfsE2E, CreateReturnsUsableCredential) {
  DiscfsClient& bob = ClientFor(*bob_, 10);
  auto root = bob.Attach();
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(bob.SubmitCredential(
                     Issue(*admin_, bob_->public_key(), root->fh.inode, "RWX"))
                  .ok());

  auto created = bob.CreateWithCredential(root->fh, "report.txt", 0644);
  ASSERT_TRUE(created.ok()) << created.status();
  EXPECT_FALSE(created->credential.empty());

  // Without the returned credential Bob could not touch the new file (his
  // root credential covers only the root handle); with it — auto-admitted
  // server-side — he can immediately write and read.
  Bytes content = ToBytes("Q3 sales up 40%");
  ASSERT_TRUE(bob.nfs().Write(created->attr.fh, 0, content).ok());
  auto back = bob.nfs().Read(created->attr.fh, 0, 100);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, content);

  // And the credential text is a valid assertion Bob can delegate from.
  auto parsed = keynote::Assertion::Parse(created->credential);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->VerifySignature().ok());
}

TEST_F(DiscfsE2E, CreatorDelegatesNewFileToAlice) {
  DiscfsClient& bob = ClientFor(*bob_, 10);
  auto root = bob.Attach();
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(bob.SubmitCredential(
                     Issue(*admin_, bob_->public_key(), root->fh.inode, "RWX"))
                  .ok());
  auto created = bob.CreateWithCredential(root->fh, "draft.txt", 0644);
  ASSERT_TRUE(created.ok());
  ASSERT_TRUE(bob.nfs().Write(created->attr.fh, 0, ToBytes("draft")).ok());

  // Bob delegates read access on the new file to Alice.
  DiscfsClient& alice = ClientFor(*alice_, 20);
  ASSERT_TRUE(
      alice
          .SubmitCredential(Issue(*bob_, alice_->public_key(),
                                  created->attr.fh.inode, "R"))
          .ok());
  auto data = alice.nfs().Read(created->attr.fh, 0, 100);
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(ToString(*data), "draft");
}

TEST_F(DiscfsE2E, ResolveHandleRequiresPermission) {
  auto file = vfs_->Create(vfs_->root(), "by-handle", 0644);
  ASSERT_TRUE(file.ok());

  DiscfsClient& bob = ClientFor(*bob_, 10);
  EXPECT_EQ(bob.ResolveHandle(file->inode).status().code(),
            StatusCode::kPermissionDenied);

  ASSERT_TRUE(bob.SubmitCredential(
                     Issue(*admin_, bob_->public_key(), file->inode, "R"))
                  .ok());
  auto resolved = bob.ResolveHandle(file->inode);
  ASSERT_TRUE(resolved.ok()) << resolved.status();
  EXPECT_EQ(resolved->fh.inode, file->inode);
  EXPECT_EQ(resolved->fh.generation, file->generation);
}

TEST_F(DiscfsE2E, IssuerRemovesCredential) {
  auto file = vfs_->Create(vfs_->root(), "temp-share", 0644);
  ASSERT_TRUE(file.ok());
  NfsFh fh{file->inode, file->generation};

  DiscfsClient& bob = ClientFor(*bob_, 10);
  ASSERT_TRUE(bob.SubmitCredential(
                     Issue(*admin_, bob_->public_key(), file->inode, "RW"))
                  .ok());
  DiscfsClient& alice = ClientFor(*alice_, 20);
  auto alice_id = alice.SubmitCredential(
      Issue(*bob_, alice_->public_key(), file->inode, "R"));
  ASSERT_TRUE(alice_id.ok());
  ASSERT_TRUE(alice.nfs().Read(fh, 0, 10).ok());

  // Alice cannot remove her own grant's upstream... or even her own (only
  // the ISSUER may withdraw it).
  EXPECT_EQ(alice.RemoveCredential(*alice_id).code(),
            StatusCode::kPermissionDenied);

  // Bob (the issuer) withdraws the delegation: Alice loses access.
  ASSERT_TRUE(bob.RemoveCredential(*alice_id).ok());
  EXPECT_EQ(alice.nfs().Read(fh, 0, 10).status().code(),
            StatusCode::kPermissionDenied);
  // Bob keeps his own access.
  EXPECT_TRUE(bob.nfs().Read(fh, 0, 10).ok());

  // A replayed submission of the revoked credential is rejected.
  auto resubmit = alice.SubmitCredential(
      Issue(*bob_, alice_->public_key(), file->inode, "R"));
  EXPECT_FALSE(resubmit.ok());
}

TEST_F(DiscfsE2E, KeyRevocationCascades) {
  auto file = vfs_->Create(vfs_->root(), "cascade", 0644);
  ASSERT_TRUE(file.ok());
  NfsFh fh{file->inode, file->generation};

  DiscfsClient& bob = ClientFor(*bob_, 10);
  ASSERT_TRUE(bob.SubmitCredential(
                     Issue(*admin_, bob_->public_key(), file->inode, "RW"))
                  .ok());
  DiscfsClient& alice = ClientFor(*alice_, 20);
  ASSERT_TRUE(alice
                  .SubmitCredential(
                      Issue(*bob_, alice_->public_key(), file->inode, "R"))
                  .ok());
  ASSERT_TRUE(alice.nfs().Read(fh, 0, 10).ok());

  // The administrator revokes Bob's key (local API): Bob AND everyone he
  // delegated to lose access.
  host_->server().RevokeKey(bob_->public_key().ToKeyNoteString());
  EXPECT_EQ(bob.nfs().Read(fh, 0, 10).status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(alice.nfs().Read(fh, 0, 10).status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(DiscfsE2E, SelfRevocationAllowed) {
  auto file = vfs_->Create(vfs_->root(), "own-key", 0644);
  ASSERT_TRUE(file.ok());
  NfsFh fh{file->inode, file->generation};

  DiscfsClient& bob = ClientFor(*bob_, 10);
  ASSERT_TRUE(bob.SubmitCredential(
                     Issue(*admin_, bob_->public_key(), file->inode, "R"))
                  .ok());
  ASSERT_TRUE(bob.nfs().Read(fh, 0, 10).ok());
  ASSERT_TRUE(bob.RevokeOwnKey().ok());
  EXPECT_EQ(bob.nfs().Read(fh, 0, 10).status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(DiscfsE2E, ExpiredCredentialStopsWorking) {
  auto file = vfs_->Create(vfs_->root(), "timed", 0644);
  ASSERT_TRUE(file.ok());
  NfsFh fh{file->inode, file->generation};

  CredentialOptions options;
  options.expires_at = "20010524000000";  // next midnight, paper-era clock
  DiscfsClient& bob = ClientFor(*bob_, 10);
  ASSERT_TRUE(
      bob.SubmitCredential(
             Issue(*admin_, bob_->public_key(), file->inode, "R", options))
          .ok());
  ASSERT_TRUE(bob.nfs().Read(fh, 0, 10).ok());

  clock_.Advance(24 * 3600);  // past expiry AND past the cache TTL
  EXPECT_EQ(bob.nfs().Read(fh, 0, 10).status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(DiscfsE2E, TimeOfDayWindowEnforced) {
  auto file = vfs_->Create(vfs_->root(), "leisure", 0644);
  ASSERT_TRUE(file.ok());
  NfsFh fh{file->inode, file->generation};

  // The paper's §3.1 example: leisure files unavailable during office
  // hours. Clock starts at 12:34 UTC (inside 09:00-17:00).
  CredentialOptions options;
  options.outside_hours = std::make_pair("0900", "1700");
  DiscfsClient& bob = ClientFor(*bob_, 10);
  ASSERT_TRUE(
      bob.SubmitCredential(
             Issue(*admin_, bob_->public_key(), file->inode, "R", options))
          .ok());
  EXPECT_EQ(bob.nfs().Read(fh, 0, 10).status().code(),
            StatusCode::kPermissionDenied);

  clock_.Advance(10 * 3600);  // 22:34 — after hours
  EXPECT_TRUE(bob.nfs().Read(fh, 0, 10).ok());
}

TEST_F(DiscfsE2E, PolicyCacheAvoidsRepeatQueries) {
  auto file = vfs_->Create(vfs_->root(), "hot", 0644);
  ASSERT_TRUE(file.ok());
  Bytes content(8192, 'x');
  ASSERT_TRUE(vfs_->Write(file->inode, 0, content.data(), content.size()).ok());
  NfsFh fh{file->inode, file->generation};

  DiscfsClient& bob = ClientFor(*bob_, 10);
  ASSERT_TRUE(bob.SubmitCredential(
                     Issue(*admin_, bob_->public_key(), file->inode, "R"))
                  .ok());

  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(bob.nfs().Read(fh, 0, 4096).ok());
  }
  auto info = bob.ServerInfo();
  ASSERT_TRUE(info.ok());
  // One cold evaluation; everything else served from the cache.
  EXPECT_EQ(info->keynote_queries, 1u);
  EXPECT_GE(info->cache_hits, 49u);
}

TEST_F(DiscfsE2E, CacheInvalidatedOnCredentialChange) {
  auto file = vfs_->Create(vfs_->root(), "inval", 0644);
  ASSERT_TRUE(file.ok());
  NfsFh fh{file->inode, file->generation};

  DiscfsClient& bob = ClientFor(*bob_, 10);
  ASSERT_TRUE(bob.SubmitCredential(
                     Issue(*admin_, bob_->public_key(), file->inode, "R"))
                  .ok());
  ASSERT_TRUE(bob.nfs().Read(fh, 0, 10).ok());
  auto q1 = bob.ServerInfo()->keynote_queries;

  // New credential flushes the cache; the next read re-evaluates.
  ASSERT_TRUE(bob.SubmitCredential(
                     Issue(*admin_, bob_->public_key(), file->inode, "RW"))
                  .ok());
  ASSERT_TRUE(bob.nfs().Read(fh, 0, 10).ok());
  auto q2 = bob.ServerInfo()->keynote_queries;
  EXPECT_GT(q2, q1);
  // And the join of both credentials now allows writing.
  EXPECT_TRUE(bob.nfs().Write(fh, 0, ToBytes("w")).ok());
}

TEST_F(DiscfsE2E, StaleHandleAfterRemoval) {
  DiscfsClient& bob = ClientFor(*bob_, 10);
  auto root = bob.Attach();
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(bob.SubmitCredential(
                     Issue(*admin_, bob_->public_key(), root->fh.inode, "RWX"))
                  .ok());
  auto created = bob.CreateWithCredential(root->fh, "ephemeral", 0644);
  ASSERT_TRUE(created.ok());
  ASSERT_TRUE(bob.nfs().Remove(root->fh, "ephemeral").ok());

  auto read = bob.nfs().Read(created->attr.fh, 0, 10);
  EXPECT_FALSE(read.ok());
}

TEST_F(DiscfsE2E, TwoConcurrentClients) {
  auto file = vfs_->Create(vfs_->root(), "shared", 0644);
  ASSERT_TRUE(file.ok());
  NfsFh fh{file->inode, file->generation};

  DiscfsClient& bob = ClientFor(*bob_, 10);
  DiscfsClient& alice = ClientFor(*alice_, 20);
  ASSERT_TRUE(bob.SubmitCredential(
                     Issue(*admin_, bob_->public_key(), file->inode, "RW"))
                  .ok());
  ASSERT_TRUE(alice
                  .SubmitCredential(
                      Issue(*admin_, alice_->public_key(), file->inode, "R"))
                  .ok());

  std::thread writer([&] {
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(bob.nfs().Write(fh, 0, ToBytes("tick")).ok());
    }
  });
  std::thread reader([&] {
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(alice.nfs().Read(fh, 0, 4).ok());
    }
  });
  writer.join();
  reader.join();
}

TEST_F(DiscfsE2E, ServerInfoReportsIdentity) {
  DiscfsClient& bob = ClientFor(*bob_, 10);
  auto info = bob.ServerInfo();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->server_principal, admin_->public_key().ToKeyNoteString());
  EXPECT_EQ(bob.server_key(), admin_->public_key());
}

TEST_F(DiscfsE2E, WrongServerKeyPinningFails) {
  DsaPrivateKey other = DsaPrivateKey::Generate(Dsa512(), TestRand(77));
  ChannelIdentity identity{*bob_, TestRand(78)};
  auto client = DiscfsClient::Connect("127.0.0.1", host_->port(), identity,
                                      other.public_key());
  EXPECT_FALSE(client.ok());
}

// ----- CFS-NE baseline behaviour -----

TEST(CfsNeBaseline, NoCredentialsRequired) {
  auto dev = std::make_shared<MemBlockDevice>(4096, 4096);
  auto fs = Ffs::Format(dev, FfsFormatOptions{256});
  ASSERT_TRUE(fs.ok());
  auto vfs = std::make_shared<FfsVfs>(std::move(fs).value());
  auto host = CfsNeHost::Start(vfs);
  ASSERT_TRUE(host.ok()) << host.status();

  auto client = ConnectCfsNe("127.0.0.1", (*host)->port());
  ASSERT_TRUE(client.ok()) << client.status();
  auto root = (*client)->GetRoot();
  ASSERT_TRUE(root.ok());
  auto created = (*client)->Create(root->fh, "open-access", 0644);
  ASSERT_TRUE(created.ok()) << created.status();
  Bytes content = ToBytes("no policy here");
  ASSERT_TRUE((*client)->Write(created->fh, 0, content).ok());
  auto back = (*client)->Read(created->fh, 0, 100);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, content);
  (*client)->rpc()->Close();
}

}  // namespace
}  // namespace discfs
