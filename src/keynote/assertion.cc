#include "src/keynote/assertion.h"

#include <cctype>

#include "src/crypto/sha.h"
#include "src/util/hex.h"
#include "src/util/strings.h"

namespace discfs::keynote {
namespace {

struct RawField {
  std::string name;   // lower-cased
  std::string value;  // continuation lines joined with ' '
  size_t offset;      // byte offset of the field's first line
};

// Splits assertion text into fields. Continuation lines begin with
// whitespace; blank lines are ignored.
Result<std::vector<RawField>> SplitFields(const std::string& text) {
  std::vector<RawField> fields;
  size_t line_start = 0;
  while (line_start < text.size()) {
    size_t line_end = text.find('\n', line_start);
    if (line_end == std::string::npos) {
      line_end = text.size();
    }
    std::string_view line(text.data() + line_start, line_end - line_start);
    if (StripWhitespace(line).empty()) {
      line_start = line_end + 1;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(line[0]))) {
      if (fields.empty()) {
        return InvalidArgumentError("continuation line before any field");
      }
      fields.back().value += ' ';
      fields.back().value += std::string(StripWhitespace(line));
      line_start = line_end + 1;
      continue;
    }
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return InvalidArgumentError(
          StrPrintf("malformed field line at offset %zu", line_start));
    }
    RawField f;
    f.name = ToLowerAscii(StripWhitespace(line.substr(0, colon)));
    f.value = std::string(StripWhitespace(line.substr(colon + 1)));
    f.offset = line_start;
    fields.push_back(std::move(f));
    line_start = line_end + 1;
  }
  return fields;
}

// Local-Constants value: NAME = "value" NAME2 = "value2" ...
Result<ConstantMap> ParseLocalConstants(const std::string& value) {
  ConstantMap constants;
  size_t i = 0;
  const size_t n = value.size();
  auto skip_ws = [&] {
    while (i < n && std::isspace(static_cast<unsigned char>(value[i]))) {
      ++i;
    }
  };
  while (true) {
    skip_ws();
    if (i >= n) {
      break;
    }
    size_t name_start = i;
    while (i < n && (std::isalnum(static_cast<unsigned char>(value[i])) ||
                     value[i] == '_')) {
      ++i;
    }
    if (i == name_start) {
      return InvalidArgumentError("expected constant name in Local-Constants");
    }
    std::string name = value.substr(name_start, i - name_start);
    skip_ws();
    if (i >= n || value[i] != '=') {
      return InvalidArgumentError("expected '=' in Local-Constants");
    }
    ++i;
    skip_ws();
    if (i >= n || value[i] != '"') {
      return InvalidArgumentError("expected quoted value in Local-Constants");
    }
    ++i;
    std::string val;
    bool closed = false;
    while (i < n) {
      char c = value[i];
      if (c == '\\' && i + 1 < n) {
        val.push_back(value[i + 1]);
        i += 2;
        continue;
      }
      if (c == '"') {
        ++i;
        closed = true;
        break;
      }
      val.push_back(c);
      ++i;
    }
    if (!closed) {
      return InvalidArgumentError("unterminated string in Local-Constants");
    }
    if (!constants.emplace(std::move(name), std::move(val)).second) {
      return InvalidArgumentError("duplicate Local-Constants name");
    }
  }
  return constants;
}

// Strips optional surrounding quotes from a Signature field value.
std::string StripQuotes(std::string_view s) {
  s = StripWhitespace(s);
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
    s = s.substr(1, s.size() - 2);
  }
  return std::string(s);
}

std::string QuoteString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

// Collapses runs of whitespace outside quoted strings to a single space
// and strips the ends. Quoted strings (with backslash escapes) pass
// through verbatim, so this never changes what the expression grammar
// sees — equal collapsed forms imply equal semantics.
std::string CollapseOutsideQuotes(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  bool in_quote = false;
  bool pending_space = false;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_quote) {
      out.push_back(c);
      if (c == '\\' && i + 1 < s.size()) {
        out.push_back(s[++i]);
      } else if (c == '"') {
        in_quote = false;
      }
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(c);
    if (c == '"') {
      in_quote = true;
    }
  }
  return out;
}

}  // namespace

const char* SignatureAlgorithmPrefix(SignatureAlgorithm algo) {
  switch (algo) {
    case SignatureAlgorithm::kDsaSha1:
      return "sig-dsa-sha1-hex:";
    case SignatureAlgorithm::kDsaSha256:
      return "sig-dsa-sha256-hex:";
  }
  return "";
}

Result<Assertion> Assertion::Parse(std::string text) {
  Assertion assertion;
  assertion.text_ = std::move(text);
  ASSIGN_OR_RETURN(std::vector<RawField> fields,
                   SplitFields(assertion.text_));
  if (fields.empty()) {
    return InvalidArgumentError("empty assertion");
  }

  // Local-Constants must be interpreted before the principal/conditions
  // fields that reference them.
  const RawField* authorizer_field = nullptr;
  const RawField* licensees_field = nullptr;
  const RawField* conditions_field = nullptr;
  const RawField* signature_field = nullptr;
  for (size_t idx = 0; idx < fields.size(); ++idx) {
    const RawField& f = fields[idx];
    if (f.name == "keynote-version") {
      if (idx != 0) {
        return InvalidArgumentError("KeyNote-Version must be the first field");
      }
      if (StripQuotes(f.value) != "2") {
        return InvalidArgumentError("unsupported KeyNote-Version");
      }
    } else if (f.name == "local-constants") {
      ASSIGN_OR_RETURN(assertion.local_constants_,
                       ParseLocalConstants(f.value));
    } else if (f.name == "authorizer") {
      authorizer_field = &f;
    } else if (f.name == "licensees") {
      licensees_field = &f;
    } else if (f.name == "conditions") {
      conditions_field = &f;
    } else if (f.name == "comment") {
      assertion.comment_ = f.value;
    } else if (f.name == "signature") {
      if (idx != fields.size() - 1) {
        return InvalidArgumentError("Signature must be the last field");
      }
      signature_field = &f;
    } else {
      return InvalidArgumentError("unknown assertion field: " + f.name);
    }
  }

  if (authorizer_field == nullptr) {
    return InvalidArgumentError("missing Authorizer field");
  }
  ASSIGN_OR_RETURN(
      assertion.authorizer_,
      ParseAuthorizer(authorizer_field->value, assertion.local_constants_));

  if (licensees_field != nullptr) {
    ASSIGN_OR_RETURN(
        assertion.licensees_,
        ParseLicensees(licensees_field->value, assertion.local_constants_));
  } else {
    // An assertion without Licensees authorizes no one; represent it as a
    // principal node that can never be satisfied.
    auto node = std::make_unique<LicenseesNode>();
    node->kind = LicenseesNode::Kind::kPrincipal;
    node->principal = "";
    assertion.licensees_ = std::move(node);
  }
  assertion.licensee_principals_ = CollectPrincipals(*assertion.licensees_);

  if (conditions_field != nullptr) {
    ASSIGN_OR_RETURN(
        assertion.conditions_,
        ParseConditions(conditions_field->value, assertion.local_constants_));
  }

  if (signature_field != nullptr) {
    assertion.signature_field_offset_ = signature_field->offset;
    assertion.signature_value_ = StripQuotes(signature_field->value);
  }

  // Canonical form: fixed field order, lower-cased names, sorted
  // Local-Constants (ConstantMap is a std::map), resolved Authorizer,
  // collapsed whitespace, no Signature. Built from the parsed state, so
  // any two texts this parser reads identically canonicalize identically.
  std::string& canonical = assertion.canonical_text_;
  canonical = "keynote-version: 2\n";
  if (!assertion.local_constants_.empty()) {
    canonical += "local-constants:";
    for (const auto& [name, value] : assertion.local_constants_) {
      canonical += ' ' + name + '=' + QuoteString(value);
    }
    canonical += '\n';
  }
  canonical += "authorizer: " + QuoteString(assertion.authorizer_) + '\n';
  if (licensees_field != nullptr) {
    canonical +=
        "licensees: " + CollapseOutsideQuotes(licensees_field->value) + '\n';
  }
  if (conditions_field != nullptr) {
    canonical +=
        "conditions: " + CollapseOutsideQuotes(conditions_field->value) + '\n';
  }
  if (!assertion.comment_.empty()) {
    canonical += "comment: " + assertion.comment_ + '\n';
  }
  return assertion;
}

std::string Assertion::Id() const {
  return HexEncode(Sha256::Hash(canonical_text_ + signature_value_))
      .substr(0, 16);
}

Status Assertion::VerifySignature(VerifiedSignatureCache* cache) const {
  if (is_policy()) {
    return FailedPreconditionError("policy assertions are not signed");
  }
  if (signature_value_.empty()) {
    return InvalidArgumentError("assertion has no signature");
  }
  size_t last_colon = signature_value_.rfind(':');
  if (last_colon == std::string::npos) {
    return InvalidArgumentError("malformed signature encoding");
  }
  std::string prefix = signature_value_.substr(0, last_colon + 1);
  std::string sig_hex = signature_value_.substr(last_colon + 1);

  bool sha1;
  if (prefix == SignatureAlgorithmPrefix(SignatureAlgorithm::kDsaSha1)) {
    sha1 = true;
  } else if (prefix ==
             SignatureAlgorithmPrefix(SignatureAlgorithm::kDsaSha256)) {
    sha1 = false;
  } else {
    return InvalidArgumentError("unsupported signature algorithm: " + prefix);
  }

  std::string signed_text =
      text_.substr(0, signature_field_offset_) + prefix;
  Bytes digest =
      sha1 ? Sha1::Hash(signed_text) : Sha256::Hash(signed_text);

  // The cache is keyed by the *canonical* content rather than the signed
  // bytes: a hit proves a credential with identical semantics and this
  // exact signature passed the full verify below, so admitting a
  // re-serialized copy grants exactly the rights the verified original
  // did (and Id() is canonical too, so revocation covers every
  // serialization). The DSA path below still checks the raw signed bytes.
  Bytes cache_key;
  if (cache != nullptr) {
    cache_key = VerifiedSignatureCache::MakeKey(
        authorizer_, Sha256::Hash(canonical_text_), signature_value_);
    if (cache->Contains(cache_key)) {
      return OkStatus();
    }
  }

  ASSIGN_OR_RETURN(DsaPublicKey key,
                   DsaPublicKey::FromKeyNoteString(authorizer_));
  ASSIGN_OR_RETURN(Bytes sig_bytes, HexDecode(sig_hex));
  ASSIGN_OR_RETURN(DsaSignature sig,
                   DeserializeDsaSignature(sig_bytes, key.params()));

  if (!key.Verify(digest, sig)) {
    return UnauthenticatedError("credential signature verification failed");
  }
  if (cache != nullptr) {
    cache->Insert(cache_key);
  }
  return OkStatus();
}

AssertionBuilder& AssertionBuilder::SetAuthorizer(std::string principal) {
  authorizer_ = std::move(principal);
  return *this;
}

AssertionBuilder& AssertionBuilder::SetPolicyAuthorizer() {
  authorizer_ = kPolicyPrincipal;
  return *this;
}

AssertionBuilder& AssertionBuilder::SetLicensees(std::string expression) {
  licensees_ = std::move(expression);
  return *this;
}

AssertionBuilder& AssertionBuilder::SetConditions(std::string conditions) {
  conditions_ = std::move(conditions);
  return *this;
}

AssertionBuilder& AssertionBuilder::SetComment(std::string comment) {
  comment_ = std::move(comment);
  return *this;
}

AssertionBuilder& AssertionBuilder::AddLocalConstant(std::string name,
                                                     std::string value) {
  local_constants_.emplace_back(std::move(name), std::move(value));
  return *this;
}

std::string AssertionBuilder::BuildUnsigned() const {
  std::string out = "KeyNote-Version: 2\n";
  if (!local_constants_.empty()) {
    out += "Local-Constants:";
    for (const auto& [name, value] : local_constants_) {
      out += "\n  " + name + " = " + QuoteString(value);
    }
    out += "\n";
  }
  // A registered Local-Constants name is emitted bare so the parser resolves
  // it; anything else is a literal principal and gets quoted.
  bool is_constant_name = false;
  for (const auto& [name, value] : local_constants_) {
    if (name == authorizer_) {
      is_constant_name = true;
      break;
    }
  }
  out += "Authorizer: " +
         (is_constant_name ? authorizer_ : QuoteString(authorizer_)) + "\n";
  if (!licensees_.empty()) {
    out += "Licensees: " + licensees_ + "\n";
  }
  if (!conditions_.empty()) {
    out += "Conditions: " + conditions_ + "\n";
  }
  if (!comment_.empty()) {
    out += "Comment: " + comment_ + "\n";
  }
  return out;
}

Result<std::string> AssertionBuilder::Sign(const DsaPrivateKey& key,
                                           SignatureAlgorithm algo) const {
  // The Authorizer (after Local-Constants resolution) must be the signing
  // key, or the resulting credential could never verify.
  std::string resolved = authorizer_;
  for (const auto& [name, value] : local_constants_) {
    if (name == authorizer_) {
      resolved = value;
      break;
    }
  }
  if (resolved != key.public_key().ToKeyNoteString()) {
    return InvalidArgumentError(
        "signing key does not match the Authorizer principal");
  }

  std::string body = BuildUnsigned();
  const char* prefix = SignatureAlgorithmPrefix(algo);
  std::string signed_text = body + prefix;
  Bytes digest = (algo == SignatureAlgorithm::kDsaSha1)
                     ? Sha1::Hash(signed_text)
                     : Sha256::Hash(signed_text);
  DsaSignature sig = key.Sign(digest);
  Bytes sig_bytes = SerializeDsaSignature(sig, key.public_key().params());
  // The Signature line must begin exactly at `body.size()` so verification
  // reconstructs the same signed bytes.
  return body + "Signature: \"" + prefix + HexEncode(sig_bytes) + "\"\n";
}

}  // namespace discfs::keynote
