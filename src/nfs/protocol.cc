#include "src/nfs/protocol.h"

namespace discfs {

void WriteFh(XdrWriter& w, const NfsFh& fh) {
  w.PutU32(fh.inode);
  w.PutU32(fh.generation);
}

Result<NfsFh> ReadFh(XdrReader& r) {
  NfsFh fh;
  ASSIGN_OR_RETURN(fh.inode, r.GetU32());
  ASSIGN_OR_RETURN(fh.generation, r.GetU32());
  return fh;
}

void WriteFattr(XdrWriter& w, const NfsFattr& attr) {
  WriteFh(w, attr.fh);
  w.PutU32(static_cast<uint32_t>(attr.type));
  w.PutU32(attr.mode);
  w.PutU32(attr.nlink);
  w.PutU32(attr.uid);
  w.PutU32(attr.gid);
  w.PutU64(attr.size);
  w.PutI64(attr.atime);
  w.PutI64(attr.mtime);
  w.PutI64(attr.ctime);
}

Result<NfsFattr> ReadFattr(XdrReader& r) {
  NfsFattr attr;
  ASSIGN_OR_RETURN(attr.fh, ReadFh(r));
  ASSIGN_OR_RETURN(uint32_t type, r.GetU32());
  if (type > static_cast<uint32_t>(FileType::kSymlink)) {
    return DataLossError("bad file type on wire");
  }
  attr.type = static_cast<FileType>(type);
  ASSIGN_OR_RETURN(attr.mode, r.GetU32());
  ASSIGN_OR_RETURN(attr.nlink, r.GetU32());
  ASSIGN_OR_RETURN(attr.uid, r.GetU32());
  ASSIGN_OR_RETURN(attr.gid, r.GetU32());
  ASSIGN_OR_RETURN(attr.size, r.GetU64());
  ASSIGN_OR_RETURN(attr.atime, r.GetI64());
  ASSIGN_OR_RETURN(attr.mtime, r.GetI64());
  ASSIGN_OR_RETURN(attr.ctime, r.GetI64());
  return attr;
}

void WriteSetAttr(XdrWriter& w, const SetAttrRequest& req) {
  auto put_opt_u32 = [&w](const std::optional<uint32_t>& v) {
    w.PutBool(v.has_value());
    w.PutU32(v.value_or(0));
  };
  put_opt_u32(req.mode);
  put_opt_u32(req.uid);
  put_opt_u32(req.gid);
  w.PutBool(req.size.has_value());
  w.PutU64(req.size.value_or(0));
  w.PutBool(req.atime.has_value());
  w.PutI64(req.atime.value_or(0));
  w.PutBool(req.mtime.has_value());
  w.PutI64(req.mtime.value_or(0));
}

Result<SetAttrRequest> ReadSetAttr(XdrReader& r) {
  SetAttrRequest req;
  auto get_opt_u32 = [&r]() -> Result<std::optional<uint32_t>> {
    ASSIGN_OR_RETURN(bool has, r.GetBool());
    ASSIGN_OR_RETURN(uint32_t v, r.GetU32());
    return has ? std::optional<uint32_t>(v) : std::nullopt;
  };
  ASSIGN_OR_RETURN(req.mode, get_opt_u32());
  ASSIGN_OR_RETURN(req.uid, get_opt_u32());
  ASSIGN_OR_RETURN(req.gid, get_opt_u32());
  ASSIGN_OR_RETURN(bool has_size, r.GetBool());
  ASSIGN_OR_RETURN(uint64_t size, r.GetU64());
  if (has_size) {
    req.size = size;
  }
  ASSIGN_OR_RETURN(bool has_atime, r.GetBool());
  ASSIGN_OR_RETURN(int64_t atime, r.GetI64());
  if (has_atime) {
    req.atime = atime;
  }
  ASSIGN_OR_RETURN(bool has_mtime, r.GetBool());
  ASSIGN_OR_RETURN(int64_t mtime, r.GetI64());
  if (has_mtime) {
    req.mtime = mtime;
  }
  return req;
}

void WriteDirEntries(XdrWriter& w, const std::vector<NfsDirEntry>& entries) {
  w.PutU32(static_cast<uint32_t>(entries.size()));
  for (const NfsDirEntry& e : entries) {
    w.PutString(e.name);
    WriteFh(w, e.fh);
    w.PutU32(static_cast<uint32_t>(e.type));
  }
}

Result<std::vector<NfsDirEntry>> ReadDirEntries(XdrReader& r) {
  ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  if (count > (1u << 22)) {
    return DataLossError("implausible directory entry count");
  }
  std::vector<NfsDirEntry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    NfsDirEntry e;
    ASSIGN_OR_RETURN(e.name, r.GetString());
    ASSIGN_OR_RETURN(e.fh, ReadFh(r));
    ASSIGN_OR_RETURN(uint32_t type, r.GetU32());
    e.type = static_cast<FileType>(type);
    entries.push_back(std::move(e));
  }
  return entries;
}

void WriteStatFs(XdrWriter& w, const NfsStatFs& info) {
  w.PutU32(info.block_size);
  w.PutU64(info.total_blocks);
  w.PutU64(info.free_blocks);
  w.PutU32(info.total_inodes);
  w.PutU32(info.free_inodes);
}

Result<NfsStatFs> ReadStatFs(XdrReader& r) {
  NfsStatFs info;
  ASSIGN_OR_RETURN(info.block_size, r.GetU32());
  ASSIGN_OR_RETURN(info.total_blocks, r.GetU64());
  ASSIGN_OR_RETURN(info.free_blocks, r.GetU64());
  ASSIGN_OR_RETURN(info.total_inodes, r.GetU32());
  ASSIGN_OR_RETURN(info.free_inodes, r.GetU32());
  return info;
}

NfsFattr FattrFromInode(const InodeAttr& attr) {
  NfsFattr out;
  out.fh = NfsFh{attr.inode, attr.generation};
  out.type = attr.type;
  out.mode = attr.mode;
  out.nlink = attr.nlink;
  out.uid = attr.uid;
  out.gid = attr.gid;
  out.size = attr.size;
  out.atime = attr.atime;
  out.mtime = attr.mtime;
  out.ctime = attr.ctime;
  return out;
}

}  // namespace discfs
