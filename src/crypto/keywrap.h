// Public-key key wrap for lockbox entries: seals a small symmetric key
// (the per-file content key) to a recipient's DSA public key, so that only
// the holder of the matching private key can recover it.
//
// Construction (ECIES over the DSA group, reusing the DH + AEAD substrate
// the secure channel already trusts):
//
//   ephemeral e  <-R  [1, q)
//   U  = g^e mod p                      (sent in the clear)
//   Z  = y^e mod p                      (y = recipient public value)
//   K  = HKDF-SHA256(salt = "", ikm = Z, info = "discfs-keywrap-v1" || U)
//   box = ChaCha20-Poly1305(K, random nonce, aad = "", key)
//
// Unwrap recomputes Z = U^x mod p with the recipient's private x and opens
// the box; any tampering with U, nonce, or box fails authentication. The
// wrapped blob is XDR: opaque U (fixed width of p) || opaque nonce ||
// opaque box. Binding U into the KDF info ties the key to this exact
// wrapping.
#ifndef DISCFS_SRC_CRYPTO_KEYWRAP_H_
#define DISCFS_SRC_CRYPTO_KEYWRAP_H_

#include <functional>

#include "src/crypto/dsa.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace discfs {

// Seals `key` (any short secret, conventionally 32 bytes) to `recipient`.
Result<Bytes> WrapKey(const DsaPublicKey& recipient, const Bytes& key,
                      const std::function<Bytes(size_t)>& rand_bytes);

// Recovers a key sealed to `recipient`'s public half. Fails with
// UNAUTHENTICATED on any tampering and INVALID_ARGUMENT on a malformed
// blob or an ephemeral value outside the order-q subgroup.
Result<Bytes> UnwrapKey(const DsaPrivateKey& recipient, const Bytes& wrapped);

}  // namespace discfs

#endif  // DISCFS_SRC_CRYPTO_KEYWRAP_H_
