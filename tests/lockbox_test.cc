// Lockbox sharing layer (PR 8): end-to-end encrypted files whose content
// keys are sealed per recipient, multi-device principals as delegation
// leaves, and content-addressed dedup — all policed by the same KeyNote
// admission path as NFS I/O, so a revocation accepted anywhere in the
// cluster denies lockbox fetches everywhere.
#include <gtest/gtest.h>

#include <chrono>

#include "src/crypto/groups.h"
#include "src/crypto/keywrap.h"
#include "src/discfs/action_env.h"
#include "src/discfs/client.h"
#include "src/discfs/credentials.h"
#include "src/discfs/host.h"
#include "src/lockbox/chunkstore.h"
#include "src/lockbox/lockbox.h"
#include "src/util/prng.h"
#include "src/wire/lockbox.h"

namespace discfs {
namespace {

std::function<Bytes(size_t)> TestRand(uint64_t seed) {
  return LockedPrngBytes(seed);
}

// --- crypto: key wrap + payload sealing ---

TEST(KeyWrap, RoundTripAndTamperRejection) {
  DsaPrivateKey alice = DsaPrivateKey::Generate(Dsa512(), TestRand(1));
  DsaPrivateKey mallory = DsaPrivateKey::Generate(Dsa512(), TestRand(2));
  Bytes key = GenerateContentKey(TestRand(3));

  auto wrapped = WrapKey(alice.public_key(), key, TestRand(4));
  ASSERT_TRUE(wrapped.ok()) << wrapped.status();

  auto unwrapped = UnwrapKey(alice, *wrapped);
  ASSERT_TRUE(unwrapped.ok()) << unwrapped.status();
  EXPECT_EQ(*unwrapped, key);

  // The wrong private key must not unwrap.
  EXPECT_FALSE(UnwrapKey(mallory, *wrapped).ok());

  // Any bit flip must be rejected by the AEAD tag.
  Bytes bent = *wrapped;
  bent[bent.size() / 2] ^= 0x01;
  EXPECT_FALSE(UnwrapKey(alice, bent).ok());
}

TEST(KeyWrap, WrapsAreNondeterministic) {
  DsaPrivateKey alice = DsaPrivateKey::Generate(Dsa512(), TestRand(1));
  Bytes key = GenerateContentKey(TestRand(3));
  auto w1 = WrapKey(alice.public_key(), key, TestRand(10));
  auto w2 = WrapKey(alice.public_key(), key, TestRand(11));
  ASSERT_TRUE(w1.ok() && w2.ok());
  // Fresh ephemerals: identical plaintext keys produce unlinkable blobs.
  EXPECT_NE(*w1, *w2);
  EXPECT_EQ(*UnwrapKey(alice, *w1), key);
  EXPECT_EQ(*UnwrapKey(alice, *w2), key);
}

TEST(LockboxCrypto, SealOpenPayload) {
  Bytes key = GenerateContentKey(TestRand(5));
  Bytes plaintext = ToBytes("the quarterly numbers are strong");
  Bytes sealed = SealPayload(key, plaintext, TestRand(6));
  auto opened = OpenPayload(key, sealed);
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_EQ(*opened, plaintext);

  Bytes bent = sealed;
  bent.back() ^= 0x80;
  EXPECT_FALSE(OpenPayload(key, bent).ok());
  EXPECT_FALSE(OpenPayload(GenerateContentKey(TestRand(7)), sealed).ok());
}

// --- wire codec ---

TEST(LockboxWire, RecordRoundTrip) {
  wire::LockboxRecord record;
  record.handle = 42;
  record.owner = "dsa-hex:deadbeef";
  record.sealed = true;
  record.chunk_size = 4096;
  record.payload_size = 8192;
  record.chunks = {std::string(64, 'a'), std::string(64, 'b')};
  record.entries.push_back({"dsa-hex:01", ToBytes("wrapped-one")});
  record.entries.push_back({"dsa-hex:02", ToBytes("wrapped-two")});

  Bytes encoded = wire::EncodeLockboxRecord(record);
  auto decoded = wire::DecodeLockboxRecord(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->handle, 42u);
  EXPECT_EQ(decoded->owner, record.owner);
  EXPECT_TRUE(decoded->sealed);
  EXPECT_EQ(decoded->chunk_size, 4096u);
  EXPECT_EQ(decoded->payload_size, 8192u);
  EXPECT_EQ(decoded->chunks, record.chunks);
  ASSERT_EQ(decoded->entries.size(), 2u);
  EXPECT_EQ(decoded->entries[1].recipient, "dsa-hex:02");
  EXPECT_EQ(decoded->entries[1].wrapped_key, ToBytes("wrapped-two"));
  EXPECT_EQ(decoded->FindEntry("dsa-hex:02"), 1);
  EXPECT_EQ(decoded->FindEntry("dsa-hex:99"), -1);

  Bytes garbage = ToBytes("NOPE");
  EXPECT_FALSE(wire::DecodeLockboxRecord(garbage).ok());
  Bytes truncated(encoded.begin(), encoded.begin() + encoded.size() / 2);
  EXPECT_FALSE(wire::DecodeLockboxRecord(truncated).ok());
}

// --- chunk store: dedup, refcounts, GC ---

struct PlainStack {
  std::shared_ptr<FfsVfs> vfs;
  std::unique_ptr<NfsServer> nfs;

  PlainStack() {
    auto dev = std::make_shared<MemBlockDevice>(4096, 4096);
    auto fs = Ffs::Format(dev, FfsFormatOptions{512});
    EXPECT_TRUE(fs.ok());
    vfs = std::make_shared<FfsVfs>(std::move(fs).value());
    nfs = std::make_unique<NfsServer>(vfs);
  }
};

TEST(ChunkStore, DedupRefcountAndGc) {
  PlainStack stack;
  ChunkStore store(stack.nfs.get());

  Bytes alpha = ToBytes(std::string(3000, 'a'));
  Bytes beta = ToBytes(std::string(3000, 'b'));

  auto id1 = store.Put(alpha);
  ASSERT_TRUE(id1.ok()) << id1.status();
  EXPECT_EQ(*id1, ChunkStore::ChunkId(alpha));
  EXPECT_EQ(store.RefCount(*id1).value(), 1u);

  // Identical bytes converge on the same chunk: one stored copy, count 2.
  auto id2 = store.Put(alpha);
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(*id1, *id2);
  EXPECT_EQ(store.RefCount(*id1).value(), 2u);

  auto id3 = store.Put(beta);
  ASSERT_TRUE(id3.ok());
  EXPECT_NE(*id1, *id3);

  ChunkStore::Stats stats = store.stats();
  EXPECT_EQ(stats.puts, 3u);
  EXPECT_EQ(stats.dedup_hits, 1u);
  EXPECT_EQ(stats.stored, 2u);

  EXPECT_EQ(store.Get(*id1).value(), alpha);
  EXPECT_EQ(store.Get(*id3).value(), beta);

  // First release only decrements; the content stays fetchable.
  ASSERT_TRUE(store.Release(*id1).ok());
  EXPECT_EQ(store.RefCount(*id1).value(), 1u);
  EXPECT_EQ(store.Get(*id1).value(), alpha);

  // Last release garbage-collects the chunk file.
  ASSERT_TRUE(store.Release(*id1).ok());
  EXPECT_EQ(store.RefCount(*id1).value(), 0u);
  EXPECT_EQ(store.Get(*id1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.stats().removed, 1u);

  // A re-put after GC stores fresh content under the same id.
  ASSERT_TRUE(store.Put(alpha).ok());
  EXPECT_EQ(store.Get(*id1).value(), alpha);
  EXPECT_EQ(store.RefCount(*id1).value(), 1u);

  EXPECT_FALSE(store.Get("zz").ok());  // malformed id
  EXPECT_EQ(store.Get(std::string(64, '0')).status().code(),
            StatusCode::kNotFound);
}

// --- lockbox service over the chunk store ---

TEST(LockboxService, PutGetGrantRevokeAndChunkAccounting) {
  PlainStack stack;
  ChunkStore store(stack.nfs.get());
  LockboxService service(stack.nfs.get(), &store);

  // Two files with the same PUBLIC payload: every chunk dedups.
  Bytes payload = ToBytes(std::string(2000, 'x') + std::string(2000, 'y'));
  wire::LockboxRecord rec;
  rec.handle = 101;
  rec.owner = "dsa-hex:aa";
  rec.sealed = false;
  rec.chunk_size = 1024;
  auto stored_a = service.Put(rec, payload);
  ASSERT_TRUE(stored_a.ok()) << stored_a.status();
  EXPECT_EQ(stored_a->chunks.size(), 4u);
  EXPECT_EQ(stored_a->payload_size, payload.size());

  rec.handle = 102;
  rec.owner = "dsa-hex:bb";
  ASSERT_TRUE(service.Put(rec, payload).ok());
  ChunkStore::Stats stats = store.stats();
  EXPECT_EQ(stats.puts, 8u);
  EXPECT_EQ(stats.dedup_hits, 4u);  // the second file stored zero new bytes
  EXPECT_EQ(stats.stored, 4u);
  EXPECT_EQ(store.RefCount(stored_a->chunks[0]).value(), 2u);

  auto box = service.Get(101);
  ASSERT_TRUE(box.ok()) << box.status();
  EXPECT_EQ(box->payload, payload);
  EXPECT_EQ(box->record.owner, "dsa-hex:aa");

  // Grant / re-grant / revoke on the sidecar.
  ASSERT_TRUE(service.Grant(101, {"dsa-hex:cc", ToBytes("w1")}).ok());
  ASSERT_TRUE(service.Grant(101, {"dsa-hex:cc", ToBytes("w2")}).ok());
  auto record = service.GetRecord(101);
  ASSERT_TRUE(record.ok());
  ASSERT_EQ(record->entries.size(), 1u);  // replaced, not duplicated
  EXPECT_EQ(record->entries[0].wrapped_key, ToBytes("w2"));
  ASSERT_TRUE(service.Revoke(101, "dsa-hex:cc").ok());
  EXPECT_EQ(service.Revoke(101, "dsa-hex:cc").code(), StatusCode::kNotFound);

  // Removing one file drops its references; shared chunks survive until
  // the second file goes too.
  ASSERT_TRUE(service.Remove(101).ok());
  EXPECT_EQ(store.RefCount(stored_a->chunks[0]).value(), 1u);
  ASSERT_TRUE(service.Remove(102).ok());
  EXPECT_EQ(store.RefCount(stored_a->chunks[0]).value(), 0u);
  EXPECT_EQ(store.stats().removed, 4u);
  EXPECT_EQ(service.Get(101).status().code(), StatusCode::kNotFound);
}

TEST(LockboxService, ReplacePutReleasesOldChunks) {
  PlainStack stack;
  ChunkStore store(stack.nfs.get());
  LockboxService service(stack.nfs.get(), &store);

  wire::LockboxRecord rec;
  rec.handle = 7;
  rec.owner = "dsa-hex:aa";
  rec.chunk_size = 1024;
  Bytes v1 = ToBytes(std::string(1500, '1'));
  auto stored_v1 = service.Put(rec, v1);
  ASSERT_TRUE(stored_v1.ok());

  Bytes v2 = ToBytes(std::string(1500, '2'));
  auto stored_v2 = service.Put(rec, v2);
  ASSERT_TRUE(stored_v2.ok());

  // v1's chunks were released to zero and collected; v2's are live.
  for (const std::string& id : stored_v1->chunks) {
    EXPECT_EQ(store.RefCount(id).value(), 0u);
  }
  for (const std::string& id : stored_v2->chunks) {
    EXPECT_EQ(store.RefCount(id).value(), 1u);
  }
  EXPECT_EQ(service.Get(7)->payload, v2);
}

TEST(ChunkStore, AuditMarkSweepAgainstLiveRecords) {
  PlainStack stack;
  ChunkStore store(stack.nfs.get());
  LockboxService service(stack.nfs.get(), &store);

  // Empty store: vacuously clean.
  auto empty = store.Audit();
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_TRUE(empty->clean());
  EXPECT_EQ(empty->live_records, 0u);
  EXPECT_EQ(empty->chunks_scanned, 0u);

  // Two records sharing one payload: 4 unique chunks, 8 references.
  Bytes payload = ToBytes(std::string(2000, 'x') + std::string(2000, 'y'));
  wire::LockboxRecord rec;
  rec.handle = 201;
  rec.owner = "dsa-hex:aa";
  rec.chunk_size = 1024;
  auto stored = service.Put(rec, payload);
  ASSERT_TRUE(stored.ok()) << stored.status();
  rec.handle = 202;
  rec.owner = "dsa-hex:bb";
  ASSERT_TRUE(service.Put(rec, payload).ok());

  auto clean = store.Audit();
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean->clean());
  EXPECT_EQ(clean->live_records, 2u);
  EXPECT_EQ(clean->chunks_scanned, 4u);
  EXPECT_EQ(clean->live_references, 8u);

  // A chunk Put directly (no record references it) is an orphan.
  Bytes loose = ToBytes(std::string(500, 'z'));
  auto orphan_id = store.Put(loose);
  ASSERT_TRUE(orphan_id.ok());
  auto with_orphan = store.Audit();
  ASSERT_TRUE(with_orphan.ok());
  EXPECT_FALSE(with_orphan->clean());
  ASSERT_EQ(with_orphan->orphaned.size(), 1u);
  EXPECT_EQ(with_orphan->orphaned[0], *orphan_id);
  ASSERT_TRUE(store.Release(*orphan_id).ok());

  // An extra Put of an existing chunk's bytes bumps the stored refcount
  // above the live reference count: over-referenced (leak direction).
  Bytes first_chunk(payload.begin(), payload.begin() + 1024);
  ASSERT_TRUE(store.Put(first_chunk).ok());
  auto skewed = store.Audit();
  ASSERT_TRUE(skewed.ok());
  ASSERT_EQ(skewed->over_referenced.size(), 1u);
  EXPECT_EQ(skewed->over_referenced[0], stored->chunks[0]);
  ASSERT_TRUE(store.Release(stored->chunks[0]).ok());

  // Dropping references out from under the records: one Release leaves the
  // stored count below the live count (under-referenced, the dangerous
  // direction); a second garbage-collects data the records still need.
  ASSERT_TRUE(store.Release(stored->chunks[1]).ok());
  auto under = store.Audit();
  ASSERT_TRUE(under.ok());
  ASSERT_EQ(under->under_referenced.size(), 1u);
  EXPECT_EQ(under->under_referenced[0], stored->chunks[1]);
  ASSERT_TRUE(store.Release(stored->chunks[1]).ok());
  auto missing = store.Audit();
  ASSERT_TRUE(missing.ok());
  ASSERT_EQ(missing->missing.size(), 1u);
  EXPECT_EQ(missing->missing[0], stored->chunks[1]);
  EXPECT_TRUE(missing->under_referenced.empty());
}

// --- end-to-end over RPC: sealed sharing between principals ---

struct Node {
  std::shared_ptr<FfsVfs> vfs;
  std::unique_ptr<DiscfsHost> host;
};

Node StartNode(const DsaPrivateKey& server_key, const DsaPublicKey& admin_key,
               uint64_t seed,
               std::vector<DsaPublicKey> cluster_trusted_keys = {}) {
  Node node;
  auto dev = std::make_shared<MemBlockDevice>(4096, 4096);
  auto fs = Ffs::Format(dev, FfsFormatOptions{512});
  EXPECT_TRUE(fs.ok());
  node.vfs = std::make_shared<FfsVfs>(std::move(fs).value());

  DiscfsServerConfig config;
  config.server_key = server_key;
  config.rand_bytes = TestRand(seed);
  config.cluster_trusted_keys = std::move(cluster_trusted_keys);
  config.policy_assertions.push_back(
      "Authorizer: \"POLICY\"\n"
      "Licensees: \"" + admin_key.ToKeyNoteString() + "\"\n"
      "Conditions: app_domain == \"DisCFS\" -> \"RWX\";\n");
  auto host = DiscfsHost::Start(node.vfs, std::move(config));
  EXPECT_TRUE(host.ok()) << host.status();
  node.host = std::move(host).value();
  return node;
}

TEST(LockboxEndToEnd, SealedSharingServerNeverSeesPlaintext) {
  DsaPrivateKey admin = DsaPrivateKey::Generate(Dsa512(), TestRand(1));
  DsaPrivateKey server = DsaPrivateKey::Generate(Dsa512(), TestRand(2));
  DsaPrivateKey owner = DsaPrivateKey::Generate(Dsa512(), TestRand(3));
  DsaPrivateKey reader = DsaPrivateKey::Generate(Dsa512(), TestRand(4));
  DsaPrivateKey outsider = DsaPrivateKey::Generate(Dsa512(), TestRand(5));

  Node node = StartNode(server, admin.public_key(), 10);
  ASSERT_TRUE(WriteFileAt(*node.vfs, "/secret.txt", "placeholder").ok());
  InodeAttr file = ResolvePath(*node.vfs, "/secret.txt").value();
  NfsFh fh{file.inode, file.generation};

  CredentialOptions rw;
  rw.permissions = "RW";
  CredentialOptions ro;
  ro.permissions = "R";
  std::string owner_cred =
      IssueCredential(admin, owner.public_key(), HandleString(file.inode), rw)
          .value();
  std::string reader_cred =
      IssueCredential(admin, reader.public_key(), HandleString(file.inode),
                      ro)
          .value();
  std::string outsider_cred =
      IssueCredential(admin, outsider.public_key(), HandleString(file.inode),
                      ro)
          .value();

  ChannelIdentity owner_id{owner, TestRand(20)};
  auto owner_client = DiscfsClient::Connect("127.0.0.1", node.host->port(),
                                            owner_id, server.public_key());
  ASSERT_TRUE(owner_client.ok()) << owner_client.status();
  ASSERT_TRUE((*owner_client)->SubmitCredential(owner_cred).ok());

  // The owner seals the payload client-side and wraps the content key to
  // itself and to the reader — NOT to the outsider.
  Bytes plaintext = ToBytes("attack at dawn, bring coffee");
  Bytes content_key = GenerateContentKey(TestRand(30));
  Bytes sealed = SealPayload(content_key, plaintext, TestRand(31));
  std::vector<wire::LockboxEntry> entries;
  entries.push_back(
      {owner.public_key().ToKeyNoteString(),
       WrapKey(owner.public_key(), content_key, TestRand(32)).value()});
  entries.push_back(
      {reader.public_key().ToKeyNoteString(),
       WrapKey(reader.public_key(), content_key, TestRand(33)).value()});

  auto stored = (*owner_client)
                    ->PutLockbox(fh, /*sealed=*/true, /*chunk_size=*/512,
                                 sealed, entries);
  ASSERT_TRUE(stored.ok()) << stored.status();
  EXPECT_EQ(stored->owner, owner.public_key().ToKeyNoteString());
  EXPECT_FALSE(stored->chunks.empty());

  // Nothing stored server-side contains the plaintext: every chunk is
  // ciphertext under a key the server never saw.
  for (const std::string& id : stored->chunks) {
    auto chunk = node.host->server().chunkstore().Get(id);
    ASSERT_TRUE(chunk.ok());
    EXPECT_EQ(ToString(*chunk).find("attack at dawn"), std::string::npos);
  }

  // The reader fetches, unwraps its entry, and opens the payload.
  ChannelIdentity reader_id{reader, TestRand(21)};
  auto reader_client = DiscfsClient::Connect("127.0.0.1", node.host->port(),
                                             reader_id, server.public_key());
  ASSERT_TRUE(reader_client.ok());
  ASSERT_TRUE((*reader_client)->SubmitCredential(reader_cred).ok());
  auto fetch = (*reader_client)->GetLockbox(fh);
  ASSERT_TRUE(fetch.ok()) << fetch.status();
  EXPECT_EQ(fetch->payload, sealed);
  int index = fetch->record.FindEntry(reader.public_key().ToKeyNoteString());
  ASSERT_GE(index, 0);
  auto unwrapped =
      UnwrapKey(reader, fetch->record.entries[index].wrapped_key);
  ASSERT_TRUE(unwrapped.ok()) << unwrapped.status();
  auto opened = OpenPayload(*unwrapped, fetch->payload);
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_EQ(*opened, plaintext);

  // The outsider holds R (policy admits the fetch) but no lockbox entry:
  // cryptographic access control holds where policy alone would not.
  ChannelIdentity outsider_id{outsider, TestRand(22)};
  auto outsider_client = DiscfsClient::Connect(
      "127.0.0.1", node.host->port(), outsider_id, server.public_key());
  ASSERT_TRUE(outsider_client.ok());
  ASSERT_TRUE((*outsider_client)->SubmitCredential(outsider_cred).ok());
  auto outsider_fetch = (*outsider_client)->GetLockbox(fh);
  ASSERT_TRUE(outsider_fetch.ok()) << outsider_fetch.status();
  EXPECT_EQ(
      outsider_fetch->record.FindEntry(outsider.public_key().ToKeyNoteString()),
      -1);
  // Trying other people's entries fails at the crypto layer.
  for (const wire::LockboxEntry& entry : outsider_fetch->record.entries) {
    EXPECT_FALSE(UnwrapKey(outsider, entry.wrapped_key).ok());
  }

  // The reader (R) may grant: it records an entry for the outsider.
  Bytes reader_key_copy = *unwrapped;
  ASSERT_TRUE(
      (*reader_client)
          ->GrantLockboxAccess(
              fh, {outsider.public_key().ToKeyNoteString(),
                   WrapKey(outsider.public_key(), reader_key_copy,
                           TestRand(34))
                       .value()})
          .ok());
  auto regrant = (*outsider_client)->GetLockbox(fh);
  ASSERT_TRUE(regrant.ok());
  index = regrant->record.FindEntry(outsider.public_key().ToKeyNoteString());
  ASSERT_GE(index, 0);
  EXPECT_EQ(*OpenPayload(
                *UnwrapKey(outsider, regrant->record.entries[index].wrapped_key),
                regrant->payload),
            plaintext);

  // The outsider (R, not owner) cannot revoke; the owner can.
  EXPECT_EQ((*outsider_client)
                ->RevokeLockboxAccess(
                    fh, reader.public_key().ToKeyNoteString())
                .code(),
            StatusCode::kPermissionDenied);
  ASSERT_TRUE((*owner_client)
                  ->RevokeLockboxAccess(
                      fh, outsider.public_key().ToKeyNoteString())
                  .ok());
  auto after = (*reader_client)->GetLockbox(fh);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(
      after->record.FindEntry(outsider.public_key().ToKeyNoteString()), -1);

  (*owner_client)->Close();
  (*reader_client)->Close();
  (*outsider_client)->Close();
}

// --- multi-device principals + cluster-wide revocation ---

TEST(LockboxMultiDevice, RevokeOneDeviceDeniesClusterWideSiblingsStayWarm) {
  // One human, three devices. The user key delegates to each device key
  // (delegation leaves), and each device gets its own wrapped-key entry.
  // Revoking ONE device's credential on node A must deny that device's
  // lockbox fetch on node B (coherence), while the sibling devices'
  // cached grants on B stay warm.
  DsaPrivateKey admin = DsaPrivateKey::Generate(Dsa512(), TestRand(1));
  DsaPrivateKey server_a = DsaPrivateKey::Generate(Dsa512(), TestRand(2));
  DsaPrivateKey server_b = DsaPrivateKey::Generate(Dsa512(), TestRand(3));
  DsaPrivateKey user = DsaPrivateKey::Generate(Dsa512(), TestRand(4));
  DsaPrivateKey laptop = DsaPrivateKey::Generate(Dsa512(), TestRand(5));
  DsaPrivateKey phone = DsaPrivateKey::Generate(Dsa512(), TestRand(6));
  DsaPrivateKey tablet = DsaPrivateKey::Generate(Dsa512(), TestRand(7));

  Node node_a =
      StartNode(server_a, admin.public_key(), 10, {server_b.public_key()});
  Node node_b =
      StartNode(server_b, admin.public_key(), 11, {server_a.public_key()});
  ASSERT_TRUE(node_a.host
                  ->AddClusterPeer({"127.0.0.1", node_b.host->port(),
                                    server_b.public_key()})
                  .ok());
  ASSERT_TRUE(node_b.host
                  ->AddClusterPeer({"127.0.0.1", node_a.host->port(),
                                    server_a.public_key()})
                  .ok());

  // The shared file lives on B.
  ASSERT_TRUE(WriteFileAt(*node_b.vfs, "/vault.bin", "placeholder").ok());
  InodeAttr file = ResolvePath(*node_b.vfs, "/vault.bin").value();
  NfsFh fh{file.inode, file.generation};

  CredentialOptions rw;
  rw.permissions = "RW";
  CredentialOptions ro;
  ro.permissions = "R";
  std::string user_cred =
      IssueCredential(admin, user.public_key(), HandleString(file.inode), rw)
          .value();
  // Device keys are delegation LEAVES: user -> device, R only.
  DsaPrivateKey* devices[] = {&laptop, &phone, &tablet};
  std::string device_creds[3];
  for (int i = 0; i < 3; ++i) {
    device_creds[i] = IssueCredential(user, devices[i]->public_key(),
                                      HandleString(file.inode), ro)
                          .value();
  }

  // The user seals the vault and wraps the content key to EACH device key
  // — losing one device never exposes the others' entries.
  ChannelIdentity user_id{user, TestRand(20)};
  auto user_client = DiscfsClient::Connect("127.0.0.1", node_b.host->port(),
                                           user_id, server_b.public_key());
  ASSERT_TRUE(user_client.ok()) << user_client.status();
  ASSERT_TRUE((*user_client)->SubmitCredential(user_cred).ok());
  Bytes plaintext = ToBytes(std::string(4000, 'v'));
  Bytes content_key = GenerateContentKey(TestRand(30));
  Bytes sealed = SealPayload(content_key, plaintext, TestRand(31));
  std::vector<wire::LockboxEntry> entries;
  for (int i = 0; i < 3; ++i) {
    entries.push_back({devices[i]->public_key().ToKeyNoteString(),
                       WrapKey(devices[i]->public_key(), content_key,
                               TestRand(40 + i))
                           .value()});
  }
  ASSERT_TRUE((*user_client)
                  ->PutLockbox(fh, /*sealed=*/true, /*chunk_size=*/512,
                               sealed, entries)
                  .ok());

  // Every device attaches to B with its delegation chain and fetches.
  std::unique_ptr<DiscfsClient> device_clients[3];
  std::string device_cred_ids[3];
  for (int i = 0; i < 3; ++i) {
    ChannelIdentity id{*devices[i], TestRand(50 + i)};
    auto client = DiscfsClient::Connect("127.0.0.1", node_b.host->port(), id,
                                        server_b.public_key());
    ASSERT_TRUE(client.ok()) << client.status();
    device_clients[i] = std::move(client).value();
    // user_cred is already installed (the user submitted it); re-submitting
    // it per device would invalidate every sibling's cached grant, since
    // the whole device fan-out hangs off that credential.
    device_cred_ids[i] =
        device_clients[i]->SubmitCredential(device_creds[i]).value();
    auto fetch = device_clients[i]->GetLockbox(fh);
    ASSERT_TRUE(fetch.ok()) << "device " << i << ": " << fetch.status();
    int index = fetch->record.FindEntry(
        devices[i]->public_key().ToKeyNoteString());
    ASSERT_GE(index, 0);
    EXPECT_EQ(*OpenPayload(*UnwrapKey(*devices[i],
                                      fetch->record.entries[index].wrapped_key),
                           fetch->payload),
              plaintext);
  }

  // All three grants are warm in B's policy cache.
  node_b.host->server().ResetTelemetry();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(device_clients[i]->GetLockbox(fh).ok());
  }
  EXPECT_EQ(node_b.host->server().counters().keynote_queries.load(), 0u);

  // The laptop is lost. The revocation is accepted on node A — which never
  // even installed the credential (NotFound locally, still published) —
  // and must deny the laptop's LOCKBOX fetch on B through the fabric.
  EXPECT_EQ(
      node_a.host->server().RemoveCredential(device_cred_ids[0]).code(),
      StatusCode::kNotFound);
  ASSERT_TRUE(node_a.host->fabric()->WaitForAck(
      1, std::chrono::milliseconds(10000)));

  node_b.host->server().ResetTelemetry();
  // Siblings first: phone and tablet must still be served FROM CACHE —
  // the invalidation was scoped to the laptop's chain.
  for (int i = 1; i < 3; ++i) {
    auto fetch = device_clients[i]->GetLockbox(fh);
    ASSERT_TRUE(fetch.ok()) << "sibling device " << i << ": "
                            << fetch.status();
  }
  EXPECT_EQ(node_b.host->server().counters().keynote_queries.load(), 0u)
      << "sibling devices' cached grants should have survived";
  // The laptop is denied — same CheckAccess path as NFS reads.
  auto denied = device_clients[0]->GetLockbox(fh);
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied)
      << denied.status();
  // And its plain NFS read is denied identically (one admission path).
  EXPECT_EQ(device_clients[0]->nfs().Read(fh, 0, 16).status().code(),
            StatusCode::kPermissionDenied);

  // The user (whose own chain is intact) still fetches fine.
  ASSERT_TRUE((*user_client)->GetLockbox(fh).ok());

  (*user_client)->Close();
  for (auto& client : device_clients) {
    client->Close();
  }
}

// --- dedup semantics across users: public dedups, sealed never collides ---

TEST(LockboxDedup, PublicPayloadsDedupSealedPayloadsDoNot) {
  DsaPrivateKey admin = DsaPrivateKey::Generate(Dsa512(), TestRand(1));
  DsaPrivateKey server = DsaPrivateKey::Generate(Dsa512(), TestRand(2));
  Node node = StartNode(server, admin.public_key(), 10);

  // Four files; two users each store the same public corpus and a private
  // (sealed) copy of the same plaintext.
  for (const char* path : {"/pub1", "/pub2", "/priv1", "/priv2"}) {
    ASSERT_TRUE(WriteFileAt(*node.vfs, path, "x").ok());
  }
  InodeAttr pub1 = ResolvePath(*node.vfs, "/pub1").value();
  InodeAttr pub2 = ResolvePath(*node.vfs, "/pub2").value();
  InodeAttr priv1 = ResolvePath(*node.vfs, "/priv1").value();
  InodeAttr priv2 = ResolvePath(*node.vfs, "/priv2").value();

  DsaPrivateKey users[2] = {DsaPrivateKey::Generate(Dsa512(), TestRand(3)),
                            DsaPrivateKey::Generate(Dsa512(), TestRand(4))};
  std::unique_ptr<DiscfsClient> clients[2];
  CredentialOptions rw;
  rw.permissions = "RW";
  for (int u = 0; u < 2; ++u) {
    ChannelIdentity id{users[u], TestRand(20 + u)};
    auto client = DiscfsClient::Connect("127.0.0.1", node.host->port(), id,
                                        server.public_key());
    ASSERT_TRUE(client.ok());
    clients[u] = std::move(client).value();
    for (InodeAttr* file : {&pub1, &pub2, &priv1, &priv2}) {
      std::string cred = IssueCredential(admin, users[u].public_key(),
                                         HandleString(file->inode), rw)
                             .value();
      ASSERT_TRUE(clients[u]->SubmitCredential(cred).ok());
    }
  }

  // Varied content, so the 512-byte chunks WITHIN one payload are all
  // distinct and the only dedup measured is the cross-user kind.
  Bytes shared_plaintext = TestRand(99)(4096);

  // Public: identical plaintext from different users — full chunk overlap.
  NfsFh pub_fhs[2] = {{pub1.inode, pub1.generation},
                      {pub2.inode, pub2.generation}};
  auto pub_a = clients[0]->PutLockbox(pub_fhs[0], /*sealed=*/false, 512,
                                      shared_plaintext, {});
  ASSERT_TRUE(pub_a.ok()) << pub_a.status();
  auto pub_b = clients[1]->PutLockbox(pub_fhs[1], /*sealed=*/false, 512,
                                      shared_plaintext, {});
  ASSERT_TRUE(pub_b.ok()) << pub_b.status();
  EXPECT_EQ(pub_a->chunks, pub_b->chunks);  // content-addressed: same ids

  // Private: each user seals under their OWN random content key; the
  // ciphertexts (and so the chunk ids) must not collide even though the
  // plaintext is identical — dedup must not leak private-data equality.
  NfsFh priv_fhs[2] = {{priv1.inode, priv1.generation},
                       {priv2.inode, priv2.generation}};
  std::vector<std::string> priv_chunks[2];
  for (int u = 0; u < 2; ++u) {
    Bytes key = GenerateContentKey(TestRand(60 + u));
    Bytes sealed = SealPayload(key, shared_plaintext, TestRand(62 + u));
    auto stored = clients[u]->PutLockbox(priv_fhs[u], /*sealed=*/true, 512,
                                         sealed, {});
    ASSERT_TRUE(stored.ok()) << stored.status();
    priv_chunks[u] = stored->chunks;
  }
  for (const std::string& id : priv_chunks[0]) {
    for (const std::string& other : priv_chunks[1]) {
      EXPECT_NE(id, other);
    }
  }

  // Accounting: the public corpus cost one stored copy, the private two.
  ChunkStore::Stats stats = node.host->server().chunkstore().stats();
  EXPECT_EQ(stats.dedup_hits, pub_a->chunks.size());

  clients[0]->Close();
  clients[1]->Close();
}

}  // namespace
}  // namespace discfs
