#include "src/discfs/server.h"

#include <algorithm>
#include <condition_variable>

#include "src/cluster/fabric.h"
#include "src/cluster/protocol.h"
#include "src/crypto/sysrand.h"
#include "src/discfs/action_env.h"
#include "src/discfs/credentials.h"
#include "src/util/strings.h"
#include "src/util/worker_pool.h"
#include "src/wire/xdr.h"

namespace discfs {
namespace {

std::string DefaultPolicy(const DsaPublicKey& server_key) {
  return "Authorizer: \"POLICY\"\n"
         "Licensees: \"" + server_key.ToKeyNoteString() + "\"\n"
         "Conditions: app_domain == \"" + std::string(kAppDomain) +
         "\" -> \"RWX\";\n";
}

}  // namespace

DiscfsServer::DiscfsServer(std::shared_ptr<Vfs> vfs,
                           DiscfsServerConfig config)
    : vfs_(vfs),
      config_(std::move(config)),
      clock_(config_.clock != nullptr ? config_.clock : SystemClock::Get()),
      nfs_(std::make_unique<NfsServer>(std::move(vfs))),
      chunkstore_(std::make_unique<ChunkStore>(nfs_.get())),
      lockbox_(std::make_unique<LockboxService>(nfs_.get(), chunkstore_.get())),
      session_(keynote::PermissionLattice::Get()),
      cache_(config_.policy_cache_size, config_.policy_cache_ttl_s),
      revocation_(config_.revocation_horizon_s),
      sig_cache_(config_.signature_cache_size) {
  if (!config_.rand_bytes) {
    config_.rand_bytes = [](size_t n) { return SysRandomBytes(n); };
  }
}

Result<std::unique_ptr<DiscfsServer>> DiscfsServer::Create(
    std::shared_ptr<Vfs> vfs, DiscfsServerConfig config) {
  auto server = std::unique_ptr<DiscfsServer>(
      new DiscfsServer(std::move(vfs), std::move(config)));
  if (server->config_.policy_assertions.empty()) {
    RETURN_IF_ERROR(server->session_.AddPolicyAssertion(
        DefaultPolicy(server->public_key())));
  } else {
    for (const std::string& policy : server->config_.policy_assertions) {
      RETURN_IF_ERROR(server->session_.AddPolicyAssertion(policy));
    }
  }
  server->nfs_->set_access_hook([srv = server.get()](
                                    const NfsAccessRequest& request) {
    return srv->CheckAccess(request);
  });
  server->nfs_->RegisterAll(server->dispatcher_);
  server->RegisterDiscfsProcs();
  server->RegisterLockboxProcs();
  server->RegisterClusterProcs();
  server->ClassifyProcPriorities();
  server->RegisterServerMetrics();
  return server;
}

void DiscfsServer::ClassifyProcPriorities() {
  // Control plane: operations that change or replicate the authorization
  // state. Shedding a revocation under load would leave revoked keys live
  // exactly when an attacker can cheaply create load, so these classes
  // only shed at the hard admission limit.
  for (DiscfsProc proc :
       {DiscfsProc::kSubmitCredential, DiscfsProc::kRemoveCredential,
        DiscfsProc::kRevokeKey, DiscfsProc::kSubmitCredentialBatch,
        DiscfsProc::kServerInfo, DiscfsProc::kServerStats}) {
    dispatcher_.SetPriority(kDiscfsProgram, static_cast<uint32_t>(proc),
                            RpcPriority::kControl);
  }
  for (cluster::ClusterProc proc :
       {cluster::ClusterProc::kHello, cluster::ClusterProc::kPush,
        cluster::ClusterProc::kClusterStatus,
        cluster::ClusterProc::kRevocationSync}) {
    dispatcher_.SetPriority(cluster::kClusterProgram,
                            static_cast<uint32_t>(proc),
                            RpcPriority::kControl);
  }
  // Data plane: bulk reads/writes shed first — a retried READ is cheap,
  // and shedding it keeps namespace and control latency flat.
  for (NfsProc proc : {NfsProc::kNull, NfsProc::kGetAttr, NfsProc::kRead,
                       NfsProc::kWrite, NfsProc::kReadLink, NfsProc::kReadDir,
                       NfsProc::kStatFs}) {
    dispatcher_.SetPriority(kNfsProgram, static_cast<uint32_t>(proc),
                            RpcPriority::kData);
  }
  for (DiscfsProc proc : {DiscfsProc::kPutLockbox, DiscfsProc::kGetLockbox}) {
    dispatcher_.SetPriority(kDiscfsProgram, static_cast<uint32_t>(proc),
                            RpcPriority::kData);
  }
  // Everything else (namespace mutation, lookup, credential-returning
  // CREATE/MKDIR, handle resolution, lockbox grants) keeps the default
  // middle tier, kNamespace.
}

Status DiscfsServer::ServeConnection(std::unique_ptr<MsgStream> transport) {
  return ServeConnection(std::move(transport), ServeOptions{});
}

Status DiscfsServer::ServeConnection(std::unique_ptr<MsgStream> transport,
                                     const ServeOptions& options) {
  ChannelIdentity identity{config_.server_key, config_.rand_bytes};
  ASSIGN_OR_RETURN(std::unique_ptr<SecureChannel> channel,
                   SecureChannel::ServerHandshake(std::move(transport),
                                                  identity));
  RpcContext ctx;
  ctx.peer_key = channel->peer_key();
  dispatcher_.ServeConnection(*channel, ctx, options);
  return OkStatus();
}

Result<std::shared_ptr<RpcConnection>> DiscfsServer::ServeOnLoop(
    std::unique_ptr<MsgStream> transport, const RpcConnection::Options& options,
    RpcConnection::ClosedFn on_closed) {
  ChannelIdentity identity{config_.server_key, config_.rand_bytes};
  ASSIGN_OR_RETURN(std::unique_ptr<SecureChannel> channel,
                   SecureChannel::ServerHandshake(std::move(transport),
                                                  identity));
  return ServeChannelOnLoop(std::move(channel), options, std::move(on_closed));
}

Result<std::shared_ptr<RpcConnection>> DiscfsServer::ServeChannelOnLoop(
    std::unique_ptr<SecureChannel> channel,
    const RpcConnection::Options& options, RpcConnection::ClosedFn on_closed) {
  RpcContext ctx;
  ctx.peer_key = channel->peer_key();
  RpcConnection::Options opts = options;
  if (opts.recorder == nullptr) {
    opts.recorder = &recorder_;  // flight-record every loop-served call
  }
  return RpcConnection::Start(&dispatcher_, std::move(channel),
                              std::move(ctx), opts, std::move(on_closed));
}

Status DiscfsServer::CheckAccess(const NfsAccessRequest& request) {
  counters_.access_checks.fetch_add(1, std::memory_order_relaxed);
  if (request.ctx == nullptr || !request.ctx->peer_key.has_value()) {
    counters_.denials.fetch_add(1, std::memory_order_relaxed);
    return UnauthenticatedError("no authenticated peer key");
  }
  std::string principal = request.ctx->peer_key->ToKeyNoteString();

  std::shared_lock<std::shared_mutex> lock(mu_);
  if (revocation_.IsKeyRevoked(principal, clock_->NowUnix())) {
    counters_.denials.fetch_add(1, std::memory_order_relaxed);
    return PermissionDeniedError("key has been revoked");
  }
  if (request.needed == 0) {
    return OkStatus();  // getattr-class operations: holding the handle is
                        // enough (the attach directory shows mode 000)
  }
  uint32_t mask = QueryMaskLocked(principal, request.fh.inode);
  if ((mask & request.needed) != request.needed) {
    counters_.denials.fetch_add(1, std::memory_order_relaxed);
    return PermissionDeniedError(StrPrintf(
        "policy grants \"%s\" but \"%s\" required for %s on handle %u",
        keynote::PermissionLattice::Get().Name(mask).c_str(),
        keynote::PermissionLattice::Get().Name(request.needed).c_str(),
        NfsProcName(request.proc), request.fh.inode));
  }
  return OkStatus();
}

uint32_t DiscfsServer::QueryMaskLocked(const std::string& principal,
                                       uint32_t inode) {
  int64_t now = clock_->NowUnix();
  if (auto cached = cache_.Get(principal, inode, now); cached.has_value()) {
    return *cached;
  }
  counters_.keynote_queries.fetch_add(1, std::memory_order_relaxed);
  keynote::ComplianceQuery query;
  // The cached unit is the full RWX mask per (principal, handle); the env
  // therefore describes a generic access, not one specific procedure.
  query.attributes =
      BuildActionEnv(NfsProc::kNull, inode, /*needed_mask=*/0, *clock_);
  query.attributes["operation"] = "access";
  query.action_authorizers = {principal};
  uint32_t mask = session_.Query(query);
  cache_.Put(principal, inode, mask, now);
  return mask;
}

uint32_t DiscfsServer::EffectiveMask(const std::string& principal,
                                     uint32_t inode) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return QueryMaskLocked(principal, inode);
}

Status DiscfsServer::AddPolicyAssertion(const std::string& text) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  RETURN_IF_ERROR(session_.AddPolicyAssertion(text));
  cache_.InvalidateAll();  // policy roots affect every principal
  cluster::CoherenceEvent event;
  event.type = cluster::CoherenceEvent::Type::kInvalidateAll;
  PublishChurnLocked(std::move(event));
  return OkStatus();
}

std::vector<std::string> DiscfsServer::InvalidateAffectedLocked(
    const std::string& credential_id) {
  std::vector<std::string> affected =
      session_.AffectedRequesters(credential_id);
  for (const std::string& principal : affected) {
    cache_.InvalidatePrincipal(principal);
  }
  return affected;
}

void DiscfsServer::PublishChurnLocked(cluster::CoherenceEvent event) {
  // The mutating operation's trace id (thread-local, installed by the RPC
  // runtime or a local TraceScope) rides the event to every peer.
  event.trace_id = obs::CurrentTraceId();
  trace_log_.Record(event.trace_id, "publish");
  if (fabric_ != nullptr) {
    fabric_->Publish(std::move(event));
  }
}

Result<std::string> DiscfsServer::InstallCredentialLocked(
    keynote::Assertion assertion) {
  int64_t now = clock_->NowUnix();
  revocation_.Expire(now);
  std::string authorizer = assertion.authorizer();
  ASSIGN_OR_RETURN(std::string id,
                   session_.AddVerifiedCredential(std::move(assertion)));
  // Revocation is server state, so this check belongs under the lock: a
  // signature-cache hit skips the modexp, never this.
  if (revocation_.IsCredentialRevoked(id, now) ||
      revocation_.IsKeyRevoked(authorizer, now)) {
    (void)session_.RemoveCredential(id);
    return PermissionDeniedError("credential or issuing key is revoked");
  }
  counters_.credentials_submitted.fetch_add(1, std::memory_order_relaxed);
  cluster::CoherenceEvent event;
  event.type = cluster::CoherenceEvent::Type::kSubmit;
  event.credential_id = id;
  event.principals = InvalidateAffectedLocked(id);
  PublishChurnLocked(std::move(event));
  return id;
}

Result<std::string> DiscfsServer::SubmitCredential(const std::string& text) {
  // Parse + verify with no lock held: signature validity depends only on
  // the credential bytes, and the signature cache synchronizes itself.
  ASSIGN_OR_RETURN(keynote::Assertion assertion,
                   keynote::KeyNoteSession::ParseAndVerifyCredential(
                       text, &sig_cache_));
  std::lock_guard<std::shared_mutex> lock(mu_);
  return InstallCredentialLocked(std::move(assertion));
}

std::vector<Result<std::string>> DiscfsServer::SubmitCredentials(
    const std::vector<std::string>& texts) {
  const size_t n = texts.size();
  std::vector<Result<keynote::Assertion>> verified;
  verified.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    verified.emplace_back(UnavailableError("not verified"));
  }

  // Verification fan-out. Items are claimed from a shared counter; the
  // calling thread works the same loop as the pool helpers, so the batch
  // finishes even if no helper ever gets scheduled — which also makes it
  // safe to call from a pool worker (an RPC handler): the caller never
  // parks waiting for pool capacity it might itself be occupying.
  struct Shared {
    std::atomic<size_t> next{0};
    std::mutex mu;
    std::condition_variable cv;
    size_t done = 0;
  };
  auto shared = std::make_shared<Shared>();
  // Late-running helpers only touch `shared` (kept alive by the
  // shared_ptr): once `done == n` every index has been claimed and
  // completed, so a straggler's claim fails before it ever dereferences
  // the caller-owned vectors.
  auto work = [this, shared, &texts, &verified, n] {
    while (true) {
      size_t i = shared->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        break;
      }
      Result<keynote::Assertion> r =
          keynote::KeyNoteSession::ParseAndVerifyCredential(texts[i],
                                                            &sig_cache_);
      verified[i] = std::move(r);
      std::lock_guard<std::mutex> lock(shared->mu);
      if (++shared->done == n) {
        shared->cv.notify_all();
      }
    }
  };
  size_t helpers =
      (verify_pool_ != nullptr && n > 1) ? std::min(verify_pool_->size(), n - 1)
                                         : 0;
  for (size_t h = 0; h < helpers; ++h) {
    verify_pool_->Submit(work);
  }
  work();
  {
    std::unique_lock<std::mutex> lock(shared->mu);
    shared->cv.wait(lock, [&] { return shared->done == n; });
  }

  // One exclusive acquisition installs the whole batch.
  std::vector<Result<std::string>> results;
  results.reserve(n);
  std::lock_guard<std::shared_mutex> lock(mu_);
  for (auto& v : verified) {
    if (v.ok()) {
      results.push_back(InstallCredentialLocked(std::move(v).value()));
    } else {
      results.push_back(v.status());
    }
  }
  return results;
}

void DiscfsServer::SetVerifyPool(WorkerPool* pool) { verify_pool_ = pool; }

Status DiscfsServer::RemoveCredential(const std::string& credential_id) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  revocation_.RevokeCredential(credential_id, clock_->NowUnix(),
                               obs::CurrentTraceId());
  // Compute the closure while the chain is still known (empty when the
  // credential was never installed here).
  cluster::CoherenceEvent event;
  event.type = cluster::CoherenceEvent::Type::kRemove;
  event.credential_id = credential_id;
  event.principals = InvalidateAffectedLocked(credential_id);
  // Publish even when the credential is unknown locally: the revocation
  // list entry above is already effective on this server, and a peer that
  // does hold the credential recomputes its own closure on receipt.
  PublishChurnLocked(std::move(event));
  return session_.RemoveCredential(credential_id);
}

void DiscfsServer::RevokeKey(const std::string& principal) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  int64_t now = clock_->NowUnix();
  uint64_t trace = obs::CurrentTraceId();
  revocation_.RevokeKey(principal, now, trace);
  cluster::CoherenceEvent event;
  event.type = cluster::CoherenceEvent::Type::kRevokeKey;
  event.principal = principal;
  // Delegations issued by the revoked key stop contributing immediately.
  for (const std::string& id :
       session_.CredentialIdsByAuthorizer(principal)) {
    revocation_.RevokeCredential(id, now, trace);
    for (std::string& p : InvalidateAffectedLocked(id)) {
      event.principals.push_back(std::move(p));
    }
    (void)session_.RemoveCredential(id);
  }
  // The key's own cached grants must not outlive its revocation.
  cache_.InvalidatePrincipal(principal);
  std::sort(event.principals.begin(), event.principals.end());
  event.principals.erase(
      std::unique(event.principals.begin(), event.principals.end()),
      event.principals.end());
  PublishChurnLocked(std::move(event));
}

void DiscfsServer::ResetTelemetry() {
  std::lock_guard<std::shared_mutex> lock(mu_);
  cache_.ResetStats();
  sig_cache_.ResetStats();
  counters_.keynote_queries.store(0, std::memory_order_relaxed);
  counters_.access_checks.store(0, std::memory_order_relaxed);
  counters_.denials.store(0, std::memory_order_relaxed);
}

DiscfsServer::ServerStatsSnapshot DiscfsServer::stats_snapshot() const {
  ServerStatsSnapshot snap;
  snap.cache = cache_.stats();            // internally synchronized
  snap.coherence = cache_.coherence_stats();
  snap.signatures = sig_cache_.stats();   // internally synchronized
  snap.cluster = cluster_health();
  std::shared_lock<std::shared_mutex> lock(mu_);
  snap.credential_count = session_.credential_count();
  snap.revocation_entries = revocation_.size();
  return snap;
}

void DiscfsServer::AttachCoherenceFabric(cluster::CoherenceFabric* fabric) {
  fabric_ = fabric;
}

void DiscfsServer::ApplyRemoteEvent(const cluster::CoherenceEvent& event) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  counters_.remote_events_applied.fetch_add(1, std::memory_order_relaxed);
  trace_log_.Record(event.trace_id, "apply");
  int64_t now = clock_->NowUnix();
  switch (event.type) {
    case cluster::CoherenceEvent::Type::kSubmit:
      // A credential admitted elsewhere may widen the listed principals'
      // masks; drop their cached results so the next check recomputes.
      for (const std::string& principal : event.principals) {
        cache_.InvalidatePrincipalRemote(principal);
      }
      break;
    case cluster::CoherenceEvent::Type::kRemove:
      revocation_.RevokeCredential(event.credential_id, now, event.trace_id);
      if (session_.HasCredential(event.credential_id)) {
        // Our own delegation graph may reach principals the origin's did
        // not; invalidate the local closure too, then expel the chain.
        for (const std::string& principal :
             session_.AffectedRequesters(event.credential_id)) {
          cache_.InvalidatePrincipalRemote(principal);
        }
        (void)session_.RemoveCredential(event.credential_id);
      }
      for (const std::string& principal : event.principals) {
        cache_.InvalidatePrincipalRemote(principal);
      }
      break;
    case cluster::CoherenceEvent::Type::kRevokeKey:
      revocation_.RevokeKey(event.principal, now, event.trace_id);
      for (const std::string& id :
           session_.CredentialIdsByAuthorizer(event.principal)) {
        revocation_.RevokeCredential(id, now, event.trace_id);
        for (const std::string& principal : session_.AffectedRequesters(id)) {
          cache_.InvalidatePrincipalRemote(principal);
        }
        (void)session_.RemoveCredential(id);
      }
      cache_.InvalidatePrincipalRemote(event.principal);
      for (const std::string& principal : event.principals) {
        cache_.InvalidatePrincipalRemote(principal);
      }
      break;
    case cluster::CoherenceEvent::Type::kInvalidateAll:
      cache_.InvalidateAll();
      break;
  }
}

cluster::ClusterHealth DiscfsServer::cluster_health() const {
  return fabric_ == nullptr ? cluster::ClusterHealth{} : fabric_->Health();
}

Bytes DiscfsServer::SerializeRevocations() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return revocation_.SerializeEntries(clock_->NowUnix());
}

Bytes DiscfsServer::RevocationDigest() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return revocation_.Digest(clock_->NowUnix());
}

size_t DiscfsServer::MergeRevocations(const Bytes& blob) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  int64_t now = clock_->NowUnix();
  auto merged = revocation_.MergeSerialized(blob, now);
  if (!merged.ok()) {
    return 0;  // malformed peer blob: learn nothing, change nothing
  }
  // Newly learned entries get the same local effects as a pushed
  // revocation event would have had (ApplyRemoteEvent's kRemove /
  // kRevokeKey arms), minus the origin's closure hints — our own
  // delegation graph supplies the affected principals.
  for (const RevocationList::MergeResult::NewEntry& entry :
       merged->new_credentials) {
    trace_log_.Record(entry.trace_id, "anti-entropy", "credential");
    if (session_.HasCredential(entry.id)) {
      for (const std::string& principal :
           session_.AffectedRequesters(entry.id)) {
        cache_.InvalidatePrincipalRemote(principal);
      }
      (void)session_.RemoveCredential(entry.id);
    }
  }
  for (const RevocationList::MergeResult::NewEntry& entry :
       merged->new_keys) {
    trace_log_.Record(entry.trace_id, "anti-entropy", "key");
    for (const std::string& id :
         session_.CredentialIdsByAuthorizer(entry.id)) {
      revocation_.RevokeCredential(id, now, entry.trace_id);
      for (const std::string& principal : session_.AffectedRequesters(id)) {
        cache_.InvalidatePrincipalRemote(principal);
      }
      (void)session_.RemoveCredential(id);
    }
    cache_.InvalidatePrincipalRemote(entry.id);
  }
  return merged->new_keys.size() + merged->new_credentials.size();
}

size_t DiscfsServer::credential_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return session_.credential_count();
}

void DiscfsServer::RegisterDiscfsProcs() {
  auto reg = [&](DiscfsProc proc, auto handler) {
    dispatcher_.Register(kDiscfsProgram, static_cast<uint32_t>(proc),
                         handler);
  };

  reg(DiscfsProc::kSubmitCredential,
      [this](const Bytes& args, const RpcContext&) -> Result<Bytes> {
        XdrReader r(args);
        ASSIGN_OR_RETURN(std::string text, r.GetString(1 << 20));
        ASSIGN_OR_RETURN(std::string id, SubmitCredential(text));
        XdrWriter w;
        w.PutString(id);
        return w.Take();
      });

  reg(DiscfsProc::kSubmitCredentialBatch,
      [this](const Bytes& args, const RpcContext&) -> Result<Bytes> {
        XdrReader r(args);
        ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
        if (count > kMaxCredentialBatch) {
          return InvalidArgumentError(
              StrPrintf("batch of %u exceeds the %u-credential bound", count,
                        kMaxCredentialBatch));
        }
        std::vector<std::string> texts;
        texts.reserve(count);
        for (uint32_t i = 0; i < count; ++i) {
          ASSIGN_OR_RETURN(std::string text, r.GetString(1 << 20));
          texts.push_back(std::move(text));
        }
        std::vector<Result<std::string>> results = SubmitCredentials(texts);
        XdrWriter w;
        w.PutU32(static_cast<uint32_t>(results.size()));
        for (const Result<std::string>& result : results) {
          w.PutU32(static_cast<uint32_t>(result.status().code()));
          w.PutString(result.ok() ? result.value()
                                  : result.status().message());
        }
        return w.Take();
      });

  reg(DiscfsProc::kRemoveCredential,
      [this](const Bytes& args, const RpcContext& ctx) -> Result<Bytes> {
        XdrReader r(args);
        ASSIGN_OR_RETURN(std::string id, r.GetString());
        if (!ctx.peer_key.has_value()) {
          return UnauthenticatedError("no authenticated peer key");
        }
        {
          // Only the credential's issuer may withdraw it remotely; the
          // administrator uses the local API.
          std::shared_lock<std::shared_mutex> lock(mu_);
          const keynote::Assertion* credential = session_.FindCredential(id);
          if (credential == nullptr) {
            return NotFoundError("no credential with id " + id);
          }
          if (credential->authorizer() !=
              ctx.peer_key->ToKeyNoteString()) {
            return PermissionDeniedError(
                "only the issuer may remove a credential");
          }
        }
        trace_log_.Record(ctx.trace_id, "rpc", "remove-credential");
        RETURN_IF_ERROR(RemoveCredential(id));
        return Bytes();
      });

  reg(DiscfsProc::kRevokeKey,
      [this](const Bytes& args, const RpcContext& ctx) -> Result<Bytes> {
        XdrReader r(args);
        ASSIGN_OR_RETURN(std::string principal, r.GetString(1 << 20));
        if (!ctx.peer_key.has_value()) {
          return UnauthenticatedError("no authenticated peer key");
        }
        // A key may revoke itself (compromise recovery); everything else is
        // the administrator's call, via the local API.
        if (ctx.peer_key->ToKeyNoteString() != principal) {
          return PermissionDeniedError(
              "remote revocation is limited to the requesting key itself");
        }
        trace_log_.Record(ctx.trace_id, "rpc", "revoke-key");
        RevokeKey(principal);
        return Bytes();
      });

  auto make_with_credential = [this](bool mkdir) {
    return [this, mkdir](const Bytes& args,
                         const RpcContext& ctx) -> Result<Bytes> {
      XdrReader r(args);
      ASSIGN_OR_RETURN(NfsFh dir, ReadFh(r));
      ASSIGN_OR_RETURN(std::string name, r.GetString());
      ASSIGN_OR_RETURN(uint32_t mode, r.GetU32());
      if (!ctx.peer_key.has_value()) {
        return UnauthenticatedError("no authenticated peer key");
      }
      // Same check the plain NFS CREATE runs: write access to the parent.
      NfsAccessRequest access;
      access.proc = mkdir ? NfsProc::kMkdir : NfsProc::kCreate;
      access.fh = dir;
      access.needed = 2;  // W
      access.ctx = &ctx;
      RETURN_IF_ERROR(CheckAccess(access));

      ASSIGN_OR_RETURN(NfsFattr attr, mkdir ? nfs_->Mkdir(dir, name, mode)
                                            : nfs_->Create(dir, name, mode));

      // Mint the creator's credential (the paper's augmented procedure:
      // "upon successful creation ... return a credential with full access
      // to the creator of the file").
      CredentialOptions options;
      options.permissions = "RWX";
      options.comment = name;
      ASSIGN_OR_RETURN(
          std::string credential,
          IssueCredential(config_.server_key, *ctx.peer_key,
                          HandleString(attr.fh.inode), options));
      // Admit it immediately so the creator can use the file without a
      // resubmission round-trip.
      RETURN_IF_ERROR(SubmitCredential(credential).status());

      XdrWriter w;
      WriteFattr(w, attr);
      w.PutString(credential);
      return w.Take();
    };
  };
  reg(DiscfsProc::kCreateReturnsCred, make_with_credential(false));
  reg(DiscfsProc::kMkdirReturnsCred, make_with_credential(true));

  reg(DiscfsProc::kResolveHandle,
      [this](const Bytes& args, const RpcContext& ctx) -> Result<Bytes> {
        XdrReader r(args);
        ASSIGN_OR_RETURN(uint32_t inode, r.GetU32());
        if (!ctx.peer_key.has_value()) {
          return UnauthenticatedError("no authenticated peer key");
        }
        // The file only "appears" once some credential grants the requester
        // something on it.
        uint32_t mask =
            EffectiveMask(ctx.peer_key->ToKeyNoteString(), inode);
        if (mask == 0) {
          return PermissionDeniedError(
              "no credential covers this handle for the requesting key");
        }
        ASSIGN_OR_RETURN(InodeAttr attr, vfs_->GetAttr(inode));
        XdrWriter w;
        WriteFattr(w, FattrFromInode(attr));
        return w.Take();
      });

  reg(DiscfsProc::kServerInfo,
      [this](const Bytes&, const RpcContext&) -> Result<Bytes> {
        XdrWriter w;
        w.PutString(public_key().ToKeyNoteString());
        w.PutU64(counters_.keynote_queries.load(std::memory_order_relaxed));
        ServerStatsSnapshot stats = stats_snapshot();
        w.PutU64(stats.cache.hits);
        w.PutU64(stats.cache.misses);
        w.PutU32(static_cast<uint32_t>(stats.credential_count));
        return w.Take();
      });

  reg(DiscfsProc::kServerStats,
      [this](const Bytes& args, const RpcContext& ctx) -> Result<Bytes> {
        XdrReader r(args);
        ASSIGN_OR_RETURN(uint32_t format, r.GetU32());
        if (format > 1) {
          return InvalidArgumentError(
              StrPrintf("unknown stats format %u (0 = Prometheus text, "
                        "1 = JSON)",
                        format));
        }
        trace_log_.Record(ctx.trace_id, "rpc", "server-stats");
        XdrWriter w;
        w.PutString(format == 0 ? metrics_.PrometheusText()
                                : metrics_.Json());
        return w.Take();
      });
}

void DiscfsServer::RegisterLockboxProcs() {
  auto reg = [&](DiscfsProc proc, auto handler) {
    dispatcher_.Register(kDiscfsProgram, static_cast<uint32_t>(proc),
                         handler);
  };

  // Admission shared by all four procedures: the same CheckAccess the NFS
  // hook runs, so a key revocation (local or coherence-propagated) that
  // denies READ/WRITE denies the lockbox operation identically.
  auto check = [this](const RpcContext& ctx, NfsProc proc, const NfsFh& fh,
                      uint32_t needed) -> Status {
    if (!ctx.peer_key.has_value()) {
      return UnauthenticatedError("no authenticated peer key");
    }
    NfsAccessRequest access;
    access.proc = proc;
    access.fh = fh;
    access.needed = needed;
    access.ctx = &ctx;
    return CheckAccess(access);
  };

  reg(DiscfsProc::kPutLockbox,
      [this, check](const Bytes& args, const RpcContext& ctx) -> Result<Bytes> {
        XdrReader r(args);
        ASSIGN_OR_RETURN(NfsFh fh, ReadFh(r));
        RETURN_IF_ERROR(check(ctx, NfsProc::kWrite, fh, /*needed=*/2));
        wire::LockboxRecord record;
        record.handle = fh.inode;
        record.owner = ctx.peer_key->ToKeyNoteString();
        ASSIGN_OR_RETURN(record.sealed, r.GetBool());
        ASSIGN_OR_RETURN(record.chunk_size, r.GetU32());
        ASSIGN_OR_RETURN(Bytes payload, r.GetOpaque(kMaxLockboxPayload));
        ASSIGN_OR_RETURN(uint32_t entry_count, r.GetU32());
        if (entry_count > wire::LockboxRecord::kMaxEntries) {
          return InvalidArgumentError("lockbox entry list too large");
        }
        record.entries.reserve(entry_count);
        for (uint32_t i = 0; i < entry_count; ++i) {
          wire::LockboxEntry entry;
          ASSIGN_OR_RETURN(entry.recipient, r.GetString(1 << 16));
          ASSIGN_OR_RETURN(entry.wrapped_key, r.GetOpaque(1 << 13));
          record.entries.push_back(std::move(entry));
        }
        ASSIGN_OR_RETURN(wire::LockboxRecord stored,
                         lockbox_->Put(std::move(record), payload));
        XdrWriter w;
        w.PutOpaque(wire::EncodeLockboxRecord(stored));
        return w.Take();
      });

  reg(DiscfsProc::kGetLockbox,
      [this, check](const Bytes& args, const RpcContext& ctx) -> Result<Bytes> {
        XdrReader r(args);
        ASSIGN_OR_RETURN(NfsFh fh, ReadFh(r));
        RETURN_IF_ERROR(check(ctx, NfsProc::kRead, fh, /*needed=*/4));
        ASSIGN_OR_RETURN(LockboxService::Box box, lockbox_->Get(fh.inode));
        XdrWriter w;
        w.PutOpaque(wire::EncodeLockboxRecord(box.record));
        w.PutOpaque(box.payload);
        return w.Take();
      });

  reg(DiscfsProc::kGrantAccess,
      [this, check](const Bytes& args, const RpcContext& ctx) -> Result<Bytes> {
        XdrReader r(args);
        ASSIGN_OR_RETURN(NfsFh fh, ReadFh(r));
        wire::LockboxEntry entry;
        ASSIGN_OR_RETURN(entry.recipient, r.GetString(1 << 16));
        ASSIGN_OR_RETURN(entry.wrapped_key, r.GetOpaque(1 << 13));
        // R suffices: a reader can already unwrap the content key and pass
        // it along out of band; recording an entry adds no authority.
        RETURN_IF_ERROR(check(ctx, NfsProc::kRead, fh, /*needed=*/4));
        RETURN_IF_ERROR(lockbox_->Grant(fh.inode, entry));
        return Bytes();
      });

  reg(DiscfsProc::kRevokeAccess,
      [this, check](const Bytes& args, const RpcContext& ctx) -> Result<Bytes> {
        XdrReader r(args);
        ASSIGN_OR_RETURN(NfsFh fh, ReadFh(r));
        ASSIGN_OR_RETURN(std::string recipient, r.GetString(1 << 16));
        if (!ctx.peer_key.has_value()) {
          return UnauthenticatedError("no authenticated peer key");
        }
        // W, or owning the record: the owner must be able to cut off a
        // recipient even after their own W delegation lapsed.
        Status writable = check(ctx, NfsProc::kWrite, fh, /*needed=*/2);
        if (!writable.ok()) {
          ASSIGN_OR_RETURN(wire::LockboxRecord record,
                           lockbox_->GetRecord(fh.inode));
          if (record.owner != ctx.peer_key->ToKeyNoteString()) {
            return writable;
          }
        }
        RETURN_IF_ERROR(lockbox_->Revoke(fh.inode, recipient));
        return Bytes();
      });
}

void DiscfsServer::RegisterClusterProcs() {
  // Only configured peer servers may speak the coherence program: a fake
  // push is at best a cache flush, at worst a forged revocation, or —
  // subtlest — a cursor poisoned under another origin's name that makes
  // every future event from that origin dedup away. The last is why the
  // claimed origin must equal the authenticated channel key (a node's id
  // IS its public key string), not merely belong to *a* trusted peer.
  auto check_peer = [this](const RpcContext& ctx,
                           const std::string& origin) -> Status {
    if (!ctx.peer_key.has_value()) {
      return UnauthenticatedError("no authenticated peer key");
    }
    if (origin != ctx.peer_key->ToKeyNoteString()) {
      return PermissionDeniedError(
          "origin does not match the authenticated peer key");
    }
    for (const DsaPublicKey& key : config_.cluster_trusted_keys) {
      if (key == *ctx.peer_key) {
        return OkStatus();
      }
    }
    return PermissionDeniedError(
        "peer key is not a trusted cluster member");
  };

  dispatcher_.Register(
      cluster::kClusterProgram,
      static_cast<uint32_t>(cluster::ClusterProc::kHello),
      [this, check_peer](const Bytes& args,
                         const RpcContext& ctx) -> Result<Bytes> {
        if (fabric_ == nullptr) {
          return FailedPreconditionError("no coherence fabric attached");
        }
        ASSIGN_OR_RETURN(cluster::HelloRequest hello,
                         cluster::DecodeHello(args));
        RETURN_IF_ERROR(check_peer(ctx, hello.origin));
        XdrWriter w;
        w.PutU64(fabric_->HandleHello(hello.origin, hello.incarnation,
                                      hello.head_seq, hello.listen_addr));
        return w.Take();
      });

  dispatcher_.Register(
      cluster::kClusterProgram,
      static_cast<uint32_t>(cluster::ClusterProc::kPush),
      [this, check_peer](const Bytes& args,
                         const RpcContext& ctx) -> Result<Bytes> {
        if (fabric_ == nullptr) {
          return FailedPreconditionError("no coherence fabric attached");
        }
        ASSIGN_OR_RETURN(cluster::PushRequest request,
                         cluster::DecodePush(args));
        RETURN_IF_ERROR(check_peer(ctx, request.origin));
        XdrWriter w;
        w.PutU64(fabric_->HandlePush(request.origin, request.events));
        return w.Take();
      });

  dispatcher_.Register(
      cluster::kClusterProgram,
      static_cast<uint32_t>(cluster::ClusterProc::kClusterStatus),
      [this, check_peer](const Bytes& args,
                         const RpcContext& ctx) -> Result<Bytes> {
        if (fabric_ == nullptr) {
          return FailedPreconditionError("no coherence fabric attached");
        }
        ASSIGN_OR_RETURN(cluster::StatusRequest request,
                         cluster::DecodeStatusRequest(args));
        RETURN_IF_ERROR(check_peer(ctx, request.origin));
        return cluster::EncodeStatusReply(fabric_->HandleStatus(request));
      });

  dispatcher_.Register(
      cluster::kClusterProgram,
      static_cast<uint32_t>(cluster::ClusterProc::kRevocationSync),
      [this, check_peer](const Bytes& args,
                         const RpcContext& ctx) -> Result<Bytes> {
        ASSIGN_OR_RETURN(cluster::RevocationSyncRequest request,
                         cluster::DecodeRevocationSyncRequest(args));
        RETURN_IF_ERROR(check_peer(ctx, request.origin));
        cluster::RevocationSyncReply reply;
        if (RevocationDigest() == request.digest) {
          // Lists already agree; skip the merge and ship nothing back.
          reply.match = true;
        } else {
          (void)MergeRevocations(request.entries);
          // Serialize *after* merging so the sender pulls the union.
          reply.entries = SerializeRevocations();
        }
        return cluster::EncodeRevocationSyncReply(reply);
      });
}

void DiscfsServer::RegisterServerMetrics() {
  // Every existing Stats struct becomes a gauge callback: the subsystem
  // keeps owning its numbers, the registry reads them only at scrape time.
  auto one = [](double v) {
    return std::vector<obs::GaugeSample>{{"", v}};
  };
  metrics_.RegisterGauge(
      "discfs_keynote_queries_total", "KeyNote compliance queries",
      [this, one] { return one(static_cast<double>(counters_.keynote_queries.load(
          std::memory_order_relaxed))); });
  metrics_.RegisterGauge(
      "discfs_access_checks_total", "NFS access-hook checks",
      [this, one] { return one(static_cast<double>(counters_.access_checks.load(
          std::memory_order_relaxed))); });
  metrics_.RegisterGauge(
      "discfs_denials_total", "Access checks denied",
      [this, one] { return one(static_cast<double>(counters_.denials.load(
          std::memory_order_relaxed))); });
  metrics_.RegisterGauge(
      "discfs_credentials_submitted_total", "Credentials admitted",
      [this, one] { return one(static_cast<double>(counters_.credentials_submitted.load(
          std::memory_order_relaxed))); });
  metrics_.RegisterGauge(
      "discfs_remote_events_applied_total", "Coherence events applied",
      [this, one] { return one(static_cast<double>(counters_.remote_events_applied.load(
          std::memory_order_relaxed))); });
  metrics_.RegisterGauge(
      "discfs_policy_cache", "Policy cache counters by {kind}", [this] {
        PolicyCache::Stats s = cache_.stats();
        PolicyCache::CoherenceStats c = cache_.coherence_stats();
        return std::vector<obs::GaugeSample>{
            {"kind=\"hits\"", static_cast<double>(s.hits)},
            {"kind=\"misses\"", static_cast<double>(s.misses)},
            {"kind=\"evictions\"", static_cast<double>(s.evictions)},
            {"kind=\"invalidations\"", static_cast<double>(s.invalidations)},
            {"kind=\"local_bumps\"", static_cast<double>(c.local_bumps)},
            {"kind=\"remote_bumps\"", static_cast<double>(c.remote_bumps)},
        };
      });
  metrics_.RegisterGauge(
      "discfs_signature_cache", "Verified-signature cache counters by {kind}",
      [this] {
        keynote::VerifiedSignatureCache::Stats s = sig_cache_.stats();
        return std::vector<obs::GaugeSample>{
            {"kind=\"hits\"", static_cast<double>(s.hits)},
            {"kind=\"misses\"", static_cast<double>(s.misses)},
            {"kind=\"evictions\"", static_cast<double>(s.evictions)},
        };
      });
  metrics_.RegisterGauge(
      "discfs_chunkstore", "Content-addressed chunk store counters by {kind}",
      [this] {
        ChunkStore::Stats s = chunkstore_->stats();
        return std::vector<obs::GaugeSample>{
            {"kind=\"puts\"", static_cast<double>(s.puts)},
            {"kind=\"dedup_hits\"", static_cast<double>(s.dedup_hits)},
            {"kind=\"stored\"", static_cast<double>(s.stored)},
            {"kind=\"removed\"", static_cast<double>(s.removed)},
        };
      });
  metrics_.RegisterGauge(
      "discfs_nfs_ops_served_total", "NFS procedures served",
      [this, one] { return one(static_cast<double>(nfs_->ops_served())); });
  metrics_.RegisterGauge(
      "discfs_credentials", "Credentials currently installed", [this, one] {
        std::shared_lock<std::shared_mutex> lock(mu_);
        return one(static_cast<double>(session_.credential_count()));
      });
  metrics_.RegisterGauge(
      "discfs_revocation_entries", "Unexpired revocation-list entries",
      [this, one] {
        std::shared_lock<std::shared_mutex> lock(mu_);
        return one(static_cast<double>(revocation_.size()));
      });
  metrics_.RegisterGauge(
      "discfs_traces_recorded_total", "Trace observations at this node",
      [this, one] {
        return one(static_cast<double>(trace_log_.recorded_total()));
      });
  // Cluster liveness: one labeled sample per configured peer, plus the
  // origin log position. Peer ack lag = head_seq - acked_seq, the replica
  // staleness a dashboard actually alerts on.
  metrics_.RegisterGauge(
      "discfs_cluster_head_seq", "Origin coherence log head", [this, one] {
        return one(static_cast<double>(cluster_health().head_seq));
      });
  auto per_peer = [this](auto field) {
    cluster::ClusterHealth health = cluster_health();
    std::vector<obs::GaugeSample> out;
    out.reserve(health.peers.size());
    for (const cluster::PeerHealth& peer : health.peers) {
      out.push_back(
          {"peer=\"" + peer.address + "\"", field(health, peer)});
    }
    return out;
  };
  metrics_.RegisterGauge(
      "discfs_cluster_peer_healthy", "1 = peer heard from within deadline",
      [per_peer] {
        return per_peer([](const cluster::ClusterHealth&,
                           const cluster::PeerHealth& p) {
          return p.healthy ? 1.0 : 0.0;
        });
      });
  metrics_.RegisterGauge(
      "discfs_cluster_peer_connected", "1 = transport to peer established",
      [per_peer] {
        return per_peer([](const cluster::ClusterHealth&,
                           const cluster::PeerHealth& p) {
          return p.connected ? 1.0 : 0.0;
        });
      });
  metrics_.RegisterGauge(
      "discfs_cluster_peer_ack_lag",
      "Events published here the peer has not acked", [per_peer] {
        return per_peer([](const cluster::ClusterHealth& h,
                           const cluster::PeerHealth& p) {
          return p.acked_seq <= h.head_seq
                     ? static_cast<double>(h.head_seq - p.acked_seq)
                     : 0.0;
        });
      });
}

}  // namespace discfs
