// Observability (PR 9): histogram bucket math and quantiles, counter
// sharding under contention, registry exposition, trace scopes and the
// trace log, the RPC flight recorder's slow-op ring, the kServerStats
// scrape against a live host, and trace-id propagation across a real
// 2-node cluster (RPC trailer -> coherence event -> anti-entropy blob).
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>

#include "src/blockdev/blockdev.h"
#include "src/crypto/groups.h"
#include "src/discfs/client.h"
#include "src/discfs/host.h"
#include "src/discfs/server.h"
#include "src/ffs/ffs.h"
#include "src/obs/metrics.h"
#include "src/obs/recorder.h"
#include "src/obs/trace.h"
#include "src/util/prng.h"
#include "src/vfs/vfs.h"

namespace discfs {
namespace {

using obs::Histogram;

std::function<Bytes(size_t)> TestRand(uint64_t seed) {
  return LockedPrngBytes(seed);
}

std::shared_ptr<FfsVfs> MakeVfs() {
  auto dev = std::make_shared<MemBlockDevice>(4096, 4096);
  auto fs = Ffs::Format(dev, FfsFormatOptions{512});
  EXPECT_TRUE(fs.ok()) << fs.status();
  return std::make_shared<FfsVfs>(std::move(fs).value());
}

TEST(ObsHistogram, BucketBoundaries) {
  // Values below kSubBuckets are exact.
  for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v);
  }
  // First octave: 8..15 keep one-unit buckets (shift is zero).
  EXPECT_EQ(Histogram::BucketIndex(8), 8u);
  EXPECT_EQ(Histogram::BucketIndex(15), 15u);
  // Second octave: two-unit buckets.
  EXPECT_EQ(Histogram::BucketIndex(16), 16u);
  EXPECT_EQ(Histogram::BucketIndex(17), 16u);
  EXPECT_EQ(Histogram::BucketIndex(18), 17u);
  EXPECT_EQ(Histogram::BucketIndex(31), 23u);
  EXPECT_EQ(Histogram::BucketIndex(32), 24u);

  // Every bucket's bounds invert BucketIndex, and buckets tile the range.
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    uint64_t lo = Histogram::BucketLowerBound(i);
    uint64_t hi = Histogram::BucketUpperBound(i);
    EXPECT_LE(lo, hi);
    EXPECT_EQ(Histogram::BucketIndex(lo), i);
    EXPECT_EQ(Histogram::BucketIndex(hi), i);
    if (i > 0) {
      EXPECT_EQ(Histogram::BucketUpperBound(i - 1) + 1, lo);
    }
  }
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1), ~0ull);
  EXPECT_EQ(Histogram::BucketIndex(~0ull), Histogram::kNumBuckets - 1);
}

TEST(ObsHistogram, QuantilesOverestimateByAtMostBucketWidth) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Record(v);
  }
  Histogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.sum, 500500u);
  // The quantile is the holding bucket's upper bound: never below the true
  // value, at most 12.5% above it.
  EXPECT_GE(snap.Quantile(0.5), 500u);
  EXPECT_LE(snap.Quantile(0.5), 563u);
  EXPECT_GE(snap.Quantile(0.95), 950u);
  EXPECT_LE(snap.Quantile(0.95), 1069u);
  EXPECT_GE(snap.Quantile(0.99), 990u);
  EXPECT_LE(snap.Quantile(0.99), 1114u);
  EXPECT_EQ(Histogram::Snapshot{}.Quantile(0.5), 0u);
}

TEST(ObsHistogram, MergeAddsBuckets) {
  Histogram a;
  Histogram b;
  a.Record(5);
  a.Record(100);
  b.Record(5);
  b.Record(7000);
  a.MergeFrom(b);
  Histogram::Snapshot snap = a.TakeSnapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 5u + 100u + 5u + 7000u);
  EXPECT_EQ(snap.buckets[Histogram::BucketIndex(5)], 2u);
  EXPECT_EQ(snap.buckets[Histogram::BucketIndex(7000)], 1u);
}

TEST(ObsCounter, ConcurrentAddsAreLossless) {
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter.Add();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(ObsRegistry, ExposesCountersGaugesAndHistograms) {
  obs::MetricsRegistry reg;
  reg.GetCounter("test_requests_total", "requests")->Add(41);
  reg.GetCounter("test_requests_total")->Add(1);  // same object by name
  reg.RegisterGauge("test_depth", "queue depth", [] {
    return std::vector<obs::GaugeSample>{{"kind=\"a\"", 3}, {"kind=\"b\"", 4}};
  });
  obs::Histogram* h = reg.GetHistogram("test_latency_ns", "op=\"x\"");
  h->Record(100);
  h->Record(200);

  std::string text = reg.PrometheusText();
  EXPECT_NE(text.find("# TYPE test_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("test_requests_total 42"), std::string::npos);
  EXPECT_NE(text.find("test_depth{kind=\"a\"} 3"), std::string::npos);
  EXPECT_NE(text.find("test_depth{kind=\"b\"} 4"), std::string::npos);
  EXPECT_NE(text.find("test_latency_ns{op=\"x\",quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("test_latency_ns_count{op=\"x\"} 2"), std::string::npos);

  std::string json = reg.Json();
  EXPECT_NE(json.find("\"test_requests_total\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"test_depth\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"test_latency_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
}

TEST(ObsTrace, ScopesNestAndRestore) {
  EXPECT_EQ(obs::CurrentTraceId(), 0u);
  uint64_t a = obs::MintTraceId();
  uint64_t b = obs::MintTraceId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  {
    obs::TraceScope outer(a);
    EXPECT_EQ(obs::CurrentTraceId(), a);
    {
      obs::TraceScope inner(b);
      EXPECT_EQ(obs::CurrentTraceId(), b);
      // Installing 0 keeps the surrounding trace (untraced hops are
      // transparent).
      obs::TraceScope zero(0);
      EXPECT_EQ(obs::CurrentTraceId(), b);
    }
    EXPECT_EQ(obs::CurrentTraceId(), a);
  }
  EXPECT_EQ(obs::CurrentTraceId(), 0u);
}

TEST(ObsTrace, LogRecordsStagesAndEvictsOldest) {
  obs::TraceLog log(4);
  log.Record(0, "rpc");  // trace id 0 is a no-op
  EXPECT_EQ(log.recorded_total(), 0u);

  log.Record(7, "rpc", "revoke-key");
  log.Record(7, "publish");
  EXPECT_TRUE(log.Contains(7));
  EXPECT_TRUE(log.Contains(7, "rpc"));
  EXPECT_TRUE(log.Contains(7, "publish"));
  EXPECT_FALSE(log.Contains(7, "apply"));
  EXPECT_FALSE(log.Contains(8));
  ASSERT_EQ(log.ForTrace(7).size(), 2u);
  EXPECT_EQ(log.ForTrace(7)[0].detail, "revoke-key");

  for (uint64_t id = 100; id < 104; ++id) {
    log.Record(id, "apply");
  }
  EXPECT_FALSE(log.Contains(7));  // evicted by the ring bound
  EXPECT_TRUE(log.Contains(103));
  EXPECT_EQ(log.recorded_total(), 6u);
  EXPECT_EQ(log.Snapshot().size(), 4u);
}

TEST(ObsRecorder, RecordsSpansAndSlowOps) {
  obs::MetricsRegistry reg;
  obs::RpcRecorder recorder(&reg);
  recorder.set_slow_threshold_ns(1000);

  obs::CallTimestamps fast;
  fast.received_ns = 100;
  fast.decoded_ns = 150;
  fast.exec_start_ns = 200;
  fast.exec_end_ns = 700;
  fast.replied_ns = 750;
  recorder.RecordCall(200390, 7, fast, 2, 1, 0);
  EXPECT_EQ(recorder.slow_ops_total(), 0u);

  obs::CallTimestamps slow = fast;
  slow.replied_ns = fast.received_ns + 5000;
  slow.exec_end_ns = fast.exec_start_ns + 4800;
  recorder.RecordCall(200390, 7, slow, 2, 1, /*trace_id=*/99);
  EXPECT_EQ(recorder.slow_ops_total(), 1u);
  ASSERT_EQ(recorder.slow_ops().size(), 1u);
  const obs::SlowOp op = recorder.slow_ops()[0];
  EXPECT_EQ(op.prog, 200390u);
  EXPECT_EQ(op.proc, 7u);
  EXPECT_EQ(op.trace_id, 99u);
  EXPECT_EQ(op.total_ns, 5000u);
  EXPECT_EQ(op.execute_ns, 4800u);

  std::string text = reg.PrometheusText();
  EXPECT_NE(text.find("discfs_rpc_calls_total 2"), std::string::npos);
  EXPECT_NE(
      text.find("discfs_rpc_span_ns{prog=\"200390\",proc=\"7\",span=\"total\""),
      std::string::npos);
  EXPECT_NE(text.find("discfs_rpc_send_queue_depth"), std::string::npos);
}

TEST(ObsServerStats, ScrapesLiveHostOverRpc) {
  DsaPrivateKey admin = DsaPrivateKey::Generate(Dsa512(), TestRand(1));
  DsaPrivateKey bob = DsaPrivateKey::Generate(Dsa512(), TestRand(2));
  DiscfsServerConfig config;
  config.server_key = admin;
  config.rand_bytes = TestRand(99);
  auto host = DiscfsHost::Start(MakeVfs(), std::move(config));
  ASSERT_TRUE(host.ok()) << host.status();

  ChannelIdentity identity{bob, TestRand(10)};
  auto client = DiscfsClient::Connect("127.0.0.1", (*host)->port(), identity,
                                      admin.public_key());
  ASSERT_TRUE(client.ok()) << client.status();

  // A prior RPC guarantees the scrape sees at least one fully recorded
  // call with per-proc quantiles.
  ASSERT_TRUE((*client)->ServerInfo().ok());

  auto text = (*client)->ServerStats(/*json=*/false);
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("discfs_rpc_calls_total"), std::string::npos);
  EXPECT_NE(text->find("discfs_rpc_span_ns{prog=\"200390\""),
            std::string::npos);
  EXPECT_NE(text->find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(text->find("discfs_policy_cache{kind=\"hits\"}"),
            std::string::npos);
  EXPECT_NE(text->find("discfs_host_pool{kind=\"threads\"}"),
            std::string::npos);
  EXPECT_NE(text->find("discfs_block_cache{kind=\"hits\"}"),
            std::string::npos);

  auto json = (*client)->ServerStats(/*json=*/true);
  ASSERT_TRUE(json.ok()) << json.status();
  EXPECT_EQ(json->front(), '{');
  EXPECT_NE(json->find("\"counters\""), std::string::npos);
  EXPECT_NE(json->find("discfs_rpc_span_ns"), std::string::npos);

  (*client)->Close();
}

struct ClusterNode {
  std::shared_ptr<FfsVfs> vfs;
  std::unique_ptr<DiscfsHost> host;
};

ClusterNode StartClusterNode(const DsaPrivateKey& server_key,
                             const std::vector<DsaPublicKey>& trusted_keys,
                             uint64_t seed) {
  ClusterNode node;
  node.vfs = MakeVfs();
  DiscfsServerConfig config;
  config.server_key = server_key;
  config.rand_bytes = TestRand(seed);
  config.cluster_trusted_keys = trusted_keys;
  DiscfsHostOptions options;
  options.worker_threads = 4;
  options.cluster_enabled = true;
  auto host = DiscfsHost::Start(node.vfs, std::move(config), /*port=*/0,
                                std::move(options));
  EXPECT_TRUE(host.ok()) << host.status();
  node.host = std::move(host).value();
  return node;
}

constexpr auto kAckTimeout = std::chrono::milliseconds(10000);

TEST(ObsTracePropagation, ClientRevocationIsTraceableAcrossTwoNodes) {
  DsaPrivateKey key_a = DsaPrivateKey::Generate(Dsa512(), TestRand(1));
  DsaPrivateKey key_b = DsaPrivateKey::Generate(Dsa512(), TestRand(2));
  DsaPrivateKey victim = DsaPrivateKey::Generate(Dsa512(), TestRand(3));
  ClusterNode a = StartClusterNode(key_a, {key_b.public_key()}, 10);
  ClusterNode b = StartClusterNode(key_b, {key_a.public_key()}, 11);
  ASSERT_TRUE(a.host
                  ->AddClusterPeer(
                      {"127.0.0.1", b.host->port(), key_b.public_key()})
                  .ok());

  // The victim connects to A and revokes its own key. The minted trace id
  // rides the RPC trailer to A, then the coherence push to B.
  ChannelIdentity identity{victim, TestRand(20)};
  auto client = DiscfsClient::Connect("127.0.0.1", a.host->port(), identity,
                                      key_a.public_key());
  ASSERT_TRUE(client.ok()) << client.status();
  ASSERT_TRUE((*client)->RevokeOwnKey().ok());
  uint64_t tid = (*client)->last_trace_id();
  ASSERT_NE(tid, 0u);

  ASSERT_TRUE(a.host->fabric()->WaitForAck(1, kAckTimeout));
  EXPECT_TRUE(a.host->server().trace_log().Contains(tid, "rpc"));
  EXPECT_TRUE(a.host->server().trace_log().Contains(tid, "publish"));
  EXPECT_TRUE(b.host->server().trace_log().Contains(tid, "apply"));
  (*client)->Close();
}

TEST(ObsTracePropagation, AntiEntropyBlobCarriesTraceIds) {
  // Serialize-then-merge is exactly the anti-entropy exchange: a traced
  // revocation minted on one server must surface, with the same id, when
  // another server merges the blob.
  DsaPrivateKey key_a = DsaPrivateKey::Generate(Dsa512(), TestRand(1));
  DsaPrivateKey key_b = DsaPrivateKey::Generate(Dsa512(), TestRand(2));
  DiscfsServerConfig config_a;
  config_a.server_key = key_a;
  config_a.rand_bytes = TestRand(30);
  auto server_a = DiscfsServer::Create(MakeVfs(), std::move(config_a));
  ASSERT_TRUE(server_a.ok());
  DiscfsServerConfig config_b;
  config_b.server_key = key_b;
  config_b.rand_bytes = TestRand(31);
  auto server_b = DiscfsServer::Create(MakeVfs(), std::move(config_b));
  ASSERT_TRUE(server_b.ok());

  uint64_t tid = obs::MintTraceId();
  {
    obs::TraceScope scope(tid);
    (*server_a)->RevokeKey("compromised-principal");
  }
  Bytes blob = (*server_a)->SerializeRevocations();
  EXPECT_GT((*server_b)->MergeRevocations(blob), 0u);
  EXPECT_TRUE((*server_b)->trace_log().Contains(tid, "anti-entropy"));
  // Re-merging the same blob is idempotent and records nothing new.
  uint64_t before = (*server_b)->trace_log().recorded_total();
  EXPECT_EQ((*server_b)->MergeRevocations(blob), 0u);
  EXPECT_EQ((*server_b)->trace_log().recorded_total(), before);
}

}  // namespace
}  // namespace discfs
