#include "src/cluster/persistence.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "src/cluster/protocol.h"
#include "src/util/strings.h"
#include "src/wire/xdr.h"

namespace discfs::cluster {
namespace {

constexpr uint32_t kRecordMagic = 0x43524A31;    // "CRJ1"
constexpr uint32_t kSnapshotMagic = 0x43534E31;  // "CSN1"
// v2: SequencedEvent grew an unconditional trace_id field (PR 9). Old
// journals/snapshots fail the version check and are treated as absent
// state — the node starts a fresh incarnation and peers flush once, the
// same recovery path as a corrupt journal.
constexpr uint32_t kFormatVersion = 2;
// The header record's origin field; never a valid node id (ids are
// KeyNote key strings).
constexpr char kHeaderOrigin[] = "\x01journal-header";
constexpr size_t kMaxFramePayload = 1 << 24;

const char* JournalName() { return "journal.log"; }
const char* SnapshotName() { return "snapshot.bin"; }
const char* CleanMarkerName() { return "clean"; }

std::string PathJoin(const std::string& dir, const char* name) {
  return dir + "/" + name;
}

// CRC-32 (IEEE 802.3, reflected), table-driven — the journal's per-frame
// corruption check. No external deps on purpose.
uint32_t Crc32(const uint8_t* data, size_t len) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void PutU32Be(Bytes& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v >> 24));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v));
}

uint32_t GetU32Be(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

// Frame = magic ‖ payload_len ‖ crc32(payload) ‖ payload.
void AppendFrame(Bytes& out, uint32_t magic, const Bytes& payload) {
  PutU32Be(out, magic);
  PutU32Be(out, static_cast<uint32_t>(payload.size()));
  PutU32Be(out, Crc32(payload.data(), payload.size()));
  Append(out, payload);
}

// Parses one frame at `pos`; returns false (without advancing) when the
// remaining bytes do not hold a complete, checksummed frame — the torn or
// corrupt tail recovery truncates at.
bool ReadFrame(const Bytes& data, size_t* pos, uint32_t expected_magic,
               Bytes* payload) {
  if (data.size() - *pos < 12) {
    return false;
  }
  const uint8_t* p = data.data() + *pos;
  if (GetU32Be(p) != expected_magic) {
    return false;
  }
  uint32_t len = GetU32Be(p + 4);
  uint32_t crc = GetU32Be(p + 8);
  if (len > kMaxFramePayload || data.size() - *pos - 12 < len) {
    return false;
  }
  if (Crc32(p + 12, len) != crc) {
    return false;
  }
  payload->assign(p + 12, p + 12 + len);
  *pos += 12 + static_cast<size_t>(len);
  return true;
}

Bytes EncodeRecordPayload(const CoherenceStore::Record& record) {
  XdrWriter w;
  w.PutString(record.origin);
  w.PutU64(record.incarnation);
  EncodeSequencedEvent(w, record.entry);
  return w.Take();
}

Result<CoherenceStore::Record> DecodeRecordPayload(const Bytes& payload) {
  XdrReader r(payload);
  CoherenceStore::Record record;
  ASSIGN_OR_RETURN(record.origin, r.GetString());
  ASSIGN_OR_RETURN(record.incarnation, r.GetU64());
  ASSIGN_OR_RETURN(record.entry, DecodeSequencedEvent(r));
  return record;
}

Bytes EncodeHeaderPayload(FsyncPolicy fsync) {
  XdrWriter w;
  w.PutString(kHeaderOrigin);
  w.PutU32(kFormatVersion);
  w.PutU32(static_cast<uint32_t>(fsync));
  return w.Take();
}

Result<Bytes> ReadWholeFile(const std::string& path, bool* exists) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    *exists = errno != ENOENT;
    if (errno == ENOENT) {
      return Bytes();
    }
    return UnavailableError(
        StrPrintf("open %s: %s", path.c_str(), strerror(errno)));
  }
  *exists = true;
  Bytes out;
  uint8_t buf[1 << 16];
  while (true) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      ::close(fd);
      return UnavailableError(
          StrPrintf("read %s: %s", path.c_str(), strerror(errno)));
    }
    if (n == 0) {
      break;
    }
    Append(out, buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

// write-to-temp, optional fsync, rename: readers see either the old file
// or the complete new one, never a partial write.
Status ReplaceFile(const std::string& path, const Bytes& data, bool sync) {
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return UnavailableError(
        StrPrintf("open %s: %s", tmp.c_str(), strerror(errno)));
  }
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return UnavailableError(
          StrPrintf("write %s: %s", tmp.c_str(), strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  if (sync && ::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return UnavailableError(StrPrintf("fsync %s: %s", tmp.c_str(),
                                      strerror(errno)));
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return UnavailableError(
        StrPrintf("close %s: %s", tmp.c_str(), strerror(errno)));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return UnavailableError(StrPrintf("rename %s -> %s: %s", tmp.c_str(),
                                      path.c_str(), strerror(errno)));
  }
  return OkStatus();
}

}  // namespace

CoherenceStore::CoherenceStore(Options options)
    : options_(std::move(options)) {}

CoherenceStore::~CoherenceStore() {
  std::lock_guard<std::mutex> lock(mu_);
  if (journal_fd_ >= 0) {
    ::close(journal_fd_);
    journal_fd_ = -1;
  }
}

Result<std::unique_ptr<CoherenceStore>> CoherenceStore::Open(
    Options options, Recovered* recovered) {
  *recovered = Recovered{};
  if (options.dir.empty() || options.node_id.empty()) {
    return InvalidArgumentError("coherence store needs a dir and node id");
  }
  if (::mkdir(options.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return UnavailableError(StrPrintf("mkdir %s: %s", options.dir.c_str(),
                                      strerror(errno)));
  }
  auto store =
      std::unique_ptr<CoherenceStore>(new CoherenceStore(std::move(options)));
  const Options& opts = store->options_;

  // The marker is consumed whether or not it was honored: this run is now
  // live, and only its own shutdown snapshot may re-assert cleanliness.
  std::string marker = PathJoin(opts.dir, CleanMarkerName());
  bool had_marker = ::unlink(marker.c_str()) == 0;

  // --- snapshot ---
  bool snap_exists = false;
  ASSIGN_OR_RETURN(Bytes snap,
                   ReadWholeFile(PathJoin(opts.dir, SnapshotName()),
                                 &snap_exists));
  bool snap_ok = false;
  if (!snap.empty()) {
    size_t pos = 0;
    Bytes payload;
    if (ReadFrame(snap, &pos, kSnapshotMagic, &payload)) {
      XdrReader r(payload);
      auto version = r.GetU32();
      if (version.ok() && *version == kFormatVersion) {
        auto inc = r.GetU64();
        auto head = r.GetU64();
        auto count = r.GetU32();
        snap_ok = inc.ok() && head.ok() && count.ok();
        if (snap_ok) {
          recovered->incarnation = *inc;
          recovered->head_seq = *head;
          for (uint32_t i = 0; snap_ok && i < *count; ++i) {
            auto origin = r.GetString();
            auto oinc = r.GetU64();
            auto cursor = r.GetU64();
            snap_ok = origin.ok() && oinc.ok() && cursor.ok();
            if (snap_ok) {
              recovered->cursors[*origin] = RecoveredOrigin{*oinc, *cursor};
            }
          }
          auto state = r.GetOpaque();
          snap_ok = snap_ok && state.ok();
          if (snap_ok) {
            recovered->server_state = std::move(state).value();
          }
        }
      }
    }
    if (!snap_ok) {
      *recovered = Recovered{};  // a corrupt snapshot recovers nothing
    }
  }

  // --- journal ---
  bool journal_exists = false;
  ASSIGN_OR_RETURN(Bytes journal,
                   ReadWholeFile(PathJoin(opts.dir, JournalName()),
                                 &journal_exists));
  size_t pos = 0;
  bool saw_header = false;
  Bytes payload;
  while (ReadFrame(journal, &pos, kRecordMagic, &payload)) {
    // The header frame shares the record magic but not the record layout
    // (origin ‖ version ‖ fsync policy), so classify by origin before
    // attempting the record decode.
    XdrReader peek(payload);
    auto origin = peek.GetString();
    if (!origin.ok()) {
      break;  // structurally valid frame, bad payload: truncate here
    }
    if (*origin == kHeaderOrigin) {
      if (!saw_header) {
        saw_header = true;
        auto version = peek.GetU32();
        auto fsync = peek.GetU32();
        recovered->durable_journal =
            version.ok() && *version == kFormatVersion && fsync.ok() &&
            *fsync == static_cast<uint32_t>(FsyncPolicy::kAlways);
      }
      continue;
    }
    auto record = DecodeRecordPayload(payload);
    if (!record.ok()) {
      break;
    }
    recovered->records.push_back(std::move(record).value());
  }
  recovered->torn_tail = pos < journal.size();

  // Own records extend the recoverable head past the snapshot.
  for (const Record& record : recovered->records) {
    if (record.origin == opts.node_id) {
      if (recovered->incarnation == 0) {
        recovered->incarnation = record.incarnation;
      }
      if (record.entry.seq > recovered->head_seq) {
        recovered->head_seq = record.entry.seq;
      }
    }
  }

  recovered->had_state =
      snap_ok || !recovered->records.empty() || recovered->torn_tail;
  recovered->clean = had_marker && snap_ok && !recovered->torn_tail;

  {
    std::lock_guard<std::mutex> lock(store->mu_);
    RETURN_IF_ERROR(store->OpenJournalLocked(/*truncate=*/false));
    store->journal_records_ = recovered->records.size();
    if (!journal_exists || !saw_header || recovered->torn_tail) {
      // Fresh journal, pre-v1 file, or a torn tail: rewrite so appends
      // never land after garbage. The recovered prefix is re-framed.
      Bytes fresh;
      AppendFrame(fresh, kRecordMagic, EncodeHeaderPayload(opts.fsync));
      for (const Record& record : recovered->records) {
        AppendFrame(fresh, kRecordMagic, EncodeRecordPayload(record));
      }
      RETURN_IF_ERROR(ReplaceFile(PathJoin(opts.dir, JournalName()), fresh,
                                  opts.fsync == FsyncPolicy::kAlways));
      RETURN_IF_ERROR(store->OpenJournalLocked(/*truncate=*/false));
    }
  }
  return store;
}

Status CoherenceStore::OpenJournalLocked(bool truncate) {
  if (journal_fd_ >= 0) {
    ::close(journal_fd_);
    journal_fd_ = -1;
  }
  int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
  if (truncate) {
    flags |= O_TRUNC;
  }
  std::string path = PathJoin(options_.dir, JournalName());
  journal_fd_ = ::open(path.c_str(), flags, 0644);
  if (journal_fd_ < 0) {
    return UnavailableError(
        StrPrintf("open %s: %s", path.c_str(), strerror(errno)));
  }
  return OkStatus();
}

Status CoherenceStore::FlushLocked(const Bytes& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(journal_fd_, data.data() + off, data.size() - off);
    if (n < 0) {
      return UnavailableError(
          StrPrintf("journal write: %s", strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  if (options_.fsync == FsyncPolicy::kAlways && ::fsync(journal_fd_) != 0) {
    return UnavailableError(StrPrintf("journal fsync: %s", strerror(errno)));
  }
  return OkStatus();
}

Status CoherenceStore::AppendLocked(const Record& record, Bytes* frame_buf) {
  AppendFrame(*frame_buf, kRecordMagic, EncodeRecordPayload(record));
  ++journal_records_;
  return OkStatus();
}

Status CoherenceStore::Append(const Record& record) {
  std::lock_guard<std::mutex> lock(mu_);
  Bytes frame;
  RETURN_IF_ERROR(AppendLocked(record, &frame));
  return FlushLocked(frame);
}

Status CoherenceStore::AppendBatch(const std::vector<Record>& records) {
  if (records.empty()) {
    return OkStatus();
  }
  std::lock_guard<std::mutex> lock(mu_);
  Bytes frames;
  for (const Record& record : records) {
    RETURN_IF_ERROR(AppendLocked(record, &frames));
  }
  return FlushLocked(frames);
}

Status CoherenceStore::WriteSnapshot(
    const SnapshotData& data, const std::vector<SequencedEvent>& own_tail,
    bool clean) {
  XdrWriter w;
  w.PutU32(kFormatVersion);
  w.PutU64(data.incarnation);
  w.PutU64(data.head_seq);
  w.PutU32(static_cast<uint32_t>(data.cursors.size()));
  for (const auto& [origin, state] : data.cursors) {
    w.PutString(origin);
    w.PutU64(state.incarnation);
    w.PutU64(state.cursor);
  }
  w.PutOpaque(data.server_state);
  Bytes snapshot;
  AppendFrame(snapshot, kSnapshotMagic, w.Take());

  Bytes journal;
  AppendFrame(journal, kRecordMagic, EncodeHeaderPayload(options_.fsync));
  size_t first = own_tail.size() > options_.own_retain
                     ? own_tail.size() - options_.own_retain
                     : 0;
  Record record;
  record.origin = options_.node_id;
  record.incarnation = data.incarnation;
  for (size_t i = first; i < own_tail.size(); ++i) {
    record.entry = own_tail[i];
    AppendFrame(journal, kRecordMagic, EncodeRecordPayload(record));
  }

  const bool sync = clean || options_.fsync == FsyncPolicy::kAlways;
  std::lock_guard<std::mutex> lock(mu_);
  // Snapshot before journal rewrite (see header comment on crash safety).
  RETURN_IF_ERROR(
      ReplaceFile(PathJoin(options_.dir, SnapshotName()), snapshot, sync));
  RETURN_IF_ERROR(
      ReplaceFile(PathJoin(options_.dir, JournalName()), journal, sync));
  RETURN_IF_ERROR(OpenJournalLocked(/*truncate=*/false));
  journal_records_ = own_tail.size() - first;
  ++snapshots_written_;
  if (clean) {
    RETURN_IF_ERROR(ReplaceFile(PathJoin(options_.dir, CleanMarkerName()),
                                ToBytes("clean\n"), sync));
  }
  return OkStatus();
}

Status CoherenceStore::ResetFresh() {
  std::lock_guard<std::mutex> lock(mu_);
  ::unlink(PathJoin(options_.dir, SnapshotName()).c_str());
  ::unlink(PathJoin(options_.dir, CleanMarkerName()).c_str());
  Bytes journal;
  AppendFrame(journal, kRecordMagic, EncodeHeaderPayload(options_.fsync));
  RETURN_IF_ERROR(ReplaceFile(PathJoin(options_.dir, JournalName()), journal,
                              options_.fsync == FsyncPolicy::kAlways));
  RETURN_IF_ERROR(OpenJournalLocked(/*truncate=*/false));
  journal_records_ = 0;
  return OkStatus();
}

uint64_t CoherenceStore::journal_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return journal_records_;
}

uint64_t CoherenceStore::snapshots_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshots_written_;
}

}  // namespace discfs::cluster
