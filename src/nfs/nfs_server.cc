#include "src/nfs/nfs_server.h"

#include <mutex>

#include "src/util/strings.h"

namespace discfs {
namespace {

constexpr uint32_t kR = 4;
constexpr uint32_t kW = 2;
constexpr uint32_t kX = 1;

constexpr uint32_t kMaxReadCount = 1 << 22;  // 4 MiB per READ

}  // namespace

Result<InodeAttr> NfsServer::CheckFh(const NfsFh& fh) {
  auto attr = vfs_->GetAttr(fh.inode);
  if (!attr.ok()) {
    return NotFoundError("stale file handle (no such inode)");
  }
  if (attr->generation != fh.generation) {
    return NotFoundError("stale file handle (generation mismatch)");
  }
  return attr;
}

Status NfsServer::RunHook(NfsProc proc, const NfsFh& fh, uint32_t needed,
                          const RpcContext& ctx) {
  if (!access_hook_) {
    return OkStatus();
  }
  NfsAccessRequest request;
  request.proc = proc;
  request.fh = fh;
  request.needed = needed;
  request.ctx = &ctx;
  return access_hook_(request);
}

Result<NfsFattr> NfsServer::GetRoot() {
  std::shared_lock<std::shared_mutex> ns(ns_mu_);
  std::shared_lock<std::shared_mutex> stripe(StripeFor(vfs_->root()));
  ASSIGN_OR_RETURN(InodeAttr attr, vfs_->GetAttr(vfs_->root()));
  return FattrFromInode(attr);
}

Result<NfsFattr> NfsServer::GetAttr(const NfsFh& fh) {
  std::shared_lock<std::shared_mutex> ns(ns_mu_);
  std::shared_lock<std::shared_mutex> stripe(StripeFor(fh.inode));
  ASSIGN_OR_RETURN(InodeAttr attr, CheckFh(fh));
  return FattrFromInode(attr);
}

Result<NfsFattr> NfsServer::SetAttr(const NfsFh& fh,
                                    const SetAttrRequest& req) {
  std::shared_lock<std::shared_mutex> ns(ns_mu_);
  std::unique_lock<std::shared_mutex> stripe(StripeFor(fh.inode));
  RETURN_IF_ERROR(CheckFh(fh).status());
  RETURN_IF_ERROR(vfs_->SetAttr(fh.inode, req));
  ASSIGN_OR_RETURN(InodeAttr attr, vfs_->GetAttr(fh.inode));
  return FattrFromInode(attr);
}

Result<NfsFattr> NfsServer::Lookup(const NfsFh& dir, const std::string& name) {
  std::shared_lock<std::shared_mutex> ns(ns_mu_);
  std::shared_lock<std::shared_mutex> stripe(StripeFor(dir.inode));
  RETURN_IF_ERROR(CheckFh(dir).status());
  ASSIGN_OR_RETURN(InodeAttr attr, vfs_->Lookup(dir.inode, name));
  return FattrFromInode(attr);
}

Result<Bytes> NfsServer::Read(const NfsFh& fh, uint64_t offset,
                              uint32_t count) {
  std::shared_lock<std::shared_mutex> ns(ns_mu_);
  std::shared_lock<std::shared_mutex> stripe(StripeFor(fh.inode));
  RETURN_IF_ERROR(CheckFh(fh).status());
  if (count > kMaxReadCount) {
    return InvalidArgumentError("read count too large");
  }
  Bytes out(count);
  ASSIGN_OR_RETURN(size_t n, vfs_->Read(fh.inode, offset, count, out.data()));
  out.resize(n);
  return out;
}

Result<NfsFattr> NfsServer::Write(const NfsFh& fh, uint64_t offset,
                                  const Bytes& data) {
  std::shared_lock<std::shared_mutex> ns(ns_mu_);
  std::unique_lock<std::shared_mutex> stripe(StripeFor(fh.inode));
  RETURN_IF_ERROR(CheckFh(fh).status());
  ASSIGN_OR_RETURN(size_t n,
                   vfs_->Write(fh.inode, offset, data.data(), data.size()));
  if (n != data.size()) {
    return IoError("short write");
  }
  ASSIGN_OR_RETURN(InodeAttr attr, vfs_->GetAttr(fh.inode));
  return FattrFromInode(attr);
}

Result<NfsFattr> NfsServer::Create(const NfsFh& dir, const std::string& name,
                                   uint32_t mode) {
  std::unique_lock<std::shared_mutex> ns(ns_mu_);
  RETURN_IF_ERROR(CheckFh(dir).status());
  ASSIGN_OR_RETURN(InodeAttr attr, vfs_->Create(dir.inode, name, mode));
  return FattrFromInode(attr);
}

Result<NfsFattr> NfsServer::Mkdir(const NfsFh& dir, const std::string& name,
                                  uint32_t mode) {
  std::unique_lock<std::shared_mutex> ns(ns_mu_);
  RETURN_IF_ERROR(CheckFh(dir).status());
  ASSIGN_OR_RETURN(InodeAttr attr, vfs_->Mkdir(dir.inode, name, mode));
  return FattrFromInode(attr);
}

Status NfsServer::Remove(const NfsFh& dir, const std::string& name) {
  std::unique_lock<std::shared_mutex> ns(ns_mu_);
  RETURN_IF_ERROR(CheckFh(dir).status());
  return vfs_->Remove(dir.inode, name);
}

Status NfsServer::Rmdir(const NfsFh& dir, const std::string& name) {
  std::unique_lock<std::shared_mutex> ns(ns_mu_);
  RETURN_IF_ERROR(CheckFh(dir).status());
  return vfs_->Rmdir(dir.inode, name);
}

Status NfsServer::Rename(const NfsFh& from_dir, const std::string& from_name,
                         const NfsFh& to_dir, const std::string& to_name) {
  std::unique_lock<std::shared_mutex> ns(ns_mu_);
  RETURN_IF_ERROR(CheckFh(from_dir).status());
  RETURN_IF_ERROR(CheckFh(to_dir).status());
  return vfs_->Rename(from_dir.inode, from_name, to_dir.inode, to_name);
}

Status NfsServer::Link(const NfsFh& dir, const std::string& name,
                       const NfsFh& target) {
  std::unique_lock<std::shared_mutex> ns(ns_mu_);
  RETURN_IF_ERROR(CheckFh(dir).status());
  RETURN_IF_ERROR(CheckFh(target).status());
  return vfs_->Link(dir.inode, name, target.inode);
}

Result<NfsFattr> NfsServer::Symlink(const NfsFh& dir, const std::string& name,
                                    const std::string& target) {
  std::unique_lock<std::shared_mutex> ns(ns_mu_);
  RETURN_IF_ERROR(CheckFh(dir).status());
  ASSIGN_OR_RETURN(InodeAttr attr, vfs_->Symlink(dir.inode, name, target));
  return FattrFromInode(attr);
}

Result<std::string> NfsServer::ReadLink(const NfsFh& fh) {
  std::shared_lock<std::shared_mutex> ns(ns_mu_);
  std::shared_lock<std::shared_mutex> stripe(StripeFor(fh.inode));
  RETURN_IF_ERROR(CheckFh(fh).status());
  return vfs_->ReadLink(fh.inode);
}

Result<std::vector<NfsDirEntry>> NfsServer::ReadDir(const NfsFh& dir) {
  std::shared_lock<std::shared_mutex> ns(ns_mu_);
  std::shared_lock<std::shared_mutex> stripe(StripeFor(dir.inode));
  RETURN_IF_ERROR(CheckFh(dir).status());
  ASSIGN_OR_RETURN(std::vector<DirEntry> raw, vfs_->ReadDir(dir.inode));
  std::vector<NfsDirEntry> entries;
  entries.reserve(raw.size());
  for (const DirEntry& e : raw) {
    // Each entry carries a full handle so clients can chain operations
    // without extra LOOKUPs.
    auto attr = vfs_->GetAttr(e.inode);
    if (!attr.ok()) {
      continue;  // raced with a concurrent remove
    }
    entries.push_back(
        NfsDirEntry{e.name, NfsFh{attr->inode, attr->generation}, e.type});
  }
  return entries;
}

Result<NfsStatFs> NfsServer::StatFs() {
  std::shared_lock<std::shared_mutex> ns(ns_mu_);
  ASSIGN_OR_RETURN(StatFsInfo info, vfs_->StatFs());
  NfsStatFs out;
  out.block_size = info.block_size;
  out.total_blocks = info.total_blocks;
  out.free_blocks = info.free_blocks;
  out.total_inodes = info.total_inodes;
  out.free_inodes = info.free_inodes;
  return out;
}

void NfsServer::RegisterAll(RpcDispatcher& dispatcher) {
  auto reg = [&](NfsProc proc, auto handler) {
    dispatcher.Register(
        kNfsProgram, static_cast<uint32_t>(proc),
        [this, handler](const Bytes& args,
                        const RpcContext& ctx) -> Result<Bytes> {
          ++ops_served_;
          return handler(args, ctx);
        });
  };

  reg(NfsProc::kNull,
      [](const Bytes&, const RpcContext&) -> Result<Bytes> {
        return Bytes();
      });

  reg(NfsProc::kGetRoot,
      [this](const Bytes&, const RpcContext&) -> Result<Bytes> {
        ASSIGN_OR_RETURN(NfsFattr attr, GetRoot());
        XdrWriter w;
        WriteFattr(w, attr);
        return w.Take();
      });

  reg(NfsProc::kGetAttr,
      [this](const Bytes& args, const RpcContext& ctx) -> Result<Bytes> {
        XdrReader r(args);
        ASSIGN_OR_RETURN(NfsFh fh, ReadFh(r));
        RETURN_IF_ERROR(RunHook(NfsProc::kGetAttr, fh, 0, ctx));
        ASSIGN_OR_RETURN(NfsFattr attr, GetAttr(fh));
        XdrWriter w;
        WriteFattr(w, attr);
        return w.Take();
      });

  reg(NfsProc::kSetAttr,
      [this](const Bytes& args, const RpcContext& ctx) -> Result<Bytes> {
        XdrReader r(args);
        ASSIGN_OR_RETURN(NfsFh fh, ReadFh(r));
        ASSIGN_OR_RETURN(SetAttrRequest req, ReadSetAttr(r));
        RETURN_IF_ERROR(RunHook(NfsProc::kSetAttr, fh, kW, ctx));
        ASSIGN_OR_RETURN(NfsFattr attr, SetAttr(fh, req));
        XdrWriter w;
        WriteFattr(w, attr);
        return w.Take();
      });

  reg(NfsProc::kLookup,
      [this](const Bytes& args, const RpcContext& ctx) -> Result<Bytes> {
        XdrReader r(args);
        ASSIGN_OR_RETURN(NfsFh dir, ReadFh(r));
        ASSIGN_OR_RETURN(std::string name, r.GetString());
        RETURN_IF_ERROR(RunHook(NfsProc::kLookup, dir, kX, ctx));
        ASSIGN_OR_RETURN(NfsFattr attr, Lookup(dir, name));
        XdrWriter w;
        WriteFattr(w, attr);
        return w.Take();
      });

  reg(NfsProc::kReadLink,
      [this](const Bytes& args, const RpcContext& ctx) -> Result<Bytes> {
        XdrReader r(args);
        ASSIGN_OR_RETURN(NfsFh fh, ReadFh(r));
        RETURN_IF_ERROR(RunHook(NfsProc::kReadLink, fh, kR, ctx));
        ASSIGN_OR_RETURN(std::string target, ReadLink(fh));
        XdrWriter w;
        w.PutString(target);
        return w.Take();
      });

  reg(NfsProc::kRead,
      [this](const Bytes& args, const RpcContext& ctx) -> Result<Bytes> {
        XdrReader r(args);
        ASSIGN_OR_RETURN(NfsFh fh, ReadFh(r));
        ASSIGN_OR_RETURN(uint64_t offset, r.GetU64());
        ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
        RETURN_IF_ERROR(RunHook(NfsProc::kRead, fh, kR, ctx));
        ASSIGN_OR_RETURN(Bytes data, Read(fh, offset, count));
        XdrWriter w;
        w.PutOpaque(data);
        return w.Take();
      });

  reg(NfsProc::kWrite,
      [this](const Bytes& args, const RpcContext& ctx) -> Result<Bytes> {
        XdrReader r(args);
        ASSIGN_OR_RETURN(NfsFh fh, ReadFh(r));
        ASSIGN_OR_RETURN(uint64_t offset, r.GetU64());
        ASSIGN_OR_RETURN(Bytes data, r.GetOpaque());
        RETURN_IF_ERROR(RunHook(NfsProc::kWrite, fh, kW, ctx));
        ASSIGN_OR_RETURN(NfsFattr attr, Write(fh, offset, data));
        XdrWriter w;
        WriteFattr(w, attr);
        return w.Take();
      });

  reg(NfsProc::kCreate,
      [this](const Bytes& args, const RpcContext& ctx) -> Result<Bytes> {
        XdrReader r(args);
        ASSIGN_OR_RETURN(NfsFh dir, ReadFh(r));
        ASSIGN_OR_RETURN(std::string name, r.GetString());
        ASSIGN_OR_RETURN(uint32_t mode, r.GetU32());
        RETURN_IF_ERROR(RunHook(NfsProc::kCreate, dir, kW, ctx));
        ASSIGN_OR_RETURN(NfsFattr attr, Create(dir, name, mode));
        XdrWriter w;
        WriteFattr(w, attr);
        return w.Take();
      });

  reg(NfsProc::kRemove,
      [this](const Bytes& args, const RpcContext& ctx) -> Result<Bytes> {
        XdrReader r(args);
        ASSIGN_OR_RETURN(NfsFh dir, ReadFh(r));
        ASSIGN_OR_RETURN(std::string name, r.GetString());
        RETURN_IF_ERROR(RunHook(NfsProc::kRemove, dir, kW, ctx));
        RETURN_IF_ERROR(Remove(dir, name));
        return Bytes();
      });

  reg(NfsProc::kRename,
      [this](const Bytes& args, const RpcContext& ctx) -> Result<Bytes> {
        XdrReader r(args);
        ASSIGN_OR_RETURN(NfsFh from_dir, ReadFh(r));
        ASSIGN_OR_RETURN(std::string from_name, r.GetString());
        ASSIGN_OR_RETURN(NfsFh to_dir, ReadFh(r));
        ASSIGN_OR_RETURN(std::string to_name, r.GetString());
        RETURN_IF_ERROR(RunHook(NfsProc::kRename, from_dir, kW, ctx));
        RETURN_IF_ERROR(RunHook(NfsProc::kRename, to_dir, kW, ctx));
        RETURN_IF_ERROR(Rename(from_dir, from_name, to_dir, to_name));
        return Bytes();
      });

  reg(NfsProc::kLink,
      [this](const Bytes& args, const RpcContext& ctx) -> Result<Bytes> {
        XdrReader r(args);
        ASSIGN_OR_RETURN(NfsFh dir, ReadFh(r));
        ASSIGN_OR_RETURN(std::string name, r.GetString());
        ASSIGN_OR_RETURN(NfsFh target, ReadFh(r));
        RETURN_IF_ERROR(RunHook(NfsProc::kLink, dir, kW, ctx));
        RETURN_IF_ERROR(RunHook(NfsProc::kLink, target, kR, ctx));
        RETURN_IF_ERROR(Link(dir, name, target));
        return Bytes();
      });

  reg(NfsProc::kSymlink,
      [this](const Bytes& args, const RpcContext& ctx) -> Result<Bytes> {
        XdrReader r(args);
        ASSIGN_OR_RETURN(NfsFh dir, ReadFh(r));
        ASSIGN_OR_RETURN(std::string name, r.GetString());
        ASSIGN_OR_RETURN(std::string target, r.GetString());
        RETURN_IF_ERROR(RunHook(NfsProc::kSymlink, dir, kW, ctx));
        ASSIGN_OR_RETURN(NfsFattr attr, Symlink(dir, name, target));
        XdrWriter w;
        WriteFattr(w, attr);
        return w.Take();
      });

  reg(NfsProc::kMkdir,
      [this](const Bytes& args, const RpcContext& ctx) -> Result<Bytes> {
        XdrReader r(args);
        ASSIGN_OR_RETURN(NfsFh dir, ReadFh(r));
        ASSIGN_OR_RETURN(std::string name, r.GetString());
        ASSIGN_OR_RETURN(uint32_t mode, r.GetU32());
        RETURN_IF_ERROR(RunHook(NfsProc::kMkdir, dir, kW, ctx));
        ASSIGN_OR_RETURN(NfsFattr attr, Mkdir(dir, name, mode));
        XdrWriter w;
        WriteFattr(w, attr);
        return w.Take();
      });

  reg(NfsProc::kRmdir,
      [this](const Bytes& args, const RpcContext& ctx) -> Result<Bytes> {
        XdrReader r(args);
        ASSIGN_OR_RETURN(NfsFh dir, ReadFh(r));
        ASSIGN_OR_RETURN(std::string name, r.GetString());
        RETURN_IF_ERROR(RunHook(NfsProc::kRmdir, dir, kW, ctx));
        RETURN_IF_ERROR(Rmdir(dir, name));
        return Bytes();
      });

  reg(NfsProc::kReadDir,
      [this](const Bytes& args, const RpcContext& ctx) -> Result<Bytes> {
        XdrReader r(args);
        ASSIGN_OR_RETURN(NfsFh dir, ReadFh(r));
        RETURN_IF_ERROR(RunHook(NfsProc::kReadDir, dir, kR, ctx));
        ASSIGN_OR_RETURN(std::vector<NfsDirEntry> entries, ReadDir(dir));
        XdrWriter w;
        WriteDirEntries(w, entries);
        return w.Take();
      });

  reg(NfsProc::kStatFs,
      [this](const Bytes&, const RpcContext&) -> Result<Bytes> {
        ASSIGN_OR_RETURN(NfsStatFs info, StatFs());
        XdrWriter w;
        WriteStatFs(w, info);
        return w.Take();
      });
}

}  // namespace discfs
