// Figure 9: Bonnie Sequential Output (Rewrite) — FFS vs CFS-NE vs DisCFS.
#include "bench/bonnie_main.h"

int main() {
  return discfs::bench::RunBonnieFigure(
      "Figure 9", discfs::bench::BonniePhase::kSeqRewrite);
}
