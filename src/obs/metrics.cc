#include "src/obs/metrics.h"

#include <time.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>

namespace discfs::obs {
namespace {

// Round-robin shard assignment per thread: cheaper and better distributed
// than hashing thread ids, and stable for a thread's lifetime.
std::atomic<size_t> g_next_shard{0};

size_t ThisThreadShard() {
  static thread_local size_t shard =
      g_next_shard.fetch_add(1, std::memory_order_relaxed);
  return shard;
}

std::string FormatDouble(double v) {
  // Integers print without a fraction so counter values stay exact.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

uint64_t MonotonicNanos() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

// ----------------------------------------------------------------- counter

void Counter::Add(uint64_t n) {
  shards_[ThisThreadShard() & (kShards - 1)].value.fetch_add(
      n, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

// --------------------------------------------------------------- histogram

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) {
    return static_cast<size_t>(value);  // exact buckets 0..7
  }
  int msb = 63 - __builtin_clzll(value);
  int octave = msb - kSubBucketBits;  // 0-based beyond the exact range
  return kSubBuckets + static_cast<size_t>(octave) * kSubBuckets +
         static_cast<size_t>((value >> octave) & (kSubBuckets - 1));
}

uint64_t Histogram::BucketLowerBound(size_t index) {
  if (index < kSubBuckets) {
    return index;
  }
  size_t octave = (index - kSubBuckets) / kSubBuckets;
  uint64_t position = (index - kSubBuckets) % kSubBuckets;
  return (kSubBuckets + position) << octave;
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index + 1 >= kNumBuckets) {
    return ~0ull;
  }
  return BucketLowerBound(index + 1) - 1;
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  snap.buckets.resize(kNumBuckets);
  // Per-bucket relaxed loads: the snapshot is a sample, not a barrier; the
  // count is recomputed from the copied buckets so count and buckets agree
  // with each other even while writers race.
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

uint64_t Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) {
    return 0;
  }
  q = std::min(1.0, std::max(0.0, q));
  uint64_t target = static_cast<uint64_t>(std::ceil(q * count));
  if (target == 0) {
    target = 1;
  }
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= target) {
      return Histogram::BucketUpperBound(i);
    }
  }
  return Histogram::BucketUpperBound(buckets.size() - 1);
}

void Histogram::MergeFrom(const Histogram& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) {
    uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) {
      buckets_[i].fetch_add(n, std::memory_order_relaxed);
    }
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
}

// ---------------------------------------------------------------- registry

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
    if (!help.empty()) {
      help_[name] = help;
    }
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& labels,
                                         const std::string& help) {
  std::string key = name + "{" + labels + "}";
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    HistogramEntry entry;
    entry.name = name;
    entry.labels = labels;
    entry.histogram = std::make_unique<Histogram>();
    it = histograms_.emplace(std::move(key), std::move(entry)).first;
    if (!help.empty()) {
      help_[name] = help;
    }
  }
  return it->second.histogram.get();
}

void MetricsRegistry::RegisterGauge(const std::string& name,
                                    const std::string& help, GaugeFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!help.empty()) {
    help_[name] = help;
  }
  gauges_.push_back({name, help, std::move(fn)});
}

namespace {

// Scrape-time flattening of the registry's live objects: everything is
// copied or evaluated into plain values first, so formatting (and gauge
// callbacks, which may take subsystem locks) runs with no registry lock
// held.
struct Flattened {
  std::vector<std::pair<std::string, uint64_t>> counters;
  struct Hist {
    std::string name;
    std::string labels;
    Histogram::Snapshot snap;
  };
  std::vector<Hist> histograms;
  struct Gauge {
    std::string name;
    std::vector<GaugeSample> samples;
  };
  std::vector<Gauge> gauges;
  std::map<std::string, std::string> help;
};

}  // namespace

std::string MetricsRegistry::PrometheusText() const {
  Flattened flat;
  std::vector<GaugeEntry> gauge_fns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, counter] : counters_) {
      flat.counters.emplace_back(name, counter->Value());
    }
    for (const auto& [key, entry] : histograms_) {
      flat.histograms.push_back(
          {entry.name, entry.labels, entry.histogram->TakeSnapshot()});
    }
    gauge_fns = gauges_;
    flat.help = help_;
  }
  for (const GaugeEntry& gauge : gauge_fns) {
    flat.gauges.push_back({gauge.name, gauge.fn()});
  }

  std::string out;
  out.reserve(4096);
  auto help_line = [&](const std::string& name, const char* type) {
    auto it = flat.help.find(name);
    if (it != flat.help.end()) {
      out += "# HELP " + name + " " + it->second + "\n";
    }
    out += "# TYPE " + name + " " + type + "\n";
  };
  for (const auto& [name, value] : flat.counters) {
    help_line(name, "counter");
    out += name + " " + std::to_string(value) + "\n";
  }
  std::string last_gauge_name;
  for (const auto& gauge : flat.gauges) {
    if (gauge.name != last_gauge_name) {
      help_line(gauge.name, "gauge");
      last_gauge_name = gauge.name;
    }
    for (const GaugeSample& sample : gauge.samples) {
      out += gauge.name;
      if (!sample.labels.empty()) {
        out += "{" + sample.labels + "}";
      }
      out += " " + FormatDouble(sample.value) + "\n";
    }
  }
  std::string last_hist_name;
  for (const auto& hist : flat.histograms) {
    if (hist.name != last_hist_name) {
      help_line(hist.name, "summary");
      last_hist_name = hist.name;
    }
    auto quantile_line = [&](const char* q, double qv) {
      out += hist.name + "{";
      if (!hist.labels.empty()) {
        out += hist.labels + ",";
      }
      out += std::string("quantile=\"") + q + "\"} " +
             std::to_string(hist.snap.Quantile(qv)) + "\n";
    };
    quantile_line("0.5", 0.5);
    quantile_line("0.95", 0.95);
    quantile_line("0.99", 0.99);
    std::string label_suffix =
        hist.labels.empty() ? "" : "{" + hist.labels + "}";
    out += hist.name + "_sum" + label_suffix + " " +
           std::to_string(hist.snap.sum) + "\n";
    out += hist.name + "_count" + label_suffix + " " +
           std::to_string(hist.snap.count) + "\n";
  }
  return out;
}

std::string MetricsRegistry::Json() const {
  Flattened flat;
  std::vector<GaugeEntry> gauge_fns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, counter] : counters_) {
      flat.counters.emplace_back(name, counter->Value());
    }
    for (const auto& [key, entry] : histograms_) {
      flat.histograms.push_back(
          {entry.name, entry.labels, entry.histogram->TakeSnapshot()});
    }
    gauge_fns = gauges_;
  }
  for (const GaugeEntry& gauge : gauge_fns) {
    flat.gauges.push_back({gauge.name, gauge.fn()});
  }

  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < flat.counters.size(); ++i) {
    out += (i == 0 ? "\n" : ",\n");
    out += "    \"" + JsonEscape(flat.counters[i].first) +
           "\": " + std::to_string(flat.counters[i].second);
  }
  out += "\n  },\n  \"gauges\": [";
  bool first = true;
  for (const auto& gauge : flat.gauges) {
    for (const GaugeSample& sample : gauge.samples) {
      out += (first ? "\n" : ",\n");
      first = false;
      out += "    {\"name\": \"" + JsonEscape(gauge.name) + "\", \"labels\": \"" +
             JsonEscape(sample.labels) + "\", \"value\": " +
             FormatDouble(sample.value) + "}";
    }
  }
  out += "\n  ],\n  \"histograms\": [";
  for (size_t i = 0; i < flat.histograms.size(); ++i) {
    const auto& hist = flat.histograms[i];
    out += (i == 0 ? "\n" : ",\n");
    out += "    {\"name\": \"" + JsonEscape(hist.name) + "\", \"labels\": \"" +
           JsonEscape(hist.labels) + "\", \"count\": " +
           std::to_string(hist.snap.count) + ", \"sum\": " +
           std::to_string(hist.snap.sum) + ", \"p50\": " +
           std::to_string(hist.snap.Quantile(0.5)) + ", \"p95\": " +
           std::to_string(hist.snap.Quantile(0.95)) + ", \"p99\": " +
           std::to_string(hist.snap.Quantile(0.99)) + "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace discfs::obs
