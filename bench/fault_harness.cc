// Fault-injection harness (PR 6): drives a full mesh of real DiscfsHosts
// (TCP + secure channel + durable fabric storage) through the failure
// modes a production fleet actually sees, under continuous credential
// churn, and gates on the invariants that matter:
//
//   * mesh formation from a single seed (membership gossip);
//   * rolling clean restarts: every node is torn down and restarted
//     against its storage directory while survivors keep publishing.
//     Gates: the restarted node resumes its old incarnation by journal
//     replay (no fresh-incarnation flush), survivors' unrelated warm
//     cache entries stay warm (hit rate >= 0.9), and no node ever
//     applies a full invalidation;
//   * a half/half partition with churn on both sides, then heal.
//     Gate: every revocation published anywhere is present everywhere
//     (zero revocation violations) and all revocation digests converge.
//
// Faults are injected through the shared FaultSchedule (blocked links)
// and by destroying/recreating hosts (real shutdown + recovery paths).
// Output: progress on stdout plus BENCH_fault.json (path from argv[1];
// argv[2] = cluster size, argv[3] = churn rounds per phase). Schema is
// enforced by tools/check_bench_schema.py; tools/run_fault.sh runs the
// full 8-node configuration.
#include <sys/types.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/blockdev/blockdev.h"
#include "src/cluster/fabric.h"
#include "src/cluster/fault.h"
#include "src/crypto/groups.h"
#include "src/discfs/host.h"
#include "src/discfs/revocation.h"
#include "src/ffs/ffs.h"
#include "src/obs/trace.h"
#include "src/util/prng.h"

namespace discfs {
namespace {

constexpr size_t kWarmPrincipals = 64;
constexpr auto kConvergeTimeout = std::chrono::seconds(60);

std::function<Bytes(size_t)> BenchRand(uint64_t seed) {
  return LockedPrngBytes(seed);
}

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Aggressive tuning so the full fault sequence (restarts, partition,
// heal) completes in seconds: fast heartbeats to detect death, fast
// reconnect to detect rebirth, frequent snapshots so recovery exercises
// both the snapshot and the journal-tail path.
cluster::FabricTuning HarnessTuning() {
  cluster::FabricTuning tuning;
  tuning.reconnect_max = std::chrono::milliseconds(200);
  tuning.connect_timeout = std::chrono::milliseconds(500);
  tuning.call_timeout = std::chrono::milliseconds(2000);
  tuning.snapshot_interval = 32;
  tuning.heartbeat_interval = std::chrono::milliseconds(100);
  tuning.heartbeat_deadline = std::chrono::milliseconds(600);
  tuning.anti_entropy_interval = std::chrono::milliseconds(300);
  tuning.maintenance_tick = std::chrono::milliseconds(50);
  return tuning;
}

struct Node {
  size_t index = 0;
  std::string dir;
  uint16_t port = 0;  // 0 until first start; reused across restarts
  std::shared_ptr<FfsVfs> vfs;
  std::unique_ptr<DiscfsHost> host;

  std::string address() const {
    return "127.0.0.1:" + std::to_string(port);
  }
};

struct Mesh {
  std::vector<DsaPrivateKey> keys;
  std::vector<std::vector<DsaPublicKey>> trusted;
  std::vector<Node> nodes;
  std::shared_ptr<cluster::FaultSchedule> faults;
  std::vector<std::string> revoked_ids;  // every id ever published

  size_t size() const { return nodes.size(); }
};

void Fail(const char* what) {
  std::fprintf(stderr, "FAIL: %s\n", what);
  std::abort();
}

// (Re)starts node i against its storage directory. `seeds` bootstraps
// membership — the rest of the fleet is learned through gossip. The
// block device is fresh each time (file data is not what is under test);
// fabric state recovers from the journal + snapshot on disk.
void StartNode(Mesh& mesh, size_t i, std::vector<std::string> seeds) {
  Node& node = mesh.nodes[i];
  auto dev = std::make_shared<MemBlockDevice>(4096, 4096);
  auto fs = Ffs::Format(dev, FfsFormatOptions{512});
  if (!fs.ok()) {
    Fail("format failed");
  }
  node.vfs = std::make_shared<FfsVfs>(std::move(fs).value());
  DiscfsServerConfig config;
  config.server_key = mesh.keys[i];
  config.rand_bytes = BenchRand(7000 + i);
  config.cluster_trusted_keys = mesh.trusted[i];
  DiscfsHostOptions options;
  options.worker_threads = 2;
  options.cluster_enabled = true;
  options.cluster_storage_dir = node.dir;
  options.cluster_fsync = cluster::FsyncPolicy::kAlways;
  options.cluster_seeds = std::move(seeds);
  options.cluster_faults = mesh.faults;
  options.cluster_tuning = HarnessTuning();
  auto host =
      DiscfsHost::Start(node.vfs, std::move(config), node.port,
                        std::move(options));
  if (!host.ok()) {
    std::fprintf(stderr, "node %zu start failed: %s\n", i,
                 host.status().ToString().c_str());
    std::abort();
  }
  node.host = std::move(host).value();
  node.port = node.host->port();
}

// Publishes one tracked revocation from node i.
void Churn(Mesh& mesh, size_t i, const std::string& tag) {
  std::string id =
      "rk-" + std::to_string(i) + "-" + tag + "-" +
      std::to_string(mesh.revoked_ids.size());
  mesh.nodes[i].host->server().RevokeKey(id);
  mesh.revoked_ids.push_back(id);
}

// Spins until predicate() holds; false on timeout.
template <typename Pred>
bool Await(Pred predicate, std::chrono::seconds timeout = kConvergeTimeout) {
  double deadline = NowSec() + std::chrono::duration<double>(timeout).count();
  while (!predicate()) {
    if (NowSec() > deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

bool FullMesh(const Mesh& mesh) {
  for (const Node& node : mesh.nodes) {
    if (node.host->fabric()->Health().healthy_peers() + 1 < mesh.size()) {
      return false;
    }
  }
  return true;
}

// Every node's log head acked by all of its peers.
bool AllAcked(Mesh& mesh) {
  for (Node& node : mesh.nodes) {
    cluster::CoherenceFabric* fabric = node.host->fabric();
    if (!fabric->WaitForAck(fabric->stats().head_seq,
                            std::chrono::milliseconds(10))) {
      return false;
    }
  }
  return true;
}

bool DigestsConverged(Mesh& mesh) {
  Bytes first = mesh.nodes[0].host->server().RevocationDigest();
  for (size_t i = 1; i < mesh.size(); ++i) {
    if (mesh.nodes[i].host->server().RevocationDigest() != first) {
      return false;
    }
  }
  return true;
}

// A revocation violation = a tracked revoked id that some node would
// still honor. Checked by deserializing each node's live revocation list
// into a scratch list (horizon 0 = never expires) and probing every id.
size_t CountViolations(Mesh& mesh) {
  int64_t now = static_cast<int64_t>(std::time(nullptr));
  size_t violations = 0;
  for (Node& node : mesh.nodes) {
    RevocationList scratch(0);
    Bytes blob = node.host->server().SerializeRevocations();
    if (!scratch.MergeSerialized(blob, now).ok()) {
      Fail("revocation blob failed to parse");
    }
    for (const std::string& id : mesh.revoked_ids) {
      if (!scratch.IsKeyRevoked(id, now)) {
        ++violations;
      }
    }
  }
  return violations;
}

uint64_t TotalFullInvalidations(Mesh& mesh) {
  uint64_t total = 0;
  for (Node& node : mesh.nodes) {
    total += node.host->fabric()->stats().full_invalidations_applied;
  }
  return total;
}

struct RestartResult {
  size_t node = 0;
  bool recovered_incarnation = false;
  uint64_t recovered_events = 0;
  double rejoin_s = 0;
  double survivor_hit_rate = 0;
};

// Tears node i down, churns while it is gone, restarts it against its
// storage dir on the same port, and measures recovery + survivor impact.
RestartResult RollingRestart(Mesh& mesh, size_t i, const char* tag) {
  RestartResult result;
  result.node = i;
  Node& node = mesh.nodes[i];
  size_t survivor = (i + 1) % mesh.size();
  DiscfsServer& surv = mesh.nodes[survivor].host->server();

  // Warm unrelated entries on a survivor; they must stay warm across the
  // peer's clean restart (no InvalidateAll, no fresh-incarnation flush).
  for (size_t p = 0; p < kWarmPrincipals; ++p) {
    surv.EffectiveMask("warm-principal-" + std::to_string(p), 1);
  }
  surv.ResetTelemetry();

  uint64_t incarnation_before = node.host->fabric()->incarnation();
  node.host.reset();  // real shutdown path (clean snapshot, joins threads)

  // Churn while the node is down: it must catch up by replay on rejoin.
  for (size_t e = 0; e < 3; ++e) {
    Churn(mesh, survivor, std::string("down") + tag);
  }

  double t0 = NowSec();
  StartNode(mesh, i, {mesh.nodes[survivor].address()});
  cluster::FabricStats stats = node.host->fabric()->stats();
  result.recovered_incarnation =
      stats.recovered_incarnation &&
      node.host->fabric()->incarnation() == incarnation_before;
  result.recovered_events = stats.recovered_events;

  // Rejoined = full mesh again, down-window churn applied everywhere,
  // and a post-restart publish (old sequence space) acked by every peer.
  if (!Await([&] { return FullMesh(mesh); })) {
    Fail("restarted node did not rejoin the mesh");
  }
  Churn(mesh, i, std::string("rejoin") + tag);
  if (!Await([&] { return AllAcked(mesh); })) {
    Fail("mesh did not converge after restart");
  }
  result.rejoin_s = NowSec() - t0;

  uint64_t recomputes = 0;
  for (size_t p = 0; p < kWarmPrincipals; ++p) {
    surv.EffectiveMask("warm-principal-" + std::to_string(p), 1);
  }
  recomputes = surv.counters().keynote_queries.load();
  result.survivor_hit_rate =
      1.0 - static_cast<double>(recomputes) / kWarmPrincipals;
  return result;
}

struct HarnessResult {
  size_t cluster_size = 0;
  double mesh_form_s = 0;
  std::vector<RestartResult> restarts;
  double partition_heal_converge_s = 0;
  uint64_t revocation_syncs_total = 0;
  uint64_t revocations_pulled_total = 0;
  uint64_t full_invalidations_total = 0;
  size_t revocation_violations = 0;
  size_t churn_events_total = 0;
  size_t trace_nodes_observed = 0;
};

void WriteJson(std::FILE* f, const HarnessResult& r) {
  std::fprintf(f, "{\n  \"bench\": \"fault_injection\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"cluster_size\": %zu,\n", r.cluster_size);
  std::fprintf(f, "  \"warm_principals\": %zu,\n", kWarmPrincipals);
  std::fprintf(f, "  \"churn_events_total\": %zu,\n", r.churn_events_total);
  std::fprintf(f, "  \"mesh_form_s\": %.3f,\n", r.mesh_form_s);
  std::fprintf(f, "  \"rolling_restarts\": %zu,\n", r.restarts.size());
  std::fprintf(f, "  \"partition_heal_converge_s\": %.3f,\n",
               r.partition_heal_converge_s);
  std::fprintf(f, "  \"revocation_syncs_total\": %llu,\n",
               static_cast<unsigned long long>(r.revocation_syncs_total));
  std::fprintf(f, "  \"revocations_pulled_total\": %llu,\n",
               static_cast<unsigned long long>(r.revocations_pulled_total));
  std::fprintf(f, "  \"full_invalidations_total\": %llu,\n",
               static_cast<unsigned long long>(r.full_invalidations_total));
  std::fprintf(f, "  \"trace_nodes_observed\": %zu,\n",
               r.trace_nodes_observed);
  std::fprintf(f, "  \"revocation_violations\": %zu,\n",
               r.revocation_violations);
  std::fprintf(f, "  \"restarts\": [\n");
  for (size_t i = 0; i < r.restarts.size(); ++i) {
    const RestartResult& restart = r.restarts[i];
    std::fprintf(f,
                 "    {\"node\": %zu, \"recovered_incarnation\": %s, "
                 "\"recovered_events\": %llu, \"rejoin_s\": %.3f, "
                 "\"survivor_hit_rate\": %.4f}%s\n",
                 restart.node,
                 restart.recovered_incarnation ? "true" : "false",
                 static_cast<unsigned long long>(restart.recovered_events),
                 restart.rejoin_s, restart.survivor_hit_rate,
                 i + 1 < r.restarts.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

int Run(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_fault.json";
  const size_t cluster_size =
      argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 8;
  const size_t churn_rounds =
      argc > 3 ? static_cast<size_t>(std::atoll(argv[3])) : 4;
  if (cluster_size < 2) {
    std::fprintf(stderr, "cluster size must be >= 2\n");
    return 1;
  }

  HarnessResult result;
  result.cluster_size = cluster_size;

  Mesh mesh;
  mesh.faults = std::make_shared<cluster::FaultSchedule>();
  mesh.nodes.resize(cluster_size);
  for (size_t i = 0; i < cluster_size; ++i) {
    mesh.keys.push_back(
        DsaPrivateKey::Generate(Dsa512(), BenchRand(6000 + i)));
  }
  mesh.trusted.resize(cluster_size);
  for (size_t i = 0; i < cluster_size; ++i) {
    for (size_t j = 0; j < cluster_size; ++j) {
      if (i != j) {
        mesh.trusted[i].push_back(mesh.keys[j].public_key());
      }
    }
  }
  for (size_t i = 0; i < cluster_size; ++i) {
    mesh.nodes[i].index = i;
    mesh.nodes[i].dir = "/tmp/discfs-fault-" +
                        std::to_string(::getpid()) + "-n" +
                        std::to_string(i);
  }

  // --- phase 1: mesh formation from a single seed --------------------
  std::printf("== fault harness: %zu nodes, churn x%zu ==\n", cluster_size,
              churn_rounds);
  double t0 = NowSec();
  StartNode(mesh, 0, {});
  for (size_t i = 1; i < cluster_size; ++i) {
    StartNode(mesh, i, {mesh.nodes[0].address()});
  }
  if (!Await([&] { return FullMesh(mesh); })) {
    Fail("mesh never formed from the seed");
  }
  result.mesh_form_s = NowSec() - t0;
  std::printf("mesh formed in %.2fs\n", result.mesh_form_s);

  // --- phase 2: baseline churn, every node publishing ----------------
  for (size_t round = 0; round < churn_rounds; ++round) {
    for (size_t i = 0; i < cluster_size; ++i) {
      Churn(mesh, i, "base");
    }
  }
  if (!Await([&] { return AllAcked(mesh); })) {
    Fail("baseline churn did not converge");
  }
  std::printf("baseline churn converged (%zu events)\n",
              mesh.revoked_ids.size());

  // --- phase 2b: one traced revocation must be observable everywhere --
  // The minted id rides the coherence push out of node 0; every node
  // (origin included) must log it, which is the end-to-end proof that
  // cross-node trace propagation survives a real mesh. Checked here,
  // before restarts wipe the in-memory trace logs.
  uint64_t trace_id = obs::MintTraceId();
  {
    obs::TraceScope scope(trace_id);
    Churn(mesh, 0, "traced");
  }
  if (!Await([&] { return AllAcked(mesh); })) {
    Fail("traced revocation did not converge");
  }
  for (Node& node : mesh.nodes) {
    if (node.host->server().trace_log().Contains(trace_id)) {
      ++result.trace_nodes_observed;
    }
  }
  std::printf("traced revocation observed at %zu/%zu nodes\n",
              result.trace_nodes_observed, cluster_size);
  if (result.trace_nodes_observed != cluster_size) {
    Fail("trace id missing at one or more nodes");
  }

  // --- phase 3: rolling clean restarts under churn -------------------
  for (size_t i = 0; i < cluster_size; ++i) {
    RestartResult restart =
        RollingRestart(mesh, i, std::to_string(i).c_str());
    std::printf(
        "restart node %zu: recovered_incarnation=%d recovered_events=%llu "
        "rejoin=%.2fs survivor_hit_rate=%.4f\n",
        restart.node, restart.recovered_incarnation ? 1 : 0,
        static_cast<unsigned long long>(restart.recovered_events),
        restart.rejoin_s, restart.survivor_hit_rate);
    result.restarts.push_back(restart);
  }

  // --- phase 4: partition, churn both sides, heal --------------------
  size_t half = cluster_size / 2;
  for (size_t a = 0; a < half; ++a) {
    for (size_t b = half; b < cluster_size; ++b) {
      mesh.faults->BlockLink(mesh.nodes[a].address(),
                             mesh.nodes[b].address());
    }
  }
  // Both sides notice: cross-partition peers go unhealthy.
  if (!Await([&] {
        return mesh.nodes[0].host->fabric()->Health().healthy_peers() <
                   half &&
               mesh.nodes[half].host->fabric()->Health().healthy_peers() <
                   cluster_size - half;
      })) {
    Fail("partition was not detected");
  }
  std::printf("partition detected\n");
  for (size_t round = 0; round < churn_rounds; ++round) {
    Churn(mesh, 0, "partA");
    Churn(mesh, half, "partB");
  }
  // Let each side converge internally while split.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  double heal_t0 = NowSec();
  mesh.faults->HealAll();
  if (!Await([&] {
        return FullMesh(mesh) && AllAcked(mesh) && DigestsConverged(mesh);
      })) {
    Fail("mesh did not converge after the partition healed");
  }
  result.partition_heal_converge_s = NowSec() - heal_t0;
  std::printf("partition healed and converged in %.2fs\n",
              result.partition_heal_converge_s);

  // --- final accounting and gates ------------------------------------
  for (Node& node : mesh.nodes) {
    cluster::FabricStats stats = node.host->fabric()->stats();
    result.revocation_syncs_total += stats.revocation_syncs;
    result.revocations_pulled_total += stats.revocations_pulled;
  }
  result.full_invalidations_total = TotalFullInvalidations(mesh);
  result.revocation_violations = CountViolations(mesh);
  result.churn_events_total = mesh.revoked_ids.size();

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  WriteJson(f, result);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  int rc = 0;
  if (result.revocation_violations != 0) {
    std::fprintf(stderr, "FAIL: %zu revocation violations (a node would "
                 "honor a revoked key)\n", result.revocation_violations);
    rc = 1;
  }
  if (result.full_invalidations_total != 0) {
    std::fprintf(stderr, "FAIL: %llu full invalidations applied (clean "
                 "restarts must recover by replay)\n",
                 static_cast<unsigned long long>(
                     result.full_invalidations_total));
    rc = 1;
  }
  for (const RestartResult& restart : result.restarts) {
    if (!restart.recovered_incarnation) {
      std::fprintf(stderr, "FAIL: node %zu did not resume its incarnation "
                   "after a clean restart\n", restart.node);
      rc = 1;
    }
    if (restart.survivor_hit_rate < 0.9) {
      std::fprintf(stderr, "FAIL: survivor hit rate %.4f < 0.9 across "
                   "node %zu's restart\n", restart.survivor_hit_rate,
                   restart.node);
      rc = 1;
    }
  }
  if (rc == 0) {
    std::printf("all gates passed: %zu restarts recovered, %zu churn "
                "events, 0 violations\n", result.restarts.size(),
                result.churn_events_total);
  }
  return rc;
}

}  // namespace
}  // namespace discfs

int main(int argc, char** argv) { return discfs::Run(argc, argv); }
