// discfs-cli: one-shot DisCFS client commands against a running discfsd.
//
// Usage:
//   discfs-cli --key user.key --port N [--host 127.0.0.1]
//              [--server-pub admin.pub] [--cred file]... <command> [args]
//
// Commands:
//   info                      server identity and counters
//   submit <cred-file>        submit a credential assertion
//   ls <path>                 list a directory
//   cat <path>                print a file
//   put <path> <text>         create/overwrite a file with <text>
//   mkdir <path>              create a directory (prints the credential)
//   rm <path>                 remove a file
//   resolve <handle>          look up a file by credential handle
//
// --cred files are submitted before the command runs (the "accompanied by
// credentials" of the paper).
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/crypto/sysrand.h"
#include "src/discfs/client.h"
#include "src/util/strings.h"
#include "tools/keyio.h"

namespace discfs::tools {
namespace {

struct Args {
  std::string host = "127.0.0.1";
  uint16_t port = 20490;
  std::string key_path;
  std::string server_pub_path;
  std::vector<std::string> cred_paths;
  std::vector<std::string> command;
};

int Usage() {
  std::fprintf(stderr,
               "usage: discfs-cli --key user.key [--host H] [--port N] "
               "[--server-pub admin.pub] [--cred file]... <command> [args]\n"
               "commands: info | submit <file> | ls <path> | cat <path> | "
               "put <path> <text> | mkdir <path> | rm <path> | "
               "resolve <handle>\n");
  return 2;
}

// Walks an absolute path from the root handle.
Result<NfsFattr> WalkPath(DiscfsClient& client, const std::string& path) {
  ASSIGN_OR_RETURN(NfsFattr current, client.Attach());
  for (const std::string& part : StrSplit(path, '/')) {
    if (part.empty()) {
      continue;
    }
    ASSIGN_OR_RETURN(current, client.nfs().Lookup(current.fh, part));
  }
  return current;
}

Result<std::pair<NfsFattr, std::string>> WalkParent(DiscfsClient& client,
                                                    const std::string& path) {
  std::vector<std::string> parts;
  for (const std::string& part : StrSplit(path, '/')) {
    if (!part.empty()) {
      parts.push_back(part);
    }
  }
  if (parts.empty()) {
    return InvalidArgumentError("path has no leaf");
  }
  std::string leaf = parts.back();
  parts.pop_back();
  ASSIGN_OR_RETURN(NfsFattr dir, client.Attach());
  for (const std::string& part : parts) {
    ASSIGN_OR_RETURN(dir, client.nfs().Lookup(dir.fh, part));
  }
  return std::make_pair(dir, leaf);
}

int Run(const Args& args) {
  auto key = LoadPrivateKey(args.key_path);
  if (!key.ok()) {
    std::fprintf(stderr, "key: %s\n", key.status().ToString().c_str());
    return 1;
  }
  std::optional<DsaPublicKey> server_pub;
  if (!args.server_pub_path.empty()) {
    auto pub = LoadPublicKey(args.server_pub_path);
    if (!pub.ok()) {
      std::fprintf(stderr, "server-pub: %s\n",
                   pub.status().ToString().c_str());
      return 1;
    }
    server_pub = *pub;
  }

  ChannelIdentity identity{*key,
                           [](size_t n) { return SysRandomBytes(n); }};
  auto client = DiscfsClient::Connect(args.host, args.port, identity,
                                      server_pub);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  for (const std::string& path : args.cred_paths) {
    auto text = ReadTextFile(path);
    if (!text.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   text.status().ToString().c_str());
      return 1;
    }
    auto id = (*client)->SubmitCredential(*text);
    if (!id.ok()) {
      std::fprintf(stderr, "submit %s: %s\n", path.c_str(),
                   id.status().ToString().c_str());
      return 1;
    }
  }

  const std::string& cmd = args.command[0];
  auto need = [&](size_t n) {
    if (args.command.size() != n + 1) {
      std::exit(Usage());
    }
  };

  if (cmd == "info") {
    auto info = (*client)->ServerInfo();
    if (!info.ok()) {
      std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
      return 1;
    }
    std::printf("server principal: %.64s...\n",
                info->server_principal.c_str());
    std::printf("keynote queries:  %llu\n",
                static_cast<unsigned long long>(info->keynote_queries));
    std::printf("cache hits/miss:  %llu / %llu\n",
                static_cast<unsigned long long>(info->cache_hits),
                static_cast<unsigned long long>(info->cache_misses));
    std::printf("credentials:      %u\n", info->credential_count);
    return 0;
  }
  if (cmd == "submit") {
    need(1);
    auto text = ReadTextFile(args.command[1]);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
    auto id = (*client)->SubmitCredential(*text);
    if (!id.ok()) {
      std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
      return 1;
    }
    std::printf("credential id: %s\n", id->c_str());
    return 0;
  }
  if (cmd == "ls") {
    need(1);
    auto dir = WalkPath(**client, args.command[1]);
    if (!dir.ok()) {
      std::fprintf(stderr, "%s\n", dir.status().ToString().c_str());
      return 1;
    }
    auto entries = (*client)->nfs().ReadDir(dir->fh);
    if (!entries.ok()) {
      std::fprintf(stderr, "%s\n", entries.status().ToString().c_str());
      return 1;
    }
    for (const NfsDirEntry& e : *entries) {
      std::printf("%s%s  (handle %u)\n", e.name.c_str(),
                  e.type == FileType::kDirectory ? "/" : "", e.fh.inode);
    }
    return 0;
  }
  if (cmd == "cat") {
    need(1);
    auto file = WalkPath(**client, args.command[1]);
    if (!file.ok()) {
      std::fprintf(stderr, "%s\n", file.status().ToString().c_str());
      return 1;
    }
    uint64_t offset = 0;
    while (offset < file->size) {
      auto chunk = (*client)->nfs().Read(file->fh, offset, 65536);
      if (!chunk.ok()) {
        std::fprintf(stderr, "%s\n", chunk.status().ToString().c_str());
        return 1;
      }
      if (chunk->empty()) {
        break;
      }
      std::fwrite(chunk->data(), 1, chunk->size(), stdout);
      offset += chunk->size();
    }
    return 0;
  }
  if (cmd == "put") {
    need(2);
    auto parent = WalkParent(**client, args.command[1]);
    if (!parent.ok()) {
      std::fprintf(stderr, "%s\n", parent.status().ToString().c_str());
      return 1;
    }
    auto [dir, leaf] = *parent;
    NfsFh fh;
    auto existing = (*client)->nfs().Lookup(dir.fh, leaf);
    if (existing.ok()) {
      fh = existing->fh;
    } else {
      auto created = (*client)->CreateWithCredential(dir.fh, leaf, 0644);
      if (!created.ok()) {
        std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
        return 1;
      }
      fh = created->attr.fh;
      std::fprintf(stderr, "-- credential for the new file --\n%s",
                   created->credential.c_str());
    }
    auto st = (*client)->nfs().Write(fh, 0, ToBytes(args.command[2]));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.status().ToString().c_str());
      return 1;
    }
    return 0;
  }
  if (cmd == "mkdir") {
    need(1);
    auto parent = WalkParent(**client, args.command[1]);
    if (!parent.ok()) {
      std::fprintf(stderr, "%s\n", parent.status().ToString().c_str());
      return 1;
    }
    auto [dir, leaf] = *parent;
    auto made = (*client)->MkdirWithCredential(dir.fh, leaf, 0755);
    if (!made.ok()) {
      std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", made->credential.c_str());
    return 0;
  }
  if (cmd == "rm") {
    need(1);
    auto parent = WalkParent(**client, args.command[1]);
    if (!parent.ok()) {
      std::fprintf(stderr, "%s\n", parent.status().ToString().c_str());
      return 1;
    }
    auto [dir, leaf] = *parent;
    auto st = (*client)->nfs().Remove(dir.fh, leaf);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    return 0;
  }
  if (cmd == "resolve") {
    need(1);
    auto attr = (*client)->ResolveHandle(
        static_cast<uint32_t>(std::strtoul(args.command[1].c_str(),
                                           nullptr, 10)));
    if (!attr.ok()) {
      std::fprintf(stderr, "%s\n", attr.status().ToString().c_str());
      return 1;
    }
    std::printf("inode %u generation %u size %llu\n", attr->fh.inode,
                attr->fh.generation,
                static_cast<unsigned long long>(attr->size));
    return 0;
  }
  return Usage();
}

}  // namespace
}  // namespace discfs::tools

int main(int argc, char** argv) {
  discfs::tools::Args args;
  int i = 1;
  for (; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::exit(discfs::tools::Usage());
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--key") == 0) {
      args.key_path = next();
    } else if (std::strcmp(argv[i], "--host") == 0) {
      args.host = next();
    } else if (std::strcmp(argv[i], "--port") == 0) {
      args.port = static_cast<uint16_t>(std::atoi(next()));
    } else if (std::strcmp(argv[i], "--server-pub") == 0) {
      args.server_pub_path = next();
    } else if (std::strcmp(argv[i], "--cred") == 0) {
      args.cred_paths.push_back(next());
    } else {
      break;  // start of the command
    }
  }
  for (; i < argc; ++i) {
    args.command.push_back(argv[i]);
  }
  if (args.key_path.empty() || args.command.empty()) {
    return discfs::tools::Usage();
  }
  return discfs::tools::Run(args);
}
