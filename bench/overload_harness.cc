// Open-loop overload harness (PR 10): graceful degradation of a DisCFS
// server pushed past saturation, against a large, realistically delegated
// credential corpus.
//
// Corpus: POLICY licenses an admin key; the admin issues blanket
// credentials to a layer of intermediary keys; each intermediary signs
// credentials naming ~100 licensees apiece (1M licensee slots at the
// default 10k credentials), so every authorization decision resolves a
// depth-3 delegation chain through a KeyNote session holding the full
// corpus. The measured reader key appears only in the credentials bound to
// the benchmark files, keeping its delegation graph realistic rather than
// degenerate.
//
// Phases (all rates derived from a closed-loop saturation measurement):
//   1. Open-loop sweep at 0.5x / 1x / 2x saturation: fixed offered rate,
//      latency measured from each request's *scheduled* send time (no
//      coordinated omission), with a concurrent control-plane driver
//      submitting fresh credentials throughout. The server sheds data
//      reads at the low watermark while control work rides to the hard
//      admission limit — so control sheds must stay zero even at 2x.
//   2. Deadline phase: a raw-frame client (no local reaper, so late
//      replies are observable) bursts reads carrying a v2 deadline trailer
//      at a single-worker host until queue wait far exceeds the deadline;
//      expired requests must be dropped at dequeue, never executed.
//   3. Handshake flood: 256 half-open connections may not occupy pool
//      workers or queue slots, and a legitimate client must complete its
//      handshake within the timeout while the flood stands.
//
// Output: table on stdout plus BENCH_overload.json (path from argv[1];
// argv[2] caps the credential corpus). Schema in docs/BENCH_SCHEMAS.md,
// enforced by tools/check_bench_schema.py. Self-gates: zero control-plane
// sheds with data sheds engaged at 2x, zero expired requests executed,
// flood survival; p99-at-0.5x and goodput-at-2x gates are enforced on
// hardware with >= 4 cores (same convention as admission_scaling).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/blockdev/blockdev.h"
#include "src/crypto/groups.h"
#include "src/discfs/client.h"
#include "src/discfs/credentials.h"
#include "src/discfs/host.h"
#include "src/ffs/ffs.h"
#include "src/keynote/assertion.h"
#include "src/net/transport.h"
#include "src/nfs/protocol.h"
#include "src/obs/recorder.h"
#include "src/rpc/rpc.h"
#include "src/securechannel/channel.h"
#include "src/util/prng.h"
#include "src/wire/xdr.h"

namespace discfs {
namespace {

constexpr size_t kLicenseesPerCredential = 100;
constexpr size_t kIntermediaries = 10;
constexpr size_t kFiles = 16;
constexpr uint32_t kReadBytes = 8192;
constexpr double kPhaseSeconds = 2.5;
constexpr double kSaturationSeconds = 1.5;
constexpr size_t kSaturationInflight = 4;
constexpr uint32_t kLoadDeadlineMs = 2000;  // liveness bound, not a gate
constexpr double kControlIntervalS = 0.02;  // 50 control-plane ops/s

// Server shape: few workers so saturation is reachable from one process,
// watermarks well above the closed-loop backlog (drivers * inflight) so
// the saturation measurement itself never sheds.
constexpr size_t kWorkerThreads = 2;
constexpr size_t kShedDataWatermark = 48;
constexpr size_t kShedNamespaceWatermark = 96;
constexpr size_t kAdmissionLimit = 192;

// Wide enough that intake of the whole flood (an accept-thread scan that
// can be starved on small machines right after the load phases) fits well
// inside one timeout window, so all 256 connections are half-open at once.
constexpr uint64_t kHandshakeTimeoutMs = 4000;
constexpr size_t kMaxHalfOpen = 512;  // flood stays below the eviction cap
constexpr size_t kFloodConnections = 256;

constexpr uint32_t kExpiryDeadlineMs = 40;
constexpr uint32_t kExpiryReadBytes = 64 << 10;
// An executed request's reply trails its (pre-expiry) dequeue by at most
// one service time plus reply queueing; anything later than this grace
// past the deadline proves expired work was executed.
constexpr double kLateGraceS = 0.25;

constexpr double kP99GateMs = 50.0;
constexpr double kGoodputRatioGate = 0.7;

std::function<Bytes(size_t)> BenchRand(uint64_t seed) {
  return LockedPrngBytes(seed);
}

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

#define BENCH_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__,    \
                   #cond);                                             \
      std::abort();                                                    \
    }                                                                  \
  } while (0)

bool WaitFor(const std::function<bool()>& cond, double limit_s) {
  double t0 = NowSec();
  while (NowSec() - t0 < limit_s) {
    if (cond()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return cond();
}

struct LatencySummary {
  double p50_ms = 0;
  double p99_ms = 0;
};

LatencySummary Summarize(std::vector<double> samples_ms) {
  LatencySummary s;
  if (samples_ms.empty()) {
    return s;
  }
  std::sort(samples_ms.begin(), samples_ms.end());
  s.p50_ms = samples_ms[samples_ms.size() / 2];
  s.p99_ms = samples_ms[std::min(samples_ms.size() - 1,
                                 samples_ms.size() * 99 / 100)];
  return s;
}

// ------------------------------------------------------------ environment

struct Env {
  DsaPrivateKey admin;
  DsaPrivateKey server_key;
  DsaPrivateKey reader;
  std::vector<DsaPrivateKey> intermediaries;
  std::shared_ptr<FfsVfs> vfs;
  std::unique_ptr<DiscfsHost> host;
  std::unique_ptr<DiscfsClient> owner;
  std::vector<NfsFh> files;
};

Env StartEnv() {
  Env env{DsaPrivateKey::Generate(Dsa512(), BenchRand(1)),
          DsaPrivateKey::Generate(Dsa512(), BenchRand(2)),
          DsaPrivateKey::Generate(Dsa512(), BenchRand(3))};
  for (size_t i = 0; i < kIntermediaries; ++i) {
    env.intermediaries.push_back(
        DsaPrivateKey::Generate(Dsa512(), BenchRand(100 + i)));
  }

  auto dev = std::make_shared<MemBlockDevice>(16384, 4096);
  auto fs = Ffs::Format(dev, FfsFormatOptions{4096});
  BENCH_CHECK(fs.ok());
  env.vfs = std::make_shared<FfsVfs>(std::move(fs).value());

  DiscfsServerConfig config;
  config.server_key = env.server_key;
  config.rand_bytes = BenchRand(10);
  config.policy_assertions.push_back(
      "Authorizer: \"POLICY\"\n"
      "Licensees: \"" + env.admin.public_key().ToKeyNoteString() + "\"\n"
      "Conditions: app_domain == \"DisCFS\" -> \"RWX\";\n");

  DiscfsHostOptions options;
  options.worker_threads = kWorkerThreads;
  options.max_inflight_per_conn = 256;
  options.send_queue_limit = 256;
  options.admission_queue_limit = kAdmissionLimit;
  options.shed_data_watermark = kShedDataWatermark;
  options.shed_namespace_watermark = kShedNamespaceWatermark;
  options.handshake_timeout_ms = kHandshakeTimeoutMs;
  options.max_half_open_handshakes = kMaxHalfOpen;
  auto host = DiscfsHost::Start(env.vfs, std::move(config), /*port=*/0,
                                std::move(options));
  BENCH_CHECK(host.ok());
  env.host = std::move(host).value();

  auto owner = DiscfsClient::Connect(
      "127.0.0.1", env.host->port(),
      ChannelIdentity{env.admin, BenchRand(20)},
      env.server_key.public_key());
  BENCH_CHECK(owner.ok());
  env.owner = std::move(owner).value();

  auto root = env.owner->Attach();
  BENCH_CHECK(root.ok());
  Bytes payload = LockedPrngBytes(42)(kReadBytes);
  for (size_t i = 0; i < kFiles; ++i) {
    auto created = env.owner->CreateWithCredential(
        root->fh, "load_" + std::to_string(i), 0644);
    BENCH_CHECK(created.ok());
    BENCH_CHECK(env.owner->nfs().Write(created->attr.fh, 0, payload).ok());
    env.files.push_back(created->attr.fh);
  }
  return env;
}

// ----------------------------------------------------------------- corpus

struct Corpus {
  std::vector<std::string> texts;
  size_t principals = 0;
  double sign_s = 0;
  double submit_s = 0;
};

Corpus BuildCorpus(const Env& env, size_t credentials) {
  Corpus corpus;
  const size_t inters = env.intermediaries.size();
  corpus.texts.resize(inters + credentials);
  double t0 = NowSec();

  // Admin -> intermediary: blanket (handle-free) delegations.
  for (size_t i = 0; i < inters; ++i) {
    auto cred = IssueCredential(env.admin,
                                env.intermediaries[i].public_key(),
                                /*handle=*/"", CredentialOptions{});
    BENCH_CHECK(cred.ok());
    corpus.texts[i] = std::move(cred).value();
  }

  // Intermediary -> licensees: the bulk of the corpus. The first kFiles
  // credentials bind the benchmark files and include the reader key; the
  // rest name synthetic handles and synthetic principals only.
  const std::string reader = env.reader.public_key().ToKeyNoteString();
  const size_t threads =
      std::min<size_t>(8, std::max<size_t>(
          1, std::thread::hardware_concurrency()));
  std::vector<std::thread> signers;
  for (size_t t = 0; t < threads; ++t) {
    signers.emplace_back([&, t] {
      for (size_t k = t; k < credentials; k += threads) {
        const DsaPrivateKey& inter = env.intermediaries[k % inters];
        std::string licensees;
        licensees.reserve(kLicenseesPerCredential * 12);
        size_t synthetic = kLicenseesPerCredential;
        if (k < env.files.size()) {
          licensees += "\"" + reader + "\"";
          --synthetic;
        }
        for (size_t j = 0; j < synthetic; ++j) {
          if (!licensees.empty()) {
            licensees += " || ";
          }
          licensees +=
              "\"u" + std::to_string(k * kLicenseesPerCredential + j) + "\"";
        }
        const uint32_t handle = k < env.files.size()
                                    ? env.files[k].inode
                                    : static_cast<uint32_t>(10'000'000 + k);
        auto cred =
            keynote::AssertionBuilder()
                .SetAuthorizer(inter.public_key().ToKeyNoteString())
                .SetLicensees(licensees)
                .SetConditions(BuildConditions(std::to_string(handle),
                                               CredentialOptions{}))
                .SetComment("overload corpus " + std::to_string(k))
                .Sign(inter, keynote::SignatureAlgorithm::kDsaSha1);
        BENCH_CHECK(cred.ok());
        corpus.texts[inters + k] = std::move(cred).value();
      }
    });
  }
  for (std::thread& t : signers) {
    t.join();
  }
  corpus.sign_s = NowSec() - t0;
  corpus.principals = credentials * kLicenseesPerCredential;
  return corpus;
}

void SubmitCorpus(Env& env, Corpus& corpus) {
  double t0 = NowSec();
  constexpr size_t kBatch = 500;
  for (size_t off = 0; off < corpus.texts.size(); off += kBatch) {
    std::vector<std::string> chunk(
        corpus.texts.begin() + off,
        corpus.texts.begin() +
            std::min(off + kBatch, corpus.texts.size()));
    auto results = env.owner->SubmitCredentials(chunk);
    BENCH_CHECK(results.ok());
    for (const auto& r : *results) {
      BENCH_CHECK(r.ok());
    }
  }
  corpus.submit_s = NowSec() - t0;
}

// -------------------------------------------------------------- open loop

Bytes ReadArgs(const NfsFh& fh, uint32_t count) {
  XdrWriter w;
  WriteFh(w, fh);
  w.PutU64(0);
  w.PutU32(count);
  return w.Take();
}

struct DriverStats {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t other = 0;
  std::vector<double> latencies_ms;
};

void Account(std::future<Result<Bytes>>& future, double sched,
             DriverStats& stats) {
  Result<Bytes> res = future.get();
  if (res.ok()) {
    ++stats.ok;
    stats.latencies_ms.push_back((NowSec() - sched) * 1e3);
    return;
  }
  switch (res.status().code()) {
    case StatusCode::kResourceExhausted:
      ++stats.shed;
      break;
    case StatusCode::kDeadlineExceeded:
      ++stats.deadline_exceeded;
      break;
    default:
      ++stats.other;
      break;
  }
}

// Fixed-rate generator: requests are issued at t0 + i/rate regardless of
// completions (catching up without delay when behind), and latency runs
// from the scheduled time — the open-loop discipline that makes overload
// visible instead of silently throttling the load like a closed loop.
void OpenLoopDriver(RpcClient& client, const std::vector<NfsFh>& files,
                    double rate, double duration_s, size_t seed,
                    DriverStats& stats) {
  struct Pending {
    std::future<Result<Bytes>> future;
    double sched;
  };
  std::deque<Pending> window;
  const double interval = 1.0 / rate;
  const double t0 = NowSec();
  size_t i = 0;
  size_t file_idx = seed;
  while (true) {
    const double sched = t0 + static_cast<double>(i) * interval;
    if (sched >= t0 + duration_s) {
      break;
    }
    const double now = NowSec();
    if (sched > now) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(sched - now));
    }
    const NfsFh& fh = files[file_idx++ % files.size()];
    window.push_back(
        {client.CallAsyncWithDeadline(kNfsProgram,
                                      static_cast<uint32_t>(NfsProc::kRead),
                                      ReadArgs(fh, kReadBytes),
                                      kLoadDeadlineMs),
         sched});
    ++stats.sent;
    ++i;
    while (!window.empty() &&
           window.front().future.wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready) {
      Account(window.front().future, window.front().sched, stats);
      window.pop_front();
    }
  }
  for (Pending& p : window) {
    Account(p.future, p.sched, stats);
  }
}

struct ControlStats {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;
};

// Control-plane traffic riding alongside the data load: a fresh, unique
// credential submitted every kControlIntervalS. These are kControl
// priority on the server and must never shed below the hard limit.
void ControlDriver(DiscfsClient& owner, const DsaPrivateKey& admin,
                   std::atomic<bool>& stop, std::atomic<uint64_t>& counter,
                   ControlStats& stats) {
  while (!stop.load(std::memory_order_relaxed)) {
    const uint64_t n = counter.fetch_add(1);
    auto cred = keynote::AssertionBuilder()
                    .SetAuthorizer(admin.public_key().ToKeyNoteString())
                    .SetLicensees("\"ctrl-u" + std::to_string(n) + "\"")
                    .SetConditions(BuildConditions("", CredentialOptions{}))
                    .Sign(admin, keynote::SignatureAlgorithm::kDsaSha1);
    BENCH_CHECK(cred.ok());
    ++stats.sent;
    if (owner.SubmitCredential(*cred).ok()) {
      ++stats.ok;
    } else {
      ++stats.errors;
    }
    const double until = NowSec() + kControlIntervalS;
    while (!stop.load(std::memory_order_relaxed) && NowSec() < until) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
}

struct ShedSnapshot {
  uint64_t control = 0;
  uint64_t ns = 0;
  uint64_t data = 0;
  uint64_t expired = 0;
};

ShedSnapshot Snap(obs::RpcRecorder& rec) {
  return {rec.shed_total(0), rec.shed_total(1), rec.shed_total(2),
          rec.expired_total()};
}

double MeasureSaturation(std::vector<std::unique_ptr<RpcClient>>& clients,
                         const std::vector<NfsFh>& files) {
  std::atomic<uint64_t> ops{0};
  const double t0 = NowSec();
  std::vector<std::thread> drivers;
  for (size_t d = 0; d < clients.size(); ++d) {
    drivers.emplace_back([&, d] {
      std::deque<std::future<Result<Bytes>>> window;
      size_t file_idx = d;
      while (NowSec() - t0 < kSaturationSeconds) {
        while (window.size() < kSaturationInflight) {
          const NfsFh& fh = files[file_idx++ % files.size()];
          window.push_back(clients[d]->CallAsyncWithDeadline(
              kNfsProgram, static_cast<uint32_t>(NfsProc::kRead),
              ReadArgs(fh, kReadBytes), kLoadDeadlineMs));
        }
        Result<Bytes> res = window.front().get();
        window.pop_front();
        BENCH_CHECK(res.ok());
        ops.fetch_add(1);
      }
      for (auto& f : window) {
        if (f.get().ok()) {
          ops.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : drivers) {
    t.join();
  }
  return static_cast<double>(ops.load()) / (NowSec() - t0);
}

struct PhaseResult {
  double offered_x = 0;
  double offered_ops_s = 0;
  double duration_s = 0;
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t other_errors = 0;
  double goodput_ops_s = 0;
  LatencySummary latency;
  uint64_t control_sent = 0;
  uint64_t control_ok = 0;
  uint64_t control_errors = 0;
  uint64_t shed_control = 0;
  uint64_t shed_namespace = 0;
  uint64_t shed_data = 0;
};

PhaseResult RunPhase(Env& env,
                     std::vector<std::unique_ptr<RpcClient>>& clients,
                     double offered_x, double offered_total,
                     std::atomic<uint64_t>& control_counter) {
  PhaseResult phase;
  phase.offered_x = offered_x;
  phase.offered_ops_s = offered_total;
  obs::RpcRecorder& rec = env.host->server().recorder();
  const ShedSnapshot before = Snap(rec);

  std::atomic<bool> stop_control{false};
  ControlStats cstats;
  std::thread control([&] {
    ControlDriver(*env.owner, env.admin, stop_control, control_counter,
                  cstats);
  });

  std::vector<DriverStats> stats(clients.size());
  const double per_driver = offered_total / clients.size();
  const double t0 = NowSec();
  std::vector<std::thread> drivers;
  for (size_t d = 0; d < clients.size(); ++d) {
    drivers.emplace_back([&, d] {
      OpenLoopDriver(*clients[d], env.files, per_driver, kPhaseSeconds, d,
                     stats[d]);
    });
  }
  for (std::thread& t : drivers) {
    t.join();
  }
  phase.duration_s = NowSec() - t0;
  stop_control.store(true);
  control.join();

  const ShedSnapshot after = Snap(rec);
  phase.shed_control = after.control - before.control;
  phase.shed_namespace = after.ns - before.ns;
  phase.shed_data = after.data - before.data;

  std::vector<double> all;
  for (DriverStats& s : stats) {
    phase.sent += s.sent;
    phase.ok += s.ok;
    phase.shed += s.shed;
    phase.deadline_exceeded += s.deadline_exceeded;
    phase.other_errors += s.other;
    all.insert(all.end(), s.latencies_ms.begin(), s.latencies_ms.end());
  }
  phase.goodput_ops_s = phase.ok / phase.duration_s;
  phase.latency = Summarize(std::move(all));
  phase.control_sent = cstats.sent;
  phase.control_ok = cstats.ok;
  phase.control_errors = cstats.errors;
  return phase;
}

// --------------------------------------------------------- deadline phase

Bytes EncodeReadCall(uint32_t xid, const NfsFh& fh, uint32_t count,
                     uint32_t deadline_ms) {
  XdrWriter w;
  w.PutU32(xid);
  w.PutU32(0);  // type = call
  w.PutU32(kNfsProgram);
  w.PutU32(static_cast<uint32_t>(NfsProc::kRead));
  w.PutOpaque(ReadArgs(fh, count));
  if (deadline_ms != 0) {
    w.PutU32(kRpcTraceMagic);
    w.PutU32(kRpcDeadlineVersion);
    w.PutU64(0);  // untraced
    w.PutU32(deadline_ms);
  }
  return w.Take();
}

struct RawReply {
  uint32_t xid = 0;
  uint32_t status = 0;
};

RawReply DecodeReplyHeader(const Bytes& frame) {
  XdrReader r(frame);
  RawReply out;
  auto xid = r.GetU32();
  auto type = r.GetU32();
  auto status = r.GetU32();
  BENCH_CHECK(xid.ok() && type.ok() && status.ok());
  BENCH_CHECK(*type == 1);
  out.xid = *xid;
  out.status = *status;
  return out;
}

struct DeadlineResult {
  uint32_t deadline_ms = kExpiryDeadlineMs;
  double per_op_us = 0;
  uint64_t burst = 0;
  uint64_t ok = 0;
  uint64_t expired_replies = 0;
  uint64_t other_errors = 0;
  uint64_t late_ok = 0;
  uint64_t server_expired_dropped = 0;
};

// A single-worker host, no shedding: a burst far larger than
// deadline/service_time must see its tail expire at dequeue. The client
// sends raw frames and keeps no reaper, so an executed-after-expiry
// request would surface as an OK reply long past its deadline — the
// "zero expired requests executed" gate needs that visibility, which
// RpcClient's local reaper would mask.
DeadlineResult RunDeadlinePhase() {
  DeadlineResult out;
  DsaPrivateKey admin = DsaPrivateKey::Generate(Dsa512(), BenchRand(60));
  DsaPrivateKey server_key = DsaPrivateKey::Generate(Dsa512(), BenchRand(61));

  auto dev = std::make_shared<MemBlockDevice>(16384, 4096);
  auto fs = Ffs::Format(dev, FfsFormatOptions{4096});
  BENCH_CHECK(fs.ok());
  auto vfs = std::make_shared<FfsVfs>(std::move(fs).value());

  DiscfsServerConfig config;
  config.server_key = server_key;
  config.rand_bytes = BenchRand(62);
  config.policy_assertions.push_back(
      "Authorizer: \"POLICY\"\n"
      "Licensees: \"" + admin.public_key().ToKeyNoteString() + "\"\n"
      "Conditions: app_domain == \"DisCFS\" -> \"RWX\";\n");

  DiscfsHostOptions options;
  options.worker_threads = 1;
  options.max_inflight_per_conn = 4096;
  auto host = DiscfsHost::Start(vfs, std::move(config), /*port=*/0,
                                std::move(options));
  BENCH_CHECK(host.ok());

  auto owner = DiscfsClient::Connect(
      "127.0.0.1", (*host)->port(), ChannelIdentity{admin, BenchRand(63)},
      server_key.public_key());
  BENCH_CHECK(owner.ok());
  auto root = (*owner)->Attach();
  BENCH_CHECK(root.ok());
  auto created = (*owner)->CreateWithCredential(root->fh, "big", 0644);
  BENCH_CHECK(created.ok());
  BENCH_CHECK((*owner)
                  ->nfs()
                  .Write(created->attr.fh, 0,
                         LockedPrngBytes(64)(kExpiryReadBytes))
                  .ok());
  const NfsFh fh = created->attr.fh;

  auto transport = TcpTransport::Connect("127.0.0.1", (*host)->port());
  BENCH_CHECK(transport.ok());
  auto channel = SecureChannel::ClientHandshake(
      std::move(transport).value(), ChannelIdentity{admin, BenchRand(65)},
      server_key.public_key());
  BENCH_CHECK(channel.ok());
  SecureChannel& raw = **channel;

  // Serial calibration: service time of one read, deadline-free.
  constexpr size_t kCalibration = 32;
  double t0 = NowSec();
  for (uint32_t i = 0; i < kCalibration; ++i) {
    BENCH_CHECK(raw.Send(EncodeReadCall(1 + i, fh, kExpiryReadBytes, 0)).ok());
    auto reply = raw.Recv();
    BENCH_CHECK(reply.ok());
    BENCH_CHECK(DecodeReplyHeader(*reply).status == 0);
  }
  const double per_op = (NowSec() - t0) / kCalibration;
  out.per_op_us = per_op * 1e6;

  // Burst sized so the single worker's backlog is ~12x the deadline: the
  // head executes in time, the tail must expire at dequeue.
  const double backlog_s = 12.0 * kExpiryDeadlineMs * 1e-3;
  out.burst = std::min<uint64_t>(
      3072, std::max<uint64_t>(
                192, static_cast<uint64_t>(backlog_s / per_op)));

  std::vector<double> sent_at(out.burst + 1000, 0);
  for (uint64_t k = 0; k < out.burst; ++k) {
    const uint32_t xid = static_cast<uint32_t>(1000 + k);
    Bytes frame = EncodeReadCall(xid, fh, kExpiryReadBytes,
                                 kExpiryDeadlineMs);
    sent_at[xid - 1000] = NowSec();
    BENCH_CHECK(raw.Send(frame).ok());
  }
  for (uint64_t k = 0; k < out.burst; ++k) {
    auto reply = raw.Recv();
    BENCH_CHECK(reply.ok());
    const RawReply decoded = DecodeReplyHeader(*reply);
    BENCH_CHECK(decoded.xid >= 1000 && decoded.xid < 1000 + out.burst);
    const double elapsed = NowSec() - sent_at[decoded.xid - 1000];
    if (decoded.status == 0) {
      ++out.ok;
      if (elapsed > kExpiryDeadlineMs * 1e-3 + kLateGraceS) {
        ++out.late_ok;
      }
    } else if (decoded.status ==
               static_cast<uint32_t>(StatusCode::kDeadlineExceeded)) {
      ++out.expired_replies;
    } else {
      ++out.other_errors;
    }
  }
  out.server_expired_dropped =
      (*host)->server().recorder().expired_total();
  (*owner)->Close();
  return out;
}

// --------------------------------------------------------- flood phase

struct FloodResult {
  size_t flood_connections = kFloodConnections;
  size_t peak_half_open = 0;
  size_t pool_queue_peak = 0;
  size_t pool_inflight_peak = 0;
  bool legit_ok = false;
  double legit_handshake_ms = 0;
  uint64_t timed_out = 0;
  uint64_t evicted = 0;
  uint64_t completed = 0;
  bool drained = false;
};

FloodResult RunFloodPhase(Env& env) {
  FloodResult out;
  // Let the load phases fully drain so the pool-peak samples below
  // measure the flood, not a straggling request.
  BENCH_CHECK(WaitFor(
      [&] { return env.host->queue_depth() == 0 && env.host->inflight() == 0; },
      10.0));
  const HandshakeReactor::Stats base = env.host->handshake_stats();

  std::vector<std::unique_ptr<TcpTransport>> flood;
  for (size_t i = 0; i < kFloodConnections; ++i) {
    auto conn = TcpTransport::Connect("127.0.0.1", env.host->port());
    BENCH_CHECK(conn.ok());
    flood.push_back(std::move(conn).value());
  }
  BENCH_CHECK(WaitFor(
      [&] {
        const size_t half_open = env.host->handshake_stats().half_open;
        out.peak_half_open = std::max(out.peak_half_open, half_open);
        return half_open >= kFloodConnections;
      },
      15.0));

  // While only the flood stands, the pool must be untouched: half-open
  // handshakes live on the event loop, never on workers. (Sampling stops
  // before the legitimate client connects — its own RPCs use the pool.)
  for (int i = 0; i < 20; ++i) {
    out.pool_queue_peak =
        std::max(out.pool_queue_peak, env.host->queue_depth());
    out.pool_inflight_peak =
        std::max(out.pool_inflight_peak, env.host->inflight());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const double t0 = NowSec();
  auto legit = DiscfsClient::Connect(
      "127.0.0.1", env.host->port(),
      ChannelIdentity{env.reader, BenchRand(90)},
      env.server_key.public_key());
  out.legit_handshake_ms = (NowSec() - t0) * 1e3;
  out.legit_ok = legit.ok() && (*legit)->ServerInfo().ok();

  out.drained = WaitFor(
      [&] { return env.host->handshake_stats().half_open == 0; },
      kHandshakeTimeoutMs * 1e-3 + 5.0);
  const HandshakeReactor::Stats end = env.host->handshake_stats();
  out.timed_out = end.timed_out - base.timed_out;
  out.evicted = end.evicted - base.evicted;
  out.completed = end.completed - base.completed;
  if (legit.ok()) {
    (*legit)->Close();
  }
  return out;
}

// ------------------------------------------------------------------ output

void WriteJson(std::FILE* f, const Corpus& corpus, size_t credentials,
               double saturation, const std::vector<PhaseResult>& phases,
               double goodput_ratio_2x, const DeadlineResult& dl,
               const FloodResult& fl, bool load_gates_enforced) {
  std::fprintf(f, "{\n  \"bench\": \"overload\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f,
               "  \"corpus\": {\"credentials\": %zu, \"principals\": %zu, "
               "\"intermediaries\": %zu, \"delegation_depth\": 3, "
               "\"files\": %zu, \"read_bytes\": %u, \"sign_s\": %.2f, "
               "\"submit_s\": %.2f},\n",
               credentials, corpus.principals, kIntermediaries, kFiles,
               kReadBytes, corpus.sign_s, corpus.submit_s);
  std::fprintf(f, "  \"saturation_ops_s\": %.0f,\n", saturation);
  std::fprintf(f, "  \"phases\": [\n");
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseResult& p = phases[i];
    std::fprintf(
        f,
        "    {\"offered_x\": %.1f, \"offered_ops_s\": %.0f, "
        "\"duration_s\": %.2f, \"sent\": %llu, \"ok\": %llu, "
        "\"shed\": %llu, \"deadline_exceeded\": %llu, "
        "\"other_errors\": %llu, \"goodput_ops_s\": %.0f, "
        "\"p50_ms\": %.2f, \"p99_ms\": %.2f, \"control_sent\": %llu, "
        "\"control_ok\": %llu, \"control_errors\": %llu, "
        "\"shed_control\": %llu, \"shed_namespace\": %llu, "
        "\"shed_data\": %llu}%s\n",
        p.offered_x, p.offered_ops_s, p.duration_s,
        static_cast<unsigned long long>(p.sent),
        static_cast<unsigned long long>(p.ok),
        static_cast<unsigned long long>(p.shed),
        static_cast<unsigned long long>(p.deadline_exceeded),
        static_cast<unsigned long long>(p.other_errors), p.goodput_ops_s,
        p.latency.p50_ms, p.latency.p99_ms,
        static_cast<unsigned long long>(p.control_sent),
        static_cast<unsigned long long>(p.control_ok),
        static_cast<unsigned long long>(p.control_errors),
        static_cast<unsigned long long>(p.shed_control),
        static_cast<unsigned long long>(p.shed_namespace),
        static_cast<unsigned long long>(p.shed_data),
        i + 1 < phases.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"sub_saturation_p99_ms\": %.2f,\n",
               phases[0].latency.p99_ms);
  std::fprintf(f, "  \"goodput_ratio_2x\": %.3f,\n", goodput_ratio_2x);
  std::fprintf(
      f,
      "  \"deadline\": {\"deadline_ms\": %u, \"per_op_us\": %.1f, "
      "\"burst\": %llu, \"ok\": %llu, \"expired_replies\": %llu, "
      "\"other_errors\": %llu, \"late_ok\": %llu, "
      "\"server_expired_dropped\": %llu},\n",
      dl.deadline_ms, dl.per_op_us,
      static_cast<unsigned long long>(dl.burst),
      static_cast<unsigned long long>(dl.ok),
      static_cast<unsigned long long>(dl.expired_replies),
      static_cast<unsigned long long>(dl.other_errors),
      static_cast<unsigned long long>(dl.late_ok),
      static_cast<unsigned long long>(dl.server_expired_dropped));
  std::fprintf(
      f,
      "  \"handshake_flood\": {\"flood_connections\": %zu, "
      "\"peak_half_open\": %zu, \"pool_queue_peak\": %zu, "
      "\"pool_inflight_peak\": %zu, \"legit_ok\": %s, "
      "\"legit_handshake_ms\": %.1f, \"timeout_ms\": %llu, "
      "\"timed_out\": %llu, \"evicted\": %llu, \"completed\": %llu, "
      "\"drained\": %s},\n",
      fl.flood_connections, fl.peak_half_open, fl.pool_queue_peak,
      fl.pool_inflight_peak, fl.legit_ok ? "true" : "false",
      fl.legit_handshake_ms,
      static_cast<unsigned long long>(kHandshakeTimeoutMs),
      static_cast<unsigned long long>(fl.timed_out),
      static_cast<unsigned long long>(fl.evicted),
      static_cast<unsigned long long>(fl.completed),
      fl.drained ? "true" : "false");
  std::fprintf(f, "  \"load_gates_enforced\": %s\n",
               load_gates_enforced ? "true" : "false");
  std::fprintf(f, "}\n");
}

int Run(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_overload.json";
  size_t credentials = 10000;
  if (argc > 2) {
    credentials = static_cast<size_t>(std::atoll(argv[2]));
  }
  credentials = std::max(credentials, kFiles + 10);

  const size_t hw = std::thread::hardware_concurrency();
  // Latency/goodput gates are hardware-sensitive (the open-loop drivers,
  // client demux threads, and the server share the cores); structural
  // gates below are always enforced.
  const bool load_gates_enforced = hw >= 4;
  const size_t drivers = hw >= 8 ? 8 : 4;

  std::printf("== Graceful overload: policy-aware shedding under "
              "open-loop load (%zu credentials, %zu-way delegation "
              "fan-out, %zu drivers, %zu workers) ==\n",
              credentials, kLicenseesPerCredential, drivers,
              kWorkerThreads);

  Env env = StartEnv();
  Corpus corpus = BuildCorpus(env, credentials);
  SubmitCorpus(env, corpus);
  std::printf("corpus: %zu credentials (%zu principals) signed in %.1fs, "
              "submitted in %.1fs\n",
              credentials, corpus.principals, corpus.sign_s,
              corpus.submit_s);

  std::vector<std::unique_ptr<RpcClient>> clients;
  for (size_t d = 0; d < drivers; ++d) {
    auto transport = TcpTransport::Connect("127.0.0.1", env.host->port());
    BENCH_CHECK(transport.ok());
    auto channel = SecureChannel::ClientHandshake(
        std::move(transport).value(),
        ChannelIdentity{env.reader, BenchRand(30 + d)},
        env.server_key.public_key());
    BENCH_CHECK(channel.ok());
    clients.push_back(
        std::make_unique<RpcClient>(std::move(channel).value()));
  }
  // Warm the per-(principal, handle) policy cache — and prove the corpus
  // admits the reader through the full depth-3 chain on every file.
  for (auto& client : clients) {
    for (const NfsFh& fh : env.files) {
      auto res = client
                     ->CallAsyncWithDeadline(
                         kNfsProgram,
                         static_cast<uint32_t>(NfsProc::kRead),
                         ReadArgs(fh, kReadBytes), 10000)
                     .get();
      BENCH_CHECK(res.ok());
    }
  }

  const double saturation = MeasureSaturation(clients, env.files);
  std::printf("saturation (closed loop, %zu x %zu in flight): %.0f ops/s\n",
              drivers, kSaturationInflight, saturation);

  std::printf("%-9s %10s %10s %10s %10s %10s %10s %8s %8s\n", "offered",
              "sent", "ok", "shed", "goodput/s", "p50 ms", "p99 ms",
              "ctrl ok", "ctrlshed");
  std::vector<PhaseResult> phases;
  std::atomic<uint64_t> control_counter{0};
  for (double x : {0.5, 1.0, 2.0}) {
    PhaseResult phase =
        RunPhase(env, clients, x, x * saturation, control_counter);
    std::printf("%-9.1f %10llu %10llu %10llu %10.0f %10.2f %10.2f "
                "%8llu %8llu\n",
                phase.offered_x,
                static_cast<unsigned long long>(phase.sent),
                static_cast<unsigned long long>(phase.ok),
                static_cast<unsigned long long>(phase.shed),
                phase.goodput_ops_s, phase.latency.p50_ms,
                phase.latency.p99_ms,
                static_cast<unsigned long long>(phase.control_ok),
                static_cast<unsigned long long>(phase.shed_control));
    std::fflush(stdout);
    phases.push_back(std::move(phase));
  }
  const double goodput_ratio_2x =
      saturation > 0 ? phases[2].goodput_ops_s / saturation : 0;

  for (auto& client : clients) {
    client->Close();
  }

  DeadlineResult dl = RunDeadlinePhase();
  std::printf("deadline: burst %llu at %.0fus/op, deadline %ums -> "
              "%llu ok, %llu expired at dequeue (server dropped %llu), "
              "%llu late ok\n",
              static_cast<unsigned long long>(dl.burst), dl.per_op_us,
              dl.deadline_ms, static_cast<unsigned long long>(dl.ok),
              static_cast<unsigned long long>(dl.expired_replies),
              static_cast<unsigned long long>(dl.server_expired_dropped),
              static_cast<unsigned long long>(dl.late_ok));

  FloodResult fl = RunFloodPhase(env);
  std::printf("flood: %zu half-open, pool queue peak %zu, inflight peak "
              "%zu, legit handshake %.0fms (%s), %llu timed out\n",
              fl.peak_half_open, fl.pool_queue_peak, fl.pool_inflight_peak,
              fl.legit_handshake_ms, fl.legit_ok ? "ok" : "FAILED",
              static_cast<unsigned long long>(fl.timed_out));

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  WriteJson(f, corpus, credentials, saturation, phases, goodput_ratio_2x,
            dl, fl, load_gates_enforced);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  // --- self-gates ---
  int failures = 0;
  uint64_t other = 0, control_errors = 0, control_sheds = 0;
  for (const PhaseResult& p : phases) {
    other += p.other_errors;
    control_errors += p.control_errors;
    control_sheds += p.shed_control;
  }
  if (other != 0 || control_errors != 0) {
    std::fprintf(stderr, "FAIL: %llu unexpected data errors, %llu "
                 "control errors\n",
                 static_cast<unsigned long long>(other),
                 static_cast<unsigned long long>(control_errors));
    ++failures;
  }
  if (control_sheds != 0) {
    std::fprintf(stderr, "FAIL: %llu control-plane ops shed (must ride "
                 "through to the hard limit)\n",
                 static_cast<unsigned long long>(control_sheds));
    ++failures;
  }
  if (phases[2].shed_data == 0) {
    std::fprintf(stderr, "FAIL: no data sheds at 2x offered load — "
                 "overload never engaged the watermark\n");
    ++failures;
  }
  if (dl.server_expired_dropped == 0 || dl.expired_replies == 0) {
    std::fprintf(stderr, "FAIL: deadline burst expired nothing "
                 "(server dropped %llu, client saw %llu)\n",
                 static_cast<unsigned long long>(dl.server_expired_dropped),
                 static_cast<unsigned long long>(dl.expired_replies));
    ++failures;
  }
  if (dl.late_ok != 0 || dl.other_errors != 0) {
    std::fprintf(stderr, "FAIL: %llu expired requests were executed "
                 "anyway (late OK replies), %llu other errors\n",
                 static_cast<unsigned long long>(dl.late_ok),
                 static_cast<unsigned long long>(dl.other_errors));
    ++failures;
  }
  if (fl.pool_queue_peak != 0 || fl.pool_inflight_peak != 0) {
    std::fprintf(stderr, "FAIL: handshake flood reached the worker pool "
                 "(queue peak %zu, inflight peak %zu)\n",
                 fl.pool_queue_peak, fl.pool_inflight_peak);
    ++failures;
  }
  if (!fl.legit_ok || fl.legit_handshake_ms >= kHandshakeTimeoutMs) {
    std::fprintf(stderr, "FAIL: legitimate handshake during flood: %s in "
                 "%.0fms (timeout %llums)\n",
                 fl.legit_ok ? "ok" : "failed", fl.legit_handshake_ms,
                 static_cast<unsigned long long>(kHandshakeTimeoutMs));
    ++failures;
  }
  if (!fl.drained || fl.peak_half_open < kFloodConnections) {
    std::fprintf(stderr, "FAIL: flood tracking (peak half-open %zu, "
                 "drained %d)\n",
                 fl.peak_half_open, fl.drained ? 1 : 0);
    ++failures;
  }
  if (load_gates_enforced) {
    if (phases[0].latency.p99_ms > kP99GateMs) {
      std::fprintf(stderr, "FAIL: p99 at 0.5x saturation %.2fms > %.0fms\n",
                   phases[0].latency.p99_ms, kP99GateMs);
      ++failures;
    }
    if (goodput_ratio_2x < kGoodputRatioGate) {
      std::fprintf(stderr, "FAIL: goodput under 2x overload is %.2fx "
                   "saturation (< %.2f)\n",
                   goodput_ratio_2x, kGoodputRatioGate);
      ++failures;
    }
  } else {
    std::printf("note: %zu hardware threads — p99/goodput gates recorded "
                "but not enforced\n", hw);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace discfs

int main(int argc, char** argv) { return discfs::Run(argc, argv); }
