// Ablation (ours, motivated by §5 "to improve performance, we use a cache
// of requested operations and policy results"): how the policy-result cache
// size changes DisCFS search time and the number of KeyNote evaluations.
// Sizes bracket the paper's 128.
#include <cstdio>

#include "bench/search.h"

using discfs::bench::BackendDiscfsServer;
using discfs::bench::BackendOptions;
using discfs::bench::BuildSourceTree;
using discfs::bench::MakeDiscfsBackend;
using discfs::bench::RunSearch;
using discfs::bench::SourceTreeSpec;

int main() {
  SourceTreeSpec spec;
  spec.directories = 12;
  spec.files_per_dir = 24;

  std::printf("== Ablation: DisCFS policy-cache size vs. search cost ==\n");
  std::printf("%-10s %10s %14s %12s %12s\n", "cache", "time (s)",
              "keynote evals", "hits", "misses");

  for (size_t cache_size : {0u, 1u, 8u, 32u, 128u, 1024u}) {
    BackendOptions opts;
    opts.policy_cache_size = cache_size;
    opts.device_mib = 384;
    auto backend = MakeDiscfsBackend(opts);
    if (!backend.ok()) {
      std::fprintf(stderr, "setup failed: %s\n",
                   backend.status().ToString().c_str());
      return 1;
    }
    auto info = BuildSourceTree(**backend, spec);
    if (!info.ok()) {
      std::fprintf(stderr, "tree build failed: %s\n",
                   info.status().ToString().c_str());
      return 1;
    }
    BackendDiscfsServer(**backend)->ResetTelemetry();
    auto result = RunSearch(**backend, spec);
    if (!result.ok()) {
      std::fprintf(stderr, "search failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    auto* server = BackendDiscfsServer(**backend);
    auto stats = server->stats_snapshot().cache;
    std::printf("%-10zu %10.3f %14llu %12llu %12llu\n", cache_size,
                result->seconds,
                static_cast<unsigned long long>(
                    server->counters().keynote_queries.load()),
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses));
    std::fflush(stdout);
  }
  return 0;
}
