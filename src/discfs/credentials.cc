#include "src/discfs/credentials.h"

#include "src/discfs/action_env.h"

namespace discfs {

std::string BuildConditions(const std::string& handle,
                            const CredentialOptions& options) {
  std::string cond = "(app_domain == \"" + std::string(kAppDomain) + "\")";
  if (!handle.empty()) {
    cond += " && (HANDLE == \"" + handle + "\")";
  }
  if (options.expires_at.has_value()) {
    cond += " && (timestamp < \"" + *options.expires_at + "\")";
  }
  if (options.outside_hours.has_value()) {
    const auto& [start, end] = *options.outside_hours;
    cond += " && (time_of_day < \"" + start + "\" || time_of_day >= \"" +
            end + "\")";
  }
  cond += " -> \"" + options.permissions + "\";";
  return cond;
}

Result<std::string> IssueCredential(const DsaPrivateKey& issuer,
                                    const DsaPublicKey& subject,
                                    const std::string& handle,
                                    const CredentialOptions& options) {
  keynote::AssertionBuilder builder;
  builder.SetAuthorizer(issuer.public_key().ToKeyNoteString())
      .SetLicensees("\"" + subject.ToKeyNoteString() + "\"")
      .SetConditions(BuildConditions(handle, options));
  if (!options.comment.empty()) {
    builder.SetComment(options.comment);
  }
  return builder.Sign(issuer, keynote::SignatureAlgorithm::kDsaSha1);
}

}  // namespace discfs
