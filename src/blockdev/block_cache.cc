#include "src/blockdev/block_cache.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "src/obs/metrics.h"
#include "src/util/strings.h"

namespace discfs {
namespace {

size_t DeriveShards(size_t capacity_blocks, size_t requested) {
  if (requested != 0) {
    // Round down to a power of two, clamp to [1, 16].
    size_t shards = 1;
    while (shards * 2 <= requested && shards < 16) shards *= 2;
    return shards;
  }
  // ~64 blocks per shard, power of two, at most 16 shards; one shard
  // for small capacities (same sizing rule as the signature cache).
  size_t shards = 1;
  while (shards < 16 && capacity_blocks / (shards * 2) >= 64) shards *= 2;
  return shards;
}

}  // namespace

BlockCache::BlockCache(std::shared_ptr<BlockDevice> base,
                       BlockCacheOptions opts)
    : base_(std::move(base)), opts_(opts), block_size_(base_->block_size()) {
  if (opts_.capacity_blocks < 8) opts_.capacity_blocks = 8;
  size_t shards = DeriveShards(opts_.capacity_blocks, opts_.num_shards);
  shard_mask_ = shards - 1;
  shard_capacity_ = std::max<size_t>(4, opts_.capacity_blocks / shards);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (opts_.flush_watermark == 0) {
    opts_.flush_watermark = std::max<size_t>(1, opts_.capacity_blocks / 4);
  }
  if (opts_.flusher_thread) {
    flusher_ = std::thread([this] { FlusherMain(); });
  }
}

BlockCache::~BlockCache() {
  (void)Sync();
  if (flusher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(flusher_mu_);
      stop_flusher_ = true;
    }
    flusher_cv_.notify_all();
    flusher_.join();
  }
}

void BlockCache::TouchLocked(Shard& shard, uint64_t block, Entry& entry) {
  shard.lru.erase(entry.lru_it);
  shard.lru.push_front(block);
  entry.lru_it = shard.lru.begin();
}

Status BlockCache::WritebackLocked(uint64_t block, Entry& entry) {
  Status st = base_->Write(block, entry.data.data());
  if (!st.ok()) {
    return st;
  }
  entry.dirty = false;
  dirty_count_.fetch_sub(1, std::memory_order_relaxed);
  cache_stats_.writebacks.fetch_add(1, std::memory_order_relaxed);
  return OkStatus();
}

Status BlockCache::EvictIfFullLocked(Shard& shard) {
  while (shard.map.size() >= shard_capacity_) {
    uint64_t victim = shard.lru.back();
    auto it = shard.map.find(victim);
    if (it->second.dirty) {
      Status st = WritebackLocked(victim, it->second);
      if (!st.ok()) {
        return st;
      }
    }
    shard.lru.pop_back();
    shard.map.erase(it);
    cache_stats_.evictions.fetch_add(1, std::memory_order_relaxed);
  }
  return OkStatus();
}

Status BlockCache::GetEntryLocked(Shard& shard, uint64_t block,
                                  bool fill_from_device, Entry** out) {
  auto it = shard.map.find(block);
  if (it != shard.map.end()) {
    cache_stats_.hits.fetch_add(1, std::memory_order_relaxed);
    TouchLocked(shard, block, it->second);
    *out = &it->second;
    return OkStatus();
  }
  cache_stats_.misses.fetch_add(1, std::memory_order_relaxed);
  Status st = EvictIfFullLocked(shard);
  if (!st.ok()) {
    return st;
  }
  Entry& entry = shard.map[block];
  entry.data.resize(block_size_);
  if (fill_from_device) {
    st = base_->Read(block, entry.data.data());
    if (!st.ok()) {
      shard.map.erase(block);
      return st;
    }
  }
  shard.lru.push_front(block);
  entry.lru_it = shard.lru.begin();
  *out = &entry;
  return OkStatus();
}

Status BlockCache::Read(uint64_t block, uint8_t* buf) {
  if (block >= base_->block_count()) {
    return OutOfRangeError(StrPrintf("cache read past device end: block %llu",
                                     static_cast<unsigned long long>(block)));
  }
  {
    Shard& shard = ShardFor(block);
    std::lock_guard<std::mutex> lock(shard.mu);
    Entry* entry = nullptr;
    Status st = GetEntryLocked(shard, block, /*fill_from_device=*/true, &entry);
    if (!st.ok()) {
      return st;
    }
    std::memcpy(buf, entry->data.data(), block_size_);
  }
  if (opts_.readahead_blocks > 0) {
    NoteSequentialRead(block);
  }
  return OkStatus();
}

Status BlockCache::Write(uint64_t block, const uint8_t* buf) {
  if (block >= base_->block_count()) {
    return OutOfRangeError(StrPrintf("cache write past device end: block %llu",
                                     static_cast<unsigned long long>(block)));
  }
  {
    Shard& shard = ShardFor(block);
    std::lock_guard<std::mutex> lock(shard.mu);
    Entry* entry = nullptr;
    // Full-block overwrite: no need to read the old contents on miss.
    Status st =
        GetEntryLocked(shard, block, /*fill_from_device=*/false, &entry);
    if (!st.ok()) {
      return st;
    }
    std::memcpy(entry->data.data(), buf, block_size_);
    if (!entry->dirty) {
      entry->dirty = true;
      dirty_count_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (dirty_count_.load(std::memory_order_relaxed) >= opts_.flush_watermark) {
    flusher_cv_.notify_one();
  }
  return OkStatus();
}

Status BlockCache::Modify(uint64_t block,
                          const std::function<void(uint8_t*)>& fn) {
  if (block >= base_->block_count()) {
    return OutOfRangeError(StrPrintf("cache modify past device end: block %llu",
                                     static_cast<unsigned long long>(block)));
  }
  {
    Shard& shard = ShardFor(block);
    std::lock_guard<std::mutex> lock(shard.mu);
    Entry* entry = nullptr;
    Status st = GetEntryLocked(shard, block, /*fill_from_device=*/true, &entry);
    if (!st.ok()) {
      return st;
    }
    fn(entry->data.data());
    if (!entry->dirty) {
      entry->dirty = true;
      dirty_count_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (dirty_count_.load(std::memory_order_relaxed) >= opts_.flush_watermark) {
    flusher_cv_.notify_one();
  }
  return OkStatus();
}

Status BlockCache::Sync() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [block, entry] : shard.map) {
      if (entry.dirty) {
        Status st = WritebackLocked(block, entry);
        if (!st.ok()) {
          return st;
        }
      }
    }
  }
  cache_stats_.sync_flushes.fetch_add(1, std::memory_order_relaxed);
  return OkStatus();
}

size_t BlockCache::DropDirty() {
  size_t dropped = 0;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      if (it->second.dirty) {
        shard.lru.erase(it->second.lru_it);
        it = shard.map.erase(it);
        dirty_count_.fetch_sub(1, std::memory_order_relaxed);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  cache_stats_.dropped_dirty.fetch_add(dropped, std::memory_order_relaxed);
  return dropped;
}

size_t BlockCache::cached_blocks() const {
  size_t total = 0;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

void BlockCache::ResetCacheStats() {
  cache_stats_.hits.store(0, std::memory_order_relaxed);
  cache_stats_.misses.store(0, std::memory_order_relaxed);
  cache_stats_.evictions.store(0, std::memory_order_relaxed);
  cache_stats_.writebacks.store(0, std::memory_order_relaxed);
  cache_stats_.readaheads.store(0, std::memory_order_relaxed);
  cache_stats_.sync_flushes.store(0, std::memory_order_relaxed);
  cache_stats_.dropped_dirty.store(0, std::memory_order_relaxed);
}

void BlockCache::RegisterMetrics(obs::MetricsRegistry* registry) {
  registry->RegisterGauge(
      "discfs_block_cache", "Block cache counters by kind", [this] {
        auto load = [](const std::atomic<uint64_t>& v) {
          return static_cast<double>(v.load(std::memory_order_relaxed));
        };
        return std::vector<obs::GaugeSample>{
            {"kind=\"hits\"", load(cache_stats_.hits)},
            {"kind=\"misses\"", load(cache_stats_.misses)},
            {"kind=\"evictions\"", load(cache_stats_.evictions)},
            {"kind=\"writebacks\"", load(cache_stats_.writebacks)},
            {"kind=\"readaheads\"", load(cache_stats_.readaheads)},
            {"kind=\"sync_flushes\"", load(cache_stats_.sync_flushes)},
            {"kind=\"dropped_dirty\"", load(cache_stats_.dropped_dirty)},
        };
      });
  registry->RegisterGauge("discfs_block_cache_dirty_blocks",
                          "Dirty blocks awaiting write-back", [this] {
                            return std::vector<obs::GaugeSample>{
                                {"", static_cast<double>(dirty_blocks())}};
                          });
  registry->RegisterGauge("discfs_block_cache_cached_blocks",
                          "Resident cached blocks across all shards", [this] {
                            return std::vector<obs::GaugeSample>{
                                {"", static_cast<double>(cached_blocks())}};
                          });
}

void BlockCache::NoteSequentialRead(uint64_t block) {
  uint64_t ra_begin = 0;
  uint64_t ra_end = 0;
  {
    std::lock_guard<std::mutex> lock(ra_mu_);
    Stream* stream = nullptr;
    for (auto& s : streams_) {
      if (s.next_block == block) {
        stream = &s;
        break;
      }
    }
    if (stream == nullptr) {
      // New (or broken) stream: claim a slot round-robin and start a run.
      stream = &streams_[stream_clock_++ % kStreams];
      stream->next_block = block + 1;
      stream->run_len = 1;
      stream->prefetched_to = block + 1;
      return;
    }
    stream->next_block = block + 1;
    stream->run_len++;
    if (stream->run_len < 2) {
      return;
    }
    // Confirmed sequential: keep the window opts_.readahead_blocks
    // ahead of the cursor, never re-prefetching what we already did.
    uint64_t want_end = block + 1 + opts_.readahead_blocks;
    want_end = std::min<uint64_t>(want_end, base_->block_count());
    if (want_end <= stream->prefetched_to) {
      return;
    }
    ra_begin = std::max(block + 1, stream->prefetched_to);
    ra_end = want_end;
    stream->prefetched_to = want_end;
  }
  PrefetchRange(ra_begin, ra_end);
}

void BlockCache::PrefetchRange(uint64_t begin, uint64_t end) {
  for (uint64_t block = begin; block < end; ++block) {
    Shard& shard = ShardFor(block);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.map.count(block) != 0) {
      continue;
    }
    if (!EvictIfFullLocked(shard).ok()) {
      return;
    }
    Entry& entry = shard.map[block];
    entry.data.resize(block_size_);
    if (!base_->Read(block, entry.data.data()).ok()) {
      shard.map.erase(block);
      return;
    }
    shard.lru.push_front(block);
    entry.lru_it = shard.lru.begin();
    cache_stats_.readaheads.fetch_add(1, std::memory_order_relaxed);
  }
}

Status BlockCache::FlushSome(size_t max_blocks, uint64_t* flushed) {
  uint64_t done = 0;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    // Flush least-recently-used dirty blocks first: hot blocks likely
    // get dirtied again, so flushing them early wastes device writes.
    for (auto it = shard.lru.rbegin();
         it != shard.lru.rend() && done < max_blocks; ++it) {
      auto& entry = shard.map.at(*it);
      if (!entry.dirty) {
        continue;
      }
      Status st = WritebackLocked(*it, entry);
      if (!st.ok()) {
        return st;
      }
      ++done;
    }
    if (done >= max_blocks) {
      break;
    }
  }
  if (flushed != nullptr) {
    *flushed = done;
  }
  return OkStatus();
}

void BlockCache::FlusherMain() {
  std::unique_lock<std::mutex> lock(flusher_mu_);
  while (!stop_flusher_) {
    auto woken = [this] {
      return stop_flusher_ ||
             dirty_count_.load(std::memory_order_relaxed) >=
                 opts_.flush_watermark;
    };
    if (opts_.flush_interval_ms > 0) {
      flusher_cv_.wait_for(
          lock, std::chrono::milliseconds(opts_.flush_interval_ms), woken);
    } else {
      flusher_cv_.wait(lock, woken);
    }
    if (stop_flusher_) {
      return;
    }
    lock.unlock();
    (void)FlushSome(~0ULL, nullptr);
    lock.lock();
  }
}

}  // namespace discfs
