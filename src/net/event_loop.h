// Shared epoll-driven event loop (a small Reactor).
//
// One poller thread owns an epoll instance; any number of fds register a
// callback and are dispatched level-triggered readability/writability from
// that single thread. This is what lets N RPC clients share one demux
// thread and a host serve every accepted connection without a
// thread-per-connection recv loop: total runtime threads stay
// O(workers + 1 poller) instead of O(connections).
//
// Contract:
//  - Callbacks run on the poller thread and must not block (no blocking
//    reads/writes, no waiting on worker results). Hand blocking work to a
//    WorkerPool and come back via Post().
//  - Register/ModifyInterest/Unregister/Post are safe from any thread.
//  - Unregister guarantees the fd's callback is not running and will never
//    run again once it returns (it waits out an in-flight dispatch unless
//    called from the poller thread itself, where that is already true).
//  - A cross-thread wakeup (Post, Stop) goes through an eventfd, so an
//    idle poller blocked in epoll_wait reacts immediately.
#ifndef DISCFS_SRC_NET_EVENT_LOOP_H_
#define DISCFS_SRC_NET_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "src/util/status.h"

namespace discfs {

class EventLoop {
 public:
  // Bitmask passed to callbacks.
  static constexpr uint32_t kReadable = 1u << 0;
  static constexpr uint32_t kWritable = 1u << 1;
  static constexpr uint32_t kError = 1u << 2;

  using Callback = std::function<void(uint32_t events)>;
  using Task = std::function<void()>;

  // Creates the epoll/eventfd pair and starts the poller thread.
  EventLoop();
  // Stops the poller, joins it, and drops any tasks still queued for Post
  // (their closures are destroyed, not run). Callers must unregister or
  // otherwise retire users of the loop first.
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Registers `fd` level-triggered. `cb` receives kReadable/kWritable (and
  // kError on EPOLLERR/EPOLLHUP, always paired with kReadable so read paths
  // observe the failure through their normal receive call).
  Status Register(int fd, bool want_read, bool want_write, Callback cb);

  // Changes the interest set of a registered fd.
  Status ModifyInterest(int fd, bool want_read, bool want_write);

  // Removes `fd`. After this returns, the callback is not executing and
  // will never execute again. Idempotent; callable from callbacks.
  void Unregister(int fd);

  // Runs `task` on the poller thread soon (FIFO with other posted tasks).
  // Tasks posted after the loop stopped are destroyed without running.
  void Post(Task task);

  // Runs `task` on the poller thread once `delay_ms` milliseconds have
  // passed (never earlier; possibly a little later if the loop is busy
  // dispatching). Safe from any thread. There is no cancellation handle:
  // callers that may outlive the interest capture shared state and check
  // a flag when the timer fires. Timers that have not fired when the
  // loop stops are destroyed without running, like posted tasks.
  void RunAfter(uint64_t delay_ms, Task task);

  // Timers currently armed (diagnostics).
  size_t timers_armed() const;

  // True when called from the poller thread (i.e. from a callback/task).
  bool InLoopThread() const;

  // Registered fds, excluding the internal wakeup eventfd.
  size_t registered() const;

  // Callback dispatches since construction (observability gauge).
  uint64_t dispatched() const {
    return dispatched_.load(std::memory_order_relaxed);
  }

 private:
  void PollLoop();
  void RunPostedTasks();
  void RunDueTimers();
  // epoll_wait timeout until the earliest armed timer, in ms (-1 = none).
  int TimerWaitMs();
  uint32_t EpollMask(bool want_read, bool want_write) const;

  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;
  std::thread poller_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<int, std::shared_ptr<Callback>> handlers_;
  std::deque<Task> tasks_;
  // Earliest-first timer queue; fired between epoll batches.
  std::multimap<std::chrono::steady_clock::time_point, Task> timers_;
  int dispatching_fd_ = -1;  // fd whose callback is currently running
  bool stopping_ = false;
  std::atomic<uint64_t> dispatched_{0};
};

}  // namespace discfs

#endif  // DISCFS_SRC_NET_EVENT_LOOP_H_
