#include "src/lockbox/lockbox.h"

#include "src/crypto/aead.h"

namespace discfs {

Bytes GenerateContentKey(const std::function<Bytes(size_t)>& rand_bytes) {
  return rand_bytes(Aead::kKeySize);
}

Bytes SealPayload(const Bytes& content_key, const Bytes& plaintext,
                  const std::function<Bytes(size_t)>& rand_bytes) {
  Aead aead(content_key);
  Bytes nonce = rand_bytes(Aead::kNonceSize);
  Bytes out = nonce;
  Append(out, aead.Seal(nonce, /*aad=*/Bytes(), plaintext));
  return out;
}

Result<Bytes> OpenPayload(const Bytes& content_key, const Bytes& sealed) {
  if (sealed.size() < Aead::kNonceSize + Aead::kTagSize) {
    return InvalidArgumentError("sealed payload shorter than nonce + tag");
  }
  Aead aead(content_key);
  Bytes nonce(sealed.begin(), sealed.begin() + Aead::kNonceSize);
  Bytes box(sealed.begin() + Aead::kNonceSize, sealed.end());
  return aead.Open(nonce, /*aad=*/Bytes(), box);
}

Result<NfsFh> LockboxService::BoxDir(bool create) {
  std::lock_guard<std::mutex> lock(init_mu_);
  ASSIGN_OR_RETURN(NfsFattr root, nfs_->GetRoot());
  NfsFh dir = root.fh;
  for (const char* name : {".lockbox", "box"}) {
    Result<NfsFattr> found = nfs_->Lookup(dir, name);
    if (found.ok()) {
      dir = found->fh;
      continue;
    }
    if (found.status().code() != StatusCode::kNotFound || !create) {
      return found.status();
    }
    ASSIGN_OR_RETURN(NfsFattr made, nfs_->Mkdir(dir, name, 0755));
    dir = made.fh;
  }
  return dir;
}

Result<wire::LockboxRecord> LockboxService::LoadLocked(uint32_t handle) {
  ASSIGN_OR_RETURN(NfsFh dir, BoxDir(/*create=*/false));
  ASSIGN_OR_RETURN(NfsFattr attr, nfs_->Lookup(dir, std::to_string(handle)));
  ASSIGN_OR_RETURN(Bytes raw,
                   nfs_->Read(attr.fh, 0, static_cast<uint32_t>(attr.size)));
  return wire::DecodeLockboxRecord(raw);
}

Status LockboxService::StoreLocked(const wire::LockboxRecord& record) {
  ASSIGN_OR_RETURN(NfsFh dir, BoxDir(/*create=*/true));
  std::string name = std::to_string(record.handle);
  // Replace = remove + create: NfsServer::Write never truncates, and a
  // shrinking record must not leave stale tail bytes behind.
  Result<NfsFattr> existing = nfs_->Lookup(dir, name);
  if (existing.ok()) {
    RETURN_IF_ERROR(nfs_->Remove(dir, name));
  } else if (existing.status().code() != StatusCode::kNotFound) {
    return existing.status();
  }
  ASSIGN_OR_RETURN(NfsFattr created, nfs_->Create(dir, name, 0600));
  return nfs_->Write(created.fh, 0, wire::EncodeLockboxRecord(record))
      .status();
}

Result<wire::LockboxRecord> LockboxService::Put(wire::LockboxRecord record,
                                                const Bytes& payload) {
  if (record.chunk_size < kMinChunkSize || record.chunk_size > kMaxChunkSize) {
    return InvalidArgumentError("lockbox chunk_size out of range");
  }
  uint64_t chunk_count =
      (payload.size() + record.chunk_size - 1) / record.chunk_size;
  if (chunk_count > wire::LockboxRecord::kMaxChunks) {
    return InvalidArgumentError("lockbox payload exceeds the chunk bound");
  }
  if (record.entries.size() > wire::LockboxRecord::kMaxEntries) {
    return InvalidArgumentError("lockbox entry list too large");
  }
  std::lock_guard<std::mutex> lock(StripeFor(record.handle));

  // Replacing an existing lockbox drops its chunk references first, so
  // payload bytes shared with the new version stay deduped (release then
  // re-put leaves the refcount unchanged) and dropped bytes get GCed.
  Result<wire::LockboxRecord> old = LoadLocked(record.handle);
  if (old.ok()) {
    for (const std::string& id : old->chunks) {
      RETURN_IF_ERROR(chunks_->Release(id));
    }
  } else if (old.status().code() != StatusCode::kNotFound) {
    return old.status();
  }

  record.chunks.clear();
  record.chunks.reserve(chunk_count);
  record.payload_size = payload.size();
  for (uint64_t i = 0; i < chunk_count; ++i) {
    size_t begin = static_cast<size_t>(i) * record.chunk_size;
    size_t end = std::min(payload.size(),
                          begin + static_cast<size_t>(record.chunk_size));
    Bytes piece(payload.begin() + begin, payload.begin() + end);
    ASSIGN_OR_RETURN(std::string id, chunks_->Put(piece));
    record.chunks.push_back(std::move(id));
  }
  RETURN_IF_ERROR(StoreLocked(record));
  return record;
}

Result<LockboxService::Box> LockboxService::Get(uint32_t handle) {
  std::lock_guard<std::mutex> lock(StripeFor(handle));
  Box box;
  ASSIGN_OR_RETURN(box.record, LoadLocked(handle));
  box.payload.reserve(box.record.payload_size);
  for (const std::string& id : box.record.chunks) {
    ASSIGN_OR_RETURN(Bytes piece, chunks_->Get(id));
    Append(box.payload, piece);
  }
  if (box.payload.size() != box.record.payload_size) {
    return DataLossError("lockbox payload size mismatch for handle " +
                         std::to_string(handle));
  }
  return box;
}

Result<wire::LockboxRecord> LockboxService::GetRecord(uint32_t handle) {
  std::lock_guard<std::mutex> lock(StripeFor(handle));
  return LoadLocked(handle);
}

Status LockboxService::Grant(uint32_t handle,
                             const wire::LockboxEntry& entry) {
  std::lock_guard<std::mutex> lock(StripeFor(handle));
  ASSIGN_OR_RETURN(wire::LockboxRecord record, LoadLocked(handle));
  int index = record.FindEntry(entry.recipient);
  if (index >= 0) {
    record.entries[index] = entry;  // re-grant replaces the wrapped key
  } else {
    if (record.entries.size() >= wire::LockboxRecord::kMaxEntries) {
      return ResourceExhaustedError("lockbox entry list full");
    }
    record.entries.push_back(entry);
  }
  return StoreLocked(record);
}

Status LockboxService::Revoke(uint32_t handle, const std::string& recipient) {
  std::lock_guard<std::mutex> lock(StripeFor(handle));
  ASSIGN_OR_RETURN(wire::LockboxRecord record, LoadLocked(handle));
  int index = record.FindEntry(recipient);
  if (index < 0) {
    return NotFoundError("no lockbox entry for that recipient");
  }
  record.entries.erase(record.entries.begin() + index);
  return StoreLocked(record);
}

Status LockboxService::Remove(uint32_t handle) {
  std::lock_guard<std::mutex> lock(StripeFor(handle));
  ASSIGN_OR_RETURN(wire::LockboxRecord record, LoadLocked(handle));
  for (const std::string& id : record.chunks) {
    RETURN_IF_ERROR(chunks_->Release(id));
  }
  ASSIGN_OR_RETURN(NfsFh dir, BoxDir(/*create=*/false));
  return nfs_->Remove(dir, std::to_string(handle));
}

}  // namespace discfs
