// Arbitrary-precision unsigned integers for the DSA/DH substrate.
//
// Representation: little-endian vector of 32-bit limbs, normalized so the
// most-significant limb is non-zero (zero is the empty vector). All values
// are non-negative; subtraction requires a >= b. Division is Knuth vol.2
// Algorithm D. This is deliberately a small, auditable bignum — enough for
// 1024-bit DSA/DH at benchmark-friendly speed, not a general math library.
#ifndef DISCFS_SRC_CRYPTO_BIGNUM_H_
#define DISCFS_SRC_CRYPTO_BIGNUM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/status.h"

namespace discfs {

class BigNum {
 public:
  BigNum() = default;
  explicit BigNum(uint64_t v);

  // Big-endian byte import/export (the network/KeyNote encoding).
  static BigNum FromBytes(const Bytes& be);
  // Fixed-width big-endian export, zero-padded on the left. If the value
  // needs more than `width` bytes the result is truncated from the left
  // (callers size width from the modulus, so this does not happen in
  // correct use).
  Bytes ToBytes(size_t width = 0) const;

  static Result<BigNum> FromHex(std::string_view hex);
  std::string ToHex() const;  // lowercase, no leading zeros, "0" for zero

  static Result<BigNum> FromDecimal(std::string_view dec);
  std::string ToDecimal() const;

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  // Number of significant bits; 0 for zero.
  size_t BitLength() const;
  bool Bit(size_t i) const;
  uint64_t ToUint64() const;  // low 64 bits

  // -1 / 0 / +1 as a < b, a == b, a > b.
  static int Compare(const BigNum& a, const BigNum& b);

  static BigNum Add(const BigNum& a, const BigNum& b);
  // Requires a >= b.
  static BigNum Sub(const BigNum& a, const BigNum& b);
  static BigNum Mul(const BigNum& a, const BigNum& b);
  // Requires !divisor.IsZero(). Returns {quotient, remainder}.
  static std::pair<BigNum, BigNum> DivMod(const BigNum& a, const BigNum& b);
  static BigNum Mod(const BigNum& a, const BigNum& m);

  static BigNum ShiftLeft(const BigNum& a, size_t bits);
  static BigNum ShiftRight(const BigNum& a, size_t bits);

  // (a * b) mod m, (a ^ e) mod m. Require !m.IsZero(). ModExp routes odd
  // moduli through a MontgomeryCtx (CIOS multiply, no division in the hot
  // loop) and falls back to ModExpReference for even moduli.
  static BigNum ModMul(const BigNum& a, const BigNum& b, const BigNum& m);
  static BigNum ModExp(const BigNum& base, const BigNum& exp, const BigNum& m);
  // Pre-Montgomery implementation (4-bit windows over ModMul's schoolbook
  // multiply + Knuth reduction). Works for any modulus; kept as the
  // equivalence-test and benchmark reference.
  static BigNum ModExpReference(const BigNum& base, const BigNum& exp,
                                const BigNum& m);
  // g^u1 * y^u2 mod m in ~one exponentiation (Shamir's trick: one shared
  // squaring chain, per-base 4-bit windows). The DSA-verify shape.
  static BigNum ModExpDouble(const BigNum& g, const BigNum& u1,
                             const BigNum& y, const BigNum& u2,
                             const BigNum& m);
  // Modular inverse; error if gcd(a, m) != 1.
  static Result<BigNum> ModInverse(const BigNum& a, const BigNum& m);

  static BigNum Gcd(const BigNum& a, const BigNum& b);

  // Miller-Rabin with `rounds` random bases supplied by `rand_below`
  // (callback returning a uniform value in [2, n-2]).
  static bool IsProbablePrime(
      const BigNum& n, int rounds,
      const std::function<BigNum(const BigNum& excl_hi)>& rand_below);

  // Uniform value in [0, bound) from a source of random bytes.
  static BigNum RandomBelow(const BigNum& bound,
                            const std::function<Bytes(size_t)>& rand_bytes);

  bool operator==(const BigNum& o) const { return limbs_ == o.limbs_; }
  bool operator!=(const BigNum& o) const { return limbs_ != o.limbs_; }
  bool operator<(const BigNum& o) const { return Compare(*this, o) < 0; }
  bool operator<=(const BigNum& o) const { return Compare(*this, o) <= 0; }
  bool operator>(const BigNum& o) const { return Compare(*this, o) > 0; }
  bool operator>=(const BigNum& o) const { return Compare(*this, o) >= 0; }

 private:
  friend class MontgomeryCtx;

  void Normalize();
  // Knuth Algorithm D core shared by DivMod and Mod: returns the
  // remainder; fills *quotient when non-null (the hot reductions pass
  // null and skip materializing quotient limbs).
  static BigNum DivModImpl(const BigNum& a, const BigNum& b,
                           BigNum* quotient);

  std::vector<uint32_t> limbs_;  // little-endian, no trailing zero limbs
};

// Montgomery-domain arithmetic for a fixed odd modulus: word-level CIOS
// multiply + interleaved REDC, so a modular multiply is one fused
// two-pass loop over the limbs instead of schoolbook multiply followed by
// Knuth division. Construction is the only place that divides; everything
// after is multiply/add/shift. Exponentiation uses 4-bit fixed windows;
// Precompute() lets a caller pay the 16-entry table once per base and
// amortize it across exponentiations (the DSA fixed-base g and per-key y).
//
// Thread-safe after construction: all methods are const and touch no
// shared mutable state.
class MontgomeryCtx {
 public:
  // Montgomery-domain element: exactly `width()` little-endian limbs.
  using Elem = std::vector<uint32_t>;
  // base^0 .. base^15 in the Montgomery domain.
  using WindowTable = std::vector<Elem>;

  // Fails unless m is odd and > 1 (REDC needs gcd(m, 2^32) == 1).
  static Result<MontgomeryCtx> Create(const BigNum& m);

  const BigNum& modulus() const { return m_; }
  size_t width() const { return n_; }

  BigNum ModExp(const BigNum& base, const BigNum& exp) const;
  BigNum ModExp(const WindowTable& base, const BigNum& exp) const;

  // a^ea * b^eb mod m with one shared squaring chain (Shamir's trick,
  // per-base 4-bit windows): ~|exp| squarings + |exp|/2 multiplies, versus
  // 2*|exp| squarings for two separate exponentiations.
  BigNum ModExpDouble(const BigNum& a, const BigNum& ea, const BigNum& b,
                      const BigNum& eb) const;
  BigNum ModExpDouble(const WindowTable& a, const BigNum& ea,
                      const WindowTable& b, const BigNum& eb) const;

  WindowTable Precompute(const BigNum& base) const;

  // Domain conversion (exposed for tests; exponentiation wraps these).
  Elem ToMont(const BigNum& a) const;
  BigNum FromMont(const Elem& a) const;
  // out = a * b * R^-1 mod m (CIOS). Aliasing out with a or b is fine.
  void MulMont(const Elem& a, const Elem& b, Elem& out) const;

 private:
  explicit MontgomeryCtx(BigNum m);

  // Core of ModExpDouble; either table pointer may be null when its
  // exponent is zero.
  BigNum ExpDoubleWithTables(const WindowTable* ta, const BigNum& ea,
                             const WindowTable* tb, const BigNum& eb) const;

  BigNum m_;
  size_t n_ = 0;        // limb width of every Elem
  uint32_t n0inv_ = 0;  // -m^-1 mod 2^32
  Elem m_limbs_;        // m, padded to n_
  Elem rr_;             // R^2 mod m (Montgomery form of R)
  Elem one_;            // R mod m   (Montgomery form of 1)
};

inline BigNum operator+(const BigNum& a, const BigNum& b) {
  return BigNum::Add(a, b);
}
inline BigNum operator-(const BigNum& a, const BigNum& b) {
  return BigNum::Sub(a, b);
}
inline BigNum operator*(const BigNum& a, const BigNum& b) {
  return BigNum::Mul(a, b);
}
inline BigNum operator/(const BigNum& a, const BigNum& b) {
  return BigNum::DivMod(a, b).first;
}
inline BigNum operator%(const BigNum& a, const BigNum& b) {
  return BigNum::Mod(a, b);
}

}  // namespace discfs

#endif  // DISCFS_SRC_CRYPTO_BIGNUM_H_
