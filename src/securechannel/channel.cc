#include "src/securechannel/channel.h"

#include "src/crypto/dh.h"
#include "src/crypto/hmac.h"
#include "src/crypto/sha.h"
#include "src/wire/xdr.h"

namespace discfs {
namespace {

constexpr size_t kNonceLen = 16;
constexpr char kKdfInfoClient[] = "discfs-channel-v1 client->server";
constexpr char kKdfInfoServer[] = "discfs-channel-v1 server->client";

struct Hello {
  Bytes identity_key;  // serialized DsaPublicKey
  Bytes dh_public;
  Bytes nonce;
};

Bytes EncodeHello(const Hello& h) {
  XdrWriter w;
  w.PutOpaque(h.identity_key);
  w.PutOpaque(h.dh_public);
  w.PutOpaque(h.nonce);
  return w.Take();
}

Result<Hello> DecodeHello(const Bytes& data) {
  XdrReader r(data);
  Hello h;
  ASSIGN_OR_RETURN(h.identity_key, r.GetOpaque());
  ASSIGN_OR_RETURN(h.dh_public, r.GetOpaque());
  ASSIGN_OR_RETURN(h.nonce, r.GetOpaque());
  if (!r.AtEnd()) {
    return DataLossError("trailing bytes in hello");
  }
  if (h.nonce.size() != kNonceLen) {
    return InvalidArgumentError("bad hello nonce length");
  }
  return h;
}

Bytes SignTranscript(const DsaPrivateKey& key, const Bytes& transcript) {
  DsaSignature sig = key.Sign(Sha256::Hash(transcript));
  return SerializeDsaSignature(sig, key.public_key().params());
}

Status VerifyTranscript(const DsaPublicKey& key, const Bytes& transcript,
                        const Bytes& sig_bytes) {
  ASSIGN_OR_RETURN(DsaSignature sig,
                   DeserializeDsaSignature(sig_bytes, key.params()));
  if (!key.Verify(Sha256::Hash(transcript), sig)) {
    return UnauthenticatedError("handshake signature verification failed");
  }
  return OkStatus();
}

struct TrafficKeys {
  Bytes client_to_server;
  Bytes server_to_client;
};

TrafficKeys DeriveKeys(const Bytes& dh_secret, const Bytes& nonce_c,
                       const Bytes& nonce_s) {
  Bytes salt = nonce_c;
  Append(salt, nonce_s);
  Bytes prk = HkdfExtract(salt, dh_secret);
  TrafficKeys keys;
  keys.client_to_server =
      HkdfExpand(prk, ToBytes(kKdfInfoClient), Aead::kKeySize);
  keys.server_to_client =
      HkdfExpand(prk, ToBytes(kKdfInfoServer), Aead::kKeySize);
  return keys;
}

}  // namespace

SecureChannel::SecureChannel(std::unique_ptr<MsgStream> transport,
                             Bytes send_key, Bytes recv_key,
                             DsaPublicKey peer_key)
    : transport_(std::move(transport)),
      send_aead_(std::move(send_key)),
      recv_aead_(std::move(recv_key)),
      peer_key_(std::move(peer_key)) {}

Bytes SecureChannel::BuildNonce(uint64_t seq) {
  Bytes nonce(Aead::kNonceSize, 0);
  for (int i = 0; i < 8; ++i) {
    nonce[4 + i] = static_cast<uint8_t>(seq >> (8 * i));
  }
  return nonce;
}

Result<std::unique_ptr<SecureChannel>> SecureChannel::ClientHandshake(
    std::unique_ptr<MsgStream> transport, const ChannelIdentity& identity,
    const std::optional<DsaPublicKey>& expected_server) {
  const DsaParams& group = identity.key.public_key().params();
  DhKeyPair dh = DhKeyPair::Generate(group, identity.rand_bytes);

  Hello client_hello{identity.key.public_key().Serialize(), dh.PublicValue(),
                     identity.rand_bytes(kNonceLen)};
  Bytes client_hello_bytes = EncodeHello(client_hello);
  RETURN_IF_ERROR(transport->Send(client_hello_bytes));

  ASSIGN_OR_RETURN(Bytes server_msg, transport->Recv());
  // ServerHello = hello-body || signature (XDR opaques).
  XdrReader r(server_msg);
  ASSIGN_OR_RETURN(Bytes server_hello_bytes, r.GetOpaque());
  ASSIGN_OR_RETURN(Bytes server_sig, r.GetOpaque());
  if (!r.AtEnd()) {
    return DataLossError("trailing bytes in server hello");
  }
  ASSIGN_OR_RETURN(Hello server_hello, DecodeHello(server_hello_bytes));
  ASSIGN_OR_RETURN(DsaPublicKey server_key,
                   DsaPublicKey::Deserialize(server_hello.identity_key));
  if (expected_server.has_value() && !(server_key == *expected_server)) {
    return UnauthenticatedError("server key does not match expected key");
  }

  Bytes transcript1 = client_hello_bytes;
  Append(transcript1, server_hello_bytes);
  RETURN_IF_ERROR(VerifyTranscript(server_key, transcript1, server_sig));

  ASSIGN_OR_RETURN(Bytes secret, dh.SharedSecret(server_hello.dh_public));
  TrafficKeys keys =
      DeriveKeys(secret, client_hello.nonce, server_hello.nonce);

  Bytes transcript2 = transcript1;
  Append(transcript2, server_sig);
  XdrWriter auth;
  auth.PutOpaque(SignTranscript(identity.key, transcript2));
  RETURN_IF_ERROR(transport->Send(auth.Take()));

  return std::unique_ptr<SecureChannel>(new SecureChannel(
      std::move(transport), std::move(keys.client_to_server),
      std::move(keys.server_to_client), std::move(server_key)));
}

Result<std::unique_ptr<SecureChannel>> SecureChannel::ServerHandshake(
    std::unique_ptr<MsgStream> transport, const ChannelIdentity& identity) {
  // The blocking entry point is the sans-io machine plus a trivial driver;
  // there is exactly one handshake implementation.
  ServerHandshakeMachine machine(identity);
  while (!machine.done()) {
    ASSIGN_OR_RETURN(Bytes message, transport->Recv());
    ASSIGN_OR_RETURN(ServerHandshakeMachine::Step step,
                     machine.OnMessage(message));
    if (!step.response.empty()) {
      RETURN_IF_ERROR(transport->Send(step.response));
    }
  }
  return machine.Finish(std::move(transport));
}

ServerHandshakeMachine::ServerHandshakeMachine(const ChannelIdentity& identity)
    : identity_(identity) {}

Result<ServerHandshakeMachine::Step> ServerHandshakeMachine::OnMessage(
    const Bytes& message) {
  switch (state_) {
    case State::kAwaitClientHello: {
      state_ = State::kFailed;  // restored on success below
      ASSIGN_OR_RETURN(Hello client_hello, DecodeHello(message));
      ASSIGN_OR_RETURN(DsaPublicKey client_key,
                       DsaPublicKey::Deserialize(client_hello.identity_key));
      const DsaParams& group = identity_.key.public_key().params();
      if (!(client_key.params() == group)) {
        return InvalidArgumentError("client uses a different DH group");
      }
      DhKeyPair dh = DhKeyPair::Generate(group, identity_.rand_bytes);

      Hello server_hello{identity_.key.public_key().Serialize(),
                         dh.PublicValue(), identity_.rand_bytes(kNonceLen)};
      Bytes server_hello_bytes = EncodeHello(server_hello);

      transcript1_ = message;
      Append(transcript1_, server_hello_bytes);
      server_sig_ = SignTranscript(identity_.key, transcript1_);

      ASSIGN_OR_RETURN(Bytes secret, dh.SharedSecret(client_hello.dh_public));
      TrafficKeys keys =
          DeriveKeys(secret, client_hello.nonce, server_hello.nonce);
      send_key_ = std::move(keys.server_to_client);
      recv_key_ = std::move(keys.client_to_server);
      client_key_ = std::move(client_key);

      XdrWriter w;
      w.PutOpaque(server_hello_bytes);
      w.PutOpaque(server_sig_);
      state_ = State::kAwaitClientAuth;
      Step step;
      step.response = w.Take();
      return step;
    }
    case State::kAwaitClientAuth: {
      state_ = State::kFailed;
      XdrReader r(message);
      ASSIGN_OR_RETURN(Bytes client_sig, r.GetOpaque());
      if (!r.AtEnd()) {
        return DataLossError("trailing bytes in client auth");
      }
      Bytes transcript2 = transcript1_;
      Append(transcript2, server_sig_);
      RETURN_IF_ERROR(VerifyTranscript(*client_key_, transcript2, client_sig));
      state_ = State::kDone;
      Step step;
      step.done = true;
      return step;
    }
    case State::kDone:
      return FailedPreconditionError("handshake already complete");
    case State::kFailed:
      return FailedPreconditionError("handshake already failed");
  }
  return InternalError("bad handshake state");
}

Result<std::unique_ptr<SecureChannel>> ServerHandshakeMachine::Finish(
    std::unique_ptr<MsgStream> transport) {
  if (state_ != State::kDone) {
    return FailedPreconditionError("handshake not complete");
  }
  state_ = State::kFailed;  // keys are consumed; the machine is spent
  return std::unique_ptr<SecureChannel>(
      new SecureChannel(std::move(transport), std::move(send_key_),
                        std::move(recv_key_), std::move(*client_key_)));
}

Bytes SecureChannel::SealRecord(const Bytes& message) {
  ++send_seq_;
  XdrWriter aad_writer;
  aad_writer.PutU64(send_seq_);
  Bytes aad = aad_writer.Take();
  Bytes sealed = send_aead_.Seal(BuildNonce(send_seq_), aad, message);
  XdrWriter w;
  w.PutU64(send_seq_);
  w.PutOpaque(sealed);
  return w.Take();
}

Status SecureChannel::Send(const Bytes& message) {
  // Seal and write under one lock so sequence numbers reach the wire in
  // order; the receiver's replay window then only ever advances.
  std::lock_guard<std::mutex> lock(send_mu_);
  return transport_->Send(SealRecord(message));
}

Result<bool> SecureChannel::SendNonBlocking(const Bytes& message) {
  std::lock_guard<std::mutex> lock(send_mu_);
  return transport_->SendNonBlocking(SealRecord(message));
}

Result<bool> SecureChannel::FlushSend() {
  std::lock_guard<std::mutex> lock(send_mu_);
  return transport_->FlushSend();
}

Result<Bytes> SecureChannel::OpenRecord(const Bytes& frame) {
  XdrReader r(frame);
  ASSIGN_OR_RETURN(uint64_t seq, r.GetU64());
  ASSIGN_OR_RETURN(Bytes sealed, r.GetOpaque());
  if (!r.AtEnd()) {
    return DataLossError("trailing bytes in record");
  }
  XdrWriter aad_writer;
  aad_writer.PutU64(seq);
  ASSIGN_OR_RETURN(Bytes plain,
                   recv_aead_.Open(BuildNonce(seq), aad_writer.Take(), sealed));
  // Replay check happens after authentication so an attacker cannot poison
  // the window with forged sequence numbers.
  if (!recv_window_.CheckAndUpdate(seq)) {
    return UnauthenticatedError("replayed or stale record");
  }
  return plain;
}

Result<Bytes> SecureChannel::Recv() {
  std::unique_lock<std::mutex> lock(recv_mu_);
  ASSIGN_OR_RETURN(Bytes frame, transport_->Recv());
  return OpenRecord(frame);
}

Result<std::optional<Bytes>> SecureChannel::TryRecv() {
  std::unique_lock<std::mutex> lock(recv_mu_);
  ASSIGN_OR_RETURN(std::optional<Bytes> frame, transport_->TryRecv());
  if (!frame.has_value()) {
    return std::optional<Bytes>();
  }
  ASSIGN_OR_RETURN(Bytes plain, OpenRecord(*frame));
  return std::optional<Bytes>(std::move(plain));
}

void SecureChannel::Close() { transport_->Close(); }

void SecureChannel::Shutdown() { transport_->Shutdown(); }

}  // namespace discfs
