// Request flight recorder (PR 9): the RPC runtime stamps every call at
// five points — frame received, call decoded, execution started on the
// worker pool, handler returned, reply enqueued for the writer — and this
// recorder turns the stamps into per-(prog, proc) span histograms
// (decode / queue_wait / execute / reply / total), a send-queue-depth and
// pool-queue-depth distribution, and a bounded ring of slow operations
// (over a configurable threshold) with their full span breakdown.
//
// Cost discipline: when the owning registry is disabled the runtime takes
// no timestamps at all (enabled() is one relaxed load), and when enabled
// the per-call cost is five clock reads, one shared-lock map probe, and a
// handful of relaxed histogram increments — bench/obs_overhead gates the
// total at <= 5% on the pipelined-RPC and warm-admission hot paths.
#ifndef DISCFS_SRC_OBS_RECORDER_H_
#define DISCFS_SRC_OBS_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "src/obs/metrics.h"

namespace discfs::obs {

// One operation that exceeded the slow threshold, with its span breakdown.
struct SlowOp {
  uint32_t prog = 0;
  uint32_t proc = 0;
  uint64_t trace_id = 0;  // 0 = untraced
  uint64_t total_ns = 0;
  uint64_t decode_ns = 0;
  uint64_t queue_wait_ns = 0;
  uint64_t execute_ns = 0;
  uint64_t reply_ns = 0;
};

// Per-call stamp set handed from the RPC runtime (all MonotonicNanos).
struct CallTimestamps {
  uint64_t received_ns = 0;    // frame pulled off the stream
  uint64_t decoded_ns = 0;     // call header + args decoded
  uint64_t exec_start_ns = 0;  // worker picked the request up
  uint64_t exec_end_ns = 0;    // handler returned
  uint64_t replied_ns = 0;     // reply enqueued for the writer
};

class RpcRecorder {
 public:
  explicit RpcRecorder(MetricsRegistry* registry);
  RpcRecorder(const RpcRecorder&) = delete;
  RpcRecorder& operator=(const RpcRecorder&) = delete;

  // The runtime's gate: when false it skips every clock read.
  bool enabled() const { return registry_->enabled(); }
  uint64_t Now() const { return MonotonicNanos(); }

  // Records one completed call. send_queue_depth is the per-connection
  // reply queue depth right after this reply was enqueued;
  // pool_queue_depth is the shared worker pool's backlog when the request
  // was submitted to it.
  void RecordCall(uint32_t prog, uint32_t proc, const CallTimestamps& ts,
                  size_t send_queue_depth, size_t pool_queue_depth,
                  uint64_t trace_id);

  // --- overload accounting (PR 10) ---
  // Shed (busy-rejected) and expired-at-dequeue counts per (prog, proc).
  // Unlike the span histograms these always count — they only fire on
  // overload events, which are off the happy path — so tests and the
  // overload bench read exact totals even with the registry disabled.
  // priority_class is the numeric RpcPriority (0 control, 1 namespace,
  // 2 data); out-of-range values clamp to the last class.
  void RecordShed(uint32_t prog, uint32_t proc, size_t priority_class);
  void RecordExpired(uint32_t prog, uint32_t proc);
  uint64_t shed_total() const;
  uint64_t shed_total(size_t priority_class) const;
  uint64_t expired_total() const;
  // Per-procedure breakdowns, keyed prog << 32 | proc.
  std::unordered_map<uint64_t, uint64_t> shed_by_proc() const;
  std::unordered_map<uint64_t, uint64_t> expired_by_proc() const;

  // Slow-op threshold on the total span; 0 records every call.
  void set_slow_threshold_ns(uint64_t ns) {
    slow_threshold_ns_.store(ns, std::memory_order_relaxed);
  }
  uint64_t slow_threshold_ns() const {
    return slow_threshold_ns_.load(std::memory_order_relaxed);
  }
  // Most recent slow operations (bounded ring, newest last).
  std::vector<SlowOp> slow_ops() const;
  uint64_t slow_ops_total() const;

  MetricsRegistry* registry() const { return registry_; }

 private:
  struct PerProc {
    Histogram* decode = nullptr;
    Histogram* queue_wait = nullptr;
    Histogram* execute = nullptr;
    Histogram* reply = nullptr;
    Histogram* total = nullptr;
  };
  PerProc* GetPerProc(uint32_t prog, uint32_t proc);

  static constexpr size_t kSlowRingCapacity = 64;

  // Mirrors kRpcPriorityCount in src/rpc/rpc.h (not included here: the
  // RPC layer depends on obs, not the other way around).
  static constexpr size_t kPriorityClasses = 3;

  MetricsRegistry* const registry_;
  Counter* const calls_total_;
  Counter* const slow_counter_;
  Counter* const shed_counter_;
  Counter* const expired_counter_;
  Histogram* const send_queue_depth_;
  Histogram* const pool_queue_depth_;
  std::atomic<uint64_t> slow_threshold_ns_{100'000'000};  // 100 ms

  // (prog << 32 | proc) -> span histograms. Reads (every call) take the
  // lock shared; the exclusive path runs once per distinct procedure.
  mutable std::shared_mutex map_mu_;
  std::unordered_map<uint64_t, std::unique_ptr<PerProc>> per_proc_;

  mutable std::mutex slow_mu_;
  std::deque<SlowOp> slow_ring_;

  std::atomic<uint64_t> shed_by_class_[kPriorityClasses] = {};
  std::atomic<uint64_t> expired_total_{0};
  mutable std::mutex overload_mu_;
  std::unordered_map<uint64_t, uint64_t> shed_by_proc_;
  std::unordered_map<uint64_t, uint64_t> expired_by_proc_;
};

}  // namespace discfs::obs

#endif  // DISCFS_SRC_OBS_RECORDER_H_
