#include "src/crypto/dsa.h"

#include <gtest/gtest.h>

#include "src/crypto/dh.h"
#include "src/crypto/groups.h"
#include "src/crypto/sha.h"
#include "src/util/prng.h"

namespace discfs {
namespace {

// Deterministic randomness for reproducible tests.
std::function<Bytes(size_t)> TestRand(uint64_t seed) {
  auto prng = std::make_shared<Prng>(seed);
  return [prng](size_t n) { return prng->NextBytes(n); };
}

class DsaTest : public ::testing::Test {
 protected:
  DsaTest() : key_(DsaPrivateKey::Generate(Dsa512(), TestRand(1))) {}
  DsaPrivateKey key_;
};

TEST_F(DsaTest, SignVerifyRoundTrip) {
  Bytes digest = Sha1::Hash("credential body");
  DsaSignature sig = key_.Sign(digest);
  EXPECT_TRUE(key_.public_key().Verify(digest, sig));
}

TEST_F(DsaTest, VerifyRejectsWrongMessage) {
  DsaSignature sig = key_.Sign(Sha1::Hash("message A"));
  EXPECT_FALSE(key_.public_key().Verify(Sha1::Hash("message B"), sig));
}

TEST_F(DsaTest, VerifyRejectsWrongKey) {
  Bytes digest = Sha1::Hash("message");
  DsaSignature sig = key_.Sign(digest);
  DsaPrivateKey other = DsaPrivateKey::Generate(Dsa512(), TestRand(2));
  EXPECT_FALSE(other.public_key().Verify(digest, sig));
}

TEST_F(DsaTest, VerifyRejectsTamperedSignature) {
  Bytes digest = Sha1::Hash("message");
  DsaSignature sig = key_.Sign(digest);
  DsaSignature bad = sig;
  bad.r = BigNum::Add(bad.r, BigNum(1));
  EXPECT_FALSE(key_.public_key().Verify(digest, bad));
  bad = sig;
  bad.s = BigNum::Add(bad.s, BigNum(1));
  EXPECT_FALSE(key_.public_key().Verify(digest, bad));
}

TEST_F(DsaTest, VerifyRejectsZeroAndOutOfRangeComponents) {
  Bytes digest = Sha1::Hash("message");
  DsaSignature sig = key_.Sign(digest);
  DsaSignature bad = sig;
  bad.r = BigNum();
  EXPECT_FALSE(key_.public_key().Verify(digest, bad));
  bad = sig;
  bad.s = BigNum();
  EXPECT_FALSE(key_.public_key().Verify(digest, bad));
  bad = sig;
  bad.r = Dsa512().q;  // r must be < q
  EXPECT_FALSE(key_.public_key().Verify(digest, bad));
}

TEST_F(DsaTest, DeterministicSignatures) {
  Bytes digest = Sha1::Hash("same message");
  DsaSignature s1 = key_.Sign(digest);
  DsaSignature s2 = key_.Sign(digest);
  EXPECT_EQ(s1.r, s2.r);
  EXPECT_EQ(s1.s, s2.s);
}

TEST_F(DsaTest, DifferentMessagesDifferentNonces) {
  DsaSignature s1 = key_.Sign(Sha1::Hash("m1"));
  DsaSignature s2 = key_.Sign(Sha1::Hash("m2"));
  // Identical r would mean nonce reuse (key-recovery hazard).
  EXPECT_NE(s1.r, s2.r);
}

TEST_F(DsaTest, SerializeDeserializePublicKey) {
  Bytes ser = key_.public_key().Serialize();
  auto back = DsaPublicKey::Deserialize(ser);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back.value(), key_.public_key());
}

TEST_F(DsaTest, DeserializeRejectsTruncation) {
  Bytes ser = key_.public_key().Serialize();
  for (size_t cut : {size_t{0}, size_t{1}, size_t{3}, ser.size() / 2,
                     ser.size() - 1}) {
    Bytes prefix(ser.begin(), ser.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_FALSE(DsaPublicKey::Deserialize(prefix).ok()) << cut;
  }
}

TEST_F(DsaTest, DeserializeRejectsTrailingBytes) {
  Bytes ser = key_.public_key().Serialize();
  ser.push_back(0);
  EXPECT_FALSE(DsaPublicKey::Deserialize(ser).ok());
}

TEST_F(DsaTest, KeyNoteStringRoundTrip) {
  std::string s = key_.public_key().ToKeyNoteString();
  EXPECT_EQ(s.rfind("dsa-hex:", 0), 0u);
  auto back = DsaPublicKey::FromKeyNoteString(s);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back.value(), key_.public_key());
}

TEST_F(DsaTest, KeyNoteStringRejectsBadPrefix) {
  EXPECT_FALSE(DsaPublicKey::FromKeyNoteString("rsa-hex:0011").ok());
}

TEST_F(DsaTest, KeyIdStableAndShort) {
  std::string id1 = key_.public_key().KeyId();
  std::string id2 = key_.public_key().KeyId();
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(id1.size(), 16u);
  DsaPrivateKey other = DsaPrivateKey::Generate(Dsa512(), TestRand(3));
  EXPECT_NE(other.public_key().KeyId(), id1);
}

TEST_F(DsaTest, SignatureWireRoundTrip) {
  Bytes digest = Sha1::Hash("message");
  DsaSignature sig = key_.Sign(digest);
  Bytes wire = SerializeDsaSignature(sig, Dsa512());
  EXPECT_EQ(wire.size(), 40u);  // 2 * 20-byte q width
  auto back = DeserializeDsaSignature(wire, Dsa512());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->r, sig.r);
  EXPECT_EQ(back->s, sig.s);
}

TEST_F(DsaTest, SignatureWireRejectsBadLength) {
  EXPECT_FALSE(DeserializeDsaSignature(Bytes(39, 0), Dsa512()).ok());
  EXPECT_FALSE(DeserializeDsaSignature(Bytes(41, 0), Dsa512()).ok());
}

TEST(DsaSha256Digests, SignVerifyWithSha256Truncation) {
  // Digests longer than q must be truncated to the leftmost bits; verify a
  // 256-bit digest works against the 160-bit q.
  DsaPrivateKey key = DsaPrivateKey::Generate(Dsa512(), TestRand(4));
  Bytes digest = Sha256::Hash("long digest input");
  DsaSignature sig = key.Sign(digest);
  EXPECT_TRUE(key.public_key().Verify(digest, sig));
}

TEST(Groups, EmbeddedGroupsValidate) {
  auto rand = TestRand(5);
  EXPECT_TRUE(ValidateDsaParams(Dsa512(), rand).ok());
  EXPECT_TRUE(ValidateDsaParams(Dsa1024(), rand).ok());
  EXPECT_EQ(Dsa1024().p.BitLength(), 1024u);
  EXPECT_EQ(Dsa1024().q.BitLength(), 160u);
  EXPECT_EQ(Dsa512().p.BitLength(), 512u);
  EXPECT_EQ(Dsa512().q.BitLength(), 160u);
}

TEST(Groups, GenerateSmallGroup) {
  auto rand = TestRand(6);
  DsaParams params = GenerateDsaParams(256, 160, rand);
  EXPECT_TRUE(ValidateDsaParams(params, rand).ok());
  EXPECT_EQ(params.p.BitLength(), 256u);
}

TEST(Groups, ValidateRejectsCorruptedParams) {
  auto rand = TestRand(7);
  DsaParams bad = Dsa512();
  bad.p = BigNum::Add(bad.p, BigNum(2));  // p+2: almost surely composite, and
                                          // q no longer divides p-1
  EXPECT_FALSE(ValidateDsaParams(bad, rand).ok());

  bad = Dsa512();
  bad.g = BigNum(1);
  EXPECT_FALSE(ValidateDsaParams(bad, rand).ok());
}

// ----- DH -----

TEST(Dh, SharedSecretAgreement) {
  auto rand_a = TestRand(10);
  auto rand_b = TestRand(11);
  DhKeyPair alice = DhKeyPair::Generate(Dsa512(), rand_a);
  DhKeyPair bob = DhKeyPair::Generate(Dsa512(), rand_b);
  auto s1 = alice.SharedSecret(bob.PublicValue());
  auto s2 = bob.SharedSecret(alice.PublicValue());
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1.value(), s2.value());
  EXPECT_EQ(s1->size(), Dsa512().p.ToBytes().size());
}

TEST(Dh, DistinctPairsDistinctSecrets) {
  auto rand = TestRand(12);
  DhKeyPair a = DhKeyPair::Generate(Dsa512(), rand);
  DhKeyPair b = DhKeyPair::Generate(Dsa512(), rand);
  DhKeyPair c = DhKeyPair::Generate(Dsa512(), rand);
  auto ab = a.SharedSecret(b.PublicValue());
  auto ac = a.SharedSecret(c.PublicValue());
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ac.ok());
  EXPECT_NE(ab.value(), ac.value());
}

TEST(Dh, RejectsOutOfRangePeerValues) {
  auto rand = TestRand(13);
  DhKeyPair a = DhKeyPair::Generate(Dsa512(), rand);
  // y = 0, y = 1, y = p-1, y = p are all invalid.
  size_t width = Dsa512().p.ToBytes().size();
  EXPECT_FALSE(a.SharedSecret(BigNum(0).ToBytes(width)).ok());
  EXPECT_FALSE(a.SharedSecret(BigNum(1).ToBytes(width)).ok());
  BigNum p_minus_1 = BigNum::Sub(Dsa512().p, BigNum(1));
  EXPECT_FALSE(a.SharedSecret(p_minus_1.ToBytes(width)).ok());
  EXPECT_FALSE(a.SharedSecret(Dsa512().p.ToBytes(width)).ok());
}

TEST(Dh, RejectsValueOutsideSubgroup) {
  auto rand = TestRand(14);
  DhKeyPair a = DhKeyPair::Generate(Dsa512(), rand);
  // 2 is (with overwhelming probability) not in the order-q subgroup for our
  // groups; a small-subgroup/confinement attack would send such values.
  size_t width = Dsa512().p.ToBytes().size();
  BigNum two(2);
  if (BigNum::Compare(BigNum::ModExp(two, Dsa512().q, Dsa512().p),
                      BigNum(1)) != 0) {
    EXPECT_FALSE(a.SharedSecret(two.ToBytes(width)).ok());
  }
}

}  // namespace
}  // namespace discfs
