#include "src/cluster/fault.h"

namespace discfs::cluster {

void FaultSchedule::BlockLink(const std::string& a, const std::string& b) {
  std::lock_guard<std::mutex> lock(mu_);
  blocked_.insert(Key(a, b));
}

void FaultSchedule::HealLink(const std::string& a, const std::string& b) {
  std::lock_guard<std::mutex> lock(mu_);
  blocked_.erase(Key(a, b));
}

void FaultSchedule::HealAll() {
  std::lock_guard<std::mutex> lock(mu_);
  blocked_.clear();
  delays_.clear();
}

void FaultSchedule::SetLinkDelay(const std::string& a, const std::string& b,
                                 std::chrono::milliseconds delay) {
  std::lock_guard<std::mutex> lock(mu_);
  if (delay.count() <= 0) {
    delays_.erase(Key(a, b));
  } else {
    delays_[Key(a, b)] = delay;
  }
}

bool FaultSchedule::Blocked(const std::string& from,
                            const std::string& to) const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocked_.count(Key(from, to)) != 0;
}

std::chrono::milliseconds FaultSchedule::Delay(const std::string& from,
                                               const std::string& to) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = delays_.find(Key(from, to));
  return it == delays_.end() ? std::chrono::milliseconds(0) : it->second;
}

uint64_t FaultSchedule::blocked_links() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocked_.size();
}

}  // namespace discfs::cluster
