// Lockbox sharing benchmark: content-addressed dedup across users and
// cluster-wide revocation of a single device, end to end over RPC.
//
// Phase 1 (single node): kPublicUsers clients each store the SAME public
// corpus into their own file. Content addressing must collapse the
// storage to one copy — the dedup ratio (dedup hits / chunk puts) is
// (users-1)/users per fully shared corpus and must stay >= 0.9. Then
// kPrivateUsers clients seal the same plaintext under their OWN random
// content keys; those ciphertext chunks must never collide (dedup across
// private data would leak plaintext equality — the Bifrost caveat).
//
// Phase 2 (two nodes, coherence fabric): one user, three device keys as
// delegation leaves. One device's credential is revoked on node A; after
// propagation every lockbox fetch by that device on node B must be
// denied (denial rate 1.0) while the sibling devices keep being served
// from node B's warm policy cache (zero KeyNote recomputations).
//
// Output: table on stdout plus BENCH_lockbox.json (path from argv[1]).
// Schema documented in docs/BENCH_SCHEMAS.md and enforced by
// tools/check_bench_schema.py. Self-gates: public dedup ratio >= 0.9,
// private dedup hits == 0, revoked-device denial rate == 1.0, sibling
// keynote queries == 0.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/blockdev/blockdev.h"
#include "src/cluster/fabric.h"
#include "src/crypto/groups.h"
#include "src/crypto/keywrap.h"
#include "src/discfs/action_env.h"
#include "src/discfs/client.h"
#include "src/discfs/credentials.h"
#include "src/discfs/host.h"
#include "src/ffs/ffs.h"
#include "src/lockbox/chunkstore.h"
#include "src/lockbox/lockbox.h"
#include "src/util/prng.h"

namespace discfs {
namespace {

constexpr size_t kPublicUsers = 16;
constexpr size_t kPrivateUsers = 8;
constexpr size_t kPayloadBytes = 256 << 10;
constexpr uint32_t kChunkBytes = 16 << 10;
constexpr size_t kRevokedAttempts = 20;
constexpr auto kConvergeTimeout = std::chrono::seconds(30);

std::function<Bytes(size_t)> BenchRand(uint64_t seed) {
  return LockedPrngBytes(seed);
}

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Node {
  std::shared_ptr<FfsVfs> vfs;
  std::unique_ptr<DiscfsHost> host;
};

Node StartNode(const DsaPrivateKey& key, const DsaPublicKey& admin_key,
               uint64_t seed, std::vector<DsaPublicKey> trusted = {},
               bool cluster = false) {
  Node node;
  auto dev = std::make_shared<MemBlockDevice>(16384, 4096);
  auto fs = Ffs::Format(dev, FfsFormatOptions{4096});
  if (!fs.ok()) {
    std::fprintf(stderr, "format failed: %s\n",
                 fs.status().ToString().c_str());
    std::abort();
  }
  node.vfs = std::make_shared<FfsVfs>(std::move(fs).value());
  DiscfsServerConfig config;
  config.server_key = key;
  config.rand_bytes = BenchRand(seed);
  config.cluster_trusted_keys = std::move(trusted);
  config.policy_assertions.push_back(
      "Authorizer: \"POLICY\"\n"
      "Licensees: \"" + admin_key.ToKeyNoteString() + "\"\n"
      "Conditions: app_domain == \"DisCFS\" -> \"RWX\";\n");
  DiscfsHostOptions options;
  options.cluster_enabled = cluster;
  auto host = DiscfsHost::Start(node.vfs, std::move(config), /*port=*/0,
                                std::move(options));
  if (!host.ok()) {
    std::fprintf(stderr, "host start failed: %s\n",
                 host.status().ToString().c_str());
    std::abort();
  }
  node.host = std::move(host).value();
  return node;
}

#define BENCH_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__,    \
                   #cond);                                             \
      std::abort();                                                    \
    }                                                                  \
  } while (0)

struct DedupResult {
  uint64_t public_puts = 0;
  uint64_t public_dedup_hits = 0;
  uint64_t public_stored_chunks = 0;
  double public_dedup_ratio = 0;
  uint64_t private_puts = 0;
  uint64_t private_dedup_hits = 0;
  uint64_t private_unique_chunks = 0;
  double put_mb_s = 0;
  double get_mb_s = 0;
  // Mark/sweep audit over the final store state (PR 10): every stored
  // chunk's refcount must equal the live references from lockbox records.
  uint64_t audit_records = 0;
  uint64_t audit_chunks = 0;
  uint64_t audit_live_references = 0;
  bool audit_clean = false;
};

DedupResult RunDedupPhase() {
  DedupResult out;
  DsaPrivateKey admin = DsaPrivateKey::Generate(Dsa512(), BenchRand(1));
  DsaPrivateKey server = DsaPrivateKey::Generate(Dsa512(), BenchRand(2));
  Node node = StartNode(server, admin.public_key(), 10);

  // Varied content so chunks within one payload are distinct — the only
  // dedup measured is the cross-user kind.
  Bytes corpus = BenchRand(42)(kPayloadBytes);

  size_t total_users = kPublicUsers + kPrivateUsers;
  std::vector<DsaPrivateKey> users;
  std::vector<std::unique_ptr<DiscfsClient>> clients;
  std::vector<NfsFh> fhs;
  CredentialOptions rw;
  rw.permissions = "RW";
  for (size_t u = 0; u < total_users; ++u) {
    users.push_back(DsaPrivateKey::Generate(Dsa512(), BenchRand(100 + u)));
    std::string path = "/user-" + std::to_string(u) + ".bin";
    BENCH_CHECK(WriteFileAt(*node.vfs, path, "x").ok());
    InodeAttr attr = ResolvePath(*node.vfs, path).value();
    fhs.push_back({attr.inode, attr.generation});
    ChannelIdentity id{users[u], BenchRand(200 + u)};
    auto client = DiscfsClient::Connect("127.0.0.1", node.host->port(), id,
                                        server.public_key());
    BENCH_CHECK(client.ok());
    clients.push_back(std::move(client).value());
    std::string cred = IssueCredential(admin, users[u].public_key(),
                                       HandleString(attr.inode), rw)
                           .value();
    BENCH_CHECK(clients[u]->SubmitCredential(cred).ok());
  }

  // --- public corpus: every user stores the same bytes ---
  ChunkStore::Stats before = node.host->server().chunkstore().stats();
  double t0 = NowSec();
  for (size_t u = 0; u < kPublicUsers; ++u) {
    BENCH_CHECK(clients[u]
                    ->PutLockbox(fhs[u], /*sealed=*/false, kChunkBytes,
                                 corpus, {})
                    .ok());
  }
  double put_s = NowSec() - t0;
  ChunkStore::Stats after = node.host->server().chunkstore().stats();
  out.public_puts = after.puts - before.puts;
  out.public_dedup_hits = after.dedup_hits - before.dedup_hits;
  out.public_stored_chunks = after.stored - before.stored;
  out.public_dedup_ratio =
      out.public_puts == 0
          ? 0
          : static_cast<double>(out.public_dedup_hits) / out.public_puts;
  out.put_mb_s =
      (kPublicUsers * kPayloadBytes) / (put_s * 1024.0 * 1024.0);

  t0 = NowSec();
  for (size_t u = 0; u < kPublicUsers; ++u) {
    auto fetch = clients[u]->GetLockbox(fhs[u]);
    BENCH_CHECK(fetch.ok());
    BENCH_CHECK(fetch->payload == corpus);
  }
  double get_s = NowSec() - t0;
  out.get_mb_s =
      (kPublicUsers * kPayloadBytes) / (get_s * 1024.0 * 1024.0);

  // --- private corpus: same plaintext, per-user content keys ---
  before = after;
  for (size_t u = kPublicUsers; u < total_users; ++u) {
    Bytes key = GenerateContentKey(BenchRand(300 + u));
    Bytes sealed = SealPayload(key, corpus, BenchRand(400 + u));
    std::vector<wire::LockboxEntry> entries;
    entries.push_back(
        {users[u].public_key().ToKeyNoteString(),
         WrapKey(users[u].public_key(), key, BenchRand(500 + u)).value()});
    BENCH_CHECK(clients[u]
                    ->PutLockbox(fhs[u], /*sealed=*/true, kChunkBytes,
                                 sealed, entries)
                    .ok());
  }
  after = node.host->server().chunkstore().stats();
  out.private_puts = after.puts - before.puts;
  out.private_dedup_hits = after.dedup_hits - before.dedup_hits;
  out.private_unique_chunks = after.stored - before.stored;

  // All mutation is quiesced: audit the final store state.
  auto audit = node.host->server().chunkstore().Audit();
  BENCH_CHECK(audit.ok());
  out.audit_records = audit->live_records;
  out.audit_chunks = audit->chunks_scanned;
  out.audit_live_references = audit->live_references;
  out.audit_clean = audit->clean();
  if (!audit->clean()) {
    std::fprintf(stderr,
                 "audit: %zu orphaned, %zu over-referenced, %zu "
                 "under-referenced, %zu missing, %zu corrupt\n",
                 audit->orphaned.size(), audit->over_referenced.size(),
                 audit->under_referenced.size(), audit->missing.size(),
                 audit->corrupt.size());
  }

  for (auto& client : clients) {
    client->Close();
  }
  return out;
}

struct RevocationResult {
  size_t devices = 3;
  size_t revoked_attempts = 0;
  size_t revoked_denied = 0;
  double denial_rate = 0;
  size_t sibling_fetches = 0;
  uint64_t sibling_keynote_queries = 0;
  double propagation_ms = 0;
};

RevocationResult RunRevocationPhase() {
  RevocationResult out;
  DsaPrivateKey admin = DsaPrivateKey::Generate(Dsa512(), BenchRand(1));
  DsaPrivateKey server_a = DsaPrivateKey::Generate(Dsa512(), BenchRand(2));
  DsaPrivateKey server_b = DsaPrivateKey::Generate(Dsa512(), BenchRand(3));
  DsaPrivateKey user = DsaPrivateKey::Generate(Dsa512(), BenchRand(4));

  Node node_a = StartNode(server_a, admin.public_key(), 10,
                          {server_b.public_key()}, /*cluster=*/true);
  Node node_b = StartNode(server_b, admin.public_key(), 11,
                          {server_a.public_key()}, /*cluster=*/true);
  BENCH_CHECK(node_a.host
                  ->AddClusterPeer({"127.0.0.1", node_b.host->port(),
                                    server_b.public_key()})
                  .ok());
  BENCH_CHECK(node_b.host
                  ->AddClusterPeer({"127.0.0.1", node_a.host->port(),
                                    server_a.public_key()})
                  .ok());

  BENCH_CHECK(WriteFileAt(*node_b.vfs, "/vault.bin", "x").ok());
  InodeAttr file = ResolvePath(*node_b.vfs, "/vault.bin").value();
  NfsFh fh{file.inode, file.generation};

  CredentialOptions rw;
  rw.permissions = "RW";
  CredentialOptions ro;
  ro.permissions = "R";
  std::string user_cred =
      IssueCredential(admin, user.public_key(), HandleString(file.inode), rw)
          .value();

  ChannelIdentity user_id{user, BenchRand(20)};
  auto user_client = DiscfsClient::Connect("127.0.0.1", node_b.host->port(),
                                           user_id, server_b.public_key());
  BENCH_CHECK(user_client.ok());
  BENCH_CHECK((*user_client)->SubmitCredential(user_cred).ok());

  Bytes plaintext = BenchRand(43)(kPayloadBytes);
  Bytes content_key = GenerateContentKey(BenchRand(30));
  Bytes sealed = SealPayload(content_key, plaintext, BenchRand(31));

  std::vector<DsaPrivateKey> devices;
  std::vector<wire::LockboxEntry> entries;
  for (size_t i = 0; i < out.devices; ++i) {
    devices.push_back(DsaPrivateKey::Generate(Dsa512(), BenchRand(50 + i)));
    entries.push_back(
        {devices[i].public_key().ToKeyNoteString(),
         WrapKey(devices[i].public_key(), content_key, BenchRand(60 + i))
             .value()});
  }
  BENCH_CHECK((*user_client)
                  ->PutLockbox(fh, /*sealed=*/true, kChunkBytes, sealed,
                               entries)
                  .ok());

  std::vector<std::unique_ptr<DiscfsClient>> device_clients;
  std::vector<std::string> device_cred_ids;
  for (size_t i = 0; i < out.devices; ++i) {
    ChannelIdentity id{devices[i], BenchRand(70 + i)};
    auto client = DiscfsClient::Connect("127.0.0.1", node_b.host->port(),
                                        id, server_b.public_key());
    BENCH_CHECK(client.ok());
    device_clients.push_back(std::move(client).value());
    std::string cred = IssueCredential(user, devices[i].public_key(),
                                       HandleString(file.inode), ro)
                           .value();
    device_cred_ids.push_back(
        device_clients[i]->SubmitCredential(cred).value());
    auto fetch = device_clients[i]->GetLockbox(fh);
    BENCH_CHECK(fetch.ok());
    int index = fetch->record.FindEntry(
        devices[i].public_key().ToKeyNoteString());
    BENCH_CHECK(index >= 0);
    Bytes key =
        UnwrapKey(devices[i], fetch->record.entries[index].wrapped_key)
            .value();
    BENCH_CHECK(OpenPayload(key, fetch->payload).value() == plaintext);
  }

  // All three grants are warm on B before the revocation.
  node_b.host->server().ResetTelemetry();
  for (auto& client : device_clients) {
    BENCH_CHECK(client->GetLockbox(fh).ok());
  }
  BENCH_CHECK(node_b.host->server().counters().keynote_queries.load() == 0);

  // Device 0 is lost. Revocation is ACCEPTED ON A (which never installed
  // the credential) and must deny on B through the fabric.
  double t0 = NowSec();
  node_a.host->server().RemoveCredential(device_cred_ids[0]);
  BENCH_CHECK(node_a.host->fabric()->WaitForAck(
      node_a.host->fabric()->stats().head_seq, kConvergeTimeout));
  out.propagation_ms = (NowSec() - t0) * 1e3;

  node_b.host->server().ResetTelemetry();
  // Siblings first: they must be served from B's cache.
  for (size_t i = 1; i < out.devices; ++i) {
    BENCH_CHECK(device_clients[i]->GetLockbox(fh).ok());
    ++out.sibling_fetches;
  }
  out.sibling_keynote_queries =
      node_b.host->server().counters().keynote_queries.load();

  for (size_t k = 0; k < kRevokedAttempts; ++k) {
    ++out.revoked_attempts;
    auto fetch = device_clients[0]->GetLockbox(fh);
    if (!fetch.ok() &&
        fetch.status().code() == StatusCode::kPermissionDenied) {
      ++out.revoked_denied;
    }
  }
  out.denial_rate =
      out.revoked_attempts == 0
          ? 0
          : static_cast<double>(out.revoked_denied) / out.revoked_attempts;

  (*user_client)->Close();
  for (auto& client : device_clients) {
    client->Close();
  }
  return out;
}

void WriteJson(std::FILE* f, const DedupResult& dedup,
               const RevocationResult& rev) {
  std::fprintf(f, "{\n  \"bench\": \"lockbox_sharing\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"public_users\": %zu,\n", kPublicUsers);
  std::fprintf(f, "  \"private_users\": %zu,\n", kPrivateUsers);
  std::fprintf(f, "  \"payload_kb\": %zu,\n", kPayloadBytes >> 10);
  std::fprintf(f, "  \"chunk_kb\": %u,\n", kChunkBytes >> 10);
  std::fprintf(
      f,
      "  \"dedup\": {\"public_puts\": %llu, \"public_dedup_hits\": %llu, "
      "\"public_stored_chunks\": %llu, \"public_dedup_ratio\": %.4f, "
      "\"private_puts\": %llu, \"private_dedup_hits\": %llu, "
      "\"private_unique_chunks\": %llu, \"put_mb_s\": %.1f, "
      "\"get_mb_s\": %.1f},\n",
      static_cast<unsigned long long>(dedup.public_puts),
      static_cast<unsigned long long>(dedup.public_dedup_hits),
      static_cast<unsigned long long>(dedup.public_stored_chunks),
      dedup.public_dedup_ratio,
      static_cast<unsigned long long>(dedup.private_puts),
      static_cast<unsigned long long>(dedup.private_dedup_hits),
      static_cast<unsigned long long>(dedup.private_unique_chunks),
      dedup.put_mb_s, dedup.get_mb_s);
  std::fprintf(
      f,
      "  \"audit\": {\"records\": %llu, \"chunks\": %llu, "
      "\"live_references\": %llu, \"clean\": %s},\n",
      static_cast<unsigned long long>(dedup.audit_records),
      static_cast<unsigned long long>(dedup.audit_chunks),
      static_cast<unsigned long long>(dedup.audit_live_references),
      dedup.audit_clean ? "true" : "false");
  std::fprintf(
      f,
      "  \"revocation\": {\"devices\": %zu, \"revoked_attempts\": %zu, "
      "\"revoked_denied\": %zu, \"denial_rate\": %.4f, "
      "\"sibling_fetches\": %zu, \"sibling_keynote_queries\": %llu, "
      "\"propagation_ms\": %.2f}\n",
      rev.devices, rev.revoked_attempts, rev.revoked_denied,
      rev.denial_rate, rev.sibling_fetches,
      static_cast<unsigned long long>(rev.sibling_keynote_queries),
      rev.propagation_ms);
  std::fprintf(f, "}\n");
}

int Run(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_lockbox.json";

  std::printf("== lockbox sharing: dedup across users ==\n");
  DedupResult dedup = RunDedupPhase();
  std::printf(
      "public:  %llu puts, %llu dedup hits (ratio %.4f), %llu stored\n",
      static_cast<unsigned long long>(dedup.public_puts),
      static_cast<unsigned long long>(dedup.public_dedup_hits),
      dedup.public_dedup_ratio,
      static_cast<unsigned long long>(dedup.public_stored_chunks));
  std::printf(
      "private: %llu puts, %llu dedup hits, %llu unique chunks\n",
      static_cast<unsigned long long>(dedup.private_puts),
      static_cast<unsigned long long>(dedup.private_dedup_hits),
      static_cast<unsigned long long>(dedup.private_unique_chunks));
  std::printf("throughput: put %.1f MB/s, get %.1f MB/s\n", dedup.put_mb_s,
              dedup.get_mb_s);
  std::printf("audit: %llu records, %llu chunks, %llu live refs, %s\n",
              static_cast<unsigned long long>(dedup.audit_records),
              static_cast<unsigned long long>(dedup.audit_chunks),
              static_cast<unsigned long long>(dedup.audit_live_references),
              dedup.audit_clean ? "clean" : "DIRTY");

  std::printf("== lockbox sharing: device revocation via coherence ==\n");
  RevocationResult rev = RunRevocationPhase();
  std::printf(
      "revoked device: %zu/%zu fetches denied (rate %.4f), "
      "propagation %.2f ms\n",
      rev.revoked_denied, rev.revoked_attempts, rev.denial_rate,
      rev.propagation_ms);
  std::printf("siblings: %zu warm fetches, %llu keynote queries\n",
              rev.sibling_fetches,
              static_cast<unsigned long long>(rev.sibling_keynote_queries));

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  WriteJson(f, dedup, rev);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  // Self-gates.
  int failures = 0;
  if (dedup.public_dedup_ratio < 0.9) {
    std::fprintf(stderr, "FAIL: public dedup ratio %.4f < 0.9\n",
                 dedup.public_dedup_ratio);
    ++failures;
  }
  if (dedup.private_dedup_hits != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu private (sealed) chunks deduped — ciphertext "
                 "collision leaks plaintext equality\n",
                 static_cast<unsigned long long>(dedup.private_dedup_hits));
    ++failures;
  }
  if (rev.denial_rate != 1.0) {
    std::fprintf(stderr,
                 "FAIL: revoked-device denial rate %.4f != 1.0 — a revoked "
                 "device still fetched a lockbox\n",
                 rev.denial_rate);
    ++failures;
  }
  if (rev.sibling_keynote_queries != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu sibling keynote queries — the revocation was "
                 "not scoped to the lost device\n",
                 static_cast<unsigned long long>(rev.sibling_keynote_queries));
    ++failures;
  }
  if (!dedup.audit_clean) {
    std::fprintf(stderr,
                 "FAIL: chunk store audit found refcount skew, orphans, or "
                 "missing chunks\n");
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace discfs

int main(int argc, char** argv) { return discfs::Run(argc, argv); }
