#include "src/keynote/compliance.h"

#include <algorithm>
#include <map>
#include <unordered_set>

namespace discfs::keynote {

ComplianceLattice::Value CheckCompliance(
    const std::vector<const Assertion*>& assertions,
    const ComplianceQuery& query, const ComplianceLattice& lattice) {
  // Implicit attributes visible to every Conditions program.
  AttributeMap env = query.attributes;
  std::vector<std::string> names = lattice.ValueNames();
  env["_MIN_TRUST"] = names.front();
  env["_MAX_TRUST"] = names.back();
  std::string values_joined;
  for (const std::string& n : names) {
    if (!values_joined.empty()) {
      values_joined += ",";
    }
    values_joined += n;
  }
  env["_VALUES"] = values_joined;
  std::string authorizers_joined;
  for (const std::string& a : query.action_authorizers) {
    if (!authorizers_joined.empty()) {
      authorizers_joined += ",";
    }
    authorizers_joined += a;
  }
  env["ACTION_AUTHORIZERS"] = authorizers_joined;

  // Conditions depend only on the action environment: evaluate once per
  // assertion.
  std::vector<ComplianceLattice::Value> cond_values;
  cond_values.reserve(assertions.size());
  for (const Assertion* a : assertions) {
    cond_values.push_back(EvalConditions(a->conditions(), env, lattice));
  }

  // Fixpoint iteration. Principal values only grow (join), and the lattice
  // is finite, so this terminates; the iteration bound is a safety rail.
  std::map<std::string, ComplianceLattice::Value> values;
  for (const std::string& requester : query.action_authorizers) {
    values[requester] = lattice.Top();
  }

  const size_t max_rounds = assertions.size() + 2;
  for (size_t round = 0; round < max_rounds; ++round) {
    bool changed = false;
    for (size_t i = 0; i < assertions.size(); ++i) {
      const Assertion* a = assertions[i];
      ComplianceLattice::Value contribution = lattice.Meet(
          cond_values[i], EvalLicensees(a->licensees(), values, lattice));
      auto [it, inserted] =
          values.emplace(a->authorizer(), lattice.Bottom());
      ComplianceLattice::Value next = lattice.Join(it->second, contribution);
      if (next != it->second) {
        it->second = next;
        changed = true;
      }
    }
    if (!changed) {
      break;
    }
  }

  auto it = values.find(kPolicyPrincipal);
  return it == values.end() ? lattice.Bottom() : it->second;
}

void DelegationIndex::Add(const Assertion* assertion) {
  by_authorizer_[assertion->authorizer()].push_back(assertion);
  for (const std::string& principal : assertion->licensee_principals()) {
    by_licensee_[principal].push_back(assertion);
  }
  ++assertion_count_;
}

void DelegationIndex::EraseFrom(Postings& postings,
                                const std::string& principal,
                                const Assertion* assertion) {
  auto it = postings.find(principal);
  if (it == postings.end()) {
    return;
  }
  auto& list = it->second;
  list.erase(std::remove(list.begin(), list.end(), assertion), list.end());
  if (list.empty()) {
    postings.erase(it);
  }
}

void DelegationIndex::Remove(const Assertion* assertion) {
  EraseFrom(by_authorizer_, assertion->authorizer(), assertion);
  for (const std::string& principal : assertion->licensee_principals()) {
    EraseFrom(by_licensee_, principal, assertion);
  }
  --assertion_count_;
}

std::vector<const Assertion*> DelegationIndex::RelevantSlice(
    const std::vector<std::string>& requesters) const {
  // Forward closure from the requesters along (licensee → authorizer):
  // visiting a principal pulls in every assertion that names it as a
  // licensee, and each such assertion's authorizer joins the frontier.
  std::unordered_set<std::string> visited(requesters.begin(),
                                          requesters.end());
  std::vector<std::string> frontier(visited.begin(), visited.end());
  std::unordered_set<const Assertion*> seen;
  std::vector<const Assertion*> slice;
  while (!frontier.empty()) {
    std::string principal = std::move(frontier.back());
    frontier.pop_back();
    auto it = by_licensee_.find(principal);
    if (it == by_licensee_.end()) {
      continue;
    }
    for (const Assertion* a : it->second) {
      if (!seen.insert(a).second) {
        continue;
      }
      slice.push_back(a);
      if (visited.insert(a->authorizer()).second) {
        frontier.push_back(a->authorizer());
      }
    }
  }
  return slice;
}

const std::vector<const Assertion*>& DelegationIndex::AuthoredBy(
    const std::string& principal) const {
  static const std::vector<const Assertion*> kEmpty;
  auto it = by_authorizer_.find(principal);
  return it == by_authorizer_.end() ? kEmpty : it->second;
}

std::vector<std::string> DelegationIndex::AffectedRequesters(
    const Assertion& assertion) const {
  // Backward closure from the assertion's licensees along the reverse edge
  // (authorizer → licensee): a principal P is affected iff a delegation
  // chain from P reaches one of these licensees, i.e. the licensee sits in
  // P's forward closure and the assertion in P's relevant slice.
  std::unordered_set<std::string> visited;
  std::vector<std::string> frontier;
  for (const std::string& principal : assertion.licensee_principals()) {
    if (visited.insert(principal).second) {
      frontier.push_back(principal);
    }
  }
  std::vector<std::string> affected(frontier);
  while (!frontier.empty()) {
    std::string principal = std::move(frontier.back());
    frontier.pop_back();
    auto it = by_authorizer_.find(principal);
    if (it == by_authorizer_.end()) {
      continue;
    }
    for (const Assertion* a : it->second) {
      for (const std::string& licensee : a->licensee_principals()) {
        if (visited.insert(licensee).second) {
          frontier.push_back(licensee);
          affected.push_back(licensee);
        }
      }
    }
  }
  return affected;
}

}  // namespace discfs::keynote
