// The paper's Figure 12 workload: "a simple script that goes through every
// .c and .h file of the OpenBSD kernel source code and counts the number of
// lines, words and bytes" (wc over a kernel tree).
//
// We do not ship the OpenBSD tree; SourceTreeSpec generates a deterministic
// synthetic C source tree with a comparable shape (directories of .c/.h
// files plus non-matching files that the sweep must skip).
#ifndef DISCFS_BENCH_SEARCH_H_
#define DISCFS_BENCH_SEARCH_H_

#include <cstdint>
#include <string>

#include "bench/fs_backend.h"

namespace discfs::bench {

struct SourceTreeSpec {
  uint64_t seed = 2001;
  size_t directories = 20;
  size_t files_per_dir = 30;   // ~25% .h, ~60% .c, rest skipped extensions
  size_t mean_file_bytes = 24 * 1024;
  std::string root = "/usr/src/sys";
};

struct SourceTreeInfo {
  size_t total_files = 0;
  size_t c_and_h_files = 0;
  uint64_t total_bytes = 0;
};

// Builds the tree on a backend. Deterministic in the spec.
Result<SourceTreeInfo> BuildSourceTree(FsBackend& backend,
                                       const SourceTreeSpec& spec);

struct SearchResult {
  std::string system;
  uint64_t files_scanned = 0;
  uint64_t lines = 0;
  uint64_t words = 0;
  uint64_t bytes = 0;
  double seconds = 0;
};

// Walks the tree, wc-counting every .c/.h file.
Result<SearchResult> RunSearch(FsBackend& backend,
                               const SourceTreeSpec& spec);

void PrintSearchRow(const SearchResult& result);

}  // namespace discfs::bench

#endif  // DISCFS_BENCH_SEARCH_H_
