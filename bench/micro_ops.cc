// Micro-benchmarks for the primitive operations of the access-control
// mechanism (§6: "a set of micro-benchmarks which measured primitive
// operations in the context of our access control mechanism"), plus the
// crypto and transport primitives underneath them.
//
// Self-timed (no external benchmark framework): each case is run in
// growing batches until the timed batch lasts long enough to trust the
// clock, then reported as ns/op (and MB/s where a payload size applies).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/fs_backend.h"
#include "src/crypto/aead.h"
#include "src/crypto/dsa.h"
#include "src/crypto/groups.h"
#include "src/crypto/sha.h"
#include "src/discfs/credentials.h"
#include "src/discfs/host.h"
#include "src/discfs/policy_cache.h"
#include "src/keynote/session.h"
#include "src/util/prng.h"

namespace discfs {
namespace {

constexpr size_t kBlock = 8192;
constexpr double kMinBatchSec = 0.05;

// Results are folded into this sink so the optimizer cannot discard the
// measured work.
volatile uint64_t g_sink = 0;

void Sink(uint64_t v) { g_sink += v; }
void Sink(const Bytes& b) { g_sink += b.empty() ? 1 : b[0]; }
void Sink(bool b) { g_sink += b ? 1 : 2; }

std::function<Bytes(size_t)> BenchRand(uint64_t seed) {
  auto prng = std::make_shared<Prng>(seed);
  return [prng](size_t n) { return prng->NextBytes(n); };
}

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Timing {
  uint64_t iters = 0;
  double ns_per_op = 0;
};

// Doubles the batch until it spans kMinBatchSec of wall clock, so cheap
// ops (a cache hit) and expensive ones (a handshake) both get a stable
// per-op figure from the same harness.
Timing Measure(const std::function<void()>& op) {
  op();  // warm-up
  uint64_t iters = 1;
  while (true) {
    double t0 = NowSec();
    for (uint64_t i = 0; i < iters; ++i) {
      op();
    }
    double elapsed = NowSec() - t0;
    if (elapsed >= kMinBatchSec) {
      return {iters, elapsed * 1e9 / static_cast<double>(iters)};
    }
    double scale =
        elapsed > 0 ? (kMinBatchSec / elapsed) * 1.5 : 100.0;
    iters = std::max(iters + 1,
                     static_cast<uint64_t>(
                         static_cast<double>(iters) * std::min(scale, 100.0)));
  }
}

void Report(const char* name, const Timing& t, size_t bytes_per_op = 0) {
  if (bytes_per_op > 0) {
    double mb_s = static_cast<double>(bytes_per_op) * 1e9 /
                  (t.ns_per_op * 1024.0 * 1024.0);
    std::printf("%-34s %10llu %14.1f %10.1f\n", name,
                static_cast<unsigned long long>(t.iters), t.ns_per_op, mb_s);
  } else {
    std::printf("%-34s %10llu %14.1f %10s\n", name,
                static_cast<unsigned long long>(t.iters), t.ns_per_op, "-");
  }
  std::fflush(stdout);
}

// ----- hash / AEAD primitives -----

void BenchHashAndAead() {
  Bytes data = Prng(1).NextBytes(kBlock);
  Report("sha1_8k", Measure([&] { Sink(Sha1::Hash(data)); }), kBlock);
  Report("sha256_8k", Measure([&] { Sink(Sha256::Hash(data)); }), kBlock);
  Aead aead(Bytes(32, 0x42));
  Bytes nonce(12, 0);
  Report("aead_seal_8k", Measure([&] { Sink(aead.Seal(nonce, {}, data)); }),
         kBlock);
}

// ----- DSA (1024/160, the production group) -----

void BenchDsa() {
  DsaPrivateKey key = DsaPrivateKey::Generate(Dsa1024(), BenchRand(1));
  Bytes digest = Sha1::Hash("credential body");
  Report("dsa_sign_1024", Measure([&] {
           DsaSignature sig = key.Sign(digest);
           Sink(static_cast<uint64_t>(sig.r.BitLength()));
         }));
  DsaSignature sig = key.Sign(digest);
  Report("dsa_verify_1024",
         Measure([&] { Sink(key.public_key().Verify(digest, sig)); }));
}

// ----- credential lifecycle -----

void BenchCredentials() {
  DsaPrivateKey issuer = DsaPrivateKey::Generate(Dsa1024(), BenchRand(1));
  DsaPrivateKey subject = DsaPrivateKey::Generate(Dsa1024(), BenchRand(2));
  CredentialOptions options;
  Report("credential_issue", Measure([&] {
           Sink(IssueCredential(issuer, subject.public_key(), "666240",
                                options)
                    .ok());
         }));
  std::string text =
      IssueCredential(issuer, subject.public_key(), "666240", options)
          .value();
  Report("credential_parse_verify", Measure([&] {
           auto assertion = keynote::Assertion::Parse(text);
           Sink(assertion->VerifySignature().ok());
         }));
}

// ----- KeyNote compliance checking: delegation-chain depth sweep -----

void BenchKeyNoteChain(size_t chain_len) {
  auto rand = BenchRand(7);
  std::vector<DsaPrivateKey> keys;
  for (size_t i = 0; i <= chain_len; ++i) {
    keys.push_back(DsaPrivateKey::Generate(Dsa512(), rand));
  }
  keynote::KeyNoteSession session(keynote::PermissionLattice::Get());
  std::string policy =
      "Authorizer: \"POLICY\"\n"
      "Licensees: \"" + keys[0].public_key().ToKeyNoteString() + "\"\n"
      "Conditions: app_domain == \"DisCFS\" -> \"RWX\";\n";
  if (!session.AddPolicyAssertion(policy).ok()) {
    std::fprintf(stderr, "policy setup failed\n");
    return;
  }
  CredentialOptions options;
  for (size_t i = 0; i + 1 <= chain_len; ++i) {
    auto cred =
        IssueCredential(keys[i], keys[i + 1].public_key(), "666240", options);
    if (!cred.ok() || !session.AddCredential(*cred).ok()) {
      std::fprintf(stderr, "credential setup failed\n");
      return;
    }
  }
  keynote::ComplianceQuery query;
  query.attributes = {{"app_domain", "DisCFS"}, {"HANDLE", "666240"}};
  query.action_authorizers = {keys[chain_len].public_key().ToKeyNoteString()};
  std::string name = "keynote_query_chain_" + std::to_string(chain_len);
  Report(name.c_str(), Measure([&] {
           Sink(static_cast<uint64_t>(session.Query(query)));
         }));
}

// Compliance-check cost as the persistent session accumulates unrelated
// credentials: the checker evaluates every assertion's conditions per
// query, so cold queries are O(session size). This is why the policy
// cache matters beyond amortizing a single evaluation.
void BenchKeyNoteSessionSize(size_t n_creds) {
  auto rand = BenchRand(21);
  DsaPrivateKey admin = DsaPrivateKey::Generate(Dsa512(), rand);
  DsaPrivateKey user = DsaPrivateKey::Generate(Dsa512(), rand);
  keynote::KeyNoteSession session(keynote::PermissionLattice::Get());
  std::string policy =
      "Authorizer: \"POLICY\"\n"
      "Licensees: \"" + admin.public_key().ToKeyNoteString() + "\"\n"
      "Conditions: app_domain == \"DisCFS\" -> \"RWX\";\n";
  if (!session.AddPolicyAssertion(policy).ok()) {
    std::fprintf(stderr, "policy setup failed\n");
    return;
  }
  CredentialOptions options;
  for (size_t i = 0; i < n_creds; ++i) {
    auto cred = IssueCredential(admin, user.public_key(),
                                std::to_string(1000 + i), options);
    if (!cred.ok() || !session.AddCredential(*cred).ok()) {
      std::fprintf(stderr, "credential setup failed\n");
      return;
    }
  }
  keynote::ComplianceQuery query;
  query.attributes = {{"app_domain", "DisCFS"}, {"HANDLE", "1000"}};
  query.action_authorizers = {user.public_key().ToKeyNoteString()};
  std::string name = "keynote_query_session_" + std::to_string(n_creds);
  Report(name.c_str(), Measure([&] {
           Sink(static_cast<uint64_t>(session.Query(query)));
         }));
}

void BenchPolicyCache() {
  PolicyCache cache(128, 3600);
  cache.Put("dsa-hex:user", 666240, 7, 0);
  Report("policy_cache_hit",
         Measure([&] {
           Sink(cache.Get("dsa-hex:user", 666240, 1).has_value());
         }));
}

// ----- channel and RPC round trips -----

void BenchSecureHandshake() {
  DsaPrivateKey server_key = DsaPrivateKey::Generate(Dsa1024(), BenchRand(1));
  DsaPrivateKey client_key = DsaPrivateKey::Generate(Dsa1024(), BenchRand(2));
  Report("secure_handshake", Measure([&] {
           auto transports = InProcTransport::CreatePair();
           ChannelIdentity client_id{client_key, BenchRand(10)};
           ChannelIdentity server_id{server_key, BenchRand(11)};
           Result<std::unique_ptr<SecureChannel>> server_chan =
               UnavailableError("pending");
           std::thread server([&] {
             server_chan = SecureChannel::ServerHandshake(
                 std::move(transports.b), server_id);
           });
           auto client_chan = SecureChannel::ClientHandshake(
               std::move(transports.a), client_id, std::nullopt);
           server.join();
           Sink(client_chan.ok() && server_chan.ok());
         }));
}

// Full remote stacks (CFS-style NFS-only vs DisCFS with admission) against
// the local FFS baseline, 8 KiB at offset 0.
void BenchRemoteStacks() {
  bench::BackendOptions opts;
  opts.device_mib = 128;
  auto cfs_backend = bench::MakeCfsNeBackend(opts).value();
  auto discfs_backend = bench::MakeDiscfsBackend(opts).value();
  auto ffs_backend = bench::MakeFfsBackend(opts).value();
  auto cfs_file = cfs_backend->CreateFile("bench.dat").value();
  auto discfs_file = discfs_backend->CreateFile("bench.dat").value();
  auto ffs_file = ffs_backend->CreateFile("bench.dat").value();
  Bytes block = Prng(3).NextBytes(kBlock);
  (void)cfs_backend->WriteAt(cfs_file, 0, block.data(), block.size());
  (void)discfs_backend->WriteAt(discfs_file, 0, block.data(), block.size());
  (void)ffs_backend->WriteAt(ffs_file, 0, block.data(), block.size());
  Bytes buf(kBlock);

  Report("read_8k_cfs_ne", Measure([&] {
           Sink(cfs_backend->ReadAt(cfs_file, 0, buf.data(), buf.size()).ok());
         }),
         kBlock);
  Report("read_8k_discfs", Measure([&] {
           Sink(discfs_backend->ReadAt(discfs_file, 0, buf.data(), buf.size())
                    .ok());
         }),
         kBlock);
  Report("write_8k_cfs_ne", Measure([&] {
           Sink(cfs_backend->WriteAt(cfs_file, 0, block.data(), block.size())
                    .ok());
         }),
         kBlock);
  Report("write_8k_discfs", Measure([&] {
           Sink(discfs_backend
                    ->WriteAt(discfs_file, 0, block.data(), block.size())
                    .ok());
         }),
         kBlock);
  Report("read_8k_ffs_local", Measure([&] {
           Sink(ffs_backend->ReadAt(ffs_file, 0, buf.data(), buf.size()).ok());
         }),
         kBlock);
}

int Run(int, char**) {
  std::printf("== micro_ops: access-control and transport primitives ==\n");
  std::printf("%-34s %10s %14s %10s\n", "op", "iters", "ns/op", "MB/s");

  BenchHashAndAead();
  BenchDsa();
  BenchCredentials();
  for (size_t depth : {1, 2, 4, 8}) {
    BenchKeyNoteChain(depth);
  }
  for (size_t creds : {1, 10, 100, 500}) {
    BenchKeyNoteSessionSize(creds);
  }
  BenchPolicyCache();
  BenchSecureHandshake();
  BenchRemoteStacks();
  return 0;
}

}  // namespace
}  // namespace discfs

int main(int argc, char** argv) { return discfs::Run(argc, argv); }
