// OS randomness for key material (reads /dev/urandom).
#ifndef DISCFS_SRC_CRYPTO_SYSRAND_H_
#define DISCFS_SRC_CRYPTO_SYSRAND_H_

#include "src/util/bytes.h"

namespace discfs {

// Fills `n` bytes from the OS CSPRNG. Aborts the process if the OS source
// is unavailable (a machine without /dev/urandom cannot run securely at all).
Bytes SysRandomBytes(size_t n);

}  // namespace discfs

#endif  // DISCFS_SRC_CRYPTO_SYSRAND_H_
