#include "bench/fs_backend.h"

#include "src/crypto/groups.h"
#include "src/crypto/sysrand.h"
#include "src/discfs/credentials.h"
#include "src/net/shaper.h"
#include "src/util/strings.h"

namespace discfs::bench {
namespace {

Result<std::shared_ptr<FfsVfs>> MakeVolume(const BackendOptions& opts) {
  auto dev = std::make_shared<MemBlockDevice>(
      4096, opts.device_mib * 1024 * 1024 / 4096, opts.latency);
  FfsFormatOptions format;
  format.inode_count = opts.inode_count;
  format.mount.cache.capacity_blocks = opts.cache_blocks;
  format.mount.cache.readahead_blocks = opts.readahead_blocks;
  ASSIGN_OR_RETURN(std::unique_ptr<Ffs> fs, Ffs::Format(dev, format));
  return std::make_shared<FfsVfs>(std::move(fs));
}

// Splits "/a/b/c" into components.
std::vector<std::string> PathParts(const std::string& path) {
  std::vector<std::string> parts;
  for (const std::string& p : StrSplit(path, '/')) {
    if (!p.empty()) {
      parts.push_back(p);
    }
  }
  return parts;
}

// ---------------------------------------------------------------- FFS

class FfsBackend : public FsBackend {
 public:
  explicit FfsBackend(std::shared_ptr<FfsVfs> vfs) : vfs_(std::move(vfs)) {}

  std::string name() const override { return "FFS"; }

  Result<BenchFile> CreateFile(const std::string& name) override {
    auto existing = vfs_->Lookup(vfs_->root(), name);
    if (existing.ok()) {
      SetAttrRequest truncate;
      truncate.size = 0;
      RETURN_IF_ERROR(vfs_->SetAttr(existing->inode, truncate));
      return BenchFile{NfsFh{existing->inode, existing->generation}};
    }
    ASSIGN_OR_RETURN(InodeAttr attr, vfs_->Create(vfs_->root(), name, 0644));
    return BenchFile{NfsFh{attr.inode, attr.generation}};
  }

  Result<BenchFile> OpenFile(const std::string& name) override {
    ASSIGN_OR_RETURN(InodeAttr attr, vfs_->Lookup(vfs_->root(), name));
    return BenchFile{NfsFh{attr.inode, attr.generation}};
  }

  Status WriteAt(const BenchFile& f, uint64_t offset, const uint8_t* data,
                 size_t len) override {
    ASSIGN_OR_RETURN(size_t n, vfs_->Write(f.fh.inode, offset, data, len));
    return n == len ? OkStatus() : IoError("short write");
  }

  Result<size_t> ReadAt(const BenchFile& f, uint64_t offset, uint8_t* buf,
                        size_t len) override {
    return vfs_->Read(f.fh.inode, offset, len, buf);
  }

  Status RemoveFile(const std::string& name) override {
    return vfs_->Remove(vfs_->root(), name);
  }

  Status MakeDirPath(const std::string& path) override {
    return MkdirAll(*vfs_, path, 0755).status();
  }

  Status WriteWholeFile(const std::string& path,
                        const std::string& contents) override {
    return WriteFileAt(*vfs_, path, contents);
  }

  Result<std::string> ReadWholeFile(const std::string& path) override {
    return ReadFileAt(*vfs_, path);
  }

  Result<std::vector<std::pair<std::string, bool>>> ListDir(
      const std::string& path) override {
    ASSIGN_OR_RETURN(InodeAttr dir, ResolvePath(*vfs_, path));
    ASSIGN_OR_RETURN(std::vector<DirEntry> entries, vfs_->ReadDir(dir.inode));
    std::vector<std::pair<std::string, bool>> out;
    out.reserve(entries.size());
    for (const DirEntry& e : entries) {
      out.emplace_back(e.name, e.type == FileType::kDirectory);
    }
    return out;
  }

  FfsVfs* vfs() { return vfs_.get(); }

 private:
  std::shared_ptr<FfsVfs> vfs_;
};

// -------------------------------------------------------- remote (shared)

// Path machinery shared by the two remote backends, parameterized over an
// NfsClient and a create function (DisCFS uses the credential-returning
// CREATE).
class RemoteBackendBase : public FsBackend {
 public:
  Result<BenchFile> CreateFile(const std::string& name) override {
    ASSIGN_OR_RETURN(NfsFh root, Root());
    auto existing = nfs().Lookup(root, name);
    if (existing.ok()) {
      SetAttrRequest truncate;
      truncate.size = 0;
      RETURN_IF_ERROR(nfs().SetAttr(existing->fh, truncate).status());
      return BenchFile{existing->fh};
    }
    ASSIGN_OR_RETURN(NfsFattr attr, DoCreate(root, name));
    return BenchFile{attr.fh};
  }

  Result<BenchFile> OpenFile(const std::string& name) override {
    ASSIGN_OR_RETURN(NfsFh root, Root());
    ASSIGN_OR_RETURN(NfsFattr attr, nfs().Lookup(root, name));
    return BenchFile{attr.fh};
  }

  Status WriteAt(const BenchFile& f, uint64_t offset, const uint8_t* data,
                 size_t len) override {
    return nfs().Write(f.fh, offset, Bytes(data, data + len)).status();
  }

  Result<size_t> ReadAt(const BenchFile& f, uint64_t offset, uint8_t* buf,
                        size_t len) override {
    ASSIGN_OR_RETURN(Bytes data,
                     nfs().Read(f.fh, offset, static_cast<uint32_t>(len)));
    std::copy(data.begin(), data.end(), buf);
    return data.size();
  }

  Status RemoveFile(const std::string& name) override {
    ASSIGN_OR_RETURN(NfsFh root, Root());
    return nfs().Remove(root, name);
  }

  Status MakeDirPath(const std::string& path) override {
    ASSIGN_OR_RETURN(NfsFh dir, Root());
    std::string walked;
    for (const std::string& part : PathParts(path)) {
      walked += "/" + part;
      auto found = nfs().Lookup(dir, part);
      if (found.ok()) {
        dir = found->fh;
        continue;
      }
      ASSIGN_OR_RETURN(NfsFattr made, DoMkdir(dir, part));
      dir = made.fh;
      dir_cache_[walked] = dir;
    }
    return OkStatus();
  }

  Status WriteWholeFile(const std::string& path,
                        const std::string& contents) override {
    ASSIGN_OR_RETURN(auto parent_leaf, ResolveParentFh(path));
    auto [parent, leaf] = parent_leaf;
    NfsFh fh;
    auto existing = nfs().Lookup(parent, leaf);
    if (existing.ok()) {
      fh = existing->fh;
      SetAttrRequest truncate;
      truncate.size = 0;
      RETURN_IF_ERROR(nfs().SetAttr(fh, truncate).status());
    } else {
      ASSIGN_OR_RETURN(NfsFattr attr, DoCreate(parent, leaf));
      fh = attr.fh;
    }
    Bytes data(contents.begin(), contents.end());
    return nfs().Write(fh, 0, data).status();
  }

  Result<std::string> ReadWholeFile(const std::string& path) override {
    ASSIGN_OR_RETURN(auto parent_leaf, ResolveParentFh(path));
    auto [parent, leaf] = parent_leaf;
    ASSIGN_OR_RETURN(NfsFattr attr, nfs().Lookup(parent, leaf));
    std::string out;
    out.reserve(attr.size);
    uint64_t offset = 0;
    while (offset < attr.size) {
      uint32_t chunk = static_cast<uint32_t>(
          std::min<uint64_t>(attr.size - offset, 1 << 16));
      ASSIGN_OR_RETURN(Bytes data, nfs().Read(attr.fh, offset, chunk));
      if (data.empty()) {
        break;
      }
      out.append(data.begin(), data.end());
      offset += data.size();
    }
    return out;
  }

  Result<std::vector<std::pair<std::string, bool>>> ListDir(
      const std::string& path) override {
    ASSIGN_OR_RETURN(NfsFh dir, ResolveDirFh(path));
    ASSIGN_OR_RETURN(std::vector<NfsDirEntry> entries, nfs().ReadDir(dir));
    std::vector<std::pair<std::string, bool>> out;
    out.reserve(entries.size());
    for (const NfsDirEntry& e : entries) {
      out.emplace_back(e.name, e.type == FileType::kDirectory);
    }
    return out;
  }

 protected:
  virtual NfsClient& nfs() = 0;
  virtual Result<NfsFattr> DoCreate(const NfsFh& dir,
                                    const std::string& name) = 0;
  virtual Result<NfsFattr> DoMkdir(const NfsFh& dir,
                                   const std::string& name) = 0;

  Result<NfsFh> Root() {
    if (!root_.has_value()) {
      ASSIGN_OR_RETURN(NfsFattr attr, nfs().GetRoot());
      root_ = attr.fh;
    }
    return *root_;
  }

  Result<NfsFh> ResolveDirFh(const std::string& path) {
    auto cached = dir_cache_.find(path);
    if (cached != dir_cache_.end()) {
      return cached->second;
    }
    ASSIGN_OR_RETURN(NfsFh dir, Root());
    std::string walked;
    for (const std::string& part : PathParts(path)) {
      walked += "/" + part;
      ASSIGN_OR_RETURN(NfsFattr attr, nfs().Lookup(dir, part));
      dir = attr.fh;
      dir_cache_[walked] = dir;
    }
    return dir;
  }

  Result<std::pair<NfsFh, std::string>> ResolveParentFh(
      const std::string& path) {
    std::vector<std::string> parts = PathParts(path);
    if (parts.empty()) {
      return InvalidArgumentError("no leaf in path");
    }
    std::string leaf = parts.back();
    std::string parent_path;
    for (size_t i = 0; i + 1 < parts.size(); ++i) {
      parent_path += "/" + parts[i];
    }
    if (parent_path.empty()) {
      ASSIGN_OR_RETURN(NfsFh root, Root());
      return std::make_pair(root, leaf);
    }
    ASSIGN_OR_RETURN(NfsFh dir, ResolveDirFh(parent_path));
    return std::make_pair(dir, leaf);
  }

 private:
  std::optional<NfsFh> root_;
  std::map<std::string, NfsFh> dir_cache_;
};

// ---------------------------------------------------------------- CFS-NE

class CfsNeBackend : public RemoteBackendBase {
 public:
  CfsNeBackend(std::unique_ptr<CfsNeHost> host,
               std::unique_ptr<NfsClient> client)
      : host_(std::move(host)), client_(std::move(client)) {}

  ~CfsNeBackend() override {
    client_->rpc()->Close();
    host_.reset();
  }

  std::string name() const override { return "CFS-NE"; }

 protected:
  NfsClient& nfs() override { return *client_; }
  Result<NfsFattr> DoCreate(const NfsFh& dir,
                            const std::string& name) override {
    return client_->Create(dir, name, 0644);
  }
  Result<NfsFattr> DoMkdir(const NfsFh& dir,
                           const std::string& name) override {
    return client_->Mkdir(dir, name, 0755);
  }

 private:
  std::unique_ptr<CfsNeHost> host_;
  std::unique_ptr<NfsClient> client_;
};

// ---------------------------------------------------------------- DisCFS

class DiscfsBackend : public RemoteBackendBase {
 public:
  DiscfsBackend(std::unique_ptr<DiscfsHost> host,
                std::unique_ptr<DiscfsClient> client)
      : host_(std::move(host)), client_(std::move(client)) {}

  ~DiscfsBackend() override {
    client_->Close();
    host_.reset();
  }

  std::string name() const override { return "DisCFS"; }

  DiscfsServer* server() { return &host_->server(); }

 protected:
  NfsClient& nfs() override { return client_->nfs(); }
  Result<NfsFattr> DoCreate(const NfsFh& dir,
                            const std::string& name) override {
    // Plain NFS CREATE: the benchmark user's blanket credential already
    // covers new files, so there is no need to mint one per file. (Doing so
    // would also grow the KeyNote session linearly with the tree and every
    // cold policy evaluation is O(session size) — see the
    // BM_KeyNoteQuerySessionSize micro-benchmark.)
    return client_->nfs().Create(dir, name, 0644);
  }
  Result<NfsFattr> DoMkdir(const NfsFh& dir,
                           const std::string& name) override {
    return client_->nfs().Mkdir(dir, name, 0755);
  }

 private:
  std::unique_ptr<DiscfsHost> host_;
  std::unique_ptr<DiscfsClient> client_;
};

}  // namespace

Result<std::unique_ptr<FsBackend>> MakeFfsBackend(const BackendOptions& opts) {
  ASSIGN_OR_RETURN(std::shared_ptr<FfsVfs> vfs, MakeVolume(opts));
  return std::unique_ptr<FsBackend>(new FfsBackend(std::move(vfs)));
}

Result<std::unique_ptr<FsBackend>> MakeCfsNeBackend(
    const BackendOptions& opts) {
  ASSIGN_OR_RETURN(std::shared_ptr<FfsVfs> vfs, MakeVolume(opts));
  ASSIGN_OR_RETURN(std::unique_ptr<CfsNeHost> host,
                   CfsNeHost::Start(std::move(vfs)));
  // Pace the client link at the paper's testbed speed (DISCFS_LINK_MBPS to
  // change, 0 to disable).
  ASSIGN_OR_RETURN(std::unique_ptr<TcpTransport> transport,
                   TcpTransport::Connect("127.0.0.1", host->port()));
  ASSIGN_OR_RETURN(
      std::unique_ptr<NfsClient> client,
      ConnectCfsNeOver(
          MaybeShape(std::move(transport), LinkModelFromEnv())));
  return std::unique_ptr<FsBackend>(
      new CfsNeBackend(std::move(host), std::move(client)));
}

Result<std::unique_ptr<FsBackend>> MakeDiscfsBackend(
    const BackendOptions& opts) {
  ASSIGN_OR_RETURN(std::shared_ptr<FfsVfs> vfs, MakeVolume(opts));

  auto rand = [](size_t n) { return SysRandomBytes(n); };
  DsaPrivateKey admin_key = DsaPrivateKey::Generate(Dsa1024(), rand);
  DsaPrivateKey user_key = DsaPrivateKey::Generate(Dsa1024(), rand);

  DiscfsServerConfig config;
  config.server_key = admin_key;
  config.policy_cache_size = opts.policy_cache_size;
  config.policy_cache_ttl_s = opts.policy_cache_ttl_s;
  ASSIGN_OR_RETURN(std::unique_ptr<DiscfsHost> host,
                   DiscfsHost::Start(std::move(vfs), std::move(config)));

  ChannelIdentity identity{user_key, rand};
  // The shaped link sits UNDER the secure channel: ciphertext crosses the
  // modeled wire, exactly as IPsec packets crossed the paper's Ethernet.
  ASSIGN_OR_RETURN(std::unique_ptr<TcpTransport> transport,
                   TcpTransport::Connect("127.0.0.1", host->port()));
  ASSIGN_OR_RETURN(
      std::unique_ptr<DiscfsClient> client,
      DiscfsClient::ConnectOver(
          MaybeShape(std::move(transport), LinkModelFromEnv()), identity,
          admin_key.public_key()));

  // The administrator grants the benchmark user the whole store (blanket
  // credential, no HANDLE clause); every distinct handle still pays one
  // cold KeyNote evaluation, then hits the policy cache.
  CredentialOptions options;
  options.permissions = "RWX";
  options.comment = "benchmark user grant";
  ASSIGN_OR_RETURN(std::string credential,
                   IssueCredential(admin_key, user_key.public_key(),
                                   /*handle=*/"", options));
  RETURN_IF_ERROR(client->SubmitCredential(credential).status());

  return std::unique_ptr<FsBackend>(
      new DiscfsBackend(std::move(host), std::move(client)));
}

Result<std::vector<std::unique_ptr<FsBackend>>> MakeAllBackends(
    const BackendOptions& opts) {
  std::vector<std::unique_ptr<FsBackend>> backends;
  ASSIGN_OR_RETURN(std::unique_ptr<FsBackend> ffs, MakeFfsBackend(opts));
  backends.push_back(std::move(ffs));
  ASSIGN_OR_RETURN(std::unique_ptr<FsBackend> cfs, MakeCfsNeBackend(opts));
  backends.push_back(std::move(cfs));
  ASSIGN_OR_RETURN(std::unique_ptr<FsBackend> dis, MakeDiscfsBackend(opts));
  backends.push_back(std::move(dis));
  return backends;
}

DiscfsServer* BackendDiscfsServer(FsBackend& backend) {
  auto* discfs = dynamic_cast<DiscfsBackend*>(&backend);
  return discfs == nullptr ? nullptr : discfs->server();
}

Ffs* BackendFfs(FsBackend& backend) {
  auto* ffs = dynamic_cast<FfsBackend*>(&backend);
  return ffs == nullptr ? nullptr : ffs->vfs()->ffs();
}

}  // namespace discfs::bench
