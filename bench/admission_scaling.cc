// Admission fast-path scaling (PR 5): what a credential submit costs now
// that signature verification runs outside the server's exclusive lock,
// through Montgomery/Shamir double-exponentiation and the
// verified-signature cache.
//
// Per credential-count tier:
//
//   * verify_ref_us  — single-thread DSA verify through the seed path
//     (two ModExpReference exponentiations + Knuth-division reductions)
//   * verify_fast_us — the shipping path (DsaVerifyContext: Montgomery
//     CIOS + Shamir double-exponentiation over precomputed tables)
//   * admit_per_s_{1,4,8}t — SubmitCredential throughput with that many
//     submitter threads against one server (fresh server per phase)
//   * sig_cache_hit_rate / resubmit_per_s — replayed submissions skipping
//     the modexp via the verified-signature cache
//
// Self-gates (non-zero exit on violation):
//   * verify speedup (ref/fast, worst tier) >= 2x
//   * admit throughput scaling 1 -> 8 threads (best tier) >= 2x — only
//     enforced on >= 4 hardware threads: verification is pure CPU, so a
//     single-core container cannot scale it no matter how the locks fall.
//
// Output: table on stdout + BENCH_admission.json (argv[1], default
// ./BENCH_admission.json); argv[2] caps the credential tiers.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/blockdev/blockdev.h"
#include "src/crypto/groups.h"
#include "src/discfs/action_env.h"
#include "src/discfs/credentials.h"
#include "src/discfs/server.h"
#include "src/ffs/ffs.h"
#include "src/util/prng.h"
#include "src/vfs/vfs.h"

namespace discfs {
namespace {

std::function<Bytes(size_t)> BenchRand(uint64_t seed) {
  auto prng = std::make_shared<Prng>(seed);
  return [prng](size_t n) { return prng->NextBytes(n); };
}

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct LatencySummary {
  double mean_us = 0;
  double p50_us = 0;
  double p99_us = 0;
};

LatencySummary Summarize(std::vector<double> samples_us) {
  LatencySummary s;
  if (samples_us.empty()) {
    return s;
  }
  std::sort(samples_us.begin(), samples_us.end());
  double sum = 0;
  for (double v : samples_us) {
    sum += v;
  }
  s.mean_us = sum / samples_us.size();
  s.p50_us = samples_us[samples_us.size() / 2];
  s.p99_us = samples_us[std::min(samples_us.size() - 1,
                                 samples_us.size() * 99 / 100)];
  return s;
}

// The seed-era DSA verify: both exponentiations through the reference
// (schoolbook multiply + Knuth division) path, reductions via DivMod.
bool ReferenceVerify(const DsaPublicKey& key, const Bytes& digest,
                     const DsaSignature& sig) {
  const BigNum& p = key.params().p;
  const BigNum& q = key.params().q;
  const BigNum& g = key.params().g;
  if (sig.r.IsZero() || sig.s.IsZero() || sig.r >= q || sig.s >= q) {
    return false;
  }
  auto w_or = BigNum::ModInverse(sig.s, q);
  if (!w_or.ok()) {
    return false;
  }
  const BigNum& w = w_or.value();
  BigNum z = BigNum::FromBytes(digest);
  size_t qbits = q.BitLength();
  size_t zbits = digest.size() * 8;
  if (zbits > qbits) {
    z = BigNum::ShiftRight(z, zbits - qbits);
  }
  BigNum u1 = BigNum::DivMod(BigNum::Mul(z, w), q).second;
  BigNum u2 = BigNum::DivMod(BigNum::Mul(sig.r, w), q).second;
  BigNum gu1 = BigNum::ModExpReference(g, u1, p);
  BigNum yu2 = BigNum::ModExpReference(key.y(), u2, p);
  BigNum v =
      BigNum::DivMod(BigNum::DivMod(BigNum::Mul(gu1, yu2), p).second, q)
          .second;
  return BigNum::Compare(v, sig.r) == 0;
}

std::shared_ptr<FfsVfs> MakeVfs() {
  auto dev = std::make_shared<MemBlockDevice>(4096, 8192);
  auto fs = Ffs::Format(dev, FfsFormatOptions{1024});
  if (!fs.ok()) {
    std::fprintf(stderr, "ffs format failed: %s\n",
                 fs.status().ToString().c_str());
    std::exit(1);
  }
  return std::make_shared<FfsVfs>(std::move(fs).value());
}

std::unique_ptr<DiscfsServer> MakeServer(const DsaPrivateKey& server_key) {
  DiscfsServerConfig config;
  config.server_key = server_key;
  config.rand_bytes = BenchRand(7);
  auto server = DiscfsServer::Create(MakeVfs(), std::move(config));
  if (!server.ok()) {
    std::fprintf(stderr, "server create failed: %s\n",
                 server.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(server).value();
}

struct TierResult {
  size_t credentials = 0;
  LatencySummary verify_ref;
  LatencySummary verify_fast;
  double admit_per_s_1t = 0;
  double admit_per_s_4t = 0;
  double admit_per_s_8t = 0;
  double sig_cache_hit_rate = 0;
  double resubmit_per_s = 0;
};

// Runs `threads` submitters over disjoint slices of `creds` against a
// fresh server; returns admits/s over the whole batch.
double AdmitThroughput(const DsaPrivateKey& server_key,
                       const std::vector<std::string>& creds, size_t threads,
                       DiscfsServer** server_out = nullptr,
                       std::unique_ptr<DiscfsServer>* keep = nullptr) {
  std::unique_ptr<DiscfsServer> server = MakeServer(server_key);
  std::atomic<size_t> failures{0};
  double t0 = NowSec();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (size_t i = t; i < creds.size(); i += threads) {
        if (!server->SubmitCredential(creds[i]).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  double elapsed = NowSec() - t0;
  if (failures.load() != 0) {
    std::fprintf(stderr, "FATAL: %zu submissions failed\n", failures.load());
    std::exit(1);
  }
  if (server_out != nullptr && keep != nullptr) {
    *server_out = server.get();
    *keep = std::move(server);
  }
  return creds.size() / elapsed;
}

TierResult RunTier(const DsaPrivateKey& server_key, size_t n, Prng& prng) {
  TierResult out;
  out.credentials = n;
  const std::string server_id = server_key.public_key().ToKeyNoteString();

  // Pre-sign outside every timed region.
  std::vector<std::string> creds;
  creds.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    CredentialOptions options;
    options.permissions = "RWX";
    options.comment = "c" + std::to_string(i);
    DsaPrivateKey subject =
        DsaPrivateKey::Generate(Dsa512(), BenchRand(1000 + i));
    auto cred = IssueCredential(server_key, subject.public_key(),
                                HandleString(static_cast<uint32_t>(100 + i)),
                                options);
    if (!cred.ok()) {
      std::fprintf(stderr, "issue failed: %s\n",
                   cred.status().ToString().c_str());
      std::exit(1);
    }
    creds.push_back(std::move(*cred));
  }

  // Single-thread verify latency, seed path vs shipping path, over the
  // same signatures.
  const size_t verify_samples = std::min<size_t>(n, 24);
  std::vector<double> ref_us, fast_us;
  for (size_t i = 0; i < verify_samples; ++i) {
    Bytes digest = prng.NextBytes(20);
    DsaSignature sig = server_key.Sign(digest);
    double a = NowSec();
    bool ref_ok = ReferenceVerify(server_key.public_key(), digest, sig);
    double b = NowSec();
    bool fast_ok = server_key.public_key().Verify(digest, sig);
    double c = NowSec();
    if (!ref_ok || !fast_ok) {
      std::fprintf(stderr, "FATAL: verify disagreement (ref=%d fast=%d)\n",
                   ref_ok, fast_ok);
      std::exit(1);
    }
    ref_us.push_back((b - a) * 1e6);
    fast_us.push_back((c - b) * 1e6);
  }
  out.verify_ref = Summarize(std::move(ref_us));
  out.verify_fast = Summarize(std::move(fast_us));

  // Admit throughput at 1/4/8 submitter threads. Fresh server per phase:
  // each phase verifies every signature from a cold signature cache.
  DiscfsServer* warm_server = nullptr;
  std::unique_ptr<DiscfsServer> keep;
  out.admit_per_s_1t =
      AdmitThroughput(server_key, creds, 1, &warm_server, &keep);
  out.admit_per_s_4t = AdmitThroughput(server_key, creds, 4);
  out.admit_per_s_8t = AdmitThroughput(server_key, creds, 8);

  // Replay: resubmit the full set against the server warmed by the
  // 1-thread phase; every verify should short-circuit in the cache.
  warm_server->ResetTelemetry();
  double r0 = NowSec();
  for (const std::string& cred : creds) {
    if (!warm_server->SubmitCredential(cred).ok()) {
      std::fprintf(stderr, "FATAL: resubmit failed\n");
      std::exit(1);
    }
  }
  double relapsed = NowSec() - r0;
  out.resubmit_per_s = n / relapsed;
  auto stats = warm_server->stats_snapshot().signatures;
  out.sig_cache_hit_rate =
      stats.hits + stats.misses == 0
          ? 0.0
          : static_cast<double>(stats.hits) / (stats.hits + stats.misses);
  return out;
}

void WriteJson(std::FILE* f, const std::vector<TierResult>& results,
               double verify_speedup, double admit_scaling,
               bool scaling_gate_enforced) {
  std::fprintf(f, "{\n  \"bench\": \"admission_scaling\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"verify_speedup\": %.2f,\n", verify_speedup);
  std::fprintf(f, "  \"admit_scaling_1_to_8\": %.2f,\n", admit_scaling);
  std::fprintf(f, "  \"scaling_gate_enforced\": %s,\n",
               scaling_gate_enforced ? "true" : "false");
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const TierResult& r = results[i];
    std::fprintf(
        f,
        "    {\"credentials\": %zu,\n"
        "     \"verify_ref_us\": {\"mean\": %.2f, \"p50\": %.2f, "
        "\"p99\": %.2f},\n"
        "     \"verify_fast_us\": {\"mean\": %.2f, \"p50\": %.2f, "
        "\"p99\": %.2f},\n"
        "     \"admit_per_s_1t\": %.0f,\n"
        "     \"admit_per_s_4t\": %.0f,\n"
        "     \"admit_per_s_8t\": %.0f,\n"
        "     \"sig_cache_hit_rate\": %.4f,\n"
        "     \"resubmit_per_s\": %.0f}%s\n",
        r.credentials, r.verify_ref.mean_us, r.verify_ref.p50_us,
        r.verify_ref.p99_us, r.verify_fast.mean_us, r.verify_fast.p50_us,
        r.verify_fast.p99_us, r.admit_per_s_1t, r.admit_per_s_4t,
        r.admit_per_s_8t, r.sig_cache_hit_rate, r.resubmit_per_s,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

int Run(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_admission.json";
  size_t max_credentials = 1024;
  if (argc > 2) {
    char* end = nullptr;
    max_credentials = std::strtoull(argv[2], &end, 10);
    if (end == argv[2] || *end != '\0') {
      std::fprintf(stderr, "usage: %s [out.json] [max_credentials]\n",
                   argv[0]);
      return 2;
    }
  }

  // 1024-bit group: the paper-era production size the motivation is about.
  DsaPrivateKey server_key =
      DsaPrivateKey::Generate(Dsa1024(), BenchRand(42));
  Prng prng(4242);

  std::printf("== Admission scaling: verify + submit cost ==\n");
  std::printf("%-8s %14s %14s %12s %12s %12s %10s %12s\n", "creds",
              "ref p50 us", "fast p50 us", "admit 1t/s", "admit 4t/s",
              "admit 8t/s", "hit rate", "resubmit/s");

  std::vector<TierResult> results;
  for (size_t n : {64u, 256u, 1024u}) {
    if (n > max_credentials) {
      break;
    }
    TierResult r = RunTier(server_key, n, prng);
    std::printf("%-8zu %14.1f %14.1f %12.0f %12.0f %12.0f %9.2f%% %12.0f\n",
                n, r.verify_ref.p50_us, r.verify_fast.p50_us,
                r.admit_per_s_1t, r.admit_per_s_4t, r.admit_per_s_8t,
                r.sig_cache_hit_rate * 100, r.resubmit_per_s);
    std::fflush(stdout);
    results.push_back(std::move(r));
  }
  if (results.empty()) {
    std::fprintf(stderr, "no tiers ran (max_credentials too small)\n");
    return 2;
  }

  double verify_speedup = 1e9;
  double admit_scaling = 0;
  for (const TierResult& r : results) {
    verify_speedup =
        std::min(verify_speedup, r.verify_ref.mean_us / r.verify_fast.mean_us);
    admit_scaling =
        std::max(admit_scaling, r.admit_per_s_8t / r.admit_per_s_1t);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  const bool scaling_gate_enforced = hw >= 4;

  std::printf("verify speedup (worst tier): %.2fx\n", verify_speedup);
  std::printf("admit scaling 1->8 threads (best tier): %.2fx\n",
              admit_scaling);

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  WriteJson(f, results, verify_speedup, admit_scaling,
            scaling_gate_enforced);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  if (verify_speedup < 2.0) {
    std::fprintf(stderr,
                 "FATAL: verify speedup %.2fx < 2x — the Montgomery/Shamir "
                 "path regressed\n",
                 verify_speedup);
    return 1;
  }
  if (!scaling_gate_enforced) {
    std::printf(
        "WARNING: admit-scaling gate SKIPPED (%u hardware threads < 4; "
        "CPU-bound verification cannot scale on this machine)\n",
        hw);
  } else if (admit_scaling < 2.0) {
    std::fprintf(stderr,
                 "FATAL: admit throughput scaled only %.2fx from 1 to 8 "
                 "threads — is verification back under the lock?\n",
                 admit_scaling);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace discfs

int main(int argc, char** argv) { return discfs::Run(argc, argv); }
