#include "src/keynote/expr.h"

#include <gtest/gtest.h>

#include "src/keynote/lexer.h"

namespace discfs::keynote {
namespace {

// Helper: evaluate a boolean test expression against an environment.
bool EvalBool(const std::string& text, const AttributeMap& env) {
  auto expr = ParseExpression(text, {});
  EXPECT_TRUE(expr.ok()) << text << ": " << expr.status();
  auto v = EvalExpr(**expr, env);
  EXPECT_TRUE(v.ok()) << text << ": " << v.status();
  EXPECT_TRUE(std::holds_alternative<bool>(*v)) << text;
  return std::get<bool>(*v);
}

std::string EvalString(const std::string& text, const AttributeMap& env) {
  auto expr = ParseExpression(text, {});
  EXPECT_TRUE(expr.ok()) << text << ": " << expr.status();
  auto v = EvalExpr(**expr, env);
  EXPECT_TRUE(v.ok()) << text << ": " << v.status();
  EXPECT_TRUE(std::holds_alternative<std::string>(*v)) << text;
  return std::get<std::string>(*v);
}

TEST(Lexer, BasicTokens) {
  auto tokens = Tokenize("(a == \"b\") && !c || d -> ;");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const auto& t : *tokens) {
    kinds.push_back(t.kind);
  }
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kLParen, TokenKind::kIdent, TokenKind::kEq,
                TokenKind::kString, TokenKind::kRParen, TokenKind::kAndAnd,
                TokenKind::kNot, TokenKind::kIdent, TokenKind::kOrOr,
                TokenKind::kIdent, TokenKind::kArrow, TokenKind::kSemi,
                TokenKind::kEnd}));
}

TEST(Lexer, StringEscapes) {
  auto tokens = Tokenize(R"("a\"b\\c\nd")");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "a\"b\\c\nd");
}

TEST(Lexer, UnterminatedStringRejected) {
  EXPECT_FALSE(Tokenize("\"abc").ok());
}

TEST(Lexer, KOfRecognizedOnlyBeforeParen) {
  auto tokens = Tokenize("2-of(\"a\",\"b\")");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kKOf);
  EXPECT_EQ((*tokens)[0].text, "2");

  // Without a following '(', "5-off" is number minus identifier.
  tokens = Tokenize("5-off");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kNumber);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kMinus);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kIdent);
}

TEST(Lexer, RejectsUnknownCharacter) {
  EXPECT_FALSE(Tokenize("a # b").ok());
}

// ---- expression evaluation ----

TEST(Expr, StringEquality) {
  AttributeMap env{{"app_domain", "DisCFS"}};
  EXPECT_TRUE(EvalBool("app_domain == \"DisCFS\"", env));
  EXPECT_FALSE(EvalBool("app_domain == \"IPsec\"", env));
  EXPECT_TRUE(EvalBool("app_domain != \"IPsec\"", env));
}

TEST(Expr, UndefinedAttributeIsEmptyString) {
  EXPECT_TRUE(EvalBool("nonexistent == \"\"", {}));
  EXPECT_FALSE(EvalBool("nonexistent == \"x\"", {}));
}

TEST(Expr, NumericComparisonWhenBothNumeric) {
  AttributeMap env{{"count", "10"}};
  // Lexicographically "10" < "9"; numerically 10 > 9. Dynamic typing must
  // pick numeric here.
  EXPECT_TRUE(EvalBool("count > 9", env));
  EXPECT_TRUE(EvalBool("count >= 10", env));
  EXPECT_FALSE(EvalBool("count < 10", env));
  EXPECT_TRUE(EvalBool("count <= 10", env));
  EXPECT_TRUE(EvalBool("count == 10.0", env));
}

TEST(Expr, LexicographicWhenNotNumeric) {
  AttributeMap env{{"t", "20010523"}};
  EXPECT_TRUE(EvalBool("t < \"20020101\"", env));
  EXPECT_TRUE(EvalBool("\"abc\" < \"abd\"", {}));
  // Mixed numeric/non-numeric falls back to string comparison.
  EXPECT_TRUE(EvalBool("\"10x\" < \"9\"", {}));
}

TEST(Expr, BooleanConnectives) {
  AttributeMap env{{"a", "1"}, {"b", "2"}};
  EXPECT_TRUE(EvalBool("a == 1 && b == 2", env));
  EXPECT_FALSE(EvalBool("a == 1 && b == 3", env));
  EXPECT_TRUE(EvalBool("a == 9 || b == 2", env));
  EXPECT_TRUE(EvalBool("!(a == 9)", env));
  EXPECT_TRUE(EvalBool("true", env));
  EXPECT_FALSE(EvalBool("false", env));
}

TEST(Expr, OperatorPrecedenceAndOverOr) {
  // || binds looser than &&: false && false || true == true.
  EXPECT_TRUE(EvalBool("false && false || true", {}));
  EXPECT_FALSE(EvalBool("false && (false || true)", {}));
}

TEST(Expr, Arithmetic) {
  EXPECT_EQ(EvalString("1 + 2 * 3", {}), "7");
  EXPECT_EQ(EvalString("(1 + 2) * 3", {}), "9");
  EXPECT_EQ(EvalString("10 / 4", {}), "2.5");
  EXPECT_EQ(EvalString("10 % 3", {}), "1");
  EXPECT_EQ(EvalString("2 ^ 10", {}), "1024");
  EXPECT_EQ(EvalString("-5 + 3", {}), "-2");
  EXPECT_EQ(EvalString("2 ^ 3 ^ 2", {}), "512");  // right-associative
}

TEST(Expr, ArithmeticOnAttributes) {
  AttributeMap env{{"size", "4096"}};
  EXPECT_TRUE(EvalBool("size / 2 == 2048", env));
}

TEST(Expr, DivisionByZeroIsError) {
  auto expr = ParseExpression("1 / 0 == 1", {});
  ASSERT_TRUE(expr.ok());
  EXPECT_FALSE(EvalExpr(**expr, {}).ok());
}

TEST(Expr, NonNumericArithmeticIsError) {
  auto expr = ParseExpression("\"abc\" + 1 == 1", {});
  ASSERT_TRUE(expr.ok());
  EXPECT_FALSE(EvalExpr(**expr, {}).ok());
}

TEST(Expr, TypeMismatchBooleanWhereValueExpected) {
  auto expr = ParseExpression("(a == \"b\") + 1 == 2", {});
  ASSERT_TRUE(expr.ok());
  EXPECT_FALSE(EvalExpr(**expr, {}).ok());
}

TEST(Expr, StringConcat) {
  AttributeMap env{{"dir", "testdir"}};
  EXPECT_EQ(EvalString("\"/discfs/\" . dir", env), "/discfs/testdir");
  EXPECT_TRUE(EvalBool("\"a\" . \"b\" == \"ab\"", env));
}

TEST(Expr, RegexMatch) {
  AttributeMap env{{"file", "kernel.c"}};
  EXPECT_TRUE(EvalBool("file ~= \"\\.c$\"", env));
  EXPECT_FALSE(EvalBool("file ~= \"\\.h$\"", env));
  EXPECT_TRUE(EvalBool("file ~= \"^kern\"", env));
}

TEST(Expr, BadRegexIsError) {
  auto expr = ParseExpression("a ~= \"[\"", {});
  ASSERT_TRUE(expr.ok());
  EXPECT_FALSE(EvalExpr(**expr, {}).ok());
}

TEST(Expr, Indirection) {
  AttributeMap env{{"selector", "inner"}, {"inner", "42"}};
  EXPECT_TRUE(EvalBool("$selector == 42", env));
  EXPECT_TRUE(EvalBool("$(\"inner\") == 42", env));
}

TEST(Expr, LocalConstantsSubstitution) {
  ConstantMap constants{{"ADMIN", "dsa-hex:cafe"}};
  auto expr = ParseExpression("ADMIN == \"dsa-hex:cafe\"", constants);
  ASSERT_TRUE(expr.ok());
  auto v = EvalExpr(**expr, {});
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(std::get<bool>(*v));
}

TEST(Expr, ParseErrors) {
  EXPECT_FALSE(ParseExpression("a ==", {}).ok());
  EXPECT_FALSE(ParseExpression("(a == \"b\"", {}).ok());
  EXPECT_FALSE(ParseExpression("&& a", {}).ok());
  EXPECT_FALSE(ParseExpression("", {}).ok());
}

// ---- Conditions programs ----

ComplianceLattice::Value RunConditions(const std::string& text,
                                       const AttributeMap& env) {
  auto program = ParseConditions(text, {});
  EXPECT_TRUE(program.ok()) << text << ": " << program.status();
  return EvalConditions(*program, env, PermissionLattice::Get());
}

TEST(Conditions, PaperFigure5Credential) {
  // The exact conditions from the paper's Figure 5.
  std::string conditions =
      "(app_domain == \"DisCFS\") && (HANDLE == \"666240\") -> \"RWX\";";
  AttributeMap env{{"app_domain", "DisCFS"}, {"HANDLE", "666240"}};
  EXPECT_EQ(RunConditions(conditions, env), 7u);  // RWX

  env["HANDLE"] = "999999";
  EXPECT_EQ(RunConditions(conditions, env), 0u);  // false
}

TEST(Conditions, MultipleClausesJoin) {
  // Two clauses granting R and W respectively both fire: join = RW.
  std::string conditions =
      "op == \"read\" || op == \"any\" -> \"R\"; "
      "op == \"write\" || op == \"any\" -> \"W\";";
  EXPECT_EQ(RunConditions(conditions, {{"op", "any"}}), 6u);   // RW
  EXPECT_EQ(RunConditions(conditions, {{"op", "read"}}), 4u);  // R
  EXPECT_EQ(RunConditions(conditions, {{"op", "none"}}), 0u);
}

TEST(Conditions, BareTestYieldsTop) {
  EXPECT_EQ(RunConditions("handle == \"1\";", {{"handle", "1"}}), 7u);
  EXPECT_EQ(RunConditions("handle == \"1\"", {{"handle", "2"}}), 0u);
}

TEST(Conditions, EmptyProgramYieldsTop) {
  EXPECT_EQ(RunConditions("", {}), 7u);
  EXPECT_EQ(RunConditions("   ", {}), 7u);
}

TEST(Conditions, NestedBraceProgram) {
  std::string conditions =
      "app_domain == \"DisCFS\" -> { handle == \"5\" -> \"RW\"; "
      "handle == \"6\" -> \"R\"; };";
  EXPECT_EQ(RunConditions(conditions,
                          {{"app_domain", "DisCFS"}, {"handle", "5"}}),
            6u);
  EXPECT_EQ(RunConditions(conditions,
                          {{"app_domain", "DisCFS"}, {"handle", "6"}}),
            4u);
  EXPECT_EQ(RunConditions(conditions,
                          {{"app_domain", "other"}, {"handle", "5"}}),
            0u);
}

TEST(Conditions, UnknownReturnValueCountsAsBottom) {
  EXPECT_EQ(RunConditions("true -> \"SUPERUSER\";", {}), 0u);
}

TEST(Conditions, ErroringClauseDoesNotPoisonOthers) {
  std::string conditions =
      "1/0 == 1 -> \"RWX\"; op == \"read\" -> \"R\";";
  EXPECT_EQ(RunConditions(conditions, {{"op", "read"}}), 4u);
}

TEST(Conditions, TimeOfDayPolicy) {
  // The paper's example: leisure files unavailable during office hours.
  std::string conditions =
      "(app_domain == \"DisCFS\") && "
      "(time_of_day < \"0900\" || time_of_day >= \"1700\") -> \"R\";";
  EXPECT_EQ(RunConditions(conditions, {{"app_domain", "DisCFS"},
                                       {"time_of_day", "0830"}}),
            4u);
  EXPECT_EQ(RunConditions(conditions, {{"app_domain", "DisCFS"},
                                       {"time_of_day", "1200"}}),
            0u);
  EXPECT_EQ(RunConditions(conditions, {{"app_domain", "DisCFS"},
                                       {"time_of_day", "2300"}}),
            4u);
}

TEST(Conditions, TotalOrderLatticeValues) {
  TotalOrderLattice lattice({"false", "maybe", "true"});
  auto program = ParseConditions(
      "a == \"1\" -> \"maybe\"; b == \"1\" -> \"true\";", {});
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(EvalConditions(*program, {{"a", "1"}}, lattice), 1u);
  EXPECT_EQ(EvalConditions(*program, {{"b", "1"}}, lattice), 2u);
  EXPECT_EQ(EvalConditions(*program, {{"a", "1"}, {"b", "1"}}, lattice), 2u);
  EXPECT_EQ(EvalConditions(*program, {}, lattice), 0u);
}

TEST(Conditions, TrailingSemicolonsAndWhitespace) {
  EXPECT_EQ(RunConditions(" ;; true -> \"R\" ;; ", {}), 4u);
}

// ---- lattice laws ----

TEST(PermissionLatticeTest, NamesRoundTrip) {
  const auto& lat = PermissionLattice::Get();
  for (uint32_t v = 0; v < 8; ++v) {
    auto back = lat.FromName(lat.Name(v));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, v);
  }
  EXPECT_FALSE(lat.FromName("RWRW").has_value());
  EXPECT_EQ(lat.FromName("true"), lat.Top());
}

TEST(PermissionLatticeTest, OctalCorrespondence) {
  const auto& lat = PermissionLattice::Get();
  EXPECT_EQ(lat.FromName("R"), 4u);
  EXPECT_EQ(lat.FromName("W"), 2u);
  EXPECT_EQ(lat.FromName("X"), 1u);
  EXPECT_EQ(lat.FromName("RWX"), 7u);
  EXPECT_EQ(lat.FromName("false"), 0u);
}

TEST(PermissionLatticeTest, LatticeLaws) {
  const auto& lat = PermissionLattice::Get();
  for (uint32_t a = 0; a < 8; ++a) {
    for (uint32_t b = 0; b < 8; ++b) {
      EXPECT_EQ(lat.Meet(a, b), lat.Meet(b, a));
      EXPECT_EQ(lat.Join(a, b), lat.Join(b, a));
      // Absorption.
      EXPECT_EQ(lat.Join(a, lat.Meet(a, b)), a);
      EXPECT_EQ(lat.Meet(a, lat.Join(a, b)), a);
      for (uint32_t c = 0; c < 8; ++c) {
        EXPECT_EQ(lat.Meet(a, lat.Meet(b, c)), lat.Meet(lat.Meet(a, b), c));
        EXPECT_EQ(lat.Join(a, lat.Join(b, c)), lat.Join(lat.Join(a, b), c));
      }
    }
  }
}

TEST(TotalOrderLatticeTest, MeetJoinAreMinMax) {
  TotalOrderLattice lat({"no", "ro", "rw"});
  EXPECT_EQ(lat.Meet(0, 2), 0u);
  EXPECT_EQ(lat.Join(0, 2), 2u);
  EXPECT_EQ(lat.Bottom(), 0u);
  EXPECT_EQ(lat.Top(), 2u);
  EXPECT_EQ(lat.Name(1), "ro");
}

}  // namespace
}  // namespace discfs::keynote
