#include "src/keynote/licensees.h"

#include <algorithm>
#include <cstdlib>

#include "src/keynote/lexer.h"
#include "src/util/strings.h"

namespace discfs::keynote {
namespace {

// Grammar:
//   lic     := and_lic ('||' and_lic)*     -- '||' binds looser than '&&'
//   and_lic := primary ('&&' primary)*
//   primary := PRINCIPAL | K-OF '(' lic (',' lic)* ')' | '(' lic ')'
class LicenseesParser {
 public:
  LicenseesParser(std::vector<Token> tokens, const ConstantMap& constants)
      : tokens_(std::move(tokens)), constants_(constants) {}

  Result<std::unique_ptr<LicenseesNode>> ParseFull() {
    ASSIGN_OR_RETURN(std::unique_ptr<LicenseesNode> n, ParseOr());
    if (tokens_[pos_].kind != TokenKind::kEnd) {
      return InvalidArgumentError(
          StrPrintf("trailing tokens in licensees at offset %zu",
                    tokens_[pos_].pos));
    }
    return n;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  Token Take() { return tokens_[pos_++]; }
  bool Accept(TokenKind k) {
    if (Peek().kind == k) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::unique_ptr<LicenseesNode>> ParseOr() {
    ASSIGN_OR_RETURN(std::unique_ptr<LicenseesNode> lhs, ParseAnd());
    while (Accept(TokenKind::kOrOr)) {
      ASSIGN_OR_RETURN(std::unique_ptr<LicenseesNode> rhs, ParseAnd());
      auto node = std::make_unique<LicenseesNode>();
      node->kind = LicenseesNode::Kind::kOr;
      node->children.push_back(std::move(lhs));
      node->children.push_back(std::move(rhs));
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<std::unique_ptr<LicenseesNode>> ParseAnd() {
    ASSIGN_OR_RETURN(std::unique_ptr<LicenseesNode> lhs, ParsePrimary());
    while (Accept(TokenKind::kAndAnd)) {
      ASSIGN_OR_RETURN(std::unique_ptr<LicenseesNode> rhs, ParsePrimary());
      auto node = std::make_unique<LicenseesNode>();
      node->kind = LicenseesNode::Kind::kAnd;
      node->children.push_back(std::move(lhs));
      node->children.push_back(std::move(rhs));
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<std::unique_ptr<LicenseesNode>> ParsePrimary() {
    if (Peek().kind == TokenKind::kString ||
        Peek().kind == TokenKind::kIdent) {
      Token t = Take();
      std::string principal = t.text;
      if (t.kind == TokenKind::kIdent) {
        auto it = constants_.find(principal);
        if (it != constants_.end()) {
          principal = it->second;
        }
      }
      auto node = std::make_unique<LicenseesNode>();
      node->kind = LicenseesNode::Kind::kPrincipal;
      node->principal = std::move(principal);
      return node;
    }
    if (Peek().kind == TokenKind::kKOf) {
      Token t = Take();
      size_t k = std::strtoull(t.text.c_str(), nullptr, 10);
      if (!Accept(TokenKind::kLParen)) {
        return InvalidArgumentError("expected '(' after k-of");
      }
      auto node = std::make_unique<LicenseesNode>();
      node->kind = LicenseesNode::Kind::kThreshold;
      node->k = k;
      do {
        ASSIGN_OR_RETURN(std::unique_ptr<LicenseesNode> child, ParseOr());
        node->children.push_back(std::move(child));
      } while (Accept(TokenKind::kComma));
      if (!Accept(TokenKind::kRParen)) {
        return InvalidArgumentError("expected ')' closing k-of");
      }
      if (k == 0 || k > node->children.size()) {
        return InvalidArgumentError(
            StrPrintf("k-of threshold %zu out of range for %zu operands", k,
                      node->children.size()));
      }
      if (node->children.size() > 20) {
        return InvalidArgumentError("k-of supports at most 20 operands");
      }
      return node;
    }
    if (Accept(TokenKind::kLParen)) {
      ASSIGN_OR_RETURN(std::unique_ptr<LicenseesNode> n, ParseOr());
      if (!Accept(TokenKind::kRParen)) {
        return InvalidArgumentError("expected ')'");
      }
      return n;
    }
    return InvalidArgumentError(
        StrPrintf("unexpected %s in licensees at offset %zu",
                  TokenKindName(Peek().kind), Peek().pos));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  const ConstantMap& constants_;
};

void CollectInto(const LicenseesNode& node, std::vector<std::string>& out) {
  if (node.kind == LicenseesNode::Kind::kPrincipal) {
    if (std::find(out.begin(), out.end(), node.principal) == out.end()) {
      out.push_back(node.principal);
    }
    return;
  }
  for (const auto& child : node.children) {
    CollectInto(*child, out);
  }
}

}  // namespace

Result<std::unique_ptr<LicenseesNode>> ParseLicensees(
    std::string_view text, const ConstantMap& constants) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  LicenseesParser parser(std::move(tokens), constants);
  return parser.ParseFull();
}

Result<std::string> ParseAuthorizer(std::string_view text,
                                    const ConstantMap& constants) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  if (tokens.size() != 2 || (tokens[0].kind != TokenKind::kString &&
                             tokens[0].kind != TokenKind::kIdent)) {
    return InvalidArgumentError("authorizer must be a single principal");
  }
  std::string principal = tokens[0].text;
  if (tokens[0].kind == TokenKind::kIdent) {
    auto it = constants.find(principal);
    if (it != constants.end()) {
      principal = it->second;
    }
  }
  return principal;
}

std::vector<std::string> CollectPrincipals(const LicenseesNode& node) {
  std::vector<std::string> out;
  CollectInto(node, out);
  return out;
}

ComplianceLattice::Value EvalLicensees(
    const LicenseesNode& node,
    const std::map<std::string, ComplianceLattice::Value>& values,
    const ComplianceLattice& lattice) {
  switch (node.kind) {
    case LicenseesNode::Kind::kPrincipal: {
      auto it = values.find(node.principal);
      return it == values.end() ? lattice.Bottom() : it->second;
    }
    case LicenseesNode::Kind::kAnd: {
      return lattice.Meet(EvalLicensees(*node.children[0], values, lattice),
                          EvalLicensees(*node.children[1], values, lattice));
    }
    case LicenseesNode::Kind::kOr: {
      return lattice.Join(EvalLicensees(*node.children[0], values, lattice),
                          EvalLicensees(*node.children[1], values, lattice));
    }
    case LicenseesNode::Kind::kThreshold: {
      // join over all k-subsets of the meet of the subset. For a total
      // order this equals the k-th largest child value; for the permission
      // lattice it is the best permission set any k licensees jointly hold.
      const size_t n = node.children.size();
      std::vector<ComplianceLattice::Value> child_values;
      child_values.reserve(n);
      for (const auto& child : node.children) {
        child_values.push_back(EvalLicensees(*child, values, lattice));
      }
      ComplianceLattice::Value acc = lattice.Bottom();
      for (uint32_t mask = 0; mask < (1u << n); ++mask) {
        if (static_cast<size_t>(__builtin_popcount(mask)) != node.k) {
          continue;
        }
        ComplianceLattice::Value subset = lattice.Top();
        for (size_t i = 0; i < n; ++i) {
          if (mask & (1u << i)) {
            subset = lattice.Meet(subset, child_values[i]);
          }
        }
        acc = lattice.Join(acc, subset);
      }
      return acc;
    }
  }
  return lattice.Bottom();
}

}  // namespace discfs::keynote
