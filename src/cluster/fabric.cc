#include "src/cluster/fabric.h"

#include <algorithm>
#include <thread>

#include "src/cluster/protocol.h"
#include "src/crypto/sysrand.h"
#include "src/net/transport.h"
#include "src/rpc/rpc.h"

namespace discfs::cluster {
namespace {

// Forwards to a stream owned by someone else. The peer sender keeps true
// ownership of its TcpTransport so a concurrent Stop can always Shutdown
// the live fd; the secure channel (and the RpcClient above it) own only
// this view, whose Close intentionally degrades to Shutdown — the fd is
// released by the owner, after the channel is gone, avoiding the
// fd-reuse-while-registered race.
class BorrowedStream : public MsgStream {
 public:
  explicit BorrowedStream(MsgStream* inner) : inner_(inner) {}

  Status Send(const Bytes& message) override { return inner_->Send(message); }
  Result<Bytes> Recv() override { return inner_->Recv(); }
  void Close() override { inner_->Shutdown(); }
  void Shutdown() override { inner_->Shutdown(); }
  int PollFd() const override { return inner_->PollFd(); }
  Result<std::optional<Bytes>> TryRecv() override { return inner_->TryRecv(); }
  Result<bool> SendNonBlocking(const Bytes& message) override {
    return inner_->SendNonBlocking(message);
  }
  Result<bool> FlushSend() override { return inner_->FlushSend(); }

 private:
  MsgStream* inner_;
};

}  // namespace

// One outbound replication link. A dedicated thread drives the blocking
// connect/handshake/push cycle (peers are few — one per cluster member —
// so a thread each is cheap); replies still demux on the shared EventLoop
// through the RpcClient. The thread owns the connection state; Stop and
// the pause seam only poke it under mu_.
class CoherenceFabric::PeerSender {
 public:
  PeerSender(CoherenceFabric* fabric, PeerConfig peer)
      : fabric_(fabric),
        peer_(std::move(peer)),
        address_(peer_.host + ":" + std::to_string(peer_.port)) {
    thread_ = std::thread([this] { Run(); });
  }

  ~PeerSender() {
    Stop();
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  void Stop() {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    if (client_ != nullptr) {
      client_->Close();  // fails a blocked Call fast
    }
    if (transport_ != nullptr) {
      transport_->Shutdown();  // unblocks a mid-handshake Recv
    }
    cv_.notify_all();
  }

  void SetPaused(bool paused) {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = paused;
    if (paused && client_ != nullptr) {
      // Drop the link so resuming exercises the reconnect path.
      client_->Close();
    }
    cv_.notify_all();
  }

  void NotifyNewEvents() {
    std::lock_guard<std::mutex> lock(mu_);
    cv_.notify_all();
  }

  uint64_t acked() const { return acked_.load(std::memory_order_acquire); }

  PeerStats stats() const {
    PeerStats s;
    s.address = address_;
    s.acked_seq = acked();
    s.connects = connects_.load(std::memory_order_relaxed);
    s.connect_failures = connect_failures_.load(std::memory_order_relaxed);
    s.full_invalidations_sent =
        full_invalidations_sent_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    s.connected = client_ != nullptr;
    return s;
  }

 private:
  void Run() {
    std::chrono::milliseconds backoff =
        fabric_->config_.tuning.reconnect_initial;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return !paused_ || stop_; });
        if (stop_) {
          break;
        }
      }
      RpcClient* client = CurrentClient();
      if (client == nullptr) {
        if (!Connect()) {
          if (WaitStopped(backoff)) {
            break;
          }
          backoff =
              std::min(backoff * 2, fabric_->config_.tuning.reconnect_max);
          continue;
        }
        backoff = fabric_->config_.tuning.reconnect_initial;
        continue;  // re-check stop/pause before pushing
      }

      bool compacted = false;
      std::vector<SequencedEvent> batch = fabric_->log_.ReadAfter(
          acked(), fabric_->config_.tuning.batch_max, &compacted);
      if (compacted) {
        // The log no longer holds cursor+1: one full invalidation stands
        // in for the lost prefix (seq = last lost entry), after which the
        // retained suffix replays normally.
        SequencedEvent flush;
        flush.seq = fabric_->log_.first_seq() - 1;
        flush.event.type = CoherenceEvent::Type::kInvalidateAll;
        if (PushBatch(client, {flush})) {
          full_invalidations_sent_.fetch_add(1, std::memory_order_relaxed);
        }
        continue;
      }
      if (batch.empty()) {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] {
          return stop_ || paused_ ||
                 fabric_->log_.head_seq() >
                     acked_.load(std::memory_order_acquire);
        });
        if (stop_) {
          break;
        }
        continue;
      }
      PushBatch(client, batch);
    }
    Disconnect();
  }

  RpcClient* CurrentClient() {
    std::lock_guard<std::mutex> lock(mu_);
    return client_.get();
  }

  // Calls a cluster procedure under the configured deadline. A peer that
  // dies without RST never replies; on expiry the connection is closed
  // (which fails the in-flight call) so the reconnect loop takes over
  // instead of this sender waiting forever.
  Result<Bytes> TimedCall(RpcClient* client, ClusterProc proc,
                          const Bytes& args) {
    std::future<Result<Bytes>> reply = client->CallAsync(
        kClusterProgram, static_cast<uint32_t>(proc), args);
    if (reply.wait_for(fabric_->config_.tuning.call_timeout) ==
        std::future_status::timeout) {
      client->Close();  // fails the pending call; the future resolves now
      (void)reply.get();
      return DeadlineExceededError("cluster peer call timed out");
    }
    return reply.get();
  }

  // Returns true when stop was requested during the wait.
  bool WaitStopped(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [this] { return stop_; });
  }

  bool Connect() {
    auto transport = TcpTransport::Connect(
        peer_.host, peer_.port,
        static_cast<int>(
            fabric_->config_.tuning.connect_timeout.count()));
    if (!transport.ok()) {
      connect_failures_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) {
        return false;
      }
      transport_ = std::move(transport).value();
    }
    // The handshake borrows the transport: Stop can Shutdown it at any
    // point without an ownership race (see BorrowedStream).
    auto channel = SecureChannel::ClientHandshake(
        std::make_unique<BorrowedStream>(transport_.get()),
        fabric_->config_.identity, peer_.expected_key);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!channel.ok() || stop_) {
        transport_.reset();
        connect_failures_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      client_ = std::make_unique<RpcClient>(std::move(channel).value(),
                                            fabric_->config_.loop);
    }
    // Learn where the peer wants us to resume (its cursor for our origin;
    // 0 from a fresh peer replays everything retained). The incarnation
    // id lets a peer that outlived our restart detect that our sequence
    // space is new and reset, instead of deduplicating the reborn log
    // against the dead incarnation's numbering forever.
    HelloRequest hello;
    hello.origin = fabric_->config_.node_id;
    hello.incarnation = fabric_->incarnation_;
    hello.head_seq = fabric_->log_.head_seq();
    auto reply =
        TimedCall(CurrentClient(), ClusterProc::kHello, EncodeHello(hello));
    uint64_t cursor = 0;
    bool ok = reply.ok();
    if (ok) {
      XdrReader r(*reply);
      auto decoded = r.GetU64();
      ok = decoded.ok();
      if (ok) {
        cursor = *decoded;
      }
    }
    if (!ok) {
      Disconnect();
      connect_failures_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // A well-behaved peer never claims more than we offered; clamp so a
    // confused one cannot stall this sender waiting for unreachable seqs.
    cursor = std::min(cursor, hello.head_seq);
    acked_.store(cursor, std::memory_order_release);
    connects_.fetch_add(1, std::memory_order_relaxed);
    fabric_->NoteAck();
    return true;
  }

  // Sends one push and advances the cursor from the reply. On any failure
  // the connection is dropped (the next loop iteration reconnects and
  // resumes from the receiver's authoritative cursor).
  bool PushBatch(RpcClient* client, const std::vector<SequencedEvent>& batch) {
    PushRequest request;
    request.origin = fabric_->config_.node_id;
    request.events = batch;
    auto reply = TimedCall(client, ClusterProc::kPush, EncodePush(request));
    if (!reply.ok()) {
      Disconnect();
      return false;
    }
    XdrReader r(*reply);
    auto cursor = r.GetU64();
    if (!cursor.ok()) {
      Disconnect();
      return false;
    }
    uint64_t prev = acked_.load(std::memory_order_acquire);
    if (*cursor > prev) {
      acked_.store(*cursor, std::memory_order_release);
    }
    fabric_->NoteAck();
    return true;
  }

  void Disconnect() {
    std::lock_guard<std::mutex> lock(mu_);
    if (client_ != nullptr) {
      client_->Close();
      client_.reset();  // unregisters from the loop before the fd dies
    }
    transport_.reset();
  }

  CoherenceFabric* fabric_;
  const PeerConfig peer_;
  const std::string address_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;    // guarded by mu_
  bool paused_ = false;  // guarded by mu_
  // Connection state: created/destroyed only by the sender thread, always
  // under mu_, so Stop/SetPaused can safely poke whatever exists.
  std::unique_ptr<TcpTransport> transport_;  // guarded by mu_
  std::unique_ptr<RpcClient> client_;        // guarded by mu_

  std::atomic<uint64_t> acked_{0};
  std::atomic<uint64_t> connects_{0};
  std::atomic<uint64_t> connect_failures_{0};
  std::atomic<uint64_t> full_invalidations_sent_{0};
  std::thread thread_;
};

CoherenceFabric::CoherenceFabric(FabricConfig config)
    : config_(std::move(config)), log_(config_.tuning.log_capacity) {
  // Always from the system entropy pool, never config.identity.rand_bytes:
  // a deterministic (seeded) rand would reproduce the same incarnation
  // after a restart, and restart detection is the whole point.
  for (uint8_t b : SysRandomBytes(sizeof(incarnation_))) {
    incarnation_ = (incarnation_ << 8) | b;
  }
  if (incarnation_ == 0) {
    incarnation_ = 1;  // 0 marks "never heard a Hello" on receivers
  }
}

CoherenceFabric::~CoherenceFabric() {
  std::vector<std::unique_ptr<PeerSender>> peers;
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    peers.swap(peers_);
  }
  peers.clear();  // each dtor stops and joins its sender thread
}

void CoherenceFabric::AddPeer(PeerConfig peer) {
  std::lock_guard<std::mutex> lock(peers_mu_);
  peers_.push_back(std::make_unique<PeerSender>(this, std::move(peer)));
}

uint64_t CoherenceFabric::Publish(CoherenceEvent event) {
  uint64_t seq = log_.Append(std::move(event));
  published_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(peers_mu_);
  for (auto& peer : peers_) {
    peer->NotifyNewEvents();
  }
  return seq;
}

CoherenceFabric::RecvState& CoherenceFabric::RecvStateFor(
    const std::string& origin) {
  std::lock_guard<std::mutex> lock(recv_mu_);
  return recv_cursors_[origin];  // node-stable; entries are never erased
}

void CoherenceFabric::ApplyResetFlush() {
  CoherenceEvent flush;
  flush.type = CoherenceEvent::Type::kInvalidateAll;
  if (config_.apply) {
    config_.apply(flush);
  }
  full_invalidations_applied_.fetch_add(1, std::memory_order_relaxed);
  applied_.fetch_add(1, std::memory_order_release);
}

uint64_t CoherenceFabric::HandleHello(const std::string& origin,
                                      uint64_t incarnation,
                                      uint64_t origin_head) {
  RecvState& state = RecvStateFor(origin);
  std::lock_guard<std::mutex> lock(state.mu);
  uint64_t cursor = state.cursor.load(std::memory_order_relaxed);
  bool restarted = false;
  if (state.incarnation != incarnation) {
    // First Hello from this incarnation. A nonzero cursor belongs to a
    // dead incarnation whose sequence space restarted: without a reset
    // we would dedup the reborn origin's events 1..cursor — including
    // revocations — forever.
    restarted = cursor > 0;
    state.incarnation = incarnation;
    cursor = 0;
    state.cursor.store(0, std::memory_order_release);
  } else if (cursor > origin_head) {
    // Same incarnation cannot regress its head; reset defensively.
    restarted = true;
    cursor = 0;
    state.cursor.store(0, std::memory_order_release);
  }
  if (restarted) {
    // Scoped state learned from the dead incarnation is of unknowable
    // coverage now — flush, then let the replay rebuild warmth.
    ApplyResetFlush();
  }
  return cursor;
}

uint64_t CoherenceFabric::HandlePush(
    const std::string& origin, const std::vector<SequencedEvent>& events) {
  // state.mu is held across apply so concurrent pushes from one origin
  // (reconnect racing a stale connection) cannot reorder application;
  // pushes from different origins apply concurrently.
  RecvState& state = RecvStateFor(origin);
  std::lock_guard<std::mutex> lock(state.mu);
  uint64_t cursor = state.cursor.load(std::memory_order_relaxed);
  for (const SequencedEvent& entry : events) {
    if (entry.seq <= cursor) {
      duplicates_skipped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (config_.apply) {
      config_.apply(entry.event);
    }
    if (entry.event.type == CoherenceEvent::Type::kInvalidateAll) {
      full_invalidations_applied_.fetch_add(1, std::memory_order_relaxed);
    }
    applied_.fetch_add(1, std::memory_order_release);
    cursor = entry.seq;
    state.cursor.store(cursor, std::memory_order_release);
  }
  return cursor;
}

bool CoherenceFabric::WaitForAck(uint64_t seq,
                                 std::chrono::milliseconds timeout) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(peers_mu_);
  return ack_cv_.wait_until(lock, deadline, [this, seq] {
    for (const auto& peer : peers_) {
      if (peer->acked() < seq) {
        return false;
      }
    }
    return true;
  });
}

void CoherenceFabric::NoteAck() {
  std::lock_guard<std::mutex> lock(peers_mu_);
  ack_cv_.notify_all();
}

FabricStats CoherenceFabric::stats() const {
  FabricStats s;
  s.published = published_.load(std::memory_order_relaxed);
  s.applied = applied_.load(std::memory_order_relaxed);
  s.duplicates_skipped = duplicates_skipped_.load(std::memory_order_relaxed);
  s.full_invalidations_applied =
      full_invalidations_applied_.load(std::memory_order_relaxed);
  s.head_seq = log_.head_seq();
  std::lock_guard<std::mutex> lock(peers_mu_);
  s.peers.reserve(peers_.size());
  for (const auto& peer : peers_) {
    s.peers.push_back(peer->stats());
  }
  return s;
}

uint64_t CoherenceFabric::ReceiveCursor(const std::string& origin) const {
  std::lock_guard<std::mutex> lock(recv_mu_);
  auto it = recv_cursors_.find(origin);
  return it == recv_cursors_.end()
             ? 0
             : it->second.cursor.load(std::memory_order_acquire);
}

void CoherenceFabric::SetPeerPausedForTest(size_t index, bool paused) {
  std::lock_guard<std::mutex> lock(peers_mu_);
  if (index < peers_.size()) {
    peers_[index]->SetPaused(paused);
  }
}

}  // namespace discfs::cluster
