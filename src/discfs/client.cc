#include "src/discfs/client.h"

#include "src/obs/trace.h"
#include "src/wire/xdr.h"

namespace discfs {

DiscfsClient::DiscfsClient(std::shared_ptr<RpcClient> rpc,
                           DsaPublicKey server_key, DsaPublicKey own_key)
    : rpc_(std::move(rpc)),
      nfs_(std::make_unique<NfsClient>(rpc_)),
      server_key_(std::move(server_key)),
      own_key_(std::move(own_key)) {}

Result<std::unique_ptr<DiscfsClient>> DiscfsClient::Connect(
    const std::string& host, uint16_t port, const ChannelIdentity& identity,
    const std::optional<DsaPublicKey>& expected_server) {
  ASSIGN_OR_RETURN(std::unique_ptr<TcpTransport> transport,
                   TcpTransport::Connect(host, port));
  return ConnectOver(std::move(transport), identity, expected_server);
}

Result<std::unique_ptr<DiscfsClient>> DiscfsClient::ConnectOver(
    std::unique_ptr<MsgStream> transport, const ChannelIdentity& identity,
    const std::optional<DsaPublicKey>& expected_server) {
  ASSIGN_OR_RETURN(std::unique_ptr<SecureChannel> channel,
                   SecureChannel::ClientHandshake(std::move(transport),
                                                  identity, expected_server));
  DsaPublicKey server_key = channel->peer_key();
  auto rpc = std::make_shared<RpcClient>(std::move(channel));
  return std::unique_ptr<DiscfsClient>(new DiscfsClient(
      std::move(rpc), std::move(server_key), identity.key.public_key()));
}

Result<Bytes> DiscfsClient::Call(DiscfsProc proc, const Bytes& args) {
  return rpc_->Call(kDiscfsProgram, static_cast<uint32_t>(proc), args);
}

Result<NfsFattr> DiscfsClient::Attach() { return nfs_->GetRoot(); }

Result<std::string> DiscfsClient::SubmitCredential(const std::string& text) {
  XdrWriter w;
  w.PutString(text);
  ASSIGN_OR_RETURN(Bytes reply, Call(DiscfsProc::kSubmitCredential, w.Take()));
  XdrReader r(reply);
  return r.GetString();
}

Result<std::vector<Result<std::string>>> DiscfsClient::SubmitCredentials(
    const std::vector<std::string>& texts) {
  if (texts.size() > kMaxCredentialBatch) {
    return InvalidArgumentError(
        "batch exceeds the protocol bound; split into chunks of at most " +
        std::to_string(kMaxCredentialBatch));
  }
  XdrWriter w;
  w.PutU32(static_cast<uint32_t>(texts.size()));
  for (const std::string& text : texts) {
    w.PutString(text);
  }
  ASSIGN_OR_RETURN(Bytes reply,
                   Call(DiscfsProc::kSubmitCredentialBatch, w.Take()));
  XdrReader r(reply);
  ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  if (count != texts.size()) {
    return DataLossError("batch reply count does not match request");
  }
  std::vector<Result<std::string>> results;
  results.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(uint32_t code, r.GetU32());
    ASSIGN_OR_RETURN(std::string body, r.GetString(1 << 20));
    if (code == static_cast<uint32_t>(StatusCode::kOk)) {
      results.emplace_back(std::move(body));
    } else {
      results.emplace_back(
          Status(static_cast<StatusCode>(code), std::move(body)));
    }
  }
  return results;
}

Status DiscfsClient::RemoveCredential(const std::string& credential_id) {
  XdrWriter w;
  w.PutString(credential_id);
  // Revocations are the traced operations: mint an id here so the whole
  // cross-node invalidation cascade is attributable to this call.
  last_trace_id_ = obs::MintTraceId();
  obs::TraceScope scope(last_trace_id_);
  return Call(DiscfsProc::kRemoveCredential, w.Take()).status();
}

Status DiscfsClient::RevokeOwnKey() {
  XdrWriter w;
  w.PutString(own_key_.ToKeyNoteString());
  last_trace_id_ = obs::MintTraceId();
  obs::TraceScope scope(last_trace_id_);
  return Call(DiscfsProc::kRevokeKey, w.Take()).status();
}

Result<CreateResult> DiscfsClient::CreateWithCredential(
    const NfsFh& dir, const std::string& name, uint32_t mode) {
  XdrWriter w;
  WriteFh(w, dir);
  w.PutString(name);
  w.PutU32(mode);
  ASSIGN_OR_RETURN(Bytes reply, Call(DiscfsProc::kCreateReturnsCred, w.Take()));
  XdrReader r(reply);
  CreateResult result;
  ASSIGN_OR_RETURN(result.attr, ReadFattr(r));
  ASSIGN_OR_RETURN(result.credential, r.GetString(1 << 20));
  return result;
}

Result<CreateResult> DiscfsClient::MkdirWithCredential(const NfsFh& dir,
                                                       const std::string& name,
                                                       uint32_t mode) {
  XdrWriter w;
  WriteFh(w, dir);
  w.PutString(name);
  w.PutU32(mode);
  ASSIGN_OR_RETURN(Bytes reply, Call(DiscfsProc::kMkdirReturnsCred, w.Take()));
  XdrReader r(reply);
  CreateResult result;
  ASSIGN_OR_RETURN(result.attr, ReadFattr(r));
  ASSIGN_OR_RETURN(result.credential, r.GetString(1 << 20));
  return result;
}

Result<NfsFattr> DiscfsClient::ResolveHandle(uint32_t inode) {
  XdrWriter w;
  w.PutU32(inode);
  ASSIGN_OR_RETURN(Bytes reply, Call(DiscfsProc::kResolveHandle, w.Take()));
  XdrReader r(reply);
  return ReadFattr(r);
}

Result<wire::LockboxRecord> DiscfsClient::PutLockbox(
    const NfsFh& fh, bool sealed, uint32_t chunk_size, const Bytes& payload,
    const std::vector<wire::LockboxEntry>& entries) {
  if (payload.size() > kMaxLockboxPayload) {
    return InvalidArgumentError("lockbox payload exceeds the protocol bound");
  }
  XdrWriter w;
  WriteFh(w, fh);
  w.PutBool(sealed);
  w.PutU32(chunk_size);
  w.PutOpaque(payload);
  w.PutU32(static_cast<uint32_t>(entries.size()));
  for (const wire::LockboxEntry& entry : entries) {
    w.PutString(entry.recipient);
    w.PutOpaque(entry.wrapped_key);
  }
  ASSIGN_OR_RETURN(Bytes reply, Call(DiscfsProc::kPutLockbox, w.Take()));
  XdrReader r(reply);
  ASSIGN_OR_RETURN(Bytes encoded, r.GetOpaque(1 << 22));
  return wire::DecodeLockboxRecord(encoded);
}

Result<LockboxFetch> DiscfsClient::GetLockbox(const NfsFh& fh) {
  XdrWriter w;
  WriteFh(w, fh);
  ASSIGN_OR_RETURN(Bytes reply, Call(DiscfsProc::kGetLockbox, w.Take()));
  XdrReader r(reply);
  ASSIGN_OR_RETURN(Bytes encoded, r.GetOpaque(1 << 22));
  LockboxFetch fetch;
  ASSIGN_OR_RETURN(fetch.record, wire::DecodeLockboxRecord(encoded));
  ASSIGN_OR_RETURN(fetch.payload, r.GetOpaque(kMaxLockboxPayload));
  return fetch;
}

Status DiscfsClient::GrantLockboxAccess(const NfsFh& fh,
                                        const wire::LockboxEntry& entry) {
  XdrWriter w;
  WriteFh(w, fh);
  w.PutString(entry.recipient);
  w.PutOpaque(entry.wrapped_key);
  return Call(DiscfsProc::kGrantAccess, w.Take()).status();
}

Status DiscfsClient::RevokeLockboxAccess(const NfsFh& fh,
                                         const std::string& recipient) {
  XdrWriter w;
  WriteFh(w, fh);
  w.PutString(recipient);
  return Call(DiscfsProc::kRevokeAccess, w.Take()).status();
}

Result<DiscfsServerInfo> DiscfsClient::ServerInfo() {
  ASSIGN_OR_RETURN(Bytes reply, Call(DiscfsProc::kServerInfo, {}));
  XdrReader r(reply);
  DiscfsServerInfo info;
  ASSIGN_OR_RETURN(info.server_principal, r.GetString(1 << 20));
  ASSIGN_OR_RETURN(info.keynote_queries, r.GetU64());
  ASSIGN_OR_RETURN(info.cache_hits, r.GetU64());
  ASSIGN_OR_RETURN(info.cache_misses, r.GetU64());
  ASSIGN_OR_RETURN(info.credential_count, r.GetU32());
  return info;
}

Result<std::string> DiscfsClient::ServerStats(bool json) {
  XdrWriter w;
  w.PutU32(json ? 1 : 0);
  ASSIGN_OR_RETURN(Bytes reply, Call(DiscfsProc::kServerStats, w.Take()));
  XdrReader r(reply);
  // Expositions grow with label cardinality (per-proc histograms, per-peer
  // gauges); allow a generous bound.
  return r.GetString(1 << 24);
}

}  // namespace discfs
