// Hex encoding/decoding (lowercase), used for KeyNote "dsa-hex:" key and
// "sig-dsa-sha1-hex:" signature encodings.
#ifndef DISCFS_SRC_UTIL_HEX_H_
#define DISCFS_SRC_UTIL_HEX_H_

#include <string>
#include <string_view>

#include "src/util/bytes.h"
#include "src/util/status.h"

namespace discfs {

std::string HexEncode(const Bytes& data);
std::string HexEncode(const uint8_t* data, size_t len);

// Rejects odd-length strings and non-hex characters. Accepts upper and lower
// case input.
Result<Bytes> HexDecode(std::string_view hex);

}  // namespace discfs

#endif  // DISCFS_SRC_UTIL_HEX_H_
