#include "src/discfs/policy_cache.h"

namespace discfs {
namespace {

// Largest power of two <= x (x >= 1).
size_t FloorPow2(size_t x) {
  size_t p = 1;
  while (p * 2 <= x) {
    p *= 2;
  }
  return p;
}

size_t DefaultShards(size_t capacity) {
  if (capacity < 64) {
    return 1;  // small caches keep exact global LRU order
  }
  size_t shards = FloorPow2(capacity / 32);
  return shards > 16 ? 16 : shards;
}

}  // namespace

PolicyCache::PolicyCache(size_t capacity, int64_t ttl_seconds,
                         size_t num_shards)
    : capacity_(capacity),
      ttl_seconds_(ttl_seconds),
      gen_stripes_(new GenStripe[kGenStripes]) {
  size_t shards = num_shards != 0 ? num_shards : DefaultShards(capacity);
  per_shard_capacity_ = capacity / shards;
  if (capacity > 0 && per_shard_capacity_ == 0) {
    per_shard_capacity_ = 1;
  }
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PolicyCache::Shard& PolicyCache::ShardFor(const Key& key) {
  return *shards_[KeyHash()(key) % shards_.size()];
}

PolicyCache::GenStripe& PolicyCache::StripeFor(const std::string& key_id) {
  return gen_stripes_[std::hash<std::string>()(key_id) % kGenStripes];
}

uint64_t PolicyCache::CurrentGen(const std::string& key_id) {
  GenStripe& stripe = StripeFor(key_id);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.gens.find(key_id);
  return it != stripe.gens.end() ? it->second : stripe.base;
}

std::optional<uint32_t> PolicyCache::Get(const std::string& key_id,
                                         uint32_t inode, int64_t now) {
  Key key{key_id, inode};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  // Lock order: shard.mu before stripe.mu. Bump takes only the stripe
  // lock, so there is no cycle.
  uint64_t current_gen = CurrentGen(key_id);
  if (capacity_ == 0) {
    ++shard.stats.misses;
    return std::nullopt;
  }
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    ++shard.stats.misses;
    return std::nullopt;
  }
  Node& node = *it->second;
  if (node.generation != current_gen || now >= node.expires_at) {
    if (node.generation != current_gen) {
      ++shard.stats.invalidations;
    }
    shard.lru.erase(it->second);
    shard.entries.erase(it);
    ++shard.stats.misses;
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.stats.hits;
  return node.mask;
}

void PolicyCache::Put(const std::string& key_id, uint32_t inode,
                      uint32_t mask, int64_t now) {
  if (capacity_ == 0) {
    return;
  }
  Key key{key_id, inode};
  Shard& shard = ShardFor(key);
  uint64_t gen = CurrentGen(key_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    Node& node = *it->second;
    node.mask = mask;
    node.expires_at = now + ttl_seconds_;
    node.generation = gen;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  while (shard.entries.size() >= per_shard_capacity_ &&
         !shard.entries.empty()) {
    const Node& victim = shard.lru.back();
    shard.entries.erase(victim.key);
    shard.lru.pop_back();
    ++shard.stats.evictions;
  }
  shard.lru.push_front(Node{std::move(key), mask, now + ttl_seconds_, gen});
  shard.entries.emplace(shard.lru.front().key, shard.lru.begin());
}

void PolicyCache::InvalidateAll() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->stats.invalidations += shard->entries.size();
    shard->entries.clear();
    shard->lru.clear();
  }
}

void PolicyCache::Bump(const std::string& key_id, bool remote) {
  (remote ? remote_bumps_ : local_bumps_)
      .fetch_add(1, std::memory_order_relaxed);
  GenStripe& stripe = StripeFor(key_id);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.gens.find(key_id);
  if (it == stripe.gens.end() && stripe.gens.size() >= kMaxTrackedPerStripe) {
    // Rebase rather than evict-to-base: dropping a tracked principal back
    // to `base` could *lower* its current generation onto a value an old
    // cache entry was stamped with, serving a stale grant. Raising the
    // floor above every generation the stripe ever issued makes all
    // outstanding stamps stale instead — over-invalidation, never
    // staleness.
    stripe.base = stripe.high + 1;
    stripe.high = stripe.base;
    stripe.gens.clear();
    generation_rebases_.fetch_add(1, std::memory_order_relaxed);
    it = stripe.gens.end();
  }
  uint64_t next = (it != stripe.gens.end() ? it->second : stripe.base) + 1;
  stripe.gens[key_id] = next;
  if (next > stripe.high) {
    stripe.high = next;
  }
}

void PolicyCache::InvalidatePrincipal(const std::string& key_id) {
  Bump(key_id, /*remote=*/false);
}

void PolicyCache::InvalidatePrincipalRemote(const std::string& key_id) {
  Bump(key_id, /*remote=*/true);
}

void PolicyCache::ResetStats() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->stats = Stats{};
  }
  local_bumps_.store(0, std::memory_order_relaxed);
  remote_bumps_.store(0, std::memory_order_relaxed);
  generation_rebases_.store(0, std::memory_order_relaxed);
}

size_t PolicyCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->entries.size();
  }
  return total;
}

PolicyCache::CoherenceStats PolicyCache::coherence_stats() const {
  CoherenceStats s;
  s.local_bumps = local_bumps_.load(std::memory_order_relaxed);
  s.remote_bumps = remote_bumps_.load(std::memory_order_relaxed);
  s.collision_crossings = 0;  // exact generations: no shared slots left
  s.generation_rebases = generation_rebases_.load(std::memory_order_relaxed);
  return s;
}

PolicyCache::Stats PolicyCache::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.evictions += shard->stats.evictions;
    total.invalidations += shard->stats.invalidations;
  }
  return total;
}

}  // namespace discfs
