#include "src/keynote/compliance.h"

#include <map>

namespace discfs::keynote {

ComplianceLattice::Value CheckCompliance(
    const std::vector<const Assertion*>& assertions,
    const ComplianceQuery& query, const ComplianceLattice& lattice) {
  // Implicit attributes visible to every Conditions program.
  AttributeMap env = query.attributes;
  std::vector<std::string> names = lattice.ValueNames();
  env["_MIN_TRUST"] = names.front();
  env["_MAX_TRUST"] = names.back();
  std::string values_joined;
  for (const std::string& n : names) {
    if (!values_joined.empty()) {
      values_joined += ",";
    }
    values_joined += n;
  }
  env["_VALUES"] = values_joined;
  std::string authorizers_joined;
  for (const std::string& a : query.action_authorizers) {
    if (!authorizers_joined.empty()) {
      authorizers_joined += ",";
    }
    authorizers_joined += a;
  }
  env["ACTION_AUTHORIZERS"] = authorizers_joined;

  // Conditions depend only on the action environment: evaluate once per
  // assertion.
  std::vector<ComplianceLattice::Value> cond_values;
  cond_values.reserve(assertions.size());
  for (const Assertion* a : assertions) {
    cond_values.push_back(EvalConditions(a->conditions(), env, lattice));
  }

  // Fixpoint iteration. Principal values only grow (join), and the lattice
  // is finite, so this terminates; the iteration bound is a safety rail.
  std::map<std::string, ComplianceLattice::Value> values;
  for (const std::string& requester : query.action_authorizers) {
    values[requester] = lattice.Top();
  }

  const size_t max_rounds = assertions.size() + 2;
  for (size_t round = 0; round < max_rounds; ++round) {
    bool changed = false;
    for (size_t i = 0; i < assertions.size(); ++i) {
      const Assertion* a = assertions[i];
      ComplianceLattice::Value contribution = lattice.Meet(
          cond_values[i], EvalLicensees(a->licensees(), values, lattice));
      auto [it, inserted] =
          values.emplace(a->authorizer(), lattice.Bottom());
      ComplianceLattice::Value next = lattice.Join(it->second, contribution);
      if (next != it->second) {
        it->second = next;
        changed = true;
      }
    }
    if (!changed) {
      break;
    }
  }

  auto it = values.find(kPolicyPrincipal);
  return it == values.end() ? lattice.Bottom() : it->second;
}

}  // namespace discfs::keynote
