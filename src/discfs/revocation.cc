#include "src/discfs/revocation.h"

#include "src/crypto/sha.h"
#include "src/wire/xdr.h"

namespace discfs {
namespace {

// One set's worth of entries in a sync blob; two sets per blob.
constexpr size_t kMaxEntriesPerSet = 1 << 20;

// Leading magic of the v2 entry blob ("RVK2"). The v1 layout starts with
// the key-set count instead, which is bounded by kMaxEntriesPerSet (2^20),
// so the magic can never be mistaken for a v1 count.
constexpr uint32_t kEntriesMagic = 0x52564B32;
constexpr uint32_t kEntriesVersion = 2;

}  // namespace

void RevocationList::RevokeKey(const std::string& key_id, int64_t now,
                               uint64_t trace_id) {
  keys_[key_id] = Entry{now, trace_id};
}

void RevocationList::RevokeCredential(const std::string& credential_id,
                                      int64_t now, uint64_t trace_id) {
  credentials_[credential_id] = Entry{now, trace_id};
}

bool RevocationList::Contains(const std::map<std::string, Entry>& set,
                              const std::string& id, int64_t now) const {
  auto it = set.find(id);
  if (it == set.end()) {
    return false;
  }
  if (horizon_seconds_ > 0 && now - it->second.revoked_at > horizon_seconds_) {
    return false;  // expired entry; Expire() will reclaim it
  }
  return true;
}

bool RevocationList::IsKeyRevoked(const std::string& key_id,
                                  int64_t now) const {
  return Contains(keys_, key_id, now);
}

bool RevocationList::IsCredentialRevoked(const std::string& credential_id,
                                         int64_t now) const {
  return Contains(credentials_, credential_id, now);
}

Bytes RevocationList::Digest(int64_t now) const {
  // std::map iteration is already sorted, so the digest is deterministic
  // across nodes that agree on membership. Ids only: timestamps and trace
  // ids are node-local annotations that must not keep digests unequal.
  XdrWriter w;
  for (const auto& [id, entry] : keys_) {
    if (horizon_seconds_ > 0 && now - entry.revoked_at > horizon_seconds_) {
      continue;
    }
    w.PutU32(1);  // type tag: key
    w.PutString(id);
  }
  for (const auto& [id, entry] : credentials_) {
    if (horizon_seconds_ > 0 && now - entry.revoked_at > horizon_seconds_) {
      continue;
    }
    w.PutU32(2);  // type tag: credential
    w.PutString(id);
  }
  return Sha256::Hash(w.Take());
}

Bytes RevocationList::SerializeEntries(int64_t now) const {
  XdrWriter w;
  w.PutU32(kEntriesMagic);
  w.PutU32(kEntriesVersion);
  for (const auto* set : {&keys_, &credentials_}) {
    uint32_t count = 0;
    for (const auto& [id, entry] : *set) {
      if (horizon_seconds_ > 0 && now - entry.revoked_at > horizon_seconds_) {
        continue;
      }
      ++count;
    }
    w.PutU32(count);
    for (const auto& [id, entry] : *set) {
      if (horizon_seconds_ > 0 && now - entry.revoked_at > horizon_seconds_) {
        continue;
      }
      w.PutString(id);
      w.PutI64(entry.revoked_at);
      w.PutU64(entry.trace_id);
    }
  }
  return w.Take();
}

Result<RevocationList::MergeResult> RevocationList::MergeSerialized(
    const Bytes& blob, int64_t now) {
  XdrReader r(blob);
  MergeResult result;
  // v2 blobs lead with a magic the v1 layout cannot produce (its first
  // field is a count bounded far below the magic value); anything else is
  // a v1 blob whose entries carry no trace ids.
  bool with_trace = false;
  {
    XdrReader probe(blob);
    Result<uint32_t> first = probe.GetU32();
    with_trace = first.ok() && *first == kEntriesMagic;
  }
  if (with_trace) {
    (void)r.GetU32();  // magic, already validated by the probe
    ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
    if (version < kEntriesVersion) {
      return InvalidArgumentError("revocation sync blob version too old");
    }
  }
  for (auto* set : {&keys_, &credentials_}) {
    std::vector<MergeResult::NewEntry>* fresh =
        set == &keys_ ? &result.new_keys : &result.new_credentials;
    ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
    if (count > kMaxEntriesPerSet) {
      return InvalidArgumentError("revocation sync blob too large");
    }
    for (uint32_t i = 0; i < count; ++i) {
      ASSIGN_OR_RETURN(std::string id, r.GetString());
      ASSIGN_OR_RETURN(int64_t revoked_at, r.GetI64());
      uint64_t trace_id = 0;
      if (with_trace) {
        ASSIGN_OR_RETURN(trace_id, r.GetU64());
      }
      if (horizon_seconds_ > 0 && now - revoked_at > horizon_seconds_) {
        continue;  // already expired by our clock; don't resurrect it
      }
      // "New" means not currently active here — absent, or present but
      // expired by our clock and revived by the peer's later timestamp.
      // Those are the entries the server must re-check caches against.
      bool was_active = Contains(*set, id, now);
      auto [it, inserted] = set->emplace(id, Entry{revoked_at, trace_id});
      if (!inserted && revoked_at > it->second.revoked_at) {
        it->second = Entry{revoked_at, trace_id};
      }
      if (!was_active && Contains(*set, id, now)) {
        fresh->push_back({std::move(id), trace_id});
      }
    }
  }
  return result;
}

void RevocationList::Expire(int64_t now) {
  if (horizon_seconds_ <= 0) {
    return;
  }
  for (auto* set : {&keys_, &credentials_}) {
    for (auto it = set->begin(); it != set->end();) {
      if (now - it->second.revoked_at > horizon_seconds_) {
        it = set->erase(it);
      } else {
        ++it;
      }
    }
  }
}

}  // namespace discfs
