// Admission fast-path tests (PR 5): signature verification runs outside
// mu_ exclusive, backed by the verified-signature cache — these pin down
// that the fast path never weakens admission (bit-flips still rejected,
// revocation still checked under the lock on a cache hit), that the cache
// is actually consulted, and that a concurrent submit storm is clean
// under TSAN.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/blockdev/blockdev.h"
#include "src/crypto/groups.h"
#include "src/discfs/action_env.h"
#include "src/discfs/client.h"
#include "src/discfs/credentials.h"
#include "src/discfs/host.h"
#include "src/discfs/server.h"
#include "src/ffs/ffs.h"
#include "src/util/prng.h"
#include "src/util/worker_pool.h"
#include "src/vfs/vfs.h"

namespace discfs {
namespace {

std::function<Bytes(size_t)> TestRand(uint64_t seed) {
  auto prng = std::make_shared<Prng>(seed);
  return [prng](size_t n) { return prng->NextBytes(n); };
}

std::shared_ptr<FfsVfs> MakeVfs() {
  auto dev = std::make_shared<MemBlockDevice>(4096, 8192);
  auto fs = Ffs::Format(dev, FfsFormatOptions{1024});
  EXPECT_TRUE(fs.ok()) << fs.status();
  return std::make_shared<FfsVfs>(std::move(fs).value());
}

// Flips one hex digit inside the credential's Signature field value.
std::string FlipSignatureBit(std::string text) {
  size_t quote = text.rfind('"');
  EXPECT_NE(quote, std::string::npos);
  char& c = text[quote - 1];  // last hex digit of the signature
  c = (c == '0') ? '1' : '0';
  return text;
}

class AdmissionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    admin_ = std::make_unique<DsaPrivateKey>(
        DsaPrivateKey::Generate(Dsa512(), TestRand(1)));
    issuer_ = std::make_unique<DsaPrivateKey>(
        DsaPrivateKey::Generate(Dsa512(), TestRand(2)));
    subject_ = std::make_unique<DsaPrivateKey>(
        DsaPrivateKey::Generate(Dsa512(), TestRand(3)));
    DiscfsServerConfig config;
    config.server_key = *admin_;
    config.rand_bytes = TestRand(99);
    auto server = DiscfsServer::Create(MakeVfs(), std::move(config));
    ASSERT_TRUE(server.ok()) << server.status();
    server_ = std::move(server).value();
  }

  std::string Issue(const DsaPrivateKey& issuer, uint32_t inode,
                    const std::string& comment = "") {
    CredentialOptions options;
    options.permissions = "RWX";
    options.comment = comment;
    auto cred = IssueCredential(issuer, subject_->public_key(),
                                HandleString(inode), options);
    EXPECT_TRUE(cred.ok()) << cred.status();
    return *cred;
  }

  std::unique_ptr<DsaPrivateKey> admin_, issuer_, subject_;
  std::unique_ptr<DiscfsServer> server_;
};

TEST_F(AdmissionTest, SubmitAdmitsAndCountsOneCacheMiss) {
  auto id = server_->SubmitCredential(Issue(*admin_, 7));
  ASSERT_TRUE(id.ok()) << id.status();
  EXPECT_EQ(server_->credential_count(), 1u);
  auto stats = server_->stats_snapshot().signatures;
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST_F(AdmissionTest, BitFlippedSignatureRejectedColdAndWarm) {
  std::string cred = Issue(*admin_, 7);
  // Cold: no prior verify of this credential anywhere.
  auto cold = server_->SubmitCredential(FlipSignatureBit(cred));
  EXPECT_EQ(cold.status().code(), StatusCode::kUnauthenticated);
  // Warm the cache with the intact credential, then flip: the tampered
  // copy hashes to a different cache key, misses, and fails the full
  // verify — a warm cache can never launder a forgery.
  ASSERT_TRUE(server_->SubmitCredential(cred).ok());
  auto warm = server_->SubmitCredential(FlipSignatureBit(cred));
  EXPECT_EQ(warm.status().code(), StatusCode::kUnauthenticated);
  EXPECT_EQ(server_->credential_count(), 1u);
}

TEST_F(AdmissionTest, ResubmitHitsSignatureCache) {
  std::string cred = Issue(*admin_, 7);
  auto id = server_->SubmitCredential(cred);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(server_->RemoveCredential(*id).ok());
  // RemoveCredential revokes the id; a fresh server state is needed to
  // readmit, so check the cache path on a plain resubmit instead.
  auto again = server_->SubmitCredential(cred);
  EXPECT_EQ(again.status().code(), StatusCode::kPermissionDenied);
  auto stats = server_->stats_snapshot().signatures;
  EXPECT_EQ(stats.hits, 1u);  // the resubmit skipped the modexp
  EXPECT_EQ(stats.misses, 1u);
}

TEST_F(AdmissionTest, CacheHitStillDeniesWhenIssuingKeyRevoked) {
  std::string cred = Issue(*issuer_, 7);
  ASSERT_TRUE(server_->SubmitCredential(cred).ok());
  server_->RevokeKey(issuer_->public_key().ToKeyNoteString());
  EXPECT_EQ(server_->credential_count(), 0u);  // expelled with its issuer
  auto resubmit = server_->SubmitCredential(cred);
  EXPECT_EQ(resubmit.status().code(), StatusCode::kPermissionDenied);
  // The denial came from the locked revocation check, not from signature
  // verification: the cache did hit.
  EXPECT_GE(server_->stats_snapshot().signatures.hits, 1u);
  EXPECT_EQ(server_->credential_count(), 0u);
}

TEST_F(AdmissionTest, BatchSubmitReportsPerCredentialResults) {
  WorkerPool pool(4);
  server_->SetVerifyPool(&pool);
  std::string good1 = Issue(*admin_, 7, "one");
  std::string good2 = Issue(*admin_, 8, "two");
  std::vector<std::string> texts = {good1, FlipSignatureBit(good1), good2,
                                    "not a credential", good1};
  auto results = server_->SubmitCredentials(texts);
  ASSERT_EQ(results.size(), 5u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kUnauthenticated);
  EXPECT_TRUE(results[2].ok());
  EXPECT_EQ(results[3].status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(results[4].ok());  // duplicate admission is idempotent
  EXPECT_EQ(*results[4], *results[0]);
  EXPECT_EQ(server_->credential_count(), 2u);
}

TEST_F(AdmissionTest, BatchWithoutPoolStillCompletes) {
  std::vector<std::string> texts = {Issue(*admin_, 7), Issue(*admin_, 8)};
  auto results = server_->SubmitCredentials(texts);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
}

// The storm the redesign exists for: many submitters verifying
// concurrently (no lock), interleaved with readers and revocations.
// TSAN-clean via tools/run_tsan.sh.
TEST_F(AdmissionTest, ConcurrentSubmitStormIsClean) {
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 4;
  std::vector<std::vector<std::string>> creds(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t i = 0; i < kPerThread; ++i) {
      creds[t].push_back(Issue(
          *admin_, static_cast<uint32_t>(100 + t * kPerThread + i)));
    }
  }
  std::string bystander = Issue(*issuer_, 999);

  std::atomic<size_t> admitted{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 2);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &creds, &admitted, t] {
      for (const std::string& cred : creds[t]) {
        if (server_->SubmitCredential(cred).ok()) {
          admitted.fetch_add(1);
        }
      }
    });
  }
  // A reader hammering the shared-lock path...
  threads.emplace_back([this, &stop] {
    std::string principal = subject_->public_key().ToKeyNoteString();
    while (!stop.load()) {
      (void)server_->EffectiveMask(principal, 100);
    }
  });
  // ...and churn on an unrelated issuer (exclusive path). do/while: the
  // revocation must run at least once after the bystander submit, or the
  // final credential-count assertion races the stop flag.
  threads.emplace_back([this, &bystander, &stop] {
    (void)server_->SubmitCredential(bystander);
    do {
      server_->RevokeKey(issuer_->public_key().ToKeyNoteString());
      std::this_thread::yield();
    } while (!stop.load());
  });
  for (size_t t = 0; t < kThreads; ++t) {
    threads[t].join();
  }
  stop.store(true);
  for (size_t t = kThreads; t < threads.size(); ++t) {
    threads[t].join();
  }
  EXPECT_EQ(admitted.load(), kThreads * kPerThread);
  EXPECT_EQ(server_->credential_count(), kThreads * kPerThread);
}

// End-to-end: the batch RPC over TCP + secure channel, verification
// fanned out on the host's pool, per-credential errors on the wire.
TEST(AdmissionRpcTest, BatchSubmitOverRpc) {
  DsaPrivateKey admin = DsaPrivateKey::Generate(Dsa512(), TestRand(1));
  DsaPrivateKey bob = DsaPrivateKey::Generate(Dsa512(), TestRand(2));
  DiscfsServerConfig config;
  config.server_key = admin;
  config.rand_bytes = TestRand(99);
  auto host = DiscfsHost::Start(MakeVfs(), std::move(config));
  ASSERT_TRUE(host.ok()) << host.status();

  ChannelIdentity identity{bob, TestRand(10)};
  auto client = DiscfsClient::Connect("127.0.0.1", (*host)->port(), identity,
                                      admin.public_key());
  ASSERT_TRUE(client.ok()) << client.status();

  CredentialOptions options;
  options.permissions = "RWX";
  auto good = IssueCredential(admin, bob.public_key(), HandleString(2),
                              options);
  ASSERT_TRUE(good.ok());
  std::vector<std::string> batch = {*good, FlipSignatureBit(*good)};
  auto results = (*client)->SubmitCredentials(batch);
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 2u);
  EXPECT_TRUE((*results)[0].ok());
  EXPECT_EQ((*results)[1].status().code(), StatusCode::kUnauthenticated);

  auto stats = (*host)->server().stats_snapshot().signatures;
  EXPECT_EQ(stats.hits + stats.misses, 2u);
  (*client)->Close();
}

}  // namespace
}  // namespace discfs
