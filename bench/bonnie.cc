#include "bench/bonnie.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/util/prng.h"

namespace discfs::bench {
namespace {

constexpr char kBonnieFileName[] = "bonnie.scratch";

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

// stdio-style buffered writer: putc into an 8 KiB buffer, flush per buffer.
class BufferedWriter {
 public:
  BufferedWriter(FsBackend& backend, const BenchFile& file)
      : backend_(backend), file_(file) {}

  Status Putc(uint8_t c) {
    buffer_[fill_++] = c;
    if (fill_ == kBonnieBlockSize) {
      return Flush();
    }
    return OkStatus();
  }

  Status Flush() {
    if (fill_ == 0) {
      return OkStatus();
    }
    RETURN_IF_ERROR(backend_.WriteAt(file_, offset_, buffer_, fill_));
    offset_ += fill_;
    fill_ = 0;
    return OkStatus();
  }

 private:
  FsBackend& backend_;
  BenchFile file_;
  uint8_t buffer_[kBonnieBlockSize];
  size_t fill_ = 0;
  uint64_t offset_ = 0;
};

// stdio-style buffered reader: getc from an 8 KiB read-ahead buffer.
class BufferedReader {
 public:
  BufferedReader(FsBackend& backend, const BenchFile& file)
      : backend_(backend), file_(file) {}

  // Returns -1 at EOF, -2 on error.
  int Getc() {
    if (pos_ == fill_) {
      auto n = backend_.ReadAt(file_, offset_, buffer_, kBonnieBlockSize);
      if (!n.ok()) {
        return -2;
      }
      if (*n == 0) {
        return -1;
      }
      offset_ += *n;
      fill_ = *n;
      pos_ = 0;
    }
    return buffer_[pos_++];
  }

 private:
  FsBackend& backend_;
  BenchFile file_;
  uint8_t buffer_[kBonnieBlockSize];
  size_t fill_ = 0;
  size_t pos_ = 0;
  uint64_t offset_ = 0;
};

Result<BonnieResult> Finish(BonniePhase phase, FsBackend& backend,
                            uint64_t bytes, Clock::time_point start) {
  BonnieResult result;
  result.phase = phase;
  result.system = backend.name();
  result.bytes = bytes;
  result.seconds = Seconds(start, Clock::now());
  result.kb_per_sec =
      result.seconds > 0 ? (bytes / 1024.0) / result.seconds : 0;
  return result;
}

}  // namespace

const char* BonniePhaseName(BonniePhase phase) {
  switch (phase) {
    case BonniePhase::kSeqOutputChar:
      return "Sequential Output (Char)";
    case BonniePhase::kSeqOutputBlock:
      return "Sequential Output (Block)";
    case BonniePhase::kSeqRewrite:
      return "Sequential Output (Rewrite)";
    case BonniePhase::kSeqInputChar:
      return "Sequential Input (Char)";
    case BonniePhase::kSeqInputBlock:
      return "Sequential Input (Block)";
  }
  return "?";
}

Result<BonnieResult> RunBonniePhase(FsBackend& backend, BonniePhase phase,
                                    size_t file_mb) {
  const uint64_t total = static_cast<uint64_t>(file_mb) * 1024 * 1024;

  switch (phase) {
    case BonniePhase::kSeqOutputChar: {
      ASSIGN_OR_RETURN(BenchFile file, backend.CreateFile(kBonnieFileName));
      auto start = Clock::now();
      BufferedWriter writer(backend, file);
      for (uint64_t i = 0; i < total; ++i) {
        RETURN_IF_ERROR(writer.Putc(static_cast<uint8_t>(i)));
      }
      RETURN_IF_ERROR(writer.Flush());
      return Finish(phase, backend, total, start);
    }

    case BonniePhase::kSeqOutputBlock: {
      ASSIGN_OR_RETURN(BenchFile file, backend.CreateFile(kBonnieFileName));
      Bytes block = Prng(7).NextBytes(kBonnieBlockSize);
      auto start = Clock::now();
      for (uint64_t off = 0; off < total; off += kBonnieBlockSize) {
        RETURN_IF_ERROR(
            backend.WriteAt(file, off, block.data(), block.size()));
      }
      return Finish(phase, backend, total, start);
    }

    case BonniePhase::kSeqRewrite: {
      ASSIGN_OR_RETURN(BenchFile file, backend.OpenFile(kBonnieFileName));
      Bytes block(kBonnieBlockSize);
      auto start = Clock::now();
      for (uint64_t off = 0; off < total; off += kBonnieBlockSize) {
        ASSIGN_OR_RETURN(size_t n, backend.ReadAt(file, off, block.data(),
                                                  kBonnieBlockSize));
        if (n == 0) {
          break;
        }
        block[0] ^= 0xff;  // dirty one byte, as Bonnie does
        RETURN_IF_ERROR(backend.WriteAt(file, off, block.data(), n));
      }
      return Finish(phase, backend, total, start);
    }

    case BonniePhase::kSeqInputChar: {
      ASSIGN_OR_RETURN(BenchFile file, backend.OpenFile(kBonnieFileName));
      auto start = Clock::now();
      BufferedReader reader(backend, file);
      uint64_t bytes = 0;
      uint64_t checksum = 0;
      while (true) {
        int c = reader.Getc();
        if (c == -1) {
          break;
        }
        if (c == -2) {
          return IoError("read failed during char-input phase");
        }
        checksum += static_cast<unsigned>(c);
        if (++bytes >= total) {
          break;
        }
      }
      // Keep the checksum observable so the loop cannot be optimized out.
      if (checksum == 0xdeadbeef) {
        std::fprintf(stderr, "improbable checksum\n");
      }
      return Finish(phase, backend, bytes, start);
    }

    case BonniePhase::kSeqInputBlock: {
      ASSIGN_OR_RETURN(BenchFile file, backend.OpenFile(kBonnieFileName));
      Bytes block(kBonnieBlockSize);
      auto start = Clock::now();
      uint64_t bytes = 0;
      for (uint64_t off = 0; off < total; off += kBonnieBlockSize) {
        ASSIGN_OR_RETURN(size_t n, backend.ReadAt(file, off, block.data(),
                                                  kBonnieBlockSize));
        if (n == 0) {
          break;
        }
        bytes += n;
      }
      return Finish(phase, backend, bytes, start);
    }
  }
  return InternalError("unknown bonnie phase");
}

Result<BonnieResult> RunBonniePhaseFresh(FsBackend& backend,
                                         BonniePhase phase, size_t file_mb) {
  if (phase != BonniePhase::kSeqOutputChar &&
      phase != BonniePhase::kSeqOutputBlock) {
    // Input/rewrite phases need the file in place first.
    RETURN_IF_ERROR(
        RunBonniePhase(backend, BonniePhase::kSeqOutputBlock, file_mb)
            .status());
  }
  return RunBonniePhase(backend, phase, file_mb);
}

size_t BonnieFileMb(size_t default_mb) {
  const char* env = std::getenv("DISCFS_BONNIE_MB");
  if (env != nullptr) {
    long v = std::strtol(env, nullptr, 10);
    if (v > 0) {
      return static_cast<size_t>(v);
    }
  }
  return default_mb;
}

void PrintBonnieRow(const BonnieResult& result) {
  std::printf("%-28s %-8s %8.0f K/sec   (%.2f MiB in %.3f s)\n",
              BonniePhaseName(result.phase), result.system.c_str(),
              result.kb_per_sec, result.bytes / (1024.0 * 1024.0),
              result.seconds);
  std::fflush(stdout);
}

}  // namespace discfs::bench
