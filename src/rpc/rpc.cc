#include "src/rpc/rpc.h"

#include "src/util/strings.h"
#include "src/wire/xdr.h"

namespace discfs {
namespace {

constexpr uint32_t kTypeCall = 0;
constexpr uint32_t kTypeReply = 1;

}  // namespace

Result<Bytes> RpcClient::Call(uint32_t prog, uint32_t proc,
                              const Bytes& args) {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t xid = next_xid_++;
  XdrWriter w;
  w.PutU32(xid);
  w.PutU32(kTypeCall);
  w.PutU32(prog);
  w.PutU32(proc);
  w.PutOpaque(args);
  RETURN_IF_ERROR(stream_->Send(w.Take()));

  ASSIGN_OR_RETURN(Bytes frame, stream_->Recv());
  XdrReader r(frame);
  ASSIGN_OR_RETURN(uint32_t reply_xid, r.GetU32());
  ASSIGN_OR_RETURN(uint32_t type, r.GetU32());
  ASSIGN_OR_RETURN(uint32_t status_code, r.GetU32());
  ASSIGN_OR_RETURN(Bytes body, r.GetOpaque());
  if (type != kTypeReply || reply_xid != xid) {
    return DataLossError("mismatched RPC reply");
  }
  if (status_code != 0) {
    return Status(static_cast<StatusCode>(status_code), ToString(body));
  }
  return body;
}

void RpcDispatcher::Register(uint32_t prog, uint32_t proc, Handler handler) {
  handlers_[{prog, proc}] = std::move(handler);
}

Status RpcDispatcher::ServeOne(MsgStream& stream,
                               const RpcContext& ctx) const {
  ASSIGN_OR_RETURN(Bytes frame, stream.Recv());
  XdrReader r(frame);
  ASSIGN_OR_RETURN(uint32_t xid, r.GetU32());
  ASSIGN_OR_RETURN(uint32_t type, r.GetU32());
  ASSIGN_OR_RETURN(uint32_t prog, r.GetU32());
  ASSIGN_OR_RETURN(uint32_t proc, r.GetU32());
  ASSIGN_OR_RETURN(Bytes args, r.GetOpaque());
  if (type != kTypeCall) {
    return DataLossError("expected RPC call frame");
  }

  Result<Bytes> result = [&]() -> Result<Bytes> {
    auto it = handlers_.find({prog, proc});
    if (it == handlers_.end()) {
      return UnimplementedError(
          StrPrintf("no handler for prog %u proc %u", prog, proc));
    }
    return it->second(args, ctx);
  }();

  XdrWriter w;
  w.PutU32(xid);
  w.PutU32(kTypeReply);
  if (result.ok()) {
    w.PutU32(0);
    w.PutOpaque(result.value());
  } else {
    w.PutU32(static_cast<uint32_t>(result.status().code()));
    w.PutOpaque(ToBytes(result.status().message()));
  }
  return stream.Send(w.Take());
}

void RpcDispatcher::ServeConnection(MsgStream& stream,
                                    const RpcContext& ctx) const {
  while (true) {
    Status st = ServeOne(stream, ctx);
    if (!st.ok()) {
      return;  // peer went away (or stream corrupted); connection is done
    }
  }
}

}  // namespace discfs
