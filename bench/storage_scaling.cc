// Storage data-plane benchmark: the paper's bonnie phases (Figures 7-11)
// over the FFS substrate, measuring what the block cache buys.
//
// Tiers:
//   uncached_latency — the seed path: no block cache, device latency model
//                      on (seek + transfer). The baseline the cache is
//                      gated against.
//   cached_latency   — block cache + readahead over the same modeled
//                      device: warm sequential reads must elide device
//                      I/O entirely (>= 3x the uncached read throughput),
//                      and the bonnie rewrite pass must run >= 90% out of
//                      cache.
//   cached_fast      — latency model off: the pure software-overhead
//                      numbers, full bonnie phase set.
//   nfs              — concurrent 4 KiB-block reads of independent files
//                      through NfsServer's striped locking; with the old
//                      global mutex this cannot scale past 1x.
//
// Every tier ends with Ffs::Check(): a write-back bug that corrupts
// metadata fails the run, not just a test.
//
// Output: BENCH_storage.json (schema_version 1), self-gated like the other
// benches. DISCFS_STORAGE_MB scales the file (default 4 MiB).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bonnie.h"
#include "bench/fs_backend.h"
#include "src/blockdev/block_cache.h"
#include "src/blockdev/blockdev.h"
#include "src/ffs/ffs.h"
#include "src/nfs/nfs_server.h"
#include "src/vfs/vfs.h"

namespace discfs::bench {
namespace {

using Clock = std::chrono::steady_clock;

double NowSec() {
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

size_t StorageFileMb() {
  const char* env = std::getenv("DISCFS_STORAGE_MB");
  if (env != nullptr) {
    long v = std::strtol(env, nullptr, 10);
    if (v > 0) {
      return static_cast<size_t>(v);
    }
  }
  return 4;
}

// Paper-era disk-ish latency model: 100 us seek, 10 us per-block transfer.
LatencyModel BenchLatency() {
  LatencyModel m;
  m.seek_ns = 100 * 1000;
  m.transfer_ns = 10 * 1000;
  return m;
}

BackendOptions TierOptions(size_t file_mb, bool cached, bool latency) {
  BackendOptions opts;
  opts.device_mib = 64;
  opts.inode_count = 4096;
  // Cache sized to hold the whole bonnie file plus metadata, so the
  // rewrite pass can run fully warm.
  opts.cache_blocks = cached ? file_mb * 1024 * 1024 / 4096 * 2 + 512 : 0;
  opts.readahead_blocks = cached ? 8 : 0;
  if (latency) {
    opts.latency = BenchLatency();
  }
  return opts;
}

double MustRun(FsBackend& backend, BonniePhase phase, size_t file_mb) {
  auto result = RunBonniePhase(backend, phase, file_mb);
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL: %s on %s failed: %s\n",
                 BonniePhaseName(phase), backend.name().c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  PrintBonnieRow(*result);
  return result->kb_per_sec;
}

bool MustFsck(FsBackend& backend, const char* tier) {
  Ffs* ffs = BackendFfs(backend);
  if (ffs == nullptr) {
    std::fprintf(stderr, "FATAL: tier %s has no FFS backend\n", tier);
    std::exit(1);
  }
  if (Status st = ffs->Sync(); !st.ok()) {
    std::fprintf(stderr, "FATAL: sync after tier %s: %s\n", tier,
                 st.ToString().c_str());
    std::exit(1);
  }
  auto report = ffs->Check();
  if (!report.ok()) {
    std::fprintf(stderr, "FATAL: fsck after tier %s errored: %s\n", tier,
                 report.status().ToString().c_str());
    std::exit(1);
  }
  if (!report->clean()) {
    std::fprintf(stderr, "FATAL: fsck after tier %s found %zu errors:\n",
                 tier, report->errors.size());
    for (const std::string& e : report->errors) {
      std::fprintf(stderr, "  %s\n", e.c_str());
    }
    std::exit(1);
  }
  std::printf("fsck after %s: clean (%llu files, %llu dirs, %llu blocks)\n",
              tier, static_cast<unsigned long long>(report->files),
              static_cast<unsigned long long>(report->directories),
              static_cast<unsigned long long>(report->used_blocks));
  return true;
}

struct UncachedResult {
  double write_kb_s = 0;
  double read_kb_s = 0;
  uint64_t device_reads = 0;
  uint64_t device_writes = 0;
};

UncachedResult RunUncachedTier(size_t file_mb) {
  std::printf("-- tier: uncached + latency model (seed path) --\n");
  auto backend = MakeFfsBackend(TierOptions(file_mb, false, true));
  if (!backend.ok()) {
    std::fprintf(stderr, "FATAL: uncached backend: %s\n",
                 backend.status().ToString().c_str());
    std::exit(1);
  }
  UncachedResult out;
  out.write_kb_s = MustRun(**backend, BonniePhase::kSeqOutputBlock, file_mb);
  out.read_kb_s = MustRun(**backend, BonniePhase::kSeqInputBlock, file_mb);
  Ffs* ffs = BackendFfs(**backend);
  out.device_reads = ffs->block_cache() == nullptr
                         ? 0
                         : ffs->block_cache()->stats().reads.load();
  MustFsck(**backend, "uncached_latency");
  return out;
}

struct CachedResult {
  double write_kb_s = 0;
  double read_cold_kb_s = 0;
  double read_warm_kb_s = 0;
  double rewrite_kb_s = 0;
  double rewrite_hit_rate = 0;
  uint64_t readaheads = 0;
  uint64_t writebacks = 0;
  uint64_t device_reads = 0;
  uint64_t device_writes = 0;
};

CachedResult RunCachedTier(size_t file_mb) {
  std::printf("-- tier: cached + latency model --\n");
  auto backend = MakeFfsBackend(TierOptions(file_mb, true, true));
  if (!backend.ok()) {
    std::fprintf(stderr, "FATAL: cached backend: %s\n",
                 backend.status().ToString().c_str());
    std::exit(1);
  }
  Ffs* ffs = BackendFfs(**backend);
  BlockCache* cache = ffs->block_cache();
  if (cache == nullptr) {
    std::fprintf(stderr, "FATAL: cached tier mounted without a cache\n");
    std::exit(1);
  }

  CachedResult out;
  out.write_kb_s = MustRun(**backend, BonniePhase::kSeqOutputBlock, file_mb);

  // Cold read: drop the cache contents by syncing and remounting? No —
  // the interesting "cold" here is simply the first pass (the write left
  // it warm, as bonnie's own sequence does), so report it as-is and do a
  // second pass for the steady-state warm number.
  out.read_cold_kb_s =
      MustRun(**backend, BonniePhase::kSeqInputBlock, file_mb);
  out.read_warm_kb_s =
      MustRun(**backend, BonniePhase::kSeqInputBlock, file_mb);

  // Rewrite hit rate: the file was just read, so the working set is
  // resident; every rewrite read should hit.
  cache->ResetCacheStats();
  out.rewrite_kb_s = MustRun(**backend, BonniePhase::kSeqRewrite, file_mb);
  const BlockCacheStats& cs = cache->cache_stats();
  uint64_t hits = cs.hits.load();
  uint64_t misses = cs.misses.load();
  out.rewrite_hit_rate =
      hits + misses == 0 ? 0.0
                         : static_cast<double>(hits) / (hits + misses);
  out.readaheads = cs.readaheads.load();
  out.writebacks = cs.writebacks.load();
  out.device_reads = cache->stats().reads.load();
  out.device_writes = cache->stats().writes.load();
  MustFsck(**backend, "cached_latency");
  return out;
}

struct FastResult {
  double phase_kb_s[5] = {0, 0, 0, 0, 0};
};

FastResult RunFastTier(size_t file_mb) {
  std::printf("-- tier: cached, latency model off --\n");
  auto backend = MakeFfsBackend(TierOptions(file_mb, true, false));
  if (!backend.ok()) {
    std::fprintf(stderr, "FATAL: fast backend: %s\n",
                 backend.status().ToString().c_str());
    std::exit(1);
  }
  FastResult out;
  const BonniePhase phases[5] = {
      BonniePhase::kSeqOutputChar, BonniePhase::kSeqOutputBlock,
      BonniePhase::kSeqRewrite, BonniePhase::kSeqInputChar,
      BonniePhase::kSeqInputBlock};
  for (int i = 0; i < 5; ++i) {
    out.phase_kb_s[i] = MustRun(**backend, phases[i], file_mb);
  }
  MustFsck(**backend, "cached_fast");
  return out;
}

// Concurrent reads of independent files through NfsServer. Returns ops/s.
double NfsReadThroughput(NfsServer& server, const std::vector<NfsFh>& files,
                         size_t threads, size_t ops_per_thread,
                         size_t read_size) {
  std::vector<std::thread> workers;
  std::atomic<uint64_t> failures{0};
  double start = NowSec();
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const NfsFh fh = files[t % files.size()];
      uint64_t offset = 0;
      for (size_t i = 0; i < ops_per_thread; ++i) {
        auto data = server.Read(fh, offset, static_cast<uint32_t>(read_size));
        if (!data.ok() || data->empty()) {
          failures.fetch_add(1);
          return;
        }
        offset += read_size;
        if (offset + read_size > 256 * 1024) {
          offset = 0;
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  double elapsed = NowSec() - start;
  if (failures.load() != 0) {
    std::fprintf(stderr, "FATAL: %llu NFS read workers failed\n",
                 static_cast<unsigned long long>(failures.load()));
    std::exit(1);
  }
  return threads * ops_per_thread / elapsed;
}

struct NfsResult {
  double ops_s_1t = 0;
  double ops_s_4t = 0;
  double scaling = 0;
  bool fsck_clean = false;
};

NfsResult RunNfsTier() {
  std::printf("-- tier: NFS striped-lock concurrency --\n");
  auto dev = std::make_shared<MemBlockDevice>(4096, 16384);
  FfsFormatOptions format;
  format.inode_count = 4096;
  format.mount.cache.capacity_blocks = 8192;
  auto fs = Ffs::Format(dev, format);
  if (!fs.ok()) {
    std::fprintf(stderr, "FATAL: nfs tier format: %s\n",
                 fs.status().ToString().c_str());
    std::exit(1);
  }
  std::shared_ptr<Ffs> ffs_sp = std::move(*fs);
  Ffs* ffs = ffs_sp.get();
  NfsServer server(std::make_shared<FfsVfs>(ffs_sp));

  // Eight 256 KiB files, written through the server.
  std::vector<NfsFh> files;
  std::vector<uint8_t> chunk(64 * 1024, 0xAB);
  for (int i = 0; i < 8; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "file%02d", i);
    auto root = server.GetRoot();
    if (!root.ok()) {
      std::fprintf(stderr, "FATAL: nfs tier GetRoot: %s\n",
                   root.status().ToString().c_str());
      std::exit(1);
    }
    auto attr = server.Create(root->fh, name, 0644);
    if (!attr.ok()) {
      std::fprintf(stderr, "FATAL: nfs tier create: %s\n",
                   attr.status().ToString().c_str());
      std::exit(1);
    }
    for (uint64_t off = 0; off < 256 * 1024; off += chunk.size()) {
      Bytes data(chunk.begin(), chunk.end());
      if (!server.Write(attr->fh, off, data).ok()) {
        std::fprintf(stderr, "FATAL: nfs tier write failed\n");
        std::exit(1);
      }
    }
    files.push_back(attr->fh);
  }

  NfsResult out;
  const size_t kOps = 20000;
  // Warmup pass populates caches before either timed run.
  NfsReadThroughput(server, files, 2, kOps / 4, 4096);
  out.ops_s_1t = NfsReadThroughput(server, files, 1, kOps, 4096);
  out.ops_s_4t = NfsReadThroughput(server, files, 4, kOps, 4096);
  out.scaling = out.ops_s_4t / out.ops_s_1t;
  std::printf("nfs read ops/s: 1t %.0f, 4t %.0f (scaling %.2fx)\n",
              out.ops_s_1t, out.ops_s_4t, out.scaling);

  if (Status st = ffs->Sync(); !st.ok()) {
    std::fprintf(stderr, "FATAL: nfs tier sync: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  auto report = ffs->Check();
  if (!report.ok() || !report->clean()) {
    std::fprintf(stderr, "FATAL: fsck after nfs tier not clean\n");
    std::exit(1);
  }
  out.fsck_clean = true;
  std::printf("fsck after nfs: clean\n");
  return out;
}

void WriteJson(std::FILE* f, size_t file_mb, const UncachedResult& u,
               const CachedResult& c, const FastResult& fast,
               const NfsResult& nfs, double warm_read_speedup,
               bool nfs_gate_enforced) {
  std::fprintf(f, "{\n  \"bench\": \"storage_scaling\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"file_mb\": %zu,\n", file_mb);
  std::fprintf(f,
               "  \"latency_model\": {\"seek_us\": 100, \"transfer_us\": "
               "10},\n");
  std::fprintf(f,
               "  \"uncached_latency\": {\"seq_output_block_kb_s\": %.0f, "
               "\"seq_input_block_kb_s\": %.0f, \"fsck_clean\": true},\n",
               u.write_kb_s, u.read_kb_s);
  std::fprintf(
      f,
      "  \"cached_latency\": {\"seq_output_block_kb_s\": %.0f, "
      "\"seq_input_block_cold_kb_s\": %.0f, "
      "\"seq_input_block_warm_kb_s\": %.0f, \"seq_rewrite_kb_s\": %.0f, "
      "\"rewrite_hit_rate\": %.4f, \"readaheads\": %llu, "
      "\"writebacks\": %llu, \"device_reads\": %llu, "
      "\"device_writes\": %llu, \"fsck_clean\": true},\n",
      c.write_kb_s, c.read_cold_kb_s, c.read_warm_kb_s, c.rewrite_kb_s,
      c.rewrite_hit_rate, static_cast<unsigned long long>(c.readaheads),
      static_cast<unsigned long long>(c.writebacks),
      static_cast<unsigned long long>(c.device_reads),
      static_cast<unsigned long long>(c.device_writes));
  std::fprintf(
      f,
      "  \"cached_fast\": {\"seq_output_char_kb_s\": %.0f, "
      "\"seq_output_block_kb_s\": %.0f, \"seq_rewrite_kb_s\": %.0f, "
      "\"seq_input_char_kb_s\": %.0f, \"seq_input_block_kb_s\": %.0f, "
      "\"fsck_clean\": true},\n",
      fast.phase_kb_s[0], fast.phase_kb_s[1], fast.phase_kb_s[2],
      fast.phase_kb_s[3], fast.phase_kb_s[4]);
  std::fprintf(f,
               "  \"nfs\": {\"read_ops_s_1t\": %.0f, \"read_ops_s_4t\": "
               "%.0f, \"scaling_1_to_4\": %.2f, \"gate_enforced\": %s, "
               "\"fsck_clean\": %s},\n",
               nfs.ops_s_1t, nfs.ops_s_4t, nfs.scaling,
               nfs_gate_enforced ? "true" : "false",
               nfs.fsck_clean ? "true" : "false");
  std::fprintf(f, "  \"warm_read_speedup\": %.2f,\n", warm_read_speedup);
  std::fprintf(f, "  \"rewrite_hit_rate\": %.4f,\n", c.rewrite_hit_rate);
  std::fprintf(f, "  \"fsck_clean_all\": true\n}\n");
}

int Run(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_storage.json";
  const size_t file_mb = StorageFileMb();

  std::printf("== Storage scaling: block cache vs the seed path ==\n");
  std::printf("bonnie file: %zu MiB (DISCFS_STORAGE_MB to change)\n",
              file_mb);

  UncachedResult uncached = RunUncachedTier(file_mb);
  CachedResult cached = RunCachedTier(file_mb);
  FastResult fast = RunFastTier(file_mb);
  NfsResult nfs = RunNfsTier();

  const double warm_read_speedup =
      uncached.read_kb_s > 0 ? cached.read_warm_kb_s / uncached.read_kb_s
                             : 0;
  const unsigned hw = std::thread::hardware_concurrency();
  const bool nfs_gate_enforced = hw >= 4;

  std::printf("warm cached read vs uncached seed path: %.1fx\n",
              warm_read_speedup);
  std::printf("rewrite cache hit rate: %.1f%%\n",
              cached.rewrite_hit_rate * 100);

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  WriteJson(f, file_mb, uncached, cached, fast, nfs, warm_read_speedup,
            nfs_gate_enforced);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  if (warm_read_speedup < 3.0) {
    std::fprintf(stderr,
                 "FATAL: warm cached read only %.2fx the uncached seed "
                 "path — the cache is not eliding device I/O\n",
                 warm_read_speedup);
    return 1;
  }
  if (cached.rewrite_hit_rate < 0.9) {
    std::fprintf(stderr,
                 "FATAL: rewrite hit rate %.1f%% < 90%% — the working set "
                 "fell out of a cache sized to hold it\n",
                 cached.rewrite_hit_rate * 100);
    return 1;
  }
  if (!nfs_gate_enforced) {
    std::printf(
        "WARNING: NFS concurrency gate SKIPPED (%u hardware threads < 4; "
        "independent-file parallelism cannot show on this machine)\n",
        hw);
  } else if (nfs.scaling < 1.5) {
    std::fprintf(stderr,
                 "FATAL: NFS reads scaled only %.2fx from 1 to 4 threads — "
                 "is the server back under a global mutex?\n",
                 nfs.scaling);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace discfs::bench

int main(int argc, char** argv) {
  return discfs::bench::Run(argc, argv);
}
