// Figure 1 of the paper, as a running program: delegation of privileges
// from the administrator to Bob (1st certificate), and from Bob to Alice
// (2nd certificate). Alice's requests are honored only when both
// credentials accompany them, and she gets the MEET of the chain (R),
// not what Bob holds (RW).
#include "examples/example_util.h"

using namespace discfs;
using namespace discfs::examples;

int main() {
  Headline("Figure 1: administrator -> Bob -> Alice delegation");

  TestBed bed = TestBed::Start();
  DsaPrivateKey bob_key = NewKey();
  DsaPrivateKey alice_key = NewKey();

  // Setup: the shared paper lives on the server.
  Check(WriteFileAt(*bed.vfs, "/paper.tex",
                    "\\title{Secure and Flexible Global File Sharing}"),
        "seed file");
  InodeAttr paper = CheckedValue(ResolvePath(*bed.vfs, "/paper.tex"),
                                 "resolve paper");
  NfsFh paper_fh{paper.inode, paper.generation};
  Step("server stores /paper.tex with handle " +
       std::to_string(paper.inode));

  // 1st certificate: administrator grants Bob read-write.
  CredentialOptions rw;
  rw.permissions = "RW";
  rw.comment = "paper.tex for Bob";
  std::string cert1 = CheckedValue(
      IssueCredential(bed.admin, bob_key.public_key(),
                      HandleString(paper.inode), rw),
      "first certificate");
  Step("1st certificate: admin -> Bob, \"RW\"");

  // 2nd certificate: Bob grants Alice read-only — no administrator
  // involvement whatsoever.
  CredentialOptions ro;
  ro.permissions = "R";
  ro.comment = "paper.tex for Alice (read only)";
  std::string cert2 = CheckedValue(
      IssueCredential(bob_key, alice_key.public_key(),
                      HandleString(paper.inode), ro),
      "second certificate");
  Step("2nd certificate: Bob -> Alice, \"R\" (e.g. sent by email)");

  auto alice = bed.Connect(alice_key);
  Step("Alice attaches; submits ONLY Bob's certificate to her");
  CheckedValue(alice->SubmitCredential(cert2), "submit cert2");
  ExpectDenied(alice->nfs().Read(paper_fh, 0, 100),
               "read with an incomplete chain");

  Step("Alice also submits the admin->Bob certificate: chain complete");
  CheckedValue(alice->SubmitCredential(cert1), "submit cert1");
  Bytes content = CheckedValue(alice->nfs().Read(paper_fh, 0, 100),
                               "read paper");
  Step("Alice reads: \"" + ToString(content) + "\"");

  ExpectDenied(alice->nfs().Write(paper_fh, 0, ToBytes("edit")),
               "Alice writing (she only has R — the meet of RW and R)");

  auto bob = bed.Connect(bob_key);
  Check(bob->nfs().Write(paper_fh, 0, ToBytes("\\title{Camera Ready}"))
            .status(),
        "Bob writes (he holds RW)");
  Step("Bob edits the paper — his chain gives him RW");

  alice->Close();
  bob->Close();
  std::printf("\ndelegation example complete.\n");
  return 0;
}
