// keygen: generates a DSA identity for DisCFS.
//
// Usage: keygen <basename>
//   writes <basename>.key (private, hex) and <basename>.pub (KeyNote
//   "dsa-hex:" principal string).
#include <cstdio>

#include "src/crypto/groups.h"
#include "src/crypto/sysrand.h"
#include "tools/keyio.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <basename>\n", argv[0]);
    return 2;
  }
  std::string base = argv[1];
  discfs::DsaPrivateKey key = discfs::DsaPrivateKey::Generate(
      discfs::Dsa1024(), [](size_t n) { return discfs::SysRandomBytes(n); });
  auto st = discfs::tools::SavePrivateKey(base + ".key", key);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  st = discfs::tools::SavePublicKey(base + ".pub", key.public_key());
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s.key (keep secret) and %s.pub\n", base.c_str(),
              base.c_str());
  std::printf("key id: %s\n", key.public_key().KeyId().c_str());
  return 0;
}
