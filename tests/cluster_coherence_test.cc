// Coherence fabric (PR 4): the event log's compaction/gap contract, the
// wire codec, and — over real TCP + secure channels between DiscfsHosts —
// scoped remote invalidation, catch-up replay across a disconnect, the
// compaction fallback to InvalidateAll, and the cluster trust check.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/blockdev/blockdev.h"
#include "src/cluster/event_log.h"
#include "src/cluster/fabric.h"
#include "src/cluster/protocol.h"
#include "src/crypto/groups.h"
#include "src/discfs/host.h"
#include "src/ffs/ffs.h"
#include "src/net/transport.h"
#include "src/rpc/rpc.h"
#include "src/securechannel/channel.h"
#include "src/util/prng.h"

namespace discfs {
namespace {

using cluster::CoherenceEvent;
using cluster::SequencedEvent;

// Handshakes from peers and clients overlap on the host's pool, so the
// shared Prng behind a node's rand_bytes needs a lock.
std::function<Bytes(size_t)> TestRand(uint64_t seed) {
  return LockedPrngBytes(seed);
}

TEST(CoherenceEventLog, AssignsDenseSequenceNumbers) {
  cluster::CoherenceEventLog log(8);
  CoherenceEvent event;
  event.type = CoherenceEvent::Type::kSubmit;
  EXPECT_EQ(log.Append(event), 1u);
  EXPECT_EQ(log.Append(event), 2u);
  EXPECT_EQ(log.Append(event), 3u);
  EXPECT_EQ(log.head_seq(), 3u);
  EXPECT_EQ(log.first_seq(), 1u);

  bool compacted = true;
  std::vector<SequencedEvent> all = log.ReadAfter(0, 100, &compacted);
  EXPECT_FALSE(compacted);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].seq, 1u);
  EXPECT_EQ(all[2].seq, 3u);

  std::vector<SequencedEvent> tail = log.ReadAfter(2, 100, &compacted);
  EXPECT_FALSE(compacted);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].seq, 3u);

  EXPECT_TRUE(log.ReadAfter(3, 100, &compacted).empty());
  EXPECT_FALSE(compacted);

  std::vector<SequencedEvent> capped = log.ReadAfter(0, 2, &compacted);
  ASSERT_EQ(capped.size(), 2u);
  EXPECT_EQ(capped[1].seq, 2u);
}

TEST(CoherenceEventLog, CompactionReportsGap) {
  cluster::CoherenceEventLog log(4);
  CoherenceEvent event;
  event.type = CoherenceEvent::Type::kRemove;
  for (int i = 0; i < 10; ++i) {
    event.credential_id = "cred-" + std::to_string(i);
    log.Append(event);
  }
  EXPECT_EQ(log.head_seq(), 10u);
  EXPECT_EQ(log.first_seq(), 7u);  // 7..10 retained

  // A cursor inside the retained window replays without a gap.
  bool compacted = true;
  std::vector<SequencedEvent> tail = log.ReadAfter(7, 100, &compacted);
  EXPECT_FALSE(compacted);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].seq, 8u);

  // A cursor compacted past must be reported: the retained suffix alone
  // would silently skip 3..6.
  std::vector<SequencedEvent> after_gap = log.ReadAfter(2, 100, &compacted);
  EXPECT_TRUE(compacted);
  ASSERT_EQ(after_gap.size(), 4u);
  EXPECT_EQ(after_gap[0].seq, 7u);

  // A fully caught-up cursor is never a gap, even though cursor+1 is
  // beyond the retained range.
  EXPECT_TRUE(log.ReadAfter(10, 100, &compacted).empty());
  EXPECT_FALSE(compacted);
}

TEST(ClusterProtocol, PushRoundtrip) {
  cluster::PushRequest request;
  request.origin = "node-a";
  SequencedEvent submit;
  submit.seq = 41;
  submit.event.type = CoherenceEvent::Type::kSubmit;
  submit.event.credential_id = "cred-1";
  submit.event.principals = {"alice", "bob"};
  SequencedEvent revoke;
  revoke.seq = 42;
  revoke.event.type = CoherenceEvent::Type::kRevokeKey;
  revoke.event.principal = "mallory";
  revoke.event.principals = {"mallory", "eve"};
  SequencedEvent flush;
  flush.seq = 43;
  flush.event.type = CoherenceEvent::Type::kInvalidateAll;
  request.events = {submit, revoke, flush};

  auto decoded = cluster::DecodePush(cluster::EncodePush(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->origin, "node-a");
  ASSERT_EQ(decoded->events.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded->events[i].seq, request.events[i].seq);
    EXPECT_TRUE(decoded->events[i].event == request.events[i].event);
  }

  cluster::HelloRequest hello;
  hello.origin = "node-b";
  hello.incarnation = 9001;
  hello.head_seq = 17;
  auto decoded_hello = cluster::DecodeHello(cluster::EncodeHello(hello));
  ASSERT_TRUE(decoded_hello.ok());
  EXPECT_EQ(decoded_hello->origin, "node-b");
  EXPECT_EQ(decoded_hello->incarnation, 9001u);
  EXPECT_EQ(decoded_hello->head_seq, 17u);
}

TEST(CoherenceFabricUnit, HelloFromNewIncarnationResetsCursor) {
  // An origin restart resets its sequence space; a receiver that kept the
  // old cursor must reset (and flush) instead of deduplicating the new
  // incarnation's events against the dead incarnation's numbering —
  // even when the reborn origin has already published *past* the old
  // cursor by the time it reconnects.
  std::vector<CoherenceEvent> applied;
  cluster::FabricConfig config;
  config.node_id = "receiver";
  config.apply = [&applied](const CoherenceEvent& e) {
    applied.push_back(e);
  };
  cluster::CoherenceFabric fabric(std::move(config));

  // First contact is never a flush, whatever the incarnation.
  EXPECT_EQ(fabric.HandleHello("origin-a", /*incarnation=*/7, /*head=*/0),
            0u);
  EXPECT_TRUE(applied.empty());

  std::vector<SequencedEvent> events(3);
  for (size_t i = 0; i < events.size(); ++i) {
    events[i].seq = i + 1;
    events[i].event.type = CoherenceEvent::Type::kSubmit;
  }
  EXPECT_EQ(fabric.HandlePush("origin-a", events), 3u);
  EXPECT_EQ(applied.size(), 3u);

  // Same incarnation reconnecting: cursor survives.
  EXPECT_EQ(fabric.HandleHello("origin-a", 7, /*head=*/3), 3u);
  EXPECT_EQ(fabric.HandleHello("origin-a", 7, /*head=*/9), 3u);
  // A never-heard-of origin starts at 0, with no flush.
  EXPECT_EQ(fabric.HandleHello("origin-b", 5, /*head=*/5), 0u);
  EXPECT_EQ(applied.size(), 3u);

  // Restarted origin whose new log already reaches past our cursor: the
  // incarnation mismatch (not head comparison) must catch it.
  EXPECT_EQ(fabric.HandleHello("origin-a", /*incarnation=*/8, /*head=*/60),
            0u);
  ASSERT_EQ(applied.size(), 4u);
  EXPECT_EQ(applied.back().type, CoherenceEvent::Type::kInvalidateAll);
  EXPECT_EQ(fabric.stats().full_invalidations_applied, 1u);
  // The reborn origin's events from seq 1 now apply instead of deduping.
  std::vector<SequencedEvent> reborn(1);
  reborn[0].seq = 1;
  reborn[0].event.type = CoherenceEvent::Type::kRemove;
  EXPECT_EQ(fabric.HandlePush("origin-a", reborn), 1u);
  EXPECT_EQ(applied.size(), 5u);

  // Defensive: a same-incarnation head regression also resets.
  EXPECT_EQ(fabric.HandleHello("origin-a", 8, /*head=*/0), 0u);
  EXPECT_EQ(fabric.stats().full_invalidations_applied, 2u);
}

TEST(ClusterProtocol, RejectsUnknownEventType) {
  XdrWriter w;
  w.PutU64(7);
  w.PutU32(99);  // not a CoherenceEvent::Type
  w.PutString("");
  w.PutString("");
  w.PutU32(0);
  Bytes frame = w.Take();
  XdrReader r(frame);
  EXPECT_FALSE(cluster::DecodeSequencedEvent(r).ok());
}

struct ClusterNode {
  std::shared_ptr<FfsVfs> vfs;
  std::unique_ptr<DiscfsHost> host;
};

ClusterNode StartClusterNode(const DsaPrivateKey& server_key,
                             const std::vector<DsaPublicKey>& trusted_keys,
                             uint64_t seed,
                             cluster::FabricTuning tuning = {}) {
  ClusterNode node;
  auto dev = std::make_shared<MemBlockDevice>(4096, 4096);
  auto fs = Ffs::Format(dev, FfsFormatOptions{512});
  EXPECT_TRUE(fs.ok());
  node.vfs = std::make_shared<FfsVfs>(std::move(fs).value());

  DiscfsServerConfig config;
  config.server_key = server_key;
  config.rand_bytes = TestRand(seed);
  config.cluster_trusted_keys = trusted_keys;
  DiscfsHostOptions options;
  options.worker_threads = 4;
  options.cluster_enabled = true;
  options.cluster_tuning = tuning;
  auto host = DiscfsHost::Start(node.vfs, std::move(config), /*port=*/0,
                                std::move(options));
  EXPECT_TRUE(host.ok()) << host.status();
  node.host = std::move(host).value();
  return node;
}

constexpr auto kAckTimeout = std::chrono::milliseconds(10000);

TEST(CoherenceFabric, RemoteInvalidationIsScoped) {
  DsaPrivateKey key_a = DsaPrivateKey::Generate(Dsa512(), TestRand(1));
  DsaPrivateKey key_b = DsaPrivateKey::Generate(Dsa512(), TestRand(2));
  ClusterNode a = StartClusterNode(key_a, {key_b.public_key()}, 10);
  ClusterNode b = StartClusterNode(key_b, {key_a.public_key()}, 11);
  ASSERT_TRUE(a.host->AddClusterPeer(
                  {"127.0.0.1", b.host->port(), key_b.public_key()})
                  .ok());

  // Warm two principals on B.
  const std::string victim = "victim-principal";
  const std::string bystander = "bystander-principal";
  b.host->server().EffectiveMask(victim, 1);
  b.host->server().EffectiveMask(bystander, 1);

  // Revoke the victim's key on A; the event must reach B.
  a.host->server().RevokeKey(victim);
  ASSERT_TRUE(a.host->fabric()->WaitForAck(1, kAckTimeout));
  EXPECT_EQ(b.host->fabric()->ReceiveCursor(a.host->fabric()->node_id()), 1u);
  EXPECT_EQ(b.host->fabric()->events_applied(), 1u);
  EXPECT_EQ(b.host->server()
                .counters()
                .remote_events_applied.load(std::memory_order_relaxed),
            1u);

  // Telemetry attributes the bump to the remote path (before
  // ResetTelemetry below zeroes the counters).
  EXPECT_GE(b.host->server().stats_snapshot().coherence.remote_bumps, 1u);

  // Scoped: the victim's cached entry on B is stale, the bystander's is
  // still warm (no recompute).
  b.host->server().ResetTelemetry();
  b.host->server().EffectiveMask(bystander, 1);
  EXPECT_EQ(b.host->server().counters().keynote_queries.load(), 0u)
      << "bystander should have stayed warm across the remote bump";
  b.host->server().EffectiveMask(victim, 1);
  EXPECT_EQ(b.host->server().counters().keynote_queries.load(), 1u)
      << "victim's entry should have been invalidated remotely";
}

TEST(CoherenceFabric, ReplaysMissedEventsAfterReconnect) {
  DsaPrivateKey key_a = DsaPrivateKey::Generate(Dsa512(), TestRand(1));
  DsaPrivateKey key_b = DsaPrivateKey::Generate(Dsa512(), TestRand(2));
  ClusterNode a = StartClusterNode(key_a, {key_b.public_key()}, 10);
  ClusterNode b = StartClusterNode(key_b, {key_a.public_key()}, 11);
  ASSERT_TRUE(a.host->AddClusterPeer(
                  {"127.0.0.1", b.host->port(), key_b.public_key()})
                  .ok());

  a.host->server().RevokeKey("p-one");
  ASSERT_TRUE(a.host->fabric()->WaitForAck(1, kAckTimeout));

  // The peer link starts serving before the pool task that registers it
  // in B's connection set finishes; wait for the registration so the
  // abort below is guaranteed to catch it.
  auto deadline = std::chrono::steady_clock::now() + kAckTimeout;
  while (b.host->active_connections() < 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "peer connection never registered on B";
    std::this_thread::yield();
  }

  // Sever the link from B's side, then publish while it is down.
  b.host->AbortConnections();
  const std::string bystander = "reconnect-bystander";
  b.host->server().EffectiveMask(bystander, 1);
  a.host->server().RevokeKey("p-two");
  a.host->server().RevokeKey("p-three");

  // The sender reconnects, learns B's cursor via Hello, and replays
  // exactly the missed suffix.
  ASSERT_TRUE(a.host->fabric()->WaitForAck(3, kAckTimeout));
  EXPECT_EQ(b.host->fabric()->ReceiveCursor(a.host->fabric()->node_id()), 3u);
  EXPECT_EQ(b.host->fabric()->events_applied(), 3u);
  cluster::FabricStats sender_stats = a.host->fabric()->stats();
  ASSERT_EQ(sender_stats.peers.size(), 1u);
  EXPECT_GE(sender_stats.peers[0].connects, 2u) << "expected a reconnect";
  EXPECT_EQ(sender_stats.peers[0].full_invalidations_sent, 0u)
      << "replay must not fall back to a full flush";

  // Convergence stayed scoped: the bystander survived the whole episode.
  b.host->server().ResetTelemetry();
  b.host->server().EffectiveMask(bystander, 1);
  EXPECT_EQ(b.host->server().counters().keynote_queries.load(), 0u);
}

TEST(CoherenceFabric, CompactedLogFallsBackToInvalidateAll) {
  DsaPrivateKey key_a = DsaPrivateKey::Generate(Dsa512(), TestRand(1));
  DsaPrivateKey key_b = DsaPrivateKey::Generate(Dsa512(), TestRand(2));
  cluster::FabricTuning small_log;
  small_log.log_capacity = 4;
  ClusterNode a =
      StartClusterNode(key_a, {key_b.public_key()}, 10, small_log);
  ClusterNode b = StartClusterNode(key_b, {key_a.public_key()}, 11);
  ASSERT_TRUE(a.host->AddClusterPeer(
                  {"127.0.0.1", b.host->port(), key_b.public_key()})
                  .ok());

  a.host->server().RevokeKey("seed-event");
  ASSERT_TRUE(a.host->fabric()->WaitForAck(1, kAckTimeout));

  // Warm an (unrelated) entry on B: the fallback flush must clear it.
  const std::string bystander = "compaction-bystander";
  b.host->server().EffectiveMask(bystander, 1);

  // Partition the peer, then publish far past the log capacity: events
  // 2..7 are compacted away, only 8..11 remain.
  a.host->fabric()->SetPeerPausedForTest(0, true);
  for (int i = 0; i < 10; ++i) {
    a.host->server().RevokeKey("burst-" + std::to_string(i));
  }
  EXPECT_EQ(a.host->fabric()->stats().head_seq, 11u);
  a.host->fabric()->SetPeerPausedForTest(0, false);

  ASSERT_TRUE(a.host->fabric()->WaitForAck(11, kAckTimeout));
  EXPECT_EQ(b.host->fabric()->ReceiveCursor(a.host->fabric()->node_id()),
            11u);
  cluster::FabricStats receiver_stats = b.host->fabric()->stats();
  EXPECT_EQ(receiver_stats.full_invalidations_applied, 1u);
  // seed + synthetic flush + retained suffix (8..11).
  EXPECT_EQ(receiver_stats.applied, 6u);
  cluster::FabricStats sender_stats = a.host->fabric()->stats();
  ASSERT_EQ(sender_stats.peers.size(), 1u);
  EXPECT_EQ(sender_stats.peers[0].full_invalidations_sent, 1u);

  // The blunt flush hit the bystander too — that is the safe direction.
  b.host->server().ResetTelemetry();
  b.host->server().EffectiveMask(bystander, 1);
  EXPECT_EQ(b.host->server().counters().keynote_queries.load(), 1u);
}

TEST(CoherenceFabric, UntrustedPeerCannotPush) {
  DsaPrivateKey key_a = DsaPrivateKey::Generate(Dsa512(), TestRand(1));
  DsaPrivateKey key_b = DsaPrivateKey::Generate(Dsa512(), TestRand(2));
  DsaPrivateKey key_c = DsaPrivateKey::Generate(Dsa512(), TestRand(3));
  // A trusts only B; C is a fully functional server A never heard of.
  ClusterNode a = StartClusterNode(key_a, {key_b.public_key()}, 10);
  ClusterNode c = StartClusterNode(key_c, {}, 12);
  ASSERT_TRUE(c.host->AddClusterPeer(
                  {"127.0.0.1", a.host->port(), key_a.public_key()})
                  .ok());

  c.host->server().RevokeKey("forged-revocation");
  // The push is rejected at the trust check, so the ack never arrives.
  EXPECT_FALSE(c.host->fabric()->WaitForAck(
      1, std::chrono::milliseconds(400)));
  EXPECT_EQ(a.host->fabric()->events_applied(), 0u);
  EXPECT_EQ(a.host->server()
                .counters()
                .remote_events_applied.load(std::memory_order_relaxed),
            0u);
}

TEST(CoherenceFabric, TrustedPeerCannotForgeAnotherOrigin) {
  // A trusted peer must not be able to speak under another node's name:
  // a poisoned cursor pushed as "A" would make the receiver dedup every
  // real event A sends afterwards — silent revocation suppression.
  DsaPrivateKey key_a = DsaPrivateKey::Generate(Dsa512(), TestRand(1));
  DsaPrivateKey key_b = DsaPrivateKey::Generate(Dsa512(), TestRand(2));
  DsaPrivateKey key_c = DsaPrivateKey::Generate(Dsa512(), TestRand(3));
  // B trusts both A and C; C will try to impersonate A against B.
  ClusterNode a = StartClusterNode(key_a, {key_b.public_key()}, 10);
  ClusterNode b = StartClusterNode(
      key_b, {key_a.public_key(), key_c.public_key()}, 11);
  ASSERT_TRUE(a.host->AddClusterPeer(
                  {"127.0.0.1", b.host->port(), key_b.public_key()})
                  .ok());

  // C speaks the cluster program over an authenticated channel of its
  // own, but claims to be A with an absurdly advanced cursor.
  auto transport = TcpTransport::Connect("127.0.0.1", b.host->port());
  ASSERT_TRUE(transport.ok());
  ChannelIdentity c_identity{key_c, TestRand(30)};
  auto channel = SecureChannel::ClientHandshake(
      std::move(transport).value(), c_identity, key_b.public_key());
  ASSERT_TRUE(channel.ok()) << channel.status();
  RpcClient forger(std::move(channel).value());
  cluster::PushRequest forged;
  forged.origin = a.host->fabric()->node_id();
  SequencedEvent poison;
  poison.seq = 1u << 30;
  poison.event.type = CoherenceEvent::Type::kSubmit;
  forged.events = {poison};
  auto pushed = forger.Call(
      cluster::kClusterProgram,
      static_cast<uint32_t>(cluster::ClusterProc::kPush),
      cluster::EncodePush(forged));
  EXPECT_EQ(pushed.status().code(), StatusCode::kPermissionDenied)
      << pushed.status();
  forger.Close();

  // A's real events still apply: the cursor was not poisoned.
  a.host->server().RevokeKey("real-event");
  ASSERT_TRUE(a.host->fabric()->WaitForAck(1, kAckTimeout));
  EXPECT_EQ(b.host->fabric()->ReceiveCursor(a.host->fabric()->node_id()),
            1u);
  EXPECT_EQ(b.host->fabric()->events_applied(), 1u);
}

}  // namespace
}  // namespace discfs
