// HMAC (RFC 2104) over the SHA family, plus HKDF (RFC 5869) for deriving the
// secure-channel session keys.
#ifndef DISCFS_SRC_CRYPTO_HMAC_H_
#define DISCFS_SRC_CRYPTO_HMAC_H_

#include <cstddef>

#include "src/crypto/sha.h"
#include "src/util/bytes.h"

namespace discfs {

// Generic HMAC over any hash with the streaming interface used by the
// Sha* classes.
template <typename Hash>
Bytes Hmac(const Bytes& key, const Bytes& message) {
  Bytes k = key;
  if (k.size() > Hash::kBlockSize) {
    k = Hash::Hash(k);
  }
  k.resize(Hash::kBlockSize, 0);
  Bytes ipad(Hash::kBlockSize);
  Bytes opad(Hash::kBlockSize);
  for (size_t i = 0; i < Hash::kBlockSize; ++i) {
    ipad[i] = static_cast<uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<uint8_t>(k[i] ^ 0x5c);
  }
  Hash inner;
  inner.Update(ipad);
  inner.Update(message);
  Bytes inner_digest = inner.Finish();
  Hash outer;
  outer.Update(opad);
  outer.Update(inner_digest);
  return outer.Finish();
}

inline Bytes HmacSha1(const Bytes& key, const Bytes& msg) {
  return Hmac<Sha1>(key, msg);
}
inline Bytes HmacSha256(const Bytes& key, const Bytes& msg) {
  return Hmac<Sha256>(key, msg);
}
inline Bytes HmacSha512(const Bytes& key, const Bytes& msg) {
  return Hmac<Sha512>(key, msg);
}

// HKDF-SHA256.
Bytes HkdfExtract(const Bytes& salt, const Bytes& ikm);
Bytes HkdfExpand(const Bytes& prk, const Bytes& info, size_t length);
Bytes HkdfSha256(const Bytes& salt, const Bytes& ikm, const Bytes& info,
                 size_t length);

}  // namespace discfs

#endif  // DISCFS_SRC_CRYPTO_HMAC_H_
