#include "src/cluster/membership.h"

#include <cstdlib>

namespace discfs::cluster {

bool ParseHostPort(const std::string& address, std::string* host,
                   uint16_t* port) {
  size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= address.size()) {
    return false;
  }
  char* end = nullptr;
  unsigned long value = std::strtoul(address.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || value == 0 || value > 65535) {
    return false;
  }
  *host = address.substr(0, colon);
  *port = static_cast<uint16_t>(value);
  return true;
}

}  // namespace discfs::cluster
