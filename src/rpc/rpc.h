// Minimal SunRPC-style request/reply layer over any MsgStream, with
// pipelining on both ends.
//
// Call frame:   u32 xid | u32 type(0) | u32 prog | u32 proc | opaque args
// Reply frame:  u32 xid | u32 type(1) | u32 accept_status | opaque result
// accept_status 0 = success (result = procedure output), non-zero = error
// (result = UTF-8 error message; the status code is a StatusCode).
//
// Client side: RpcClient matches replies to calls by xid, so any number of
// calls can be in flight on one stream (CallAsync); the blocking Call is a
// one-deep special case. Demux runs either on a dedicated thread per client
// (the default, and the only option for fd-less streams) or — when an
// EventLoop is supplied — as a readability callback on a shared poller, so
// a proxy holding thousands of upstream connections needs one thread, not
// thousands.
//
// Server side: RpcDispatcher::ServeConnection hands decoded requests to a
// shared WorkerPool from a per-connection recv thread (PR 2), and
// RpcConnection serves a stream entirely from an EventLoop: decode on
// readability, execute on the pool, and reply through a bounded
// per-connection send queue drained by a single writer (the loop), with an
// optional global admission bound that busy-rejects when the pool backs up.
#ifndef DISCFS_SRC_RPC_RPC_H_
#define DISCFS_SRC_RPC_RPC_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/crypto/dsa.h"
#include "src/net/event_loop.h"
#include "src/net/transport.h"
#include "src/obs/recorder.h"
#include "src/obs/trace.h"
#include "src/util/status.h"
#include "src/util/worker_pool.h"

namespace discfs {

// Context passed to server handlers; carries the authenticated peer identity
// when the stream is a SecureChannel.
struct RpcContext {
  // Empty when the transport is unauthenticated (the CFS-NE baseline).
  std::optional<DsaPublicKey> peer_key;
  // Trace id from the call frame's optional trailer (0 = untraced). The
  // runtime also installs it as the thread's obs::TraceScope around handler
  // execution, so deep call paths can read obs::CurrentTraceId().
  uint64_t trace_id = 0;
};

class RpcClient {
 public:
  // Takes ownership of the stream (plain transport or secure channel).
  // With `loop` null (or a stream that has no pollable fd), replies are
  // demuxed on a dedicated receive thread. With a loop and a pollable
  // stream, the client registers on the shared poller instead — N clients,
  // one thread.
  explicit RpcClient(std::unique_ptr<MsgStream> stream,
                     EventLoop* loop = nullptr);
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  // Blocking call; returns the procedure result or the server-side error.
  // Concurrent callers pipeline on the shared connection.
  Result<Bytes> Call(uint32_t prog, uint32_t proc, const Bytes& args);

  // Starts a call and returns immediately; the future resolves when the
  // matching reply arrives (or with the connection error if the stream
  // breaks or Close is called first — in-flight calls fail fast, they
  // never hang).
  std::future<Result<Bytes>> CallAsync(uint32_t prog, uint32_t proc,
                                       const Bytes& args);

  // Deadline-aware calls: the pending promise fails with
  // kDeadlineExceeded when no reply arrives within `deadline_ms`, so a
  // stalled server cannot hang the caller. The budget also rides the call
  // frame's version-2 trailer, letting the server drop the work at
  // dequeue once it is already dead instead of executing it.
  // deadline_ms == 0 means no deadline (the plain CallAsync behavior).
  std::future<Result<Bytes>> CallAsyncWithDeadline(uint32_t prog,
                                                   uint32_t proc,
                                                   const Bytes& args,
                                                   uint32_t deadline_ms);
  Result<Bytes> CallWithDeadline(uint32_t prog, uint32_t proc,
                                 const Bytes& args, uint32_t deadline_ms);

  // Default budget applied to every Call/CallAsync that does not name its
  // own deadline. 0 (the default) keeps the historical block-forever
  // behavior.
  void set_default_deadline_ms(uint32_t ms) {
    default_deadline_ms_.store(ms, std::memory_order_relaxed);
  }

  // Fails all in-flight calls, makes future calls fail immediately, and
  // tears down the stream. Safe to call from any thread, including while
  // calls are blocked.
  void Close();

  // Calls awaiting a reply right now (diagnostics).
  size_t inflight() const;

 private:
  void DemuxLoop();
  // Fails pending calls whose deadline passed with kDeadlineExceeded.
  // Lazily started by the first deadline-carrying call.
  void DeadlineLoop();
  void ArmDeadline(uint32_t xid, uint32_t deadline_ms);
  // Drains TryRecv on the event loop until the socket is empty or broken.
  void OnReadable();
  // Resolves one reply frame against the pending table. Returns false when
  // the frame is malformed (the stream can no longer be trusted).
  bool ProcessReply(const Bytes& frame);
  // Marks the connection broken (first status wins) and fails every
  // pending call with it.
  void FailAllPending(const Status& status);

  std::unique_ptr<MsgStream> stream_;
  std::mutex send_mu_;  // serializes call frames onto the stream

  mutable std::mutex pending_mu_;
  uint32_t next_xid_ = 1;  // guarded by pending_mu_
  std::unordered_map<uint32_t, std::promise<Result<Bytes>>> pending_;
  bool broken_ = false;   // guarded by pending_mu_
  Status broken_status_;  // guarded by pending_mu_

  // Exactly one demux mechanism is active: loop_fd_ >= 0 means the client
  // is registered on loop_; otherwise demux_thread_ runs DemuxLoop.
  EventLoop* loop_ = nullptr;
  int loop_fd_ = -1;
  std::thread demux_thread_;

  // Deadline reaper: earliest-first queue of (expiry, xid). Entries for
  // calls that already completed fire as no-ops (pending_ probe misses).
  std::atomic<uint32_t> default_deadline_ms_{0};
  std::mutex deadline_mu_;
  std::condition_variable deadline_cv_;
  std::multimap<std::chrono::steady_clock::time_point, uint32_t> deadlines_;
  bool deadline_stop_ = false;     // guarded by deadline_mu_
  std::thread deadline_thread_;    // guarded by deadline_mu_ (lazy start)
};

// How ServeConnection schedules handler execution.
struct ServeOptions {
  // Shared execution pool. When null, requests are handled inline on the
  // connection thread (the pre-pipelining behavior).
  WorkerPool* pool = nullptr;
  // Backpressure: the connection stops reading new requests while this many
  // are being executed or awaiting their reply write.
  size_t max_inflight_per_conn = 64;
};

// RPC call frames may carry an optional trailer after the opaque args:
//   u32 kRpcTraceMagic | u32 version | u64 trace_id [| u32 deadline_ms]
// Version 1 carries the trace id only; version 2 appends the caller's
// remaining deadline budget in milliseconds (relative, so clocks need not
// be synchronized; 0 = no deadline). Peers that predate the trailer parse
// the frame unchanged and never look past the args, and version-1 parsers
// accept any version >= 1 and simply stop after the trace id, so both
// extensions are backward compatible (see src/rpc/README.md).
inline constexpr uint32_t kRpcTraceMagic = 0x44545243;  // "DTRC"
inline constexpr uint32_t kRpcTraceVersion = 1;
inline constexpr uint32_t kRpcDeadlineVersion = 2;

// Priority classes for policy-aware shedding, highest first. Under
// overload the server sheds kData first (cheap to retry, no durable
// effect), then kNamespace, and only rejects kControl at the hard
// admission limit — a revocation the server could have applied is never
// the first thing dropped.
enum class RpcPriority : uint8_t {
  kControl = 0,    // credential submits/revocations, cluster pushes, stats
  kNamespace = 1,  // lookup/create/rename-class operations (the default)
  kData = 2,       // reads/writes/getattr and other data-plane traffic
};
inline constexpr size_t kRpcPriorityCount = 3;

class RpcDispatcher {
 public:
  using Handler =
      std::function<Result<Bytes>(const Bytes& args, const RpcContext& ctx)>;

  void Register(uint32_t prog, uint32_t proc, Handler handler);

  // Priority used by RpcConnection's watermark shedding. Like Register,
  // call during server setup: the map is read without a lock once serving
  // starts. Unregistered procedures default to kNamespace (the middle
  // tier), so unknown work is neither privileged nor the first shed.
  void SetPriority(uint32_t prog, uint32_t proc, RpcPriority priority);
  RpcPriority PriorityOf(uint32_t prog, uint32_t proc) const;

  // Serves one request from the stream (recv, dispatch, reply). Returns
  // UNAVAILABLE when the peer disconnects.
  Status ServeOne(MsgStream& stream, const RpcContext& ctx) const;

  // Serves until the peer disconnects, one request at a time.
  void ServeConnection(MsgStream& stream, const RpcContext& ctx) const;

  // Pipelined variant: decodes requests on this thread, executes them on
  // options.pool (inline when null), and writes replies as they complete —
  // out of order — under a per-connection write lock. Returns only after
  // every accepted request has been answered (or its reply write failed).
  void ServeConnection(MsgStream& stream, const RpcContext& ctx,
                       const ServeOptions& options) const;

  // Dispatches one decoded request (shared with RpcConnection).
  Result<Bytes> Dispatch(uint32_t prog, uint32_t proc, const Bytes& args,
                         const RpcContext& ctx) const;

 private:
  std::map<std::pair<uint32_t, uint32_t>, Handler> handlers_;
  std::map<std::pair<uint32_t, uint32_t>, RpcPriority> priorities_;
};

// One event-driven server connection. Requests are decoded on the loop as
// the socket becomes readable and executed on the shared WorkerPool;
// replies go through a bounded per-connection send queue drained by a
// single writer — whichever thread holds the writer token. On an idle wire
// that is the worker that finished the request (seal + gathered
// non-blocking send, zero thread hops); once the kernel buffer fills the
// workers hand off and the loop's EPOLLOUT event resumes the drain, so no
// thread ever parks inside a send. When the queue is full the executing
// worker blocks (backpressure), which holds its in-flight slot and in turn
// pauses reading from this connection.
class RpcConnection : public std::enable_shared_from_this<RpcConnection> {
 public:
  struct Options {
    EventLoop* loop = nullptr;  // required
    WorkerPool* pool = nullptr;  // required
    // Per-connection bound on requests executing or awaiting reply.
    size_t max_inflight = 64;
    // Per-connection bound on replies queued for the writer.
    size_t send_queue_limit = 128;
    // Global admission bound: when the shared pool's queue depth reaches
    // this, new requests are rejected with RESOURCE_EXHAUSTED instead of
    // queued, so connection fan-in cannot blow tail latency. 0 = off.
    // With the watermarks below unset this is a binary bound on every
    // request; with them set it becomes the hard limit that even
    // kControl work sheds at.
    size_t admission_queue_limit = 0;
    // Watermark tiers for policy-aware shedding. A non-zero watermark
    // busy-rejects requests of that priority class (and every class
    // below it) once the shared pool's queue depth reaches it, so under
    // pressure data reads shed first, then namespace operations, and
    // control-plane work (submits, revocations) only at the hard
    // admission_queue_limit. Both 0 = tiering off (binary behavior).
    size_t shed_data_watermark = 0;
    size_t shed_namespace_watermark = 0;
    // Flight recorder: when set (and its registry is enabled), the
    // connection stamps each call at five points and reports span timings
    // plus queue depths per (prog, proc). Null = no timing overhead.
    obs::RpcRecorder* recorder = nullptr;
  };
  // Invoked once, on whichever thread finishes the connection (the loop
  // for peer-initiated close, the Abort caller otherwise). The connection
  // is fully quiesced: deregistered and accepting no new work.
  using ClosedFn = std::function<void(RpcConnection*)>;

  // Registers the stream on options.loop and starts serving. Fails when
  // the stream has no pollable fd. The dispatcher must outlive the
  // connection; the stream is shared with in-flight worker tasks.
  static Result<std::shared_ptr<RpcConnection>> Start(
      const RpcDispatcher* dispatcher, std::shared_ptr<MsgStream> stream,
      RpcContext ctx, const Options& options, ClosedFn on_closed = nullptr);

  ~RpcConnection();

  RpcConnection(const RpcConnection&) = delete;
  RpcConnection& operator=(const RpcConnection&) = delete;

  // Force-closes from any thread: drops queued replies, unblocks workers,
  // deregisters from the loop. In-flight handlers finish on the pool but
  // their replies are discarded. Idempotent.
  void Abort();

  bool closed() const;

  // --- stats (tests and load introspection) ---
  // Highest send-queue depth observed (≤ send_queue_limit unless busy
  // rejects, which bypass the bound so they can never deadlock the loop).
  size_t send_queue_peak() const;
  // Requests rejected by the admission bound or a shed watermark (total).
  uint64_t busy_rejected() const;
  // Busy rejects broken down by the rejected request's priority class.
  uint64_t shed_by_priority(RpcPriority priority) const;
  // Requests dropped at dequeue because their deadline had already
  // expired (answered kDeadlineExceeded without executing the handler).
  uint64_t expired_dropped() const;

 private:
  RpcConnection(const RpcDispatcher* dispatcher,
                std::shared_ptr<MsgStream> stream, RpcContext ctx,
                const Options& options, ClosedFn on_closed);

  void OnEvent(uint32_t events);      // loop thread
  void PumpReads();                   // loop thread
  void Drain();                       // loop thread (EPOLLOUT entry)
  // Pool-queue-depth ceiling that admits a request of this priority
  // (smallest applicable watermark, falling back to the hard limit);
  // 0 = unbounded.
  size_t AdmissionLimitFor(RpcPriority priority) const;
  void ExecuteOnPool(uint32_t xid, uint32_t prog, uint32_t proc, Bytes args,
                     uint64_t trace_id, uint64_t expires_at_ns,
                     obs::CallTimestamps ts, size_t pool_queue_depth);
  // Returns the send-queue depth right after this reply was appended
  // (0 when the connection closed and the reply was dropped).
  size_t EnqueueReply(Bytes frame);   // worker thread; blocks when full
  // Appends a reply and drains inline when the writer token is free.
  void PushReplyAndDrainLocked(Bytes frame,
                               std::unique_lock<std::mutex>& lock);
  // Sends queued replies until empty or EAGAIN. Requires draining_ (the
  // writer token) held by this thread; releases it before returning.
  void DrainQueueLocked(std::unique_lock<std::mutex>& lock);
  void UpdateInterestLocked();        // any thread, mu_ held
  // True when paused reads should restart: below the in-flight low-water
  // mark (hysteresis) and with room in the send queue.
  bool ShouldResumeReadsLocked() const;
  // Clears the pause and posts an interest-update + read pump to the loop.
  void ResumeReadsLocked();
  void MaybeFinishLocked();
  void FinishClose();                 // loop thread
  void InvokeClosed();

  const RpcDispatcher* dispatcher_;
  std::shared_ptr<MsgStream> stream_;
  RpcContext ctx_;
  Options opts_;
  int fd_ = -1;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Bytes> send_queue_;
  ClosedFn on_closed_;         // consumed by whichever side closes first
  size_t inflight_ = 0;        // executing or awaiting reply enqueue
  size_t queue_peak_ = 0;
  bool read_open_ = true;      // still accepting new requests
  bool read_paused_ = false;   // paused by the in-flight bound
  bool applied_read_ = true;   // interest set last pushed to epoll
  bool applied_write_ = false;
  bool want_write_ = false;    // EPOLLOUT armed (kernel buffer full)
  bool flush_pending_ = false; // transport holds buffered output
  bool draining_ = false;      // writer token: exactly one thread sends
  bool finish_scheduled_ = false;
  bool send_broken_ = false;   // write side failed; replies are discarded
  bool closed_ = false;
  std::atomic<uint64_t> busy_rejected_{0};
  std::atomic<uint64_t> shed_by_priority_[kRpcPriorityCount] = {};
  std::atomic<uint64_t> expired_dropped_{0};
};

}  // namespace discfs

#endif  // DISCFS_SRC_RPC_RPC_H_
