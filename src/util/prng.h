// Deterministic PRNG (xoshiro256**) for workload generation, property tests
// and simulation. NOT for key material — see src/crypto/sysrand.h for that.
#ifndef DISCFS_SRC_UTIL_PRNG_H_
#define DISCFS_SRC_UTIL_PRNG_H_

#include <cstdint>
#include <functional>

#include "src/util/bytes.h"

namespace discfs {

class Prng {
 public:
  explicit Prng(uint64_t seed);

  uint64_t Next();

  // Uniform in [0, bound); bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  bool NextBool(double p_true = 0.5);

  Bytes NextBytes(size_t n);

 private:
  uint64_t s_[4];
};

// A rand_bytes-style closure over a seeded Prng guarded by a mutex, for
// configs whose consumers call it from several threads — a host's server
// handshakes and its coherence peer links overlap on the pool. Tests and
// benches use this where determinism matters more than key quality.
std::function<Bytes(size_t)> LockedPrngBytes(uint64_t seed);

}  // namespace discfs

#endif  // DISCFS_SRC_UTIL_PRNG_H_
