// Credentials×principals scaling of the access-check hot path (ours,
// motivated by the ROADMAP's "millions of users" target): how cache-miss
// query latency, warm-cache throughput, and invalidation scope behave as
// the credential set grows from 10 to 10k.
//
// Measured per size N (one credential per synthetic principal, all issued
// by the server key, flat delegation — the paper's common case):
//
//   * indexed_miss_us   — KeyNoteSession::Query (delegation-graph slice)
//   * fullscan_miss_us  — KeyNoteSession::QueryFullScan (pre-index cost)
//   * warm_hit_ops_per_s / warm_hit_rate — PolicyCache steady state
//   * survivor_hit_rate_after_submit — fraction of warm entries for
//     *unrelated* principals still hot after one credential submission
//     (the old design flushed everything: 0.0; scoped invalidation: 1.0)
//
// Output: human-readable table on stdout plus BENCH_policy.json (path from
// argv[1], default ./BENCH_policy.json). Schema documented in ROADMAP.md.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/crypto/groups.h"
#include "src/discfs/policy_cache.h"
#include "src/keynote/assertion.h"
#include "src/keynote/session.h"
#include "src/util/prng.h"

namespace discfs {
namespace {

using keynote::AssertionBuilder;
using keynote::ComplianceQuery;
using keynote::KeyNoteSession;
using keynote::PermissionLattice;
using keynote::SignatureAlgorithm;

std::function<Bytes(size_t)> BenchRand(uint64_t seed) {
  auto prng = std::make_shared<Prng>(seed);
  return [prng](size_t n) { return prng->NextBytes(n); };
}

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct LatencySummary {
  double mean_us = 0;
  double p50_us = 0;
  double p99_us = 0;
};

LatencySummary Summarize(std::vector<double> samples_us) {
  LatencySummary s;
  if (samples_us.empty()) {
    return s;
  }
  std::sort(samples_us.begin(), samples_us.end());
  double sum = 0;
  for (double v : samples_us) {
    sum += v;
  }
  s.mean_us = sum / samples_us.size();
  s.p50_us = samples_us[samples_us.size() / 2];
  s.p99_us = samples_us[std::min(samples_us.size() - 1,
                                 samples_us.size() * 99 / 100)];
  return s;
}

std::string PrincipalName(size_t i) { return "user" + std::to_string(i); }

uint32_t HandleOf(size_t i) { return static_cast<uint32_t>(1000 + i); }

ComplianceQuery AccessQuery(const std::string& principal, uint32_t inode) {
  ComplianceQuery query;
  query.attributes = {{"app_domain", "DisCFS"},
                      {"HANDLE", std::to_string(inode)},
                      {"operation", "access"}};
  query.action_authorizers = {principal};
  return query;
}

struct SizeResult {
  size_t credentials = 0;
  double admit_s = 0;
  LatencySummary indexed_miss;
  LatencySummary fullscan_miss;
  double warm_hit_ops_per_s = 0;
  double warm_hit_rate = 0;
  double survivor_hit_rate = 0;
  size_t invalidated_principals = 0;
  bool indexed_matches_fullscan = true;
};

Result<SizeResult> RunSize(const DsaPrivateKey& server_key, size_t n,
                           Prng& prng) {
  SizeResult out;
  out.credentials = n;
  const std::string server_id = server_key.public_key().ToKeyNoteString();

  KeyNoteSession session(PermissionLattice::Get());
  RETURN_IF_ERROR(session.AddPolicyAssertion(
      "Authorizer: \"POLICY\"\n"
      "Licensees: \"" + server_id + "\"\n"
      "Conditions: app_domain == \"DisCFS\" -> \"RWX\";\n"));

  double t0 = NowSec();
  for (size_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(
        std::string credential,
        AssertionBuilder()
            .SetAuthorizer(server_id)
            .SetLicensees("\"" + PrincipalName(i) + "\"")
            .SetConditions("(app_domain == \"DisCFS\") && (HANDLE == \"" +
                           std::to_string(HandleOf(i)) + "\") -> \"RWX\";")
            .Sign(server_key, SignatureAlgorithm::kDsaSha1));
    RETURN_IF_ERROR(session.AddCredential(credential).status());
  }
  out.admit_s = NowSec() - t0;

  // Sampled principals for the latency and cache phases.
  const size_t samples = std::min<size_t>(n, 64);
  std::vector<size_t> picked(samples);
  for (size_t s = 0; s < samples; ++s) {
    picked[s] = prng.NextBelow(n);
  }

  std::vector<double> indexed_us, fullscan_us;
  for (size_t idx : picked) {
    ComplianceQuery query = AccessQuery(PrincipalName(idx), HandleOf(idx));
    double a = NowSec();
    uint32_t indexed = session.Query(query);
    double b = NowSec();
    uint32_t full = session.QueryFullScan(query);
    double c = NowSec();
    indexed_us.push_back((b - a) * 1e6);
    fullscan_us.push_back((c - b) * 1e6);
    if (indexed != full) {
      out.indexed_matches_fullscan = false;
    }
  }
  out.indexed_miss = Summarize(std::move(indexed_us));
  out.fullscan_miss = Summarize(std::move(fullscan_us));

  // Warm-cache steady state: populate once, then hammer hits.
  PolicyCache cache(16384, /*ttl_seconds=*/1 << 30);
  for (size_t idx : picked) {
    std::string principal = PrincipalName(idx);
    uint32_t inode = HandleOf(idx);
    cache.Put(principal, inode, session.Query(AccessQuery(principal, inode)),
              /*now=*/0);
  }
  cache.ResetStats();
  const size_t rounds = 2000;
  double w0 = NowSec();
  for (size_t r = 0; r < rounds; ++r) {
    for (size_t idx : picked) {
      (void)cache.Get(PrincipalName(idx), HandleOf(idx), /*now=*/1);
    }
  }
  double warm_s = NowSec() - w0;
  PolicyCache::Stats warm = cache.stats();
  out.warm_hit_ops_per_s = (rounds * samples) / warm_s;
  out.warm_hit_rate =
      static_cast<double>(warm.hits) / (warm.hits + warm.misses);

  // Credential churn: one new principal arrives; scoped invalidation must
  // leave every sampled (unrelated) principal's entry warm.
  ASSIGN_OR_RETURN(
      std::string churn_cred,
      AssertionBuilder()
          .SetAuthorizer(server_id)
          .SetLicensees("\"" + PrincipalName(n) + "\"")
          .SetConditions("(app_domain == \"DisCFS\") && (HANDLE == \"" +
                         std::to_string(HandleOf(n)) + "\") -> \"RWX\";")
          .Sign(server_key, SignatureAlgorithm::kDsaSha1));
  ASSIGN_OR_RETURN(std::string churn_id, session.AddCredential(churn_cred));
  std::vector<std::string> affected = session.AffectedRequesters(churn_id);
  for (const std::string& principal : affected) {
    cache.InvalidatePrincipal(principal);
  }
  out.invalidated_principals = affected.size();
  size_t survivors = 0;
  for (size_t idx : picked) {
    if (cache.Get(PrincipalName(idx), HandleOf(idx), /*now=*/1)
            .has_value()) {
      ++survivors;
    }
  }
  out.survivor_hit_rate = static_cast<double>(survivors) / samples;
  return out;
}

void WriteJson(std::FILE* f, const std::vector<SizeResult>& results) {
  std::fprintf(f, "{\n  \"bench\": \"policy_scaling\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    std::fprintf(f,
                 "    {\"credentials\": %zu, \"principals\": %zu,\n"
                 "     \"admit_s\": %.3f,\n"
                 "     \"indexed_miss_us\": {\"mean\": %.2f, \"p50\": %.2f, "
                 "\"p99\": %.2f},\n"
                 "     \"fullscan_miss_us\": {\"mean\": %.2f, \"p50\": %.2f, "
                 "\"p99\": %.2f},\n"
                 "     \"warm_hit_ops_per_s\": %.0f,\n"
                 "     \"warm_hit_rate\": %.4f,\n"
                 "     \"survivor_hit_rate_after_submit\": %.4f,\n"
                 "     \"invalidated_principals\": %zu,\n"
                 "     \"indexed_matches_fullscan\": %s}%s\n",
                 r.credentials, r.credentials, r.admit_s,
                 r.indexed_miss.mean_us, r.indexed_miss.p50_us,
                 r.indexed_miss.p99_us, r.fullscan_miss.mean_us,
                 r.fullscan_miss.p50_us, r.fullscan_miss.p99_us,
                 r.warm_hit_ops_per_s, r.warm_hit_rate, r.survivor_hit_rate,
                 r.invalidated_principals,
                 r.indexed_matches_fullscan ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

int Run(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_policy.json";
  size_t max_credentials = 10000;
  if (argc > 2) {
    char* end = nullptr;
    max_credentials = std::strtoull(argv[2], &end, 10);
    if (end == argv[2] || *end != '\0') {
      std::fprintf(stderr, "usage: %s [out.json] [max_credentials]\n",
                   argv[0]);
      return 2;
    }
  }

  DsaPrivateKey server_key =
      DsaPrivateKey::Generate(Dsa512(), BenchRand(42));
  Prng prng(1234);

  std::printf("== Policy scaling: access-check cost vs credential count ==\n");
  std::printf("%-8s %12s %16s %16s %14s %10s\n", "creds", "admit (s)",
              "indexed p50 us", "fullscan p50 us", "warm ops/s",
              "survivors");

  std::vector<SizeResult> results;
  for (size_t n : {10u, 100u, 1000u, 10000u}) {
    if (n > max_credentials) {
      break;
    }
    auto result = RunSize(server_key, n, prng);
    if (!result.ok()) {
      std::fprintf(stderr, "size %zu failed: %s\n", n,
                   result.status().ToString().c_str());
      return 1;
    }
    results.push_back(*result);
    const SizeResult& r = results.back();
    std::printf("%-8zu %12.2f %16.2f %16.2f %14.0f %9.0f%%\n", n, r.admit_s,
                r.indexed_miss.p50_us, r.fullscan_miss.p50_us,
                r.warm_hit_ops_per_s, r.survivor_hit_rate * 100);
    std::fflush(stdout);
    if (!r.indexed_matches_fullscan) {
      std::fprintf(stderr,
                   "FATAL: indexed query diverged from full scan at %zu\n",
                   n);
      return 1;
    }
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  WriteJson(f, results);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}

}  // namespace
}  // namespace discfs

int main(int argc, char** argv) { return discfs::Run(argc, argv); }
