// Adversarial tests: what an attacker on the wire (or a malicious client)
// can and cannot do.
#include <gtest/gtest.h>

#include <deque>
#include <thread>

#include "src/crypto/groups.h"
#include "src/discfs/client.h"
#include "src/discfs/action_env.h"
#include "src/discfs/credentials.h"
#include "src/discfs/host.h"
#include "src/securechannel/channel.h"
#include "src/util/prng.h"

namespace discfs {
namespace {

std::function<Bytes(size_t)> TestRand(uint64_t seed) {
  auto prng = std::make_shared<Prng>(seed);
  return [prng](size_t n) { return prng->NextBytes(n); };
}

// A transport wrapper that records every frame and lets the test re-inject
// or corrupt traffic — the on-path attacker.
class TamperTransport : public MsgStream {
 public:
  explicit TamperTransport(std::unique_ptr<MsgStream> inner)
      : inner_(std::move(inner)) {}

  Status Send(const Bytes& message) override {
    sent_.push_back(message);
    return inner_->Send(message);
  }
  Result<Bytes> Recv() override { return inner_->Recv(); }
  void Close() override { inner_->Close(); }

  // Replays a previously sent frame (e.g. a captured WRITE).
  Status Replay(size_t index) { return inner_->Send(sent_.at(index)); }
  // Sends a bit-flipped copy of a captured frame.
  Status SendCorrupted(size_t index) {
    Bytes frame = sent_.at(index);
    frame[frame.size() / 2] ^= 0x01;
    return inner_->Send(frame);
  }
  size_t frames() const { return sent_.size(); }
  const Bytes& frame(size_t index) const { return sent_.at(index); }

 private:
  std::unique_ptr<MsgStream> inner_;
  std::deque<Bytes> sent_;
};

struct ChannelPair {
  TamperTransport* tap;  // owned by client channel
  std::unique_ptr<SecureChannel> client;
  std::unique_ptr<SecureChannel> server;
};

ChannelPair MakeTappedPair() {
  DsaPrivateKey server_key = DsaPrivateKey::Generate(Dsa512(), TestRand(1));
  DsaPrivateKey client_key = DsaPrivateKey::Generate(Dsa512(), TestRand(2));
  auto transports = InProcTransport::CreatePair();
  auto tapped = std::make_unique<TamperTransport>(std::move(transports.a));
  TamperTransport* tap = tapped.get();

  ChannelIdentity client_id{client_key, TestRand(10)};
  ChannelIdentity server_id{server_key, TestRand(11)};
  Result<std::unique_ptr<SecureChannel>> server_chan =
      UnavailableError("pending");
  std::thread server_thread([&] {
    server_chan =
        SecureChannel::ServerHandshake(std::move(transports.b), server_id);
  });
  auto client_chan = SecureChannel::ClientHandshake(std::move(tapped),
                                                    client_id, std::nullopt);
  server_thread.join();
  EXPECT_TRUE(client_chan.ok());
  EXPECT_TRUE(server_chan.ok());
  return ChannelPair{tap, std::move(client_chan).value(),
                     std::move(server_chan).value()};
}

TEST(ChannelSecurity, ReplayedRecordRejected) {
  ChannelPair pair = MakeTappedPair();
  ASSERT_TRUE(pair.client->Send(ToBytes("WRITE $100 to account 7")).ok());
  ASSERT_TRUE(pair.server->Recv().ok());

  // The attacker re-injects the captured (already delivered) record. The
  // handshake used 3 frames; the record is the 4th sent by the client.
  size_t record_index = pair.tap->frames() - 1;
  ASSERT_TRUE(pair.tap->Replay(record_index).ok());
  auto replayed = pair.server->Recv();
  EXPECT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kUnauthenticated);
}

TEST(ChannelSecurity, CorruptedRecordRejected) {
  ChannelPair pair = MakeTappedPair();
  ASSERT_TRUE(pair.client->Send(ToBytes("sensitive payload")).ok());
  ASSERT_TRUE(pair.server->Recv().ok());
  ASSERT_TRUE(pair.client->Send(ToBytes("second payload")).ok());
  // Deliver a corrupted copy of the second record instead.
  // (The genuine one was already delivered to the inner transport, so read
  // it off first, then push the corrupted duplicate.)
  auto genuine = pair.server->Recv();
  ASSERT_TRUE(genuine.ok());
  ASSERT_TRUE(pair.tap->SendCorrupted(pair.tap->frames() - 1).ok());
  auto corrupted = pair.server->Recv();
  EXPECT_FALSE(corrupted.ok());
}

TEST(ChannelSecurity, PlaintextNeverOnWire) {
  ChannelPair pair = MakeTappedPair();
  std::string secret = "THE-LAUNCH-CODES-0000";
  ASSERT_TRUE(pair.client->Send(ToBytes(secret)).ok());
  auto got = pair.server->Recv();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(*got), secret);  // delivered intact...
  // ...but no frame that crossed the wire contains the plaintext.
  for (size_t i = 0; i < pair.tap->frames(); ++i) {
    const Bytes& frame = pair.tap->frame(i);
    std::string as_text(frame.begin(), frame.end());
    EXPECT_EQ(as_text.find(secret), std::string::npos) << "frame " << i;
  }
}

// A client whose requests claim someone else's identity cannot: the key is
// bound by the handshake, not by anything inside the RPC payload.
TEST(DiscfsSecurity, IdentityComesFromChannelNotPayload) {
  DsaPrivateKey admin = DsaPrivateKey::Generate(Dsa512(), TestRand(1));
  DsaPrivateKey bob = DsaPrivateKey::Generate(Dsa512(), TestRand(2));
  DsaPrivateKey mallory = DsaPrivateKey::Generate(Dsa512(), TestRand(3));

  auto dev = std::make_shared<MemBlockDevice>(4096, 4096);
  auto fs = Ffs::Format(dev, FfsFormatOptions{256});
  ASSERT_TRUE(fs.ok());
  auto vfs = std::make_shared<FfsVfs>(std::move(fs).value());
  ASSERT_TRUE(WriteFileAt(*vfs, "/secret.txt", "for bob only").ok());
  InodeAttr file = ResolvePath(*vfs, "/secret.txt").value();

  DiscfsServerConfig config;
  config.server_key = admin;
  config.rand_bytes = TestRand(99);
  auto host = DiscfsHost::Start(vfs, std::move(config));
  ASSERT_TRUE(host.ok());

  CredentialOptions ro;
  ro.permissions = "R";
  std::string bob_cred =
      IssueCredential(admin, bob.public_key(), HandleString(file.inode), ro)
          .value();

  // Mallory connects with HER key but submits BOB's credential.
  ChannelIdentity mallory_id{mallory, TestRand(20)};
  auto client = DiscfsClient::Connect("127.0.0.1", (*host)->port(),
                                      mallory_id, admin.public_key());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->SubmitCredential(bob_cred).ok());
  NfsFh fh{file.inode, file.generation};
  auto read = (*client)->nfs().Read(fh, 0, 100);
  EXPECT_EQ(read.status().code(), StatusCode::kPermissionDenied);
  (*client)->Close();
}

// Submitting garbage credentials must not wedge or corrupt the session.
TEST(DiscfsSecurity, MalformedCredentialFuzz) {
  DsaPrivateKey admin = DsaPrivateKey::Generate(Dsa512(), TestRand(1));
  DsaPrivateKey bob = DsaPrivateKey::Generate(Dsa512(), TestRand(2));
  auto dev = std::make_shared<MemBlockDevice>(4096, 4096);
  auto fs = Ffs::Format(dev, FfsFormatOptions{256});
  ASSERT_TRUE(fs.ok());
  auto vfs = std::make_shared<FfsVfs>(std::move(fs).value());

  DiscfsServerConfig config;
  config.server_key = admin;
  config.rand_bytes = TestRand(99);
  auto host = DiscfsHost::Start(vfs, std::move(config));
  ASSERT_TRUE(host.ok());
  ChannelIdentity bob_id{bob, TestRand(20)};
  auto client = DiscfsClient::Connect("127.0.0.1", (*host)->port(), bob_id,
                                      admin.public_key());
  ASSERT_TRUE(client.ok());

  // A valid credential, then mutations of it.
  CredentialOptions ro;
  ro.permissions = "R";
  std::string valid =
      IssueCredential(admin, bob.public_key(), "1", ro).value();

  Prng prng(7);
  for (int i = 0; i < 50; ++i) {
    std::string garbage = valid;
    // Random splice: delete a chunk, flip characters, or truncate.
    switch (prng.NextBelow(3)) {
      case 0:
        garbage.resize(prng.NextBelow(garbage.size()));
        break;
      case 1: {
        size_t pos = prng.NextBelow(garbage.size());
        garbage[pos] = static_cast<char>(prng.NextBelow(256));
        break;
      }
      case 2: {
        size_t pos = prng.NextBelow(garbage.size() / 2);
        garbage.erase(pos, prng.NextBelow(40));
        break;
      }
    }
    auto result = (*client)->SubmitCredential(garbage);
    // Either rejected, or (rare) the mutation left a valid credential —
    // but it must never crash, and the connection must stay usable:
    auto ping = (*client)->ServerInfo();
    ASSERT_TRUE(ping.ok()) << "connection wedged after fuzz input " << i;
    (void)result;
  }
  // The genuine credential still works afterwards.
  ASSERT_TRUE((*client)->SubmitCredential(valid).ok());
  (*client)->Close();
}

// EffectiveMask and telemetry plumbing.
TEST(DiscfsServerUnit, EffectiveMaskAndTelemetry) {
  DsaPrivateKey admin = DsaPrivateKey::Generate(Dsa512(), TestRand(1));
  DsaPrivateKey bob = DsaPrivateKey::Generate(Dsa512(), TestRand(2));
  auto dev = std::make_shared<MemBlockDevice>(4096, 4096);
  auto fs = Ffs::Format(dev, FfsFormatOptions{256});
  ASSERT_TRUE(fs.ok());
  auto vfs = std::make_shared<FfsVfs>(std::move(fs).value());

  DiscfsServerConfig config;
  config.server_key = admin;
  config.rand_bytes = TestRand(99);
  auto server = DiscfsServer::Create(vfs, std::move(config));
  ASSERT_TRUE(server.ok());

  std::string bob_principal = bob.public_key().ToKeyNoteString();
  EXPECT_EQ((*server)->EffectiveMask(bob_principal, 7), 0u);

  CredentialOptions rw;
  rw.permissions = "RW";
  ASSERT_TRUE((*server)
                  ->SubmitCredential(IssueCredential(admin, bob.public_key(),
                                                     "7", rw)
                                         .value())
                  .ok());
  EXPECT_EQ((*server)->EffectiveMask(bob_principal, 7), 6u);   // RW
  EXPECT_EQ((*server)->EffectiveMask(bob_principal, 8), 0u);   // other handle

  EXPECT_GT((*server)->counters().keynote_queries.load(), 0u);
  (*server)->ResetTelemetry();
  EXPECT_EQ((*server)->counters().keynote_queries.load(), 0u);
  // Cached entries survive the telemetry reset.
  EXPECT_EQ((*server)->EffectiveMask(bob_principal, 7), 6u);
  EXPECT_EQ((*server)->stats_snapshot().cache.hits, 1u);
}

}  // namespace
}  // namespace discfs
