// FFS — an inode-based local filesystem over a BlockDevice, standing in for
// OpenBSD's Fast File System in the paper's stack. It serves two roles:
//   1. the storage substrate under the NFS/DisCFS servers, and
//   2. the "FFS" baseline measured in the paper's Figures 7-12.
//
// On-disk layout (block size fixed at format time, default 4096):
//   block 0:                superblock
//   blocks [ibm, ibm+n):    inode bitmap
//   blocks [dbm, dbm+m):    data bitmap (covers the data region)
//   blocks [itab, itab+k):  inode table (128-byte inodes)
//   blocks [data, end):     data blocks
//
// Files use 10 direct block pointers, one single-indirect and one
// double-indirect block (ext2-style). Directories are arrays of fixed
// 64-byte entries. Every inode carries a generation number, bumped on
// reuse, so NFS file handles (inode, generation) never resurrect — the
// handle scheme §5 of the paper borrows from 4.4BSD.
//
// Concurrency contract (since the block-cache re-layering): Ffs sits on a
// write-back BlockCache and may be called from many threads as long as the
// caller serializes per-object access the way NfsServer does — namespace
// mutations (Create/Mkdir/Symlink/Link/Remove/Rmdir/Rename) exclusive
// against everything, per-inode writes (Write/SetAttr) exclusive per inode,
// reads shared. Under that contract all shared internal state is safe:
// sub-block updates go through the cache's atomic Modify, allocation state
// (bitmaps, superblock counters) is serialized by an internal mutex, and
// the inode cache is sharded + write-through. Check() requires a quiesced
// volume. Mounting with the cache disabled (cache.capacity_blocks = 0) is
// single-threaded only.
#ifndef DISCFS_SRC_FFS_FFS_H_
#define DISCFS_SRC_FFS_FFS_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/blockdev/block_cache.h"
#include "src/blockdev/blockdev.h"
#include "src/util/status.h"

namespace discfs {

using InodeNum = uint32_t;

enum class FileType : uint8_t {
  kFree = 0,
  kRegular = 1,
  kDirectory = 2,
  kSymlink = 3,
};

struct InodeAttr {
  InodeNum inode = 0;
  uint32_t generation = 0;
  FileType type = FileType::kFree;
  uint32_t mode = 0;  // unix permission bits (low 12 bits)
  uint32_t uid = 0;
  uint32_t gid = 0;
  uint32_t nlink = 0;
  uint64_t size = 0;
  int64_t atime = 0;
  int64_t mtime = 0;
  int64_t ctime = 0;
};

struct DirEntry {
  std::string name;
  InodeNum inode;
  FileType type;
};

struct SetAttrRequest {
  std::optional<uint32_t> mode;
  std::optional<uint32_t> uid;
  std::optional<uint32_t> gid;
  std::optional<uint64_t> size;  // truncate/extend
  std::optional<int64_t> atime;
  std::optional<int64_t> mtime;
};

struct StatFsInfo {
  uint32_t block_size = 0;
  uint64_t total_blocks = 0;
  uint64_t free_blocks = 0;
  uint32_t total_inodes = 0;
  uint32_t free_inodes = 0;
};

struct FfsMountOptions {
  // Block cache between Ffs and the device. `cache.capacity_blocks = 0`
  // disables caching entirely — the uncached seed path, kept for the
  // benchmark baseline; only safe single-threaded.
  BlockCacheOptions cache;
  // Bound on the in-memory inode cache (write-through, sharded);
  // 0 disables it.
  size_t inode_cache_entries = 1024;
};

struct FfsFormatOptions {
  FfsFormatOptions() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): FfsFormatOptions{n} is
  // the established "format with n inodes" shorthand.
  FfsFormatOptions(uint32_t inodes) : inode_count(inodes) {}

  uint32_t inode_count = 4096;
  FfsMountOptions mount;
};

// fsck-style consistency report; `errors` empty means the volume is clean.
struct FsckReport {
  std::vector<std::string> errors;
  uint64_t files = 0;
  uint64_t directories = 0;
  uint64_t used_blocks = 0;
  bool clean() const { return errors.empty(); }
};

class Ffs {
 public:
  // 64-byte dir entry minus 4 (inode) + 1 (type) + 1 (name length).
  static constexpr size_t kMaxNameLen = 58;

  ~Ffs();  // flushes the block cache (Superblock is incomplete here)

  // Formats the device and mounts the fresh volume.
  static Result<std::unique_ptr<Ffs>> Format(
      std::shared_ptr<BlockDevice> device, const FfsFormatOptions& options);

  // Mounts an existing volume (validates the superblock).
  static Result<std::unique_ptr<Ffs>> Mount(
      std::shared_ptr<BlockDevice> device,
      const FfsMountOptions& options = {});

  InodeNum root() const { return root_inode_; }

  Result<InodeAttr> GetAttr(InodeNum inode);
  Status SetAttr(InodeNum inode, const SetAttrRequest& request);

  Result<InodeAttr> Lookup(InodeNum dir, const std::string& name);

  Result<InodeAttr> Create(InodeNum dir, const std::string& name,
                           uint32_t mode);
  Result<InodeAttr> Mkdir(InodeNum dir, const std::string& name,
                          uint32_t mode);
  Result<InodeAttr> Symlink(InodeNum dir, const std::string& name,
                            const std::string& target);
  Result<std::string> ReadLink(InodeNum inode);
  Status Link(InodeNum dir, const std::string& name, InodeNum target);

  Status Remove(InodeNum dir, const std::string& name);  // files & symlinks
  Status Rmdir(InodeNum dir, const std::string& name);   // empty dirs only
  Status Rename(InodeNum from_dir, const std::string& from_name,
                InodeNum to_dir, const std::string& to_name);

  Result<size_t> Read(InodeNum inode, uint64_t offset, size_t len,
                      uint8_t* out);
  // Extends the file as needed; returns bytes written (== len on success).
  Result<size_t> Write(InodeNum inode, uint64_t offset, const uint8_t* data,
                       size_t len);

  Result<std::vector<DirEntry>> ReadDir(InodeNum dir);

  Result<StatFsInfo> StatFs();

  // Durability barrier: flushes every dirty cached block to the device.
  Status Sync();

  // The write-back cache between Ffs and the device, or nullptr when
  // mounted uncached. Exposed for stats and crash-simulation tests.
  BlockCache* block_cache() const { return cache_; }

  // Full-volume consistency check (reachability, bitmaps, link counts).
  Result<FsckReport> Check();

  // Current time source for inode timestamps (seconds); tests may override.
  void SetTimeSource(std::function<int64_t()> now) { now_ = std::move(now); }

 private:
  struct Superblock;
  struct DiskInode;
  struct InodeCache;

  Ffs(std::shared_ptr<BlockDevice> device, const FfsMountOptions& options);

  Status LoadSuperblock();
  // Requires alloc_mu_ held (or a single-threaded mount/format path).
  Status WriteSuperblock();

  // Atomic read-modify-write of one block: `fn` mutates the cached copy
  // under the cache shard lock. Uncached mounts fall back to
  // read+mutate+write (hence single-threaded only).
  Status ModifyBlock(uint64_t block, const std::function<void(uint8_t*)>& fn);

  Result<DiskInode> ReadInode(InodeNum inode);
  Status WriteInode(InodeNum inode, const DiskInode& node);

  Result<InodeNum> AllocInode(FileType type, uint32_t mode);
  Status FreeInode(InodeNum inode);
  Result<uint64_t> AllocBlock();
  Status FreeBlock(uint64_t block);

  // Maps a file block index to a device block, optionally allocating the
  // path (direct / indirect / double-indirect).
  Result<uint64_t> BMap(DiskInode& node, uint64_t file_block, bool allocate,
                        bool& dirty);

  Status FreeAllBlocks(DiskInode& node);
  Status TruncateTo(InodeNum inode, DiskInode& node, uint64_t new_size);

  Result<std::optional<std::pair<uint32_t, DirEntry>>> FindEntry(
      const DiskInode& dir_node, const std::string& name);
  Status AddEntry(InodeNum dir, DiskInode& dir_node, const std::string& name,
                  InodeNum target, FileType type);
  Status RemoveEntrySlot(DiskInode& dir_node, uint32_t slot);
  Result<bool> DirIsEmpty(const DiskInode& dir_node);

  Result<size_t> ReadInternal(DiskInode& node, uint64_t offset, size_t len,
                              uint8_t* out);
  Result<size_t> WriteInternal(InodeNum inode, DiskInode& node,
                               uint64_t offset, const uint8_t* data,
                               size_t len);

  InodeAttr ToAttr(InodeNum inode, const DiskInode& node) const;

  // Bitmap helpers: `bitmap_start` in blocks, index into the bitmap.
  Result<bool> BitmapGet(uint64_t bitmap_start, uint64_t index);
  Status BitmapSet(uint64_t bitmap_start, uint64_t index, bool value);
  Result<std::optional<uint64_t>> BitmapFindFree(uint64_t bitmap_start,
                                                 uint64_t count);

  // `dev_` is what all I/O goes through: the BlockCache when enabled
  // (cache_ points into it), otherwise the raw device.
  std::shared_ptr<BlockDevice> dev_;
  BlockCache* cache_ = nullptr;
  std::function<int64_t()> now_;
  std::unique_ptr<Superblock> sb_;
  // Serializes allocation state: bitmap find/set, superblock counters and
  // cursors, and StatFs.
  std::mutex alloc_mu_;
  std::unique_ptr<InodeCache> icache_;
  InodeNum root_inode_ = 1;
};

}  // namespace discfs

#endif  // DISCFS_SRC_FFS_FFS_H_
