#include "src/discfs/policy_cache.h"

namespace discfs {

std::optional<uint32_t> PolicyCache::Get(const std::string& key_id,
                                         uint32_t inode, int64_t now) {
  if (capacity_ == 0) {
    ++stats_.misses;
    return std::nullopt;
  }
  auto it = entries_.find({key_id, inode});
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (now >= it->second.expires_at) {
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
    ++stats_.misses;
    return std::nullopt;
  }
  Touch(it->first, it->second);
  ++stats_.hits;
  return it->second.mask;
}

void PolicyCache::Put(const std::string& key_id, uint32_t inode,
                      uint32_t mask, int64_t now) {
  if (capacity_ == 0) {
    return;
  }
  Key key{key_id, inode};
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.mask = mask;
    it->second.expires_at = now + ttl_seconds_;
    Touch(key, it->second);
    return;
  }
  while (entries_.size() >= capacity_) {
    const Key& victim = lru_.back();
    entries_.erase(victim);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{mask, now + ttl_seconds_, lru_.begin()});
}

void PolicyCache::InvalidateAll() {
  stats_.invalidations += entries_.size();
  entries_.clear();
  lru_.clear();
}

void PolicyCache::Touch(const Key& key, Entry& entry) {
  lru_.erase(entry.lru_it);
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
}

}  // namespace discfs
