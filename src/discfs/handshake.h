// HandshakeReactor — non-blocking server handshakes on the shared event
// loop (PR 10 handshake hardening).
//
// The previous host ran SecureChannel::ServerHandshake on a pool worker:
// two blocking round trips plus DSA math per connection. A slowloris peer
// that connects and then trickles (or never sends) its ClientHello would
// park one worker per socket until the pool — the same pool that executes
// every RPC — was fully occupied by idle handshakes.
//
// Here a half-open connection costs no thread at all: the socket sits on
// the EventLoop, each complete handshake frame is handed to the sans-io
// ServerHandshakeMachine on the pool (CPU work only — the worker never
// blocks on the peer), and responses go back through the transport's
// buffered non-blocking sender. Two hard bounds protect the host:
//
//  - timeout_ms: a per-connection deadline armed at accept; a handshake
//    that has not completed when it fires is torn down.
//  - max_half_open: at the cap, the oldest half-open handshake is evicted
//    to admit the new arrival (newest-wins, so a flood cannot lock out
//    fresh legitimate clients behind its own stale sockets).
//
// Threading: transport I/O happens only on the poller thread while the
// entry is not `busy`; setting `busy` (poller, before the pool submit)
// transfers the transport to the worker until it clears the flag. The
// reactor mutex is never held across loop->Unregister (which waits out
// in-flight dispatch — dispatch callbacks take the same mutex).
#ifndef DISCFS_SRC_DISCFS_HANDSHAKE_H_
#define DISCFS_SRC_DISCFS_HANDSHAKE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/net/event_loop.h"
#include "src/net/transport.h"
#include "src/securechannel/channel.h"
#include "src/util/worker_pool.h"

namespace discfs {

class HandshakeReactor {
 public:
  struct Options {
    EventLoop* loop = nullptr;
    WorkerPool* pool = nullptr;
    ChannelIdentity identity;
    // Per-connection budget from Begin() to an established channel.
    uint64_t timeout_ms = 5000;
    // Concurrent half-open handshakes; at the cap the oldest is evicted.
    size_t max_half_open = 256;
  };

  struct Stats {
    uint64_t started = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;     // bad frames, crypto failures, peer vanished
    uint64_t timed_out = 0;  // exceeded timeout_ms
    uint64_t evicted = 0;    // displaced by a newer arrival at the cap
    size_t half_open = 0;    // currently in flight
  };

  // Called off a pool worker with each successfully established channel.
  // Not called after Shutdown() begins (late finishers are dropped).
  using EstablishedFn = std::function<void(std::unique_ptr<SecureChannel>)>;

  HandshakeReactor(Options options, EstablishedFn on_established);
  ~HandshakeReactor();  // implies Shutdown()

  HandshakeReactor(const HandshakeReactor&) = delete;
  HandshakeReactor& operator=(const HandshakeReactor&) = delete;

  // Takes ownership of a freshly accepted transport and drives its
  // handshake to completion, timeout, or eviction. Any-thread-safe (the
  // host calls it from the accept thread). Drops the transport once
  // Shutdown() has run.
  void Begin(std::unique_ptr<MsgStream> transport);

  // Tears down every half-open handshake and rejects future Begins. Safe
  // to call while workers are mid-step: they observe the flag and retire
  // their entry instead of delivering it. Must run before the EventLoop
  // and WorkerPool are destroyed.
  void Shutdown();

  Stats stats() const;
  size_t half_open() const;

 private:
  struct Core;
  struct Entry;

  // Static steps keep a shared_ptr<Core> so callbacks scheduled on the
  // loop or pool stay valid however late they fire.
  static void OnEvent(const std::shared_ptr<Core>& core, int fd,
                      uint32_t events);
  static void PumpLocked(const std::shared_ptr<Core>& core, int fd,
                         std::unique_lock<std::mutex>& lock);
  static void RunStep(const std::shared_ptr<Core>& core,
                      const std::shared_ptr<Entry>& entry, Bytes message);
  static void OnTimeout(const std::shared_ptr<Core>& core, int fd,
                        uint64_t id);
  static void Retire(const std::shared_ptr<Core>& core,
                     const std::shared_ptr<Entry>& entry,
                     std::unique_lock<std::mutex> lock);

  std::shared_ptr<Core> core_;
};

}  // namespace discfs

#endif  // DISCFS_SRC_DISCFS_HANDSHAKE_H_
