// DisCFS control protocol: the procedures the paper adds next to NFS
// (§5): credential submission over RPC, credential-returning CREATE/MKDIR,
// revocation, and handle resolution (credentials name files by handle; the
// client needs the live (inode, generation) pair).
#ifndef DISCFS_SRC_DISCFS_PROTOCOL_H_
#define DISCFS_SRC_DISCFS_PROTOCOL_H_

#include <cstdint>

namespace discfs {

// Private RPC program number for the DisCFS extensions (NFS keeps 100003 on
// the same channel).
inline constexpr uint32_t kDiscfsProgram = 200390;

enum class DiscfsProc : uint32_t {
  kSubmitCredential = 1,   // credential text -> credential id
  kRemoveCredential = 2,   // credential id -> ()           (revocation)
  kRevokeKey = 3,          // key (KeyNote string) -> ()    (revocation)
  kCreateReturnsCred = 4,  // dir fh, name, mode -> fattr + credential text
  kMkdirReturnsCred = 5,   // dir fh, name, mode -> fattr + credential text
  kResolveHandle = 6,      // inode number -> fattr (policy-checked)
  kServerInfo = 7,         // () -> server public key + stats
  // n, credential texts -> n × (status code, id-or-error). Verification
  // fans out across the server's worker pool; one lock installs all.
  kSubmitCredentialBatch = 8,
  // Lockbox sharing (src/lockbox). Each procedure runs the same KeyNote
  // admission check as the NFS operation it shadows, so coherence-
  // propagated revocations deny lockbox fetches cluster-wide:
  //   kPutLockbox    needs W on the file (like WRITE)
  //   kGetLockbox    needs R on the file (like READ)
  //   kGrantAccess   needs R — a reader already holds the content key, so
  //                  adding a wrapped-key entry grants nothing the caller
  //                  could not hand over out of band
  //   kRevokeAccess  needs W, or the caller owns the lockbox record
  kPutLockbox = 9,     // fh, sealed, chunk_size, payload, entries -> record
  kGetLockbox = 10,    // fh -> record + payload
  kGrantAccess = 11,   // fh, recipient, wrapped key -> ()
  kRevokeAccess = 12,  // fh, recipient -> ()
  // Live stats scrape (src/obs): u32 format -> exposition text.
  // format 0 = Prometheus text, 1 = JSON. Scraped by tools/discfs_stats.
  kServerStats = 13,
};

// Upper bound on credentials per kSubmitCredentialBatch call (bounds the
// request size and the per-call verification burst).
inline constexpr uint32_t kMaxCredentialBatch = 1024;

// Upper bound on a kPutLockbox payload (bounds the request size).
inline constexpr uint32_t kMaxLockboxPayload = 1 << 24;

}  // namespace discfs

#endif  // DISCFS_SRC_DISCFS_PROTOCOL_H_
