// discfs-stats: scrape a running discfsd's metrics registry
// (DiscfsProc::kServerStats) and print the exposition to stdout.
//
// Usage:
//   discfs_stats [--host 127.0.0.1] [--port 20490] [--json]
//                [--key user.key] [--server-pub admin.pub]
//
// The scrape needs a secure channel like any other DisCFS RPC, but no
// credentials: with no --key an ephemeral DSA identity is generated, so
// pointing the tool at a server Just Works (pin the server with
// --server-pub when you care who you are scraping).
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "src/crypto/groups.h"
#include "src/crypto/sysrand.h"
#include "src/discfs/client.h"
#include "tools/keyio.h"

namespace discfs::tools {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: discfs_stats [--host H] [--port N] [--json] "
               "[--key user.key] [--server-pub admin.pub]\n");
  return 2;
}

int Run(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 20490;
  bool json = false;
  std::string key_path;
  std::string server_pub_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::exit(Usage());
      }
      return argv[++i];
    };
    if (arg == "--host") {
      host = value();
    } else if (arg == "--port") {
      port = static_cast<uint16_t>(std::atoi(value()));
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--key") {
      key_path = value();
    } else if (arg == "--server-pub") {
      server_pub_path = value();
    } else {
      return Usage();
    }
  }

  DsaPrivateKey key = [&] {
    if (!key_path.empty()) {
      auto loaded = LoadPrivateKey(key_path);
      if (!loaded.ok()) {
        std::fprintf(stderr, "key: %s\n",
                     loaded.status().ToString().c_str());
        std::exit(1);
      }
      return *loaded;
    }
    // Ephemeral identity: the scrape proc needs no credentials. Dsa1024
    // matches keygen's default — the handshake needs both ends in the
    // same group.
    return DsaPrivateKey::Generate(Dsa1024(),
                                   [](size_t n) { return SysRandomBytes(n); });
  }();
  std::optional<DsaPublicKey> server_pub;
  if (!server_pub_path.empty()) {
    auto pub = LoadPublicKey(server_pub_path);
    if (!pub.ok()) {
      std::fprintf(stderr, "server-pub: %s\n",
                   pub.status().ToString().c_str());
      return 1;
    }
    server_pub = *pub;
  }

  ChannelIdentity identity{key, [](size_t n) { return SysRandomBytes(n); }};
  auto client = DiscfsClient::Connect(host, port, identity, server_pub);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n", client.status().ToString().c_str());
    return 1;
  }
  auto text = (*client)->ServerStats(json);
  (*client)->Close();
  if (!text.ok()) {
    std::fprintf(stderr, "scrape: %s\n", text.status().ToString().c_str());
    return 1;
  }
  std::fputs(text->c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace discfs::tools

int main(int argc, char** argv) { return discfs::tools::Run(argc, argv); }
