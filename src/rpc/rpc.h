// Minimal SunRPC-style request/reply layer over any MsgStream, with
// pipelining on both ends.
//
// Call frame:   u32 xid | u32 type(0) | u32 prog | u32 proc | opaque args
// Reply frame:  u32 xid | u32 type(1) | u32 accept_status | opaque result
// accept_status 0 = success (result = procedure output), non-zero = error
// (result = UTF-8 error message; the status code is a StatusCode).
//
// Client side: RpcClient runs a receive-demux thread per connection and
// matches replies to calls by xid, so any number of calls can be in flight
// on one stream (CallAsync); the blocking Call is a one-deep special case.
//
// Server side: RpcDispatcher::ServeConnection can hand decoded requests to
// a shared WorkerPool and write replies out of order under a per-connection
// write lock, so one slow procedure no longer head-of-line-blocks every
// other request on the same connection.
#ifndef DISCFS_SRC_RPC_RPC_H_
#define DISCFS_SRC_RPC_RPC_H_

#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/crypto/dsa.h"
#include "src/net/transport.h"
#include "src/util/status.h"
#include "src/util/worker_pool.h"

namespace discfs {

// Context passed to server handlers; carries the authenticated peer identity
// when the stream is a SecureChannel.
struct RpcContext {
  // Empty when the transport is unauthenticated (the CFS-NE baseline).
  std::optional<DsaPublicKey> peer_key;
};

class RpcClient {
 public:
  // Takes ownership of the stream (plain transport or secure channel) and
  // starts the receive-demux thread.
  explicit RpcClient(std::unique_ptr<MsgStream> stream);
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  // Blocking call; returns the procedure result or the server-side error.
  // Concurrent callers pipeline on the shared connection.
  Result<Bytes> Call(uint32_t prog, uint32_t proc, const Bytes& args);

  // Starts a call and returns immediately; the future resolves when the
  // matching reply arrives (or with the connection error if the stream
  // breaks or Close is called first — in-flight calls fail fast, they
  // never hang).
  std::future<Result<Bytes>> CallAsync(uint32_t prog, uint32_t proc,
                                       const Bytes& args);

  // Fails all in-flight calls, makes future calls fail immediately, and
  // tears down the stream. Safe to call from any thread, including while
  // calls are blocked.
  void Close();

  // Calls awaiting a reply right now (diagnostics).
  size_t inflight() const;

 private:
  void DemuxLoop();
  // Marks the connection broken (first status wins) and fails every
  // pending call with it.
  void FailAllPending(const Status& status);

  std::unique_ptr<MsgStream> stream_;
  std::mutex send_mu_;  // serializes call frames onto the stream

  mutable std::mutex pending_mu_;
  uint32_t next_xid_ = 1;                                    // guarded by pending_mu_
  std::unordered_map<uint32_t, std::promise<Result<Bytes>>> pending_;
  bool broken_ = false;    // guarded by pending_mu_
  Status broken_status_;   // guarded by pending_mu_

  std::thread demux_thread_;
};

// How ServeConnection schedules handler execution.
struct ServeOptions {
  // Shared execution pool. When null, requests are handled inline on the
  // connection thread (the pre-pipelining behavior).
  WorkerPool* pool = nullptr;
  // Backpressure: the connection stops reading new requests while this many
  // are being executed or awaiting their reply write.
  size_t max_inflight_per_conn = 64;
};

class RpcDispatcher {
 public:
  using Handler =
      std::function<Result<Bytes>(const Bytes& args, const RpcContext& ctx)>;

  void Register(uint32_t prog, uint32_t proc, Handler handler);

  // Serves one request from the stream (recv, dispatch, reply). Returns
  // UNAVAILABLE when the peer disconnects.
  Status ServeOne(MsgStream& stream, const RpcContext& ctx) const;

  // Serves until the peer disconnects, one request at a time.
  void ServeConnection(MsgStream& stream, const RpcContext& ctx) const;

  // Pipelined variant: decodes requests on this thread, executes them on
  // options.pool (inline when null), and writes replies as they complete —
  // out of order — under a per-connection write lock. Returns only after
  // every accepted request has been answered (or its reply write failed).
  void ServeConnection(MsgStream& stream, const RpcContext& ctx,
                       const ServeOptions& options) const;

 private:
  Result<Bytes> Dispatch(uint32_t prog, uint32_t proc, const Bytes& args,
                         const RpcContext& ctx) const;

  std::map<std::pair<uint32_t, uint32_t>, Handler> handlers_;
};

}  // namespace discfs

#endif  // DISCFS_SRC_RPC_RPC_H_
