// NFS client: typed wrappers around the RPC procedures. Used directly by the
// CFS-NE baseline and wrapped by DiscfsClient.
#ifndef DISCFS_SRC_NFS_NFS_CLIENT_H_
#define DISCFS_SRC_NFS_NFS_CLIENT_H_

#include <memory>

#include "src/nfs/protocol.h"
#include "src/rpc/rpc.h"

namespace discfs {

class NfsClient {
 public:
  // Shares the RPC connection (DisCFS multiplexes its credential program on
  // the same channel).
  explicit NfsClient(std::shared_ptr<RpcClient> rpc) : rpc_(std::move(rpc)) {}

  Status Null();
  Result<NfsFattr> GetRoot();
  Result<NfsFattr> GetAttr(const NfsFh& fh);
  Result<NfsFattr> SetAttr(const NfsFh& fh, const SetAttrRequest& req);
  Result<NfsFattr> Lookup(const NfsFh& dir, const std::string& name);
  Result<Bytes> Read(const NfsFh& fh, uint64_t offset, uint32_t count);
  Result<NfsFattr> Write(const NfsFh& fh, uint64_t offset, const Bytes& data);
  Result<NfsFattr> Create(const NfsFh& dir, const std::string& name,
                          uint32_t mode);
  Status Remove(const NfsFh& dir, const std::string& name);
  Status Rename(const NfsFh& from_dir, const std::string& from_name,
                const NfsFh& to_dir, const std::string& to_name);
  Status Link(const NfsFh& dir, const std::string& name, const NfsFh& target);
  Result<NfsFattr> Symlink(const NfsFh& dir, const std::string& name,
                           const std::string& target);
  Result<std::string> ReadLink(const NfsFh& fh);
  Result<NfsFattr> Mkdir(const NfsFh& dir, const std::string& name,
                         uint32_t mode);
  Status Rmdir(const NfsFh& dir, const std::string& name);
  Result<std::vector<NfsDirEntry>> ReadDir(const NfsFh& dir);
  Result<NfsStatFs> StatFs();

  RpcClient* rpc() { return rpc_.get(); }

 private:
  Result<Bytes> Call(NfsProc proc, const Bytes& args);

  std::shared_ptr<RpcClient> rpc_;
};

}  // namespace discfs

#endif  // DISCFS_SRC_NFS_NFS_CLIENT_H_
