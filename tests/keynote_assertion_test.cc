#include "src/keynote/assertion.h"

#include <gtest/gtest.h>

#include "src/crypto/groups.h"
#include "src/util/prng.h"

namespace discfs::keynote {
namespace {

std::function<Bytes(size_t)> TestRand(uint64_t seed) {
  auto prng = std::make_shared<Prng>(seed);
  return [prng](size_t n) { return prng->NextBytes(n); };
}

class AssertionTest : public ::testing::Test {
 protected:
  AssertionTest()
      : admin_(DsaPrivateKey::Generate(Dsa512(), TestRand(1))),
        bob_(DsaPrivateKey::Generate(Dsa512(), TestRand(2))) {}

  std::string AdminKey() const { return admin_.public_key().ToKeyNoteString(); }
  std::string BobKey() const { return bob_.public_key().ToKeyNoteString(); }

  DsaPrivateKey admin_;
  DsaPrivateKey bob_;
};

TEST_F(AssertionTest, ParsePolicyAssertion) {
  std::string text =
      "KeyNote-Version: 2\n"
      "Authorizer: \"POLICY\"\n"
      "Licensees: \"" + AdminKey() + "\"\n"
      "Conditions: app_domain == \"DisCFS\" -> \"RWX\";\n";
  auto a = Assertion::Parse(text);
  ASSERT_TRUE(a.ok()) << a.status();
  EXPECT_TRUE(a->is_policy());
  EXPECT_FALSE(a->has_signature());
  ASSERT_EQ(a->licensee_principals().size(), 1u);
  EXPECT_EQ(a->licensee_principals()[0], AdminKey());
}

TEST_F(AssertionTest, ParseWithLocalConstants) {
  std::string text =
      "Local-Constants: ADMIN = \"" + AdminKey() + "\"\n"
      "Authorizer: \"POLICY\"\n"
      "Licensees: ADMIN\n";
  auto a = Assertion::Parse(text);
  ASSERT_TRUE(a.ok()) << a.status();
  EXPECT_EQ(a->licensee_principals()[0], AdminKey());
}

TEST_F(AssertionTest, ContinuationLines) {
  std::string text =
      "Authorizer: \"POLICY\"\n"
      "Licensees:\n"
      "  \"" + AdminKey() + "\"\n"
      "Conditions: app_domain == \"DisCFS\"\n"
      "  -> \"RWX\";\n";
  auto a = Assertion::Parse(text);
  ASSERT_TRUE(a.ok()) << a.status();
  EXPECT_EQ(a->licensee_principals().size(), 1u);
}

TEST_F(AssertionTest, CommentPreserved) {
  std::string text =
      "Authorizer: \"POLICY\"\n"
      "Licensees: \"k\"\n"
      "Comment: testdir\n";
  auto a = Assertion::Parse(text);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->comment(), "testdir");
}

TEST_F(AssertionTest, FieldNamesCaseInsensitive) {
  std::string text =
      "AUTHORIZER: \"POLICY\"\n"
      "licensees: \"k\"\n";
  EXPECT_TRUE(Assertion::Parse(text).ok());
}

TEST_F(AssertionTest, RejectsUnknownField) {
  EXPECT_FALSE(Assertion::Parse("Authorizer: \"POLICY\"\nBogus: x\n").ok());
}

TEST_F(AssertionTest, RejectsMissingAuthorizer) {
  EXPECT_FALSE(Assertion::Parse("Licensees: \"k\"\n").ok());
}

TEST_F(AssertionTest, RejectsVersionNotFirst) {
  std::string text =
      "Authorizer: \"POLICY\"\n"
      "KeyNote-Version: 2\n";
  EXPECT_FALSE(Assertion::Parse(text).ok());
}

TEST_F(AssertionTest, RejectsUnsupportedVersion) {
  EXPECT_FALSE(
      Assertion::Parse("KeyNote-Version: 3\nAuthorizer: \"POLICY\"\n").ok());
}

TEST_F(AssertionTest, RejectsEmpty) {
  EXPECT_FALSE(Assertion::Parse("").ok());
  EXPECT_FALSE(Assertion::Parse("\n\n").ok());
}

TEST_F(AssertionTest, BuilderSignVerifyRoundTrip) {
  auto text = AssertionBuilder()
                  .SetAuthorizer(AdminKey())
                  .SetLicensees("\"" + BobKey() + "\"")
                  .SetConditions(
                      "(app_domain == \"DisCFS\") && (HANDLE == \"666240\") "
                      "-> \"RWX\";")
                  .SetComment("testdir")
                  .Sign(admin_, SignatureAlgorithm::kDsaSha1);
  ASSERT_TRUE(text.ok()) << text.status();

  auto a = Assertion::Parse(*text);
  ASSERT_TRUE(a.ok()) << a.status();
  EXPECT_TRUE(a->has_signature());
  EXPECT_FALSE(a->is_policy());
  EXPECT_EQ(a->authorizer(), AdminKey());
  EXPECT_EQ(a->comment(), "testdir");
  EXPECT_TRUE(a->VerifySignature().ok()) << a->VerifySignature();
}

TEST_F(AssertionTest, Sha256SignatureVariant) {
  auto text = AssertionBuilder()
                  .SetAuthorizer(AdminKey())
                  .SetLicensees("\"" + BobKey() + "\"")
                  .Sign(admin_, SignatureAlgorithm::kDsaSha256);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("sig-dsa-sha256-hex:"), std::string::npos);
  auto a = Assertion::Parse(*text);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->VerifySignature().ok());
}

TEST_F(AssertionTest, SignRejectsMismatchedKey) {
  auto text = AssertionBuilder()
                  .SetAuthorizer(AdminKey())
                  .SetLicensees("\"" + BobKey() + "\"")
                  .Sign(bob_, SignatureAlgorithm::kDsaSha1);
  EXPECT_FALSE(text.ok());
}

TEST_F(AssertionTest, TamperedBodyFailsVerification) {
  auto text = AssertionBuilder()
                  .SetAuthorizer(AdminKey())
                  .SetLicensees("\"" + BobKey() + "\"")
                  .SetConditions("HANDLE == \"1\" -> \"R\";")
                  .Sign(admin_, SignatureAlgorithm::kDsaSha1);
  ASSERT_TRUE(text.ok());
  // Privilege escalation attempt: rewrite "R" to "RWX".
  std::string tampered = *text;
  size_t pos = tampered.find("\"R\"");
  ASSERT_NE(pos, std::string::npos);
  tampered.replace(pos, 3, "\"RWX\"");
  auto a = Assertion::Parse(tampered);
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(a->VerifySignature().ok());
}

TEST_F(AssertionTest, TamperedSignatureFailsVerification) {
  auto text = AssertionBuilder()
                  .SetAuthorizer(AdminKey())
                  .SetLicensees("\"" + BobKey() + "\"")
                  .Sign(admin_, SignatureAlgorithm::kDsaSha1);
  ASSERT_TRUE(text.ok());
  std::string tampered = *text;
  size_t pos = tampered.rfind("\"\n");
  ASSERT_NE(pos, std::string::npos);
  char& digit = tampered[pos - 1];
  digit = (digit == '0') ? '1' : '0';
  auto a = Assertion::Parse(tampered);
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(a->VerifySignature().ok());
}

TEST_F(AssertionTest, SignatureMustBeLastField) {
  auto text = AssertionBuilder()
                  .SetAuthorizer(AdminKey())
                  .SetLicensees("\"" + BobKey() + "\"")
                  .Sign(admin_, SignatureAlgorithm::kDsaSha1);
  ASSERT_TRUE(text.ok());
  std::string moved = *text + "Comment: trailing\n";
  EXPECT_FALSE(Assertion::Parse(moved).ok());
}

TEST_F(AssertionTest, PolicyAssertionVerifyFails) {
  auto a = Assertion::Parse("Authorizer: \"POLICY\"\nLicensees: \"k\"\n");
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(a->VerifySignature().ok());
}

TEST_F(AssertionTest, IdIsStableAndUnique) {
  auto t1 = AssertionBuilder()
                .SetAuthorizer(AdminKey())
                .SetLicensees("\"" + BobKey() + "\"")
                .SetComment("one")
                .Sign(admin_, SignatureAlgorithm::kDsaSha1);
  auto t2 = AssertionBuilder()
                .SetAuthorizer(AdminKey())
                .SetLicensees("\"" + BobKey() + "\"")
                .SetComment("two")
                .Sign(admin_, SignatureAlgorithm::kDsaSha1);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  auto a1 = Assertion::Parse(*t1);
  auto a1b = Assertion::Parse(*t1);
  auto a2 = Assertion::Parse(*t2);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a1b.ok());
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a1->Id(), a1b->Id());
  EXPECT_NE(a1->Id(), a2->Id());
}

// A transport that re-wraps lines, changes field-name case, or reorders
// fields produces different bytes carrying identical semantics and the
// same signature. Canonicalization must make the two equivalent wherever
// identity matters: Id() (revocation would otherwise miss the variant)
// and the verified-signature cache (a resubmitted variant should not pay
// the DSA verify again).
TEST_F(AssertionTest, ReserializedCredentialSharesIdAndCacheKey) {
  auto text = AssertionBuilder()
                  .SetAuthorizer(AdminKey())
                  .SetLicensees("\"" + BobKey() + "\"")
                  .SetConditions("app_domain == \"DisCFS\" -> \"R\";")
                  .SetComment("equiv")
                  .Sign(admin_, SignatureAlgorithm::kDsaSha1);
  ASSERT_TRUE(text.ok()) << text.status();
  size_t sig_pos = text->rfind("Signature:");
  ASSERT_NE(sig_pos, std::string::npos);
  std::string sig_line = text->substr(sig_pos);
  // Same content, hostile serialization: shuffled field order, shouted
  // field names, re-wrapped continuation lines, extra whitespace.
  std::string variant =
      "keynote-version:   2\n"
      "AUTHORIZER: \"" + AdminKey() + "\"\n"
      "Comment: equiv\n"
      "Licensees:\n"
      "   \"" + BobKey() + "\"\n"
      "CONDITIONS: app_domain    == \"DisCFS\"\n"
      "    -> \"R\";\n" +
      sig_line;

  auto a = Assertion::Parse(*text);
  auto b = Assertion::Parse(variant);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ASSERT_NE(a->text(), b->text());
  EXPECT_EQ(a->canonical_text(), b->canonical_text());
  EXPECT_EQ(a->Id(), b->Id());

  // Cold, the variant must FAIL: its raw bytes are not what was signed,
  // and only the cache (backed by a real verify of the original) may
  // vouch for the canonical equivalence.
  EXPECT_FALSE(b->VerifySignature().ok());
  VerifiedSignatureCache cache(64);
  EXPECT_FALSE(b->VerifySignature(&cache).ok());
  EXPECT_EQ(cache.stats().hits, 0u);

  // Warm the cache with the original; the variant now hits.
  ASSERT_TRUE(a->VerifySignature(&cache).ok());
  EXPECT_TRUE(b->VerifySignature(&cache).ok());
  EXPECT_EQ(cache.stats().hits, 1u);

  // Different semantics (comment changed) never share the canonical key.
  auto other = AssertionBuilder()
                   .SetAuthorizer(AdminKey())
                   .SetLicensees("\"" + BobKey() + "\"")
                   .SetConditions("app_domain == \"DisCFS\" -> \"R\";")
                   .SetComment("different")
                   .Sign(admin_, SignatureAlgorithm::kDsaSha1);
  ASSERT_TRUE(other.ok());
  auto c = Assertion::Parse(*other);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(c->Id(), a->Id());
  EXPECT_NE(c->canonical_text(), a->canonical_text());
}

TEST_F(AssertionTest, BuilderLocalConstantsResolve) {
  auto text = AssertionBuilder()
                  .AddLocalConstant("ME", AdminKey())
                  .AddLocalConstant("BOB", BobKey())
                  .SetAuthorizer("ME")
                  .SetLicensees("BOB")
                  .SetConditions("app_domain == \"DisCFS\" -> \"R\";")
                  .Sign(admin_, SignatureAlgorithm::kDsaSha1);
  ASSERT_TRUE(text.ok()) << text.status();
  auto a = Assertion::Parse(*text);
  ASSERT_TRUE(a.ok()) << a.status();
  EXPECT_EQ(a->authorizer(), AdminKey());
  EXPECT_EQ(a->licensee_principals()[0], BobKey());
  EXPECT_TRUE(a->VerifySignature().ok());
}

TEST_F(AssertionTest, ThresholdLicenseesParse) {
  std::string text =
      "Authorizer: \"POLICY\"\n"
      "Licensees: 2-of(\"k1\", \"k2\", \"k3\")\n";
  auto a = Assertion::Parse(text);
  ASSERT_TRUE(a.ok()) << a.status();
  EXPECT_EQ(a->licensee_principals().size(), 3u);
  EXPECT_EQ(a->licensees().kind, LicenseesNode::Kind::kThreshold);
  EXPECT_EQ(a->licensees().k, 2u);
}

TEST_F(AssertionTest, RejectsThresholdOutOfRange) {
  EXPECT_FALSE(Assertion::Parse("Authorizer: \"POLICY\"\n"
                                "Licensees: 4-of(\"a\",\"b\")\n")
                   .ok());
  EXPECT_FALSE(Assertion::Parse("Authorizer: \"POLICY\"\n"
                                "Licensees: 0-of(\"a\",\"b\")\n")
                   .ok());
}

}  // namespace
}  // namespace discfs::keynote
