// Revocation state (§4.1 of the paper): "revocation can be done by
// notifying the server about bad keys or credentials. If the credentials
// are relatively short-lived, the server need only remember such
// information for a short period of time."
//
// Entries therefore carry expiry times and are garbage-collected; the
// expected usage is that the revocation horizon matches the maximum
// credential lifetime.
#ifndef DISCFS_SRC_DISCFS_REVOCATION_H_
#define DISCFS_SRC_DISCFS_REVOCATION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/status.h"

namespace discfs {

class RevocationList {
 public:
  // horizon_seconds: how long entries are remembered (0 = forever).
  explicit RevocationList(int64_t horizon_seconds)
      : horizon_seconds_(horizon_seconds) {}

  void RevokeKey(const std::string& key_id, int64_t now);
  void RevokeCredential(const std::string& credential_id, int64_t now);

  bool IsKeyRevoked(const std::string& key_id, int64_t now) const;
  bool IsCredentialRevoked(const std::string& credential_id,
                           int64_t now) const;

  // Drops expired entries; called opportunistically by the server.
  void Expire(int64_t now);

  size_t size() const { return keys_.size() + credentials_.size(); }

  // --- Anti-entropy support (PR 6) ---
  //
  // Digests cover the sorted entry *ids only*: revoked_at timestamps are
  // stamped by whichever node applied the revocation, so two lists that
  // agree on membership can disagree on timestamps forever — hashing them
  // would keep digests unequal and sync from ever converging. Merging
  // keeps the max timestamp per id (the safe direction: a revocation can
  // only be remembered longer, never forgotten sooner).

  // SHA-256 over the sorted unexpired entry ids, type-tagged so a key id
  // and a credential id never collide.
  Bytes Digest(int64_t now) const;

  // XDR-serializes the unexpired entries for shipping to a peer.
  Bytes SerializeEntries(int64_t now) const;

  struct MergeResult {
    // Ids newly learned from the peer (absent locally and unexpired);
    // timestamp-only extensions of known entries are not listed.
    std::vector<std::string> new_keys;
    std::vector<std::string> new_credentials;
  };

  // Merges a peer's SerializeEntries blob: unknown unexpired ids are
  // added, known ids keep the later revoked_at.
  Result<MergeResult> MergeSerialized(const Bytes& blob, int64_t now);

 private:
  bool Contains(const std::map<std::string, int64_t>& set,
                const std::string& id, int64_t now) const;

  int64_t horizon_seconds_;
  std::map<std::string, int64_t> keys_;         // id -> revoked_at
  std::map<std::string, int64_t> credentials_;  // id -> revoked_at
};

}  // namespace discfs

#endif  // DISCFS_SRC_DISCFS_REVOCATION_H_
