// DiscfsClient — the cattach-style client (§5): connects over the secure
// channel (establishing the identity binding), attaches the remote root,
// submits credentials, and performs NFS file I/O plus the DisCFS-specific
// procedures.
#ifndef DISCFS_SRC_DISCFS_CLIENT_H_
#define DISCFS_SRC_DISCFS_CLIENT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/crypto/dsa.h"
#include "src/discfs/protocol.h"
#include "src/nfs/nfs_client.h"
#include "src/securechannel/channel.h"
#include "src/wire/lockbox.h"

namespace discfs {

struct DiscfsServerInfo {
  std::string server_principal;
  uint64_t keynote_queries = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint32_t credential_count = 0;
};

struct CreateResult {
  NfsFattr attr;
  std::string credential;  // full access for the creator; delegate freely
};

// GetLockbox result: the record (whose entries hold this client's wrapped
// content key, if any) plus the stored payload (ciphertext when sealed).
struct LockboxFetch {
  wire::LockboxRecord record;
  Bytes payload;
};

class DiscfsClient {
 public:
  // Connects to host:port, runs the handshake with `identity`, and pins the
  // server key if `expected_server` is given (self-certifying attach).
  static Result<std::unique_ptr<DiscfsClient>> Connect(
      const std::string& host, uint16_t port, const ChannelIdentity& identity,
      const std::optional<DsaPublicKey>& expected_server);

  // In-process variant over an arbitrary transport (tests, benchmarks).
  static Result<std::unique_ptr<DiscfsClient>> ConnectOver(
      std::unique_ptr<MsgStream> transport, const ChannelIdentity& identity,
      const std::optional<DsaPublicKey>& expected_server);

  // The attach operation: returns the root handle. Until credentials are
  // submitted the directory is mode 000 and every data operation fails.
  Result<NfsFattr> Attach();

  // Submits a credential assertion to the server's persistent KeyNote
  // session; returns the credential id.
  Result<std::string> SubmitCredential(const std::string& text);
  // Batch submission (one round trip; server fans verification out over
  // its worker pool). results[i] is texts[i]'s id or per-credential error;
  // the outer Result fails only on transport/decode problems.
  Result<std::vector<Result<std::string>>> SubmitCredentials(
      const std::vector<std::string>& texts);
  // Issuer-side withdrawal of a delegation.
  Status RemoveCredential(const std::string& credential_id);
  // Self-revocation of this client's key (compromise recovery).
  Status RevokeOwnKey();

  // Augmented CREATE/MKDIR that return a fresh full-access credential for
  // the creator.
  Result<CreateResult> CreateWithCredential(const NfsFh& dir,
                                            const std::string& name,
                                            uint32_t mode);
  Result<CreateResult> MkdirWithCredential(const NfsFh& dir,
                                           const std::string& name,
                                           uint32_t mode);

  // Resolves a credential HANDLE (inode number) to a live file handle.
  Result<NfsFattr> ResolveHandle(uint32_t inode);

  // Lockbox sharing (needs W on `fh`; see DiscfsProc for the policy each
  // procedure enforces). `entries` carry the content key wrapped to each
  // recipient (src/crypto/keywrap.h); the returned record shows the chunk
  // ids as stored.
  Result<wire::LockboxRecord> PutLockbox(
      const NfsFh& fh, bool sealed, uint32_t chunk_size, const Bytes& payload,
      const std::vector<wire::LockboxEntry>& entries);
  // Needs R on `fh`.
  Result<LockboxFetch> GetLockbox(const NfsFh& fh);
  // Adds/replaces `entry` (needs R on `fh`).
  Status GrantLockboxAccess(const NfsFh& fh, const wire::LockboxEntry& entry);
  // Drops `recipient`'s entry (needs W on `fh`, or lockbox ownership).
  Status RevokeLockboxAccess(const NfsFh& fh, const std::string& recipient);

  Result<DiscfsServerInfo> ServerInfo();

  // Scrapes the server's metrics registry (DiscfsProc::kServerStats):
  // Prometheus text by default, one JSON object with `json`.
  Result<std::string> ServerStats(bool json = false);

  // Trace id minted for the most recent RemoveCredential/RevokeOwnKey call
  // on this client (0 before the first). The id rides the RPC trailer and
  // any coherence traffic the call triggers; servers answer
  // trace_log().Contains(id) with it.
  uint64_t last_trace_id() const { return last_trace_id_; }

  // Plain NFS operations (policy-checked server-side).
  NfsClient& nfs() { return *nfs_; }

  const DsaPublicKey& server_key() const { return server_key_; }
  const DsaPublicKey& own_key() const { return own_key_; }

  void Close() { rpc_->Close(); }

 private:
  DiscfsClient(std::shared_ptr<RpcClient> rpc, DsaPublicKey server_key,
               DsaPublicKey own_key);

  Result<Bytes> Call(DiscfsProc proc, const Bytes& args);

  std::shared_ptr<RpcClient> rpc_;
  std::unique_ptr<NfsClient> nfs_;
  DsaPublicKey server_key_;
  DsaPublicKey own_key_;
  uint64_t last_trace_id_ = 0;
};

}  // namespace discfs

#endif  // DISCFS_SRC_DISCFS_CLIENT_H_
