// Reimplementation of the Bonnie filesystem benchmark phases measured in
// the paper (Figures 7-11): sequential output per-character, per-block and
// rewrite; sequential input per-character and per-block.
//
// "Per-character" I/O goes through an 8 KiB stdio-style client buffer, as
// Bonnie's putc/getc loops do; blocks are 8 KiB. The paper uses a 100 MB
// file; the harness defaults to a smaller file for turnaround and scales
// via DISCFS_BONNIE_MB.
#ifndef DISCFS_BENCH_BONNIE_H_
#define DISCFS_BENCH_BONNIE_H_

#include <cstdint>
#include <string>

#include "bench/fs_backend.h"

namespace discfs::bench {

inline constexpr size_t kBonnieBlockSize = 8192;

enum class BonniePhase {
  kSeqOutputChar,   // Figure 7
  kSeqOutputBlock,  // Figure 8
  kSeqRewrite,      // Figure 9
  kSeqInputChar,    // Figure 10
  kSeqInputBlock,   // Figure 11
};

const char* BonniePhaseName(BonniePhase phase);

struct BonnieResult {
  BonniePhase phase;
  std::string system;
  uint64_t bytes = 0;
  double seconds = 0;
  double kb_per_sec = 0;  // the paper's reporting unit (K/sec)
};

// Runs one phase against one backend with a file of `file_mb` MiB. Output
// phases create the file; input/rewrite phases expect it to exist (call an
// output phase first or use RunBonniePhaseFresh).
Result<BonnieResult> RunBonniePhase(FsBackend& backend, BonniePhase phase,
                                    size_t file_mb);

// Ensures the file exists (block-writes it if needed), then runs `phase`.
Result<BonnieResult> RunBonniePhaseFresh(FsBackend& backend,
                                         BonniePhase phase, size_t file_mb);

// File size selection: DISCFS_BONNIE_MB env var, else `default_mb`.
size_t BonnieFileMb(size_t default_mb = 8);

// Prints one paper-style result row to stdout.
void PrintBonnieRow(const BonnieResult& result);

}  // namespace discfs::bench

#endif  // DISCFS_BENCH_BONNIE_H_
