// Compliance-value orderings for the KeyNote compliance checker.
//
// RFC 2704 defines query results over a totally ORDERED set of compliance
// values (e.g. "false" < "maybe" < "true"). The DisCFS paper instead returns
// the 8 unix permission combinations and notes that they "form a partial
// order" mapping onto octal permission bits. Both are lattices:
//
//  * TotalOrderLattice  — RFC-conformant; meet=min, join=max over the list.
//  * PermissionLattice  — the DisCFS {R,W,X} bitmask lattice; meet=AND
//    (delegation chains can only restrict), join=OR (independent grants
//    accumulate).
//
// The compliance checker is written against this interface, which is the
// "separation of policy and mechanism" the paper claims, made concrete.
#ifndef DISCFS_SRC_KEYNOTE_LATTICE_H_
#define DISCFS_SRC_KEYNOTE_LATTICE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace discfs::keynote {

class ComplianceLattice {
 public:
  // Opaque handle; only meaningful to the lattice that produced it.
  using Value = uint32_t;

  virtual ~ComplianceLattice() = default;

  virtual Value Bottom() const = 0;
  virtual Value Top() const = 0;
  virtual Value Meet(Value a, Value b) const = 0;
  virtual Value Join(Value a, Value b) const = 0;

  // Maps a conditions-field return string (e.g. "RWX") to a value.
  virtual std::optional<Value> FromName(std::string_view name) const = 0;
  virtual std::string Name(Value v) const = 0;

  // All value names, bottom first (exposed to policies as _VALUES).
  virtual std::vector<std::string> ValueNames() const = 0;
};

// RFC 2704 ordered value set: names[0] is _MIN_TRUST, names.back() is
// _MAX_TRUST.
class TotalOrderLattice : public ComplianceLattice {
 public:
  explicit TotalOrderLattice(std::vector<std::string> names);

  Value Bottom() const override { return 0; }
  Value Top() const override {
    return static_cast<Value>(names_.size() - 1);
  }
  Value Meet(Value a, Value b) const override { return a < b ? a : b; }
  Value Join(Value a, Value b) const override { return a > b ? a : b; }
  std::optional<Value> FromName(std::string_view name) const override;
  std::string Name(Value v) const override;
  std::vector<std::string> ValueNames() const override { return names_; }

 private:
  std::vector<std::string> names_;
};

// The DisCFS permission lattice. Values are 3-bit masks, octal-compatible:
// R=4, W=2, X=1; "false"=0 is bottom, "RWX"=7 is top.
class PermissionLattice : public ComplianceLattice {
 public:
  static constexpr Value kRead = 4;
  static constexpr Value kWrite = 2;
  static constexpr Value kExec = 1;

  Value Bottom() const override { return 0; }
  Value Top() const override { return 7; }
  Value Meet(Value a, Value b) const override { return a & b; }
  Value Join(Value a, Value b) const override { return a | b; }
  std::optional<Value> FromName(std::string_view name) const override;
  std::string Name(Value v) const override;
  std::vector<std::string> ValueNames() const override;

  // Singleton: the lattice is stateless.
  static const PermissionLattice& Get();
};

}  // namespace discfs::keynote

#endif  // DISCFS_SRC_KEYNOTE_LATTICE_H_
