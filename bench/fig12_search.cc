// Figure 12: Filesystem Search — walk a synthetic kernel source tree and
// wc-count every .c/.h file on FFS, CFS-NE and DisCFS. DisCFS runs with the
// paper's policy-result cache of 128 entries.
#include <cstdio>
#include <cstdlib>

#include "bench/search.h"

using discfs::bench::BackendDiscfsServer;
using discfs::bench::BackendOptions;
using discfs::bench::BuildSourceTree;
using discfs::bench::MakeAllBackends;
using discfs::bench::PrintSearchRow;
using discfs::bench::RunSearch;
using discfs::bench::SourceTreeSpec;

int main() {
  SourceTreeSpec spec;
  if (const char* env = std::getenv("DISCFS_SEARCH_DIRS")) {
    spec.directories = static_cast<size_t>(std::strtoul(env, nullptr, 10));
  }
  if (const char* env = std::getenv("DISCFS_SEARCH_FILES_PER_DIR")) {
    spec.files_per_dir = static_cast<size_t>(std::strtoul(env, nullptr, 10));
  }

  BackendOptions opts;
  opts.policy_cache_size = 128;  // "cache size of 128 policy results"
  opts.device_mib = 512;
  opts.inode_count = 65536;

  std::printf("== Figure 12: Filesystem Search (wc over every .c/.h) ==\n");
  std::printf("   synthetic kernel tree: %zu dirs x %zu files, DisCFS policy "
              "cache = %zu entries\n",
              spec.directories, spec.files_per_dir, opts.policy_cache_size);

  auto backends = MakeAllBackends(opts);
  if (!backends.ok()) {
    std::fprintf(stderr, "backend setup failed: %s\n",
                 backends.status().ToString().c_str());
    return 1;
  }
  for (auto& backend : *backends) {
    auto info = BuildSourceTree(*backend, spec);
    if (!info.ok()) {
      std::fprintf(stderr, "tree build failed on %s: %s\n",
                   backend->name().c_str(),
                   info.status().ToString().c_str());
      return 1;
    }
    // Clear telemetry accumulated while building so the search phase is
    // reported alone.
    if (auto* server = BackendDiscfsServer(*backend)) {
      server->ResetTelemetry();
    }
    auto result = RunSearch(*backend, spec);
    if (!result.ok()) {
      std::fprintf(stderr, "search failed on %s: %s\n",
                   backend->name().c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    PrintSearchRow(*result);
    if (auto* server = BackendDiscfsServer(*backend)) {
      auto stats = server->stats_snapshot().cache;
      std::printf(
          "    DisCFS policy cache: %llu hits, %llu misses, %llu evictions; "
          "%llu KeyNote evaluations total\n",
          static_cast<unsigned long long>(stats.hits),
          static_cast<unsigned long long>(stats.misses),
          static_cast<unsigned long long>(stats.evictions),
          static_cast<unsigned long long>(
              server->counters().keynote_queries.load()));
    }
  }
  return 0;
}
