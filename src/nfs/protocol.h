// NFSv2-style protocol definitions shared by the user-level server and
// client (RFC 1094 procedure numbering; ROOT and WRITECACHE are obsolete and
// not implemented; GETROOT stands in for the separate MOUNT protocol).
//
// File handles are (inode, generation) — the 4.4BSD-style handle the paper
// adopts for DisCFS (§5) — encoded as two u32s.
#ifndef DISCFS_SRC_NFS_PROTOCOL_H_
#define DISCFS_SRC_NFS_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ffs/ffs.h"
#include "src/util/status.h"
#include "src/wire/xdr.h"

namespace discfs {

// The real NFS RPC program number.
inline constexpr uint32_t kNfsProgram = 100003;

enum class NfsProc : uint32_t {
  kNull = 0,
  kGetAttr = 1,
  kSetAttr = 2,
  // 3 = ROOT (obsolete)
  kLookup = 4,
  kReadLink = 5,
  kRead = 6,
  // 7 = WRITECACHE (obsolete)
  kWrite = 8,
  kCreate = 9,
  kRemove = 10,
  kRename = 11,
  kLink = 12,
  kSymlink = 13,
  kMkdir = 14,
  kRmdir = 15,
  kReadDir = 16,
  kStatFs = 17,
  kGetRoot = 18,  // stands in for the MOUNT protocol
};

struct NfsFh {
  uint32_t inode = 0;
  uint32_t generation = 0;

  bool operator==(const NfsFh& o) const {
    return inode == o.inode && generation == o.generation;
  }
  bool operator<(const NfsFh& o) const {
    return inode != o.inode ? inode < o.inode : generation < o.generation;
  }
};

// File attributes on the wire (the NFSv2 fattr, trimmed to what the stack
// uses).
struct NfsFattr {
  NfsFh fh;
  FileType type = FileType::kFree;
  uint32_t mode = 0;
  uint32_t nlink = 0;
  uint32_t uid = 0;
  uint32_t gid = 0;
  uint64_t size = 0;
  int64_t atime = 0;
  int64_t mtime = 0;
  int64_t ctime = 0;
};

struct NfsDirEntry {
  std::string name;
  NfsFh fh;
  FileType type = FileType::kFree;
};

struct NfsStatFs {
  uint32_t block_size = 0;
  uint64_t total_blocks = 0;
  uint64_t free_blocks = 0;
  uint32_t total_inodes = 0;
  uint32_t free_inodes = 0;
};

// XDR codecs.
void WriteFh(XdrWriter& w, const NfsFh& fh);
Result<NfsFh> ReadFh(XdrReader& r);
void WriteFattr(XdrWriter& w, const NfsFattr& attr);
Result<NfsFattr> ReadFattr(XdrReader& r);
void WriteSetAttr(XdrWriter& w, const SetAttrRequest& req);
Result<SetAttrRequest> ReadSetAttr(XdrReader& r);
void WriteDirEntries(XdrWriter& w, const std::vector<NfsDirEntry>& entries);
Result<std::vector<NfsDirEntry>> ReadDirEntries(XdrReader& r);
void WriteStatFs(XdrWriter& w, const NfsStatFs& info);
Result<NfsStatFs> ReadStatFs(XdrReader& r);

NfsFattr FattrFromInode(const InodeAttr& attr);

}  // namespace discfs

#endif  // DISCFS_SRC_NFS_PROTOCOL_H_
