#include <gtest/gtest.h>

#include "src/crypto/hmac.h"
#include "src/crypto/sha.h"
#include "src/util/hex.h"

namespace discfs {
namespace {

std::string HexOf(const Bytes& b) { return HexEncode(b); }

Bytes FromHexOrDie(std::string_view h) {
  auto r = HexDecode(h);
  EXPECT_TRUE(r.ok());
  return r.value();
}

// ----- SHA-1 (FIPS 180-4 / RFC 3174 vectors) -----

TEST(Sha1, EmptyString) {
  EXPECT_EQ(HexOf(Sha1::Hash("")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(HexOf(Sha1::Hash("abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(
      HexOf(Sha1::Hash(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionA) {
  Sha1 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk);
  }
  EXPECT_EQ(HexOf(h.Finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, StreamingMatchesOneShot) {
  std::string msg = "The quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= msg.size(); ++split) {
    Sha1 h;
    h.Update(msg.substr(0, split));
    h.Update(msg.substr(split));
    EXPECT_EQ(h.Finish(), Sha1::Hash(msg)) << "split=" << split;
  }
}

// ----- SHA-256 -----

TEST(Sha256, EmptyString) {
  EXPECT_EQ(HexOf(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(HexOf(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      HexOf(Sha256::Hash(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk);
  }
  EXPECT_EQ(HexOf(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  std::string msg(200, 'x');
  for (size_t split : {0u, 1u, 55u, 56u, 63u, 64u, 65u, 127u, 128u, 200u}) {
    Sha256 h;
    h.Update(msg.substr(0, split));
    h.Update(msg.substr(split));
    EXPECT_EQ(h.Finish(), Sha256::Hash(msg)) << "split=" << split;
  }
}

// Lengths around the padding boundary (55/56/64 bytes) are the classic
// off-by-one spots in SHA implementations.
TEST(Sha256, PaddingBoundaryLengthsDiffer) {
  std::vector<Bytes> digests;
  for (size_t len = 54; len <= 66; ++len) {
    digests.push_back(Sha256::Hash(std::string(len, 'q')));
  }
  for (size_t i = 0; i < digests.size(); ++i) {
    for (size_t j = i + 1; j < digests.size(); ++j) {
      EXPECT_NE(digests[i], digests[j]);
    }
  }
}

// ----- SHA-512 -----

TEST(Sha512, Abc) {
  EXPECT_EQ(HexOf(Sha512::Hash("abc")),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512, EmptyString) {
  EXPECT_EQ(HexOf(Sha512::Hash("")),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512, StreamingMatchesOneShot) {
  std::string msg(300, 'z');
  for (size_t split : {0u, 1u, 111u, 112u, 127u, 128u, 129u, 300u}) {
    Sha512 h;
    h.Update(msg.substr(0, split));
    h.Update(msg.substr(split));
    EXPECT_EQ(h.Finish(), Sha512::Hash(msg)) << "split=" << split;
  }
}

// ----- HMAC (RFC 2202 / RFC 4231) -----

TEST(Hmac, Sha1Rfc2202Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(HexOf(HmacSha1(key, ToBytes("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(Hmac, Sha1Rfc2202Case2) {
  EXPECT_EQ(HexOf(HmacSha1(ToBytes("Jefe"),
                           ToBytes("what do ya want for nothing?"))),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(Hmac, Sha256Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(HexOf(HmacSha256(key, ToBytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Sha256Rfc4231Case2) {
  EXPECT_EQ(HexOf(HmacSha256(ToBytes("Jefe"),
                             ToBytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  // Keys longer than the block size must be hashed; verify long-vs-hashed
  // key equivalence directly.
  Bytes long_key(100, 0xaa);
  Bytes hashed_key = Sha256::Hash(long_key);
  EXPECT_EQ(HmacSha256(long_key, ToBytes("msg")),
            HmacSha256(hashed_key, ToBytes("msg")));
}

TEST(Hmac, DifferentKeysDifferentMacs) {
  Bytes k1(16, 1), k2(16, 2);
  EXPECT_NE(HmacSha256(k1, ToBytes("m")), HmacSha256(k2, ToBytes("m")));
}

// ----- HKDF (RFC 5869) -----

TEST(Hkdf, Rfc5869TestCase1) {
  Bytes ikm(22, 0x0b);
  Bytes salt = FromHexOrDie("000102030405060708090a0b0c");
  Bytes info = FromHexOrDie("f0f1f2f3f4f5f6f7f8f9");
  Bytes prk = HkdfExtract(salt, ikm);
  EXPECT_EQ(HexOf(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  Bytes okm = HkdfExpand(prk, info, 42);
  EXPECT_EQ(HexOf(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, ExpandLengths) {
  Bytes prk = HkdfExtract(Bytes(), ToBytes("secret"));
  for (size_t len : {1u, 16u, 32u, 33u, 64u, 255u}) {
    EXPECT_EQ(HkdfExpand(prk, ToBytes("info"), len).size(), len);
  }
}

TEST(Hkdf, InfoSeparatesKeys) {
  Bytes prk = HkdfExtract(Bytes(), ToBytes("secret"));
  EXPECT_NE(HkdfExpand(prk, ToBytes("client"), 32),
            HkdfExpand(prk, ToBytes("server"), 32));
}

}  // namespace
}  // namespace discfs
