#include "src/discfs/policy_cache.h"

namespace discfs {
namespace {

// Largest power of two <= x (x >= 1).
size_t FloorPow2(size_t x) {
  size_t p = 1;
  while (p * 2 <= x) {
    p *= 2;
  }
  return p;
}

size_t DefaultShards(size_t capacity) {
  if (capacity < 64) {
    return 1;  // small caches keep exact global LRU order
  }
  size_t shards = FloorPow2(capacity / 32);
  return shards > 16 ? 16 : shards;
}

}  // namespace

PolicyCache::PolicyCache(size_t capacity, int64_t ttl_seconds,
                         size_t num_shards)
    : capacity_(capacity),
      ttl_seconds_(ttl_seconds),
      generations_(new std::atomic<uint64_t>[kGenSlots]) {
  size_t shards = num_shards != 0 ? num_shards : DefaultShards(capacity);
  per_shard_capacity_ = capacity / shards;
  if (capacity > 0 && per_shard_capacity_ == 0) {
    per_shard_capacity_ = 1;
  }
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  for (size_t i = 0; i < kGenSlots; ++i) {
    generations_[i].store(0, std::memory_order_relaxed);
  }
}

PolicyCache::Shard& PolicyCache::ShardFor(const Key& key) {
  return *shards_[KeyHash()(key) % shards_.size()];
}

std::atomic<uint64_t>& PolicyCache::GenSlot(const std::string& key_id) {
  return generations_[std::hash<std::string>()(key_id) % kGenSlots];
}

std::optional<uint32_t> PolicyCache::Get(const std::string& key_id,
                                         uint32_t inode, int64_t now) {
  Key key{key_id, inode};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  uint64_t current_gen = GenSlot(key_id).load(std::memory_order_acquire);
  if (capacity_ == 0) {
    ++shard.stats.misses;
    return std::nullopt;
  }
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    ++shard.stats.misses;
    return std::nullopt;
  }
  Node& node = *it->second;
  if (node.generation != current_gen || now >= node.expires_at) {
    if (node.generation != current_gen) {
      ++shard.stats.invalidations;
    }
    shard.lru.erase(it->second);
    shard.entries.erase(it);
    ++shard.stats.misses;
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.stats.hits;
  return node.mask;
}

void PolicyCache::Put(const std::string& key_id, uint32_t inode,
                      uint32_t mask, int64_t now) {
  if (capacity_ == 0) {
    return;
  }
  Key key{key_id, inode};
  Shard& shard = ShardFor(key);
  uint64_t gen = GenSlot(key_id).load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    Node& node = *it->second;
    node.mask = mask;
    node.expires_at = now + ttl_seconds_;
    node.generation = gen;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  while (shard.entries.size() >= per_shard_capacity_ &&
         !shard.entries.empty()) {
    const Node& victim = shard.lru.back();
    shard.entries.erase(victim.key);
    shard.lru.pop_back();
    ++shard.stats.evictions;
  }
  shard.lru.push_front(Node{std::move(key), mask, now + ttl_seconds_, gen});
  shard.entries.emplace(shard.lru.front().key, shard.lru.begin());
}

void PolicyCache::InvalidateAll() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->stats.invalidations += shard->entries.size();
    shard->entries.clear();
    shard->lru.clear();
  }
}

void PolicyCache::InvalidatePrincipal(const std::string& key_id) {
  GenSlot(key_id).fetch_add(1, std::memory_order_acq_rel);
}

void PolicyCache::ResetStats() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->stats = Stats{};
  }
}

size_t PolicyCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->entries.size();
  }
  return total;
}

PolicyCache::Stats PolicyCache::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.evictions += shard->stats.evictions;
    total.invalidations += shard->stats.invalidations;
  }
  return total;
}

}  // namespace discfs
