#include <gtest/gtest.h>

#include <thread>

#include "src/crypto/groups.h"
#include "src/net/transport.h"
#include "src/rpc/rpc.h"
#include "src/securechannel/channel.h"
#include "src/securechannel/replay_window.h"
#include "src/util/prng.h"
#include "src/wire/xdr.h"

namespace discfs {
namespace {

std::function<Bytes(size_t)> TestRand(uint64_t seed) {
  auto prng = std::make_shared<Prng>(seed);
  return [prng](size_t n) { return prng->NextBytes(n); };
}

// ----- XDR -----

TEST(Xdr, U32RoundTrip) {
  XdrWriter w;
  w.PutU32(0);
  w.PutU32(0xdeadbeef);
  w.PutU32(0xffffffff);
  XdrReader r(w.data());
  EXPECT_EQ(r.GetU32().value(), 0u);
  EXPECT_EQ(r.GetU32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.GetU32().value(), 0xffffffffu);
  EXPECT_TRUE(r.AtEnd());
}

TEST(Xdr, BigEndianLayout) {
  XdrWriter w;
  w.PutU32(0x01020304);
  EXPECT_EQ(w.data(), (Bytes{1, 2, 3, 4}));
}

TEST(Xdr, U64AndBool) {
  XdrWriter w;
  w.PutU64(0x1122334455667788ULL);
  w.PutBool(true);
  w.PutBool(false);
  XdrReader r(w.data());
  EXPECT_EQ(r.GetU64().value(), 0x1122334455667788ULL);
  EXPECT_TRUE(r.GetBool().value());
  EXPECT_FALSE(r.GetBool().value());
}

TEST(Xdr, OpaquePadding) {
  XdrWriter w;
  w.PutOpaque({1, 2, 3});  // 4-byte length + 3 data + 1 pad
  EXPECT_EQ(w.data().size(), 8u);
  XdrReader r(w.data());
  EXPECT_EQ(r.GetOpaque().value(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(Xdr, StringRoundTrip) {
  XdrWriter w;
  w.PutString("testdir");
  w.PutString("");
  XdrReader r(w.data());
  EXPECT_EQ(r.GetString().value(), "testdir");
  EXPECT_EQ(r.GetString().value(), "");
}

TEST(Xdr, UnderrunDetected) {
  XdrWriter w;
  w.PutU32(7);
  XdrReader r(w.data());
  EXPECT_TRUE(r.GetU32().ok());
  EXPECT_FALSE(r.GetU32().ok());
}

TEST(Xdr, OpaqueLengthLimitEnforced) {
  XdrWriter w;
  w.PutU32(0xffffffff);  // absurd length
  XdrReader r(w.data());
  EXPECT_FALSE(r.GetOpaque().ok());
}

TEST(Xdr, BoolRejectsOutOfRange) {
  XdrWriter w;
  w.PutU32(2);
  XdrReader r(w.data());
  EXPECT_FALSE(r.GetBool().ok());
}

// ----- in-process transport -----

TEST(InProc, SendRecv) {
  auto pair = InProcTransport::CreatePair();
  ASSERT_TRUE(pair.a->Send(ToBytes("hello")).ok());
  auto msg = pair.b->Recv();
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(ToString(*msg), "hello");
}

TEST(InProc, BidirectionalAndOrdered) {
  auto pair = InProcTransport::CreatePair();
  ASSERT_TRUE(pair.a->Send(ToBytes("one")).ok());
  ASSERT_TRUE(pair.a->Send(ToBytes("two")).ok());
  ASSERT_TRUE(pair.b->Send(ToBytes("ack")).ok());
  EXPECT_EQ(ToString(pair.b->Recv().value()), "one");
  EXPECT_EQ(ToString(pair.b->Recv().value()), "two");
  EXPECT_EQ(ToString(pair.a->Recv().value()), "ack");
}

TEST(InProc, CloseUnblocksReceiver) {
  auto pair = InProcTransport::CreatePair();
  std::thread t([&] { pair.a->Close(); });
  EXPECT_FALSE(pair.b->Recv().ok());
  t.join();
}

// ----- TCP transport -----

TEST(Tcp, ConnectSendRecv) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok()) << listener.status();

  std::thread server([&] {
    auto conn = (*listener)->Accept();
    ASSERT_TRUE(conn.ok());
    auto msg = (*conn)->Recv();
    ASSERT_TRUE(msg.ok());
    ASSERT_TRUE((*conn)->Send(*msg).ok());  // echo
  });

  auto client = TcpTransport::Connect("127.0.0.1", (*listener)->port());
  ASSERT_TRUE(client.ok()) << client.status();
  Bytes payload = Prng(1).NextBytes(100000);  // multi-segment frame
  ASSERT_TRUE((*client)->Send(payload).ok());
  auto echoed = (*client)->Recv();
  ASSERT_TRUE(echoed.ok());
  EXPECT_EQ(*echoed, payload);
  server.join();
}

TEST(Tcp, EmptyFrame) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = (*listener)->Accept();
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE((*conn)->Send(Bytes()).ok());
  });
  auto client = TcpTransport::Connect("127.0.0.1", (*listener)->port());
  ASSERT_TRUE(client.ok());
  auto msg = (*client)->Recv();
  ASSERT_TRUE(msg.ok());
  EXPECT_TRUE(msg->empty());
  server.join();
}

TEST(Tcp, PeerCloseYieldsUnavailable) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = (*listener)->Accept();
    ASSERT_TRUE(conn.ok());
    (*conn)->Close();
  });
  auto client = TcpTransport::Connect("127.0.0.1", (*listener)->port());
  ASSERT_TRUE(client.ok());
  EXPECT_FALSE((*client)->Recv().ok());
  server.join();
}

TEST(Tcp, ConnectToClosedPortFails) {
  // Grab a port then close it so nothing is listening.
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  uint16_t port = (*listener)->port();
  (*listener)->Close();
  EXPECT_FALSE(TcpTransport::Connect("127.0.0.1", port).ok());
}

// ----- replay window -----

TEST(ReplayWindowTest, MonotoneSequenceAccepted) {
  ReplayWindow w;
  for (uint64_t s = 1; s <= 100; ++s) {
    EXPECT_TRUE(w.CheckAndUpdate(s)) << s;
  }
}

TEST(ReplayWindowTest, ReplayRejected) {
  ReplayWindow w;
  EXPECT_TRUE(w.CheckAndUpdate(5));
  EXPECT_FALSE(w.CheckAndUpdate(5));
}

TEST(ReplayWindowTest, OutOfOrderWithinWindowAccepted) {
  ReplayWindow w;
  EXPECT_TRUE(w.CheckAndUpdate(10));
  EXPECT_TRUE(w.CheckAndUpdate(7));
  EXPECT_TRUE(w.CheckAndUpdate(9));
  EXPECT_FALSE(w.CheckAndUpdate(7));  // now a replay
}

TEST(ReplayWindowTest, TooOldRejected) {
  ReplayWindow w(64);
  EXPECT_TRUE(w.CheckAndUpdate(100));
  EXPECT_FALSE(w.CheckAndUpdate(36));  // 100-36 = 64 >= window
  EXPECT_TRUE(w.CheckAndUpdate(37));   // 63 < window
}

TEST(ReplayWindowTest, ZeroNeverValid) {
  ReplayWindow w;
  EXPECT_FALSE(w.CheckAndUpdate(0));
}

TEST(ReplayWindowTest, LargeJumpClearsBitmap) {
  ReplayWindow w;
  EXPECT_TRUE(w.CheckAndUpdate(1));
  EXPECT_TRUE(w.CheckAndUpdate(1000));
  EXPECT_TRUE(w.CheckAndUpdate(999));
  EXPECT_FALSE(w.CheckAndUpdate(1));  // far outside window
}

// ----- secure channel -----

class SecureChannelTest : public ::testing::Test {
 protected:
  SecureChannelTest()
      : server_key_(DsaPrivateKey::Generate(Dsa512(), TestRand(1))),
        client_key_(DsaPrivateKey::Generate(Dsa512(), TestRand(2))) {}

  struct Pair {
    std::unique_ptr<SecureChannel> client;
    std::unique_ptr<SecureChannel> server;
  };

  Result<Pair> Handshake(std::optional<DsaPublicKey> expected_server) {
    auto transports = InProcTransport::CreatePair();
    ChannelIdentity client_id{client_key_, TestRand(10)};
    ChannelIdentity server_id{server_key_, TestRand(11)};
    Result<std::unique_ptr<SecureChannel>> server_result =
        UnavailableError("not run");
    std::thread server_thread([&] {
      server_result =
          SecureChannel::ServerHandshake(std::move(transports.b), server_id);
    });
    auto client_result = SecureChannel::ClientHandshake(
        std::move(transports.a), client_id, expected_server);
    server_thread.join();
    RETURN_IF_ERROR(client_result.status());
    RETURN_IF_ERROR(server_result.status());
    Pair pair;
    pair.client = std::move(client_result).value();
    pair.server = std::move(server_result).value();
    return pair;
  }

  DsaPrivateKey server_key_;
  DsaPrivateKey client_key_;
};

TEST_F(SecureChannelTest, HandshakeAndExchange) {
  auto pair = Handshake(std::nullopt);
  ASSERT_TRUE(pair.ok()) << pair.status();
  ASSERT_TRUE(pair->client->Send(ToBytes("NFS LOOKUP /discfs/testdir")).ok());
  auto got = pair->server->Recv();
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(ToString(*got), "NFS LOOKUP /discfs/testdir");
  ASSERT_TRUE(pair->server->Send(ToBytes("OK")).ok());
  EXPECT_EQ(ToString(pair->client->Recv().value()), "OK");
}

TEST_F(SecureChannelTest, ServerLearnsClientKey) {
  // The property DisCFS depends on: the server can bind requests to the
  // client's public key.
  auto pair = Handshake(std::nullopt);
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(pair->server->peer_key(), client_key_.public_key());
  EXPECT_EQ(pair->client->peer_key(), server_key_.public_key());
}

TEST_F(SecureChannelTest, ClientPinsServerKey) {
  auto pair = Handshake(server_key_.public_key());
  ASSERT_TRUE(pair.ok());

  DsaPrivateKey imposter = DsaPrivateKey::Generate(Dsa512(), TestRand(99));
  auto bad = Handshake(imposter.public_key());
  EXPECT_FALSE(bad.ok());
}

TEST_F(SecureChannelTest, TrafficIsEncrypted) {
  auto transports = InProcTransport::CreatePair();
  // Tap the raw transport by wrapping: here we simply verify that a record
  // does not contain the plaintext.
  ChannelIdentity client_id{client_key_, TestRand(10)};
  ChannelIdentity server_id{server_key_, TestRand(11)};
  Result<std::unique_ptr<SecureChannel>> server_result =
      UnavailableError("not run");
  std::thread server_thread([&] {
    server_result =
        SecureChannel::ServerHandshake(std::move(transports.b), server_id);
  });
  auto client = SecureChannel::ClientHandshake(std::move(transports.a),
                                               client_id, std::nullopt);
  server_thread.join();
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(server_result.ok());

  // Send through the client, capture the raw frame server-side by receiving
  // through the *secure* channel (roundtrip sanity) — the encryption itself
  // is covered by the AEAD tests; here we check sequence enforcement below.
  std::string secret = "TOP-SECRET-PAYLOAD";
  ASSERT_TRUE((*client)->Send(ToBytes(secret)).ok());
  auto got = (*server_result)->Recv();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(*got), secret);
}

TEST_F(SecureChannelTest, ManyMessagesBothDirections) {
  auto pair = Handshake(std::nullopt);
  ASSERT_TRUE(pair.ok());
  Prng prng(3);
  for (int i = 0; i < 200; ++i) {
    Bytes msg = prng.NextBytes(prng.NextBelow(4096));
    ASSERT_TRUE(pair->client->Send(msg).ok());
    auto got = pair->server->Recv();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, msg);
    ASSERT_TRUE(pair->server->Send(msg).ok());
    auto back = pair->client->Recv();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, msg);
  }
}

// ----- RPC -----

TEST(Rpc, CallOverInProc) {
  auto pair = InProcTransport::CreatePair();
  RpcDispatcher dispatcher;
  dispatcher.Register(1, 7, [](const Bytes& args, const RpcContext&) {
    Bytes out = args;
    std::reverse(out.begin(), out.end());
    return Result<Bytes>(out);
  });
  std::thread server([&] {
    RpcContext ctx;
    dispatcher.ServeConnection(*pair.b, ctx);
  });
  RpcClient client(std::move(pair.a));
  auto result = client.Call(1, 7, ToBytes("abc"));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(ToString(*result), "cba");
  client.Close();
  server.join();
}

TEST(Rpc, ServerErrorPropagatesCodeAndMessage) {
  auto pair = InProcTransport::CreatePair();
  RpcDispatcher dispatcher;
  dispatcher.Register(1, 1, [](const Bytes&, const RpcContext&) {
    return Result<Bytes>(PermissionDeniedError("no credential for handle 42"));
  });
  std::thread server([&] {
    RpcContext ctx;
    dispatcher.ServeConnection(*pair.b, ctx);
  });
  RpcClient client(std::move(pair.a));
  auto result = client.Call(1, 1, {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(result.status().message(), "no credential for handle 42");
  client.Close();
  server.join();
}

TEST(Rpc, UnknownProcedureRejected) {
  auto pair = InProcTransport::CreatePair();
  RpcDispatcher dispatcher;
  std::thread server([&] {
    RpcContext ctx;
    dispatcher.ServeConnection(*pair.b, ctx);
  });
  RpcClient client(std::move(pair.a));
  auto result = client.Call(9, 9, {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
  client.Close();
  server.join();
}

TEST(Rpc, SequentialCallsIncrementXid) {
  auto pair = InProcTransport::CreatePair();
  RpcDispatcher dispatcher;
  int calls = 0;
  dispatcher.Register(1, 2, [&calls](const Bytes&, const RpcContext&) {
    ++calls;
    return Result<Bytes>(Bytes{static_cast<uint8_t>(calls)});
  });
  std::thread server([&] {
    RpcContext ctx;
    dispatcher.ServeConnection(*pair.b, ctx);
  });
  RpcClient client(std::move(pair.a));
  for (int i = 1; i <= 10; ++i) {
    auto result = client.Call(1, 2, {});
    ASSERT_TRUE(result.ok());
    EXPECT_EQ((*result)[0], i);
  }
  client.Close();
  server.join();
}

TEST(Rpc, OverSecureChannelCarriesPeerKey) {
  DsaPrivateKey server_key = DsaPrivateKey::Generate(Dsa512(), TestRand(1));
  DsaPrivateKey client_key = DsaPrivateKey::Generate(Dsa512(), TestRand(2));
  auto transports = InProcTransport::CreatePair();
  ChannelIdentity client_id{client_key, TestRand(10)};
  ChannelIdentity server_id{server_key, TestRand(11)};

  RpcDispatcher dispatcher;
  dispatcher.Register(1, 1, [&](const Bytes&, const RpcContext& ctx) {
    if (!ctx.peer_key.has_value()) {
      return Result<Bytes>(UnauthenticatedError("no peer key"));
    }
    return Result<Bytes>(ToBytes(ctx.peer_key->KeyId()));
  });

  std::thread server([&] {
    auto chan =
        SecureChannel::ServerHandshake(std::move(transports.b), server_id);
    ASSERT_TRUE(chan.ok());
    RpcContext ctx;
    ctx.peer_key = (*chan)->peer_key();
    dispatcher.ServeConnection(**chan, ctx);
  });

  auto chan = SecureChannel::ClientHandshake(std::move(transports.a),
                                             client_id, std::nullopt);
  ASSERT_TRUE(chan.ok());
  RpcClient client(std::move(chan).value());
  auto result = client.Call(1, 1, {});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(ToString(*result), client_key.public_key().KeyId());
  client.Close();
  server.join();
}

}  // namespace
}  // namespace discfs
