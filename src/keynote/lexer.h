// Tokenizer shared by the Conditions-expression and Licensees parsers.
#ifndef DISCFS_SRC_KEYNOTE_LEXER_H_
#define DISCFS_SRC_KEYNOTE_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace discfs::keynote {

enum class TokenKind {
  kEnd,
  kIdent,    // attribute / constant names
  kNumber,   // decimal literal (kept as text)
  kString,   // double-quoted, escapes resolved
  kKOf,      // "<k>-of" threshold marker (text = k)
  kLParen,   // (
  kRParen,   // )
  kLBrace,   // {
  kRBrace,   // }
  kSemi,     // ;
  kComma,    // ,
  kArrow,    // ->
  kAndAnd,   // &&
  kOrOr,     // ||
  kNot,      // !
  kEq,       // ==
  kNe,       // !=
  kLt,       // <
  kGt,       // >
  kLe,       // <=
  kGe,       // >=
  kRegex,    // ~=
  kPlus,     // +
  kMinus,    // -
  kStar,     // *
  kSlash,    // /
  kPercent,  // %
  kCaret,    // ^ (exponentiation)
  kDot,      // . (string concatenation)
  kDollar,   // $ (attribute indirection)
};

struct Token {
  TokenKind kind;
  std::string text;  // literal value / identifier name
  size_t pos = 0;    // byte offset in the input, for diagnostics
};

const char* TokenKindName(TokenKind kind);

// Tokenizes `input`. A trailing kEnd token is always appended on success.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace discfs::keynote

#endif  // DISCFS_SRC_KEYNOTE_LEXER_H_
