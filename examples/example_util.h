// Shared scaffolding for the examples: spin up a DisCFS server on
// localhost, mint keys, and print nicely.
#ifndef DISCFS_EXAMPLES_EXAMPLE_UTIL_H_
#define DISCFS_EXAMPLES_EXAMPLE_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "src/crypto/groups.h"
#include "src/crypto/sysrand.h"
#include "src/discfs/action_env.h"
#include "src/discfs/client.h"
#include "src/discfs/credentials.h"
#include "src/discfs/host.h"

namespace discfs::examples {

inline Bytes Rand(size_t n) { return SysRandomBytes(n); }

inline DsaPrivateKey NewKey() {
  return DsaPrivateKey::Generate(Dsa1024(), Rand);
}

struct TestBed {
  std::shared_ptr<FfsVfs> vfs;
  std::unique_ptr<DiscfsHost> host;
  DsaPrivateKey admin;

  static TestBed Start() {
    TestBed bed{nullptr, nullptr, NewKey()};
    auto dev = std::make_shared<MemBlockDevice>(4096, 16384);
    auto fs = Ffs::Format(dev, FfsFormatOptions{4096});
    if (!fs.ok()) {
      std::fprintf(stderr, "format failed: %s\n",
                   fs.status().ToString().c_str());
      std::exit(1);
    }
    bed.vfs = std::make_shared<FfsVfs>(std::move(fs).value());
    DiscfsServerConfig config;
    config.server_key = bed.admin;
    auto host = DiscfsHost::Start(bed.vfs, std::move(config));
    if (!host.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   host.status().ToString().c_str());
      std::exit(1);
    }
    bed.host = std::move(host).value();
    return bed;
  }

  std::unique_ptr<DiscfsClient> Connect(const DsaPrivateKey& user) {
    ChannelIdentity identity{user, Rand};
    auto client = DiscfsClient::Connect("127.0.0.1", host->port(), identity,
                                        admin.public_key());
    if (!client.ok()) {
      std::fprintf(stderr, "connect failed: %s\n",
                   client.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(client).value();
  }
};

// Dies with a message if `status` is not OK.
inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL: %s: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
inline T CheckedValue(Result<T> result, const char* what) {
  Check(result.status(), what);
  return std::move(result).value();
}

// Expects a failure; dies if the operation unexpectedly succeeded.
template <typename T>
inline void ExpectDenied(const Result<T>& result, const std::string& what) {
  if (result.ok()) {
    std::fprintf(stderr, "FATAL: %s unexpectedly succeeded\n", what.c_str());
    std::exit(1);
  }
  std::printf("   [denied as expected] %s: %s\n", what.c_str(),
              result.status().ToString().c_str());
}

inline void Headline(const char* text) { std::printf("\n== %s ==\n", text); }

inline void Step(const std::string& text) {
  std::printf(" - %s\n", text.c_str());
}

}  // namespace discfs::examples

#endif  // DISCFS_EXAMPLES_EXAMPLE_UTIL_H_
