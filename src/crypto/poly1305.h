// Poly1305 one-time authenticator (RFC 8439).
#ifndef DISCFS_SRC_CRYPTO_POLY1305_H_
#define DISCFS_SRC_CRYPTO_POLY1305_H_

#include <cstdint>

#include "src/util/bytes.h"

namespace discfs {

// Computes the 16-byte Poly1305 tag of `message` under the 32-byte one-time
// `key` (r || s).
Bytes Poly1305Tag(const Bytes& key, const Bytes& message);

}  // namespace discfs

#endif  // DISCFS_SRC_CRYPTO_POLY1305_H_
