#include "src/rpc/rpc.h"

#include <algorithm>
#include <condition_variable>

#include "src/util/strings.h"
#include "src/wire/xdr.h"

namespace discfs {
namespace {

constexpr uint32_t kTypeCall = 0;
constexpr uint32_t kTypeReply = 1;

Bytes EncodeReply(uint32_t xid, const Result<Bytes>& result) {
  XdrWriter w;
  w.PutU32(xid);
  w.PutU32(kTypeReply);
  if (result.ok()) {
    w.PutU32(0);
    w.PutOpaque(result.value());
  } else {
    w.PutU32(static_cast<uint32_t>(result.status().code()));
    w.PutOpaque(ToBytes(result.status().message()));
  }
  return w.Take();
}

struct DecodedCall {
  uint32_t xid = 0;
  uint32_t prog = 0;
  uint32_t proc = 0;
  Bytes args;
  uint64_t trace_id = 0;     // from the optional trailer; 0 = untraced
  uint32_t deadline_ms = 0;  // v2 trailer budget; 0 = no deadline
};

Result<DecodedCall> DecodeCall(const Bytes& frame) {
  XdrReader r(frame);
  DecodedCall call;
  ASSIGN_OR_RETURN(call.xid, r.GetU32());
  ASSIGN_OR_RETURN(uint32_t type, r.GetU32());
  ASSIGN_OR_RETURN(call.prog, r.GetU32());
  ASSIGN_OR_RETURN(call.proc, r.GetU32());
  ASSIGN_OR_RETURN(call.args, r.GetOpaque());
  if (type != kTypeCall) {
    return DataLossError("expected RPC call frame");
  }
  // Optional trailer: magic | version | trace id | [deadline]. Anything
  // that does not parse as the trailer (wrong magic, truncated, future
  // version we cannot read) is ignored — the call itself is already
  // complete. Version 2 appends the deadline budget; a version beyond
  // what we know still yields the fields we do understand.
  if (!r.AtEnd()) {
    Result<uint32_t> magic = r.GetU32();
    if (magic.ok() && *magic == kRpcTraceMagic) {
      Result<uint32_t> version = r.GetU32();
      if (version.ok() && *version >= 1) {
        Result<uint64_t> trace = r.GetU64();
        if (trace.ok()) {
          call.trace_id = *trace;
          if (*version >= kRpcDeadlineVersion) {
            Result<uint32_t> deadline = r.GetU32();
            if (deadline.ok()) {
              call.deadline_ms = *deadline;
            }
          }
        }
      }
    }
  }
  return call;
}

// Appends the call trailer when the calling thread has an active trace or
// the call carries a deadline. Deadline-free calls keep emitting the
// version-1 wire bytes, so traces recorded against old peers stay
// byte-identical.
void PutCallTrailer(XdrWriter& w, uint32_t deadline_ms) {
  uint64_t trace = obs::CurrentTraceId();
  if (trace == 0 && deadline_ms == 0) {
    return;
  }
  w.PutU32(kRpcTraceMagic);
  w.PutU32(deadline_ms != 0 ? kRpcDeadlineVersion : kRpcTraceVersion);
  w.PutU64(trace);
  if (deadline_ms != 0) {
    w.PutU32(deadline_ms);
  }
}

// Dispatches with the call's trace id installed: in the context (for
// handlers that forward it explicitly) and as the thread's TraceScope (for
// deep call paths that read obs::CurrentTraceId()).
Result<Bytes> DispatchTraced(const RpcDispatcher& dispatcher,
                             const DecodedCall& call, const RpcContext& ctx) {
  if (call.trace_id == 0) {
    return dispatcher.Dispatch(call.prog, call.proc, call.args, ctx);
  }
  RpcContext traced = ctx;
  traced.trace_id = call.trace_id;
  obs::TraceScope scope(call.trace_id);
  return dispatcher.Dispatch(call.prog, call.proc, call.args, traced);
}

}  // namespace

// ---------------------------------------------------------------- client

RpcClient::RpcClient(std::unique_ptr<MsgStream> stream, EventLoop* loop)
    : stream_(std::move(stream)) {
  int fd = loop != nullptr ? stream_->PollFd() : -1;
  if (fd >= 0) {
    loop_ = loop;
    loop_fd_ = fd;
    Status st =
        loop_->Register(fd, /*want_read=*/true, /*want_write=*/false,
                        [this](uint32_t) { OnReadable(); });
    if (st.ok()) {
      return;
    }
    loop_ = nullptr;
    loop_fd_ = -1;
  }
  demux_thread_ = std::thread([this] { DemuxLoop(); });
}

RpcClient::~RpcClient() {
  Close();
  if (loop_ != nullptr) {
    // Waits out any in-flight readability callback, so destroying stream_
    // below cannot race the demux path.
    loop_->Unregister(loop_fd_);
  }
  if (demux_thread_.joinable()) {
    demux_thread_.join();
  }
  std::thread reaper;
  {
    std::lock_guard<std::mutex> lock(deadline_mu_);
    deadline_stop_ = true;
    reaper = std::move(deadline_thread_);
  }
  deadline_cv_.notify_all();
  if (reaper.joinable()) {
    reaper.join();
  }
}

std::future<Result<Bytes>> RpcClient::CallAsync(uint32_t prog, uint32_t proc,
                                                const Bytes& args) {
  return CallAsyncWithDeadline(
      prog, proc, args, default_deadline_ms_.load(std::memory_order_relaxed));
}

std::future<Result<Bytes>> RpcClient::CallAsyncWithDeadline(
    uint32_t prog, uint32_t proc, const Bytes& args, uint32_t deadline_ms) {
  std::promise<Result<Bytes>> promise;
  std::future<Result<Bytes>> future = promise.get_future();

  uint32_t xid;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    if (broken_) {
      promise.set_value(broken_status_);
      return future;
    }
    xid = next_xid_++;
    pending_.emplace(xid, std::move(promise));
  }

  XdrWriter w;
  w.PutU32(xid);
  w.PutU32(kTypeCall);
  w.PutU32(prog);
  w.PutU32(proc);
  w.PutOpaque(args);
  PutCallTrailer(w, deadline_ms);
  Status sent;
  {
    std::lock_guard<std::mutex> lock(send_mu_);
    sent = stream_->Send(w.Take());
  }
  if (!sent.ok()) {
    // Withdraw the pending slot (unless the demux path already failed it
    // while tearing the connection down) and resolve the future directly.
    std::unique_lock<std::mutex> lock(pending_mu_);
    auto it = pending_.find(xid);
    if (it != pending_.end()) {
      std::promise<Result<Bytes>> orphan = std::move(it->second);
      pending_.erase(it);
      lock.unlock();
      orphan.set_value(sent);
    }
    return future;
  }
  if (deadline_ms != 0) {
    ArmDeadline(xid, deadline_ms);
  }
  return future;
}

Result<Bytes> RpcClient::Call(uint32_t prog, uint32_t proc,
                              const Bytes& args) {
  return CallAsync(prog, proc, args).get();
}

Result<Bytes> RpcClient::CallWithDeadline(uint32_t prog, uint32_t proc,
                                          const Bytes& args,
                                          uint32_t deadline_ms) {
  return CallAsyncWithDeadline(prog, proc, args, deadline_ms).get();
}

void RpcClient::ArmDeadline(uint32_t xid, uint32_t deadline_ms) {
  auto when = std::chrono::steady_clock::now() +
              std::chrono::milliseconds(deadline_ms);
  {
    std::lock_guard<std::mutex> lock(deadline_mu_);
    if (deadline_stop_) {
      return;  // destructor already ran; the call fails via FailAllPending
    }
    deadlines_.emplace(when, xid);
    if (!deadline_thread_.joinable()) {
      deadline_thread_ = std::thread([this] { DeadlineLoop(); });
    }
  }
  deadline_cv_.notify_all();
}

void RpcClient::DeadlineLoop() {
  std::unique_lock<std::mutex> lock(deadline_mu_);
  while (!deadline_stop_) {
    if (deadlines_.empty()) {
      deadline_cv_.wait(lock);
      continue;
    }
    auto now = std::chrono::steady_clock::now();
    if (deadlines_.begin()->first > now) {
      deadline_cv_.wait_until(lock, deadlines_.begin()->first);
      continue;
    }
    std::vector<uint32_t> due;
    while (!deadlines_.empty() && deadlines_.begin()->first <= now) {
      due.push_back(deadlines_.begin()->second);
      deadlines_.erase(deadlines_.begin());
    }
    lock.unlock();
    for (uint32_t xid : due) {
      // Completed calls are no longer pending; firing is a no-op then.
      std::promise<Result<Bytes>> promise;
      bool found = false;
      {
        std::lock_guard<std::mutex> pending_lock(pending_mu_);
        auto it = pending_.find(xid);
        if (it != pending_.end()) {
          promise = std::move(it->second);
          pending_.erase(it);
          found = true;
        }
      }
      if (found) {
        promise.set_value(
            DeadlineExceededError("RPC deadline exceeded awaiting reply"));
      }
    }
    lock.lock();
  }
}

bool RpcClient::ProcessReply(const Bytes& frame) {
  XdrReader r(frame);
  auto xid = r.GetU32();
  auto type = r.GetU32();
  auto status_code = r.GetU32();
  auto body = r.GetOpaque();
  if (!xid.ok() || !type.ok() || !status_code.ok() || !body.ok() ||
      *type != kTypeReply) {
    // The framing is corrupt; nothing later on this stream can be trusted
    // to demux correctly.
    return false;
  }

  std::promise<Result<Bytes>> promise;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    auto it = pending_.find(*xid);
    if (it == pending_.end()) {
      return true;  // stale or duplicate xid; drop it
    }
    promise = std::move(it->second);
    pending_.erase(it);
  }
  if (*status_code != 0) {
    promise.set_value(
        Status(static_cast<StatusCode>(*status_code), ToString(*body)));
  } else {
    promise.set_value(std::move(*body));
  }
  return true;
}

void RpcClient::DemuxLoop() {
  while (true) {
    Result<Bytes> frame = stream_->Recv();
    if (!frame.ok()) {
      FailAllPending(frame.status());
      return;
    }
    if (!ProcessReply(*frame)) {
      FailAllPending(DataLossError("malformed RPC reply frame"));
      stream_->Shutdown();
      return;
    }
  }
}

void RpcClient::OnReadable() {
  while (true) {
    Result<std::optional<Bytes>> frame = stream_->TryRecv();
    if (!frame.ok()) {
      FailAllPending(frame.status());
      loop_->Unregister(loop_fd_);  // from the loop thread: returns at once
      return;
    }
    if (!frame->has_value()) {
      return;  // socket drained; the poller calls back on the next bytes
    }
    if (!ProcessReply(**frame)) {
      FailAllPending(DataLossError("malformed RPC reply frame"));
      stream_->Shutdown();
      loop_->Unregister(loop_fd_);
      return;
    }
  }
}

void RpcClient::FailAllPending(const Status& status) {
  std::unordered_map<uint32_t, std::promise<Result<Bytes>>> failed;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    if (!broken_) {
      broken_ = true;
      broken_status_ = status;
    }
    failed.swap(pending_);
  }
  for (auto& [xid, promise] : failed) {
    promise.set_value(broken_status_);
  }
}

void RpcClient::Close() {
  FailAllPending(UnavailableError("RPC client closed"));
  // Shutdown (not Close) so a blocked demux Recv unblocks without racing
  // descriptor teardown; the stream is released when the client is
  // destroyed.
  stream_->Shutdown();
}

size_t RpcClient::inflight() const {
  std::lock_guard<std::mutex> lock(pending_mu_);
  return pending_.size();
}

// ------------------------------------------------------------- dispatcher

void RpcDispatcher::Register(uint32_t prog, uint32_t proc, Handler handler) {
  handlers_[{prog, proc}] = std::move(handler);
}

void RpcDispatcher::SetPriority(uint32_t prog, uint32_t proc,
                                RpcPriority priority) {
  priorities_[{prog, proc}] = priority;
}

RpcPriority RpcDispatcher::PriorityOf(uint32_t prog, uint32_t proc) const {
  auto it = priorities_.find({prog, proc});
  return it != priorities_.end() ? it->second : RpcPriority::kNamespace;
}

Result<Bytes> RpcDispatcher::Dispatch(uint32_t prog, uint32_t proc,
                                      const Bytes& args,
                                      const RpcContext& ctx) const {
  auto it = handlers_.find({prog, proc});
  if (it == handlers_.end()) {
    return UnimplementedError(
        StrPrintf("no handler for prog %u proc %u", prog, proc));
  }
  return it->second(args, ctx);
}

Status RpcDispatcher::ServeOne(MsgStream& stream,
                               const RpcContext& ctx) const {
  ASSIGN_OR_RETURN(Bytes frame, stream.Recv());
  ASSIGN_OR_RETURN(DecodedCall call, DecodeCall(frame));
  return stream.Send(EncodeReply(call.xid, DispatchTraced(*this, call, ctx)));
}

void RpcDispatcher::ServeConnection(MsgStream& stream,
                                    const RpcContext& ctx) const {
  while (true) {
    Status st = ServeOne(stream, ctx);
    if (!st.ok()) {
      return;  // peer went away (or stream corrupted); connection is done
    }
  }
}

void RpcDispatcher::ServeConnection(MsgStream& stream, const RpcContext& ctx,
                                    const ServeOptions& options) const {
  if (options.pool == nullptr) {
    ServeConnection(stream, ctx);
    return;
  }

  // Shared by the recv loop (this thread) and the pool tasks. Reference
  // counted: a worker's final notify may run concurrently with this
  // function returning, so the last task to finish frees the block.
  // `stream` and `ctx` stay stack-borrowed — the drain wait below keeps
  // them valid until every worker has written its reply.
  struct ConnState {
    std::mutex mu;
    std::condition_variable cv;
    size_t inflight = 0;
    std::mutex write_mu;  // one reply frame on the wire at a time
  };
  auto state = std::make_shared<ConnState>();
  const size_t max_inflight =
      options.max_inflight_per_conn > 0 ? options.max_inflight_per_conn : 1;

  while (true) {
    Result<Bytes> frame = stream.Recv();
    if (!frame.ok()) {
      break;  // peer went away
    }
    Result<DecodedCall> call = DecodeCall(*frame);
    if (!call.ok()) {
      break;  // framing is corrupt; stop reading, drain, hang up
    }
    {
      std::unique_lock<std::mutex> lock(state->mu);
      state->cv.wait(lock,
                     [&] { return state->inflight < max_inflight; });
      ++state->inflight;
    }
    options.pool->Submit([this, &stream, &ctx, state,
                          call = std::move(*call)] {
      Bytes reply = EncodeReply(call.xid, DispatchTraced(*this, call, ctx));
      {
        std::lock_guard<std::mutex> write_lock(state->write_mu);
        (void)stream.Send(reply);  // peer may already be gone; that's fine
      }
      {
        std::lock_guard<std::mutex> lock(state->mu);
        --state->inflight;
      }
      state->cv.notify_all();
    });
  }

  // Every accepted request holds a slot until its reply is written; wait
  // for them so `stream` and `ctx` stay valid for the workers.
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->inflight == 0; });
}

// --------------------------------------------------- event-driven serving

RpcConnection::RpcConnection(const RpcDispatcher* dispatcher,
                             std::shared_ptr<MsgStream> stream,
                             RpcContext ctx, const Options& options,
                             ClosedFn on_closed)
    : dispatcher_(dispatcher),
      stream_(std::move(stream)),
      ctx_(std::move(ctx)),
      opts_(options),
      on_closed_(std::move(on_closed)) {
  if (opts_.max_inflight == 0) {
    opts_.max_inflight = 1;
  }
  if (opts_.send_queue_limit == 0) {
    opts_.send_queue_limit = 1;
  }
}

RpcConnection::~RpcConnection() = default;

Result<std::shared_ptr<RpcConnection>> RpcConnection::Start(
    const RpcDispatcher* dispatcher, std::shared_ptr<MsgStream> stream,
    RpcContext ctx, const Options& options, ClosedFn on_closed) {
  if (options.loop == nullptr || options.pool == nullptr) {
    return InvalidArgumentError("RpcConnection requires a loop and a pool");
  }
  int fd = stream->PollFd();
  if (fd < 0) {
    return InvalidArgumentError(
        "stream has no pollable fd; use ServeConnection on a thread");
  }
  auto conn = std::shared_ptr<RpcConnection>(
      new RpcConnection(dispatcher, std::move(stream), std::move(ctx),
                        options, std::move(on_closed)));
  conn->fd_ = fd;
  // The registered callback keeps the connection alive until it is
  // unregistered (FinishClose or Abort breaks the cycle).
  Status st = options.loop->Register(
      fd, /*want_read=*/true, /*want_write=*/false,
      [conn](uint32_t events) { conn->OnEvent(events); });
  if (!st.ok()) {
    return st;
  }
  // Frames pipelined behind the handshake may already sit in the stream's
  // reassembly buffer where readability will never fire for them; pump
  // once to pick them up.
  options.loop->Post([conn] { conn->PumpReads(); });
  return conn;
}

void RpcConnection::OnEvent(uint32_t events) {
  if (events & EventLoop::kWritable) {
    Drain();
  }
  if (events & EventLoop::kReadable) {
    PumpReads();
  }
  if (events & EventLoop::kError) {
    // EPOLLHUP/EPOLLERR are reported regardless of the interest mask, so
    // a paused (mask-0) connection would spin the level-triggered poller
    // at 100% CPU: nothing consumes the condition. The socket is dead
    // both ways (RST/err) — tear it down now; in-flight handlers finish
    // on the pool and their replies are dropped.
    std::lock_guard<std::mutex> lock(mu_);
    bool reads_consume = read_open_ && !read_paused_ && !closed_ &&
                         inflight_ < opts_.max_inflight;
    if (!closed_ && !reads_consume) {
      read_open_ = false;
      send_broken_ = true;
      send_queue_.clear();
      cv_.notify_all();  // unblock workers waiting on queue space
      opts_.loop->Unregister(fd_);  // loop thread: no self-wait, idempotent
      MaybeFinishLocked();
    }
  }
}

void RpcConnection::UpdateInterestLocked() {
  if (closed_) {
    return;
  }
  bool want_read = read_open_ && !read_paused_;
  if (want_read == applied_read_ && want_write_ == applied_write_) {
    return;  // epoll already has this interest set
  }
  applied_read_ = want_read;
  applied_write_ = want_write_;
  (void)opts_.loop->ModifyInterest(fd_, want_read, want_write_);
}

void RpcConnection::PumpReads() {
  obs::RpcRecorder* rec = opts_.recorder;
  const bool timing = rec != nullptr && rec->enabled();
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || !read_open_) {
        return;
      }
      if (inflight_ >= opts_.max_inflight) {
        if (!read_paused_) {
          read_paused_ = true;
          UpdateInterestLocked();
        }
        return;
      }
    }
    obs::CallTimestamps ts;
    if (timing) {
      ts.received_ns = rec->Now();
    }
    Result<std::optional<Bytes>> frame = stream_->TryRecv();
    if (frame.ok() && !frame->has_value()) {
      return;  // socket drained; wait for the next readability event
    }
    Result<DecodedCall> call =
        frame.ok() ? DecodeCall(**frame) : Result<DecodedCall>(frame.status());
    if (!call.ok()) {
      // Peer hung up or the framing is corrupt: stop accepting requests,
      // let in-flight replies drain, then close.
      std::lock_guard<std::mutex> lock(mu_);
      read_open_ = false;
      UpdateInterestLocked();
      MaybeFinishLocked();
      return;
    }
    if (timing) {
      ts.decoded_ns = rec->Now();
    }
    const bool tiered = opts_.shed_data_watermark > 0 ||
                        opts_.shed_namespace_watermark > 0;
    // One queue_depth() read serves both the admission check and the
    // recorder's pool-backlog sample.
    size_t pool_depth = 0;
    if (timing || tiered || opts_.admission_queue_limit > 0) {
      pool_depth = opts_.pool->queue_depth();
    }
    RpcPriority priority = RpcPriority::kNamespace;
    if (tiered) {
      priority = dispatcher_->PriorityOf(call->prog, call->proc);
    }
    const size_t admission_limit = AdmissionLimitFor(priority);
    if (admission_limit > 0 && pool_depth >= admission_limit) {
      // Admission bound or shed watermark hit: answer busy without
      // touching the pool. Control replies push without blocking
      // (stalling the loop would stall every connection), but a reject
      // storm must not grow the queue unboundedly either: once the queue
      // reaches its limit, pause reads until the drain works it back
      // down.
      busy_rejected_.fetch_add(1, std::memory_order_relaxed);
      shed_by_priority_[static_cast<size_t>(priority)].fetch_add(
          1, std::memory_order_relaxed);
      if (rec != nullptr) {
        rec->RecordShed(call->prog, call->proc,
                        static_cast<size_t>(priority));
      }
      std::unique_lock<std::mutex> lock(mu_);
      if (!closed_ && !send_broken_) {
        PushReplyAndDrainLocked(
            EncodeReply(call->xid, ResourceExhaustedError(
                                       "server busy: admission limit "
                                       "reached")),
            lock);
        if (!closed_ && send_queue_.size() >= opts_.send_queue_limit &&
            !read_paused_) {
          read_paused_ = true;
          UpdateInterestLocked();
          return;
        }
      }
      continue;
    }
    // Deadline snapshot at admission: the v2 trailer carries a relative
    // budget, so expiry is anchored to local arrival time (no cross-host
    // clock agreement needed).
    uint64_t expires_at_ns = 0;
    if (call->deadline_ms != 0) {
      expires_at_ns =
          obs::MonotonicNanos() + call->deadline_ms * uint64_t{1'000'000};
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++inflight_;
    }
    auto self = shared_from_this();
    opts_.pool->Submit(
        [self, call = std::move(*call), ts, pool_depth,
         expires_at_ns]() mutable {
          self->ExecuteOnPool(call.xid, call.prog, call.proc,
                              std::move(call.args), call.trace_id,
                              expires_at_ns, ts, pool_depth);
        });
  }
}

size_t RpcConnection::AdmissionLimitFor(RpcPriority priority) const {
  size_t limit = opts_.admission_queue_limit;  // hard limit, every class
  auto tighten = [&limit](size_t watermark) {
    if (watermark > 0 && (limit == 0 || watermark < limit)) {
      limit = watermark;
    }
  };
  // Lower classes shed at every watermark above them, so a host that only
  // configures the namespace tier still sheds data traffic there first.
  if (priority == RpcPriority::kData) {
    tighten(opts_.shed_data_watermark);
  }
  if (priority != RpcPriority::kControl) {
    tighten(opts_.shed_namespace_watermark);
  }
  return limit;
}

void RpcConnection::ExecuteOnPool(uint32_t xid, uint32_t prog, uint32_t proc,
                                  Bytes args, uint64_t trace_id,
                                  uint64_t expires_at_ns,
                                  obs::CallTimestamps ts,
                                  size_t pool_queue_depth) {
  obs::RpcRecorder* rec = opts_.recorder;
  // received_ns == 0 means PumpReads saw the recorder disabled; keep the
  // whole call untimed rather than record half a span set.
  const bool timing = rec != nullptr && ts.received_ns != 0;
  if (timing) {
    ts.exec_start_ns = rec->Now();
  }
  Bytes reply;
  if (expires_at_ns != 0 && obs::MonotonicNanos() >= expires_at_ns) {
    // Expired at dequeue: the caller has already given up, so executing
    // would burn a worker on a reply nobody reads. Answer without
    // dispatching.
    expired_dropped_.fetch_add(1, std::memory_order_relaxed);
    if (rec != nullptr) {
      rec->RecordExpired(prog, proc);
    }
    reply = EncodeReply(
        xid, DeadlineExceededError("deadline expired before execution"));
  } else {
    DecodedCall call;
    call.xid = xid;
    call.prog = prog;
    call.proc = proc;
    call.args = std::move(args);
    call.trace_id = trace_id;
    reply = EncodeReply(xid, DispatchTraced(*dispatcher_, call, ctx_));
  }
  if (timing) {
    ts.exec_end_ns = rec->Now();
  }
  size_t send_depth = EnqueueReply(std::move(reply));
  if (timing) {
    ts.replied_ns = rec->Now();
    rec->RecordCall(prog, proc, ts, send_depth, pool_queue_depth, trace_id);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
    if (ShouldResumeReadsLocked()) {
      ResumeReadsLocked();
    }
    MaybeFinishLocked();
  }
}

bool RpcConnection::ShouldResumeReadsLocked() const {
  if (!read_paused_ || !read_open_ || closed_ || send_broken_) {
    return false;
  }
  // Hysteresis: resume reads at half the cap, not cap-1, so a client
  // pinned at max_inflight costs one pause/resume round trip (epoll_ctl
  // + loop wakeup) per half-window of requests instead of per request.
  const size_t low_water = opts_.max_inflight > 1 ? opts_.max_inflight / 2 : 1;
  return inflight_ < low_water && send_queue_.size() < opts_.send_queue_limit;
}

void RpcConnection::ResumeReadsLocked() {
  read_paused_ = false;
  // Interest changes and read pumping belong to the loop thread; frames
  // may be waiting in the stream's reassembly buffer where readability
  // will not fire again, so pump explicitly.
  auto self = shared_from_this();
  opts_.loop->Post([self] {
    {
      std::lock_guard<std::mutex> lock(self->mu_);
      if (self->closed_) {
        return;
      }
      self->UpdateInterestLocked();
    }
    self->PumpReads();
  });
}

size_t RpcConnection::EnqueueReply(Bytes frame) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!opts_.loop->InLoopThread()) {
    // Backpressure: hold this worker (and its in-flight slot, which pauses
    // reads) until the writer frees queue space.
    cv_.wait(lock, [&] {
      return closed_ || send_broken_ ||
             send_queue_.size() < opts_.send_queue_limit;
    });
  }
  if (closed_ || send_broken_) {
    return 0;  // connection is gone; the reply has nowhere to go
  }
  size_t depth = send_queue_.size() + 1;  // depth right after the push below
  PushReplyAndDrainLocked(std::move(frame), lock);
  return depth;
}

void RpcConnection::PushReplyAndDrainLocked(
    Bytes frame, std::unique_lock<std::mutex>& lock) {
  send_queue_.push_back(std::move(frame));
  queue_peak_ = std::max(queue_peak_, send_queue_.size());
  // Whoever finds the writer token free drains inline — usually the worker
  // that just finished this request, which seals and sends with zero
  // thread hops when the wire is idle. With the wire backed up
  // (flush_pending_), workers hand off instead: the armed EPOLLOUT event
  // resumes draining on the loop.
  if (draining_ || flush_pending_ || send_broken_) {
    return;
  }
  draining_ = true;
  DrainQueueLocked(lock);
}

void RpcConnection::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  if (draining_) {
    return;  // another thread holds the writer token; it will re-check
  }
  draining_ = true;
  DrainQueueLocked(lock);
}

void RpcConnection::DrainQueueLocked(std::unique_lock<std::mutex>& lock) {
  // Requires: draining_ token held by this thread. The stream's send side
  // is only ever touched by the token holder, so there is exactly one
  // writer at any moment even though the token migrates between workers
  // and the loop.
  while (!closed_ && !send_broken_) {
    if (flush_pending_) {
      lock.unlock();
      Result<bool> flushed = stream_->FlushSend();
      lock.lock();
      if (!flushed.ok()) {
        send_broken_ = true;
        break;
      }
      flush_pending_ = !flushed.value();
      if (flush_pending_) {
        break;  // kernel buffer still full; wait for writability
      }
      continue;
    }
    if (send_queue_.empty()) {
      break;
    }
    Bytes frame = std::move(send_queue_.front());
    send_queue_.pop_front();
    cv_.notify_all();  // queue space freed; unblock a waiting worker
    lock.unlock();
    Result<bool> sent = stream_->SendNonBlocking(frame);
    lock.lock();
    if (!sent.ok()) {
      send_broken_ = true;
      break;
    }
    flush_pending_ = !sent.value();
  }
  draining_ = false;
  if (send_broken_) {
    send_queue_.clear();
    cv_.notify_all();
  }
  if (!closed_) {
    want_write_ = flush_pending_ && !send_broken_;
    // A busy-reject storm pauses reads on a full queue without any
    // in-flight work, so the drain is the only party who can restart
    // them once it frees queue space.
    if (ShouldResumeReadsLocked()) {
      ResumeReadsLocked();
    }
    UpdateInterestLocked();
    MaybeFinishLocked();
  }
}

void RpcConnection::MaybeFinishLocked() {
  if (closed_ || finish_scheduled_ || read_open_ || inflight_ > 0) {
    return;
  }
  if (!send_broken_ && (!send_queue_.empty() || flush_pending_)) {
    return;  // still replies to deliver
  }
  finish_scheduled_ = true;
  auto self = shared_from_this();
  opts_.loop->Post([self] { self->FinishClose(); });
}

void RpcConnection::FinishClose() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      return;
    }
    closed_ = true;
    send_queue_.clear();
    cv_.notify_all();
  }
  opts_.loop->Unregister(fd_);  // from the loop thread: returns at once
  stream_->Shutdown();
  InvokeClosed();
}

void RpcConnection::Abort() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      return;
    }
    closed_ = true;
    send_queue_.clear();
    cv_.notify_all();
  }
  // Waits out any in-flight loop callback for this fd, so the caller can
  // rely on full quiescence afterwards.
  opts_.loop->Unregister(fd_);
  stream_->Shutdown();
  InvokeClosed();
}

void RpcConnection::InvokeClosed() {
  ClosedFn cb;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cb = std::move(on_closed_);
    on_closed_ = nullptr;
  }
  if (cb) {
    cb(this);
  }
}

bool RpcConnection::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

size_t RpcConnection::send_queue_peak() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_peak_;
}

uint64_t RpcConnection::busy_rejected() const {
  return busy_rejected_.load(std::memory_order_relaxed);
}

uint64_t RpcConnection::shed_by_priority(RpcPriority priority) const {
  return shed_by_priority_[static_cast<size_t>(priority)].load(
      std::memory_order_relaxed);
}

uint64_t RpcConnection::expired_dropped() const {
  return expired_dropped_.load(std::memory_order_relaxed);
}

}  // namespace discfs
