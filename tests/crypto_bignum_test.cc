#include "src/crypto/bignum.h"

#include <gtest/gtest.h>

#include "src/util/prng.h"

namespace discfs {
namespace {

BigNum FromHexOrDie(std::string_view hex) {
  auto r = BigNum::FromHex(hex);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.value();
}

TEST(BigNum, ZeroProperties) {
  BigNum zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_EQ(zero.BitLength(), 0u);
  EXPECT_EQ(zero.ToHex(), "0");
  EXPECT_EQ(zero.ToDecimal(), "0");
  EXPECT_EQ(zero.ToUint64(), 0u);
  EXPECT_FALSE(zero.IsOdd());
}

TEST(BigNum, Uint64RoundTrip) {
  for (uint64_t v : {0ULL, 1ULL, 255ULL, 256ULL, 0xffffffffULL,
                     0x100000000ULL, 0xdeadbeefcafebabeULL}) {
    EXPECT_EQ(BigNum(v).ToUint64(), v);
  }
}

TEST(BigNum, HexRoundTrip) {
  for (const char* hex :
       {"1", "ff", "100", "deadbeef", "123456789abcdef0123456789abcdef"}) {
    EXPECT_EQ(FromHexOrDie(hex).ToHex(), hex);
  }
}

TEST(BigNum, HexOddLengthAccepted) {
  EXPECT_EQ(FromHexOrDie("abc").ToUint64(), 0xabcu);
}

TEST(BigNum, HexRejectsGarbage) {
  EXPECT_FALSE(BigNum::FromHex("xyz").ok());
}

TEST(BigNum, DecimalRoundTrip) {
  for (const char* dec :
       {"1", "10", "255", "1000000007", "123456789012345678901234567890"}) {
    auto n = BigNum::FromDecimal(dec);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n->ToDecimal(), dec);
  }
}

TEST(BigNum, BytesRoundTripFixedWidth) {
  BigNum n(0x1234u);
  Bytes b = n.ToBytes(4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0u);
  EXPECT_EQ(b[1], 0u);
  EXPECT_EQ(b[2], 0x12u);
  EXPECT_EQ(b[3], 0x34u);
  EXPECT_EQ(BigNum::FromBytes(b).ToUint64(), 0x1234u);
}

TEST(BigNum, CompareOrdering) {
  BigNum a(5), b(7), c = FromHexOrDie("123456789abcdef01234");
  EXPECT_LT(BigNum::Compare(a, b), 0);
  EXPECT_GT(BigNum::Compare(b, a), 0);
  EXPECT_EQ(BigNum::Compare(a, a), 0);
  EXPECT_LT(BigNum::Compare(b, c), 0);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b <= c);
  EXPECT_TRUE(c > a);
}

TEST(BigNum, AddCarriesAcrossLimbs) {
  BigNum a = FromHexOrDie("ffffffffffffffff");
  BigNum sum = a + BigNum(1);
  EXPECT_EQ(sum.ToHex(), "10000000000000000");
}

TEST(BigNum, SubBorrowsAcrossLimbs) {
  BigNum a = FromHexOrDie("10000000000000000");
  EXPECT_EQ((a - BigNum(1)).ToHex(), "ffffffffffffffff");
}

TEST(BigNum, MulSmall) {
  EXPECT_EQ((BigNum(12345) * BigNum(67890)).ToUint64(), 12345ull * 67890ull);
}

TEST(BigNum, MulByZero) {
  BigNum a = FromHexOrDie("deadbeefdeadbeefdeadbeef");
  EXPECT_TRUE((a * BigNum()).IsZero());
  EXPECT_TRUE((BigNum() * a).IsZero());
}

TEST(BigNum, ShiftLeftRightInverse) {
  BigNum a = FromHexOrDie("deadbeefcafebabe1234");
  for (size_t s : {1u, 7u, 31u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ(BigNum::ShiftRight(BigNum::ShiftLeft(a, s), s), a) << s;
  }
}

TEST(BigNum, ShiftRightToZero) {
  EXPECT_TRUE(BigNum::ShiftRight(BigNum(1), 1).IsZero());
  EXPECT_TRUE(BigNum::ShiftRight(FromHexOrDie("ff"), 8).IsZero());
}

TEST(BigNum, DivModBasic) {
  auto [q, r] = BigNum::DivMod(BigNum(100), BigNum(7));
  EXPECT_EQ(q.ToUint64(), 14u);
  EXPECT_EQ(r.ToUint64(), 2u);
}

TEST(BigNum, DivModDividendSmaller) {
  auto [q, r] = BigNum::DivMod(BigNum(3), BigNum(10));
  EXPECT_TRUE(q.IsZero());
  EXPECT_EQ(r.ToUint64(), 3u);
}

// Property: for random a, b: a == (a/b)*b + a%b and a%b < b.
TEST(BigNum, DivModPropertyRandom) {
  Prng prng(42);
  for (int iter = 0; iter < 300; ++iter) {
    size_t asize = 1 + prng.NextBelow(48);
    size_t bsize = 1 + prng.NextBelow(24);
    BigNum a = BigNum::FromBytes(prng.NextBytes(asize));
    BigNum b = BigNum::FromBytes(prng.NextBytes(bsize));
    if (b.IsZero()) {
      continue;
    }
    auto [q, r] = BigNum::DivMod(a, b);
    EXPECT_LT(BigNum::Compare(r, b), 0);
    EXPECT_EQ(BigNum::Add(BigNum::Mul(q, b), r), a);
  }
}

// Property: ring laws on random values.
TEST(BigNum, RingLawsRandom) {
  Prng prng(7);
  for (int iter = 0; iter < 100; ++iter) {
    BigNum a = BigNum::FromBytes(prng.NextBytes(1 + prng.NextBelow(20)));
    BigNum b = BigNum::FromBytes(prng.NextBytes(1 + prng.NextBelow(20)));
    BigNum c = BigNum::FromBytes(prng.NextBytes(1 + prng.NextBelow(20)));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ((a + b) - b, a);
  }
}

TEST(BigNum, ModExpSmallCases) {
  // 3^4 mod 5 = 81 mod 5 = 1
  EXPECT_EQ(BigNum::ModExp(BigNum(3), BigNum(4), BigNum(5)).ToUint64(), 1u);
  // x^0 = 1
  EXPECT_EQ(BigNum::ModExp(BigNum(9), BigNum(0), BigNum(7)).ToUint64(), 1u);
  // 2^10 mod 1000 = 24
  EXPECT_EQ(BigNum::ModExp(BigNum(2), BigNum(10), BigNum(1000)).ToUint64(),
            24u);
}

TEST(BigNum, ModExpFermatLittleTheorem) {
  // p = 1000000007 (prime): a^(p-1) == 1 mod p.
  BigNum p(1000000007);
  BigNum p_minus_1(1000000006);
  Prng prng(3);
  for (int i = 0; i < 20; ++i) {
    BigNum a(2 + prng.NextBelow(1000000000));
    EXPECT_EQ(BigNum::ModExp(a, p_minus_1, p).ToUint64(), 1u);
  }
}

TEST(BigNum, ModInverseSmall) {
  // 3 * 4 = 12 == 1 mod 11.
  auto inv = BigNum::ModInverse(BigNum(3), BigNum(11));
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(inv->ToUint64(), 4u);
}

TEST(BigNum, ModInverseNotInvertible) {
  EXPECT_FALSE(BigNum::ModInverse(BigNum(6), BigNum(9)).ok());
}

TEST(BigNum, ModInversePropertyRandom) {
  Prng prng(11);
  BigNum m = FromHexOrDie("fffffffb");  // prime 2^32-5
  for (int i = 0; i < 100; ++i) {
    BigNum a(1 + prng.NextBelow(0xfffffffaULL));
    auto inv = BigNum::ModInverse(a, m);
    ASSERT_TRUE(inv.ok());
    EXPECT_EQ(BigNum::ModMul(a, inv.value(), m).ToUint64(), 1u);
  }
}

TEST(BigNum, GcdBasics) {
  EXPECT_EQ(BigNum::Gcd(BigNum(12), BigNum(18)).ToUint64(), 6u);
  EXPECT_EQ(BigNum::Gcd(BigNum(17), BigNum(5)).ToUint64(), 1u);
  EXPECT_EQ(BigNum::Gcd(BigNum(0), BigNum(5)).ToUint64(), 5u);
}

TEST(BigNum, IsProbablePrimeKnownValues) {
  Prng prng(5);
  auto rand_below = [&prng](const BigNum& hi) {
    uint64_t h = hi.ToUint64();
    return BigNum(2 + prng.NextBelow(h > 4 ? h - 4 : 1));
  };
  for (uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 101ULL, 65537ULL, 1000000007ULL}) {
    EXPECT_TRUE(BigNum::IsProbablePrime(BigNum(p), 20, rand_below)) << p;
  }
  for (uint64_t c : {0ULL, 1ULL, 4ULL, 100ULL, 65535ULL, 1000000008ULL,
                     561ULL /* Carmichael */, 41041ULL /* Carmichael */}) {
    EXPECT_FALSE(BigNum::IsProbablePrime(BigNum(c), 20, rand_below)) << c;
  }
}

TEST(BigNum, RandomBelowInRange) {
  Prng prng(9);
  auto rand_bytes = [&prng](size_t n) { return prng.NextBytes(n); };
  BigNum bound = FromHexOrDie("10000");
  for (int i = 0; i < 200; ++i) {
    BigNum r = BigNum::RandomBelow(bound, rand_bytes);
    EXPECT_LT(BigNum::Compare(r, bound), 0);
  }
}

TEST(BigNum, BitAccess) {
  BigNum n = FromHexOrDie("5");  // 0b101
  EXPECT_TRUE(n.Bit(0));
  EXPECT_FALSE(n.Bit(1));
  EXPECT_TRUE(n.Bit(2));
  EXPECT_FALSE(n.Bit(3));
  EXPECT_FALSE(n.Bit(1000));
}

TEST(BigNum, BitLength) {
  EXPECT_EQ(BigNum(1).BitLength(), 1u);
  EXPECT_EQ(BigNum(2).BitLength(), 2u);
  EXPECT_EQ(BigNum(255).BitLength(), 8u);
  EXPECT_EQ(BigNum(256).BitLength(), 9u);
  EXPECT_EQ(FromHexOrDie("80000000000000000").BitLength(), 68u);
}

// Knuth algorithm D edge: the "add back" step (D6) triggers rarely; this
// divisor/dividend pair exercises multi-limb division heavily.
TEST(BigNum, DivModStress64BitBoundaries) {
  BigNum a = FromHexOrDie("ffffffffffffffffffffffffffffffff");
  BigNum b = FromHexOrDie("ffffffff00000001");
  auto [q, r] = BigNum::DivMod(a, b);
  EXPECT_EQ(BigNum::Add(BigNum::Mul(q, b), r), a);
  EXPECT_LT(BigNum::Compare(r, b), 0);
}

// The remainder-only reduction must agree with DivMod everywhere,
// including the single-limb fast path and the D6 add-back divisor above.
TEST(BigNum, ModMatchesDivModRandom) {
  Prng prng(21);
  for (int iter = 0; iter < 400; ++iter) {
    BigNum a = BigNum::FromBytes(prng.NextBytes(1 + prng.NextBelow(48)));
    BigNum m = BigNum::FromBytes(prng.NextBytes(1 + prng.NextBelow(24)));
    if (m.IsZero()) {
      continue;
    }
    EXPECT_EQ(BigNum::Mod(a, m), BigNum::DivMod(a, m).second);
  }
  BigNum a = FromHexOrDie("ffffffffffffffffffffffffffffffff");
  BigNum b = FromHexOrDie("ffffffff00000001");
  EXPECT_EQ(BigNum::Mod(a, b), BigNum::DivMod(a, b).second);
}

// ----- Montgomery exponentiation -----

// Montgomery ModExp must agree with the pre-existing reference
// implementation across operand widths (1 limb up to beyond DSA sizes),
// including bases >= m and even moduli (which take the fallback path).
TEST(BigNum, MontgomeryModExpMatchesReferenceRandom) {
  Prng prng(31);
  for (int iter = 0; iter < 150; ++iter) {
    BigNum m = BigNum::FromBytes(prng.NextBytes(1 + prng.NextBelow(40)));
    if (m.BitLength() <= 1) {
      continue;
    }
    BigNum base = BigNum::FromBytes(prng.NextBytes(1 + prng.NextBelow(48)));
    BigNum exp = BigNum::FromBytes(prng.NextBytes(1 + prng.NextBelow(24)));
    EXPECT_EQ(BigNum::ModExp(base, exp, m),
              BigNum::ModExpReference(base, exp, m))
        << "m=" << m.ToHex() << " base=" << base.ToHex()
        << " exp=" << exp.ToHex();
  }
}

TEST(BigNum, ModExpDoubleMatchesSeparateExponentiations) {
  Prng prng(37);
  for (int iter = 0; iter < 100; ++iter) {
    BigNum m = BigNum::FromBytes(prng.NextBytes(1 + prng.NextBelow(40)));
    if (m.BitLength() <= 1) {
      continue;
    }
    BigNum g = BigNum::FromBytes(prng.NextBytes(1 + prng.NextBelow(48)));
    BigNum y = BigNum::FromBytes(prng.NextBytes(1 + prng.NextBelow(48)));
    BigNum u1 = BigNum::FromBytes(prng.NextBytes(1 + prng.NextBelow(24)));
    BigNum u2 = BigNum::FromBytes(prng.NextBytes(1 + prng.NextBelow(24)));
    BigNum expected = BigNum::ModMul(BigNum::ModExpReference(g, u1, m),
                                     BigNum::ModExpReference(y, u2, m), m);
    EXPECT_EQ(BigNum::ModExpDouble(g, u1, y, u2, m), expected)
        << "m=" << m.ToHex();
  }
}

TEST(BigNum, ModExpEdgeCases) {
  BigNum odd = FromHexOrDie("10000000000000000000000001");  // odd, multi-limb
  // Exponent zero -> 1 mod m, on both paths.
  EXPECT_EQ(BigNum::ModExp(BigNum(5), BigNum(0), odd), BigNum(1));
  EXPECT_EQ(BigNum::ModExp(BigNum(5), BigNum(0), BigNum(2)), BigNum(1));
  EXPECT_EQ(BigNum::ModExpDouble(BigNum(5), BigNum(0), BigNum(7), BigNum(0),
                                 odd),
            BigNum(1));
  // Base >= m reduces first.
  BigNum big_base = FromHexOrDie("ffffffffffffffffffffffffffffffff");
  EXPECT_EQ(BigNum::ModExp(big_base, BigNum(3), odd),
            BigNum::ModExpReference(big_base, BigNum(3), odd));
  // Zero base with non-zero exponent.
  EXPECT_TRUE(BigNum::ModExp(BigNum(0), BigNum(9), odd).IsZero());
  // Modulus one: everything collapses to zero.
  EXPECT_TRUE(BigNum::ModExp(BigNum(5), BigNum(3), BigNum(1)).IsZero());
  // One exponent zero in the double form drops that base entirely.
  EXPECT_EQ(
      BigNum::ModExpDouble(BigNum(5), BigNum(0), BigNum(7), BigNum(3), odd),
      BigNum::ModExpReference(BigNum(7), BigNum(3), odd));
}

TEST(MontgomeryCtxTest, RejectsEvenOrTrivialModulus) {
  EXPECT_FALSE(MontgomeryCtx::Create(BigNum(10)).ok());
  EXPECT_FALSE(MontgomeryCtx::Create(BigNum(0)).ok());
  EXPECT_FALSE(MontgomeryCtx::Create(BigNum(1)).ok());
  EXPECT_TRUE(MontgomeryCtx::Create(BigNum(3)).ok());
}

TEST(MontgomeryCtxTest, DomainRoundTripAndPrecompute) {
  BigNum m = FromHexOrDie("f123456789abcdef123456789abcdef1");
  auto ctx = MontgomeryCtx::Create(m);
  ASSERT_TRUE(ctx.ok());
  Prng prng(41);
  for (int i = 0; i < 50; ++i) {
    BigNum a = BigNum::FromBytes(prng.NextBytes(1 + prng.NextBelow(20)));
    EXPECT_EQ(ctx->FromMont(ctx->ToMont(a)), BigNum::Mod(a, m));
  }
  // A precomputed window table gives the same answers as the one-shot form.
  BigNum base = FromHexOrDie("deadbeefcafebabe");
  MontgomeryCtx::WindowTable table = ctx->Precompute(base);
  for (int i = 0; i < 20; ++i) {
    BigNum exp = BigNum::FromBytes(prng.NextBytes(1 + prng.NextBelow(20)));
    EXPECT_EQ(ctx->ModExp(table, exp), ctx->ModExp(base, exp));
    EXPECT_EQ(ctx->ModExp(table, exp),
              BigNum::ModExpReference(base, exp, m));
  }
}

}  // namespace
}  // namespace discfs
