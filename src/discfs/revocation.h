// Revocation state (§4.1 of the paper): "revocation can be done by
// notifying the server about bad keys or credentials. If the credentials
// are relatively short-lived, the server need only remember such
// information for a short period of time."
//
// Entries therefore carry expiry times and are garbage-collected; the
// expected usage is that the revocation horizon matches the maximum
// credential lifetime.
#ifndef DISCFS_SRC_DISCFS_REVOCATION_H_
#define DISCFS_SRC_DISCFS_REVOCATION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/status.h"

namespace discfs {

class RevocationList {
 public:
  // One revocation: when it was applied, and (when the revoking operation
  // was traced, see src/obs) the trace id it carries through anti-entropy.
  struct Entry {
    int64_t revoked_at = 0;
    uint64_t trace_id = 0;
  };

  // horizon_seconds: how long entries are remembered (0 = forever).
  explicit RevocationList(int64_t horizon_seconds)
      : horizon_seconds_(horizon_seconds) {}

  void RevokeKey(const std::string& key_id, int64_t now,
                 uint64_t trace_id = 0);
  void RevokeCredential(const std::string& credential_id, int64_t now,
                        uint64_t trace_id = 0);

  bool IsKeyRevoked(const std::string& key_id, int64_t now) const;
  bool IsCredentialRevoked(const std::string& credential_id,
                           int64_t now) const;

  // Drops expired entries; called opportunistically by the server.
  void Expire(int64_t now);

  size_t size() const { return keys_.size() + credentials_.size(); }

  // --- Anti-entropy support (PR 6) ---
  //
  // Digests cover the sorted entry *ids only*: revoked_at timestamps are
  // stamped by whichever node applied the revocation, so two lists that
  // agree on membership can disagree on timestamps forever — hashing them
  // would keep digests unequal and sync from ever converging. Merging
  // keeps the max timestamp per id (the safe direction: a revocation can
  // only be remembered longer, never forgotten sooner).

  // SHA-256 over the sorted unexpired entry ids, type-tagged so a key id
  // and a credential id never collide.
  Bytes Digest(int64_t now) const;

  // XDR-serializes the unexpired entries for shipping to a peer. Format
  // v2 (magic-prefixed) carries trace ids; MergeSerialized still accepts
  // the unprefixed v1 layout from peers that predate them.
  Bytes SerializeEntries(int64_t now) const;

  struct MergeResult {
    struct NewEntry {
      std::string id;
      uint64_t trace_id = 0;  // from the peer's entry (0 = untraced)
    };
    // Ids newly learned from the peer (absent locally and unexpired);
    // timestamp-only extensions of known entries are not listed.
    std::vector<NewEntry> new_keys;
    std::vector<NewEntry> new_credentials;
  };

  // Merges a peer's SerializeEntries blob: unknown unexpired ids are
  // added, known ids keep the later revoked_at.
  Result<MergeResult> MergeSerialized(const Bytes& blob, int64_t now);

 private:
  bool Contains(const std::map<std::string, Entry>& set, const std::string& id,
                int64_t now) const;

  int64_t horizon_seconds_;
  std::map<std::string, Entry> keys_;         // id -> entry
  std::map<std::string, Entry> credentials_;  // id -> entry
};

}  // namespace discfs

#endif  // DISCFS_SRC_DISCFS_REVOCATION_H_
