// Hosting helpers: run a DisCFS server (secure channel) or a CFS-NE
// baseline server (plain NFS, no credentials) on a TCP listener. There is
// no thread per connection anywhere: one accept thread feeds new sockets
// to the shared WorkerPool (which runs the blocking handshake), after
// which every connection is served from one shared epoll EventLoop —
// decode on readability, execute on the pool, reply through a bounded
// per-connection send queue drained by the loop. Total runtime threads are
// O(workers + 1 poller + 1 acceptor) no matter how many connections are
// open, and an optional global admission bound busy-rejects new requests
// once the pool's queue backs up.
#ifndef DISCFS_SRC_DISCFS_HOST_H_
#define DISCFS_SRC_DISCFS_HOST_H_

#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "src/cluster/fabric.h"
#include "src/discfs/handshake.h"
#include "src/discfs/server.h"
#include "src/net/event_loop.h"
#include "src/nfs/nfs_client.h"
#include "src/nfs/nfs_server.h"
#include "src/util/worker_pool.h"

namespace discfs {

struct DiscfsHostOptions {
  // Execution threads shared by all connections. 0 = derive from the
  // hardware: clamp(hardware_concurrency, 8, 16) — handlers block on
  // storage, so the floor keeps I/O overlapping even on small machines.
  size_t worker_threads = 0;
  // Per-connection pipelining bound (requests executing or awaiting their
  // reply) — reads pause at this depth.
  size_t max_inflight_per_conn = 64;
  // Per-connection bound on replies queued for the loop's writer; a full
  // queue blocks the executing worker (backpressure) rather than growing.
  size_t send_queue_limit = 128;
  // Global admission bound: once the shared pool's queue depth reaches
  // this, new requests get a RESOURCE_EXHAUSTED busy reply instead of
  // queueing behind everyone else's, so connection fan-in cannot blow tail
  // latency. 0 disables admission control.
  size_t admission_queue_limit = 0;
  // Policy-aware shed watermarks (PR 10): pool queue depths at which data
  // reads/writes (shed_data_watermark) and namespace operations
  // (shed_namespace_watermark) start busy-rejecting, while control-plane
  // work (credential submits, revocations, cluster coherence) rides
  // through to the hard admission_queue_limit. 0 disables a tier; with
  // both zero, admission control is the old single-threshold behavior.
  size_t shed_data_watermark = 0;
  size_t shed_namespace_watermark = 0;
  // Listener bind address ("0.0.0.0" to serve remote peers).
  std::string bind_addr = "127.0.0.1";

  // --- handshake hardening (PR 10) ---
  // Per-connection budget from accept to an established secure channel; a
  // peer that trickles (or never sends) its handshake is torn down when
  // this expires instead of holding server state.
  uint64_t handshake_timeout_ms = 5000;
  // Concurrent half-open handshakes; at the cap the oldest is evicted in
  // favor of the new arrival. Half-open connections cost no threads (they
  // live on the event loop), so this bounds memory, not workers.
  size_t max_half_open_handshakes = 256;

  // --- cluster coherence fabric (PR 4) ---
  // Peer DisCFS servers this host pushes invalidation events to; more can
  // be added after start via AddClusterPeer (ports are often only known
  // then). The fabric starts when this is non-empty, cluster_enabled is
  // set, or the server config names trusted cluster keys.
  std::vector<cluster::PeerConfig> cluster_peers;
  // Forces the fabric on even with no static peers (receiver-only nodes,
  // peers added dynamically).
  bool cluster_enabled = false;
  cluster::FabricTuning cluster_tuning;

  // --- restart survival, membership, faults (PR 6) ---
  // Durable fabric storage (journal + snapshots). "" keeps the fabric
  // in-memory: a restart draws a fresh incarnation and peers flush once.
  std::string cluster_storage_dir;
  cluster::FsyncPolicy cluster_fsync = cluster::FsyncPolicy::kNone;
  // Seed member addresses ("host:port"). Unlike cluster_peers these are
  // deduplicated against the node's own advertised address, so every node
  // of a mesh can be handed the same seed list; the rest of the fleet is
  // learned through Hello/heartbeat gossip.
  std::vector<std::string> cluster_seeds;
  // Host part of the advertised listen address peers dial back
  // ("host:<listener port>"); defaults to bind_addr.
  std::string advertised_host;
  // Shared fault-injection schedule for harnesses; null in production.
  std::shared_ptr<cluster::FaultSchedule> cluster_faults;
};

namespace internal {

// Live-connection bookkeeping shared by both hosts: connections register
// on creation, self-remove when the loop finishes them, and the host
// aborts whatever is left on shutdown.
class LoopConnectionSet {
 public:
  // Registers a live connection; returns false (and does not register)
  // once CloseAll has run — the caller must abort the connection.
  bool Add(std::shared_ptr<RpcConnection> conn);
  // Self-removal from a connection's on-closed hook.
  void Remove(RpcConnection* conn);
  // Aborts every live connection and rejects future Adds.
  void CloseAll();
  // Aborts every live connection but keeps accepting new ones (fault
  // injection for the coherence catch-up tests: peers and clients see a
  // broken stream and reconnect).
  void AbortActive();
  size_t active() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<RpcConnection*, std::shared_ptr<RpcConnection>> conns_;
  bool closing_ = false;
};

}  // namespace internal

// DisCFS over TCP + secure channel.
class DiscfsHost {
 public:
  static Result<std::unique_ptr<DiscfsHost>> Start(
      std::shared_ptr<Vfs> vfs, DiscfsServerConfig config, uint16_t port = 0,
      DiscfsHostOptions options = {});
  ~DiscfsHost();

  uint16_t port() const { return listener_->port(); }
  DiscfsServer& server() { return *server_; }

  // --- cluster coherence (PR 4) ---
  // Null when the fabric is disabled (no peers, no trusted keys).
  cluster::CoherenceFabric* fabric() { return fabric_.get(); }
  // Starts pushing invalidation events to `peer`.
  Status AddClusterPeer(cluster::PeerConfig peer);
  // Drops every live connection (clients and inbound peer links); the
  // host keeps serving. Coherence senders elsewhere reconnect and replay.
  void AbortConnections() { connections_.AbortActive(); }

  // --- load introspection ---
  // Requests currently executing on the shared pool.
  size_t inflight() const { return pool_->in_flight(); }
  // Requests decoded but not yet picked up by a worker.
  size_t queue_depth() const { return pool_->queue_depth(); }
  // Connections registered on the event loop (post-handshake, pre-close).
  size_t active_connections() const { return connections_.active(); }
  size_t worker_threads() const { return pool_->size(); }
  // Handshake reactor counters (half-open now, completions, timeouts,
  // evictions) — the slowloris tests and the overload bench read these.
  HandshakeReactor::Stats handshake_stats() const {
    return handshakes_->stats();
  }

 private:
  DiscfsHost() = default;
  void AcceptLoop();
  RpcConnection::Options ConnOptions() const;

  std::unique_ptr<DiscfsServer> server_;
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<WorkerPool> pool_;
  // Destroyed after the pool (no worker still calling into it) and
  // before the loop (its RpcClients must unregister first).
  std::unique_ptr<cluster::CoherenceFabric> fabric_;
  // Shut down after the accept thread (no new Begins) and before the
  // connection set closes — late completions just get aborted adds.
  std::unique_ptr<HandshakeReactor> handshakes_;
  DiscfsHostOptions options_;
  std::unique_ptr<TcpListener> listener_;
  std::thread accept_thread_;
  internal::LoopConnectionSet connections_;
};

// CFS-NE baseline: the same NFS server over plain TCP, every operation
// allowed ("CFS with encryption turned off and modified to run remotely").
class CfsNeHost {
 public:
  static Result<std::unique_ptr<CfsNeHost>> Start(
      std::shared_ptr<Vfs> vfs, uint16_t port = 0,
      DiscfsHostOptions options = {});
  ~CfsNeHost();

  uint16_t port() const { return listener_->port(); }
  NfsServer& server() { return *server_; }
  size_t active_connections() const { return connections_.active(); }

 private:
  CfsNeHost() = default;
  void AcceptLoop();

  std::unique_ptr<NfsServer> server_;
  RpcDispatcher dispatcher_;
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<WorkerPool> pool_;
  DiscfsHostOptions options_;
  std::unique_ptr<TcpListener> listener_;
  std::thread accept_thread_;
  internal::LoopConnectionSet connections_;
};

// Connects an NfsClient to a CfsNeHost.
Result<std::unique_ptr<NfsClient>> ConnectCfsNe(const std::string& host,
                                                uint16_t port);

// Same, over a caller-supplied stream (in-proc transports, shaped links).
Result<std::unique_ptr<NfsClient>> ConnectCfsNeOver(
    std::unique_ptr<MsgStream> stream);

}  // namespace discfs

#endif  // DISCFS_SRC_DISCFS_HOST_H_
