#include "src/crypto/bignum.h"

#include <algorithm>
#include <cassert>

#include "src/util/hex.h"

namespace discfs {

namespace {
constexpr uint64_t kBase = 1ULL << 32;
}  // namespace

BigNum::BigNum(uint64_t v) {
  if (v != 0) {
    limbs_.push_back(static_cast<uint32_t>(v));
    if (v >> 32) {
      limbs_.push_back(static_cast<uint32_t>(v >> 32));
    }
  }
}

void BigNum::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) {
    limbs_.pop_back();
  }
}

BigNum BigNum::FromBytes(const Bytes& be) {
  BigNum out;
  out.limbs_.assign((be.size() + 3) / 4, 0);
  for (size_t i = 0; i < be.size(); ++i) {
    size_t byte_index = be.size() - 1 - i;  // position from LSB
    out.limbs_[i / 4] |= static_cast<uint32_t>(be[byte_index]) << (8 * (i % 4));
  }
  out.Normalize();
  return out;
}

Bytes BigNum::ToBytes(size_t width) const {
  size_t nbytes = (BitLength() + 7) / 8;
  if (width == 0) {
    width = std::max<size_t>(nbytes, 1);
  }
  Bytes out(width, 0);
  size_t n = std::min(nbytes, width);
  for (size_t i = 0; i < n; ++i) {
    uint32_t limb = limbs_[i / 4];
    out[width - 1 - i] = static_cast<uint8_t>(limb >> (8 * (i % 4)));
  }
  return out;
}

Result<BigNum> BigNum::FromHex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2 != 0) {
    padded.insert(padded.begin(), '0');
  }
  ASSIGN_OR_RETURN(Bytes bytes, HexDecode(padded));
  return FromBytes(bytes);
}

std::string BigNum::ToHex() const {
  if (IsZero()) {
    return "0";
  }
  std::string out = HexEncode(ToBytes());
  size_t first = out.find_first_not_of('0');
  return out.substr(first);
}

Result<BigNum> BigNum::FromDecimal(std::string_view dec) {
  if (dec.empty()) {
    return InvalidArgumentError("empty decimal string");
  }
  BigNum out;
  BigNum ten(10);
  for (char c : dec) {
    if (c < '0' || c > '9') {
      return InvalidArgumentError("invalid decimal digit");
    }
    out = Add(Mul(out, ten), BigNum(static_cast<uint64_t>(c - '0')));
  }
  return out;
}

std::string BigNum::ToDecimal() const {
  if (IsZero()) {
    return "0";
  }
  std::string out;
  BigNum n = *this;
  BigNum ten(10);
  while (!n.IsZero()) {
    auto [q, r] = DivMod(n, ten);
    out.push_back(static_cast<char>('0' + r.ToUint64()));
    n = std::move(q);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

size_t BigNum::BitLength() const {
  if (limbs_.empty()) {
    return 0;
  }
  uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigNum::Bit(size_t i) const {
  size_t limb = i / 32;
  if (limb >= limbs_.size()) {
    return false;
  }
  return (limbs_[limb] >> (i % 32)) & 1;
}

uint64_t BigNum::ToUint64() const {
  uint64_t v = 0;
  if (!limbs_.empty()) {
    v = limbs_[0];
  }
  if (limbs_.size() > 1) {
    v |= static_cast<uint64_t>(limbs_[1]) << 32;
  }
  return v;
}

int BigNum::Compare(const BigNum& a, const BigNum& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) {
      return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigNum BigNum::Add(const BigNum& a, const BigNum& b) {
  BigNum out;
  size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry;
    if (i < a.limbs_.size()) {
      sum += a.limbs_[i];
    }
    if (i < b.limbs_.size()) {
      sum += b.limbs_[i];
    }
    out.limbs_[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<uint32_t>(carry);
  out.Normalize();
  return out;
}

BigNum BigNum::Sub(const BigNum& a, const BigNum& b) {
  assert(Compare(a, b) >= 0 && "BigNum::Sub requires a >= b");
  BigNum out;
  out.limbs_.resize(a.limbs_.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) {
      diff -= b.limbs_[i];
    }
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<uint32_t>(diff);
  }
  out.Normalize();
  return out;
}

BigNum BigNum::Mul(const BigNum& a, const BigNum& b) {
  if (a.IsZero() || b.IsZero()) {
    return BigNum();
  }
  BigNum out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t carry = 0;
    uint64_t ai = a.limbs_[i];
    for (size_t j = 0; j < b.limbs_.size(); ++j) {
      uint64_t cur = out.limbs_[i + j] + ai * b.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    size_t k = i + b.limbs_.size();
    while (carry) {
      uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.Normalize();
  return out;
}

BigNum BigNum::ShiftLeft(const BigNum& a, size_t bits) {
  if (a.IsZero()) {
    return BigNum();
  }
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  BigNum out;
  out.limbs_.assign(a.limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t v = static_cast<uint64_t>(a.limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
  }
  out.Normalize();
  return out;
}

BigNum BigNum::ShiftRight(const BigNum& a, size_t bits) {
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  if (limb_shift >= a.limbs_.size()) {
    return BigNum();
  }
  BigNum out;
  out.limbs_.assign(a.limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t v = a.limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < a.limbs_.size()) {
      v |= static_cast<uint64_t>(a.limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<uint32_t>(v);
  }
  out.Normalize();
  return out;
}

BigNum BigNum::DivModImpl(const BigNum& a, const BigNum& b,
                          BigNum* quotient) {
  assert(!b.IsZero() && "division by zero");
  if (Compare(a, b) < 0) {
    if (quotient != nullptr) {
      *quotient = BigNum();
    }
    return a;
  }
  // Single-limb divisor fast path.
  if (b.limbs_.size() == 1) {
    uint64_t d = b.limbs_[0];
    BigNum q;
    if (quotient != nullptr) {
      q.limbs_.assign(a.limbs_.size(), 0);
    }
    uint64_t rem = 0;
    for (size_t i = a.limbs_.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | a.limbs_[i];
      if (quotient != nullptr) {
        q.limbs_[i] = static_cast<uint32_t>(cur / d);
      }
      rem = cur % d;
    }
    if (quotient != nullptr) {
      q.Normalize();
      *quotient = std::move(q);
    }
    return BigNum(rem);
  }

  // Knuth TAOCP vol.2, 4.3.1, Algorithm D. With quotient == nullptr, q̂
  // only drives the subtraction — no quotient limbs are materialized.
  const size_t n = b.limbs_.size();
  const size_t m = a.limbs_.size() - n;

  // D1: normalize so the divisor's top limb has its high bit set.
  int shift = 0;
  uint32_t top = b.limbs_.back();
  while ((top & 0x80000000u) == 0) {
    top <<= 1;
    ++shift;
  }
  BigNum un = ShiftLeft(a, shift);
  BigNum vn = ShiftLeft(b, shift);
  un.limbs_.resize(a.limbs_.size() + 1, 0);  // extra high limb for D4
  vn.limbs_.resize(n, 0);

  BigNum q;
  if (quotient != nullptr) {
    q.limbs_.assign(m + 1, 0);
  }

  const uint64_t v_hi = vn.limbs_[n - 1];
  const uint64_t v_lo = vn.limbs_[n - 2];

  for (size_t j = m + 1; j-- > 0;) {
    // D3: estimate q̂.
    uint64_t numer =
        (static_cast<uint64_t>(un.limbs_[j + n]) << 32) | un.limbs_[j + n - 1];
    uint64_t qhat = numer / v_hi;
    uint64_t rhat = numer % v_hi;
    while (qhat >= kBase ||
           qhat * v_lo > ((rhat << 32) | un.limbs_[j + n - 2])) {
      --qhat;
      rhat += v_hi;
      if (rhat >= kBase) {
        break;
      }
    }

    // D4: multiply and subtract.
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t p = qhat * vn.limbs_[i] + carry;
      carry = p >> 32;
      int64_t t = static_cast<int64_t>(un.limbs_[i + j]) -
                  static_cast<int64_t>(p & 0xffffffffu) - borrow;
      if (t < 0) {
        t += static_cast<int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      un.limbs_[i + j] = static_cast<uint32_t>(t);
    }
    int64_t t = static_cast<int64_t>(un.limbs_[j + n]) -
                static_cast<int64_t>(carry) - borrow;
    bool negative = t < 0;
    un.limbs_[j + n] = static_cast<uint32_t>(t);

    // D5/D6: if we subtracted too much, add the divisor back once.
    if (negative) {
      --qhat;
      uint64_t c = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t s =
            static_cast<uint64_t>(un.limbs_[i + j]) + vn.limbs_[i] + c;
        un.limbs_[i + j] = static_cast<uint32_t>(s);
        c = s >> 32;
      }
      un.limbs_[j + n] = static_cast<uint32_t>(un.limbs_[j + n] + c);
    }
    if (quotient != nullptr) {
      q.limbs_[j] = static_cast<uint32_t>(qhat);
    }
  }

  if (quotient != nullptr) {
    q.Normalize();
    *quotient = std::move(q);
  }
  un.limbs_.resize(n);
  un.Normalize();
  return ShiftRight(un, shift);
}

std::pair<BigNum, BigNum> BigNum::DivMod(const BigNum& a, const BigNum& b) {
  BigNum q;
  BigNum r = DivModImpl(a, b, &q);
  return {std::move(q), std::move(r)};
}

BigNum BigNum::Mod(const BigNum& a, const BigNum& m) {
  return DivModImpl(a, m, nullptr);
}

BigNum BigNum::ModMul(const BigNum& a, const BigNum& b, const BigNum& m) {
  return Mod(Mul(a, b), m);
}

BigNum BigNum::ModExp(const BigNum& base, const BigNum& exp, const BigNum& m) {
  if (m.IsOdd() && m.BitLength() > 1) {
    auto ctx = MontgomeryCtx::Create(m);
    assert(ctx.ok());
    return ctx->ModExp(base, exp);
  }
  return ModExpReference(base, exp, m);
}

BigNum BigNum::ModExpDouble(const BigNum& g, const BigNum& u1, const BigNum& y,
                            const BigNum& u2, const BigNum& m) {
  if (m.IsOdd() && m.BitLength() > 1) {
    auto ctx = MontgomeryCtx::Create(m);
    assert(ctx.ok());
    return ctx->ModExpDouble(g, u1, y, u2);
  }
  return ModMul(ModExpReference(g, u1, m), ModExpReference(y, u2, m), m);
}

BigNum BigNum::ModExpReference(const BigNum& base, const BigNum& exp,
                               const BigNum& m) {
  if (m.BitLength() == 1) {
    return BigNum();  // mod 1
  }
  if (exp.IsZero()) {
    return Mod(BigNum(1), m);
  }
  // 4-bit fixed-window exponentiation: precompute b^0..b^15 once, then per
  // window do 4 squarings plus at most one table multiply. Versus
  // square-and-multiply this trades ~bits/2 multiplies for ~bits*15/64 (a
  // zero window skips its multiply) plus the 14-entry table fill — a clear
  // win from DSA-sized exponents (160+ bits) up.
  BigNum table[16];
  table[0] = BigNum(1);
  table[1] = Mod(base, m);
  for (size_t i = 2; i < 16; ++i) {
    table[i] = ModMul(table[i - 1], table[1], m);
  }
  size_t bits = exp.BitLength();
  size_t windows = (bits + 3) / 4;
  auto window_digit = [&exp](size_t w) {
    unsigned d = 0;
    for (size_t j = 4; j-- > 0;) {
      d = (d << 1) | (exp.Bit(w * 4 + j) ? 1u : 0u);
    }
    return d;
  };
  // The top window contains the exponent's most significant set bit, so its
  // digit is non-zero and seeds the accumulator without leading squarings.
  BigNum result = table[window_digit(windows - 1)];
  for (size_t w = windows - 1; w-- > 0;) {
    for (int s = 0; s < 4; ++s) {
      result = ModMul(result, result, m);
    }
    unsigned d = window_digit(w);
    if (d != 0) {
      result = ModMul(result, table[d], m);
    }
  }
  return result;
}

namespace {

// Inverse of odd x modulo 2^32 (Newton iteration: x is exact mod 2^3 for
// odd x; each step doubles the bits of precision).
uint32_t InverseMod32(uint32_t x) {
  uint32_t inv = x;
  for (int i = 0; i < 4; ++i) {
    inv *= 2u - x * inv;
  }
  return inv;
}

unsigned Window4(const BigNum& exp, size_t w) {
  unsigned d = 0;
  for (size_t j = 4; j-- > 0;) {
    d = (d << 1) | (exp.Bit(w * 4 + j) ? 1u : 0u);
  }
  return d;
}

}  // namespace

Result<MontgomeryCtx> MontgomeryCtx::Create(const BigNum& m) {
  if (!m.IsOdd() || m.BitLength() <= 1) {
    return InvalidArgumentError("Montgomery modulus must be odd and > 1");
  }
  return MontgomeryCtx(m);
}

MontgomeryCtx::MontgomeryCtx(BigNum m) : m_(std::move(m)) {
  n_ = m_.limbs_.size();
  m_limbs_.assign(m_.limbs_.begin(), m_.limbs_.end());
  n0inv_ = static_cast<uint32_t>(0u - InverseMod32(m_limbs_[0]));
  // R = 2^(32 n). The two divisions below are the only ones this context
  // ever performs.
  BigNum r2 = BigNum::Mod(BigNum::ShiftLeft(BigNum(1), 64 * n_), m_);
  BigNum r1 = BigNum::Mod(BigNum::ShiftLeft(BigNum(1), 32 * n_), m_);
  rr_.assign(n_, 0);
  std::copy(r2.limbs_.begin(), r2.limbs_.end(), rr_.begin());
  one_.assign(n_, 0);
  std::copy(r1.limbs_.begin(), r1.limbs_.end(), one_.begin());
}

void MontgomeryCtx::MulMont(const Elem& a, const Elem& b, Elem& out) const {
  const size_t n = n_;
  // CIOS (Koç et al.): interleave one limb of the product with one REDC
  // step, shifting t down a limb per iteration. t < 2m throughout, so one
  // conditional subtract at the end completes the reduction.
  Elem t(n + 2, 0);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t bi = b[i];
    uint64_t carry = 0;
    for (size_t j = 0; j < n; ++j) {
      uint64_t cur = t[j] + static_cast<uint64_t>(a[j]) * bi + carry;
      t[j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    uint64_t cur = t[n] + carry;
    t[n] = static_cast<uint32_t>(cur);
    t[n + 1] = static_cast<uint32_t>(cur >> 32);

    const uint32_t mu = t[0] * n0inv_;
    carry = (t[0] + static_cast<uint64_t>(mu) * m_limbs_[0]) >> 32;
    for (size_t j = 1; j < n; ++j) {
      cur = t[j] + static_cast<uint64_t>(mu) * m_limbs_[j] + carry;
      t[j - 1] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    cur = t[n] + carry;
    t[n - 1] = static_cast<uint32_t>(cur);
    t[n] = t[n + 1] + static_cast<uint32_t>(cur >> 32);
  }

  bool ge = t[n] != 0;
  if (!ge) {
    ge = true;  // equality also subtracts (yields zero)
    for (size_t i = n; i-- > 0;) {
      if (t[i] != m_limbs_[i]) {
        ge = t[i] > m_limbs_[i];
        break;
      }
    }
  }
  out.assign(n, 0);  // a and b are fully consumed; aliasing is fine
  if (ge) {
    int64_t borrow = 0;
    for (size_t i = 0; i < n; ++i) {
      int64_t d = static_cast<int64_t>(t[i]) - m_limbs_[i] - borrow;
      if (d < 0) {
        d += static_cast<int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      out[i] = static_cast<uint32_t>(d);
    }
  } else {
    std::copy(t.begin(), t.begin() + static_cast<ptrdiff_t>(n), out.begin());
  }
}

MontgomeryCtx::Elem MontgomeryCtx::ToMont(const BigNum& a) const {
  BigNum r = BigNum::Mod(a, m_);
  Elem e(n_, 0);
  std::copy(r.limbs_.begin(), r.limbs_.end(), e.begin());
  Elem out;
  MulMont(e, rr_, out);
  return out;
}

BigNum MontgomeryCtx::FromMont(const Elem& a) const {
  Elem unit(n_, 0);
  unit[0] = 1;
  Elem out;
  MulMont(a, unit, out);
  BigNum r;
  r.limbs_.assign(out.begin(), out.end());
  r.Normalize();
  return r;
}

MontgomeryCtx::WindowTable MontgomeryCtx::Precompute(const BigNum& base) const {
  WindowTable table(16);
  table[0] = one_;
  table[1] = ToMont(base);
  for (size_t i = 2; i < 16; ++i) {
    MulMont(table[i - 1], table[1], table[i]);
  }
  return table;
}

BigNum MontgomeryCtx::ModExp(const BigNum& base, const BigNum& exp) const {
  if (exp.IsZero()) {
    return BigNum::Mod(BigNum(1), m_);
  }
  return ModExp(Precompute(base), exp);
}

BigNum MontgomeryCtx::ModExp(const WindowTable& base, const BigNum& exp) const {
  if (exp.IsZero()) {
    return BigNum::Mod(BigNum(1), m_);
  }
  const size_t windows = (exp.BitLength() + 3) / 4;
  // The top window holds the exponent's most significant set bit, so it
  // seeds the accumulator without leading squarings.
  Elem acc = base[Window4(exp, windows - 1)];
  for (size_t w = windows - 1; w-- > 0;) {
    for (int s = 0; s < 4; ++s) {
      MulMont(acc, acc, acc);
    }
    unsigned d = Window4(exp, w);
    if (d != 0) {
      MulMont(acc, base[d], acc);
    }
  }
  return FromMont(acc);
}

BigNum MontgomeryCtx::ModExpDouble(const BigNum& a, const BigNum& ea,
                                   const BigNum& b, const BigNum& eb) const {
  WindowTable ta, tb;
  if (!ea.IsZero()) {
    ta = Precompute(a);
  }
  if (!eb.IsZero()) {
    tb = Precompute(b);
  }
  return ExpDoubleWithTables(ea.IsZero() ? nullptr : &ta, ea,
                             eb.IsZero() ? nullptr : &tb, eb);
}

BigNum MontgomeryCtx::ModExpDouble(const WindowTable& a, const BigNum& ea,
                                   const WindowTable& b,
                                   const BigNum& eb) const {
  return ExpDoubleWithTables(ea.IsZero() ? nullptr : &a, ea,
                             eb.IsZero() ? nullptr : &b, eb);
}

BigNum MontgomeryCtx::ExpDoubleWithTables(const WindowTable* ta,
                                          const BigNum& ea,
                                          const WindowTable* tb,
                                          const BigNum& eb) const {
  if (ta == nullptr && tb == nullptr) {
    return BigNum::Mod(BigNum(1), m_);  // 1 * 1 mod m
  }
  const size_t bits = std::max(ea.BitLength(), eb.BitLength());
  const size_t windows = (bits + 3) / 4;
  Elem acc = one_;
  for (size_t w = windows; w-- > 0;) {
    if (w != windows - 1) {
      for (int s = 0; s < 4; ++s) {
        MulMont(acc, acc, acc);
      }
    }
    unsigned da = ta != nullptr ? Window4(ea, w) : 0;
    if (da != 0) {
      MulMont(acc, (*ta)[da], acc);
    }
    unsigned db = tb != nullptr ? Window4(eb, w) : 0;
    if (db != 0) {
      MulMont(acc, (*tb)[db], acc);
    }
  }
  return FromMont(acc);
}

Result<BigNum> BigNum::ModInverse(const BigNum& a, const BigNum& m) {
  // Extended Euclid, tracking only the coefficient of `a`, with an explicit
  // sign since our BigNum is unsigned.
  BigNum r0 = Mod(a, m);
  BigNum r1 = m;
  BigNum t0(1);
  bool t0_neg = false;
  BigNum t1;
  bool t1_neg = false;
  // Invariants: r0 = t0 * a (mod m), r1 = t1 * a (mod m).
  while (!r1.IsZero()) {
    auto [q, r2] = DivMod(r0, r1);
    // t2 = t0 - q * t1 (signed).
    BigNum qt = Mul(q, t1);
    BigNum t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      // t0 and q*t1 have the same sign: result is t0 - qt in magnitude space.
      if (Compare(t0, qt) >= 0) {
        t2 = Sub(t0, qt);
        t2_neg = t0_neg;
      } else {
        t2 = Sub(qt, t0);
        t2_neg = !t0_neg;
      }
    } else {
      t2 = Add(t0, qt);
      t2_neg = t0_neg;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
  }
  if (Compare(r0, BigNum(1)) != 0) {
    return InvalidArgumentError("not invertible: gcd != 1");
  }
  BigNum inv = Mod(t0, m);
  if (t0_neg && !inv.IsZero()) {
    inv = Sub(m, inv);
  }
  return inv;
}

BigNum BigNum::Gcd(const BigNum& a, const BigNum& b) {
  BigNum x = a;
  BigNum y = b;
  while (!y.IsZero()) {
    BigNum r = Mod(x, y);
    x = std::move(y);
    y = std::move(r);
  }
  return x;
}

bool BigNum::IsProbablePrime(
    const BigNum& n, int rounds,
    const std::function<BigNum(const BigNum& excl_hi)>& rand_below) {
  if (n.BitLength() <= 1) {
    return false;  // 0, 1
  }
  uint64_t small = n.ToUint64();
  if (n.BitLength() <= 10) {
    if (small == 2 || small == 3) {
      return true;
    }
  }
  if (!n.IsOdd()) {
    return false;
  }
  // Trial division by small primes to reject cheaply.
  static const uint32_t kSmallPrimes[] = {3,  5,  7,  11, 13, 17, 19, 23,
                                          29, 31, 37, 41, 43, 47, 53, 59,
                                          61, 67, 71, 73, 79, 83, 89, 97};
  for (uint32_t p : kSmallPrimes) {
    BigNum bp(p);
    if (Compare(n, bp) == 0) {
      return true;
    }
    if (Mod(n, bp).IsZero()) {
      return false;
    }
  }
  // n - 1 = d * 2^s with d odd.
  BigNum n_minus_1 = Sub(n, BigNum(1));
  BigNum d = n_minus_1;
  size_t s = 0;
  while (!d.IsOdd()) {
    d = ShiftRight(d, 1);
    ++s;
  }
  for (int round = 0; round < rounds; ++round) {
    BigNum a = rand_below(n_minus_1);  // in [2, n-2]
    BigNum x = ModExp(a, d, n);
    if (Compare(x, BigNum(1)) == 0 || Compare(x, n_minus_1) == 0) {
      continue;
    }
    bool witness = true;
    for (size_t i = 0; i + 1 < s; ++i) {
      x = ModMul(x, x, n);
      if (Compare(x, n_minus_1) == 0) {
        witness = false;
        break;
      }
    }
    if (witness) {
      return false;
    }
  }
  return true;
}

BigNum BigNum::RandomBelow(const BigNum& bound,
                           const std::function<Bytes(size_t)>& rand_bytes) {
  assert(!bound.IsZero());
  size_t bits = bound.BitLength();
  size_t nbytes = (bits + 7) / 8;
  // Rejection sampling: draw `bits` random bits until < bound.
  while (true) {
    Bytes raw = rand_bytes(nbytes);
    size_t excess = nbytes * 8 - bits;
    if (excess > 0) {
      raw[0] &= static_cast<uint8_t>(0xff >> excess);
    }
    BigNum candidate = FromBytes(raw);
    if (Compare(candidate, bound) < 0) {
      return candidate;
    }
  }
}

}  // namespace discfs
