// DiscfsServer — the paper's modified user-level NFS daemon (§5).
//
// Composition per connection:
//   TCP  →  SecureChannel (IKE/IPsec stand-in; binds the client's key)
//        →  RPC dispatch  →  NFS program (with the KeyNote access hook)
//                         →  DisCFS program (credential submission,
//                            credential-returning CREATE/MKDIR, revocation,
//                            handle resolution)
//
// One KeyNote session holds the local POLICY assertions plus every
// credential submitted by clients ("persistent KeyNote session"). Policy
// results are cached in an LRU (paper: 128 entries for the search
// benchmark); the cache is flushed whenever the credential set changes.
#ifndef DISCFS_SRC_DISCFS_SERVER_H_
#define DISCFS_SRC_DISCFS_SERVER_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>

#include "src/cluster/event.h"
#include "src/cluster/membership.h"
#include "src/crypto/dsa.h"
#include "src/discfs/policy_cache.h"
#include "src/discfs/protocol.h"
#include "src/discfs/revocation.h"
#include "src/keynote/session.h"
#include "src/lockbox/lockbox.h"
#include "src/nfs/nfs_server.h"
#include "src/obs/metrics.h"
#include "src/obs/recorder.h"
#include "src/obs/trace.h"
#include "src/securechannel/channel.h"
#include "src/util/clock.h"
#include "src/vfs/vfs.h"

namespace discfs {

class WorkerPool;

namespace cluster {
class CoherenceFabric;
}  // namespace cluster

struct DiscfsServerConfig {
  // The server's identity: authenticates the secure channel AND signs the
  // credentials minted by CREATE/MKDIR. The default policy trusts it.
  DsaPrivateKey server_key;
  // Local policy assertions (KeyNote text). When empty, a default policy is
  // installed that gives the server key RWX over the whole app domain.
  std::vector<std::string> policy_assertions;
  size_t policy_cache_size = 128;   // paper's search benchmark setting
  int64_t policy_cache_ttl_s = 60;  // bounded staleness for time conditions
  // Verified-signature cache entries (H(key‖digest‖sig) of successful
  // verifies): re-submitted/replayed credentials skip the DSA modexp.
  // 0 disables.
  size_t signature_cache_size = 4096;
  int64_t revocation_horizon_s = 24 * 3600;
  const Clock* clock = nullptr;  // defaults to SystemClock
  std::function<Bytes(size_t)> rand_bytes;  // defaults to SysRandomBytes
  // Channel keys of peer DisCFS servers allowed to push coherence events
  // (the cluster RPC program rejects everyone else). Empty = this server
  // accepts no remote invalidations.
  std::vector<DsaPublicKey> cluster_trusted_keys;
};

class DiscfsServer {
 public:
  struct Counters {
    std::atomic<uint64_t> keynote_queries{0};
    std::atomic<uint64_t> access_checks{0};
    std::atomic<uint64_t> denials{0};
    std::atomic<uint64_t> credentials_submitted{0};
    std::atomic<uint64_t> remote_events_applied{0};
  };

  static Result<std::unique_ptr<DiscfsServer>> Create(
      std::shared_ptr<Vfs> vfs, DiscfsServerConfig config);

  // Performs the server handshake on a raw transport and serves RPCs until
  // the peer disconnects. Blocking; run one thread per connection. Serial:
  // each request is handled inline on the connection thread.
  Status ServeConnection(std::unique_ptr<MsgStream> transport);

  // Pipelined variant: requests are executed on options.pool and replies
  // are written out of order, bounded by options.max_inflight_per_conn.
  // Tests and benches pin concurrency through `options`.
  Status ServeConnection(std::unique_ptr<MsgStream> transport,
                         const ServeOptions& options);

  // Event-driven variant: performs the (blocking) server handshake on the
  // calling thread — hosts run it on a worker — then registers the
  // authenticated channel on options.loop and returns the live connection.
  // Serving continues entirely on the loop + pool.
  Result<std::shared_ptr<RpcConnection>> ServeOnLoop(
      std::unique_ptr<MsgStream> transport,
      const RpcConnection::Options& options,
      RpcConnection::ClosedFn on_closed = nullptr);

  // Serves a channel whose handshake already completed elsewhere (the
  // host's HandshakeReactor drives handshakes on the event loop; no
  // worker ever blocks on a slow peer). Registers the channel on
  // options.loop and returns the live connection.
  Result<std::shared_ptr<RpcConnection>> ServeChannelOnLoop(
      std::unique_ptr<SecureChannel> channel,
      const RpcConnection::Options& options,
      RpcConnection::ClosedFn on_closed = nullptr);

  // --- local administration (not exposed over RPC) ---
  Status AddPolicyAssertion(const std::string& text);
  // Admission is split: the credential is parsed and its signature
  // verified (through the verified-signature cache) with NO lock held;
  // only the install — revocation checks, session insert, scoped
  // invalidation, churn publish — runs under mu_ exclusive. Concurrent
  // submitters overlap their multi-millisecond bignum math instead of
  // serializing the whole server on it.
  Result<std::string> SubmitCredential(const std::string& text);
  // Batch admission: verification fans out across the attached verify
  // pool (the calling thread participates, so the batch completes even if
  // every pool worker is busy), then all verified credentials install
  // under one exclusive lock acquisition. results[i] corresponds to
  // texts[i].
  std::vector<Result<std::string>> SubmitCredentials(
      const std::vector<std::string>& texts);
  Status RemoveCredential(const std::string& credential_id);
  void RevokeKey(const std::string& principal);

  // Shares the host's worker pool for batch-submit verification fan-out.
  // Optional: without one, SubmitCredentials verifies on the calling
  // thread only. Must outlive all serving (hosts tear connections down
  // before the pool).
  void SetVerifyPool(WorkerPool* pool);

  // --- cluster coherence (PR 4) ---
  // Wires the coherence fabric: every local credential-set mutation
  // publishes an invalidation event into it, and the cluster RPC
  // procedures (peer pushes, trust-checked against
  // config.cluster_trusted_keys) forward into it. Must be called before
  // serving starts; the fabric must outlive all serving and local
  // administration.
  void AttachCoherenceFabric(cluster::CoherenceFabric* fabric);

  // Applies one remote churn event: bumps the shipped principal
  // generations (remote-scoped), mirrors revocations into the local
  // revocation list, and expels delegations a revoked key issued here.
  // Never republishes — events travel origin → peers only.
  void ApplyRemoteEvent(const cluster::CoherenceEvent& event);

  // --- cluster liveness & anti-entropy (PR 6) ---
  // Revocation-list views for anti-entropy and state snapshots (the
  // snapshot blob IS the serialized revocation list, so restore = merge).
  Bytes SerializeRevocations() const;
  Bytes RevocationDigest() const;
  // Merges a peer's serialized revocation entries; returns how many were
  // newly learned. New entries get the same local effects as a remotely
  // pushed revocation event: cached grants invalidated, locally installed
  // chains expelled.
  size_t MergeRevocations(const Bytes& blob);

  // --- introspection ---
  const DsaPublicKey& public_key() const {
    return config_.server_key.public_key();
  }
  const Counters& counters() const { return counters_; }

  // One coherent view of every subsystem's statistics (PR 9). Replaces
  // the former cache_stats / cache_coherence_stats / signature_cache_stats
  // / cluster_health accessors; both the kServerStats exposition and the
  // tests read through this.
  struct ServerStatsSnapshot {
    PolicyCache::Stats cache;
    PolicyCache::CoherenceStats coherence;
    // Verified-signature cache telemetry: benches and tests observe
    // replay-skip behavior directly instead of inferring it from timing.
    keynote::VerifiedSignatureCache::Stats signatures;
    // Peer liveness snapshot from the attached fabric (empty standalone).
    cluster::ClusterHealth cluster;
    size_t credential_count = 0;
    size_t revocation_entries = 0;
  };
  ServerStatsSnapshot stats_snapshot() const;

  size_t credential_count() const;
  NfsServer& nfs() { return *nfs_; }
  // Lockbox storage (bench/test telemetry: chunkstore().stats()). Policy
  // enforcement lives in the RPC procedures, not in these objects.
  ChunkStore& chunkstore() { return *chunkstore_; }
  LockboxService& lockbox() { return *lockbox_; }

  // --- observability (PR 9) ---
  // The server's unified metrics registry: every subsystem's Stats struct
  // is exported as gauges, the RPC flight recorder feeds span histograms,
  // and kServerStats serves PrometheusText()/Json() from it.
  obs::MetricsRegistry& metrics() { return metrics_; }
  // Flight recorder the host wires into each connection's options.
  obs::RpcRecorder& recorder() { return recorder_; }
  // Trace observations ("rpc", "publish", "apply", "anti-entropy") seen at
  // this node; the fault harness asserts cross-node propagation through it.
  const obs::TraceLog& trace_log() const { return trace_log_; }

  // Direct policy evaluation (bench/test entry): full RWX mask `principal`
  // holds on `inode`, going through the cache.
  uint32_t EffectiveMask(const std::string& principal, uint32_t inode);

  // Zeroes counters and cache statistics (cache contents survive) so a
  // benchmark can report one phase in isolation.
  void ResetTelemetry();

 private:
  DiscfsServer(std::shared_ptr<Vfs> vfs, DiscfsServerConfig config);

  Status CheckAccess(const NfsAccessRequest& request);
  uint32_t QueryMaskLocked(const std::string& principal, uint32_t inode)
      /* requires mu_ (shared suffices; cache_ synchronizes itself) */;
  // Installs a credential whose signature has already been verified:
  // revocation checks, session insert, invalidation, churn publish.
  Result<std::string> InstallCredentialLocked(keynote::Assertion assertion)
      /* requires mu_ exclusive */;
  // Bumps the cache generation of every principal whose delegation chain
  // passes through credential `id`; entries for everyone else stay warm.
  // Returns the affected set — the closure hint shipped in coherence
  // events (computed while the chain is still installed).
  std::vector<std::string> InvalidateAffectedLocked(
      const std::string& credential_id) /* requires mu_ exclusive */;
  // Appends a churn event to the fabric (no-op without one).
  void PublishChurnLocked(cluster::CoherenceEvent event)
      /* requires mu_ exclusive */;
  void RegisterDiscfsProcs();
  void RegisterLockboxProcs();
  void RegisterClusterProcs();
  // Assigns every registered procedure its shed class (PR 10): control
  // plane (revocations, credential submits, cluster coherence, stats) is
  // shed last, data reads/writes first. See docs/OVERLOAD.md.
  void ClassifyProcPriorities();
  // Wraps every subsystem's Stats struct in registry gauges (scrape-time
  // callbacks; no hot-path cost).
  void RegisterServerMetrics();
  // Peer liveness snapshot from the attached fabric (empty standalone).
  cluster::ClusterHealth cluster_health() const;

  std::shared_ptr<Vfs> vfs_;
  DiscfsServerConfig config_;
  const Clock* clock_;
  std::unique_ptr<NfsServer> nfs_;
  std::unique_ptr<ChunkStore> chunkstore_;
  std::unique_ptr<LockboxService> lockbox_;
  RpcDispatcher dispatcher_;

  // Readers (access checks, mask queries) take mu_ shared and can run
  // concurrently; credential churn and policy installation take it
  // exclusive. The policy cache has its own internal locking.
  mutable std::shared_mutex mu_;
  keynote::KeyNoteSession session_;
  PolicyCache cache_;
  RevocationList revocation_;
  // Internally synchronized; touched outside mu_ on purpose (the whole
  // point is that signature verification holds no server lock).
  keynote::VerifiedSignatureCache sig_cache_;
  Counters counters_;
  // Set once before serving starts (SetVerifyPool); null when no host
  // provides one.
  WorkerPool* verify_pool_ = nullptr;
  // Set once before serving starts (AttachCoherenceFabric); null when
  // this server runs standalone.
  cluster::CoherenceFabric* fabric_ = nullptr;

  // Observability (PR 9). Declared after the subsystems the registered
  // gauges read; gauge callbacks only run from RPC handlers and direct
  // scrapes, both quiesced before destruction begins.
  obs::MetricsRegistry metrics_;
  obs::RpcRecorder recorder_{&metrics_};
  obs::TraceLog trace_log_;
};

}  // namespace discfs

#endif  // DISCFS_SRC_DISCFS_SERVER_H_
